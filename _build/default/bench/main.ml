(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 6), then measures the wall-clock speed
   of the real-time components (rewriter, verifier, assembler, Wasm
   validator, emulator) with Bechamel.

   Run with: dune exec bench/main.exe
   (or `dune exec bench/main.exe -- --quick` to skip the Bechamel
   wall-clock section). *)

let section title =
  Printf.printf "\n%s\n%s\n\n%!" title (String.make (String.length title) '=')

let run_experiments () =
  section "Experiment E1 - Figure 3 (LFI optimization levels)";
  Lfi_experiments.Fig3.run_all ();
  section "Experiment E2 - Figure 4 + Table 4 (LFI vs WebAssembly)";
  Lfi_experiments.Fig4.run_all ();
  section "Experiment E3 - Code size (Section 6.3)";
  Lfi_experiments.Codesize.run_all ();
  section "Experiment E4 - Figure 5 (LFI vs virtualization)";
  Lfi_experiments.Fig5.run_all ();
  section "Experiment E5 - Table 5 (context switch microbenchmarks)";
  Lfi_experiments.Table5.run_all ();
  section "Experiment E6 - Verifier throughput (Section 5.2)";
  Lfi_experiments.Verifier_speed.run_all ();
  section "Experiment E7 - Ablations (Sections 4.2-4.3)";
  Lfi_experiments.Ablation.run_all ();
  section "Experiment E8 - Spectre hardening cost (Section 7.1)";
  Lfi_experiments.Spectre.run_all ();
  section "CoreMark (artifact appendix A.6.3)";
  Lfi_experiments.Coremark_exp.run_all ()

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock benchmarks of the toolchain itself              *)
(* ------------------------------------------------------------------ *)

let bechamel_benchmarks () =
  let open Bechamel in
  let open Toolkit in
  (* fixtures: the mcf proxy at each pipeline stage *)
  let w = Option.get (Lfi_workloads.Registry.find "mcf") in
  let prog = w.Lfi_workloads.Common.program in
  let native_src = Lfi_minic.Compile.compile prog in
  let native_text = Lfi_arm64.Source.to_string native_src in
  let rewritten, _ = Lfi_core.Rewriter.rewrite native_src in
  let image = Lfi_arm64.Assemble.assemble rewritten in
  let code =
    match Lfi_elf.Elf.text_segment (Lfi_elf.Elf.of_image image) with
    | Some seg -> seg.Lfi_elf.Elf.data
    | None -> assert false
  in
  let wasm_blob = Lfi_wasm.Ir.serialize (Lfi_wasm.From_minic.lower prog) in
  let small = Option.get (Lfi_workloads.Registry.find "deepsjeng") in

  let tests =
    [
      Test.make ~name:"parse-asm"
        (Staged.stage (fun () ->
             ignore (Lfi_arm64.Parser.parse_string_exn native_text)));
      Test.make ~name:"rewrite-O2"
        (Staged.stage (fun () -> ignore (Lfi_core.Rewriter.rewrite native_src)));
      Test.make ~name:"assemble"
        (Staged.stage (fun () -> ignore (Lfi_arm64.Assemble.assemble rewritten)));
      Test.make ~name:"verify"
        (Staged.stage (fun () ->
             match Lfi_verifier.Verifier.verify ~code () with
             | Ok _ -> ()
             | Error _ -> failwith "verify failed"));
      Test.make ~name:"wasm-validate"
        (Staged.stage (fun () ->
             match Lfi_wasm.Validate.validate (Lfi_wasm.Ir.deserialize wasm_blob) with
             | Ok () -> ()
             | Error _ -> failwith "validate failed"));
      Test.make ~name:"emulate-deepsjeng"
        (Staged.stage (fun () ->
             ignore
               (Lfi_experiments.Run.run
                  (Lfi_experiments.Run.Lfi Lfi_core.Config.o2)
                  small.Lfi_workloads.Common.program)));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  section "Toolchain wall-clock (Bechamel, ns/run)";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-20s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-20s (no estimate)\n%!" name)
        results)
    tests

let () =
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  run_experiments ();
  if not quick then bechamel_benchmarks ();
  print_newline ();
  print_endline
    "Done.  Paper-vs-measured commentary for every experiment is in \
     EXPERIMENTS.md."
