(* lfi-cc: the MiniC compiler driver (the pipeline's "clang wrapper",
   §5.1).

   Compiles a .mc source file to ARM64 assembly, optionally runs the
   LFI rewriter over it, and emits either assembly text or a loadable
   ELF executable.  With --run, the result is immediately executed
   under the runtime. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run input output emit_asm native opt run_now =
  let prog =
    try Lfi_minic.Minic_parser.parse (read_file input)
    with Lfi_minic.Minic_parser.Parse_error { line; msg } ->
      Printf.eprintf "%s:%d: %s\n" input line msg;
      exit 1
  in
  let asm =
    try Lfi_minic.Compile.compile prog
    with Lfi_minic.Compile.Error msg ->
      Printf.eprintf "%s: compile error: %s\n" input msg;
      exit 1
  in
  let asm =
    if native then asm
    else begin
      let config =
        { Lfi_core.Config.default with
          Lfi_core.Config.opt =
            (match opt with
            | 0 -> Lfi_core.Config.O0
            | 1 -> Lfi_core.Config.O1
            | _ -> Lfi_core.Config.O2) }
      in
      fst (Lfi_core.Rewriter.rewrite ~config asm)
    end
  in
  if run_now then begin
    let config =
      { Lfi_runtime.Runtime.default_config with echo_stdout = true }
    in
    let rt = Lfi_runtime.Runtime.create ~config () in
    let personality =
      if native then Lfi_runtime.Proc.Native_in_lfi_runtime
      else Lfi_runtime.Proc.Lfi
    in
    let elf = Lfi_elf.Elf.of_image (Lfi_arm64.Assemble.assemble asm) in
    let p = Lfi_runtime.Runtime.load rt ~personality elf in
    match Lfi_runtime.Runtime.run_one rt p with
    | Lfi_runtime.Runtime.Exited c, _, _, _ -> exit (c land 0xff)
    | Lfi_runtime.Runtime.Killed why, _, _, _ ->
        Printf.eprintf "%s: killed: %s\n" input why;
        exit 3
  end
  else begin
    let out_path =
      match output with
      | Some p -> p
      | None ->
          Filename.remove_extension input ^ if emit_asm then ".s" else ".elf"
    in
    let oc = open_out_bin out_path in
    (if emit_asm then output_string oc (Lfi_arm64.Source.to_string asm)
     else
       output_bytes oc
         (Lfi_elf.Elf.write
            (Lfi_elf.Elf.of_image (Lfi_arm64.Assemble.assemble asm))));
    close_out oc;
    Printf.printf "%s -> %s\n" input out_path
  end

let cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"PROG.mc") in
  let output = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT") in
  let emit_asm = Arg.(value & flag & info [ "S" ] ~doc:"Emit assembly text.") in
  let native =
    Arg.(value & flag & info [ "native" ] ~doc:"Skip the LFI rewriter.")
  in
  let opt = Arg.(value & opt int 2 & info [ "O" ] ~docv:"LEVEL") in
  let run_now = Arg.(value & flag & info [ "run" ] ~doc:"Run immediately.") in
  Cmd.v
    (Cmd.info "lfi-cc" ~doc:"Compile MiniC programs for LFI sandboxes")
    Term.(const run $ input $ output $ emit_asm $ native $ opt $ run_now)

let () = exit (Cmd.eval cmd)
