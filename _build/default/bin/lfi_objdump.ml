(* lfi-objdump: disassemble an LFI ELF executable.

   Decodes the text segment with the same decoder the verifier uses and
   prints a GNU-style listing.  With --annotate, each line is tagged
   with the verifier's classification (guard instructions, guarded
   accesses, runtime calls), which makes rewritten binaries easy to
   audit by eye. *)

open Cmdliner
open Lfi_arm64

let read_bytes path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let classify (i : Insn.t) : string =
  match i with
  | Insn.Alu
      { op = Insn.ADD; flags = false; dst = Reg.R (Reg.W64, (18 | 23 | 24 | 30));
        src = Reg.R (Reg.W64, 21); op2 = Insn.Ext (_, Insn.Uxtw, 0) } ->
      "guard"
  | Insn.Alu
      { op = Insn.ADD; flags = false; dst = Reg.SP Reg.W64;
        src = Reg.R (Reg.W64, 21); _ } ->
      "sp guard"
  | Insn.Ldr { dst = Reg.R (Reg.W64, 30);
               addr = Insn.Imm_off (Reg.R (Reg.W64, 21), _); _ } ->
      "runtime call"
  | Insn.Ldr { addr = Insn.Reg_off (Reg.R (Reg.W64, 21), _, Insn.Uxtw, 0); _ }
  | Insn.Str { addr = Insn.Reg_off (Reg.R (Reg.W64, 21), _, Insn.Uxtw, 0); _ }
  | Insn.Fldr { addr = Insn.Reg_off (Reg.R (Reg.W64, 21), _, Insn.Uxtw, 0); _ }
  | Insn.Fstr { addr = Insn.Reg_off (Reg.R (Reg.W64, 21), _, Insn.Uxtw, 0); _ }
    ->
      "guarded access"
  | Insn.Udf _ -> "UNSAFE"
  | Insn.Svc _ | Insn.Mrs _ | Insn.Msr _ -> "UNSAFE"
  | _ -> ""

let run input annotate =
  match Lfi_elf.Elf.read (read_bytes input) with
  | exception Lfi_elf.Elf.Bad_elf msg ->
      Printf.eprintf "%s: bad ELF: %s\n" input msg;
      exit 2
  | elf -> (
      match Lfi_elf.Elf.text_segment elf with
      | None ->
          Printf.eprintf "%s: no executable segment\n" input;
          exit 2
      | Some seg ->
          let insns = Decode.decode_all seg.Lfi_elf.Elf.data in
          Printf.printf "%s:  entry at 0x%x\n\n" input elf.Lfi_elf.Elf.entry;
          Array.iteri
            (fun k i ->
              let addr = seg.Lfi_elf.Elf.vaddr + (4 * k) in
              let word =
                Int32.to_int
                  (Bytes.get_int32_le seg.Lfi_elf.Elf.data (4 * k))
                land 0xFFFFFFFF
              in
              let tag = if annotate then classify i else "" in
              Printf.printf "  %6x:\t%08x\t%-40s%s\n" addr word
                (Printer.to_string i)
                (if tag = "" then "" else "; " ^ tag))
            insns)

let cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"BINARY") in
  let annotate =
    Arg.(value & flag & info [ "annotate" ]
           ~doc:"Tag guards, guarded accesses and runtime calls.")
  in
  Cmd.v
    (Cmd.info "lfi-objdump" ~doc:"Disassemble an LFI ELF binary")
    Term.(const run $ input $ annotate)

let () = exit (Cmd.eval cmd)
