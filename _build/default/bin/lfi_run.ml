(* lfi-run: load one or more LFI ELF executables into sandboxes and run
   them under the runtime, printing their output and exit codes.

   With --native the program runs unsandboxed (the comparison baseline);
   with --asm the input is an assembly file that is assembled (and, for
   sandboxed runs, rewritten) on the fly. *)

open Cmdliner

let read_bytes path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let load_input ~asm ~native path : Lfi_elf.Elf.t =
  if asm then begin
    let text = Bytes.to_string (read_bytes path) in
    let src = Lfi_arm64.Parser.parse_string_exn text in
    let src =
      if native then src else fst (Lfi_core.Rewriter.rewrite src)
    in
    Lfi_elf.Elf.of_image (Lfi_arm64.Assemble.assemble src)
  end
  else Lfi_elf.Elf.read (read_bytes path)

let run inputs native asm uarch_name quantum trace =
  let uarch =
    match Lfi_emulator.Cost_model.by_name uarch_name with
    | Some u -> u
    | None ->
        Printf.eprintf "unknown machine model %S (try m1 or t2a)\n" uarch_name;
        exit 2
  in
  let config =
    { Lfi_runtime.Runtime.default_config with uarch; quantum;
      echo_stdout = true }
  in
  let rt = Lfi_runtime.Runtime.create ~config () in
  let personality =
    if native then Lfi_runtime.Proc.Native_in_lfi_runtime
    else Lfi_runtime.Proc.Lfi
  in
  let procs =
    List.map
      (fun path ->
        try Lfi_runtime.Runtime.load rt ~personality (load_input ~asm ~native path)
        with
        | Lfi_runtime.Runtime.Load_error msg ->
            Printf.eprintf "%s: %s\n" path msg;
            exit 1
        | Lfi_elf.Elf.Bad_elf msg ->
            Printf.eprintf "%s: bad ELF: %s\n" path msg;
            exit 1)
      inputs
  in
  let log = Lfi_runtime.Runtime.run rt in
  let worst = ref 0 in
  List.iter2
    (fun path p ->
      match List.assoc_opt p.Lfi_runtime.Proc.pid log with
      | Some (Lfi_runtime.Runtime.Exited c) ->
          if trace then Printf.eprintf "%s: exited %d\n" path c;
          worst := max !worst (if c = 0 then 0 else 1)
      | Some (Lfi_runtime.Runtime.Killed why) ->
          Printf.eprintf "%s: killed: %s\n" path why;
          worst := max !worst 3
      | None ->
          Printf.eprintf "%s: did not exit\n" path;
          worst := max !worst 3)
    inputs procs;
  if trace then
    Printf.eprintf
      "%d instructions, %.0f cycles (%.2f ms at %.1f GHz), %d context \
       switches, %d runtime calls\n"
      (Lfi_runtime.Runtime.insns rt)
      (Lfi_runtime.Runtime.cycles rt)
      (Lfi_runtime.Runtime.cycles rt /. uarch.Lfi_emulator.Cost_model.clock_ghz
      /. 1e6)
      uarch.Lfi_emulator.Cost_model.clock_ghz rt.Lfi_runtime.Runtime.ctx_switches
      rt.Lfi_runtime.Runtime.rtcalls;
  exit !worst

let cmd =
  let inputs =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"BINARY...")
  in
  let native =
    Arg.(value & flag & info [ "native" ] ~doc:"Run unsandboxed (baseline).")
  in
  let asm =
    Arg.(value & flag & info [ "asm" ]
           ~doc:"Inputs are .s files; assemble (and rewrite) first.")
  in
  let uarch =
    Arg.(value & opt string "m1" & info [ "machine" ] ~docv:"MODEL"
           ~doc:"Cost model: m1 or t2a.")
  in
  let quantum =
    Arg.(value & opt int 100_000 & info [ "quantum" ]
           ~doc:"Preemption quantum in instructions.")
  in
  let trace = Arg.(value & flag & info [ "stats" ] ~doc:"Print run statistics.") in
  Cmd.v
    (Cmd.info "lfi-run" ~doc:"Run programs in LFI sandboxes")
    Term.(const run $ inputs $ native $ asm $ uarch $ quantum $ trace)

let () = exit (Cmd.eval cmd)
