(* Quickstart: the full LFI pipeline on one small program.

   1. compile a MiniC program to ARM64 assembly (stand-in for
      "clang -ffixed-x18 ... -S"),
   2. rewrite the assembly with SFI guards (lfi-rewrite),
   3. assemble and package as ELF,
   4. statically verify the machine code (lfi-verify),
   5. load into a 4GiB sandbox slot and run it (lfi-run).

   Run with: dune exec examples/quickstart.exe *)

open Lfi_minic.Ast

(* a little program: print a message, then compute 10! *)
let program : program =
  let open Lfi_minic.Ast.Dsl in
  let fact =
    func "fact" ~params:[ ("n", Int) ]
      [
        if_ (v "n" <= i 1) [ ret (i 1) ] [];
        ret (v "n" * call "fact" [ v "n" - i 1 ]);
      ]
  in
  let main =
    func "main"
      [
        expr (sys_write (i 1) (addr "msg") (i 24));
        ret (call "fact" [ i 10 ]);
      ]
  in
  { globals = [ Str ("msg", "hello from the sandbox!\n") ]; funcs = [ fact; main ] }

let () =
  (* 1. compile *)
  let assembly = Lfi_minic.Compile.compile program in
  Printf.printf "1. compiled: %d instructions of ARM64 assembly\n"
    (Lfi_arm64.Source.insn_count assembly);

  (* 2. rewrite with SFI guards *)
  let guarded, stats = Lfi_core.Rewriter.rewrite assembly in
  Printf.printf "2. rewritten: %d -> %d instructions (%d hoisting groups)\n"
    stats.input_insns stats.output_insns stats.hoists;

  (* 3. assemble + ELF *)
  let image = Lfi_arm64.Assemble.assemble guarded in
  let elf = Lfi_elf.Elf.of_image image in
  Printf.printf "3. assembled: %d-byte text segment, %d-byte ELF\n"
    (Lfi_elf.Elf.text_size elf)
    (Bytes.length (Lfi_elf.Elf.write elf));

  (* 4. verify the machine code *)
  (match Lfi_elf.Elf.text_segment elf with
  | Some seg -> (
      match Lfi_verifier.Verifier.verify ~code:seg.Lfi_elf.Elf.data () with
      | Ok r -> Printf.printf "4. verified: %d instructions, all safe\n" r.checked
      | Error vs ->
          Format.printf "4. VERIFICATION FAILED: %a@."
            Lfi_verifier.Verifier.pp_violation (List.hd vs);
          exit 1)
  | None -> failwith "no text segment");

  (* 5. run in a sandbox *)
  let rt =
    Lfi_runtime.Runtime.create
      ~config:{ Lfi_runtime.Runtime.default_config with echo_stdout = false }
      ()
  in
  let p = Lfi_runtime.Runtime.load rt ~personality:Lfi_runtime.Proc.Lfi elf in
  let reason, out, cycles, insns = Lfi_runtime.Runtime.run_one rt p in
  Printf.printf "5. ran in slot %d (base 0x%Lx): %s\n" p.Lfi_runtime.Proc.slot
    p.Lfi_runtime.Proc.base
    (match reason with
    | Lfi_runtime.Runtime.Exited c -> Printf.sprintf "exit code %d" c
    | Lfi_runtime.Runtime.Killed why -> "killed: " ^ why);
  Printf.printf "   stdout: %S\n" out;
  Printf.printf "   %d instructions, %.0f simulated cycles\n" insns cycles;
  assert (reason = Lfi_runtime.Runtime.Exited 3628800)
