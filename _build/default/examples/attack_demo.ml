(* Attack demo: what the verifier rejects, and what the guards contain.

   Part 1 feeds the verifier a series of hand-written hostile assembly
   programs, each violating one Section 5.2 rule.
   Part 2 runs a verified-but-adversarial program that computes
   out-of-sandbox pointers in every way it can and shows that the
   guards force every access back inside its own 4GiB slot.

   Run with: dune exec examples/attack_demo.exe *)

let hostile : (string * string) list =
  [
    ( "raw store through an unguarded register",
      "movz x5, #0xdead, lsl #16\n\tstr x0, [x5]\n\tret" );
    ( "clobbering the sandbox base register x21",
      "movz x21, #0\n\tret" );
    ( "loading x18 without its guard",
      "movz x18, #16\n\tldr x0, [x18]\n\tret" );
    ( "indirect branch through an arbitrary register",
      "movz x7, #0\n\tbr x7" );
    ( "direct system call",
      "movz x8, #0\n\tsvc #0\n\tret" );
    ( "writing x30 without a following guard",
      "ldr x30, [sp]\n\tnop\n\tret" );
    ( "runtime-table load not followed by blr",
      "ldr x30, [x21, #16]\n\tnop\n\tret" );
    ( "sp modified with a large immediate and no guard",
      "sub sp, sp, #4095, lsl #12\n\tret" );
    ( "sp adjusted without a following stack access",
      "sub sp, sp, #16\n\tret" );
    ( "64-bit write to the 32-bit-only register x22",
      "movz x22, #1\n\tret" );
    ( "branch out of the text segment",
      "b .+4096" );
  ]

let check_rejected (label, asm) =
  let src = Lfi_arm64.Parser.parse_string_exn ("_start:\n\t" ^ asm ^ "\n") in
  let img = Lfi_arm64.Assemble.assemble src in
  match Lfi_verifier.Verifier.verify ~code:img.Lfi_arm64.Assemble.text () with
  | Ok _ ->
      Printf.printf "  !! NOT REJECTED: %s\n" label;
      exit 1
  | Error (v :: _) ->
      Format.printf "  rejected %-50s (%s)@." label v.Lfi_verifier.Verifier.rule
  | Error [] -> assert false

(* A verified program that tries to escape: it takes a legitimate
   pointer to its own "cell" variable, adds 4GiB so that it points at
   the same offset inside the NEIGHBOUR sandbox, stores through it and
   loads it back.  The inserted guards replace the top 32 bits of the
   address with the sandbox base on every access, so both the store and
   the load hit the attacker's own cell — it reads back its own 0x7777
   and the victim's 0xBEEF is never touched. *)
let escape_attempt = {|
_start:
	// evil = own base (from a legit pointer) + 4GiB + offset of "cell"
	adr x0, cell
	movz x1, #1
	movk x1, #0, lsl #16
	lsl x1, x1, #32        // x1 = 1 << 32 = 4GiB
	add x2, x0, x1         // points into the neighbour sandbox
	movz x3, #0x7777
	str x3, [x2]           // guarded: must hit OUR cell, not theirs
	ldr x4, [x2]           // guarded load reads it back
	mov x0, x4
	svc #1
	b _start
.data
cell:
	.quad 0
|}

let () =
  print_endline "Part 1: the static verifier rejects unsafe machine code";
  List.iter check_rejected hostile;

  print_endline "\nPart 2: guards contain a verified escape attempt";
  let src = Lfi_arm64.Parser.parse_string_exn escape_attempt in
  let guarded, _ = Lfi_core.Rewriter.rewrite src in
  let elf = Lfi_elf.Elf.of_image (Lfi_arm64.Assemble.assemble guarded) in
  let rt = Lfi_runtime.Runtime.create () in
  (* two sandboxes side by side: the victim holds a secret at the same
     offset the attacker targets *)
  let victim =
    let src =
      Lfi_arm64.Parser.parse_string_exn
        "_start:\n\tmovz x0, #0\n\tsvc #1\n\tb _start\n.data\ncell:\n\t.quad 0xBEEF\n"
    in
    Lfi_runtime.Runtime.load rt ~personality:Lfi_runtime.Proc.Lfi
      (Lfi_elf.Elf.of_image
         (Lfi_arm64.Assemble.assemble (fst (Lfi_core.Rewriter.rewrite src))))
  in
  let attacker = Lfi_runtime.Runtime.load rt ~personality:Lfi_runtime.Proc.Lfi elf in
  ignore victim;
  let log = Lfi_runtime.Runtime.run rt in
  (match List.assoc_opt attacker.Lfi_runtime.Proc.pid log with
  | Some (Lfi_runtime.Runtime.Exited code) ->
      Printf.printf
        "  attacker stored 0x7777 through a pointer aimed at its \
         neighbour,\n  read back 0x%x -> the guard redirected both \
         accesses into its own slot\n"
        code;
      assert (code = 0x7777)
  | other ->
      Printf.printf "  unexpected outcome: %s\n"
        (match other with
        | Some (Lfi_runtime.Runtime.Killed w) -> w
        | _ -> "did not run");
      exit 1);
  print_endline "\nAll escape attempts neutralized."
