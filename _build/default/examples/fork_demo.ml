(* Fork demo: fork() in a single address space (§5.3).

   Because every memory access is guarded with the sandbox base, a
   pointer is really a 32-bit offset — so the runtime can copy a
   sandbox into a different 4GiB slot and the child's pointers still
   work.  The child here follows a linked list its *parent* built
   (raw pointers stored in memory), mutates its own copy, and the
   parent proves isolation by seeing its original values unchanged.

   Run with: dune exec examples/fork_demo.exe *)

open Lfi_minic.Ast

let nodes = 64
let nodes1 = nodes - 1
let pool_bytes = nodes * 16

let program : program =
  let open Lfi_minic.Ast.Dsl in
  let main =
    func "main"
      ([
         (* build a linked list: node k -> node k+1; payload = k*k *)
         decl "k" Int (i 0);
         while_ (v "k" < i nodes)
           [
             decl "np" Int (addr "pool" + shl (v "k") (i 4));
             if_ (v "k" < i nodes1)
               [ store I64 (v "np") (v "np" + i 16) ]
               [ store I64 (v "np") (i 0) ];
             store I64 (v "np" + i 8) (v "k" * v "k");
             set "k" (v "k" + i 1);
           ];
         decl "pid" Int (sys_fork ());
         if_ (Bin (Eq, v "pid", i 0))
           [
             (* child: walk the list (parent-built pointers!), sum and
                overwrite payloads *)
             decl "sum" Int (i 0);
             decl "p" Int (addr "pool");
             while_ (Bin (Ne, v "p", i 0))
               [
                 set "sum" (v "sum" + ld I64 (v "p" + i 8));
                 store I64 (v "p" + i 8) (i 0);
                 set "p" (ld I64 (v "p"));
               ];
             ret (v "sum");
           ]
           [
             (* parent: wait, then checksum its own (untouched) copy *)
             decl "st" Int (i 0);
             expr (sys_wait (addr "status"));
             set "st" (ld I32 (addr "status"));
             decl "sum" Int (i 0);
             decl "p" Int (addr "pool");
             while_ (Bin (Ne, v "p", i 0))
               [
                 set "sum" (v "sum" + ld I64 (v "p" + i 8));
                 set "p" (ld I64 (v "p"));
               ];
             (* encode: parent's sum must equal child's exit status *)
             if_ (Bin (Eq, v "sum", v "st"))
               [ ret (v "sum") ]
               [ ret (i (-1)) ];
           ];
       ])
  in
  { globals = [ Zeroed ("pool", pool_bytes); Zeroed ("status", 8) ]; funcs = [ main ] }

let () =
  let asm = Lfi_minic.Compile.compile program in
  let guarded, _ = Lfi_core.Rewriter.rewrite asm in
  let elf = Lfi_elf.Elf.of_image (Lfi_arm64.Assemble.assemble guarded) in
  let rt = Lfi_runtime.Runtime.create () in
  let parent = Lfi_runtime.Runtime.load rt ~personality:Lfi_runtime.Proc.Lfi elf in
  let log = Lfi_runtime.Runtime.run rt in
  let expected = List.init nodes (fun k -> k * k) |> List.fold_left ( + ) 0 in
  match List.assoc_opt parent.Lfi_runtime.Proc.pid log with
  | Some (Lfi_runtime.Runtime.Exited code) when code = expected ->
      Printf.printf
        "fork OK: the child (in a different 4GiB slot) walked the \
         parent-built\nlinked list and summed %d; the parent's copy was \
         untouched.\nPointers healed across the copy because guards \
         rewrite their top 32 bits (§5.3).\n"
        code
  | Some (Lfi_runtime.Runtime.Exited code) ->
      Printf.printf "FAILED: exit %d (expected %d)\n" code expected;
      exit 1
  | other ->
      Printf.printf "FAILED: %s\n"
        (match other with
        | Some (Lfi_runtime.Runtime.Killed w) -> w
        | _ -> "no exit");
      exit 1
