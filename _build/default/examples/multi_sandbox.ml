(* Multi-sandbox demo: many isolation domains in one address space.

   Part A loads a dozen compute sandboxes and lets the preemptive
   scheduler multiplex them (timer-driven, §5.3).
   Part B forks a ring of sandboxes connected by pipes and passes a
   token around — Unix-style IPC between isolation domains, with every
   context switch a register swap rather than a page-table switch.
   Part C ping-pongs control between two sandboxes with the optimized
   direct yield (microkernel-style IPC).

   Run with: dune exec examples/multi_sandbox.exe *)

open Lfi_minic.Ast

let build prog =
  let asm = Lfi_minic.Compile.compile prog in
  let guarded, _ = Lfi_core.Rewriter.rewrite asm in
  Lfi_elf.Elf.of_image (Lfi_arm64.Assemble.assemble guarded)

(* ---- Part A ---- *)

let compute_prog : program =
  let open Lfi_minic.Ast.Dsl in
  let main =
    func "main" ~params:[ ("seed", Int) ]
      ([ decl "s" Int (v "seed") ]
      @ for_ "k" (i 0) (i 60_000)
          [ set "s" (band (v "s" * i 1103515245 + i 12345) (i 0xFFFFFFF)) ]
      @ [ ret (band (v "s") (i 0x3FFFFFFF)) ])
  in
  { globals = []; funcs = [ main ] }

let part_a () =
  let n = 12 in
  let config =
    { Lfi_runtime.Runtime.default_config with quantum = 10_000;
      stack_size = 1 lsl 16 }
  in
  let rt = Lfi_runtime.Runtime.create ~config () in
  let elf = build compute_prog in
  let t0 = Unix.gettimeofday () in
  let procs =
    List.init n (fun k ->
        Lfi_runtime.Runtime.load rt ~arg:(Int64.of_int (k + 1))
          ~personality:Lfi_runtime.Proc.Lfi elf)
  in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let log = Lfi_runtime.Runtime.run rt in
  let done_ok =
    List.for_all
      (fun p ->
        match List.assoc_opt p.Lfi_runtime.Proc.pid log with
        | Some (Lfi_runtime.Runtime.Exited _) -> true
        | _ -> false)
      procs
  in
  Printf.printf
    "A: %d sandboxes loaded+verified in %.1f ms, multiplexed with %d \
     timer preemptions: %s\n"
    n ms rt.Lfi_runtime.Runtime.preemptions
    (if done_ok then "all finished" else "FAILED");
  (match procs with
  | a :: b :: _ ->
      Printf.printf "   slot bases: 0x%Lx, 0x%Lx, ... (max %d slots in a \
                     48-bit VA)\n"
        a.Lfi_runtime.Proc.base b.Lfi_runtime.Proc.base
        Lfi_core.Layout.max_sandboxes_48bit
  | _ -> ());
  done_ok

(* ---- Part B: fork ring with pipes ---- *)

let ring = 6
let rounds = 40
let ring_minus_1 = ring - 1
let fds_bytes = ring * 8

let ring_prog : program =
  let open Lfi_minic.Ast.Dsl in
  let main =
    func "main"
      ([
         (* R pipes: fds[2k] = read end, fds[2k+1] = write end *)
         decl "k" Int (i 0);
         while_ (v "k" < i ring)
           [
             expr (sys_pipe (addr "fds" + shl (v "k") (i 3)));
             set "k" (v "k" + i 1);
           ];
         (* fork the other members; child j breaks out with its index *)
         decl "j" Int (i 0);
         decl "jj" Int (i 1);
         while_ (v "jj" < i ring)
           [
             if_ (Bin (Eq, sys_fork (), i 0))
               [ set "j" (v "jj"); Break ]
               [];
             set "jj" (v "jj" + i 1);
           ];
         decl "infd" Int (ld I32 (addr "fds" + shl (v "j") (i 3)));
         decl "nextj" Int ((v "j" + i 1) % i ring);
         decl "outfd" Int (ld I32 (addr "fds" + shl (v "nextj") (i 3) + i 4));
         store U8 (addr "buf") (i 42);
         if_ (Bin (Eq, v "j", i 0))
           [ expr (sys_write (v "outfd") (addr "buf") (i 1)) ]
           [];
         decl "r" Int (i 0);
         while_ (v "r" < i rounds)
           [
             expr (sys_read (v "infd") (addr "buf") (i 1));
             expr (sys_write (v "outfd") (addr "buf") (i 1));
             set "r" (v "r" + i 1);
           ];
         if_ (Bin (Eq, v "j", i 0))
           ([ decl "w" Int (i 0) ]
           @ [
               while_ (v "w" < i ring_minus_1)
                 [
                   expr (sys_wait (addr "status"));
                   set "w" (v "w" + i 1);
                 ];
             ])
           [];
         ret (v "r" * i 10 + v "j");
       ])
  in
  {
    globals = [ Zeroed ("fds", fds_bytes); Zeroed ("buf", 8); Zeroed ("status", 8) ];
    funcs = [ main ];
  }

let part_b () =
  let rt = Lfi_runtime.Runtime.create () in
  let p = Lfi_runtime.Runtime.load rt ~personality:Lfi_runtime.Proc.Lfi (build ring_prog) in
  let log = Lfi_runtime.Runtime.run rt in
  let ok =
    match List.assoc_opt p.Lfi_runtime.Proc.pid log with
    | Some (Lfi_runtime.Runtime.Exited c) -> c = (rounds * 10) + 0
    | _ -> false
  in
  Printf.printf
    "B: token circulated a fork()ed %d-sandbox pipe ring %d times \
     (%d context switches): %s\n"
    ring rounds rt.Lfi_runtime.Runtime.ctx_switches
    (if ok then "OK" else "FAILED");
  ok

(* ---- Part C: direct yield ping-pong ---- *)

let yield_iters = 500

let yield_prog : program =
  let open Lfi_minic.Ast.Dsl in
  let main =
    func "main" ~params:[ ("peer", Int) ]
      (for_ "k" (i 0) (i yield_iters)
         [ expr (sys_yield_to (v "peer")) ]
      @ [ ret (i 0) ])
  in
  { globals = []; funcs = [ main ] }

let part_c () =
  let rt = Lfi_runtime.Runtime.create () in
  let elf = build yield_prog in
  let p1 = Lfi_runtime.Runtime.load rt ~arg:2L ~personality:Lfi_runtime.Proc.Lfi elf in
  let p2 = Lfi_runtime.Runtime.load rt ~arg:1L ~personality:Lfi_runtime.Proc.Lfi elf in
  let cycles0 = Lfi_runtime.Runtime.cycles rt in
  let log = Lfi_runtime.Runtime.run rt in
  let ok =
    List.for_all
      (fun p ->
        match List.assoc_opt p.Lfi_runtime.Proc.pid log with
        | Some (Lfi_runtime.Runtime.Exited 0) -> true
        | _ -> false)
      [ p1; p2 ]
  in
  let per_switch =
    (Lfi_runtime.Runtime.cycles rt -. cycles0)
    /. float_of_int (2 * yield_iters)
  in
  Printf.printf
    "C: %d direct yields between two sandboxes at %.0f cycles/switch \
     (paper: ~50): %s\n"
    (2 * yield_iters) per_switch
    (if ok then "OK" else "FAILED");
  ok

let () =
  let ok = part_a () in
  let ok = part_b () && ok in
  let ok = part_c () && ok in
  if not ok then exit 1
