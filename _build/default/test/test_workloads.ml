(* Workload-level integration tests: the SPEC proxies must compute the
   same checksum under every sandboxing system, and the experiment
   helpers must behave.  Only the two fastest proxies run here (the
   full 14-benchmark sweep is bench/main.exe's job). *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let systems_for (w : Lfi_workloads.Common.t) =
  [
    Lfi_experiments.Run.Lfi Lfi_core.Config.o0;
    Lfi_experiments.Run.Lfi Lfi_core.Config.o1;
    Lfi_experiments.Run.Lfi Lfi_core.Config.o2;
    Lfi_experiments.Run.Lfi Lfi_core.Config.o2_no_loads;
    Lfi_experiments.Run.Native_kvm;
  ]
  @
  if w.Lfi_workloads.Common.wasm_ok then
    [ Lfi_experiments.Run.Wasm Lfi_wasm.Engine.wasmtime;
      Lfi_experiments.Run.Wasm Lfi_wasm.Engine.wamr ]
  else []

let agreement (short : string) () =
  let w = Option.get (Lfi_workloads.Registry.find short) in
  let prog = w.Lfi_workloads.Common.program in
  let base = Lfi_experiments.Run.run Lfi_experiments.Run.Native prog in
  checkb "ran" true (base.Lfi_experiments.Run.insns > 0);
  List.iter
    (fun sys ->
      let r = Lfi_experiments.Run.run sys prog in
      checki
        (Lfi_experiments.Run.system_name sys)
        base.Lfi_experiments.Run.exit_code r.Lfi_experiments.Run.exit_code)
    (systems_for w)

let test_coremark_agreement () =
  let w = Lfi_workloads.Coremark.workload in
  let prog = w.Lfi_workloads.Common.program in
  let base = Lfi_experiments.Run.run Lfi_experiments.Run.Native prog in
  List.iter
    (fun sys ->
      let r = Lfi_experiments.Run.run sys prog in
      checki
        (Lfi_experiments.Run.system_name sys)
        base.Lfi_experiments.Run.exit_code r.Lfi_experiments.Run.exit_code)
    [ Lfi_experiments.Run.Lfi Lfi_core.Config.o2;
      Lfi_experiments.Run.Wasm Lfi_wasm.Engine.wasmtime ]

let test_registry () =
  checki "all" 14 (List.length Lfi_workloads.Registry.all);
  checki "wasm subset" 7 (List.length Lfi_workloads.Registry.wasm_subset);
  checkb "find" true (Lfi_workloads.Registry.find "mcf" <> None);
  checkb "find by name" true (Lfi_workloads.Registry.find "505.mcf" <> None);
  checkb "missing" true (Lfi_workloads.Registry.find "nope" = None)

let test_overhead_positive () =
  (* LFI O2 must cost more than native but far less than 2x *)
  let w = Option.get (Lfi_workloads.Registry.find "deepsjeng") in
  let prog = w.Lfi_workloads.Common.program in
  let base = Lfi_experiments.Run.run Lfi_experiments.Run.Native prog in
  let lfi = Lfi_experiments.Run.run (Lfi_experiments.Run.Lfi Lfi_core.Config.o2) prog in
  let ov =
    Lfi_experiments.Run.overhead ~base:base.Lfi_experiments.Run.cycles
      lfi.Lfi_experiments.Run.cycles
  in
  checkb "positive" true (ov > 0.0);
  checkb "sane" true (ov < 50.0)

let test_o0_worse_than_o1 () =
  let w = Option.get (Lfi_workloads.Registry.find "namd") in
  let prog = w.Lfi_workloads.Common.program in
  let cycles cfg =
    (Lfi_experiments.Run.run (Lfi_experiments.Run.Lfi cfg) prog).Lfi_experiments.Run.cycles
  in
  checkb "O0 > O1" true (cycles Lfi_core.Config.o0 > cycles Lfi_core.Config.o1);
  checkb "O1 >= no-loads" true
    (cycles Lfi_core.Config.o1 >= cycles Lfi_core.Config.o2_no_loads)

let test_geomean () =
  let g = Lfi_experiments.Run.geomean [ 10.0; 10.0; 10.0 ] in
  checkb "constant" true (abs_float (g -. 10.0) < 1e-9);
  let g2 = Lfi_experiments.Run.geomean [ 0.0; 21.0 ] in
  checkb "mixed" true (g2 > 9.0 && g2 < 11.0)

let test_code_size_positive () =
  let w = Option.get (Lfi_workloads.Registry.find "deepsjeng") in
  let prog = w.Lfi_workloads.Common.program in
  let native = Lfi_experiments.Run.build Lfi_experiments.Run.Native prog in
  let lfi = Lfi_experiments.Run.build (Lfi_experiments.Run.Lfi Lfi_core.Config.o2) prog in
  checkb "text grows" true
    (Lfi_elf.Elf.text_size lfi > Lfi_elf.Elf.text_size native);
  checkb "bounded" true
    (float_of_int (Lfi_elf.Elf.text_size lfi)
    < 1.5 *. float_of_int (Lfi_elf.Elf.text_size native))

let test_microbench_sanity () =
  let uarch = Lfi_emulator.Cost_model.m1 in
  let syscall = Lfi_experiments.Table5.measure_syscall uarch in
  let yield = Lfi_experiments.Table5.measure_yield uarch in
  let pipe = Lfi_experiments.Table5.measure_pipe uarch in
  checkb "syscall in range" true (syscall > 5.0 && syscall < 100.0);
  checkb "yield cheaper than syscall+switch" true (yield < pipe);
  checkb "pipe under linux"
    true
    (pipe
    < Lfi_emulator.Cost_model.cycles_to_ns uarch
        uarch.Lfi_emulator.Cost_model.linux_pipe_roundtrip)

let test_verifier_throughput_sane () =
  let r = Lfi_experiments.Verifier_speed.measure ~repeats:2 () in
  checkb "lfi verifier fast" true
    (r.Lfi_experiments.Verifier_speed.lfi_mb_s > 1.0);
  checkb "corpus nonempty" true
    (r.Lfi_experiments.Verifier_speed.lfi_total_bytes > 10_000)

let mk name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let () =
  Alcotest.run "workloads"
    [
      ( "agreement",
        [
          slow "deepsjeng" (agreement "deepsjeng");
          slow "namd" (agreement "namd");
          slow "coremark" test_coremark_agreement;
        ] );
      ( "harness",
        [
          mk "registry" test_registry;
          slow "overhead positive" test_overhead_positive;
          slow "O0 worse than O1" test_o0_worse_than_o1;
          mk "geomean" test_geomean;
          slow "code size" test_code_size_positive;
          slow "microbench" test_microbench_sanity;
          slow "verifier throughput" test_verifier_throughput_sane;
        ] );
    ]
