(* Focused tests for the MiniC ARM64 backend (register pressure, ABI,
   spilling), the VFS, and the memory substrate. *)

open Lfi_minic

let checki = Alcotest.(check int)

let run_prog ?(system = Lfi_experiments.Run.Lfi Lfi_core.Config.o2) prog =
  (Lfi_experiments.Run.run system prog).Lfi_experiments.Run.exit_code

let main_only body =
  Ast.{ globals = [ Zeroed ("g", 256) ];
        funcs = [ { name = "main"; params = []; ret = Int; body } ] }

(* ---------------- register pressure / spilling ---------------- *)

let test_many_int_locals () =
  let open Ast.Dsl in
  (* 12 live int locals exceed the 6 callee-saved homes *)
  let decls = List.init 12 (fun k -> decl (Printf.sprintf "v%d" k) (Ast.Int : Ast.ty) (i (Stdlib.( + ) k 1))) in
  let sum =
    List.fold_left
      (fun acc k -> acc + v (Printf.sprintf "v%d" k))
      (i 0)
      (List.init 12 (fun k -> k))
  in
  checki "sum 1..12" 78 (run_prog (main_only (decls @ [ ret sum ])))

let test_many_float_locals () =
  let open Ast.Dsl in
  let decls =
    List.init 12 (fun k ->
        decl (Printf.sprintf "f%d" k) (Ast.Float : Ast.ty) (f (float_of_int (Stdlib.( + ) k 1))))
  in
  let sum =
    List.fold_left
      (fun acc k -> acc +. v (Printf.sprintf "f%d" k))
      (f 0.0)
      (List.init 12 (fun k -> k))
  in
  checki "fsum 1..12" 78 (run_prog (main_only (decls @ [ ret (ftoi sum) ])))

let test_eight_args () =
  let open Ast.Dsl in
  let params = List.init 8 (fun k -> (Printf.sprintf "a%d" k, (Ast.Int : Ast.ty))) in
  let body =
    [ ret
        (List.fold_left
           (fun acc k -> acc + v (Printf.sprintf "a%d" k))
           (i 0)
           (List.init 8 (fun k -> k))) ]
  in
  let f8 = Ast.{ name = "f8"; params; ret = Int; body } in
  let main =
    Ast.{ name = "main"; params = []; ret = Int;
          body = [ ret (call "f8" (List.init 8 (fun k -> i (Stdlib.( + ) k 1)))) ] }
  in
  checki "8 args" 36 (run_prog Ast.{ globals = []; funcs = [ f8; main ] })

let test_mixed_args () =
  let open Ast.Dsl in
  let fmix =
    Ast.{ name = "fmix";
          params = [ ("a", Int); ("x", Float); ("b", Int); ("y", Float) ];
          ret = Int;
          body = [ ret (v "a" + v "b" + ftoi (v "x" +. v "y")) ] }
  in
  let main =
    Ast.{ name = "main"; params = []; ret = Int;
          body = [ ret (call "fmix" [ i 1; f 2.5; i 3; f 4.5 ]) ] }
  in
  checki "mixed" 11 (run_prog Ast.{ globals = []; funcs = [ fmix; main ] })

let test_call_inside_args () =
  let open Ast.Dsl in
  (* argument evaluation where another argument contains a call must
     spill correctly *)
  let g = Ast.{ name = "g"; params = [ ("a", Int) ]; ret = Int;
                body = [ ret (v "a" * i 10) ] } in
  let h = Ast.{ name = "h"; params = [ ("a", Int); ("b", Int) ]; ret = Int;
                body = [ ret (v "a" - v "b") ] } in
  let main =
    Ast.{ name = "main"; params = []; ret = Int;
          body = [ ret (call "h" [ call "g" [ i 7 ]; call "g" [ i 2 ] ]) ] }
  in
  checki "nested calls" 50 (run_prog Ast.{ globals = []; funcs = [ g; h; main ] })

let test_call_both_operands () =
  let open Ast.Dsl in
  let g = Ast.{ name = "g"; params = [ ("a", Int) ]; ret = Int;
                body = [ ret (v "a" + i 1) ] } in
  let main =
    Ast.{ name = "main"; params = []; ret = Int;
          body = [ ret (call "g" [ i 10 ] * call "g" [ i 20 ]) ] }
  in
  checki "call * call" 231 (run_prog Ast.{ globals = []; funcs = [ g; main ] })

let test_deep_expression () =
  let open Ast.Dsl in
  (* deep enough to exercise scratch pressure but not overflow it *)
  let rec build k = if k = 0 then i 1 else i 1 + (i 1 + (i 1 * build (Stdlib.( - ) k 1))) in
  checki "deep" 25 (run_prog (main_only [ ret (build 12) ]))

let test_float_return () =
  let open Ast.Dsl in
  let favg =
    Ast.{ name = "favg"; params = [ ("a", Float); ("b", Float) ];
          ret = Float; body = [ ret ((v "a" +. v "b") /. f 2.0) ] }
  in
  let main =
    Ast.{ name = "main"; params = []; ret = Int;
          body = [ ret (ftoi (call "favg" [ f 3.0; f 5.0 ])) ] }
  in
  checki "float ret" 4 (run_prog Ast.{ globals = []; funcs = [ favg; main ] })

let test_recursion_depth () =
  let open Ast.Dsl in
  (* deep recursion exercises stack growth within the sandbox *)
  let deep =
    Ast.{ name = "deep"; params = [ ("n", Int) ]; ret = Int;
          body =
            [ if_ (v "n" == i 0) [ ret (i 0) ] [];
              ret (i 1 + call "deep" [ v "n" - i 1 ]) ] }
  in
  let main =
    Ast.{ name = "main"; params = []; ret = Int;
          body = [ ret (call "deep" [ i 5000 ]) ] }
  in
  checki "depth" 5000 (run_prog Ast.{ globals = []; funcs = [ deep; main ] })

let test_stack_overflow_contained () =
  let open Ast.Dsl in
  (* unbounded recursion must fault in the guard region, not corrupt
     anything *)
  let deep =
    Ast.{ name = "deep"; params = [ ("n", Int) ]; ret = Int;
          body = [ ret (i 1 + call "deep" [ v "n" + i 1 ]) ] }
  in
  let prog =
    Ast.{ globals = [];
          funcs =
            [ deep;
              { name = "main"; params = []; ret = Int;
                body = [ ret (call "deep" [ i 0 ]) ] } ] }
  in
  match Lfi_experiments.Run.run (Lfi_experiments.Run.Lfi Lfi_core.Config.o2) prog with
  | exception Lfi_experiments.Run.Run_failure _ -> ()
  | r -> Alcotest.failf "expected a contained fault, got exit %d" r.exit_code

(* ---------------- vfs unit tests ---------------- *)

let test_pipe_fifo () =
  let p = Lfi_runtime.Vfs.make_pipe () in
  (match Lfi_runtime.Vfs.pipe_write p (Bytes.of_string "abc") with
  | `Wrote 3 -> ()
  | _ -> Alcotest.fail "write");
  (match Lfi_runtime.Vfs.pipe_read p 2 with
  | `Data b -> Alcotest.(check string) "fifo" "ab" (Bytes.to_string b)
  | _ -> Alcotest.fail "read");
  match Lfi_runtime.Vfs.pipe_read p 10 with
  | `Data b -> Alcotest.(check string) "rest" "c" (Bytes.to_string b)
  | _ -> Alcotest.fail "read rest"

let test_pipe_blocking_and_eof () =
  let p = Lfi_runtime.Vfs.make_pipe () in
  (match Lfi_runtime.Vfs.pipe_read p 1 with
  | `Would_block -> ()
  | _ -> Alcotest.fail "empty pipe should block");
  p.Lfi_runtime.Vfs.writers <- 0;
  (match Lfi_runtime.Vfs.pipe_read p 1 with
  | `Eof -> ()
  | _ -> Alcotest.fail "should be EOF");
  let q = Lfi_runtime.Vfs.make_pipe () in
  q.Lfi_runtime.Vfs.readers <- 0;
  match Lfi_runtime.Vfs.pipe_write q (Bytes.of_string "x") with
  | `Broken -> ()
  | _ -> Alcotest.fail "should be broken"

let test_pipe_capacity () =
  let p = Lfi_runtime.Vfs.make_pipe () in
  let big = Bytes.make (Lfi_runtime.Vfs.pipe_capacity + 100) 'x' in
  (match Lfi_runtime.Vfs.pipe_write p big with
  | `Wrote n -> checki "partial" Lfi_runtime.Vfs.pipe_capacity n
  | _ -> Alcotest.fail "write");
  match Lfi_runtime.Vfs.pipe_write p (Bytes.of_string "y") with
  | `Would_block -> ()
  | _ -> Alcotest.fail "full pipe should block"

let test_pipe_wraparound () =
  let p = Lfi_runtime.Vfs.make_pipe () in
  (* push the cursors close to the capacity boundary, then wrap *)
  let chunk = Bytes.make (Lfi_runtime.Vfs.pipe_capacity - 10) 'a' in
  (match Lfi_runtime.Vfs.pipe_write p chunk with `Wrote _ -> () | _ -> assert false);
  (match Lfi_runtime.Vfs.pipe_read p (Bytes.length chunk) with
  | `Data _ -> ()
  | _ -> assert false);
  (match Lfi_runtime.Vfs.pipe_write p (Bytes.of_string "0123456789ABCDEF") with
  | `Wrote 16 -> ()
  | _ -> Alcotest.fail "wrap write");
  match Lfi_runtime.Vfs.pipe_read p 16 with
  | `Data b -> Alcotest.(check string) "wrap" "0123456789ABCDEF" (Bytes.to_string b)
  | _ -> Alcotest.fail "wrap read"

let test_file_growth () =
  let vfs = Lfi_runtime.Vfs.create () in
  match Lfi_runtime.Vfs.open_file vfs ~path:"/f" ~writable:true with
  | Error _ -> Alcotest.fail "open"
  | Ok (Lfi_runtime.Vfs.File { file; _ }) ->
      for k = 0 to 99 do
        Lfi_runtime.Vfs.file_write file ~pos:(k * 3) (Bytes.of_string "abc")
      done;
      checki "size" 300 file.Lfi_runtime.Vfs.size;
      let back = Lfi_runtime.Vfs.file_read file ~pos:297 ~len:10 in
      Alcotest.(check string) "tail" "abc" (Bytes.to_string back)
  | Ok _ -> Alcotest.fail "wrong fd kind"

(* ---------------- memory property ---------------- *)

let prop_memory_roundtrip =
  QCheck.Test.make ~count:300 ~name:"memory read (write a v) = v"
    QCheck.(
      triple (int_range 0 (Lfi_emulator.Memory.page_size * 3 - 9))
        (oneofl [ 1; 2; 4; 8 ])
        (int_bound max_int))
    (fun (off, size, value) ->
      let m = Lfi_emulator.Memory.create () in
      Lfi_emulator.Memory.map m ~addr:0L
        ~len:(Lfi_emulator.Memory.page_size * 3)
        ~perm:Lfi_emulator.Memory.perm_rw;
      let addr = Int64.of_int off in
      let v64 = Int64.of_int value in
      Lfi_emulator.Memory.write m addr size v64;
      let mask =
        if size = 8 then -1L
        else Int64.sub (Int64.shift_left 1L (8 * size)) 1L
      in
      Int64.equal
        (Lfi_emulator.Memory.read m addr size)
        (Int64.logand v64 mask))

let mk name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "backend"
    [
      ( "codegen",
        [
          mk "many int locals" test_many_int_locals;
          mk "many float locals" test_many_float_locals;
          mk "eight args" test_eight_args;
          mk "mixed args" test_mixed_args;
          mk "call inside args" test_call_inside_args;
          mk "call both operands" test_call_both_operands;
          mk "deep expression" test_deep_expression;
          mk "float return" test_float_return;
          mk "recursion depth" test_recursion_depth;
          mk "stack overflow contained" test_stack_overflow_contained;
        ] );
      ( "vfs",
        [
          mk "pipe fifo" test_pipe_fifo;
          mk "pipe blocking/eof" test_pipe_blocking_and_eof;
          mk "pipe capacity" test_pipe_capacity;
          mk "pipe wraparound" test_pipe_wraparound;
          mk "file growth" test_file_growth;
        ] );
      ("memory", [ QCheck_alcotest.to_alcotest prop_memory_roundtrip ]);
    ]
