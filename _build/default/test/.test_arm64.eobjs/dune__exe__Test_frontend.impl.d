test/test_frontend.ml: Alcotest Array Bytes Gen_minic Lfi_core Lfi_emulator Lfi_experiments Lfi_minic Lfi_runtime Lfi_wasm List QCheck QCheck_alcotest
