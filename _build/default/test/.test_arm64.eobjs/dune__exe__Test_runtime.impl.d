test/test_runtime.ml: Alcotest Assemble Char Lfi_arm64 Lfi_core Lfi_elf Lfi_runtime List Parser Printf String
