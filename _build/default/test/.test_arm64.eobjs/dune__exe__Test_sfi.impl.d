test/test_sfi.ml: Alcotest Assemble Buffer Format Gen Insn Lfi_arm64 Lfi_core Lfi_verifier List Parser Printer QCheck QCheck_alcotest Reg Source String
