test/test_pipeline.ml: Alcotest Array Ast Gen_minic Int64 Interp Lfi_core Lfi_experiments Lfi_minic Lfi_wasm List QCheck QCheck_alcotest
