test/test_arm64.ml: Alcotest Assemble Bytes Char Decode Encode Gen Insn Int32 Int64 Lfi_arm64 Lfi_elf List Parser Printer Printf QCheck QCheck_alcotest Reg Source
