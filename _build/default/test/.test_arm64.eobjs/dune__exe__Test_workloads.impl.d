test/test_workloads.ml: Alcotest Lfi_core Lfi_elf Lfi_emulator Lfi_experiments Lfi_wasm Lfi_workloads List Option
