test/test_backend.ml: Alcotest Ast Bytes Int64 Lfi_core Lfi_emulator Lfi_experiments Lfi_minic Lfi_runtime List Printf QCheck QCheck_alcotest Stdlib
