test/test_emulator.ml: Alcotest Array Assemble Bytes Exec Format Int64 Lfi_arm64 Lfi_emulator Machine Memory Tlb
