test/gen.ml: Encode Insn Lfi_arm64 Printer QCheck Reg
