test/test_arm64.mli:
