test/gen_minic.ml: Ast Compile Lfi_arm64 Lfi_minic QCheck
