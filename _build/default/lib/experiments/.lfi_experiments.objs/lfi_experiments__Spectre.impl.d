lib/experiments/spectre.ml: Cost_model Lfi_core Lfi_emulator Lfi_runtime Lfi_workloads Printf Report String Table5
