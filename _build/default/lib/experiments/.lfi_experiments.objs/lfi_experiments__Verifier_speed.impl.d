lib/experiments/verifier_speed.ml: Bytes Lfi_core Lfi_elf Lfi_verifier Lfi_wasm Lfi_workloads List Printf Report Run Unix
