lib/experiments/fig5.ml: Cost_model Lfi_core Lfi_emulator Lfi_workloads List Printf Report Run String
