lib/experiments/codesize.ml: Lfi_core Lfi_elf Lfi_wasm Lfi_workloads List Printf Report Run
