lib/experiments/coremark_exp.ml: Cost_model Lfi_core Lfi_emulator Lfi_wasm Lfi_workloads List Printf Report Run String
