lib/experiments/fig4.ml: Cost_model Lfi_core Lfi_emulator Lfi_wasm Lfi_workloads List Printf Report Run String
