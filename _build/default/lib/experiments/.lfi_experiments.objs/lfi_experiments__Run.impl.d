lib/experiments/run.ml: Cost_model Hashtbl Lfi_arm64 Lfi_core Lfi_elf Lfi_emulator Lfi_minic Lfi_runtime Lfi_verifier Lfi_wasm Lfi_workloads List Machine Printf Tlb
