lib/experiments/ablation.ml: Cost_model Lfi_core Lfi_emulator Lfi_workloads List Option Printf Report Run String
