lib/experiments/table5.ml: Cost_model Lfi_arm64 Lfi_core Lfi_elf Lfi_emulator Lfi_minic Lfi_runtime Lfi_workloads List Printf Report String
