(** Experiment E2 — Figure 4 and Table 4: LFI vs WebAssembly engines on
    the 7-benchmark Wasm-compatible subset, both machine models.

    The paper's result: the best Wasm configurations reach ~15%
    geomean overhead while LFI (full isolation) sits at 6-7% — less
    than half. *)

open Lfi_emulator

let systems =
  List.map (fun e -> Run.Wasm e) Lfi_wasm.Engine.all
  @ [ Run.Lfi Lfi_core.Config.o2 ]

let system_labels =
  List.map Run.system_name systems

type row = { bench : string; overheads : float list }

let measure ~(uarch : Cost_model.t) : row list * float list =
  let rows =
    List.map
      (fun w ->
        let base = (Run.run_cached ~uarch Run.Native w).Run.cycles in
        let overheads =
          List.map
            (fun sys ->
              Run.overhead ~base (Run.run_cached ~uarch sys w).Run.cycles)
            systems
        in
        { bench = w.Lfi_workloads.Common.name; overheads })
      Lfi_workloads.Registry.wasm_subset
  in
  let geomeans =
    List.mapi
      (fun k _ -> Run.geomean (List.map (fun r -> List.nth r.overheads k) rows))
      systems
  in
  (rows, geomeans)

let fig4_table ~(uarch : Cost_model.t) : Report.table =
  let rows, geomeans = measure ~uarch in
  {
    Report.title =
      Printf.sprintf
        "Figure 4: LFI vs Wasm on SPEC 2017 proxies - %s model (percent \
         increase over native)"
        (String.uppercase_ascii uarch.Cost_model.name);
    header = "benchmark" :: system_labels;
    rows =
      List.map (fun r -> r.bench :: List.map Report.fmt_pct r.overheads) rows
      @ [ "geomean" :: List.map Report.fmt_pct geomeans ];
    notes = [];
  }

(** Table 4 is the geomean summary of Figure 4 over both machines. *)
let table4 () : Report.table =
  let _, gm_t2a = measure ~uarch:Cost_model.t2a in
  let _, gm_m1 = measure ~uarch:Cost_model.m1 in
  let paper = Report.Paper.table4 in
  {
    Report.title = "Table 4: geomean overheads over native";
    header =
      [ "system"; "T2A meas."; "T2A paper"; "M1 meas."; "M1 paper" ];
    rows =
      List.map2
        (fun (label, (t2a, m1)) (mt2a, mm1) ->
          [ label; Report.fmt_pct mt2a; Report.fmt_pct t2a;
            Report.fmt_pct mm1; Report.fmt_pct m1 ])
        paper
        (List.combine gm_t2a gm_m1);
    notes =
      [ "shape target: LFI well under half the best Wasm configuration" ];
  }

let run_all () =
  Report.print (fig4_table ~uarch:Cost_model.t2a);
  print_newline ();
  Report.print (fig4_table ~uarch:Cost_model.m1);
  print_newline ();
  Report.print (table4 ())
