(** Experiment E5 — Table 5: isolation-domain switch microbenchmarks.

    LFI numbers are *measured*: the microbenchmark guests run under the
    runtime (through the verifier, the runtime-call table, the real
    scheduler, fork and pipes) and per-operation cost is simulated
    cycles converted at the model's clock rate.  Linux and gVisor
    columns are the cost-model constants, which are themselves the
    paper's measurements — they are printed as the comparison baseline,
    exactly as DESIGN.md documents. *)

open Lfi_emulator

let lfi_config uarch =
  { Lfi_runtime.Runtime.default_config with uarch }

let build config prog =
  let native = Lfi_minic.Compile.compile prog in
  let rewritten, _ = Lfi_core.Rewriter.rewrite ~config native in
  Lfi_elf.Elf.of_image (Lfi_arm64.Assemble.assemble rewritten)

(** Per-getpid cost under LFI: runtime-call loop minus the same loop
    without the call. *)
let measure_syscall uarch : float =
  let run prog =
    let rt = Lfi_runtime.Runtime.create ~config:(lfi_config uarch) () in
    let p =
      Lfi_runtime.Runtime.load rt ~personality:Lfi_runtime.Proc.Lfi
        (build Lfi_core.Config.o2 prog)
    in
    let _, _, cycles, _ = Lfi_runtime.Runtime.run_one rt p in
    cycles
  in
  let with_call = run Lfi_workloads.Microbench.syscall_prog in
  let without = run Lfi_workloads.Microbench.syscall_baseline_prog in
  Cost_model.cycles_to_ns uarch
    ((with_call -. without)
    /. float_of_int Lfi_workloads.Microbench.syscall_iters)

(** Per-hop pipe cost under LFI (one write + one blocking read handoff):
    the full fork + two-pipes ping-pong, divided by the number of
    one-way transfers. *)
let measure_pipe uarch : float =
  let rt = Lfi_runtime.Runtime.create ~config:(lfi_config uarch) () in
  let p =
    Lfi_runtime.Runtime.load rt ~personality:Lfi_runtime.Proc.Lfi
      (build Lfi_core.Config.o2 Lfi_workloads.Microbench.pipe_prog)
  in
  let _, _, cycles, _ = Lfi_runtime.Runtime.run_one rt p in
  Cost_model.cycles_to_ns uarch
    (cycles /. float_of_int (2 * Lfi_workloads.Microbench.pipe_iters))

(** Per-switch cost of the optimized direct yield between two
    sandboxes. *)
let measure_yield uarch : float =
  let rt = Lfi_runtime.Runtime.create ~config:(lfi_config uarch) () in
  let elf = build Lfi_core.Config.o2 Lfi_workloads.Microbench.yield_prog in
  let p1 = Lfi_runtime.Runtime.load rt ~arg:2L ~personality:Lfi_runtime.Proc.Lfi elf in
  let _p2 = Lfi_runtime.Runtime.load rt ~arg:1L ~personality:Lfi_runtime.Proc.Lfi elf in
  let _, _, cycles, _ = Lfi_runtime.Runtime.run_one rt p1 in
  Cost_model.cycles_to_ns uarch
    (cycles /. float_of_int (2 * Lfi_workloads.Microbench.yield_iters))

let table ~(uarch : Cost_model.t) : Report.table =
  let lfi_syscall = measure_syscall uarch in
  let lfi_pipe = measure_pipe uarch in
  let lfi_yield = measure_yield uarch in
  let to_ns c = Cost_model.cycles_to_ns uarch c in
  let paper =
    if uarch.Cost_model.name = "m1" then Report.Paper.table5_m1
    else Report.Paper.table5_t2a
  in
  let paper_of name =
    match List.assoc_opt name paper with
    | Some t -> t
    | None -> (nan, nan, nan)
  in
  let row name lfi linux gvisor =
    let plfi, plinux, pgv = paper_of name in
    [ name; Report.fmt_ns lfi; Report.fmt_ns plfi; Report.fmt_ns linux;
      Report.fmt_ns plinux; Report.fmt_ns gvisor; Report.fmt_ns pgv ]
  in
  {
    Report.title =
      Printf.sprintf "Table 5: isolation-domain switching - %s (%.1f GHz)"
        (String.uppercase_ascii uarch.Cost_model.name)
        uarch.Cost_model.clock_ghz;
    header =
      [ "benchmark"; "LFI"; "(paper)"; "Linux"; "(paper)"; "gVisor";
        "(paper)" ];
    rows =
      [
        row "syscall" lfi_syscall
          (to_ns uarch.Cost_model.linux_syscall)
          (to_ns uarch.Cost_model.gvisor_syscall);
        row "pipe" lfi_pipe
          (to_ns uarch.Cost_model.linux_pipe_roundtrip)
          (to_ns uarch.Cost_model.gvisor_pipe_roundtrip);
        row "yield" lfi_yield nan nan;
      ];
    notes =
      [ "LFI columns are measured in the runtime; Linux/gVisor columns \
         are modeled from the paper's own numbers (see DESIGN.md)" ];
  }

let run_all () =
  Report.print (table ~uarch:Cost_model.m1);
  print_newline ();
  Report.print (table ~uarch:Cost_model.t2a)
