(** Experiment E8 — pricing the §7.1 Spectre mitigations.

    The paper argues LFI blocks sandbox-breakout attacks by
    construction (no CFI to subvert), and that cross-sandbox / host
    poisoning needs the CSV2_2 software-context-number extension, which
    "will likely have some cost" the authors could not measure on
    available hardware.  We model SCXTNUM_EL0 writes on every
    runtime-boundary crossing and report the impact on the Table 5
    microbenchmarks, plus the cost of the other knob the verifier
    offers: rejecting LL/SC exclusives (the S2C timerless-channel
    hardening) costs nothing at runtime — it only restricts which
    programs verify. *)

open Lfi_emulator

let hardened_config uarch =
  { Lfi_runtime.Runtime.default_config with uarch; spectre_hardening = true }

let plain_config uarch = { Lfi_runtime.Runtime.default_config with uarch }

let measure_syscall_with config =
  let run prog =
    let rt = Lfi_runtime.Runtime.create ~config () in
    let p =
      Lfi_runtime.Runtime.load rt ~personality:Lfi_runtime.Proc.Lfi
        (Table5.build Lfi_core.Config.o2 prog)
    in
    let _, _, cycles, _ = Lfi_runtime.Runtime.run_one rt p in
    cycles
  in
  (run Lfi_workloads.Microbench.syscall_prog
  -. run Lfi_workloads.Microbench.syscall_baseline_prog)
  /. float_of_int Lfi_workloads.Microbench.syscall_iters

let measure_yield_with config =
  let rt = Lfi_runtime.Runtime.create ~config () in
  let elf = Table5.build Lfi_core.Config.o2 Lfi_workloads.Microbench.yield_prog in
  let p1 = Lfi_runtime.Runtime.load rt ~arg:2L ~personality:Lfi_runtime.Proc.Lfi elf in
  let _p2 = Lfi_runtime.Runtime.load rt ~arg:1L ~personality:Lfi_runtime.Proc.Lfi elf in
  let _, _, cycles, _ = Lfi_runtime.Runtime.run_one rt p1 in
  cycles /. float_of_int (2 * Lfi_workloads.Microbench.yield_iters)

let table ~(uarch : Cost_model.t) : Report.table =
  let ns c = Cost_model.cycles_to_ns uarch c in
  let sys_plain = measure_syscall_with (plain_config uarch) in
  let sys_hard = measure_syscall_with (hardened_config uarch) in
  let yld_plain = measure_yield_with (plain_config uarch) in
  let yld_hard = measure_yield_with (hardened_config uarch) in
  {
    Report.title =
      Printf.sprintf
        "Spectre hardening (E8, §7.1) - %s model: SCXTNUM_EL0 context \
         switching"
        (String.uppercase_ascii uarch.Cost_model.name);
    header = [ "benchmark"; "baseline"; "hardened"; "slowdown" ];
    rows =
      [
        [ "syscall"; Report.fmt_ns (ns sys_plain); Report.fmt_ns (ns sys_hard);
          Printf.sprintf "%.1fx" (sys_hard /. sys_plain) ];
        [ "yield"; Report.fmt_ns (ns yld_plain); Report.fmt_ns (ns yld_hard);
          Printf.sprintf "%.1fx" (yld_hard /. yld_plain) ];
      ];
    notes =
      [
        "sandbox breakout is mitigated by construction (no CFI to \
         subvert); poisoning attacks need the modeled SCXTNUM writes";
        "S2C hardening (rejecting LL/SC, Config.allow_exclusives=false) \
         has no runtime cost — it is a verifier policy";
      ];
  }

let run_all () = Report.print (table ~uarch:Cost_model.m1)
