(** Text rendering for the experiment tables, plus the paper's
    reference numbers so every report prints paper-vs-measured. *)

type table = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let fmt_pct v =
  if Float.is_nan v then "-" else Printf.sprintf "%.1f%%" v

let fmt_ns v =
  if Float.is_nan v then "-" else Printf.sprintf "%.0fns" v

let render (t : table) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let all = t.header :: t.rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun c cell -> widths.(c) <- max widths.(c) (String.length cell)))
    all;
  let render_row r =
    List.iteri
      (fun c cell ->
        let pad = widths.(c) - String.length cell in
        if c = 0 then
          Buffer.add_string buf (cell ^ String.make (pad + 2) ' ')
        else
          Buffer.add_string buf (String.make pad ' ' ^ cell ^ "  "))
      r;
    Buffer.add_char buf '\n'
  in
  render_row t.header;
  Buffer.add_string buf (String.make (Array.fold_left ( + ) (2 * ncols) widths) '-');
  Buffer.add_char buf '\n';
  List.iter render_row t.rows;
  List.iter (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let print t = print_string (render t)

(** Reference values from the paper, used in the printed comparisons
    and recorded in EXPERIMENTS.md. *)
module Paper = struct
  (* Table 4: geomean overheads over native (LTO), percent. *)
  let table4 =
    [
      ("Wasmtime", (47.0, 67.1));
      ("Wasm2c", (40.7, 37.5));
      ("Wasm2c (no barrier)", (21.5, 20.8));
      ("Wasm2c (pinned register)", (16.5, 15.7));
      ("WAMR", (22.3, 18.2));
      ("LFI", (7.3, 6.4));
    ]
  (* t2a, m1 *)

  (* Figure 3 geomeans (LFI O2, full isolation). *)
  let fig3_geomean_m1 = 6.4
  let fig3_geomean_t2a = 7.3
  let fig3_no_loads = 1.0 (* "reduces overhead to around 1%" *)

  (* §6.3 code size. *)
  let text_increase = 12.9
  let binary_increase = 8.3
  let wamr_binary_increase = 22.0

  (* Table 5, ns. *)
  let table5_m1 = [ ("syscall", (22., 129., nan)); ("pipe", (46., 1504., nan));
                    ("yield", (17., nan, nan)) ]

  let table5_t2a =
    [ ("syscall", (26., 160., 12019.)); ("pipe", (48., 2494., 22899.));
      ("yield", (18., nan, nan)) ]

  (* §5.2 verifier speed. *)
  let verifier_mb_s = 34.0
  let wabt_mb_s = 3.0
end
