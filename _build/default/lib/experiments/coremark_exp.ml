(** CoreMark (Appendix A.6.3): the paper's artifact runs CoreMark when
    SPEC is unavailable.  Same statistic as Figure 3/4, one benchmark,
    every system. *)

open Lfi_emulator

let systems =
  [ Run.Lfi Lfi_core.Config.o0; Run.Lfi Lfi_core.Config.o1;
    Run.Lfi Lfi_core.Config.o2; Run.Lfi Lfi_core.Config.o2_no_loads ]
  @ List.map (fun e -> Run.Wasm e) Lfi_wasm.Engine.all

let table ~(uarch : Cost_model.t) : Report.table =
  let w = Lfi_workloads.Coremark.workload in
  let base = Run.run_cached ~uarch Run.Native w in
  {
    Report.title =
      Printf.sprintf "CoreMark - %s model (percent increase over native)"
        (String.uppercase_ascii uarch.Cost_model.name);
    header = [ "system"; "overhead" ];
    rows =
      List.map
        (fun sys ->
          let r = Run.run_cached ~uarch sys w in
          if r.Run.exit_code <> base.Run.exit_code then
            [ Run.system_name sys; "WRONG RESULT" ]
          else
            [ Run.system_name sys;
              Report.fmt_pct (Run.overhead ~base:base.Run.cycles r.Run.cycles) ])
        systems;
    notes =
      [ "the artifact's expectation: CoreMark shows the same overhead \
         picture as the SPEC subset" ];
  }

let run_all () = Report.print (table ~uarch:Cost_model.m1)
