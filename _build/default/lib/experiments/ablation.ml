(** Experiment E7 — ablations of the individual design choices.

    Figure 3 already isolates the big step (O0 → O1, the
    zero-instruction guard).  This experiment prices the two remaining
    optimizations the paper discusses:

    - §4.3 redundant guard elimination (O2 vs O1): "about a 1.5%
      overhead reduction (and the code size reduction is also useful)"
      on the benchmarks where hoistable field accesses dominate;
    - §4.2 "later access within the same basic block": eliding the sp
      guard after small immediate adjustments (the paper keeps all sp
      optimizations on even at O0; turning this one off shows why). *)

open Lfi_emulator

(* Benchmarks with pointer-struct access patterns (the Figure 2
   shape); the rest barely exercise hoisting. *)
let hoisting_benchmarks = [ "leela"; "xalancbmk"; "omnetpp"; "mcf"; "x264" ]

let no_sp_opt =
  { Lfi_core.Config.o2 with Lfi_core.Config.sp_block_optimization = false }

type row = {
  bench : string;
  o1_pct : float;
  o2_pct : float;
  no_sp_pct : float;
  o1_text : int;
  o2_text : int;
}

let measure ~(uarch : Cost_model.t) : row list =
  List.filter_map
    (fun short ->
      Option.map
        (fun w ->
          let base = (Run.run_cached ~uarch Run.Native w).Run.cycles in
          let r_o1 = Run.run_cached ~uarch (Run.Lfi Lfi_core.Config.o1) w in
          let r_o2 = Run.run_cached ~uarch (Run.Lfi Lfi_core.Config.o2) w in
          let r_nosp =
            Run.run ~uarch (Run.Lfi no_sp_opt) w.Lfi_workloads.Common.program
          in
          {
            bench = w.Lfi_workloads.Common.name;
            o1_pct = Run.overhead ~base r_o1.Run.cycles;
            o2_pct = Run.overhead ~base r_o2.Run.cycles;
            no_sp_pct = Run.overhead ~base r_nosp.Run.cycles;
            o1_text = r_o1.Run.text_bytes;
            o2_text = r_o2.Run.text_bytes;
          })
        (Lfi_workloads.Registry.find short))
    hoisting_benchmarks

let table ~(uarch : Cost_model.t) : Report.table =
  let rows = measure ~uarch in
  {
    Report.title =
      Printf.sprintf "Ablations (E7) - %s model: guard hoisting (§4.3) and \
                      the sp block optimization (§4.2)"
        (String.uppercase_ascii uarch.Cost_model.name);
    header =
      [ "benchmark"; "O1"; "O2"; "O2 w/o sp-elide"; "O1 text"; "O2 text" ];
    rows =
      List.map
        (fun r ->
          [
            r.bench;
            Report.fmt_pct r.o1_pct;
            Report.fmt_pct r.o2_pct;
            Report.fmt_pct r.no_sp_pct;
            Printf.sprintf "%dB" r.o1_text;
            Printf.sprintf "%dB" r.o2_text;
          ])
        rows;
    notes =
      [
        "paper: redundant guard elimination buys ~1.5% runtime plus code \
         size; sp guards are kept cheap by the same-basic-block elision";
      ];
  }

let run_all () = Report.print (table ~uarch:Cost_model.m1)
