lib/arm64/source.ml: Format Insn List Printer Printf String
