lib/arm64/encode.ml: Bytes Insn Int32 List Printer Printf Reg Result
