lib/arm64/reg.ml: Format List Printf String
