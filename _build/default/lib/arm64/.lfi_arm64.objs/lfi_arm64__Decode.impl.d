lib/arm64/decode.ml: Array Bytes Encode Insn Int32 Reg
