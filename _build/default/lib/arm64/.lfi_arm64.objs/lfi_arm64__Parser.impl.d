lib/arm64/parser.ml: Buffer Insn List Option Printf Reg Source String
