lib/arm64/assemble.ml: Buffer Bytes Encode Hashtbl Insn Int32 Int64 List Parser Printer Printf Source String
