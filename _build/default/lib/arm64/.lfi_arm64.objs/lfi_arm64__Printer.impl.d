lib/arm64/printer.ml: Format Insn Printf Reg
