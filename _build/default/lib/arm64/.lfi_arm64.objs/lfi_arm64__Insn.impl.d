lib/arm64/insn.ml: List Reg
