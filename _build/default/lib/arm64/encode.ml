(** Binary encoder for the instruction subset.

    Produces real A64 encodings (32-bit little-endian words) so that the
    static verifier, like the paper's, operates on actual machine code
    decoded from an ELF text segment rather than on a trusted AST.

    [encode] returns [Error _] for values that exist in the ADT but have
    no encoding (out-of-range immediates, sp in a zr-only position,
    unencodable logical immediates, ...).  The assembler surfaces these
    as assembly errors. *)

open Insn

type error = string

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let ( let* ) = Result.bind

(* Register number helpers.  [gp_or e r] returns the 5-bit field for a
   position where encoding 31 means [e] (`Zr or `Sp). *)
let field (pos : [ `Zr | `Sp ]) (r : Reg.t) : (int, error) result =
  match (r, pos) with
  | Reg.R (_, n), _ -> Ok n
  | Reg.ZR _, `Zr -> Ok 31
  | Reg.SP _, `Sp -> Ok 31
  | Reg.ZR _, `Sp -> err "zr not encodable here (sp position)"
  | Reg.SP _, `Zr -> err "sp not encodable here (zr position)"

let sf r = match Reg.width r with Reg.W64 -> 1 | Reg.W32 -> 0
let bits r = match Reg.width r with Reg.W64 -> 64 | Reg.W32 -> 32

let check cond msg = if cond then Ok () else Error msg

let ufits n width = n >= 0 && n < 1 lsl width
let sfits n width = n >= -(1 lsl (width - 1)) && n < 1 lsl (width - 1)

(** Two's-complement truncation of [n] to [width] bits. *)
let trunc n width = n land ((1 lsl width) - 1)

(* ------------------------------------------------------------------ *)
(* Logical (bitmask) immediates                                        *)
(* ------------------------------------------------------------------ *)

let popcount v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
  go v 0

let ror_e esize v r =
  let mask = if esize = 64 then -1 else (1 lsl esize) - 1 in
  let v = v land mask in
  if r = 0 then v else ((v lsr r) lor (v lsl (esize - r))) land mask

(** Encode [v] as an ARM64 bitmask immediate for register width
    [datasize] (32 or 64).  Returns [(n, immr, imms)].

    Note: values with bit 62 or 63 set are not representable in an OCaml
    [int] and therefore not supported; the subset never emits them. *)
let encode_bitmask ~datasize (v : int) : (int * int * int, error) result =
  let mask = if datasize = 64 then max_int else (1 lsl datasize) - 1 in
  (* max_int covers bits 0-61; 64-bit values above that are unsupported *)
  if v <= 0 || v land mask <> v || v = mask then
    err "value %d is not an encodable bitmask immediate" v
  else
    let rec try_esize = function
      | [] -> err "value %d is not an encodable bitmask immediate" v
      | esize :: rest ->
          if esize > datasize then
            err "value %d is not an encodable bitmask immediate" v
          else
            let emask = if esize = 64 then -1 else (1 lsl esize) - 1 in
            let elt = v land emask in
            (* check replication *)
            let rec replicated i =
              if i >= datasize then true
              else if (v lsr i) land emask = elt then replicated (i + esize)
              else false
            in
            if not (replicated 0) then try_esize rest
            else
              let ones = popcount elt in
              if ones = 0 || ones = esize then try_esize rest
              else
                let run = (1 lsl ones) - 1 in
                let rec find_r r =
                  if r >= esize then None
                  else if ror_e esize run r = elt then Some r
                  else find_r (r + 1)
                in
                (match find_r 0 with
                | None -> try_esize rest
                | Some r ->
                    let s = ones - 1 in
                    let n, imms_hi =
                      match esize with
                      | 64 -> (1, 0b0000000)
                      | 32 -> (0, 0b0000000)
                      | 16 -> (0, 0b0100000)
                      | 8 -> (0, 0b0110000)
                      | 4 -> (0, 0b0111000)
                      | _ -> (0, 0b0111100) (* esize = 2 *)
                    in
                    Ok (n, r, imms_hi lor s))
    in
    try_esize [ 2; 4; 8; 16; 32; 64 ]

(** Decode (n, immr, imms) for width [datasize]; returns [None] when the
    fields are reserved or the value does not fit an OCaml int. *)
let decode_bitmask ~datasize ~n ~immr ~imms : int option =
  let len =
    (* highest set bit of n:NOT(imms) over 7 bits *)
    let v = (n lsl 6) lor (lnot imms land 0x3f) in
    let rec hsb i = if i < 0 then -1 else if v lsr i land 1 = 1 then i else hsb (i - 1) in
    hsb 6
  in
  if len < 1 then None
  else
    let esize = 1 lsl len in
    if esize > datasize then None
    else
      let levels = esize - 1 in
      let s = imms land levels and r = immr land levels in
      if s = levels then None
      else
        let run = (1 lsl (s + 1)) - 1 in
        let elt = ror_e esize run r in
        let rec replicate acc i =
          if i >= datasize then acc else replicate (acc lor (elt lsl i)) (i + esize)
        in
        let v = replicate 0 0 in
        if v < 0 then None (* top bit set: unrepresentable in int *)
        else Some v

(* ------------------------------------------------------------------ *)
(* Field builders                                                      *)
(* ------------------------------------------------------------------ *)

let extend_num = function
  | Uxtb -> 0 | Uxth -> 1 | Uxtw -> 2 | Uxtx -> 3
  | Sxtb -> 4 | Sxth -> 5 | Sxtw -> 6 | Sxtx -> 7

let extend_of_num = function
  | 0 -> Uxtb | 1 -> Uxth | 2 -> Uxtw | 3 -> Uxtx
  | 4 -> Sxtb | 5 -> Sxth | 6 -> Sxtw | _ -> Sxtx

let shift_num = function Lsl -> 0 | Lsr -> 1 | Asr -> 2 | Ror -> 3

let mem_size_num (sz : mem_size) =
  match sz with B -> 0 | H -> 1 | W -> 2 | X -> 3

(* ------------------------------------------------------------------ *)
(* Main encoder                                                        *)
(* ------------------------------------------------------------------ *)

let encode_alu ~(op : alu_op) ~flags ~dst ~src ~op2 =
  let w = bits dst in
  match op2 with
  | Imm (v, sh) -> (
      match op with
      | ADD | SUB ->
          let* () = check (sh = 0 || sh = 12) "add/sub imm shift must be 0/12" in
          let* () = check (ufits v 12) "add/sub immediate out of range" in
          let* rd = field (if flags then `Zr else `Sp) dst in
          let* rn = field `Sp src in
          let opb = if op = SUB then 1 else 0 in
          let s = if flags then 1 else 0 in
          Ok
            ((sf dst lsl 31) lor (opb lsl 30) lor (s lsl 29)
            lor (0b100010 lsl 23)
            lor ((if sh = 12 then 1 else 0) lsl 22)
            lor (v lsl 10) lor (rn lsl 5) lor rd)
      | AND | ORR | EOR ->
          let* () = check (sh = 0) "logical imm cannot be shifted" in
          let* n, immr, imms = encode_bitmask ~datasize:w v in
          let opc =
            match (op, flags) with
            | AND, false -> 0b00
            | ORR, _ -> 0b01
            | EOR, _ -> 0b10
            | AND, true -> 0b11
            | _ -> 0
          in
          let* () =
            check (not (flags && op <> AND)) "only ands sets flags with imm"
          in
          let* rd = field (if flags then `Zr else `Sp) dst in
          let* rn = field `Zr src in
          Ok
            ((sf dst lsl 31) lor (opc lsl 29) lor (0b100100 lsl 23)
            lor (n lsl 22) lor (immr lsl 16) lor (imms lsl 10) lor (rn lsl 5)
            lor rd)
      | BIC | ORN | EON -> err "no immediate form for bic/orn/eon")
  | Sh (rm, k, a) -> (
      let* () = check (a >= 0 && a < w) "shift amount out of range" in
      let* rm_n = field `Zr rm in
      let* rn = field `Zr src in
      let* rd = field `Zr dst in
      match op with
      | ADD | SUB ->
          let* () = check (k <> Ror) "ror shift invalid for add/sub" in
          let opb = if op = SUB then 1 else 0 in
          let s = if flags then 1 else 0 in
          Ok
            ((sf dst lsl 31) lor (opb lsl 30) lor (s lsl 29)
            lor (0b01011 lsl 24)
            lor (shift_num k lsl 22)
            lor (rm_n lsl 16) lor (a lsl 10) lor (rn lsl 5) lor rd)
      | AND | ORR | EOR | BIC | ORN | EON ->
          let opc, ng =
            match (op, flags) with
            | AND, false -> (0b00, 0)
            | BIC, false -> (0b00, 1)
            | ORR, false -> (0b01, 0)
            | ORN, false -> (0b01, 1)
            | EOR, false -> (0b10, 0)
            | EON, false -> (0b10, 1)
            | AND, true -> (0b11, 0)
            | BIC, true -> (0b11, 1)
            | (ADD | SUB | ORR | ORN | EOR | EON), _ -> (-1, 0)
          in
          let* () = check (opc >= 0) "flags not encodable for this op" in
          Ok
            ((sf dst lsl 31) lor (opc lsl 29) lor (0b01010 lsl 24)
            lor (shift_num k lsl 22)
            lor (ng lsl 21) lor (rm_n lsl 16) lor (a lsl 10) lor (rn lsl 5)
            lor rd))
  | Ext (rm, e, a) -> (
      match op with
      | ADD | SUB ->
          let* () = check (a >= 0 && a <= 4) "extend amount out of range" in
          let* rm_n = field `Zr rm in
          let* rn = field `Sp src in
          let* rd = field (if flags then `Zr else `Sp) dst in
          let opb = if op = SUB then 1 else 0 in
          let s = if flags then 1 else 0 in
          Ok
            ((sf dst lsl 31) lor (opb lsl 30) lor (s lsl 29)
            lor (0b01011001 lsl 21)
            lor (rm_n lsl 16)
            lor (extend_num e lsl 13)
            lor (a lsl 10) lor (rn lsl 5) lor rd)
      | _ -> err "extended-register form only exists for add/sub")

(** Encode the addressing-mode-bearing part of an integer load/store.
    [size] is the size field, [opc] the opc field, [v] the SIMD bit,
    [rt] the data register field. *)
let encode_mem ~size ~v ~opc ~rt addr =
  let scale =
    (* bytes = 1 << scale; Q registers use size=00/opc bit 1 with scale 4 *)
    if v = 1 && size = 0 && opc land 0b10 <> 0 then 4 else size
  in
  let unit = 1 lsl scale in
  match addr with
  | Imm_off (rn, off) -> (
      let* rn_n = field `Sp rn in
      if off >= 0 && off mod unit = 0 && ufits (off / unit) 12 then
        Ok
          ((size lsl 30) lor (0b111 lsl 27) lor (v lsl 26) lor (0b01 lsl 24)
          lor (opc lsl 22)
          lor ((off / unit) lsl 10)
          lor (rn_n lsl 5) lor rt)
      else if sfits off 9 then
        (* unscaled (ldur/stur family) *)
        Ok
          ((size lsl 30) lor (0b111 lsl 27) lor (v lsl 26) lor (0b00 lsl 24)
          lor (opc lsl 22)
          lor (trunc off 9 lsl 12)
          lor (0b00 lsl 10) lor (rn_n lsl 5) lor rt)
      else err "load/store offset %d out of range" off)
  | Pre (rn, i) | Post (rn, i) ->
      let* () = check (sfits i 9) "pre/post-index offset out of range" in
      let* rn_n = field `Sp rn in
      let mode = match addr with Pre _ -> 0b11 | _ -> 0b01 in
      Ok
        ((size lsl 30) lor (0b111 lsl 27) lor (v lsl 26) lor (0b00 lsl 24)
        lor (opc lsl 22)
        lor (trunc i 9 lsl 12)
        lor (mode lsl 10) lor (rn_n lsl 5) lor rt)
  | Reg_off (rn, rm, e, a) ->
      let* () =
        check
          (match e with Uxtw | Sxtw | Uxtx | Sxtx -> true | _ -> false)
          "invalid extend for register offset"
      in
      let* () =
        check
          ((match e with
           | Uxtw | Sxtw -> Reg.width rm = Reg.W32
           | _ -> Reg.width rm = Reg.W64)
          && (a = 0 || a = scale))
          "register-offset operand mismatch"
      in
      let* rn_n = field `Sp rn in
      let* rm_n = field `Zr rm in
      let s = if a = 0 then 0 else 1 in
      Ok
        ((size lsl 30) lor (0b111 lsl 27) lor (v lsl 26) lor (0b00 lsl 24)
        lor (opc lsl 22) lor (1 lsl 21) lor (rm_n lsl 16)
        lor (extend_num e lsl 13)
        lor (s lsl 12) lor (0b10 lsl 10) lor (rn_n lsl 5) lor rt)

let fp_size_fields (f : Reg.Fp.t) =
  match f.Reg.Fp.size with
  | Reg.Fp.S -> (0b10, 0b01, 0b00) (* size, opc load, opc store *)
  | Reg.Fp.D -> (0b11, 0b01, 0b00)
  | Reg.Fp.Q -> (0b00, 0b11, 0b10)

let encode_pair ~opc ~v ~load ~rt ~rt2 ~unit addr =
  let enc mode rn i =
    let* () =
      check (i mod unit = 0 && sfits (i / unit) 7) "pair offset out of range"
    in
    let* rn_n = field `Sp rn in
    Ok
      ((opc lsl 30) lor (0b101 lsl 27) lor (v lsl 26) lor (mode lsl 23)
      lor ((if load then 1 else 0) lsl 22)
      lor (trunc (i / unit) 7 lsl 15)
      lor (rt2 lsl 10) lor (rn_n lsl 5) lor rt)
  in
  match addr with
  | Imm_off (rn, i) -> enc 0b010 rn i
  | Pre (rn, i) -> enc 0b011 rn i
  | Post (rn, i) -> enc 0b001 rn i
  | Reg_off _ -> err "register-offset invalid for pair"

let branch_offset t =
  match t with
  | Off n ->
      if n mod 4 = 0 then Ok (n / 4) else err "branch offset not aligned"
  | Sym s -> err "unresolved symbol %S (assemble first)" s

let fp_type (f : Reg.Fp.t) =
  match f.Reg.Fp.size with
  | Reg.Fp.S -> Ok 0b00
  | Reg.Fp.D -> Ok 0b01
  | Reg.Fp.Q -> err "q register invalid in FP arithmetic"

let sysreg_encoding = function
  | "tpidr_el0" -> Ok 0b1_011_1101_0000_010
  | "scxtnum_el0" -> Ok 0b1_011_1101_0000_111
  | "fpcr" -> Ok 0b1_011_0100_0100_000
  | s -> err "unknown system register %S" s

let sysreg_of_encoding = function
  | 0b1_011_1101_0000_010 -> Some "tpidr_el0"
  | 0b1_011_1101_0000_111 -> Some "scxtnum_el0"
  | 0b1_011_0100_0100_000 -> Some "fpcr"
  | _ -> None

(** Encode one instruction to a 32-bit word.  Branch targets must be
    [Off]; the assembler resolves symbols first. *)
let encode (i : t) : (int, error) result =
  match i with
  | Alu { op; flags; dst; src; op2 } ->
      let* () =
        check (Reg.width dst = Reg.width src) "operand width mismatch"
      in
      let* () =
        check
          (match op2 with
          | Sh (r, _, _) -> Reg.width r = Reg.width dst
          | Ext (r, Uxtw, _) | Ext (r, Sxtw, _) -> Reg.width r = Reg.W32
          | Ext (r, Uxtx, _) | Ext (r, Sxtx, _) -> Reg.width r = Reg.W64
          | Ext (r, (Uxtb | Uxth | Sxtb | Sxth), _) ->
              Reg.width r = Reg.W32
          | Imm _ -> true)
          "operand width mismatch in op2"
      in
      encode_alu ~op ~flags ~dst ~src ~op2
  | Shiftv { op; dst; src; amount } ->
      let* rd = field `Zr dst in
      let* rn = field `Zr src in
      let* rm = field `Zr amount in
      let op2 =
        match op with Lsl -> 0b00 | Lsr -> 0b01 | Asr -> 0b10 | Ror -> 0b11
      in
      Ok
        ((sf dst lsl 31) lor (0b0011010110 lsl 21) lor (rm lsl 16)
        lor (0b0010 lsl 12) lor (op2 lsl 10) lor (rn lsl 5) lor rd)
  | Mov { op; dst; imm; hw } ->
      let* rd = field `Zr dst in
      let* () = check (ufits imm 16) "mov immediate out of range" in
      let* () =
        check
          (hw >= 0 && hw < (if sf dst = 1 then 4 else 2))
          "mov hw out of range"
      in
      let opc = match op with MOVN -> 0b00 | MOVZ -> 0b10 | MOVK -> 0b11 in
      Ok
        ((sf dst lsl 31) lor (opc lsl 29) lor (0b100101 lsl 23)
        lor (hw lsl 21) lor (imm lsl 5) lor rd)
  | Bitfield { op; dst; src; immr; imms } ->
      let w = bits dst in
      let* () = check (Reg.width dst = Reg.width src) "width mismatch" in
      let* () =
        check (immr >= 0 && immr < w && imms >= 0 && imms < w)
          "bitfield out of range"
      in
      let* rd = field `Zr dst in
      let* rn = field `Zr src in
      let opc = match op with SBFM -> 0b00 | BFM -> 0b01 | UBFM -> 0b10 in
      let n = sf dst in
      Ok
        ((sf dst lsl 31) lor (opc lsl 29) lor (0b100110 lsl 23) lor (n lsl 22)
        lor (immr lsl 16) lor (imms lsl 10) lor (rn lsl 5) lor rd)
  | Extr { dst; src1; src2; lsb } ->
      let w = bits dst in
      let* () = check (lsb >= 0 && lsb < w) "extr lsb out of range" in
      let* rd = field `Zr dst in
      let* rn = field `Zr src1 in
      let* rm = field `Zr src2 in
      let n = sf dst in
      Ok
        ((sf dst lsl 31) lor (0b00100111 lsl 23) lor (n lsl 22) lor (rm lsl 16)
        lor (lsb lsl 10) lor (rn lsl 5) lor rd)
  | Madd { sub; dst; src1; src2; acc } ->
      let* rd = field `Zr dst in
      let* rn = field `Zr src1 in
      let* rm = field `Zr src2 in
      let* ra = field `Zr acc in
      Ok
        ((sf dst lsl 31) lor (0b0011011000 lsl 21) lor (rm lsl 16)
        lor ((if sub then 1 else 0) lsl 15)
        lor (ra lsl 10) lor (rn lsl 5) lor rd)
  | Maddl { signed; sub; dst; src1; src2; acc } ->
      let* () =
        check
          (Reg.width dst = Reg.W64 && Reg.width acc = Reg.W64
          && Reg.width src1 = Reg.W32 && Reg.width src2 = Reg.W32)
          "maddl operand widths"
      in
      let* rd = field `Zr dst in
      let* rn = field `Zr src1 in
      let* rm = field `Zr src2 in
      let* ra = field `Zr acc in
      let op31 = if signed then 0b001 else 0b101 in
      Ok
        ((1 lsl 31) lor (0b0011011 lsl 24) lor (op31 lsl 21) lor (rm lsl 16)
        lor ((if sub then 1 else 0) lsl 15)
        lor (ra lsl 10) lor (rn lsl 5) lor rd)
  | Ccmp { cmn; src; op2; nzcv; cond } ->
      let* () = check (ufits nzcv 4) "nzcv out of range" in
      let* rn = field `Zr src in
      let base =
        (sf src lsl 31)
        lor (((if cmn then 0 else 1)) lsl 30)
        lor (1 lsl 29) lor (0b11010010 lsl 21)
        lor (cond_number cond lsl 12)
        lor (rn lsl 5) lor nzcv
      in
      (match op2 with
      | CReg rm ->
          let* () = check (Reg.width rm = Reg.width src) "ccmp width" in
          let* rm_n = field `Zr rm in
          Ok (base lor (rm_n lsl 16))
      | CImm v ->
          let* () = check (ufits v 5) "ccmp immediate out of range" in
          Ok (base lor (v lsl 16) lor (1 lsl 11)))
  | Smulh { signed; dst; src1; src2 } ->
      let* () = check (sf dst = 1) "smulh/umulh are 64-bit only" in
      let* rd = field `Zr dst in
      let* rn = field `Zr src1 in
      let* rm = field `Zr src2 in
      let op31 = if signed then 0b010 else 0b110 in
      Ok
        ((1 lsl 31) lor (0b0011011 lsl 24) lor (op31 lsl 21) lor (rm lsl 16)
        lor (0b11111 lsl 10) lor (rn lsl 5) lor rd)
  | Div { signed; dst; src1; src2 } ->
      let* rd = field `Zr dst in
      let* rn = field `Zr src1 in
      let* rm = field `Zr src2 in
      let o = if signed then 0b000011 else 0b000010 in
      Ok
        ((sf dst lsl 31) lor (0b0011010110 lsl 21) lor (rm lsl 16)
        lor (o lsl 10) lor (rn lsl 5) lor rd)
  | Csel { op; dst; src1; src2; cond } ->
      let* rd = field `Zr dst in
      let* rn = field `Zr src1 in
      let* rm = field `Zr src2 in
      let opb, o2 =
        match op with
        | CSEL -> (0, 0)
        | CSINC -> (0, 1)
        | CSINV -> (1, 0)
        | CSNEG -> (1, 1)
      in
      Ok
        ((sf dst lsl 31) lor (opb lsl 30) lor (0b11010100 lsl 21)
        lor (rm lsl 16)
        lor (cond_number cond lsl 12)
        lor (o2 lsl 10) lor (rn lsl 5) lor rd)
  | Cls { count_zero; dst; src } ->
      let* rd = field `Zr dst in
      let* rn = field `Zr src in
      let o = if count_zero then 0b000100 else 0b000101 in
      Ok
        ((sf dst lsl 31) lor (0b1011010110 lsl 21) lor (o lsl 10) lor (rn lsl 5)
        lor rd)
  | Rbit { dst; src } ->
      let* rd = field `Zr dst in
      let* rn = field `Zr src in
      Ok ((sf dst lsl 31) lor (0b1011010110 lsl 21) lor (rn lsl 5) lor rd)
  | Rev { bytes; dst; src } ->
      let* rd = field `Zr dst in
      let* rn = field `Zr src in
      let* o =
        match (bytes, sf dst) with
        | 2, _ -> Ok 0b000001
        | 4, 0 -> Ok 0b000010
        | 4, 1 -> Ok 0b000010
        | 8, 1 -> Ok 0b000011
        | _ -> err "invalid rev width"
      in
      Ok
        ((sf dst lsl 31) lor (0b1011010110 lsl 21) lor (o lsl 10) lor (rn lsl 5)
        lor rd)
  | Adr { page; dst; target } -> (
      let* rd = field `Zr dst in
      let* () = check (sf dst = 1) "adr destination must be 64-bit" in
      match target with
      | Sym s -> err "unresolved symbol %S" s
      | Off n ->
          let imm = if page then n asr 12 else n in
          let* () =
            check
              (sfits imm 21 && ((not page) || n land 0xfff = 0))
              "adr offset out of range"
          in
          let v = trunc imm 21 in
          Ok
            (((if page then 1 else 0) lsl 31)
            lor ((v land 0b11) lsl 29)
            lor (0b10000 lsl 24)
            lor ((v lsr 2) lsl 5)
            lor rd))
  | Ldr { sz; signed; dst; addr } ->
      let* rt = field `Zr dst in
      let size = mem_size_num sz in
      let* opc =
        match (signed, Reg.width dst, sz) with
        | false, Reg.W64, X -> Ok 0b01
        | false, Reg.W32, (B | H | W) -> Ok 0b01
        | true, Reg.W64, (B | H | W) -> Ok 0b10
        | true, Reg.W32, (B | H) -> Ok 0b11
        | _ -> err "invalid load form"
      in
      encode_mem ~size ~v:0 ~opc ~rt addr
  | Str { sz; src; addr } ->
      let* rt = field `Zr src in
      let* () =
        check
          (match (sz, Reg.width src) with
          | X, Reg.W64 | (B | H | W), Reg.W32 -> true
          | _ -> false)
          "invalid store form"
      in
      encode_mem ~size:(mem_size_num sz) ~v:0 ~opc:0b00 ~rt addr
  | Ldp { w; r1; r2; addr } ->
      let* rt = field `Zr r1 in
      let* rt2 = field `Zr r2 in
      let opc, unit = match w with Reg.W64 -> (0b10, 8) | Reg.W32 -> (0b00, 4) in
      encode_pair ~opc ~v:0 ~load:true ~rt ~rt2 ~unit addr
  | Stp { w; r1; r2; addr } ->
      let* rt = field `Zr r1 in
      let* rt2 = field `Zr r2 in
      let opc, unit = match w with Reg.W64 -> (0b10, 8) | Reg.W32 -> (0b00, 4) in
      encode_pair ~opc ~v:0 ~load:false ~rt ~rt2 ~unit addr
  | Fldr { dst; addr } ->
      let size, opc, _ = fp_size_fields dst in
      encode_mem ~size ~v:1 ~opc ~rt:dst.Reg.Fp.n addr
  | Fstr { src; addr } ->
      let size, _, opc = fp_size_fields src in
      encode_mem ~size ~v:1 ~opc ~rt:src.Reg.Fp.n addr
  | Fldp { r1; r2; addr } ->
      let* () =
        check (r1.Reg.Fp.size = r2.Reg.Fp.size) "fp pair size mismatch"
      in
      let opc =
        match r1.Reg.Fp.size with
        | Reg.Fp.S -> 0b00
        | Reg.Fp.D -> 0b01
        | Reg.Fp.Q -> 0b10
      in
      encode_pair ~opc ~v:1 ~load:true ~rt:r1.Reg.Fp.n ~rt2:r2.Reg.Fp.n
        ~unit:(Reg.Fp.bytes r1) addr
  | Fstp { r1; r2; addr } ->
      let* () =
        check (r1.Reg.Fp.size = r2.Reg.Fp.size) "fp pair size mismatch"
      in
      let opc =
        match r1.Reg.Fp.size with
        | Reg.Fp.S -> 0b00
        | Reg.Fp.D -> 0b01
        | Reg.Fp.Q -> 0b10
      in
      encode_pair ~opc ~v:1 ~load:false ~rt:r1.Reg.Fp.n ~rt2:r2.Reg.Fp.n
        ~unit:(Reg.Fp.bytes r1) addr
  | Ldxr { sz; dst; base } ->
      let* rt = field `Zr dst in
      let* rn = field `Sp base in
      Ok
        ((mem_size_num sz lsl 30) lor (0b001000 lsl 24) lor (0b010 lsl 21)
        lor (0b11111 lsl 16) lor (0b011111 lsl 10) lor (rn lsl 5) lor rt)
  | Stxr { sz; status; src; base } ->
      let* rt = field `Zr src in
      let* rs = field `Zr status in
      let* rn = field `Sp base in
      Ok
        ((mem_size_num sz lsl 30) lor (0b001000 lsl 24) lor (rs lsl 16)
        lor (0b011111 lsl 10) lor (rn lsl 5) lor rt)
  | Ldar { sz; dst; base } ->
      let* rt = field `Zr dst in
      let* rn = field `Sp base in
      Ok
        ((mem_size_num sz lsl 30) lor (0b001000 lsl 24) lor (0b110 lsl 21)
        lor (0b11111 lsl 16) lor (0b111111 lsl 10) lor (rn lsl 5) lor rt)
  | Stlr { sz; src; base } ->
      let* rt = field `Zr src in
      let* rn = field `Sp base in
      Ok
        ((mem_size_num sz lsl 30) lor (0b001000 lsl 24) lor (0b100 lsl 21)
        lor (0b11111 lsl 16) lor (0b111111 lsl 10) lor (rn lsl 5) lor rt)
  | B t ->
      let* off = branch_offset t in
      let* () = check (sfits off 26) "branch out of range" in
      Ok ((0b000101 lsl 26) lor trunc off 26)
  | Bl t ->
      let* off = branch_offset t in
      let* () = check (sfits off 26) "branch out of range" in
      Ok ((0b100101 lsl 26) lor trunc off 26)
  | Bcond (c, t) ->
      let* off = branch_offset t in
      let* () = check (sfits off 19) "branch out of range" in
      Ok ((0b01010100 lsl 24) lor (trunc off 19 lsl 5) lor cond_number c)
  | Cbz { nz; reg; target } ->
      let* rt = field `Zr reg in
      let* off = branch_offset target in
      let* () = check (sfits off 19) "branch out of range" in
      Ok
        ((sf reg lsl 31) lor (0b011010 lsl 25)
        lor ((if nz then 1 else 0) lsl 24)
        lor (trunc off 19 lsl 5) lor rt)
  | Tbz { nz; reg; bit; target } ->
      let* rt = field `Zr reg in
      let* () = check (bit >= 0 && bit < bits reg) "tbz bit out of range" in
      let* off = branch_offset target in
      let* () = check (sfits off 14) "tbz branch out of range" in
      let b5 = bit lsr 5 and b40 = bit land 0x1f in
      Ok
        ((b5 lsl 31) lor (0b011011 lsl 25)
        lor ((if nz then 1 else 0) lsl 24)
        lor (b40 lsl 19)
        lor (trunc off 14 lsl 5)
        lor rt)
  | Br r ->
      let* rn = field `Zr r in
      Ok (0xD61F0000 lor (rn lsl 5))
  | Blr r ->
      let* rn = field `Zr r in
      Ok (0xD63F0000 lor (rn lsl 5))
  | Ret r ->
      let* rn = field `Zr r in
      Ok (0xD65F0000 lor (rn lsl 5))
  | Fop2 { op; dst; src1; src2 } ->
      let* ty = fp_type dst in
      let* () =
        check
          (dst.Reg.Fp.size = src1.Reg.Fp.size
          && dst.Reg.Fp.size = src2.Reg.Fp.size)
          "fp width mismatch"
      in
      let opc =
        match op with
        | FMUL -> 0b0000
        | FDIV -> 0b0001
        | FADD -> 0b0010
        | FSUB -> 0b0011
        | FMAX -> 0b0100
        | FMIN -> 0b0101
      in
      Ok
        ((0b00011110 lsl 24) lor (ty lsl 22) lor (1 lsl 21)
        lor (src2.Reg.Fp.n lsl 16) lor (opc lsl 12) lor (0b10 lsl 10)
        lor (src1.Reg.Fp.n lsl 5) lor dst.Reg.Fp.n)
  | Fop1 { op; dst; src } ->
      let* ty = fp_type dst in
      let* () = check (dst.Reg.Fp.size = src.Reg.Fp.size) "fp width mismatch" in
      let opc =
        match op with
        | FMOV -> 0b000000
        | FABS -> 0b000001
        | FNEG -> 0b000010
        | FSQRT -> 0b000011
      in
      Ok
        ((0b00011110 lsl 24) lor (ty lsl 22) lor (1 lsl 21) lor (opc lsl 15)
        lor (0b10000 lsl 10) lor (src.Reg.Fp.n lsl 5) lor dst.Reg.Fp.n)
  | Fmadd { sub; dst; src1; src2; acc } ->
      let* ty = fp_type dst in
      Ok
        ((0b00011111 lsl 24) lor (ty lsl 22) lor (src2.Reg.Fp.n lsl 16)
        lor ((if sub then 1 else 0) lsl 15)
        lor (acc.Reg.Fp.n lsl 10) lor (src1.Reg.Fp.n lsl 5) lor dst.Reg.Fp.n)
  | Fcmp { src1; src2 } ->
      let* ty = fp_type src1 in
      let rm, opcode2 =
        match src2 with Some r -> (r.Reg.Fp.n, 0b00000) | None -> (0, 0b01000)
      in
      Ok
        ((0b00011110 lsl 24) lor (ty lsl 22) lor (1 lsl 21) lor (rm lsl 16)
        lor (0b1000 lsl 10) lor (src1.Reg.Fp.n lsl 5) lor opcode2)
  | Fcvt { dst; src } -> (
      match (src.Reg.Fp.size, dst.Reg.Fp.size) with
      | Reg.Fp.S, Reg.Fp.D ->
          Ok (0x1E22C000 lor (src.Reg.Fp.n lsl 5) lor dst.Reg.Fp.n)
      | Reg.Fp.D, Reg.Fp.S ->
          Ok (0x1E624000 lor (src.Reg.Fp.n lsl 5) lor dst.Reg.Fp.n)
      | _ -> err "unsupported fcvt")
  | Scvtf { signed; dst; src } ->
      let* ty = fp_type dst in
      let* rn = field `Zr src in
      let opcode = if signed then 0b010 else 0b011 in
      Ok
        ((sf src lsl 31) lor (0b0011110 lsl 24) lor (ty lsl 22) lor (1 lsl 21)
        lor (opcode lsl 16) lor (rn lsl 5) lor dst.Reg.Fp.n)
  | Fcvtzs { signed; dst; src } ->
      let* ty = fp_type src in
      let* rd = field `Zr dst in
      let opcode = if signed then 0b000 else 0b001 in
      Ok
        ((sf dst lsl 31) lor (0b0011110 lsl 24) lor (ty lsl 22) lor (1 lsl 21)
        lor (0b11 lsl 19) lor (opcode lsl 16) lor (src.Reg.Fp.n lsl 5) lor rd)
  | Fmov_to_fp { dst; src } ->
      let* ty, s =
        match (dst.Reg.Fp.size, Reg.width src) with
        | Reg.Fp.D, Reg.W64 -> Ok (0b01, 1)
        | Reg.Fp.S, Reg.W32 -> Ok (0b00, 0)
        | _ -> err "fmov width mismatch"
      in
      let* rn = field `Zr src in
      Ok
        ((s lsl 31) lor (0b0011110 lsl 24) lor (ty lsl 22) lor (1 lsl 21)
        lor (0b111 lsl 16) lor (rn lsl 5) lor dst.Reg.Fp.n)
  | Fmov_from_fp { dst; src } ->
      let* ty, s =
        match (src.Reg.Fp.size, Reg.width dst) with
        | Reg.Fp.D, Reg.W64 -> Ok (0b01, 1)
        | Reg.Fp.S, Reg.W32 -> Ok (0b00, 0)
        | _ -> err "fmov width mismatch"
      in
      let* rd = field `Zr dst in
      Ok
        ((s lsl 31) lor (0b0011110 lsl 24) lor (ty lsl 22) lor (1 lsl 21)
        lor (0b110 lsl 16) lor (src.Reg.Fp.n lsl 5) lor rd)
  | Nop -> Ok 0xD503201F
  | Svc n ->
      let* () = check (ufits n 16) "svc immediate out of range" in
      Ok (0xD4000001 lor (n lsl 5))
  | Mrs { dst; sysreg } ->
      let* rt = field `Zr dst in
      let* enc = sysreg_encoding sysreg in
      Ok (0xD5300000 lor (enc lsl 5) lor rt)
  | Msr { sysreg; src } ->
      let* rt = field `Zr src in
      let* enc = sysreg_encoding sysreg in
      Ok (0xD5100000 lor (enc lsl 5) lor rt)
  | Dmb -> Ok 0xD5033BBF
  | Udf n ->
      let* () = check (ufits n 16) "udf immediate out of range" in
      Ok n

(** Encode a list of instructions into a bytes buffer (little-endian). *)
let encode_all (insns : t list) : (bytes, error) result =
  let buf = Bytes.create (4 * List.length insns) in
  let rec go idx = function
    | [] -> Ok buf
    | i :: tl -> (
        match encode i with
        | Ok w ->
            Bytes.set_int32_le buf (idx * 4) (Int32.of_int w);
            go (idx + 1) tl
        | Error e ->
            err "instruction %d (%s): %s" idx (Printer.to_string i) e)
  in
  go 0 insns
