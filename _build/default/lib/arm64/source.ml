(** Representation of a GNU assembly source file.

    The LFI rewriter — like the paper's implementation — operates on
    assembly *text*: it parses each line into either a label, an
    instruction, or an opaque directive, transforms the instruction
    stream, and prints the result back out for the assembler. *)

type item =
  | Label of string
  | Insn of Insn.t
  | Directive of string * string
      (** directive name (with leading dot) and its argument text,
          passed through opaquely *)

type t = item list

let item_to_string = function
  | Label l -> l ^ ":"
  | Insn i -> "\t" ^ Printer.to_string i
  | Directive (d, "") -> "\t" ^ d
  | Directive (d, args) -> Printf.sprintf "\t%s %s" d args

let to_string (src : t) =
  String.concat "\n" (List.map item_to_string src) ^ "\n"

let pp fmt src = Format.pp_print_string fmt (to_string src)

(** All instructions, in order. *)
let insns (src : t) =
  List.filter_map (function Insn i -> Some i | _ -> None) src

(** Number of instructions (each is 4 bytes of text segment). *)
let insn_count src = List.length (insns src)
