(** General-purpose and SIMD/FP registers of the ARM64 subset used by LFI.

    ARM64 has 31 general-purpose registers [x0]-[x30] that can also be
    accessed through their 32-bit halves [w0]-[w30] (writing a 32-bit
    name zeroes the top 32 bits — the property the LFI guard relies on),
    a zero register [xzr]/[wzr], and a dedicated stack pointer [sp]/[wsp]
    that shares encoding number 31 with the zero register. *)

type width = W32 | W64

(** A general register operand.  Encoding number 31 is either the zero
    register or the stack pointer depending on the instruction; we keep
    the distinction explicit so the rewriter and verifier never confuse
    them. *)
type t =
  | R of width * int  (** [x0]-[x30] / [w0]-[w30]; invariant: 0 <= n <= 30 *)
  | ZR of width       (** xzr / wzr *)
  | SP of width       (** sp / wsp *)

let equal (a : t) (b : t) = a = b

(* LFI reserved registers (Section 3 of the paper). *)

let base = R (W64, 21)     (* x21: sandbox base address, never written   *)
let addr = R (W64, 18)     (* x18: always a valid sandbox address        *)
let scratch32 = R (W64, 22)(* x22: always holds a 32-bit value           *)
let hoist1 = R (W64, 23)   (* x23: hoisting register (valid address)     *)
let hoist2 = R (W64, 24)   (* x24: hoisting register (valid address)     *)
let lr = R (W64, 30)       (* x30: link register, always a valid target  *)

let reserved_numbers = [ 18; 21; 22; 23; 24 ]

(** Number used in the machine encoding: 0-30 for named registers and 31
    for both [ZR] and [SP]. *)
let encoding_number = function R (_, n) -> n | ZR _ -> 31 | SP _ -> 31

let width = function R (w, _) | ZR w | SP w -> w

let with_width w = function
  | R (_, n) -> R (w, n)
  | ZR _ -> ZR w
  | SP _ -> SP w

(** [number_of r] is the architectural register number of [r] when [r]
    names one of x0-x30, regardless of operand width. *)
let number_of = function R (_, n) -> Some n | ZR _ | SP _ -> None

let is_reserved r =
  match number_of r with
  | Some n -> List.mem n reserved_numbers
  | None -> false

let is_sp = function SP _ -> true | R _ | ZR _ -> false
let is_zr = function ZR _ -> true | R _ | SP _ -> false

let x n =
  if n < 0 || n > 30 then invalid_arg "Reg.x";
  R (W64, n)

let w n =
  if n < 0 || n > 30 then invalid_arg "Reg.w";
  R (W32, n)

let xzr = ZR W64
let wzr = ZR W32
let sp = SP W64
let wsp = SP W32

let to_string = function
  | R (W64, n) -> Printf.sprintf "x%d" n
  | R (W32, n) -> Printf.sprintf "w%d" n
  | ZR W64 -> "xzr"
  | ZR W32 -> "wzr"
  | SP W64 -> "sp"
  | SP W32 -> "wsp"

let pp fmt r = Format.pp_print_string fmt (to_string r)

(** Parse a register name, e.g. ["x21"], ["wsp"].  Returns [None] on
    anything else. *)
let of_string s =
  match s with
  | "xzr" -> Some (ZR W64)
  | "wzr" -> Some (ZR W32)
  | "sp" -> Some (SP W64)
  | "wsp" -> Some (SP W32)
  | "lr" -> Some (R (W64, 30))
  | _ ->
      let len = String.length s in
      if len < 2 || len > 3 then None
      else
        let wd =
          match s.[0] with 'x' -> Some W64 | 'w' -> Some W32 | _ -> None
        in
        match wd with
        | None -> None
        | Some wd -> (
            match int_of_string_opt (String.sub s 1 (len - 1)) with
            | Some n when n >= 0 && n <= 30 -> Some (R (wd, n))
            | Some _ | None -> None)

(** SIMD/FP registers.  The subset uses scalar [s]/[d] views and the
    128-bit [q] view (for SIMD loads/stores). *)
module Fp = struct
  type size = S | D | Q

  type t = { size : size; n : int }  (** invariant: 0 <= n <= 31 *)

  let v size n =
    if n < 0 || n > 31 then invalid_arg "Reg.Fp.v";
    { size; n }

  let equal (a : t) (b : t) = a = b

  let to_string { size; n } =
    let c = match size with S -> 's' | D -> 'd' | Q -> 'q' in
    Printf.sprintf "%c%d" c n

  let pp fmt r = Format.pp_print_string fmt (to_string r)

  let of_string s =
    let len = String.length s in
    if len < 2 || len > 3 then None
    else
      let size =
        match s.[0] with
        | 's' -> Some S
        | 'd' -> Some D
        | 'q' -> Some Q
        | _ -> None
      in
      match size with
      | None -> None
      | Some size -> (
          match int_of_string_opt (String.sub s 1 (len - 1)) with
          | Some n when n >= 0 && n <= 31 -> Some { size; n }
          | Some _ | None -> None)

  let bytes { size; _ } = match size with S -> 4 | D -> 8 | Q -> 16
end
