(** GNU-syntax printer for the instruction subset.

    The printed form is canonical: for every [Insn.t] value there is
    exactly one printed representation, and [Parser.parse_insn] maps it
    back to the same value (property-tested).  Common aliases ([mov],
    [cmp], [tst], [neg], [mul], [ret]) are printed where GNU tools would,
    and the parser also accepts the many aliases compilers emit. *)

open Insn

let buf_reg = Reg.to_string
let fp = Reg.Fp.to_string

let target_to_string = function
  | Sym s -> s
  | Off n -> if n >= 0 then Printf.sprintf ".+%d" n else Printf.sprintf ".%d" n

let operand2_to_string = function
  | Imm (v, 0) -> Printf.sprintf "#%d" v
  | Imm (v, sh) -> Printf.sprintf "#%d, lsl #%d" v sh
  | Sh (r, Lsl, 0) -> buf_reg r
  | Sh (r, k, a) -> Printf.sprintf "%s, %s #%d" (buf_reg r) (shift_to_string k) a
  | Ext (r, e, 0) -> Printf.sprintf "%s, %s" (buf_reg r) (extend_to_string e)
  | Ext (r, e, a) ->
      Printf.sprintf "%s, %s #%d" (buf_reg r) (extend_to_string e) a

let addr_to_string = function
  | Imm_off (r, 0) -> Printf.sprintf "[%s]" (buf_reg r)
  | Imm_off (r, i) -> Printf.sprintf "[%s, #%d]" (buf_reg r) i
  | Pre (r, i) -> Printf.sprintf "[%s, #%d]!" (buf_reg r) i
  | Post (r, i) -> Printf.sprintf "[%s], #%d" (buf_reg r) i
  | Reg_off (r, m, Uxtx, 0) -> Printf.sprintf "[%s, %s]" (buf_reg r) (buf_reg m)
  | Reg_off (r, m, Uxtx, a) ->
      Printf.sprintf "[%s, %s, lsl #%d]" (buf_reg r) (buf_reg m) a
  | Reg_off (r, m, e, 0) ->
      Printf.sprintf "[%s, %s, %s]" (buf_reg r) (buf_reg m) (extend_to_string e)
  | Reg_off (r, m, e, a) ->
      Printf.sprintf "[%s, %s, %s #%d]" (buf_reg r) (buf_reg m)
        (extend_to_string e) a

let ld_mnemonic (sz : mem_size) signed (dstw : Reg.width) =
  match (sz, signed, dstw) with
  | X, false, _ -> "ldr"
  | W, false, _ -> "ldr"
  | W, true, _ -> "ldrsw"
  | B, false, _ -> "ldrb"
  | H, false, _ -> "ldrh"
  | B, true, W64 -> "ldrsb"
  | B, true, W32 -> "ldrsb"
  | H, true, W64 -> "ldrsh"
  | H, true, W32 -> "ldrsh"
  | X, true, _ -> "ldr" (* not a real form; normalized away by parser *)

let st_mnemonic (sz : mem_size) =
  match sz with X | W -> "str" | B -> "strb" | H -> "strh"

let sz_suffix (sz : mem_size) =
  match sz with B -> "b" | H -> "h" | W | X -> ""

(** Print one instruction (mnemonic and operands, no leading tab). *)
let to_string (i : t) : string =
  let s = Printf.sprintf in
  match i with
  | Alu { op = SUB; flags = true; dst = Reg.ZR _; src; op2 } ->
      s "cmp %s, %s" (buf_reg src) (operand2_to_string op2)
  | Alu { op = ADD; flags = true; dst = Reg.ZR _; src; op2 } ->
      s "cmn %s, %s" (buf_reg src) (operand2_to_string op2)
  | Alu { op = AND; flags = true; dst = Reg.ZR _; src; op2 } ->
      s "tst %s, %s" (buf_reg src) (operand2_to_string op2)
  | Alu { op = ORR; flags = false; dst; src = Reg.ZR _; op2 = Sh (r, Lsl, 0) }
    ->
      s "mov %s, %s" (buf_reg dst) (buf_reg r)
  | Alu { op = SUB; flags; dst; src = Reg.ZR _; op2 = Sh (r, Lsl, 0) } ->
      s "neg%s %s, %s" (if flags then "s" else "") (buf_reg dst) (buf_reg r)
  | Alu { op = ORN; flags = false; dst; src = Reg.ZR _; op2 = Sh (r, Lsl, 0) }
    ->
      s "mvn %s, %s" (buf_reg dst) (buf_reg r)
  | Alu { op = ADD; flags = false; dst; src; op2 = Imm (0, 0) }
    when Reg.is_sp dst || Reg.is_sp src ->
      s "mov %s, %s" (buf_reg dst) (buf_reg src)
  | Alu { op; flags; dst; src; op2 } ->
      s "%s%s %s, %s, %s" (alu_op_to_string op)
        (if flags then "s" else "")
        (buf_reg dst) (buf_reg src) (operand2_to_string op2)
  | Shiftv { op; dst; src; amount } ->
      s "%s %s, %s, %s" (shift_to_string op) (buf_reg dst) (buf_reg src)
        (buf_reg amount)
  | Mov { op; dst; imm; hw = 0 } ->
      s "%s %s, #%d" (mov_to_string op) (buf_reg dst) imm
  | Mov { op; dst; imm; hw } ->
      s "%s %s, #%d, lsl #%d" (mov_to_string op) (buf_reg dst) imm (hw * 16)
  | Bitfield { op; dst; src; immr; imms } ->
      s "%s %s, %s, #%d, #%d" (bf_to_string op) (buf_reg dst) (buf_reg src)
        immr imms
  | Extr { dst; src1; src2; lsb } ->
      s "extr %s, %s, %s, #%d" (buf_reg dst) (buf_reg src1) (buf_reg src2) lsb
  | Madd { sub = false; dst; src1; src2; acc = Reg.ZR _ } ->
      s "mul %s, %s, %s" (buf_reg dst) (buf_reg src1) (buf_reg src2)
  | Madd { sub; dst; src1; src2; acc } ->
      s "%s %s, %s, %s, %s"
        (if sub then "msub" else "madd")
        (buf_reg dst) (buf_reg src1) (buf_reg src2) (buf_reg acc)
  | Maddl { signed; sub = false; dst; src1; src2; acc = Reg.ZR _ } ->
      s "%s %s, %s, %s"
        (if signed then "smull" else "umull")
        (buf_reg dst) (buf_reg src1) (buf_reg src2)
  | Maddl { signed; sub; dst; src1; src2; acc } ->
      s "%s%s %s, %s, %s, %s"
        (if signed then "s" else "u")
        (if sub then "msubl" else "maddl")
        (buf_reg dst) (buf_reg src1) (buf_reg src2) (buf_reg acc)
  | Ccmp { cmn; src; op2; nzcv; cond } ->
      s "%s %s, %s, #%d, %s"
        (if cmn then "ccmn" else "ccmp")
        (buf_reg src)
        (match op2 with CReg r -> buf_reg r | CImm v -> Printf.sprintf "#%d" v)
        nzcv (cond_to_string cond)
  | Smulh { signed; dst; src1; src2 } ->
      s "%s %s, %s, %s"
        (if signed then "smulh" else "umulh")
        (buf_reg dst) (buf_reg src1) (buf_reg src2)
  | Div { signed; dst; src1; src2 } ->
      s "%s %s, %s, %s"
        (if signed then "sdiv" else "udiv")
        (buf_reg dst) (buf_reg src1) (buf_reg src2)
  | Csel { op; dst; src1; src2; cond } ->
      s "%s %s, %s, %s, %s" (csel_op_to_string op) (buf_reg dst)
        (buf_reg src1) (buf_reg src2) (cond_to_string cond)
  | Cls { count_zero; dst; src } ->
      s "%s %s, %s" (if count_zero then "clz" else "cls") (buf_reg dst)
        (buf_reg src)
  | Rbit { dst; src } -> s "rbit %s, %s" (buf_reg dst) (buf_reg src)
  | Rev { bytes; dst; src } ->
      let full = match Reg.width dst with Reg.W64 -> 8 | Reg.W32 -> 4 in
      let m =
        if bytes = full then "rev" else if bytes = 2 then "rev16" else "rev32"
      in
      s "%s %s, %s" m (buf_reg dst) (buf_reg src)
  | Adr { page; dst; target } ->
      s "%s %s, %s" (if page then "adrp" else "adr") (buf_reg dst)
        (target_to_string target)
  | Ldr { sz; signed; dst; addr } ->
      s "%s %s, %s" (ld_mnemonic sz signed (Reg.width dst)) (buf_reg dst)
        (addr_to_string addr)
  | Str { sz; src; addr } ->
      s "%s %s, %s" (st_mnemonic sz) (buf_reg src) (addr_to_string addr)
  | Ldp { w = _; r1; r2; addr } ->
      s "ldp %s, %s, %s" (buf_reg r1) (buf_reg r2) (addr_to_string addr)
  | Stp { w = _; r1; r2; addr } ->
      s "stp %s, %s, %s" (buf_reg r1) (buf_reg r2) (addr_to_string addr)
  | Fldr { dst; addr } -> s "ldr %s, %s" (fp dst) (addr_to_string addr)
  | Fstr { src; addr } -> s "str %s, %s" (fp src) (addr_to_string addr)
  | Fldp { r1; r2; addr } ->
      s "ldp %s, %s, %s" (fp r1) (fp r2) (addr_to_string addr)
  | Fstp { r1; r2; addr } ->
      s "stp %s, %s, %s" (fp r1) (fp r2) (addr_to_string addr)
  | Ldxr { sz; dst; base } ->
      s "ldxr%s %s, [%s]" (sz_suffix sz) (buf_reg dst) (buf_reg base)
  | Stxr { sz; status; src; base } ->
      s "stxr%s %s, %s, [%s]" (sz_suffix sz) (buf_reg status) (buf_reg src)
        (buf_reg base)
  | Ldar { sz; dst; base } ->
      s "ldar%s %s, [%s]" (sz_suffix sz) (buf_reg dst) (buf_reg base)
  | Stlr { sz; src; base } ->
      s "stlr%s %s, [%s]" (sz_suffix sz) (buf_reg src) (buf_reg base)
  | B t -> s "b %s" (target_to_string t)
  | Bl t -> s "bl %s" (target_to_string t)
  | Bcond (c, t) -> s "b.%s %s" (cond_to_string c) (target_to_string t)
  | Cbz { nz; reg; target } ->
      s "%s %s, %s" (if nz then "cbnz" else "cbz") (buf_reg reg)
        (target_to_string target)
  | Tbz { nz; reg; bit; target } ->
      s "%s %s, #%d, %s" (if nz then "tbnz" else "tbz") (buf_reg reg) bit
        (target_to_string target)
  | Br r -> s "br %s" (buf_reg r)
  | Blr r -> s "blr %s" (buf_reg r)
  | Ret (Reg.R (Reg.W64, 30)) -> "ret"
  | Ret r -> s "ret %s" (buf_reg r)
  | Fop2 { op; dst; src1; src2 } ->
      s "%s %s, %s, %s" (fop2_to_string op) (fp dst) (fp src1) (fp src2)
  | Fop1 { op; dst; src } -> s "%s %s, %s" (fop1_to_string op) (fp dst) (fp src)
  | Fmadd { sub; dst; src1; src2; acc } ->
      s "%s %s, %s, %s, %s"
        (if sub then "fmsub" else "fmadd")
        (fp dst) (fp src1) (fp src2) (fp acc)
  | Fcmp { src1; src2 = Some r } -> s "fcmp %s, %s" (fp src1) (fp r)
  | Fcmp { src1; src2 = None } -> s "fcmp %s, #0.0" (fp src1)
  | Fcvt { dst; src } -> s "fcvt %s, %s" (fp dst) (fp src)
  | Scvtf { signed; dst; src } ->
      s "%s %s, %s" (if signed then "scvtf" else "ucvtf") (fp dst) (buf_reg src)
  | Fcvtzs { signed; dst; src } ->
      s "%s %s, %s"
        (if signed then "fcvtzs" else "fcvtzu")
        (buf_reg dst) (fp src)
  | Fmov_to_fp { dst; src } -> s "fmov %s, %s" (fp dst) (buf_reg src)
  | Fmov_from_fp { dst; src } -> s "fmov %s, %s" (buf_reg dst) (fp src)
  | Nop -> "nop"
  | Svc n -> s "svc #%d" n
  | Mrs { dst; sysreg } -> s "mrs %s, %s" (buf_reg dst) sysreg
  | Msr { sysreg; src } -> s "msr %s, %s" sysreg (buf_reg src)
  | Dmb -> "dmb ish"
  | Udf n -> s "udf #%d" n

let pp fmt i = Format.pp_print_string fmt (to_string i)
