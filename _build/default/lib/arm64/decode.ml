(** Decoder for the instruction subset.

    Total function from 32-bit words to {!Insn.t}: anything outside the
    supported subset decodes to [Udf 0], which the static verifier
    rejects — mirroring the paper's verifier, which only admits
    instructions from a premade list of safe ARMv8.0 encodings.

    Property: [decode (encode i) = i] for every encodable [i]. *)

open Insn

let bit w i = (w lsr i) land 1
let bits_f w hi lo = (w lsr lo) land ((1 lsl (hi - lo + 1)) - 1)

let sext v width =
  if v land (1 lsl (width - 1)) <> 0 then v - (1 lsl width) else v

let width_of_sf s = if s = 1 then Reg.W64 else Reg.W32

let gp ~(pos : [ `Zr | `Sp ]) w n =
  if n = 31 then match pos with `Zr -> Reg.ZR w | `Sp -> Reg.SP w
  else Reg.R (w, n)

let fpreg size n = Reg.Fp.v size n

let shift_of_num = function 0 -> Lsl | 1 -> Lsr | 2 -> Asr | _ -> Ror

(* Decode the addressing mode shared by loads and stores.  [scale] is
   log2 of the access size. *)
let decode_addr w ~scale : addr option =
  let rn = gp ~pos:`Sp Reg.W64 (bits_f w 9 5) in
  if bits_f w 25 24 = 0b01 then
    (* unsigned scaled immediate *)
    Some (Imm_off (rn, bits_f w 21 10 * (1 lsl scale)))
  else
    match bits_f w 11 10 with
    | 0b00 when bit w 21 = 0 ->
        (* unscaled *)
        Some (Imm_off (rn, sext (bits_f w 20 12) 9))
    | 0b01 when bit w 21 = 0 -> Some (Post (rn, sext (bits_f w 20 12) 9))
    | 0b11 when bit w 21 = 0 -> Some (Pre (rn, sext (bits_f w 20 12) 9))
    | 0b10 when bit w 21 = 1 -> (
        let option = bits_f w 15 13 in
        let s = bit w 12 in
        let amount = if s = 1 then scale else 0 in
        let ext, mw =
          match option with
          | 0b010 -> (Some Uxtw, Reg.W32)
          | 0b011 -> (Some Uxtx, Reg.W64)
          | 0b110 -> (Some Sxtw, Reg.W32)
          | 0b111 -> (Some Sxtx, Reg.W64)
          | _ -> (None, Reg.W64)
        in
        match ext with
        | Some e -> Some (Reg_off (rn, gp ~pos:`Zr mw (bits_f w 20 16), e, amount))
        | None -> None)
    | _ -> None

let decode_mem w : t option =
  (* load/store register family: bits 29:27 = 111, bit 26 = V *)
  if bits_f w 29 27 <> 0b111 then None
  else
    let size = bits_f w 31 30 in
    let v = bit w 26 in
    let opc = bits_f w 23 22 in
    let rt_n = bits_f w 4 0 in
    if v = 0 then
      let scale = size in
      match decode_addr w ~scale with
      | None -> None
      | Some addr -> (
          let sz : mem_size = match size with 0 -> B | 1 -> H | 2 -> W | _ -> X in
          match opc with
          | 0b00 ->
              let sw = if sz = X then Reg.W64 else Reg.W32 in
              Some (Str { sz; src = gp ~pos:`Zr sw rt_n; addr })
          | 0b01 ->
              let dw = if sz = X then Reg.W64 else Reg.W32 in
              Some (Ldr { sz; signed = false; dst = gp ~pos:`Zr dw rt_n; addr })
          | 0b10 ->
              if sz = X then None
              else
                Some
                  (Ldr { sz; signed = true; dst = gp ~pos:`Zr Reg.W64 rt_n;
                         addr })
          | _ ->
              if sz = X || sz = W then None
              else
                Some
                  (Ldr { sz; signed = true; dst = gp ~pos:`Zr Reg.W32 rt_n;
                         addr }))
    else
      (* SIMD/FP scalar *)
      let fsz =
        match (size, opc land 0b10) with
        | 0b10, 0 -> Some Reg.Fp.S
        | 0b11, 0 -> Some Reg.Fp.D
        | 0b00, 2 -> Some Reg.Fp.Q
        | _ -> None
      in
      match fsz with
      | None -> None
      | Some fsz -> (
          let scale =
            match fsz with Reg.Fp.S -> 2 | Reg.Fp.D -> 3 | Reg.Fp.Q -> 4
          in
          match decode_addr w ~scale with
          | None -> None
          | Some addr ->
              if opc land 1 = 1 then Some (Fldr { dst = fpreg fsz rt_n; addr })
              else Some (Fstr { src = fpreg fsz rt_n; addr }))

let decode_pair w : t option =
  if bits_f w 29 27 <> 0b101 || bit w 25 <> 0 then None
  else
    let opc = bits_f w 31 30 in
    let v = bit w 26 in
    let mode = bits_f w 24 23 in
    let load = bit w 22 = 1 in
    let imm7 = sext (bits_f w 21 15) 7 in
    let rt2_n = bits_f w 14 10 in
    let rn = gp ~pos:`Sp Reg.W64 (bits_f w 9 5) in
    let rt_n = bits_f w 4 0 in
    let mk_addr unit =
      let i = imm7 * unit in
      match mode with
      | 0b01 -> Some (Post (rn, i))
      | 0b10 -> Some (Imm_off (rn, i))
      | 0b11 -> Some (Pre (rn, i))
      | _ -> None
    in
    if v = 0 then
      let wd, unit =
        match opc with 0b00 -> (Some Reg.W32, 4) | 0b10 -> (Some Reg.W64, 8) | _ -> (None, 0)
      in
      match wd with
      | None -> None
      | Some wd -> (
          match mk_addr unit with
          | None -> None
          | Some addr ->
              let r1 = gp ~pos:`Zr wd rt_n and r2 = gp ~pos:`Zr wd rt2_n in
              if load then Some (Ldp { w = wd; r1; r2; addr })
              else Some (Stp { w = wd; r1; r2; addr }))
    else
      let fsz =
        match opc with
        | 0b00 -> Some Reg.Fp.S
        | 0b01 -> Some Reg.Fp.D
        | 0b10 -> Some Reg.Fp.Q
        | _ -> None
      in
      match fsz with
      | None -> None
      | Some fsz -> (
          match mk_addr (Reg.Fp.bytes (fpreg fsz 0)) with
          | None -> None
          | Some addr ->
              let r1 = fpreg fsz rt_n and r2 = fpreg fsz rt2_n in
              if load then Some (Fldp { r1; r2; addr })
              else Some (Fstp { r1; r2; addr }))

let decode_exclusive w : t option =
  if bits_f w 29 24 <> 0b001000 then None
  else
    let size = bits_f w 31 30 in
    let sz : mem_size = match size with 0 -> B | 1 -> H | 2 -> W | _ -> X in
    let rw = if sz = X then Reg.W64 else Reg.W32 in
    let rn = gp ~pos:`Sp Reg.W64 (bits_f w 9 5) in
    let rt_n = bits_f w 4 0 in
    let rs_n = bits_f w 20 16 in
    match (bits_f w 23 21, bits_f w 15 10) with
    | 0b010, 0b011111 when rs_n = 31 ->
        Some (Ldxr { sz; dst = gp ~pos:`Zr rw rt_n; base = rn })
    | 0b000, 0b011111 ->
        Some
          (Stxr { sz; status = gp ~pos:`Zr Reg.W32 rs_n;
                  src = gp ~pos:`Zr rw rt_n; base = rn })
    | 0b110, 0b111111 when rs_n = 31 ->
        Some (Ldar { sz; dst = gp ~pos:`Zr rw rt_n; base = rn })
    | 0b100, 0b111111 when rs_n = 31 ->
        Some (Stlr { sz; src = gp ~pos:`Zr rw rt_n; base = rn })
    | _ -> None

let decode_dp_imm w : t option =
  let s = bit w 31 in
  let wd = width_of_sf s in
  match bits_f w 28 23 with
  | 0b100010 ->
      (* add/sub immediate *)
      let op = if bit w 30 = 1 then SUB else ADD in
      let flags = bit w 29 = 1 in
      let sh = if bit w 22 = 1 then 12 else 0 in
      let dst = gp ~pos:(if flags then `Zr else `Sp) wd (bits_f w 4 0) in
      let src = gp ~pos:`Sp wd (bits_f w 9 5) in
      Some (Alu { op; flags; dst; src; op2 = Imm (bits_f w 21 10, sh) })
  | 0b100100 | 0b100101 when bits_f w 28 24 = 0b10010 -> None (* split below *)
  | _ -> None

let decode_logical_imm w : t option =
  if bits_f w 28 23 <> 0b100100 then None
  else
    let s = bit w 31 in
    let wd = width_of_sf s in
    let datasize = if s = 1 then 64 else 32 in
    let n = bit w 22 in
    if s = 0 && n = 1 then None
    else
      let immr = bits_f w 21 16 and imms = bits_f w 15 10 in
      match Encode.decode_bitmask ~datasize ~n ~immr ~imms with
      | None -> None
      | Some v -> (
          let rn = gp ~pos:`Zr wd (bits_f w 9 5) in
          let rd_n = bits_f w 4 0 in
          match bits_f w 30 29 with
          | 0b00 ->
              Some (Alu { op = AND; flags = false; dst = gp ~pos:`Sp wd rd_n;
                          src = rn; op2 = Imm (v, 0) })
          | 0b01 ->
              Some (Alu { op = ORR; flags = false; dst = gp ~pos:`Sp wd rd_n;
                          src = rn; op2 = Imm (v, 0) })
          | 0b10 ->
              Some (Alu { op = EOR; flags = false; dst = gp ~pos:`Sp wd rd_n;
                          src = rn; op2 = Imm (v, 0) })
          | _ ->
              Some (Alu { op = AND; flags = true; dst = gp ~pos:`Zr wd rd_n;
                          src = rn; op2 = Imm (v, 0) }))

let decode_movw w : t option =
  if bits_f w 28 23 <> 0b100101 then None
  else
    let s = bit w 31 in
    let wd = width_of_sf s in
    let hw = bits_f w 22 21 in
    if s = 0 && hw > 1 then None
    else
      let op =
        match bits_f w 30 29 with
        | 0b00 -> Some MOVN
        | 0b10 -> Some MOVZ
        | 0b11 -> Some MOVK
        | _ -> None
      in
      match op with
      | None -> None
      | Some op ->
          Some
            (Mov { op; dst = gp ~pos:`Zr wd (bits_f w 4 0);
                   imm = bits_f w 20 5; hw })

let decode_bitfield w : t option =
  if bits_f w 28 23 <> 0b100110 then None
  else
    let s = bit w 31 in
    let wd = width_of_sf s in
    if bit w 22 <> s then None
    else
      let op =
        match bits_f w 30 29 with
        | 0b00 -> Some SBFM
        | 0b01 -> Some BFM
        | 0b10 -> Some UBFM
        | _ -> None
      in
      match op with
      | None -> None
      | Some op ->
          Some
            (Bitfield { op; dst = gp ~pos:`Zr wd (bits_f w 4 0);
                        src = gp ~pos:`Zr wd (bits_f w 9 5);
                        immr = bits_f w 21 16; imms = bits_f w 15 10 })

let decode_extr w : t option =
  if bits_f w 30 23 <> 0b00100111 then None
  else
    let s = bit w 31 in
    if bit w 22 <> s || bit w 21 <> 0 then None
    else
      let wd = width_of_sf s in
      let lsb = bits_f w 15 10 in
      if s = 0 && lsb > 31 then None
      else
        Some
          (Extr { dst = gp ~pos:`Zr wd (bits_f w 4 0);
                  src1 = gp ~pos:`Zr wd (bits_f w 9 5);
                  src2 = gp ~pos:`Zr wd (bits_f w 20 16); lsb })

let decode_addsub_reg w : t option =
  if bits_f w 28 24 <> 0b01011 then None
  else
    let s = bit w 31 in
    let wd = width_of_sf s in
    let op = if bit w 30 = 1 then SUB else ADD in
    let flags = bit w 29 = 1 in
    if bit w 21 = 1 && bits_f w 23 22 = 0b00 then
      (* extended register *)
      let opt = bits_f w 15 13 in
      let e = Encode.extend_of_num opt in
      let a = bits_f w 12 10 in
      if a > 4 then None
      else
        let mw =
          match e with
          | Uxtx | Sxtx -> Reg.W64
          | _ -> Reg.W32
        in
        let mw = if s = 0 then Reg.W32 else mw in
        Some
          (Alu { op; flags;
                 dst = gp ~pos:(if flags then `Zr else `Sp) wd (bits_f w 4 0);
                 src = gp ~pos:`Sp wd (bits_f w 9 5);
                 op2 = Ext (gp ~pos:`Zr mw (bits_f w 20 16), e, a) })
    else if bit w 21 = 0 then
      let k = shift_of_num (bits_f w 23 22) in
      if k = Ror then None
      else
        let a = bits_f w 15 10 in
        if s = 0 && a > 31 then None
        else
          Some
            (Alu { op; flags; dst = gp ~pos:`Zr wd (bits_f w 4 0);
                   src = gp ~pos:`Zr wd (bits_f w 9 5);
                   op2 = Sh (gp ~pos:`Zr wd (bits_f w 20 16), k, a) })
    else None

let decode_logical_reg w : t option =
  if bits_f w 28 24 <> 0b01010 then None
  else
    let s = bit w 31 in
    let wd = width_of_sf s in
    let k = shift_of_num (bits_f w 23 22) in
    let ng = bit w 21 in
    let a = bits_f w 15 10 in
    if s = 0 && a > 31 then None
    else
      let op, flags =
        match (bits_f w 30 29, ng) with
        | 0b00, 0 -> (AND, false)
        | 0b00, 1 -> (BIC, false)
        | 0b01, 0 -> (ORR, false)
        | 0b01, 1 -> (ORN, false)
        | 0b10, 0 -> (EOR, false)
        | 0b10, 1 -> (EON, false)
        | 0b11, 0 -> (AND, true)
        | _ -> (BIC, true)
      in
      Some
        (Alu { op; flags; dst = gp ~pos:`Zr wd (bits_f w 4 0);
               src = gp ~pos:`Zr wd (bits_f w 9 5);
               op2 = Sh (gp ~pos:`Zr wd (bits_f w 20 16), k, a) })

let decode_dp2 w : t option =
  (* data-processing 2-source: sf 0 S=0 11010110 *)
  if bits_f w 30 21 <> 0b0011010110 then None
  else
    let s = bit w 31 in
    let wd = width_of_sf s in
    let dst = gp ~pos:`Zr wd (bits_f w 4 0) in
    let rn = gp ~pos:`Zr wd (bits_f w 9 5) in
    let rm = gp ~pos:`Zr wd (bits_f w 20 16) in
    match bits_f w 15 10 with
    | 0b000010 -> Some (Div { signed = false; dst; src1 = rn; src2 = rm })
    | 0b000011 -> Some (Div { signed = true; dst; src1 = rn; src2 = rm })
    | 0b001000 -> Some (Shiftv { op = Lsl; dst; src = rn; amount = rm })
    | 0b001001 -> Some (Shiftv { op = Lsr; dst; src = rn; amount = rm })
    | 0b001010 -> Some (Shiftv { op = Asr; dst; src = rn; amount = rm })
    | 0b001011 -> Some (Shiftv { op = Ror; dst; src = rn; amount = rm })
    | _ -> None

let decode_dp1 w : t option =
  (* data-processing 1-source: sf 1 S=0 11010110 00000 *)
  if bits_f w 30 21 <> 0b1011010110 || bits_f w 20 16 <> 0 then None
  else
    let s = bit w 31 in
    let wd = width_of_sf s in
    let dst = gp ~pos:`Zr wd (bits_f w 4 0) in
    let src = gp ~pos:`Zr wd (bits_f w 9 5) in
    match bits_f w 15 10 with
    | 0b000000 -> Some (Rbit { dst; src })
    | 0b000001 -> Some (Rev { bytes = 2; dst; src })
    | 0b000010 -> Some (Rev { bytes = 4; dst; src })
    | 0b000011 when s = 1 -> Some (Rev { bytes = 8; dst; src })
    | 0b000100 -> Some (Cls { count_zero = true; dst; src })
    | 0b000101 -> Some (Cls { count_zero = false; dst; src })
    | _ -> None

let decode_dp3 w : t option =
  if bits_f w 30 24 <> 0b0011011 then None
  else
    let s = bit w 31 in
    let wd = width_of_sf s in
    let dst = gp ~pos:`Zr wd (bits_f w 4 0) in
    let rn = gp ~pos:`Zr wd (bits_f w 9 5) in
    let rm = gp ~pos:`Zr wd (bits_f w 20 16) in
    let ra = gp ~pos:`Zr wd (bits_f w 14 10) in
    match (bits_f w 23 21, bit w 15) with
    | 0b000, 0 -> Some (Madd { sub = false; dst; src1 = rn; src2 = rm; acc = ra })
    | 0b000, 1 -> Some (Madd { sub = true; dst; src1 = rn; src2 = rm; acc = ra })
    | 0b010, 0 when s = 1 && bits_f w 14 10 = 0b11111 ->
        Some (Smulh { signed = true; dst; src1 = rn; src2 = rm })
    | 0b110, 0 when s = 1 && bits_f w 14 10 = 0b11111 ->
        Some (Smulh { signed = false; dst; src1 = rn; src2 = rm })
    | (0b001 | 0b101), sub when s = 1 ->
        let signed = bits_f w 23 21 = 0b001 in
        Some
          (Maddl
             { signed; sub = sub = 1;
               dst = gp ~pos:`Zr Reg.W64 (bits_f w 4 0);
               src1 = gp ~pos:`Zr Reg.W32 (bits_f w 9 5);
               src2 = gp ~pos:`Zr Reg.W32 (bits_f w 20 16);
               acc = gp ~pos:`Zr Reg.W64 (bits_f w 14 10) })
    | _ -> None

let decode_ccmp w : t option =
  (* conditional compare: sf op 1 11010010 *)
  if bits_f w 28 21 <> 0b11010010 || bit w 29 <> 1 then None
  else if bit w 10 <> 0 || bit w 4 <> 0 then None
  else
    match cond_of_number (bits_f w 15 12) with
    | None -> None
    | Some cond ->
        let s = bit w 31 in
        let wd = width_of_sf s in
        let cmn = bit w 30 = 0 in
        let src = gp ~pos:`Zr wd (bits_f w 9 5) in
        let nzcv = bits_f w 3 0 in
        if bit w 11 = 1 then
          Some (Ccmp { cmn; src; op2 = CImm (bits_f w 20 16); nzcv; cond })
        else
          Some
            (Ccmp { cmn; src; op2 = CReg (gp ~pos:`Zr wd (bits_f w 20 16));
                    nzcv; cond })

let decode_csel w : t option =
  if bits_f w 28 21 <> 0b11010100 || bit w 29 = 1 then None
  else
    let s = bit w 31 in
    let wd = width_of_sf s in
    if bit w 11 = 1 then None
    else
      let opb = bit w 30 and o2 = bit w 10 in
      (
        match cond_of_number (bits_f w 15 12) with
        | None -> None
        | Some cond ->
            let op =
              match (opb, o2) with
              | 0, 0 -> CSEL
              | 0, 1 -> CSINC
              | 1, 0 -> CSINV
              | _ -> CSNEG
            in
            Some
              (Csel { op; dst = gp ~pos:`Zr wd (bits_f w 4 0);
                      src1 = gp ~pos:`Zr wd (bits_f w 9 5);
                      src2 = gp ~pos:`Zr wd (bits_f w 20 16); cond }))

let decode_adr w : t option =
  if bits_f w 28 24 <> 0b10000 then None
  else
    let page = bit w 31 = 1 in
    let imm = (bits_f w 23 5 lsl 2) lor bits_f w 30 29 in
    let imm = sext imm 21 in
    let off = if page then imm lsl 12 else imm in
    Some
      (Adr { page; dst = gp ~pos:`Zr Reg.W64 (bits_f w 4 0);
             target = Off off })

let decode_branch w : t option =
  match bits_f w 31 26 with
  | 0b000101 -> Some (B (Off (sext (bits_f w 25 0) 26 * 4)))
  | 0b100101 -> Some (Bl (Off (sext (bits_f w 25 0) 26 * 4)))
  | _ ->
      if bits_f w 31 24 = 0b01010100 && bit w 4 = 0 then
        match cond_of_number (bits_f w 3 0) with
        | Some c -> Some (Bcond (c, Off (sext (bits_f w 23 5) 19 * 4)))
        | None -> None
      else if bits_f w 30 25 = 0b011010 then
        let s = bit w 31 in
        Some
          (Cbz { nz = bit w 24 = 1;
                 reg = gp ~pos:`Zr (width_of_sf s) (bits_f w 4 0);
                 target = Off (sext (bits_f w 23 5) 19 * 4) })
      else if bits_f w 30 25 = 0b011011 then
        let b5 = bit w 31 in
        let bitn = (b5 lsl 5) lor bits_f w 23 19 in
        let wd = if b5 = 1 then Reg.W64 else Reg.W32 in
        Some
          (Tbz { nz = bit w 24 = 1; reg = gp ~pos:`Zr wd (bits_f w 4 0);
                 bit = bitn; target = Off (sext (bits_f w 18 5) 14 * 4) })
      else if w land 0xFFFFFC1F = 0xD61F0000 then
        Some (Br (gp ~pos:`Zr Reg.W64 (bits_f w 9 5)))
      else if w land 0xFFFFFC1F = 0xD63F0000 then
        Some (Blr (gp ~pos:`Zr Reg.W64 (bits_f w 9 5)))
      else if w land 0xFFFFFC1F = 0xD65F0000 then
        Some (Ret (gp ~pos:`Zr Reg.W64 (bits_f w 9 5)))
      else None

let decode_fp w : t option =
  (* scalar FP: bits 28:24 = 11110, bit 30 = 0 *)
  if bits_f w 28 24 <> 0b11110 || bit w 30 <> 0 then None
  else
    let ty = bits_f w 23 22 in
    let fsz = match ty with 0b00 -> Some Reg.Fp.S | 0b01 -> Some Reg.Fp.D | _ -> None in
    match fsz with
    | None -> None
    | Some fsz ->
        let s = bit w 31 in
        let rd_n = bits_f w 4 0 and rn_n = bits_f w 9 5 and rm_n = bits_f w 20 16 in
        if s = 0 && bit w 29 = 0 && bit w 21 = 1 then
          if bits_f w 11 10 = 0b10 then
            (* 2-source *)
            let op =
              match bits_f w 15 12 with
              | 0b0000 -> Some FMUL
              | 0b0001 -> Some FDIV
              | 0b0010 -> Some FADD
              | 0b0011 -> Some FSUB
              | 0b0100 -> Some FMAX
              | 0b0101 -> Some FMIN
              | _ -> None
            in
            match op with
            | Some op ->
                Some
                  (Fop2 { op; dst = fpreg fsz rd_n; src1 = fpreg fsz rn_n;
                          src2 = fpreg fsz rm_n })
            | None -> None
          else if bits_f w 14 10 = 0b10000 then
            (* 1-source *)
            let opc = bits_f w 20 15 in
            match opc with
            | 0b000000 ->
                Some (Fop1 { op = FMOV; dst = fpreg fsz rd_n; src = fpreg fsz rn_n })
            | 0b000001 ->
                Some (Fop1 { op = FABS; dst = fpreg fsz rd_n; src = fpreg fsz rn_n })
            | 0b000010 ->
                Some (Fop1 { op = FNEG; dst = fpreg fsz rd_n; src = fpreg fsz rn_n })
            | 0b000011 ->
                Some (Fop1 { op = FSQRT; dst = fpreg fsz rd_n; src = fpreg fsz rn_n })
            | 0b000101 when fsz = Reg.Fp.S ->
                Some
                  (Fcvt { dst = fpreg Reg.Fp.D rd_n;
                          src = fpreg Reg.Fp.S rn_n })
            | 0b000100 when fsz = Reg.Fp.D ->
                Some (Fcvt { dst = fpreg Reg.Fp.S rd_n; src = fpreg Reg.Fp.D rn_n })
            | _ -> None
          else if bits_f w 13 10 = 0b1000 && bits_f w 4 0 land 0b10111 = 0 then
            (* compare *)
            let opcode2 = bits_f w 4 0 in
            if opcode2 = 0b00000 then
              Some (Fcmp { src1 = fpreg fsz rn_n; src2 = Some (fpreg fsz rm_n) })
            else if opcode2 = 0b01000 && rm_n = 0 then
              Some (Fcmp { src1 = fpreg fsz rn_n; src2 = None })
            else None
          else if bits_f w 15 10 = 0 then
            (* int <-> fp conversions *)
            None (* handled below with full sf *)
          else None
        else None

let decode_fp_int w : t option =
  (* conversions + fmov gp<->fp: sf 0 S=0 11110 ty 1 rmode opcode 000000 *)
  if bits_f w 30 24 <> 0b0011110 || bit w 21 <> 1 || bits_f w 15 10 <> 0 then
    None
  else
    let s = bit w 31 in
    let ty = bits_f w 23 22 in
    let fsz = match ty with 0b00 -> Some Reg.Fp.S | 0b01 -> Some Reg.Fp.D | _ -> None in
    match fsz with
    | None -> None
    | Some fsz -> (
        let rmode = bits_f w 20 19 and opcode = bits_f w 18 16 in
        let gw = width_of_sf s in
        let rd_n = bits_f w 4 0 and rn_n = bits_f w 9 5 in
        match (rmode, opcode) with
        | 0b00, 0b010 ->
            Some (Scvtf { signed = true; dst = fpreg fsz rd_n;
                          src = gp ~pos:`Zr gw rn_n })
        | 0b00, 0b011 ->
            Some (Scvtf { signed = false; dst = fpreg fsz rd_n;
                          src = gp ~pos:`Zr gw rn_n })
        | 0b11, 0b000 ->
            Some (Fcvtzs { signed = true; dst = gp ~pos:`Zr gw rd_n;
                           src = fpreg fsz rn_n })
        | 0b11, 0b001 ->
            Some (Fcvtzs { signed = false; dst = gp ~pos:`Zr gw rd_n;
                           src = fpreg fsz rn_n })
        | 0b00, 0b111 ->
            let ok =
              (s = 1 && fsz = Reg.Fp.D) || (s = 0 && fsz = Reg.Fp.S)
            in
            if ok then
              Some (Fmov_to_fp { dst = fpreg fsz rd_n;
                                 src = gp ~pos:`Zr gw rn_n })
            else None
        | 0b00, 0b110 ->
            let ok =
              (s = 1 && fsz = Reg.Fp.D) || (s = 0 && fsz = Reg.Fp.S)
            in
            if ok then
              Some (Fmov_from_fp { dst = gp ~pos:`Zr gw rd_n;
                                   src = fpreg fsz rn_n })
            else None
        | _ -> None)

let decode_fmadd w : t option =
  if bits_f w 30 24 <> 0b0011111 || bit w 31 <> 0 then None
  else
    let ty = bits_f w 23 22 in
    let fsz = match ty with 0b00 -> Some Reg.Fp.S | 0b01 -> Some Reg.Fp.D | _ -> None in
    match fsz with
    | None -> None
    | Some fsz ->
        if bit w 21 <> 0 then None
        else
          Some
            (Fmadd { sub = bit w 15 = 1; dst = fpreg fsz (bits_f w 4 0);
                     src1 = fpreg fsz (bits_f w 9 5);
                     src2 = fpreg fsz (bits_f w 20 16);
                     acc = fpreg fsz (bits_f w 14 10) })

let decode_system w : t option =
  if w = 0xD503201F then Some Nop
  else if w = 0xD5033BBF then Some Dmb
  else if w land 0xFFE0001F = 0xD4000001 then Some (Svc (bits_f w 20 5))
  else if w land 0xFFF00000 = 0xD5300000 then
    match Encode.sysreg_of_encoding (bits_f w 19 5) with
    | Some sysreg ->
        Some (Mrs { dst = gp ~pos:`Zr Reg.W64 (bits_f w 4 0); sysreg })
    | None -> None
  else if w land 0xFFF00000 = 0xD5100000 then
    match Encode.sysreg_of_encoding (bits_f w 19 5) with
    | Some sysreg ->
        Some (Msr { sysreg; src = gp ~pos:`Zr Reg.W64 (bits_f w 4 0) })
    | None -> None
  else None

(* Top-level dispatch on the A64 op0 field (bits 28:25), which splits
   the encoding space into the architecture's main classes.  This is
   what keeps the verifier's single pass fast (§5.2). *)
let dp_imm_decoders =
  [ decode_dp_imm; decode_adr; decode_logical_imm; decode_movw;
    decode_bitfield; decode_extr ]

let branch_decoders = [ decode_branch; decode_system ]

let mem_decoders = [ decode_mem; decode_pair; decode_exclusive ]

let dp_reg_decoders =
  [ decode_addsub_reg; decode_logical_reg; decode_dp3; decode_dp2;
    decode_dp1; decode_csel; decode_ccmp ]

let fp_decoders = [ decode_fmadd; decode_fp_int; decode_fp ]

(** Decode a 32-bit word.  Unknown encodings become [Udf]. *)
let decode (w : int) : t =
  let w = w land 0xFFFFFFFF in
  if w lsr 16 = 0 then Udf (w land 0xFFFF)
  else
    let candidates =
      match (w lsr 25) land 0xF with
      | 0x8 | 0x9 -> dp_imm_decoders
      | 0xA | 0xB -> branch_decoders
      | 0x4 | 0x6 | 0xC | 0xE -> mem_decoders
      | 0x5 | 0xD -> dp_reg_decoders
      | 0x7 | 0xF -> fp_decoders
      | _ -> []
    in
    let rec go = function
      | [] -> Udf 0
      | d :: tl -> ( match d w with Some i -> i | None -> go tl)
    in
    go candidates

(** Decode a whole text segment (little-endian words). *)
let decode_all (b : bytes) : t array =
  let n = Bytes.length b / 4 in
  Array.init n (fun i ->
      decode (Int32.to_int (Bytes.get_int32_le b (i * 4)) land 0xFFFFFFFF))
