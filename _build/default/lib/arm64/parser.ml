(** Parser for the GNU assembly subset.

    Accepts the canonical forms produced by {!Printer} as well as the
    common aliases emitted by C compilers ([mov Rd, #imm], [cmp], [tst],
    [neg], [mvn], [mul], [lsl #i], [uxtb], [sxtw], [cset], [cinc], ...),
    normalizing them into {!Insn.t}. *)

open Insn

type error = { line : int; msg : string }

let errorf line fmt = Printf.ksprintf (fun msg -> Error { line; msg }) fmt

(* ------------------------------------------------------------------ *)
(* Tokenization                                                        *)
(* ------------------------------------------------------------------ *)

let strip_comment s =
  let rec find i =
    if i + 1 >= String.length s then None
    else if s.[i] = '/' && s.[i + 1] = '/' then Some i
    else find (i + 1)
  in
  match find 0 with None -> s | Some i -> String.sub s 0 i

(** Split on top-level commas, keeping bracket groups intact.
    ["x0, [x1, #8]!, rest"] -> [["x0"; "[x1, #8]!"; "rest"]]. *)
let split_operands (s : string) : string list =
  let parts = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '[' ->
          incr depth;
          Buffer.add_char buf c
      | ']' ->
          decr depth;
          Buffer.add_char buf c
      | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map String.trim !parts |> List.filter (fun s -> s <> "")

let parse_int s =
  (* Accepts decimal and 0x hex, with optional leading '-'. *)
  match int_of_string_opt s with
  | Some n -> Some n
  | None -> None

let parse_imm s =
  if String.length s > 1 && s.[0] = '#' then
    parse_int (String.sub s 1 (String.length s - 1))
  else None

(* ------------------------------------------------------------------ *)
(* Operand parsing                                                     *)
(* ------------------------------------------------------------------ *)

type operand =
  | OReg of Reg.t
  | OFp of Reg.Fp.t
  | OImm of int
  | OFImm0
  | OMem of addr
  | OPostImm of int  (** the trailing [#i] of a post-indexed access *)
  | OShift of shift * int
  | OExt of extend * int option
  | OSym of string

let shift_of_string = function
  | "lsl" -> Some Lsl
  | "lsr" -> Some Lsr
  | "asr" -> Some Asr
  | "ror" -> Some Ror
  | _ -> None

(** Parse the space-separated modifier forms "lsl #3", "uxtw", "uxtw #2". *)
let parse_modifier (s : string) : operand option =
  match String.index_opt s ' ' with
  | None -> (
      match extend_of_string s with
      | Some e -> Some (OExt (e, None))
      | None -> None)
  | Some i -> (
      let kw = String.sub s 0 i
      and rest = String.trim (String.sub s (i + 1) (String.length s - i - 1))
      in
      match (shift_of_string kw, extend_of_string kw, parse_imm rest) with
      | Some k, _, Some n -> Some (OShift (k, n))
      | _, Some e, Some n -> Some (OExt (e, Some n))
      | _ -> None)

let rec parse_mem_inner (inner : string) : addr option =
  match split_operands inner with
  | [ b ] -> (
      match Reg.of_string b with
      | Some r when Reg.width r = Reg.W64 -> Some (Imm_off (r, 0))
      | _ -> None)
  | [ b; second ] -> (
      match Reg.of_string b with
      | Some r when Reg.width r = Reg.W64 -> (
          match parse_imm second with
          | Some i -> Some (Imm_off (r, i))
          | None -> (
              match Reg.of_string second with
              | Some m when not (Reg.is_sp m) ->
                  let e =
                    if Reg.width m = Reg.W64 then Uxtx else Uxtw
                    (* bare [x, w] is not valid asm; treated as uxtw 0 *)
                  in
                  Some (Reg_off (r, m, e, 0))
              | _ -> None))
      | _ -> None)
  | [ b; m; modif ] -> (
      match (Reg.of_string b, Reg.of_string m, parse_modifier modif) with
      | Some r, Some mr, Some (OShift (Lsl, a))
        when Reg.width r = Reg.W64 && Reg.width mr = Reg.W64 ->
          Some (Reg_off (r, mr, Uxtx, a))
      | Some r, Some mr, Some (OExt (e, a)) when Reg.width r = Reg.W64 ->
          let a = Option.value a ~default:0 in
          Some (Reg_off (r, mr, e, a))
      | _ -> None)
  | _ -> None

and parse_operand (s : string) : operand option =
  let len = String.length s in
  if len = 0 then None
  else if s.[0] = '[' then
    (* memory operand, possibly with trailing '!' *)
    let pre = s.[len - 1] = '!' in
    let body = if pre then String.sub s 0 (len - 1) else s in
    let blen = String.length body in
    if blen < 2 || body.[blen - 1] <> ']' then None
    else
      let inner = String.sub body 1 (blen - 2) in
      match parse_mem_inner inner with
      | Some a when pre -> (
          match a with
          | Imm_off (r, i) -> Some (OMem (Pre (r, i)))
          | _ -> None)
      | Some a -> Some (OMem a)
      | None -> None
  else if s = "#0.0" then Some OFImm0
  else
    match parse_imm s with
    | Some i -> Some (OImm i)
    | None -> (
        match Reg.of_string s with
        | Some r -> Some (OReg r)
        | None -> (
            match Reg.Fp.of_string s with
            | Some f -> Some (OFp f)
            | None -> (
                match parse_modifier s with
                | Some m -> Some m
                | None ->
                    (* a symbol / label reference, or .+n *)
                    if s = "" then None else Some (OSym s))))

let parse_target s =
  if String.length s >= 2 && s.[0] = '.' && (s.[1] = '+' || s.[1] = '-') then
    match parse_int (String.sub s 1 (String.length s - 1)) with
    | Some n -> Some (Off n)
    | None -> Some (Sym s)
  else Some (Sym s)

(* ------------------------------------------------------------------ *)
(* Instruction assembly from mnemonic + operands                       *)
(* ------------------------------------------------------------------ *)

let w64 r = Reg.width r = Reg.W64
let wbits r = match Reg.width r with Reg.W64 -> 64 | Reg.W32 -> 32

(** Interpret trailing operands as an ALU [operand2]. *)
let operand2_of = function
  | [ OImm v ] -> Some (Imm (v, 0))
  | [ OImm v; OShift (Lsl, s) ] -> Some (Imm (v, s))
  | [ OReg r ] -> Some (Sh (r, Lsl, 0))
  | [ OReg r; OShift (k, a) ] -> Some (Sh (r, k, a))
  | [ OReg r; OExt (e, a) ] -> Some (Ext (r, e, Option.value a ~default:0))
  | _ -> None

let alu op flags dst src rest =
  match operand2_of rest with
  | Some op2 ->
      (* add/sub with sp as an operand only exists in the
         extended-register form; normalize a bare register there *)
      let op2 =
        match (op, op2) with
        | (ADD | SUB), Sh (r, Lsl, 0)
          when Reg.is_sp dst || Reg.is_sp src ->
            Ext (Reg.with_width Reg.W64 r, Uxtx, 0)
        | _ -> op2
      in
      Ok (Alu { op; flags; dst; src; op2 })
  | None -> Error "bad ALU operands"

(** Fuse a bracket operand followed by an immediate into post-indexing. *)
let fuse_post ops =
  let rec go = function
    | OMem (Imm_off (r, 0)) :: OImm i :: tl -> OMem (Post (r, i)) :: go tl
    | x :: tl -> x :: go tl
    | [] -> []
  in
  go ops

let mem_ops mnemonic ops =
  (* Shared handling for integer and FP loads/stores. *)
  match fuse_post ops with
  | [ OReg d; OMem a ] -> Ok (`G (d, a))
  | [ OFp d; OMem a ] -> Ok (`F (d, a))
  | [ OReg d1; OReg d2; OMem a ] -> Ok (`GP (d1, d2, a))
  | [ OFp d1; OFp d2; OMem a ] -> Ok (`FP (d1, d2, a))
  | _ -> Error (Printf.sprintf "bad %s operands" mnemonic)

let build (mnemonic : string) (ops : operand list) : (t, string) result =
  let m = mnemonic in
  let err = Error (Printf.sprintf "bad operands for %s" m) in
  match (m, ops) with
  (* --- ALU --- *)
  | ("add" | "adds" | "sub" | "subs" | "and" | "ands" | "orr" | "eor"
    | "bic" | "bics" | "orn" | "eon"), (OReg dst :: OReg src :: rest) ->
      let op =
        match m with
        | "add" | "adds" -> ADD
        | "sub" | "subs" -> SUB
        | "and" | "ands" -> AND
        | "orr" -> ORR
        | "eor" -> EOR
        | "bic" | "bics" -> BIC
        | "orn" -> ORN
        | _ -> EON
      in
      let flags = String.length m > 3 && m.[String.length m - 1] = 's' in
      alu op flags dst src rest
  | "cmp", OReg src :: rest -> (
      match operand2_of rest with
      | Some op2 ->
          Ok (Alu { op = SUB; flags = true; dst = Reg.ZR (Reg.width src);
                    src; op2 })
      | None -> err)
  | "cmn", OReg src :: rest -> (
      match operand2_of rest with
      | Some op2 ->
          Ok (Alu { op = ADD; flags = true; dst = Reg.ZR (Reg.width src);
                    src; op2 })
      | None -> err)
  | "tst", OReg src :: rest -> (
      match operand2_of rest with
      | Some op2 ->
          Ok (Alu { op = AND; flags = true; dst = Reg.ZR (Reg.width src);
                    src; op2 })
      | None -> err)
  | ("neg" | "negs"), [ OReg dst; OReg r ] ->
      Ok (Alu { op = SUB; flags = m = "negs"; dst;
                src = Reg.ZR (Reg.width dst); op2 = Sh (r, Lsl, 0) })
  | "mvn", [ OReg dst; OReg r ] ->
      Ok (Alu { op = ORN; flags = false; dst; src = Reg.ZR (Reg.width dst);
                op2 = Sh (r, Lsl, 0) })
  | "mov", [ OReg dst; OReg src ] ->
      if Reg.is_sp dst || Reg.is_sp src then
        Ok (Alu { op = ADD; flags = false; dst; src; op2 = Imm (0, 0) })
      else
        Ok (Alu { op = ORR; flags = false; dst; src = Reg.ZR (Reg.width dst);
                  op2 = Sh (src, Lsl, 0) })
  | "mov", [ OReg dst; OImm v ] ->
      (* compiler alias: materialize a small constant *)
      if v >= 0 && v < 65536 then Ok (Mov { op = MOVZ; dst; imm = v; hw = 0 })
      else if v < 0 && lnot v < 65536 then
        Ok (Mov { op = MOVN; dst; imm = lnot v; hw = 0 })
      else err
  | ("movz" | "movn" | "movk"), OReg dst :: OImm v :: rest -> (
      let op = match m with "movz" -> MOVZ | "movn" -> MOVN | _ -> MOVK in
      match rest with
      | [] -> Ok (Mov { op; dst; imm = v; hw = 0 })
      | [ OShift (Lsl, s) ] when s mod 16 = 0 ->
          Ok (Mov { op; dst; imm = v; hw = s / 16 })
      | _ -> err)
  (* --- shifts and bitfields --- *)
  | ("lsl" | "lsr" | "asr" | "ror"), [ OReg dst; OReg src; OReg amount ] ->
      let op =
        match m with "lsl" -> Lsl | "lsr" -> Lsr | "asr" -> Asr | _ -> Ror
      in
      Ok (Shiftv { op; dst; src; amount })
  | "lsl", [ OReg dst; OReg src; OImm n ] ->
      let bits = wbits dst in
      if n < 0 || n >= bits then err
      else
        Ok (Bitfield { op = UBFM; dst; src; immr = (bits - n) mod bits;
                       imms = bits - 1 - n })
  | "lsr", [ OReg dst; OReg src; OImm n ] ->
      Ok (Bitfield { op = UBFM; dst; src; immr = n; imms = wbits dst - 1 })
  | "asr", [ OReg dst; OReg src; OImm n ] ->
      Ok (Bitfield { op = SBFM; dst; src; immr = n; imms = wbits dst - 1 })
  | "ror", [ OReg dst; OReg src; OImm n ] ->
      Ok (Extr { dst; src1 = src; src2 = src; lsb = n })
  | ("ubfm" | "sbfm" | "bfm"), [ OReg dst; OReg src; OImm immr; OImm imms ]
    ->
      let op = match m with "ubfm" -> UBFM | "sbfm" -> SBFM | _ -> BFM in
      Ok (Bitfield { op; dst; src; immr; imms })
  | ("ubfx" | "sbfx"), [ OReg dst; OReg src; OImm lsb; OImm width ] ->
      let op = if m = "ubfx" then UBFM else SBFM in
      Ok (Bitfield { op; dst; src; immr = lsb; imms = lsb + width - 1 })
  | ("ubfiz" | "sbfiz"), [ OReg dst; OReg src; OImm lsb; OImm width ] ->
      let op = if m = "ubfiz" then UBFM else SBFM in
      let bits = wbits dst in
      Ok (Bitfield { op; dst; src; immr = (bits - lsb) mod bits;
                     imms = width - 1 })
  | "bfi", [ OReg dst; OReg src; OImm lsb; OImm width ] ->
      let bits = wbits dst in
      Ok (Bitfield { op = BFM; dst; src; immr = (bits - lsb) mod bits;
                     imms = width - 1 })
  | "uxtb", [ OReg dst; OReg src ] ->
      Ok (Bitfield { op = UBFM; dst; src; immr = 0; imms = 7 })
  | "uxth", [ OReg dst; OReg src ] ->
      Ok (Bitfield { op = UBFM; dst; src; immr = 0; imms = 15 })
  | "sxtb", [ OReg dst; OReg src ] ->
      Ok (Bitfield { op = SBFM; dst; src = Reg.with_width (Reg.width dst) src;
                     immr = 0; imms = 7 })
  | "sxth", [ OReg dst; OReg src ] ->
      Ok (Bitfield { op = SBFM; dst; src = Reg.with_width (Reg.width dst) src;
                     immr = 0; imms = 15 })
  | "sxtw", [ OReg dst; OReg src ] ->
      Ok (Bitfield { op = SBFM; dst; src = Reg.with_width (Reg.width dst) src;
                     immr = 0; imms = 31 })
  | "extr", [ OReg dst; OReg src1; OReg src2; OImm lsb ] ->
      Ok (Extr { dst; src1; src2; lsb })
  (* --- multiply / divide --- *)
  | "mul", [ OReg dst; OReg src1; OReg src2 ] ->
      Ok (Madd { sub = false; dst; src1; src2; acc = Reg.ZR (Reg.width dst) })
  | "mneg", [ OReg dst; OReg src1; OReg src2 ] ->
      Ok (Madd { sub = true; dst; src1; src2; acc = Reg.ZR (Reg.width dst) })
  | ("madd" | "msub"), [ OReg dst; OReg src1; OReg src2; OReg acc ] ->
      Ok (Madd { sub = m = "msub"; dst; src1; src2; acc })
  | ("smulh" | "umulh"), [ OReg dst; OReg src1; OReg src2 ] ->
      Ok (Smulh { signed = m = "smulh"; dst; src1; src2 })
  | ("smull" | "umull"), [ OReg dst; OReg src1; OReg src2 ] ->
      Ok (Maddl { signed = m = "smull"; sub = false; dst; src1; src2;
                  acc = Reg.xzr })
  | ("smaddl" | "umaddl" | "smsubl" | "umsubl"),
    [ OReg dst; OReg src1; OReg src2; OReg acc ] ->
      Ok (Maddl { signed = m.[0] = 's'; sub = String.length m > 4 && m.[2] = 's';
                  dst; src1; src2; acc })
  | ("sdiv" | "udiv"), [ OReg dst; OReg src1; OReg src2 ] ->
      Ok (Div { signed = m = "sdiv"; dst; src1; src2 })
  | ("ccmp" | "ccmn"), [ OReg src; second; OImm nzcv; OSym c ] -> (
      match (cond_of_string c, second) with
      | Some cond, OReg r ->
          Ok (Ccmp { cmn = m = "ccmn"; src; op2 = CReg r; nzcv; cond })
      | Some cond, OImm v ->
          Ok (Ccmp { cmn = m = "ccmn"; src; op2 = CImm v; nzcv; cond })
      | _ -> err)
  (* --- conditional select --- *)
  | ("csel" | "csinc" | "csinv" | "csneg"),
    [ OReg dst; OReg src1; OReg src2; OSym c ] -> (
      match cond_of_string c with
      | Some cond ->
          let op =
            match m with
            | "csel" -> CSEL
            | "csinc" -> CSINC
            | "csinv" -> CSINV
            | _ -> CSNEG
          in
          Ok (Csel { op; dst; src1; src2; cond })
      | None -> err)
  | "cset", [ OReg dst; OSym c ] -> (
      match cond_of_string c with
      | Some cond ->
          let zr = Reg.ZR (Reg.width dst) in
          Ok (Csel { op = CSINC; dst; src1 = zr; src2 = zr;
                     cond = invert_cond cond })
      | None -> err)
  | "csetm", [ OReg dst; OSym c ] -> (
      match cond_of_string c with
      | Some cond ->
          let zr = Reg.ZR (Reg.width dst) in
          Ok (Csel { op = CSINV; dst; src1 = zr; src2 = zr;
                     cond = invert_cond cond })
      | None -> err)
  | ("cinc" | "cinv" | "cneg"), [ OReg dst; OReg src; OSym c ] -> (
      match cond_of_string c with
      | Some cond ->
          let op =
            match m with "cinc" -> CSINC | "cinv" -> CSINV | _ -> CSNEG
          in
          Ok (Csel { op; dst; src1 = src; src2 = src;
                     cond = invert_cond cond })
      | None -> err)
  (* --- misc data processing --- *)
  | ("clz" | "cls"), [ OReg dst; OReg src ] ->
      Ok (Cls { count_zero = m = "clz"; dst; src })
  | "rbit", [ OReg dst; OReg src ] -> Ok (Rbit { dst; src })
  | ("rev" | "rev16" | "rev32"), [ OReg dst; OReg src ] ->
      let bytes =
        match m with
        | "rev16" -> 2
        | "rev32" -> 4
        | _ -> ( match Reg.width dst with Reg.W64 -> 8 | Reg.W32 -> 4)
      in
      Ok (Rev { bytes; dst; src })
  | ("adr" | "adrp"), [ OReg dst; OSym s ] -> (
      match parse_target s with
      | Some target -> Ok (Adr { page = m = "adrp"; dst; target })
      | None -> err)
  (* --- loads / stores --- *)
  | "ldr", _ -> (
      match mem_ops m ops with
      | Ok (`G (d, a)) ->
          let sz = if w64 d then X else W in
          Ok (Ldr { sz; signed = false; dst = d; addr = a })
      | Ok (`F (d, a)) -> Ok (Fldr { dst = d; addr = a })
      | Ok _ | Error _ -> err)
  | "str", _ -> (
      match mem_ops m ops with
      | Ok (`G (d, a)) ->
          Ok (Str { sz = (if w64 d then X else W); src = d; addr = a })
      | Ok (`F (d, a)) -> Ok (Fstr { src = d; addr = a })
      | Ok _ | Error _ -> err)
  | ("ldrb" | "ldrh"), _ -> (
      match mem_ops m ops with
      | Ok (`G (d, a)) when not (w64 d) ->
          Ok (Ldr { sz = (if m = "ldrb" then B else H); signed = false;
                    dst = d; addr = a })
      | _ -> err)
  | ("ldrsb" | "ldrsh" | "ldrsw"), _ -> (
      match mem_ops m ops with
      | Ok (`G (d, a)) ->
          let sz : mem_size =
            match m with "ldrsb" -> B | "ldrsh" -> H | _ -> W
          in
          if m = "ldrsw" && not (w64 d) then err
          else Ok (Ldr { sz; signed = true; dst = d; addr = a })
      | _ -> err)
  | ("strb" | "strh"), _ -> (
      match mem_ops m ops with
      | Ok (`G (d, a)) when not (w64 d) ->
          Ok (Str { sz = (if m = "strb" then B else H); src = d; addr = a })
      | _ -> err)
  | "ldp", _ -> (
      match mem_ops m ops with
      | Ok (`GP (r1, r2, a)) when Reg.width r1 = Reg.width r2 ->
          Ok (Ldp { w = Reg.width r1; r1; r2; addr = a })
      | Ok (`FP (r1, r2, a)) -> Ok (Fldp { r1; r2; addr = a })
      | _ -> err)
  | "stp", _ -> (
      match mem_ops m ops with
      | Ok (`GP (r1, r2, a)) when Reg.width r1 = Reg.width r2 ->
          Ok (Stp { w = Reg.width r1; r1; r2; addr = a })
      | Ok (`FP (r1, r2, a)) -> Ok (Fstp { r1; r2; addr = a })
      | _ -> err)
  | ("ldxr" | "ldxrb" | "ldxrh"), [ OReg d; OMem (Imm_off (b, 0)) ] ->
      let sz : mem_size =
        match m with
        | "ldxrb" -> B
        | "ldxrh" -> H
        | _ -> if w64 d then X else W
      in
      Ok (Ldxr { sz; dst = d; base = b })
  | ("stxr" | "stxrb" | "stxrh"), [ OReg st; OReg s; OMem (Imm_off (b, 0)) ] ->
      let sz : mem_size =
        match m with
        | "stxrb" -> B
        | "stxrh" -> H
        | _ -> if w64 s then X else W
      in
      Ok (Stxr { sz; status = st; src = s; base = b })
  | ("ldar" | "ldarb" | "ldarh"), [ OReg d; OMem (Imm_off (b, 0)) ] ->
      let sz : mem_size =
        match m with
        | "ldarb" -> B
        | "ldarh" -> H
        | _ -> if w64 d then X else W
      in
      Ok (Ldar { sz; dst = d; base = b })
  | ("stlr" | "stlrb" | "stlrh"), [ OReg s; OMem (Imm_off (b, 0)) ] ->
      let sz : mem_size =
        match m with
        | "stlrb" -> B
        | "stlrh" -> H
        | _ -> if w64 s then X else W
      in
      Ok (Stlr { sz; src = s; base = b })
  (* --- branches --- *)
  | "b", [ OSym s ] -> (
      match parse_target s with Some t -> Ok (B t) | None -> err)
  | "bl", [ OSym s ] -> (
      match parse_target s with Some t -> Ok (Bl t) | None -> err)
  | ("cbz" | "cbnz"), [ OReg r; OSym s ] -> (
      match parse_target s with
      | Some target -> Ok (Cbz { nz = m = "cbnz"; reg = r; target })
      | None -> err)
  | ("tbz" | "tbnz"), [ OReg r; OImm bit; OSym s ] -> (
      match parse_target s with
      | Some target ->
          (* canonical register width follows the bit number (x and w
             forms are the same instruction) *)
          let r = Reg.with_width (if bit >= 32 then Reg.W64 else Reg.W32) r in
          Ok (Tbz { nz = m = "tbnz"; reg = r; bit; target })
      | None -> err)
  | "br", [ OReg r ] -> Ok (Br r)
  | "blr", [ OReg r ] -> Ok (Blr r)
  | "ret", [] -> Ok (Ret (Reg.x 30))
  | "ret", [ OReg r ] -> Ok (Ret r)
  (* --- floating point --- *)
  | ("fadd" | "fsub" | "fmul" | "fdiv" | "fmin" | "fmax"),
    [ OFp dst; OFp src1; OFp src2 ] ->
      let op =
        match m with
        | "fadd" -> FADD
        | "fsub" -> FSUB
        | "fmul" -> FMUL
        | "fdiv" -> FDIV
        | "fmin" -> FMIN
        | _ -> FMAX
      in
      Ok (Fop2 { op; dst; src1; src2 })
  | ("fneg" | "fabs" | "fsqrt"), [ OFp dst; OFp src ] ->
      let op = match m with "fneg" -> FNEG | "fabs" -> FABS | _ -> FSQRT in
      Ok (Fop1 { op; dst; src })
  | ("fmadd" | "fmsub"), [ OFp dst; OFp src1; OFp src2; OFp acc ] ->
      Ok (Fmadd { sub = m = "fmsub"; dst; src1; src2; acc })
  | "fcmp", [ OFp src1; OFp src2 ] -> Ok (Fcmp { src1; src2 = Some src2 })
  | "fcmp", [ OFp src1; OFImm0 ] -> Ok (Fcmp { src1; src2 = None })
  | "fcvt", [ OFp dst; OFp src ] -> Ok (Fcvt { dst; src })
  | ("scvtf" | "ucvtf"), [ OFp dst; OReg src ] ->
      Ok (Scvtf { signed = m = "scvtf"; dst; src })
  | ("fcvtzs" | "fcvtzu"), [ OReg dst; OFp src ] ->
      Ok (Fcvtzs { signed = m = "fcvtzs"; dst; src })
  | "fmov", [ OFp dst; OFp src ] -> Ok (Fop1 { op = FMOV; dst; src })
  | "fmov", [ OFp dst; OReg src ] -> Ok (Fmov_to_fp { dst; src })
  | "fmov", [ OReg dst; OFp src ] -> Ok (Fmov_from_fp { dst; src })
  (* --- system --- *)
  | "nop", [] -> Ok Nop
  | "svc", [ OImm n ] -> Ok (Svc n)
  | "mrs", [ OReg dst; OSym sysreg ] -> Ok (Mrs { dst; sysreg })
  | "msr", [ OSym sysreg; OReg src ] -> Ok (Msr { sysreg; src })
  | "dmb", _ -> Ok Dmb
  | "udf", [ OImm n ] -> Ok (Udf n)
  | _ -> Error (Printf.sprintf "unknown instruction %S" m)

(** Parse a single instruction statement, e.g. ["add x0, x1, #4"]. *)
let parse_insn (stmt : string) : (t, string) result =
  let stmt = String.trim stmt in
  match String.index_opt stmt ' ' with
  | None -> (
      (* no-operand instruction, possibly with condition suffix (b.eq
         never appears without operands, so only nop/ret/dmb land here) *)
      match build (String.lowercase_ascii stmt) [] with
      | Ok i -> Ok i
      | Error e -> Error e)
  | Some sp -> (
      let mnemonic = String.lowercase_ascii (String.sub stmt 0 sp)
      and rest = String.sub stmt (sp + 1) (String.length stmt - sp - 1) in
      let operands = split_operands rest in
      match
        ( String.length mnemonic > 2 && String.sub mnemonic 0 2 = "b.",
          operands )
      with
      | true, [ tgt ] -> (
          match
            ( cond_of_string
                (String.sub mnemonic 2 (String.length mnemonic - 2)),
              parse_target tgt )
          with
          | Some c, Some t -> Ok (Bcond (c, t))
          | _ -> Error (Printf.sprintf "bad conditional branch %S" stmt))
      | _ -> (
          let parsed = List.map parse_operand operands in
          if List.exists Option.is_none parsed then
            Error (Printf.sprintf "bad operand in %S" stmt)
          else build mnemonic (List.map Option.get parsed)))

(* ------------------------------------------------------------------ *)
(* File-level parsing                                                  *)
(* ------------------------------------------------------------------ *)

let is_label_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$'

let rec parse_line ~line (s : string) : (Source.item list, error) result =
  let s = String.trim (strip_comment s) in
  if s = "" then Ok []
  else
    (* label definitions: "name:" possibly followed by more *)
    match String.index_opt s ':' with
    | Some i
      when i > 0
           && String.for_all is_label_char (String.sub s 0 i)
           && not (String.contains (String.sub s 0 i) ' ') ->
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        let lbl = Source.Label (String.sub s 0 i) in
        if String.trim rest = "" then Ok [ lbl ]
        else (
          match parse_line ~line rest with
          | Ok items -> Ok (lbl :: items)
          | Error e -> Error e)
    | _ ->
        if s.[0] = '.' then
          (* directive: keep opaque *)
          match String.index_opt s ' ' with
          | None -> Ok [ Source.Directive (s, "") ]
          | Some i ->
              Ok
                [ Source.Directive
                    ( String.sub s 0 i,
                      String.trim
                        (String.sub s (i + 1) (String.length s - i - 1)) )
                ]
        else (
          match parse_insn s with
          | Ok i -> Ok [ Source.Insn i ]
          | Error msg -> errorf line "%s" msg)

(** Parse a whole assembly file. *)
let parse_string (text : string) : (Source.t, error) result =
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | l :: tl -> (
        match parse_line ~line:n l with
        | Ok items -> go (n + 1) (items :: acc) tl
        | Error e -> Error e)
  in
  go 1 [] lines

let parse_string_exn text =
  match parse_string text with
  | Ok src -> src
  | Error { line; msg } ->
      failwith (Printf.sprintf "parse error at line %d: %s" line msg)
