(** 538.imagick proxy — image convolution and thresholding.

    A 3x3 blur over a byte image with integer weights followed by a
    histogram pass: dense short loops with mixed byte/word traffic,
    the shape of ImageMagick's pixel kernels. *)

open Lfi_minic.Ast
open Common

let width = 256
let height = 128
let iters = 3

let pixels = width * height
let dim1h = height - 1
let dim1w = width - 1

open Lfi_minic.Ast.Dsl

let program : program =
  let main =
    func "main"
      ([ seed_stmt 8080 ]
      @ for_ "k" (i 0) (i pixels)
          [ set8 "img" (v "k") (band (call "rand" []) (i 255)) ]
      @ for_ "t" (i 0) (i iters)
          (for_ "y" (i 1) (i dim1h)
             (for_ "x" (i 1) (i dim1w)
                [
                  decl "p" Int (v "y" * i width + v "x");
                  decl "acc" Int
                    (a8 "img" (v "p") * i 4
                    + a8 "img" (v "p" - i 1)
                    + a8 "img" (v "p" + i 1)
                    + a8 "img" (v "p" - i width)
                    + a8 "img" (v "p" + i width));
                  set8 "out" (v "p") (shr (v "acc") (i 3));
                ])
          @ for_ "k" (i 0) (i pixels)
              [ set8 "img" (v "k") (a8 "out" (v "k")) ])
      @ for_ "k" (i 0) (i 256) [ set32 "hist" (v "k") (i 0) ]
      @ for_ "k" (i 0) (i pixels)
          [
            decl "px" Int (a8 "img" (v "k"));
            set32 "hist" (v "px") (a32 "hist" (v "px") + i 1);
          ]
      @ [ decl "chk" Int (i 0) ]
      @ for_ "k" (i 0) (i 256)
          [ set "chk" (bxor (v "chk") (a32 "hist" (v "k") * v "k")) ]
      @ [ finish (v "chk") ])
  in
  {
    globals =
      [ rng_global; Zeroed ("img", pixels); Zeroed ("out", pixels);
        Zeroed ("hist", 1024) ];
    funcs = [ rand_func; main ];
  }

let workload =
  { name = "538.imagick"; short = "imagick"; program; wasm_ok = false }
