(** 544.nab proxy — molecular mechanics force field.

    nab (nucleic acid builder) computes bonded and non-bonded energy
    terms over neighbor lists: double-precision arithmetic with
    indexed gathers through an integer pair list. *)

open Lfi_minic.Ast
open Common

let atoms = 1024
let pairs = 6000
let iters = 8

let abytes = atoms * 8
let pbytes = pairs * 8
let atom_mask = atoms - 1

open Lfi_minic.Ast.Dsl

let program : program =
  let main =
    func "main"
      ([ seed_stmt 4242 ]
      @ for_ "k" (i 0) (i atoms)
          [
            setf64 "pos" (v "k") (itof (band (call "rand" []) (i 4095)) /. f 128.0);
            setf64 "vel" (v "k") (f 0.0);
            setf64 "q" (v "k")
              (itof (band (call "rand" []) (i 127)) /. f 64.0 -. f 1.0);
          ]
      @ for_ "k" (i 0) (i pairs)
          [
            set64 "pa" (v "k") (band (call "rand" []) (i atom_mask));
            set64 "pb" (v "k") (band (call "rand" []) (i atom_mask));
          ]
      @ for_ "t" (i 0) (i iters)
          (for_ "k" (i 0) (i pairs)
             [
               decl "a" Int (a64 "pa" (v "k"));
               decl "b" Int (a64 "pb" (v "k"));
               decl "dx" Float (af64 "pos" (v "a") -. af64 "pos" (v "b"));
               decl "r2" Float (v "dx" *. v "dx" +. f 0.04);
               decl "inv" Float (f 1.0 /. v "r2");
               (* Lennard-Jones-ish + coulomb term *)
               decl "lj" Float
                 (v "inv" *. v "inv" *. v "inv"
                 *. (v "inv" *. v "inv" *. v "inv" -. f 1.0));
               decl "coul" Float
                 (af64 "q" (v "a") *. af64 "q" (v "b") /. fsqrt (v "r2"));
               decl "force" Float (v "lj" *. f 0.0625 +. v "coul" *. f 0.25);
               setf64 "vel" (v "a") (af64 "vel" (v "a") +. v "force" *. v "dx");
               setf64 "vel" (v "b") (af64 "vel" (v "b") -. v "force" *. v "dx");
             ]
          @ for_ "k" (i 0) (i atoms)
              [
                setf64 "pos" (v "k")
                  (af64 "pos" (v "k") +. af64 "vel" (v "k") *. f 0.0001);
              ])
      @ [ decl "e" Float (f 0.0) ]
      @ for_ "k" (i 0) (i atoms)
          [ set "e" (v "e" +. fabs' (af64 "vel" (v "k"))) ]
      @ [ finish (ftoi (v "e")) ])
  in
  {
    globals =
      [
        rng_global;
        Zeroed ("pos", abytes);
        Zeroed ("vel", abytes);
        Zeroed ("q", abytes);
        Zeroed ("pa", pbytes);
        Zeroed ("pb", pbytes);
      ];
    funcs = [ rand_func; main ];
  }

let workload = { name = "544.nab"; short = "nab"; program; wasm_ok = true }
