(** 519.lbm proxy — lattice-Boltzmann-style stencil sweeps.

    Regular strided double-precision loads/stores with a fixed 5-point
    stencil and streaming writes: the memory pattern that gives lbm its
    very low SFI overhead (most accesses are base+immediate and hoist
    well). *)

open Lfi_minic.Ast
open Common

let dim = 128
let iters = 12

let cells = dim * dim

let dim1 = dim - 1
let cell_bytes = cells * 8
open Lfi_minic.Ast.Dsl

let program : program =
  let main =
    func "main"
      ([ seed_stmt 42 ]
      @ for_ "k" (i 0) (i cells)
          [ setf64 "src" (v "k") (itof (band (call "rand" []) (i 1023))) ]
      @ for_ "t" (i 0) (i iters)
          (for_ "y" (i 1) (i dim1)
             (for_ "x" (i 1) (i dim1)
                [
                  decl "c" Int (v "y" * i dim + v "x");
                  decl "acc" Float
                    (af64 "src" (v "c")
                    *. f 0.6
                    +. (af64 "src" (v "c" - i 1) +. af64 "src" (v "c" + i 1))
                       *. f 0.1
                    +. (af64 "src" (v "c" - i dim)
                       +. af64 "src" (v "c" + i dim))
                       *. f 0.1);
                  setf64 "dst" (v "c") (v "acc");
                ])
          @ (* swap via copy-back sweep (streaming writes) *)
          for_ "k" (i 0) (i cells) [ setf64 "src" (v "k") (af64 "dst" (v "k")) ])
      @ [
          decl "sum" Float (f 0.0);
        ]
      @ for_ "k" (i 0) (i cells)
          [ set "sum" (v "sum" +. af64 "src" (v "k")) ]
      @ [ finish (ftoi (v "sum")) ])
  in
  {
    globals =
      [ rng_global; Zeroed ("src", cell_bytes); Zeroed ("dst", cell_bytes) ];
    funcs = [ rand_func; main ];
  }

let workload = { name = "519.lbm"; short = "lbm"; program; wasm_ok = true }
