(** 508.namd proxy — pairwise particle force computation.

    Structure-of-arrays double math with reciprocal square roots and a
    cutoff branch, iterated over a neighbor window: namd's inner loop
    shape. *)

open Lfi_minic.Ast
open Common

let particles = 600
let window = 24
let iters = 3

let pbytes = particles * 8
open Lfi_minic.Ast.Dsl

let program : program =
  let main =
    func "main"
      ([ seed_stmt 7 ]
      @ for_ "k" (i 0) (i particles)
          [
            setf64 "px" (v "k") (itof (band (call "rand" []) (i 255)) /. f 16.0);
            setf64 "py" (v "k") (itof (band (call "rand" []) (i 255)) /. f 16.0);
            setf64 "pz" (v "k") (itof (band (call "rand" []) (i 255)) /. f 16.0);
            setf64 "fx" (v "k") (f 0.0);
            setf64 "fy" (v "k") (f 0.0);
            setf64 "fz" (v "k") (f 0.0);
          ]
      @ for_ "t" (i 0) (i iters)
          (for_ "a" (i 0) (i particles)
             (for_ "w" (i 1) (i window)
                [
                  decl "b" Int (band (v "a" + v "w" * i 37) (i 511));
                  if_ (v "b" >= i particles) [ set "b" (v "b" - i particles) ] [];
                  decl "dx" Float (af64 "px" (v "a") -. af64 "px" (v "b"));
                  decl "dy" Float (af64 "py" (v "a") -. af64 "py" (v "b"));
                  decl "dz" Float (af64 "pz" (v "a") -. af64 "pz" (v "b"));
                  decl "r2" Float
                    (v "dx" *. v "dx" +. v "dy" *. v "dy" +. v "dz" *. v "dz"
                    +. f 0.01);
                  if_ (v "r2" <. f 36.0)
                    [
                      decl "inv" Float (f 1.0 /. fsqrt (v "r2"));
                      decl "s" Float (v "inv" *. v "inv" *. v "inv");
                      setf64 "fx" (v "a") (af64 "fx" (v "a") +. v "dx" *. v "s");
                      setf64 "fy" (v "a") (af64 "fy" (v "a") +. v "dy" *. v "s");
                      setf64 "fz" (v "a") (af64 "fz" (v "a") +. v "dz" *. v "s");
                    ]
                    [];
                ]))
      @ [ decl "sum" Float (f 0.0) ]
      @ for_ "k" (i 0) (i particles)
          [
            set "sum"
              (v "sum" +. fabs' (af64 "fx" (v "k")) +. fabs' (af64 "fy" (v "k"))
              +. fabs' (af64 "fz" (v "k")));
          ]
      @ [ finish (ftoi (v "sum")) ])
  in
  {
    globals =
      [
        rng_global;
        Zeroed ("px", pbytes);
        Zeroed ("py", pbytes);
        Zeroed ("pz", pbytes);
        Zeroed ("fx", pbytes);
        Zeroed ("fy", pbytes);
        Zeroed ("fz", pbytes);
      ];
    funcs = [ rand_func; main ];
  }

let workload = { name = "508.namd"; short = "namd"; program; wasm_ok = true }
