(** CoreMark proxy — the paper's artifact offers CoreMark as the
    freely-available alternative to SPEC (Appendix A.6.3).

    Real CoreMark mixes four kernels; the proxy implements all of
    them over the same data shapes:
    - linked-list find/reverse (pointer chasing),
    - integer matrix multiply-accumulate (nested loops, MACs),
    - a table-driven state machine over a character buffer,
    - CRC-16 over the results (bit twiddling).

    The experiment harness runs it like the SPEC proxies and reports
    the same overhead statistic; the artifact's expected result is that
    LFI overhead on CoreMark matches the SPEC picture. *)

open Lfi_minic.Ast
open Common

let list_nodes = 2048
let matrix_n = 24
let input_size = 8192
let iterations = 12

let list_bytes = list_nodes * 16
let list_mask = list_nodes - 1
let mat_cells = matrix_n * matrix_n
let mat_bytes = mat_cells * 8
let crc_poly = 0xA001

open Lfi_minic.Ast.Dsl

(* list node: next at +0, value at +8 *)
let node n = addr "list" + shl n (i 4)

let program : program =
  let crc16 =
    (* CRC-16/ARC over a 64-bit value, bit-serial like CoreMark's *)
    func "crc16" ~params:[ ("v", Int); ("crc", Int) ]
      [
        decl "k" Int (i 0);
        while_ (v "k" < i 16)
          [
            decl "bit" Int (band (shr (v "v") (v "k")) (i 1));
            decl "x" Int (bxor (band (v "crc") (i 1)) (v "bit"));
            set "crc" (shr (v "crc") (i 1));
            if_ (Bin (Ne, v "x", i 0))
              [ set "crc" (bxor (v "crc") (i crc_poly)) ]
              [];
            set "k" (v "k" + i 1);
          ];
        ret (v "crc");
      ]
  in
  let list_reverse =
    (* reverse the list starting at head index; returns the new head *)
    func "list_reverse" ~params:[ ("head", Int) ]
      [
        decl "prev" Int (i 0);
        decl "cur" Int (v "head");
        while_ (Bin (Ne, v "cur", i 0))
          [
            decl "cp" Int (node (v "cur"));
            decl "next" Int (ld I64 (v "cp"));
            store I64 (v "cp") (v "prev");
            set "prev" (v "cur");
            set "cur" (v "next");
          ];
        ret (v "prev");
      ]
  in
  let list_find =
    (* count nodes with value below a threshold *)
    func "list_find" ~params:[ ("head", Int); ("thresh", Int) ]
      [
        decl "count" Int (i 0);
        decl "cur" Int (v "head");
        while_ (Bin (Ne, v "cur", i 0))
          [
            decl "cp" Int (node (v "cur"));
            if_ (ld I64 (v "cp" + i 8) < v "thresh")
              [ set "count" (v "count" + i 1) ]
              [];
            set "cur" (ld I64 (v "cp"));
          ];
        ret (v "count");
      ]
  in
  let matrix_mul =
    (* C += A * B over n x n int64 matrices; returns C[0][0] *)
    func "matrix_mul"
      [
        decl "r" Int (i 0);
        while_ (v "r" < i matrix_n)
          [
            decl "c" Int (i 0);
            while_ (v "c" < i matrix_n)
              [
                decl "acc" Int (i 0);
                decl "k" Int (i 0);
                while_ (v "k" < i matrix_n)
                  [
                    set "acc"
                      (v "acc"
                      + ld I64 (addr "mat_a" + shl (v "r" * i matrix_n + v "k") (i 3))
                        * ld I64 (addr "mat_b" + shl (v "k" * i matrix_n + v "c") (i 3)));
                    set "k" (v "k" + i 1);
                  ];
                store I64
                  (addr "mat_c" + shl (v "r" * i matrix_n + v "c") (i 3))
                  (v "acc");
                set "c" (v "c" + i 1);
              ];
            set "r" (v "r" + i 1);
          ];
        ret (ld I64 (addr "mat_c"));
      ]
  in
  let state_machine =
    (* CoreMark-style scanner: classify bytes into states and count
       transitions *)
    func "state_machine" ~params:[ ("len", Int) ]
      [
        decl "state" Int (i 0);
        decl "transitions" Int (i 0);
        decl "p" Int (i 0);
        while_ (v "p" < v "len")
          [
            decl "ch" Int (a8 "input" (v "p"));
            decl "next" Int (i 0);
            if_ (band (v "ch" >= i 48) (v "ch" <= i 57))
              [ set "next" (i 1) ] (* digit *)
              [
                if_ (Bin (Eq, v "ch", i 43))
                  [ set "next" (i 2) ] (* sign *)
                  [
                    if_ (Bin (Eq, v "ch", i 46))
                      [ set "next" (i 3) ] (* dot *)
                      [ set "next" (i 0) ];
                  ];
              ];
            if_ (Bin (Ne, v "next", v "state"))
              [ set "transitions" (v "transitions" + i 1) ]
              [];
            set "state" (v "next");
            set "p" (v "p" + i 1);
          ];
        ret (v "transitions");
      ]
  in
  let main =
    func "main"
      ([ seed_stmt 0x5EED ]
      (* build the linked list as a full-period LCG permutation
         (a = 1 mod 4, c odd: single cycle, so every walk from node 1
         reaches node 0 and terminates) *)
      @ for_ "k" (i 1) (i list_nodes)
          [
            decl "np" Int (node (v "k"));
            store I64 (v "np")
              (band (v "k" * i 0x9E35 + i 1) (i list_mask));
            store I64 (v "np" + i 8) (band (call "rand" []) (i 0xFFFF));
          ]
      @ for_ "k" (i 0) (i mat_cells)
          [
            store I64 (addr "mat_a" + shl (v "k") (i 3))
              (band (call "rand" []) (i 255));
            store I64 (addr "mat_b" + shl (v "k") (i 3))
              (band (call "rand" []) (i 255));
          ]
      @ for_ "k" (i 0) (i input_size)
          [
            decl "r" Int (band (call "rand" []) (i 63));
            if_ (v "r" < i 10)
              [ set8 "input" (v "k") (v "r" + i 48) ]
              [
                if_ (v "r" < i 12)
                  [ set8 "input" (v "k") (i 43) ]
                  [
                    if_ (v "r" < i 14)
                      [ set8 "input" (v "k") (i 46) ]
                      [ set8 "input" (v "k") (i 97) ];
                  ];
              ];
          ]
      @ [ decl "crc" Int (i 0xFFFF); decl "it" Int (i 0);
          decl "head" Int (i 1) ]
      @ [
          while_ (v "it" < i iterations)
            [
              decl "found" Int (call "list_find" [ v "head"; i 0x8000 ]);
              set "head" (call "list_reverse" [ v "head" ]);
              decl "m" Int (call "matrix_mul" []);
              decl "t" Int (call "state_machine" [ i input_size ]);
              set "crc" (call "crc16" [ v "found"; v "crc" ]);
              set "crc" (call "crc16" [ v "head"; v "crc" ]);
              set "crc" (call "crc16" [ v "m"; v "crc" ]);
              set "crc" (call "crc16" [ v "t"; v "crc" ]);
              set "it" (v "it" + i 1);
            ];
        ]
      @ [ finish (v "crc") ])
  in
  {
    globals =
      [
        rng_global;
        Zeroed ("list", list_bytes);
        Zeroed ("mat_a", mat_bytes);
        Zeroed ("mat_b", mat_bytes);
        Zeroed ("mat_c", mat_bytes);
        Zeroed ("input", input_size);
      ];
    funcs =
      [ rand_func; crc16; list_reverse; list_find; matrix_mul; state_machine;
        main ];
  }

let workload =
  { name = "coremark"; short = "coremark"; program; wasm_ok = true }
