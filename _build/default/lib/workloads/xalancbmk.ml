(** 523.xalancbmk proxy — DOM-style tree traversal with name matching.

    An XSLT processor walks a node tree comparing element names.  The
    proxy builds a random n-ary tree (nodes: name-id +0, first-child
    +8, next-sibling +16, value +24, accessed through node pointers in
    registers) and repeatedly runs selector queries that compare
    interned 8-byte name keys — pointer-offset loads and call-heavy
    recursion. *)

open Lfi_minic.Ast
open Common

let node_count = 60_000
let names = 64
let queries = 4

let tree_bytes = node_count * 32
let name_bytes = names * 8
let name_mask = names - 1

open Lfi_minic.Ast.Dsl

(* pointer to node [n]; index 0 is the null sentinel, the root is 1 *)
let node n = addr "tree" + shl n (i 5)

let program : program =
  let visit =
    (* recursive traversal counting nodes whose name matches *)
    func "visit" ~params:[ ("n", Int); ("want", Int) ]
      [
        decl "acc" Int (i 0);
        decl "cur" Int (v "n");
        while_ (Bin (Ne, v "cur", i 0))
          [
            decl "cp" Int (node (v "cur"));
            decl "nm" Int (ld I64 (v "cp"));
            (* compare interned name keys *)
            if_ (Bin (Eq, a64 "namekeys" (v "nm"), a64 "namekeys" (v "want")))
              [ set "acc" (v "acc" + ld I64 (v "cp" + i 24)) ]
              [];
            decl "child" Int (ld I64 (v "cp" + i 8));
            if_ (Bin (Ne, v "child", i 0))
              [ set "acc" (v "acc" + call "visit" [ v "child"; v "want" ]) ]
              [];
            set "cur" (ld I64 (v "cp" + i 16));
          ];
        ret (v "acc");
      ]
  in
  let main =
    func "main"
      ([ seed_stmt 777 ]
      @ for_ "k" (i 0) (i names)
          [ set64 "namekeys" (v "k") (call "rand" []) ]
      (* build the tree; node k gets a random earlier parent *)
      @ [
          decl "rp" Int (node (i 1));
          store I64 (v "rp") (i 0);
          store I64 (v "rp" + i 8) (i 0);
          store I64 (v "rp" + i 16) (i 0);
          store I64 (v "rp" + i 24) (i 1);
        ]
      @ for_ "k" (i 2) (i node_count)
          [
            decl "parent" Int (call "rand" [] % (v "k" - i 1) + i 1);
            decl "kp" Int (node (v "k"));
            decl "pp" Int (node (v "parent"));
            store I64 (v "kp") (band (call "rand" []) (i name_mask));
            store I64 (v "kp" + i 8) (i 0);
            store I64 (v "kp" + i 24) (band (call "rand" []) (i 7));
            (* push as first child *)
            store I64 (v "kp" + i 16) (ld I64 (v "pp" + i 8));
            store I64 (v "pp" + i 8) (v "k");
          ]
      @ [ decl "chk" Int (i 0) ]
      @ for_ "qq" (i 0) (i queries)
          [
            set "chk"
              (v "chk" + call "visit" [ i 1; band (v "qq" * i 11) (i name_mask) ]);
          ]
      @ [ finish (v "chk") ])
  in
  {
    globals =
      (* small globals first: adr reaches only +-1MiB, and the tree is
         ~2MiB *)
      [ rng_global; Zeroed ("namekeys", name_bytes); Zeroed ("tree", tree_bytes) ];
    funcs = [ rand_func; visit; main ];
  }

let workload =
  { name = "523.xalancbmk"; short = "xalancbmk"; program; wasm_ok = false }
