(** 505.mcf proxy — network-simplex-style pointer chasing.

    mcf spends its time following arc/node pointers through a working
    set far larger than the caches.  The proxy builds a random cyclic
    permutation over 128Ki 16-byte nodes (2MiB, enough to stress the
    TLB model) and chases it, plus an arc-relaxation sweep with
    data-dependent branches. *)

open Lfi_minic.Ast
open Common

let nodes = 1 lsl 17
let steps = 120_000

let node_mask = nodes - 1
let node_mask2 = (nodes * 2) - 1
let node_bytes = nodes * 16
open Lfi_minic.Ast.Dsl

let program : program =
  let main =
    func "main"
      ([
         seed_stmt 0x1E3779B97F4A7C15;
         (* next pointer at +0, value at +8; a*k+b with odd a is a
            permutation of 2^n *)
         decl "chk" Int (i 0);
       ]
      @ for_ "k" (i 0) (i nodes)
          [
            store I64
              (addr "nodes" + shl (v "k") (i 4))
              (band (v "k" * i 0x27220A95 + i 7) (i node_mask));
            store I64
              (addr "nodes" + shl (v "k") (i 4) + i 8)
              (band (call "rand" []) (i 0xFFFF));
          ]
      @ [ decl "cur" Int (i 0) ]
      @ for_ "s" (i 0) (i steps)
          [
            decl "p" Int (addr "nodes" + shl (v "cur") (i 4));
            set "cur" (ld I64 (v "p"));
            set "chk" (v "chk" + ld I64 (v "p" + i 8));
          ]
      (* arc relaxation: data-dependent branching over two arrays *)
      @ for_ "k" (i 0) (i nodes)
          [
            decl "c" Int (a64 "nodes" (band (v "k" * i 5 + i 3) (i node_mask2)));
            if_ (band (v "c") (i 1) == i 1)
              [ set "chk" (v "chk" + v "c") ]
              [ set "chk" (v "chk" - band (v "c") (i 255)) ];
          ]
      @ [ finish (v "chk" + v "cur") ])
  in
  {
    globals = [ rng_global; Zeroed ("nodes", node_bytes) ];
    funcs = [ rand_func; main ];
  }

let workload =
  { name = "505.mcf"; short = "mcf"; program; wasm_ok = true }
