(** 502.gcc proxy — tokenizing, hashing and branchy dispatch.

    gcc is dominated by pointer-and-branch code over small structures:
    the proxy tokenizes a synthetic character buffer, interns tokens
    into an open-addressing hash table, and runs an if-chain "switch"
    over token kinds — lots of unpredictable branches and byte loads. *)

open Lfi_minic.Ast
open Common

let input_size = 48 * 1024
let table_size = 1 lsl 12

let table_mask = table_size - 1
let buf_alloc = input_size + 16
let tab_bytes = table_size * 8
open Lfi_minic.Ast.Dsl

let program : program =
  let main =
    func "main"
      ([ seed_stmt 2718 ]
      @ for_ "k" (i 0) (i input_size)
          [
            decl "r" Int (band (call "rand" []) (i 63));
            (* letters, digits, punctuation, spaces *)
            if_ (v "r" < i 26)
              [ set8 "buf" (v "k") (v "r" + i 97) ]
              [
                if_ (v "r" < i 36)
                  [ set8 "buf" (v "k") (v "r" - i 26 + i 48) ]
                  [
                    if_ (v "r" < i 48)
                      [ set8 "buf" (v "k") (i 32) ]
                      [ set8 "buf" (v "k") (i 43) ];
                  ];
              ];
          ]
      @ [
          decl "pos" Int (i 0);
          decl "idents" Int (i 0);
          decl "nums" Int (i 0);
          decl "ops" Int (i 0);
          decl "chk" Int (i 0);
        ]
      @ [
          while_ (v "pos" < i input_size)
            [
              decl "c" Int (a8 "buf" (v "pos"));
              if_ (band (v "c" >= i 97) (v "c" <= i 122))
                [
                  (* identifier: scan and hash *)
                  decl "h" Int (i 5381);
                  while_
                    (band (v "pos" < i input_size)
                       (band (a8 "buf" (v "pos") >= i 97)
                          (a8 "buf" (v "pos") <= i 122)))
                    [
                      set "h"
                        (band (v "h" * i 33 + a8 "buf" (v "pos"))
                           (i 0xFFFFFF));
                      set "pos" (v "pos" + i 1);
                    ];
                  (* intern into the hash table (linear probing) *)
                  decl "slot" Int (band (v "h") (i table_mask));
                  decl "probes" Int (i 0);
                  while_
                    (band
                       (Bin (Ne, a64 "tab" (v "slot"), i 0))
                       (band
                          (Bin (Ne, a64 "tab" (v "slot"), v "h" + i 1))
                          (v "probes" < i 16)))
                    [
                      set "slot" (band (v "slot" + i 1) (i table_mask));
                      set "probes" (v "probes" + i 1);
                    ];
                  set64 "tab" (v "slot") (v "h" + i 1);
                  set "idents" (v "idents" + i 1);
                  set "chk" (bxor (v "chk") (v "h"));
                ]
                [
                  if_ (band (v "c" >= i 48) (v "c" <= i 57))
                    [
                      decl "n" Int (i 0);
                      while_
                        (band (v "pos" < i input_size)
                           (band (a8 "buf" (v "pos") >= i 48)
                              (a8 "buf" (v "pos") <= i 57)))
                        [
                          set "n" (v "n" * i 10 + a8 "buf" (v "pos") - i 48);
                          set "pos" (v "pos" + i 1);
                        ];
                      set "nums" (v "nums" + i 1);
                      set "chk" (v "chk" + band (v "n") (i 0xFFFF));
                    ]
                    [
                      if_ (Bin (Eq, v "c", i 43))
                        [ set "ops" (v "ops" + i 1); set "pos" (v "pos" + i 1) ]
                        [ set "pos" (v "pos" + i 1) ];
                    ];
                ];
            ];
        ]
      @ [ finish (v "chk" + v "idents" * i 3 + v "nums" * i 5 + v "ops") ])
  in
  {
    globals =
      [ rng_global; Zeroed ("buf", buf_alloc);
        Zeroed ("tab", tab_bytes) ];
    funcs = [ rand_func; main ];
  }

let workload = { name = "502.gcc"; short = "gcc"; program; wasm_ok = false }
