(** Microbenchmark programs for Table 5 (isolation-domain switching).

    Three guests, mirroring the paper's artifact:
    - [syscall_prog]: a getpid loop (the "syscall" row);
    - [pipe_parent]: forks a child and ping-pongs one byte over two
      pipes (the "pipe" row);
    - [yield_pair]: two sandboxes calling the optimized direct yield
      back and forth (the "yield" row, microkernel-style IPC). *)

open Lfi_minic.Ast
open Common

let syscall_iters = 2000
let pipe_iters = 300
let yield_iters = 1000

open Lfi_minic.Ast.Dsl

(** getpid in a loop. *)
let syscall_prog : program =
  let main =
    func "main"
      ([ decl "s" Int (i 0) ]
      @ for_ "k" (i 0) (i syscall_iters)
          [ set "s" (v "s" + sys_getpid ()) ]
      @ [ finish (v "s") ])
  in
  { globals = []; funcs = [ main ] }

(** The same loop without the runtime call, to subtract loop overhead
    when computing per-call cost. *)
let syscall_baseline_prog : program =
  let main =
    func "main"
      ([ decl "s" Int (i 0) ]
      @ for_ "k" (i 0) (i syscall_iters) [ set "s" (v "s" + i 1) ]
      @ [ finish (v "s") ])
  in
  { globals = []; funcs = [ main ] }

(** Parent/child one-byte ping-pong over two pipes.  The child inherits
    the pipe fds across fork; fd numbers are identical in both. *)
let pipe_prog : program =
  let main =
    func "main"
      [
        (* fds: a.read, a.write stored at fds+0; b at fds+8 *)
        expr (sys_pipe (addr "fds"));
        expr (sys_pipe (addr "fds" + i 8));
        decl "a_r" Int (ld I32 (addr "fds"));
        decl "a_w" Int (ld I32 (addr "fds" + i 4));
        decl "b_r" Int (ld I32 (addr "fds" + i 8));
        decl "b_w" Int (ld I32 (addr "fds" + i 12));
        decl "pid" Int (sys_fork ());
        if_ (Bin (Eq, v "pid", i 0))
          ((* child: read from a, write to b *)
           for_ "k" (i 0) (i pipe_iters)
             [
               expr (sys_read (v "a_r") (addr "buf") (i 1));
               expr (sys_write (v "b_w") (addr "buf") (i 1));
             ]
          @ [ ret (i 0) ])
          ((* parent: write to a, read from b *)
           [ store U8 (addr "buf") (i 7) ]
          @ for_ "k" (i 0) (i pipe_iters)
              [
                expr (sys_write (v "a_w") (addr "buf") (i 1));
                expr (sys_read (v "b_r") (addr "buf") (i 1));
              ]
          @ [
              decl "st" Int (i 0);
              expr (sys_wait (addr "status"));
              set "st" (v "st");
              ret (a8 "buf" (i 0));
            ]);
      ]
  in
  {
    globals = [ Zeroed ("fds", 16); Zeroed ("buf", 8); Zeroed ("status", 8) ];
    funcs = [ main ];
  }

(** Direct-yield ping-pong: process 1 yields to process 2 and back.
    [peer] is passed as the program argument (in x0 at entry). *)
let yield_prog : program =
  let main =
    (* main's argument: the peer pid (0 means "I am the first; my peer
       is pid 2") *)
    func "main" ~params:[ ("peer", Int) ]
      ([
         if_ (Bin (Eq, v "peer", i 0)) [ set "peer" (i 2) ] [];
       ]
      @ for_ "k" (i 0) (i yield_iters)
          [ expr (sys_yield_to (v "peer")) ]
      @ [ finish (i 0) ])
  in
  { globals = []; funcs = [ main ] }
