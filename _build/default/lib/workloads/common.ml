(** Shared pieces of the SPEC-proxy workloads.

    Every workload is a deterministic MiniC program that initializes
    its own data from a seeded xorshift PRNG, runs a kernel whose
    memory/branch/FP mix mimics the corresponding SPEC CPU2017
    benchmark, and exits with a checksum.  The checksum lets the test
    suite confirm that native, all LFI optimization levels, and all
    Wasm engines compute the same result. *)

open Lfi_minic.Ast
open Lfi_minic.Ast.Dsl
[@@@warning "-33"]

(** xorshift64 PRNG over the global [rng_state]; returns a positive
    value (bit 63 cleared so MiniC's signed ops behave). *)
let rng_global = Zeroed ("rng_state", 8)

let rand_func =
  func "rand"
    [
      decl "s" Int (ld I64 (addr "rng_state"));
      set "s" (bxor (v "s") (band (shl (v "s") (i 13)) (i 0x3FFFFFFFFFFFFFFF)));
      set "s" (bxor (v "s") (shr (v "s") (i 7)));
      set "s" (bxor (v "s") (band (shl (v "s") (i 17)) (i 0x3FFFFFFFFFFFFFFF)));
      store I64 (addr "rng_state") (v "s");
      ret (band (v "s") (i 0x3FFFFFFFFFFFFFFF));
    ]

let seed_stmt seed = store I64 (addr "rng_state") (i seed)

(** Reduce a checksum to a small positive exit code. *)
let finish e = ret (band e (i 0x3FFFFFFF))

(** i64 array element access helpers. *)
let a64 name k = ld I64 (idx name k ~elt:I64)
let set64 name k value = store I64 (idx name k ~elt:I64) value
let af64 name k = ld F64 (idx name k ~elt:F64)
let setf64 name k value = store F64 (idx name k ~elt:F64) value
let a8 name k = ld U8 (idx name k ~elt:U8)
let set8 name k value = store U8 (idx name k ~elt:U8) value
let a32 name k = ld I32 (idx name k ~elt:I32)
let set32 name k value = store I32 (idx name k ~elt:I32) value

(** A workload: a program plus metadata for the experiment harness. *)
type t = {
  name : string;  (** SPEC-style name, e.g. "505.mcf" *)
  short : string;
  program : program;
  wasm_ok : bool;
      (** included in the 7-benchmark Wasm comparison subset of
          Figure 4 *)
}
