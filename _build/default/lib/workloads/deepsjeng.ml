(** 531.deepsjeng proxy — bitboard move generation with alpha-beta
    recursion.

    Chess engines live on 64-bit masks, shifts, population counts, a
    transposition table and deep recursion.  The proxy runs a toy
    negamax over a bitboard-ish position state with a hash-table
    cutoff. *)

open Lfi_minic.Ast
open Common

let tt_size = 1 lsl 12
let depth = 9

let tt_mask = tt_size - 1
let tt_bytes = tt_size * 8
open Lfi_minic.Ast.Dsl

let program : program =
  let popcount =
    (* Kernighan loop: unpredictable-trip-count branch pattern *)
    func "popcount" ~params:[ ("b", Int) ]
      [
        decl "n" Int (i 0);
        while_ (Bin (Ne, v "b", i 0))
          [ set "b" (band (v "b") (v "b" - i 1)); set "n" (v "n" + i 1) ];
        ret (v "n");
      ]
  in
  let search =
    func "search" ~params:[ ("pos", Int); ("d", Int); ("alpha", Int) ]
      [
        if_ (Bin (Eq, v "d", i 0))
          [ ret (call "popcount" [ v "pos" ] - i 8) ]
          [];
        (* transposition-table probe *)
        decl "slot" Int (band (v "pos" * i 0x9E3779B9 / i 1024) (i tt_mask));
        decl "entry" Int (a64 "tt" (v "slot"));
        if_ (Bin (Eq, v "entry", v "pos"))
          [ ret (band (v "pos") (i 63) - i 16) ]
          [];
        decl "best" Int (i (-100000));
        decl "moves" Int (band (v "pos") (i 3) + i 2);
        decl "mv" Int (i 0);
        while_ (v "mv" < v "moves")
          [
            (* generate a successor position with shifts and masks *)
            decl "np" Int
              (bxor
                 (band
                    (bor (shl (v "pos") (i 1)) (shr (v "pos") (i 13)))
                    (i 0x3FFFFFFFFFFFFFF))
                 (v "mv" * i 0x10001));
            decl "s" Int (neg (call "search" [ v "np"; v "d" - i 1; neg (v "best") ]));
            if_ (v "s" > v "best") [ set "best" (v "s") ] [];
            if_ (v "best" > v "alpha") [ Break ] [];
            set "mv" (v "mv" + i 1);
          ];
        store I64 (idx "tt" (v "slot") ~elt:I64) (v "pos");
        ret (v "best");
      ]
  in
  let main =
    func "main"
      [
        seed_stmt 64;
        decl "score" Int
          (call "search" [ i 0x123456789ABCD; i depth; i 100000 ]);
        decl "chk" Int (v "score" + i 200000);
        finish (v "chk");
      ]
  in
  {
    globals = [ rng_global; Zeroed ("tt", tt_bytes) ];
    funcs = [ rand_func; popcount; search; main ];
  }

let workload =
  { name = "531.deepsjeng"; short = "deepsjeng"; program; wasm_ok = true }
