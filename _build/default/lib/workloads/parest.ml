(** 510.parest proxy — sparse matrix-vector products (CG-style).

    parest is a finite-element solver; its kernel is repeated sparse
    matrix-vector multiplication in CSR form: indexed double loads
    through an integer column index — an addressing pattern SFI must
    guard on every element. *)

open Lfi_minic.Ast
open Common

let rows = 4096
let nnz_per_row = 9
let iters = 10

let nnz = rows * nnz_per_row

let rows_mask = rows - 1
let nnz_bytes = nnz * 8
let row_bytes = rows * 8
open Lfi_minic.Ast.Dsl

let program : program =
  let main =
    func "main"
      ([ seed_stmt 31415 ]
      @ for_ "k" (i 0) (i nnz)
          [
            set64 "cols" (v "k")
              (band (v "k" * i 193 + band (call "rand" []) (i 63)) (i rows_mask));
            setf64 "vals" (v "k")
              (itof (band (call "rand" []) (i 127)) /. f 64.0);
          ]
      @ for_ "k" (i 0) (i rows)
          [ setf64 "x" (v "k") (itof (band (call "rand" []) (i 255)) /. f 256.0) ]
      @ for_ "t" (i 0) (i iters)
          (for_ "r" (i 0) (i rows)
             ([
                decl "acc" Float (f 0.0);
                decl "base" Int (v "r" * i nnz_per_row);
              ]
             @ for_ "e" (i 0) (i nnz_per_row)
                 [
                   decl "idx0" Int (v "base" + v "e");
                   set "acc"
                     (v "acc"
                     +. af64 "vals" (v "idx0")
                        *. af64 "x" (a64 "cols" (v "idx0")));
                 ]
             @ [ setf64 "y" (v "r") (v "acc") ])
          @ (* x := normalized y *)
          for_ "r" (i 0) (i rows)
            [ setf64 "x" (v "r") (af64 "y" (v "r") *. f 0.124) ])
      @ [ decl "sum" Float (f 0.0) ]
      @ for_ "r" (i 0) (i rows) [ set "sum" (v "sum" +. af64 "x" (v "r")) ]
      @ [ finish (ftoi (v "sum" *. f 1000.0)) ])
  in
  {
    globals =
      [
        rng_global;
        Zeroed ("cols", nnz_bytes);
        Zeroed ("vals", nnz_bytes);
        Zeroed ("x", row_bytes);
        Zeroed ("y", row_bytes);
      ];
    funcs = [ rand_func; main ];
  }

let workload =
  { name = "510.parest"; short = "parest"; program; wasm_ok = false }
