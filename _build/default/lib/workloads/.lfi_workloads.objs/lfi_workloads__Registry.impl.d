lib/workloads/registry.ml: Common Deepsjeng Gcc Imagick Lbm Leela List Mcf Nab Namd Omnetpp Parest Povray X264 Xalancbmk Xz
