lib/workloads/mcf.ml: Common Lfi_minic
