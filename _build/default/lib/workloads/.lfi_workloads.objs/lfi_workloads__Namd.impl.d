lib/workloads/namd.ml: Common Lfi_minic
