lib/workloads/povray.ml: Common Lfi_minic
