lib/workloads/imagick.ml: Common Lfi_minic
