lib/workloads/common.ml: Lfi_minic
