lib/workloads/x264.ml: Common Lfi_minic
