lib/workloads/microbench.ml: Common Lfi_minic
