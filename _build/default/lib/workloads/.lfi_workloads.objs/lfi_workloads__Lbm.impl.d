lib/workloads/lbm.ml: Common Lfi_minic
