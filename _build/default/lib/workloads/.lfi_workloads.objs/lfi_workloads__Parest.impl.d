lib/workloads/parest.ml: Common Lfi_minic
