lib/workloads/nab.ml: Common Lfi_minic
