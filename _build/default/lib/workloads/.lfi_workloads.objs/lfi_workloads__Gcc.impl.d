lib/workloads/gcc.ml: Common Lfi_minic
