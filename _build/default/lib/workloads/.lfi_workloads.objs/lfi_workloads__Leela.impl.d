lib/workloads/leela.ml: Common Lfi_minic
