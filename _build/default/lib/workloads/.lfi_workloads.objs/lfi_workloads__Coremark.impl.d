lib/workloads/coremark.ml: Common Lfi_minic
