lib/workloads/omnetpp.ml: Common Lfi_minic
