lib/workloads/deepsjeng.ml: Common Lfi_minic
