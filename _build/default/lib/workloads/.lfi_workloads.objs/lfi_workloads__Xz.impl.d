lib/workloads/xz.ml: Common Lfi_minic
