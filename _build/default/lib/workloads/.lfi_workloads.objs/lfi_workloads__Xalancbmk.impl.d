lib/workloads/xalancbmk.ml: Common Lfi_minic
