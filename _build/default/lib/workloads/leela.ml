(** 541.leela proxy — Monte-Carlo tree search.

    leela interleaves float UCT scoring with pointer-linked tree
    expansion and pseudo-random playouts; in the paper it is LFI's
    worst benchmark (~17% on M1) because nearly every access is an
    irregular pointer-offset load.  The proxy keeps a node pool
    (visits +0, wins +8, first-child +16, sibling +24) accessed through
    node pointers held in registers — the Figure 2 pattern that
    redundant guard elimination targets — and runs
    select/expand/playout/backup iterations. *)

open Lfi_minic.Ast
open Common

let pool_size = 8192
let iterations = 2600
let node_bytes = pool_size * 32
let pool_limit = pool_size - 8

open Lfi_minic.Ast.Dsl

(* pointer to node [n] of the pool *)
let node n = addr "pool" + shl n (i 5)

let program : program =
  let playout =
    (* pseudo-random game rollout: mixes RNG, branches and float
       scoring *)
    func "playout" ~params:[ ("seed", Int) ]
      [
        decl "s" Int (v "seed");
        decl "score" Int (i 0);
        decl "m" Int (i 0);
        while_ (v "m" < i 24)
          [
            set "s" (band (v "s" * i 6364136223846793 + i 1442695040888963)
                       (i 0x3FFFFFFFFFFFFFFF));
            if_ (band (shr (v "s") (i 33)) (i 1) == i 1)
              [ set "score" (v "score" + i 1) ]
              [ set "score" (v "score" - i 1) ];
            set "m" (v "m" + i 1);
          ];
        if_ (v "score" > i 0) [ ret (i 1) ] [ ret (i 0) ];
      ]
  in
  let main =
    func "main"
      ([
         seed_stmt 3333;
         store I64 (addr "pool_used") (i 1);
         decl "chk" Int (i 0);
         decl "it" Int (i 0);
       ]
      @ [
          while_ (v "it" < i iterations)
            [
              (* selection: walk down by best UCT child *)
              decl "curp" Int (addr "pool");
              decl "depth" Int (i 0);
              while_ (band (Bin (Ne, ld I64 (v "curp" + i 16), i 0))
                        (v "depth" < i 24))
                [
                  decl "best" Int (ld I64 (v "curp" + i 16));
                  decl "bestv" Float (f (-1.0));
                  decl "ch" Int (v "best");
                  while_ (Bin (Ne, v "ch", i 0))
                    [
                      decl "chp" Int (node (v "ch"));
                      decl "vis" Int (ld I64 (v "chp") + i 1);
                      decl "uct" Float
                        (itof (ld I64 (v "chp" + i 8))
                         /. itof (v "vis")
                        +. f 1.4 /. fsqrt (itof (v "vis")));
                      if_ (v "bestv" <. v "uct")
                        [ set "bestv" (v "uct"); set "best" (v "ch") ]
                        [];
                      set "ch" (ld I64 (v "chp" + i 24));
                    ];
                  set "curp" (node (v "best"));
                  set "depth" (v "depth" + i 1);
                ];
              (* expansion: add up to 4 children if the pool allows *)
              decl "used" Int (ld I64 (addr "pool_used"));
              if_ (band (v "used" < i pool_limit)
                     (ld I64 (v "curp") > i 0))
                [
                  decl "kk" Int (i 0);
                  decl "prev" Int (i 0);
                  while_ (v "kk" < i 4)
                    [
                      decl "np" Int (node (v "used" + v "kk"));
                      store I64 (v "np") (i 0);
                      store I64 (v "np" + i 8) (i 0);
                      store I64 (v "np" + i 16) (i 0);
                      store I64 (v "np" + i 24) (v "prev");
                      set "prev" (v "used" + v "kk");
                      set "kk" (v "kk" + i 1);
                    ];
                  store I64 (v "curp" + i 16) (v "prev");
                  store I64 (addr "pool_used") (v "used" + i 4);
                ]
                [];
              (* playout + backup along cur and the root (the seed uses
                 only position-independent values) *)
              decl "win" Int
                (call "playout" [ v "it" * i 31 + v "depth" * i 7 + v "used" ]);
              store I64 (v "curp") (ld I64 (v "curp") + i 1);
              store I64 (v "curp" + i 8) (ld I64 (v "curp" + i 8) + v "win");
              decl "rootp" Int (addr "pool");
              store I64 (v "rootp") (ld I64 (v "rootp") + i 1);
              set "chk" (v "chk" + v "win");
              set "it" (v "it" + i 1);
            ];
        ]
      @ [ finish (v "chk" * i 3 + ld I64 (addr "pool_used")) ])
  in
  {
    globals = [ rng_global; Zeroed ("pool", node_bytes); Zeroed ("pool_used", 8) ];
    funcs = [ rand_func; playout; main ];
  }

let workload = { name = "541.leela"; short = "leela"; program; wasm_ok = false }
