(** 557.xz proxy — LZ77 match finding with a hash chain.

    Byte scanning, a hash-head table, chained match extension and a
    small adaptive counter model: the integer/branch/byte-load mix of a
    general-purpose compressor. *)

open Lfi_minic.Ast
open Common

let input_size = 96 * 1024
let hash_size = 1 lsl 12

let input_last = input_size - 8
let hash_mask = hash_size - 1
let input_alloc = input_size + 128
let head_bytes = hash_size * 8
open Lfi_minic.Ast.Dsl

let program : program =
  let main =
    func "main"
      ([ seed_stmt 99 ]
      (* synthetic input with repetitions: random bytes with a skewed
         distribution; the array is over-allocated by 128 bytes so the
         (non-short-circuit) match extension below stays in bounds *)
      @ for_ "k" (i 0) (i input_size)
          [
            decl "r" Int (call "rand" []);
            set8 "inp" (v "k")
              (band (v "r") (i 15) + band (shr (v "r") (i 8)) (i 3) * i 16);
          ]
      @ for_ "k" (i 0) (i hash_size) [ set64 "head" (v "k") (i 0 - i 1) ]
      @ [ decl "pos" Int (i 0); decl "out" Int (i 0); decl "lit" Int (i 0) ]
      @ [
          while_ (v "pos" < i input_last)
            [
              decl "h"
                Int
                (band
                   ((a8 "inp" (v "pos") * i 256
                    + a8 "inp" (v "pos" + i 1) * i 16
                    + a8 "inp" (v "pos" + i 2))
                   * i 2654435761
                   / i 65536)
                   (i hash_mask));
              decl "cand" Int (a64 "head" (v "h"));
              set64 "head" (v "h") (v "pos");
              decl "len" Int (i 0);
              if_ (v "cand" >= i 0)
                [
                  (* extend the match *)
                  while_
                    (band (v "len" < i 64)
                       (Bin
                          ( Eq,
                            a8 "inp" (v "cand" + v "len"),
                            a8 "inp" (v "pos" + v "len") )))
                    [ set "len" (v "len" + i 1) ];
                ]
                [];
              if_ (v "len" >= i 4)
                [
                  set "out" (v "out" + i 3);
                  set "pos" (v "pos" + v "len");
                  set "lit" (bxor (v "lit") (v "len"));
                ]
                [
                  set "out" (v "out" + i 1);
                  set "pos" (v "pos" + i 1);
                  set "lit" (v "lit" + a8 "inp" (v "pos"));
                ];
            ];
        ]
      @ [ finish (v "out" * i 7 + v "lit") ])
  in
  {
    globals =
      [ rng_global; Zeroed ("inp", input_alloc); Zeroed ("head", head_bytes) ];
    funcs = [ rand_func; main ];
  }

let workload = { name = "557.xz"; short = "xz"; program; wasm_ok = true }
