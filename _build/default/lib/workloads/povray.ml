(** 511.povray proxy — ray/sphere intersection with shading.

    Scalar double math with square roots and data-dependent control
    flow (hit/miss), over a small scene traversed per-pixel: povray's
    characteristic mix of FP arithmetic and branching. *)

open Lfi_minic.Ast
open Common

let spheres = 16
let rays = 9000

let sbytes = spheres * 8
open Lfi_minic.Ast.Dsl

let program : program =
  let main =
    func "main"
      ([ seed_stmt 1001 ]
      @ for_ "k" (i 0) (i spheres)
          [
            setf64 "sx" (v "k") (itof (band (call "rand" []) (i 63)) /. f 8.0);
            setf64 "sy" (v "k") (itof (band (call "rand" []) (i 63)) /. f 8.0);
            setf64 "sz" (v "k") (itof (band (call "rand" []) (i 31)) +. f 4.0);
            setf64 "sr" (v "k")
              (itof (band (call "rand" []) (i 15)) /. f 8.0 +. f 0.5);
          ]
      @ [ decl "hits" Int (i 0); decl "shade" Float (f 0.0) ]
      @ for_ "r" (i 0) (i rays)
          ([
             decl "dx" Float
               (itof (band (call "rand" []) (i 255)) /. f 256.0 -. f 0.5);
             decl "dy" Float
               (itof (band (call "rand" []) (i 255)) /. f 256.0 -. f 0.5);
             decl "dz" Float (f 1.0);
             decl "norm" Float
               (f 1.0
               /. fsqrt (v "dx" *. v "dx" +. v "dy" *. v "dy" +. f 1.0));
             decl "best" Float (f 1.0e9);
           ]
          @ [ set "dx" (v "dx" *. v "norm"); set "dy" (v "dy" *. v "norm");
              set "dz" (v "dz" *. v "norm") ]
          @ for_ "s" (i 0) (i spheres)
              [
                decl "ox" Float (fneg (af64 "sx" (v "s")));
                decl "oy" Float (fneg (af64 "sy" (v "s")));
                decl "oz" Float (fneg (af64 "sz" (v "s")));
                decl "b" Float
                  (fneg
                     (v "ox" *. v "dx" +. v "oy" *. v "dy" +. v "oz" *. v "dz"));
                decl "c" Float
                  (v "ox" *. v "ox" +. v "oy" *. v "oy" +. v "oz" *. v "oz"
                  -. af64 "sr" (v "s") *. af64 "sr" (v "s"));
                decl "disc" Float (v "b" *. v "b" -. v "c");
                if_ (f 0.0 <. v "disc")
                  [
                    decl "t" Float (v "b" -. fsqrt (v "disc"));
                    if_ (band (f 0.001 <. v "t") (v "t" <. v "best"))
                      [ set "best" (v "t") ]
                      [];
                  ]
                  [];
              ]
          @ [
              if_ (v "best" <. f 1.0e8)
                [
                  set "hits" (v "hits" + i 1);
                  set "shade"
                    (v "shade" +. f 1.0 /. (f 1.0 +. v "best" *. f 0.25));
                ]
                [];
            ])
      @ [ finish (v "hits" * i 17 + ftoi (v "shade" *. f 64.0)) ])
  in
  {
    globals =
      [
        rng_global;
        Zeroed ("sx", sbytes);
        Zeroed ("sy", sbytes);
        Zeroed ("sz", sbytes);
        Zeroed ("sr", sbytes);
      ];
    funcs = [ rand_func; main ];
  }


let workload =
  { name = "511.povray"; short = "povray"; program; wasm_ok = false }
