(** 520.omnetpp proxy — discrete event simulation on a binary heap.

    omnetpp's hot path is future-event-set maintenance: pop the
    earliest event, process it, schedule successors.  The proxy runs a
    sift-up/sift-down binary heap of (time, kind) events with
    data-dependent comparisons — pointer-ish, branch-heavy integer
    code. *)

open Lfi_minic.Ast
open Common

let heap_cap = 4096
let events = 12_000
let state_bytes = 2 * 1024 * 1024
let state_mask = (state_bytes / 8) - 1

let cap_limit = heap_cap - 4
let heap_bytes = heap_cap * 16
open Lfi_minic.Ast.Dsl

let program : program =
  (* heap of (time, kind) pairs, 16 bytes each, accessed through entry
     pointers so that time/kind loads share a base register *)
  let entry k = Bin (Add, Addr "heap", shl k (i 4)) in
  let time = entry in
  let push =
    func "push" ~params:[ ("t", Int); ("kd", Int) ]
      [
        decl "n" Int (ld I64 (addr "hsize"));
        decl "np" Int (entry (v "n"));
        store I64 (v "np") (v "t");
        store I64 (v "np" + i 8) (v "kd");
        store I64 (addr "hsize") (v "n" + i 1);
        (* sift up *)
        decl "c" Int (v "n");
        while_ (v "c" > i 0)
          [
            decl "p" Int (sar (v "c" - i 1) (i 1));
            decl "pp" Int (entry (v "p"));
            decl "cp" Int (entry (v "c"));
            if_ (ld I64 (v "pp") <= ld I64 (v "cp"))
              [ Break ]
              [
                decl "tt" Int (ld I64 (v "pp"));
                decl "tk" Int (ld I64 (v "pp" + i 8));
                store I64 (v "pp") (ld I64 (v "cp"));
                store I64 (v "pp" + i 8) (ld I64 (v "cp" + i 8));
                store I64 (v "cp") (v "tt");
                store I64 (v "cp" + i 8) (v "tk");
                set "c" (v "p");
              ];
          ];
        ret (i 0);
      ]
  in
  let pop =
    func "pop"
      [
        decl "n" Int (ld I64 (addr "hsize") - i 1);
        decl "rootp" Int (entry (i 0));
        decl "lastp" Int (entry (v "n"));
        decl "top" Int (ld I64 (v "rootp" + i 8));
        store I64 (addr "ptime") (ld I64 (v "rootp"));
        store I64 (v "rootp") (ld I64 (v "lastp"));
        store I64 (v "rootp" + i 8) (ld I64 (v "lastp" + i 8));
        store I64 (addr "hsize") (v "n");
        (* sift down *)
        decl "c" Int (i 0);
        while_ (i 1)
          [
            decl "l" Int (v "c" * i 2 + i 1);
            decl "r" Int (v "c" * i 2 + i 2);
            decl "m" Int (v "c");
            (* nested ifs: MiniC's band is not short-circuiting, and
               time(l)/time(r) may be out of bounds when l/r >= n *)
            if_ (v "l" < v "n")
              [ if_ (ld I64 (time (v "l")) < ld I64 (time (v "m")))
                  [ set "m" (v "l") ] [] ] [];
            if_ (v "r" < v "n")
              [ if_ (ld I64 (time (v "r")) < ld I64 (time (v "m")))
                  [ set "m" (v "r") ] [] ] [];
            if_ (Bin (Eq, v "m", v "c")) [ Break ] [];
            decl "mp" Int (entry (v "m"));
            decl "cp" Int (entry (v "c"));
            decl "tt" Int (ld I64 (v "mp"));
            decl "tk" Int (ld I64 (v "mp" + i 8));
            store I64 (v "mp") (ld I64 (v "cp"));
            store I64 (v "mp" + i 8) (ld I64 (v "cp" + i 8));
            store I64 (v "cp") (v "tt");
            store I64 (v "cp" + i 8) (v "tk");
            set "c" (v "m");
          ];
        ret (v "top");
      ]
  in
  let main =
    func "main"
      ([ seed_stmt 5150; store I64 (addr "hsize") (i 0) ]
      @ for_ "k" (i 0) (i 512)
          [
            expr
              (call "push"
                 [ band (call "rand" []) (i 0xFFFFF); band (call "rand" []) (i 7) ]);
          ]
      @ [ decl "chk" Int (i 0); decl "processed" Int (i 0) ]
      @ [
          while_ (v "processed" < i events)
            [
              decl "kd" Int (call "pop" []);
              decl "now" Int (ld I64 (addr "ptime"));
              (* the event handler touches its module's state (the
                 source of omnetpp's TLB pressure) *)
              decl "mi" Int (band (v "now" * i 2654435761) (i state_mask));
              set64 "mstate" (v "mi") (a64 "mstate" (v "mi") + v "kd" + i 1);
              set "chk" (bxor (v "chk") (v "now" + v "kd"));
              (* each event schedules 1-2 successors, bounded by cap *)
              if_ (ld I64 (addr "hsize") < i cap_limit)
                [
                  expr
                    (call "push"
                       [
                         v "now" + band (call "rand" []) (i 1023) + i 1;
                         band (v "kd" + i 1) (i 7);
                       ]);
                  if_ (Bin (Eq, band (v "kd") (i 3), i 0))
                    [
                      expr
                        (call "push"
                           [
                             v "now" + band (call "rand" []) (i 255) + i 1;
                             band (v "kd" + i 5) (i 7);
                           ]);
                    ]
                    [];
                ]
                [];
              (* never let the event set drain completely *)
              if_ (Bin (Eq, ld I64 (addr "hsize"), i 0))
                [ expr (call "push" [ v "now" + i 17; i 1 ]) ]
                [];
              set "processed" (v "processed" + i 1);
            ];
        ]
      @ [ finish (v "chk" + v "processed") ])
  in
  {
    globals =
      [
        (* the 2MiB state array goes last: adr reaches only +-1MiB *)
        rng_global;
        Zeroed ("hsize", 8);
        Zeroed ("ptime", 8);
        Zeroed ("heap", heap_bytes);
        Zeroed ("mstate", state_bytes);
      ];
    funcs = [ rand_func; push; pop; main ];
  }

let workload =
  { name = "520.omnetpp"; short = "omnetpp"; program; wasm_ok = false }
