(** 525.x264 proxy — sum-of-absolute-differences motion search.

    Byte loads over two frames with small fixed offsets inside 16x16
    blocks, an abs-diff reduction, and a best-score argmin: the classic
    video-encoder inner loop (dense [base + #imm] traffic that LFI's
    zero-instruction guards make nearly free). *)

open Lfi_minic.Ast
open Common

let width = 320
let height = 96
let blocks = 40
let candidates = 24

let frame = width * height

let pbytes = frame
open Lfi_minic.Ast.Dsl

let program : program =
  let main =
    func "main"
      ([ seed_stmt 1234 ]
      @ for_ "k" (i 0) (i frame)
          [
            set8 "ref" (v "k") (band (call "rand" []) (i 255));
            set8 "cur" (v "k")
              (band (a8 "ref" (v "k") + band (call "rand" []) (i 7)) (i 255));
          ]
      @ [ decl "total" Int (i 0) ]
      @ for_ "b" (i 0) (i blocks)
          ([
             decl "bx" Int (band (v "b" * i 53) (i 255) + i 16);
             decl "by" Int (band (v "b" * i 31) (i 63) + i 8);
             decl "best" Int (i 99999999);
           ]
          @ for_ "c" (i 0) (i candidates)
              ([
                 decl "mx" Int (v "bx" + band (v "c" * i 7) (i 15) - i 8);
                 decl "my" Int (v "by" + band (v "c" * i 3) (i 7) - i 4);
                 decl "sad" Int (i 0);
               ]
              @ for_ "y" (i 0) (i 16)
                  ([
                     decl "rc" Int (Bin (Add, Addr "cur",
                                         (v "by" + v "y") * i width + v "bx"));
                     decl "rr" Int (Bin (Add, Addr "ref",
                                         (v "my" + v "y") * i width + v "mx"));
                   ]
                  @ for_ "x" (i 0) (i 16)
                      [
                        decl "dd" Int
                          (ld U8 (v "rc" + v "x") - ld U8 (v "rr" + v "x"));
                        if_ (v "dd" < i 0) [ set "dd" (neg (v "dd")) ] [];
                        set "sad" (v "sad" + v "dd");
                      ])
              @ [ if_ (v "sad" < v "best") [ set "best" (v "sad") ] [] ])
          @ [ set "total" (v "total" + v "best") ])
      @ [ finish (v "total") ])
  in
  {
    globals = [ rng_global; Zeroed ("ref", pbytes); Zeroed ("cur", pbytes) ];
    funcs = [ rand_func; main ];
  }

let workload = { name = "525.x264"; short = "x264"; program; wasm_ok = true }
