(** Wasm IR → ARM64 compiler, parameterized by an {!Engine.t}.

    The output is ordinary (unverified) ARM64 that performs its own
    language-based sandboxing, exactly like an AOT Wasm engine: linear
    memory accesses go through the heap base register/struct with the
    guard-page scheme ([add xT, base, wIdx, uxtw] + static offset),
    indirect calls are bounds- and type-checked against the table, and
    traps funnel to an abort stub.  It runs under the LFI runtime with
    the [Native_in_lfi_runtime] personality (the engines in the paper
    are likewise ordinary processes).

    Register conventions: x28 = pinned heap base, x27 = context
    pointer, x26 = cached heap base (non-barrier struct engines),
    x19-x25 = register-allocated locals (LLVM-class codegen only),
    x9-x15 = operand-stack scratch. *)

open Lfi_arm64
module W = Ir

exception Error of string

let errorf fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let x = Reg.x
let w = Reg.w
let d n = Reg.Fp.v Reg.Fp.D n

let int_scratch = [ 9; 10; 11; 12; 13; 14; 15 ]
let fp_scratch = [ 16; 17; 18; 19; 20; 21; 22; 23 ]
let int_homes = [ 19; 20; 21; 22; 23; 24; 25 ]
let fp_homes = [ 8; 9; 10; 11; 12; 13; 14; 15 ]
let ctx_reg = 27
let heap_reg = 28
let heap_cache_reg = 26

(** Context-struct field offsets (cf. the Wasm2c sandbox struct). *)
let ctx_stack_limit_off = 8
let ctx_heap_base_off = 16

type vitem =
  | SInt of int  (** scratch register *)
  | SFlt of int
  | SConstI of int
  | SConstF of float
  | SSpillI of int  (** frame temp slot *)
  | SSpillF of int

type local_home = HReg of int | HFreg of int | HSlot of int | HFslot of int

type fctx = {
  eng : Engine.t;
  m : W.module_;
  findex : int;
  f : W.func;
  homes : local_home array;
  mutable vstack : vitem list;
  mutable scratch : int list;
  mutable fscratch : int list;
  temp_base : int;
  mutable temp_used : int;
  mutable label_counter : int;
  mutable labels : (string * [ `Fwd | `Back ]) list;
      (** innermost first: branch target of each enclosing construct *)
  mutable out : Source.item list;
  mutable heap_cached : bool;
  frame : int;
  epilogue : string;
}

let emit ctx i = ctx.out <- Source.Insn i :: ctx.out
(* The heap-base cache (x26) holds a constant value, so labels do not
   invalidate it; only calls (which clobber x26 in the callee) do.
   Structured-control joins are handled conservatively in
   [compile_instr]. *)
let emit_label ctx l = ctx.out <- Source.Label l :: ctx.out

let fresh ctx prefix =
  ctx.label_counter <- ctx.label_counter + 1;
  Printf.sprintf ".Lw%d_%s%d" ctx.findex prefix ctx.label_counter

let alloc_int ctx =
  match ctx.scratch with
  | r :: tl ->
      ctx.scratch <- tl;
      r
  | [] -> errorf "%s: operand stack too deep" ctx.f.W.name

let alloc_fp ctx =
  match ctx.fscratch with
  | r :: tl ->
      ctx.fscratch <- tl;
      r
  | [] -> errorf "%s: float operand stack too deep" ctx.f.W.name

let free_int ctx r = if List.mem r int_scratch then ctx.scratch <- r :: ctx.scratch
let free_fp ctx r = if List.mem r fp_scratch then ctx.fscratch <- r :: ctx.fscratch

let alloc_temp ctx =
  let slot = ctx.temp_base + (8 * ctx.temp_used) in
  ctx.temp_used <- ctx.temp_used + 1;
  if ctx.temp_used > 32 then errorf "%s: out of spill slots" ctx.f.W.name;
  slot

let mov_reg dst src =
  Insn.Alu { op = Insn.ORR; flags = false; dst = x dst; src = Reg.xzr;
             op2 = Insn.Sh (x src, Insn.Lsl, 0) }

let fmov_reg dst src = Insn.Fop1 { op = Insn.FMOV; dst = d dst; src = d src }

(** Materialize an arbitrary integer constant with movz/movn/movk.
    Chunks are computed through Int64 so negative values keep their
    full two's-complement bit pattern. *)
let emit_const ctx (dst : int) (v : int) =
  if v >= 0 && v < 65536 then
    emit ctx (Insn.Mov { op = Insn.MOVZ; dst = x dst; imm = v; hw = 0 })
  else if v < 0 && lnot v < 65536 then
    emit ctx (Insn.Mov { op = Insn.MOVN; dst = x dst; imm = lnot v; hw = 0 })
  else begin
    let v64 = Int64.of_int v in
    let chunk k =
      Int64.to_int
        (Int64.logand (Int64.shift_right_logical v64 (16 * k)) 0xFFFFL)
    in
    let first = ref true in
    for k = 0 to 3 do
      let c = chunk k in
      if c <> 0 || (k = 3 && !first) then begin
        emit ctx
          (Insn.Mov { op = (if !first then Insn.MOVZ else Insn.MOVK);
                      dst = x dst; imm = c; hw = k });
        first := false
      end
    done;
    if !first then
      emit ctx (Insn.Mov { op = Insn.MOVZ; dst = x dst; imm = 0; hw = 0 })
  end

(** Materialize a full 64-bit pattern (FP constant bits do not fit an
    OCaml int). *)
let emit_const64 ctx dst (v64 : int64) =
  let chunk k =
    Int64.to_int (Int64.logand (Int64.shift_right_logical v64 (16 * k)) 0xFFFFL)
  in
  let first = ref true in
  for k = 0 to 3 do
    let c = chunk k in
    if c <> 0 || (k = 3 && !first) then begin
      emit ctx
        (Insn.Mov { op = (if !first then Insn.MOVZ else Insn.MOVK);
                    dst = x dst; imm = c; hw = k });
      first := false
    end
  done;
  if !first then
    emit ctx (Insn.Mov { op = Insn.MOVZ; dst = x dst; imm = 0; hw = 0 })

let ldr_sp dst off =
  Insn.Ldr { sz = Insn.X; signed = false; dst = x dst;
             addr = Insn.Imm_off (Reg.sp, off) }

let str_sp src off =
  Insn.Str { sz = Insn.X; src = x src; addr = Insn.Imm_off (Reg.sp, off) }

let fldr_sp dst off = Insn.Fldr { dst = d dst; addr = Insn.Imm_off (Reg.sp, off) }
let fstr_sp src off = Insn.Fstr { src = d src; addr = Insn.Imm_off (Reg.sp, off) }

(* ------------------------------------------------------------------ *)
(* Virtual operand stack                                               *)
(* ------------------------------------------------------------------ *)

let push ctx item = ctx.vstack <- item :: ctx.vstack

(** Materialize the top-of-stack into an integer scratch register. *)
let pop_int ctx : int =
  match ctx.vstack with
  | [] -> errorf "%s: operand stack underflow" ctx.f.W.name
  | item :: tl -> (
      ctx.vstack <- tl;
      match item with
      | SInt r -> r
      | SConstI v ->
          let r = alloc_int ctx in
          emit_const ctx r v;
          r
      | SSpillI slot ->
          let r = alloc_int ctx in
          emit ctx (ldr_sp r slot);
          ctx.temp_used <- ctx.temp_used - 1;
          r
      | SFlt _ | SConstF _ | SSpillF _ ->
          errorf "%s: expected i64 operand" ctx.f.W.name)

let pop_fp ctx : int =
  match ctx.vstack with
  | [] -> errorf "%s: operand stack underflow" ctx.f.W.name
  | item :: tl -> (
      ctx.vstack <- tl;
      match item with
      | SFlt r -> r
      | SConstF v ->
          let r = alloc_fp ctx in
          let ri = alloc_int ctx in
          emit_const64 ctx ri (Int64.bits_of_float v);
          emit ctx (Insn.Fmov_to_fp { dst = d r; src = x ri });
          free_int ctx ri;
          r
      | SSpillF slot ->
          let r = alloc_fp ctx in
          emit ctx (fldr_sp r slot);
          ctx.temp_used <- ctx.temp_used - 1;
          r
      | SInt _ | SConstI _ | SSpillI _ ->
          errorf "%s: expected f64 operand" ctx.f.W.name)

(** Pop as either a register or a small immediate (for folding). *)
let pop_int_or_imm ctx : [ `Reg of int | `Imm of int ] =
  match ctx.vstack with
  | SConstI v :: tl when ctx.eng.Engine.codegen = Engine.Llvm && v >= 0 && v < 4096 ->
      ctx.vstack <- tl;
      `Imm v
  | _ -> `Reg (pop_int ctx)

(** Spill every live operand-stack value to frame slots (before a call
    clobbers the scratch registers). *)
let spill_all ctx =
  ctx.vstack <-
    List.rev_map
      (fun item ->
        match item with
        | SInt r ->
            let slot = alloc_temp ctx in
            emit ctx (str_sp r slot);
            free_int ctx r;
            SSpillI slot
        | SFlt r ->
            let slot = alloc_temp ctx in
            emit ctx (fstr_sp r slot);
            free_fp ctx r;
            SSpillF slot
        | item -> item)
      (List.rev ctx.vstack)

(* ------------------------------------------------------------------ *)
(* Heap addressing (the guard-page scheme)                             *)
(* ------------------------------------------------------------------ *)

(** Return a register holding the heap base. *)
let heap_base ctx : int =
  match ctx.eng.Engine.heap_base with
  | Engine.Pinned -> heap_reg
  | Engine.In_struct { barrier } ->
      if (not barrier) && ctx.heap_cached then heap_cache_reg
      else begin
        let dst = if barrier then alloc_int ctx else heap_cache_reg in
        emit ctx
          (Insn.Ldr { sz = Insn.X; signed = false; dst = x dst;
                      addr = Insn.Imm_off (x ctx_reg, ctx_heap_base_off) });
        if not barrier then ctx.heap_cached <- true;
        dst
      end

let release_heap_base ctx r =
  if r <> heap_reg && r <> heap_cache_reg then free_int ctx r

(** Compute the host address [base + zx(idx) + off].  With [off = 0]
    this is a single guarded addressing mode; otherwise the engine
    relies on its reserved guard region after the 4GiB memory. *)
let mem_addr ctx (off : int) : Insn.addr * (unit -> unit) =
  let idx = pop_int ctx in
  let base = heap_base ctx in
  if off = 0 then
    ( Insn.Reg_off (x base, w idx, Insn.Uxtw, 0),
      fun () ->
        free_int ctx idx;
        release_heap_base ctx base )
  else begin
    let t = alloc_int ctx in
    emit ctx
      (Insn.Alu { op = Insn.ADD; flags = false; dst = x t; src = x base;
                  op2 = Insn.Ext (w idx, Insn.Uxtw, 0) });
    free_int ctx idx;
    release_heap_base ctx base;
    ( Insn.Imm_off (x t, off),
      fun () -> free_int ctx t )
  end

(* ------------------------------------------------------------------ *)
(* Instruction compilation                                             *)
(* ------------------------------------------------------------------ *)

let func_label i (m : W.module_) = Printf.sprintf "wf%d_%s" i m.W.funcs.(i).W.name

let trap_label = "__wasm_trap"
let table_label = "__wasm_table"
let sigs_label = "__wasm_sigs"
let memory_label = "__wasm_memory"
let ctx_label = "__wasm_ctx"

let local_get ctx n =
  match ctx.homes.(n) with
  | HReg home ->
      let r = alloc_int ctx in
      emit ctx (mov_reg r home);
      push ctx (SInt r)
  | HFreg home ->
      let r = alloc_fp ctx in
      emit ctx (fmov_reg r home);
      push ctx (SFlt r)
  | HSlot off ->
      let r = alloc_int ctx in
      emit ctx (ldr_sp r off);
      push ctx (SInt r)
  | HFslot off ->
      let r = alloc_fp ctx in
      emit ctx (fldr_sp r off);
      push ctx (SFlt r)

let local_set ctx n =
  match ctx.homes.(n) with
  | HReg home ->
      let r = pop_int ctx in
      emit ctx (mov_reg home r);
      free_int ctx r
  | HFreg home ->
      let r = pop_fp ctx in
      emit ctx (fmov_reg home r);
      free_fp ctx r
  | HSlot off ->
      let r = pop_int ctx in
      emit ctx (str_sp r off);
      free_int ctx r
  | HFslot off ->
      let r = pop_fp ctx in
      emit ctx (fstr_sp r off);
      free_fp ctx r

let compile_ibin ctx (op : W.ibinop) =
  let fold = pop_int_or_imm ctx in
  let ra = pop_int ctx in
  let rr = alloc_int ctx in
  (match (op, fold) with
  | W.Add, `Imm v ->
      emit ctx
        (Insn.Alu { op = Insn.ADD; flags = false; dst = x rr; src = x ra;
                    op2 = Insn.Imm (v, 0) })
  | W.Sub, `Imm v ->
      emit ctx
        (Insn.Alu { op = Insn.SUB; flags = false; dst = x rr; src = x ra;
                    op2 = Insn.Imm (v, 0) })
  | W.Shl, `Imm v when v < 64 ->
      emit ctx
        (Insn.Bitfield { op = Insn.UBFM; dst = x rr; src = x ra;
                         immr = (64 - v) mod 64; imms = 63 - v })
  | W.Shr_s, `Imm v when v < 64 ->
      emit ctx
        (Insn.Bitfield { op = Insn.SBFM; dst = x rr; src = x ra; immr = v;
                         imms = 63 })
  | W.Shr_u, `Imm v when v < 64 ->
      emit ctx
        (Insn.Bitfield { op = Insn.UBFM; dst = x rr; src = x ra; immr = v;
                         imms = 63 })
  | W.Mul, `Imm v when v > 0 && v land (v - 1) = 0 ->
      let rec lg i = if 1 lsl i = v then i else lg (i + 1) in
      let s = lg 0 in
      emit ctx
        (Insn.Bitfield { op = Insn.UBFM; dst = x rr; src = x ra;
                         immr = (64 - s) mod 64; imms = 63 - s })
  | _, fold ->
      let rb =
        match fold with
        | `Reg r -> r
        | `Imm v ->
            let r = alloc_int ctx in
            emit_const ctx r v;
            r
      in
      (match op with
      | W.Add | W.Sub | W.And | W.Or | W.Xor ->
          let aop =
            match op with
            | W.Add -> Insn.ADD
            | W.Sub -> Insn.SUB
            | W.And -> Insn.AND
            | W.Or -> Insn.ORR
            | _ -> Insn.EOR
          in
          emit ctx
            (Insn.Alu { op = aop; flags = false; dst = x rr; src = x ra;
                        op2 = Insn.Sh (x rb, Insn.Lsl, 0) })
      | W.Mul ->
          emit ctx
            (Insn.Madd { sub = false; dst = x rr; src1 = x ra; src2 = x rb;
                         acc = Reg.xzr })
      | W.Div_s ->
          emit ctx
            (Insn.Div { signed = true; dst = x rr; src1 = x ra; src2 = x rb })
      | W.Rem_s ->
          let q = alloc_int ctx in
          emit ctx
            (Insn.Div { signed = true; dst = x q; src1 = x ra; src2 = x rb });
          emit ctx
            (Insn.Madd { sub = true; dst = x rr; src1 = x q; src2 = x rb;
                         acc = x ra });
          free_int ctx q
      | W.Shl ->
          emit ctx (Insn.Shiftv { op = Insn.Lsl; dst = x rr; src = x ra;
                                  amount = x rb })
      | W.Shr_s ->
          emit ctx (Insn.Shiftv { op = Insn.Asr; dst = x rr; src = x ra;
                                  amount = x rb })
      | W.Shr_u ->
          emit ctx (Insn.Shiftv { op = Insn.Lsr; dst = x rr; src = x ra;
                                  amount = x rb }));
      free_int ctx rb);
  free_int ctx ra;
  push ctx (SInt rr)

let cond_of_icmp = function
  | W.Eq -> Insn.EQ
  | W.Ne -> Insn.NE
  | W.Lt_s -> Insn.LT
  | W.Le_s -> Insn.LE
  | W.Gt_s -> Insn.GT
  | W.Ge_s -> Insn.GE
  | W.Lt_u -> Insn.CC

let compile_icmp ctx (op : W.icmp) =
  let fold = pop_int_or_imm ctx in
  let ra = pop_int ctx in
  (match fold with
  | `Imm v ->
      emit ctx
        (Insn.Alu { op = Insn.SUB; flags = true; dst = Reg.xzr; src = x ra;
                    op2 = Insn.Imm (v, 0) })
  | `Reg rb ->
      emit ctx
        (Insn.Alu { op = Insn.SUB; flags = true; dst = Reg.xzr; src = x ra;
                    op2 = Insn.Sh (x rb, Insn.Lsl, 0) });
      free_int ctx rb);
  free_int ctx ra;
  let rr = alloc_int ctx in
  emit ctx
    (Insn.Csel { op = Insn.CSINC; dst = x rr; src1 = Reg.xzr;
                 src2 = Reg.xzr; cond = Insn.invert_cond (cond_of_icmp op) });
  push ctx (SInt rr)

let elt_of = Lfi_minic.Ast.elt_size

let compile_load ctx (e : W.elt) off =
  let addr, release = mem_addr ctx off in
  (match e with
  | Lfi_minic.Ast.F64 ->
      let r = alloc_fp ctx in
      emit ctx (Insn.Fldr { dst = d r; addr });
      push ctx (SFlt r)
  | Lfi_minic.Ast.F32 ->
      let r = alloc_fp ctx in
      let s = Reg.Fp.v Reg.Fp.S r in
      emit ctx (Insn.Fldr { dst = s; addr });
      emit ctx (Insn.Fcvt { dst = d r; src = s });
      push ctx (SFlt r)
  | e ->
      let r = alloc_int ctx in
      (match e with
      | Lfi_minic.Ast.U8 ->
          emit ctx (Insn.Ldr { sz = Insn.B; signed = false; dst = w r; addr })
      | Lfi_minic.Ast.U16 ->
          emit ctx (Insn.Ldr { sz = Insn.H; signed = false; dst = w r; addr })
      | Lfi_minic.Ast.I32 ->
          emit ctx (Insn.Ldr { sz = Insn.W; signed = true; dst = x r; addr })
      | _ ->
          emit ctx
            (Insn.Ldr { sz = Insn.X; signed = false; dst = x r; addr }));
      push ctx (SInt r));
  release ()

let compile_store ctx (e : W.elt) off =
  match e with
  | Lfi_minic.Ast.F64 | Lfi_minic.Ast.F32 ->
      let rv = pop_fp ctx in
      let addr, release = mem_addr ctx off in
      (match e with
      | Lfi_minic.Ast.F64 -> emit ctx (Insn.Fstr { src = d rv; addr })
      | _ ->
          let s = Reg.Fp.v Reg.Fp.S rv in
          emit ctx (Insn.Fcvt { dst = s; src = d rv });
          emit ctx (Insn.Fstr { src = s; addr }));
      release ();
      free_fp ctx rv
  | e ->
      let rv = pop_int ctx in
      let addr, release = mem_addr ctx off in
      (match e with
      | Lfi_minic.Ast.U8 -> emit ctx (Insn.Str { sz = Insn.B; src = w rv; addr })
      | Lfi_minic.Ast.U16 -> emit ctx (Insn.Str { sz = Insn.H; src = w rv; addr })
      | Lfi_minic.Ast.I32 -> emit ctx (Insn.Str { sz = Insn.W; src = w rv; addr })
      | _ -> emit ctx (Insn.Str { sz = Insn.X; src = x rv; addr }));
      release ();
      free_int ctx rv

(** Move the top [n] operands into the argument registers. *)
let marshal_args ctx (params : W.valtype list) =
  let n = List.length params in
  let args = ref [] in
  for _ = 1 to n do
    match ctx.vstack with
    | item :: tl ->
        ctx.vstack <- tl;
        args := item :: !args
    | [] -> errorf "%s: call underflow" ctx.f.W.name
  done;
  let ii = ref 0 and fi = ref 0 in
  List.iter2
    (fun (t : W.valtype) item ->
      match t with
      | W.I64 ->
          (match item with
          | SInt r ->
              emit ctx (mov_reg !ii r);
              free_int ctx r
          | SConstI v -> emit_const ctx !ii v
          | SSpillI slot ->
              emit ctx (ldr_sp !ii slot);
              ctx.temp_used <- ctx.temp_used - 1
          | _ -> errorf "argument type mismatch");
          incr ii
      | W.F64 ->
          (match item with
          | SFlt r ->
              emit ctx (fmov_reg !fi r);
              free_fp ctx r
          | SConstF v ->
              let ri = alloc_int ctx in
              emit_const64 ctx ri (Int64.bits_of_float v);
              emit ctx (Insn.Fmov_to_fp { dst = d !fi; src = x ri });
              free_int ctx ri
          | SSpillF slot ->
              emit ctx (fldr_sp !fi slot);
              ctx.temp_used <- ctx.temp_used - 1
          | _ -> errorf "argument type mismatch");
          incr fi)
    params !args

let push_result ctx (t : W.valtype) =
  match t with
  | W.I64 ->
      let r = alloc_int ctx in
      emit ctx (mov_reg r 0);
      push ctx (SInt r)
  | W.F64 ->
      let r = alloc_fp ctx in
      emit ctx (fmov_reg r 0);
      push ctx (SFlt r)

(* Does this code call anything (clobbering the heap-base cache)? *)
let rec w_has_call (body : W.instr list) =
  List.exists
    (fun (i : W.instr) ->
      match i with
      | W.Call _ | W.Call_indirect _ | W.Host_call _ -> true
      | W.Block b | W.Loop b -> w_has_call b
      | W.If (t, e) -> w_has_call t || w_has_call e
      | _ -> false)
    body

let rec compile_instr ctx (i : W.instr) =
  match i with
  | W.Const v ->
      if ctx.eng.Engine.codegen = Engine.Llvm then push ctx (SConstI v)
      else begin
        let r = alloc_int ctx in
        emit_const ctx r v;
        push ctx (SInt r)
      end
  | W.Fconst v -> push ctx (SConstF v)
  | W.Local_get n -> local_get ctx n
  | W.Local_set n -> local_set ctx n
  | W.Ibin op -> compile_ibin ctx op
  | W.Icmp op -> compile_icmp ctx op
  | W.Fbin op ->
      let rb = pop_fp ctx in
      let ra = pop_fp ctx in
      let rr = alloc_fp ctx in
      let fop =
        match op with
        | W.Fadd -> Insn.FADD
        | W.Fsub -> Insn.FSUB
        | W.Fmul -> Insn.FMUL
        | W.Fdiv -> Insn.FDIV
      in
      emit ctx (Insn.Fop2 { op = fop; dst = d rr; src1 = d ra; src2 = d rb });
      free_fp ctx ra;
      free_fp ctx rb;
      push ctx (SFlt rr)
  | W.Fcmp op ->
      let rb = pop_fp ctx in
      let ra = pop_fp ctx in
      emit ctx (Insn.Fcmp { src1 = d ra; src2 = Some (d rb) });
      free_fp ctx ra;
      free_fp ctx rb;
      let cond =
        match op with W.Feq -> Insn.EQ | W.Flt -> Insn.MI | W.Fle -> Insn.LS
      in
      let rr = alloc_int ctx in
      emit ctx
        (Insn.Csel { op = Insn.CSINC; dst = x rr; src1 = Reg.xzr;
                     src2 = Reg.xzr; cond = Insn.invert_cond cond });
      push ctx (SInt rr)
  | W.Ineg ->
      let ra = pop_int ctx in
      let rr = alloc_int ctx in
      emit ctx
        (Insn.Alu { op = Insn.SUB; flags = false; dst = x rr; src = Reg.xzr;
                    op2 = Insn.Sh (x ra, Insn.Lsl, 0) });
      free_int ctx ra;
      push ctx (SInt rr)
  | W.Inot ->
      let ra = pop_int ctx in
      let rr = alloc_int ctx in
      emit ctx
        (Insn.Alu { op = Insn.ORN; flags = false; dst = x rr; src = Reg.xzr;
                    op2 = Insn.Sh (x ra, Insn.Lsl, 0) });
      free_int ctx ra;
      push ctx (SInt rr)
  | W.Fneg | W.Fsqrt | W.Fabs ->
      let ra = pop_fp ctx in
      let rr = alloc_fp ctx in
      let op =
        match i with
        | W.Fneg -> Insn.FNEG
        | W.Fsqrt -> Insn.FSQRT
        | _ -> Insn.FABS
      in
      emit ctx (Insn.Fop1 { op; dst = d rr; src = d ra });
      free_fp ctx ra;
      push ctx (SFlt rr)
  | W.I_to_f ->
      let ra = pop_int ctx in
      let rr = alloc_fp ctx in
      emit ctx (Insn.Scvtf { signed = true; dst = d rr; src = x ra });
      free_int ctx ra;
      push ctx (SFlt rr)
  | W.F_to_i ->
      let ra = pop_fp ctx in
      let rr = alloc_int ctx in
      emit ctx (Insn.Fcvtzs { signed = true; dst = x rr; src = d ra });
      free_fp ctx ra;
      push ctx (SInt rr)
  | W.Load (e, off) -> compile_load ctx e off
  | W.Store (e, off) -> compile_store ctx e off
  | W.Call n ->
      spill_all ctx;
      let callee = ctx.m.W.funcs.(n) in
      marshal_args ctx callee.W.ftype.params;
      emit ctx (Insn.Bl (Insn.Sym (func_label n ctx.m)));
      ctx.heap_cached <- false;
      push_result ctx callee.W.ftype.result
  | W.Call_indirect tyn ->
      spill_all ctx;
      let ft = List.nth ctx.m.W.types tyn in
      let idx = pop_int ctx in
      marshal_args ctx ft.W.params;
      (* bounds + signature checks (the cost Wasm pays that LFI does
         not, §6.2) *)
      if ctx.eng.Engine.indirect_checks then begin
        emit ctx
          (Insn.Alu { op = Insn.SUB; flags = true; dst = Reg.xzr;
                      src = x idx;
                      op2 = Insn.Imm (Array.length ctx.m.W.table, 0) });
        emit ctx (Insn.Bcond (Insn.CS, Insn.Sym trap_label));
        let rs = alloc_int ctx in
        emit ctx (Insn.Adr { page = false; dst = x rs; target = Insn.Sym sigs_label });
        emit ctx
          (Insn.Ldr { sz = Insn.X; signed = false; dst = x rs;
                      addr = Insn.Reg_off (x rs, x idx, Insn.Uxtx, 3) });
        emit ctx
          (Insn.Alu { op = Insn.SUB; flags = true; dst = Reg.xzr; src = x rs;
                      op2 = Insn.Imm (tyn, 0) });
        emit ctx (Insn.Bcond (Insn.NE, Insn.Sym trap_label));
        free_int ctx rs
      end;
      let rt = alloc_int ctx in
      emit ctx (Insn.Adr { page = false; dst = x rt; target = Insn.Sym table_label });
      emit ctx
        (Insn.Ldr { sz = Insn.X; signed = false; dst = x rt;
                    addr = Insn.Reg_off (x rt, x idx, Insn.Uxtx, 3) });
      emit ctx (Insn.Blr (x rt));
      free_int ctx rt;
      free_int ctx idx;
      ctx.heap_cached <- false;
      push_result ctx ft.W.result
  | W.Host_call (k, arity) ->
      spill_all ctx;
      marshal_args ctx (List.init arity (fun _ -> W.I64));
      emit ctx (Insn.Svc k);
      ctx.heap_cached <- false;
      push_result ctx W.I64
  | W.Drop -> (
      match ctx.vstack with
      | item :: tl ->
          ctx.vstack <- tl;
          (match item with
          | SInt r -> free_int ctx r
          | SFlt r -> free_fp ctx r
          | SSpillI _ | SSpillF _ -> ctx.temp_used <- ctx.temp_used - 1
          | SConstI _ | SConstF _ -> ())
      | [] -> errorf "drop on empty stack")
  | W.Block body ->
      let lend = fresh ctx "bend" in
      let before = ctx.heap_cached in
      ctx.labels <- (lend, `Fwd) :: ctx.labels;
      List.iter (compile_instr ctx) body;
      ctx.labels <- List.tl ctx.labels;
      emit_label ctx lend;
      ctx.heap_cached <- before && ctx.heap_cached
  | W.Loop body ->
      let lstart = fresh ctx "loop" in
      (* the cache survives the backedge unless the body calls out
         (x26 is only clobbered by callees) *)
      let clobbered = w_has_call body in
      emit_label ctx lstart;
      if clobbered then ctx.heap_cached <- false;
      ctx.labels <- (lstart, `Back) :: ctx.labels;
      List.iter (compile_instr ctx) body;
      ctx.labels <- List.tl ctx.labels;
      if clobbered then ctx.heap_cached <- false
  | W.If (then_b, else_b) ->
      let lelse = fresh ctx "else" and lend = fresh ctx "iend" in
      let rc = pop_int ctx in
      let first_target = if else_b = [] then lend else lelse in
      emit ctx
        (Insn.Cbz { nz = false; reg = x rc; target = Insn.Sym first_target });
      free_int ctx rc;
      let before = ctx.heap_cached in
      ctx.labels <- (lend, `Fwd) :: ctx.labels;
      List.iter (compile_instr ctx) then_b;
      let after_then = ctx.heap_cached in
      ctx.heap_cached <- before;
      if else_b <> [] then begin
        emit ctx (Insn.B (Insn.Sym lend));
        emit_label ctx lelse;
        List.iter (compile_instr ctx) else_b
      end;
      ctx.labels <- List.tl ctx.labels;
      emit_label ctx lend;
      ctx.heap_cached <- before && after_then && ctx.heap_cached
  | W.Br n ->
      let lbl, _ = List.nth ctx.labels n in
      emit ctx (Insn.B (Insn.Sym lbl))
  | W.Br_if n ->
      let lbl, _ = List.nth ctx.labels n in
      let rc = pop_int ctx in
      emit ctx (Insn.Cbz { nz = true; reg = x rc; target = Insn.Sym lbl });
      free_int ctx rc
  | W.Return ->
      (match ctx.f.W.ftype.result with
      | W.I64 ->
          let r = pop_int ctx in
          emit ctx (mov_reg 0 r);
          free_int ctx r
      | W.F64 ->
          let r = pop_fp ctx in
          emit ctx (fmov_reg 0 r);
          free_fp ctx r);
      emit ctx (Insn.B (Insn.Sym ctx.epilogue))

(* ------------------------------------------------------------------ *)
(* Functions                                                           *)
(* ------------------------------------------------------------------ *)

let compile_func (eng : Engine.t) (m : W.module_) (findex : int) :
    Source.item list =
  let f = m.W.funcs.(findex) in
  let all_locals = Array.of_list (f.W.ftype.params @ f.W.locals) in
  let n_locals = Array.length all_locals in
  let homes = Array.make (max n_locals 1) (HSlot 0) in
  let used_int = ref [] and used_fp = ref [] in
  let slot_off = ref 0 in
  let ih = ref int_homes and fh = ref fp_homes in
  Array.iteri
    (fun k t ->
      match (eng.Engine.codegen, (t : W.valtype)) with
      | Engine.Llvm, W.I64 -> (
          match !ih with
          | h :: tl ->
              ih := tl;
              used_int := h :: !used_int;
              homes.(k) <- HReg h
          | [] ->
              homes.(k) <- HSlot !slot_off;
              slot_off := !slot_off + 8)
      | Engine.Llvm, W.F64 -> (
          match !fh with
          | h :: tl ->
              fh := tl;
              used_fp := h :: !used_fp;
              homes.(k) <- HFreg h
          | [] ->
              homes.(k) <- HFslot !slot_off;
              slot_off := !slot_off + 8)
      | Engine.Cranelift, W.I64 ->
          homes.(k) <- HSlot !slot_off;
          slot_off := !slot_off + 8
      | Engine.Cranelift, W.F64 ->
          homes.(k) <- HFslot !slot_off;
          slot_off := !slot_off + 8)
    all_locals;
  let n_int_saves = List.length !used_int and n_fp_saves = List.length !used_fp in
  let save_area = (16 + (8 * (n_int_saves + n_fp_saves)) + 15) / 16 * 16 in
  (* shift local slots past the save area *)
  Array.iteri
    (fun k h ->
      homes.(k) <-
        (match h with
        | HSlot o -> HSlot (save_area + o)
        | HFslot o -> HFslot (save_area + o)
        | h -> h))
    homes;
  let temp_base = save_area + !slot_off in
  let frame = (temp_base + (32 * 8) + 15) / 16 * 16 in
  let ctx =
    {
      eng; m; findex; f; homes;
      vstack = [];
      scratch = int_scratch;
      fscratch = fp_scratch;
      temp_base;
      temp_used = 0;
      label_counter = 0;
      labels = [];
      out = [];
      heap_cached = false;
      frame;
      epilogue = Printf.sprintf ".Lw%d_ret" findex;
    }
  in
  emit_label ctx (func_label findex m);
  emit ctx
    (Insn.Alu { op = Insn.SUB; flags = false; dst = Reg.sp; src = Reg.sp;
                op2 = Insn.Imm (frame, 0) });
  emit ctx
    (Insn.Stp { w = Reg.W64; r1 = Reg.x 29; r2 = Reg.x 30;
                addr = Insn.Imm_off (Reg.sp, 0) });
  (* WAMR-style stack overflow check *)
  if eng.Engine.stack_check then begin
    emit ctx
      (Insn.Ldr { sz = Insn.X; signed = false; dst = x 9;
                  addr = Insn.Imm_off (x ctx_reg, ctx_stack_limit_off) });
    emit ctx
      (Insn.Alu { op = Insn.SUB; flags = true; dst = Reg.xzr; src = Reg.sp;
                  op2 = Insn.Ext (x 9, Insn.Uxtx, 0) });
    emit ctx (Insn.Bcond (Insn.CC, Insn.Sym trap_label))
  end;
  List.iteri (fun k r -> emit ctx (str_sp r (16 + (8 * k)))) (List.rev !used_int);
  List.iteri
    (fun k r -> emit ctx (fstr_sp r (16 + (8 * (n_int_saves + k)))))
    (List.rev !used_fp);
  (* incoming arguments *)
  let ii = ref 0 and fi = ref 0 in
  List.iteri
    (fun k (t : W.valtype) ->
      match t with
      | W.I64 ->
          (match homes.(k) with
          | HReg h -> emit ctx (mov_reg h !ii)
          | HSlot off -> emit ctx (str_sp !ii off)
          | _ -> assert false);
          incr ii
      | W.F64 ->
          (match homes.(k) with
          | HFreg h -> emit ctx (fmov_reg h !fi)
          | HFslot off -> emit ctx (fstr_sp !fi off)
          | _ -> assert false);
          incr fi)
    f.W.ftype.params;
  (* non-barrier struct engines keep the heap base cached like LLVM's
     redundant-load elimination would: one load at function entry *)
  (match eng.Engine.heap_base with
  | Engine.In_struct { barrier = false } ->
      emit ctx
        (Insn.Ldr { sz = Insn.X; signed = false; dst = x heap_cache_reg;
                    addr = Insn.Imm_off (x ctx_reg, ctx_heap_base_off) });
      ctx.heap_cached <- true
  | _ -> ());
  (* zero-initialize non-parameter locals (Wasm semantics) *)
  let nparams = List.length f.W.ftype.params in
  Array.iteri
    (fun k (t : W.valtype) ->
      if k >= nparams then
        match (t, homes.(k)) with
        | W.I64, HReg h ->
            emit ctx (Insn.Mov { op = Insn.MOVZ; dst = x h; imm = 0; hw = 0 })
        | W.I64, HSlot off ->
            emit ctx
              (Insn.Str { sz = Insn.X; src = Reg.xzr;
                          addr = Insn.Imm_off (Reg.sp, off) })
        | W.F64, HFreg h ->
            emit ctx (Insn.Fmov_to_fp { dst = d h; src = Reg.xzr })
        | W.F64, HFslot off ->
            emit ctx
              (Insn.Str { sz = Insn.X; src = Reg.xzr;
                          addr = Insn.Imm_off (Reg.sp, off) })
        | _ -> assert false)
    all_locals;
  List.iter (compile_instr ctx) f.W.body;
  emit_label ctx ctx.epilogue;
  List.iteri (fun k r -> emit ctx (ldr_sp r (16 + (8 * k)))) (List.rev !used_int);
  List.iteri
    (fun k r -> emit ctx (fldr_sp r (16 + (8 * (n_int_saves + k)))))
    (List.rev !used_fp);
  emit ctx
    (Insn.Ldp { w = Reg.W64; r1 = Reg.x 29; r2 = Reg.x 30;
                addr = Insn.Imm_off (Reg.sp, 0) });
  emit ctx
    (Insn.Alu { op = Insn.ADD; flags = false; dst = Reg.sp; src = Reg.sp;
                op2 = Insn.Imm (frame, 0) });
  emit ctx (Insn.Ret (Reg.x 30));
  List.rev ctx.out

(* ------------------------------------------------------------------ *)
(* Module                                                              *)
(* ------------------------------------------------------------------ *)

(** Emit the linear memory region with data segments spliced in. *)
let memory_items (m : W.module_) : Source.item list =
  let total = m.W.memory_pages * 65536 in
  let segs = List.sort (fun a b -> compare a.W.offset b.W.offset) m.W.data in
  let items = ref [ Source.Label memory_label ] in
  let pos = ref 0 in
  List.iter
    (fun (s : W.data_segment) ->
      if s.W.offset > !pos then
        items := Source.Directive (".zero", string_of_int (s.W.offset - !pos)) :: !items;
      let bytes =
        String.concat ", "
          (List.init (String.length s.W.bytes) (fun k ->
               string_of_int (Char.code s.W.bytes.[k])))
      in
      if bytes <> "" then items := Source.Directive (".byte", bytes) :: !items;
      pos := s.W.offset + String.length s.W.bytes)
    segs;
  if total > !pos then
    items := Source.Directive (".zero", string_of_int (total - !pos)) :: !items;
  List.rev !items

(** Compile a validated module to ARM64 assembly. *)
let compile (eng : Engine.t) (m : W.module_) : Source.t =
  (match Validate.validate m with
  | Ok () -> ()
  | Error e -> errorf "module does not validate: %s: %s" e.Validate.func e.Validate.msg);
  let start =
    [ Source.Directive (".text", "");
      Source.Label "_start";
      Source.Insn (Insn.Adr { page = false; dst = x ctx_reg;
                              target = Insn.Sym ctx_label });
      Source.Insn
        (Insn.Ldr { sz = Insn.X; signed = false; dst = x heap_reg;
                    addr = Insn.Imm_off (x ctx_reg, ctx_heap_base_off) });
      Source.Insn (Insn.Bl (Insn.Sym (func_label m.W.start m)));
      Source.Insn (Insn.Svc Lfi_runtime.Sysno.exit);
      Source.Insn (Insn.B (Insn.Sym "_start"));
      Source.Label trap_label;
      Source.Insn (Insn.Mov { op = Insn.MOVZ; dst = x 0; imm = 139; hw = 0 });
      Source.Insn (Insn.Svc Lfi_runtime.Sysno.exit);
      Source.Insn (Insn.B (Insn.Sym trap_label)) ]
  in
  let funcs =
    List.concat (List.init (Array.length m.W.funcs) (compile_func eng m))
  in
  (* function signature table for indirect-call checks *)
  let sig_of n =
    let f = m.W.funcs.(n) in
    let rec idx k = function
      | [] -> -1
      | t :: tl -> if t = f.W.ftype then k else idx (k + 1) tl
    in
    idx 0 m.W.types
  in
  let data =
    Source.Directive (".data", "")
    :: Source.Directive (".balign", "16")
    :: Source.Label ctx_label
    :: Source.Directive (".quad", "0") (* reserved *)
    :: Source.Directive
         ( ".quad",
           string_of_int
             (Lfi_core.Layout.stack_top - (1 lsl 20) + 4096) )
       (* stack limit *)
    :: Source.Directive (".quad", memory_label) (* heap base *)
    :: Source.Label sigs_label
    :: (Array.to_list m.W.table
       |> List.map (fun fi -> Source.Directive (".quad", string_of_int (sig_of fi))))
    @ Source.Label table_label
      :: (Array.to_list m.W.table
         |> List.map (fun fi -> Source.Directive (".quad", func_label fi m)))
    @ Source.Directive (".balign", "16") :: memory_items m
  in
  start @ funcs @ data
