(** Engine configurations for the Wasm → ARM64 compiler, mirroring the
    systems benchmarked in Figure 4 / Table 4.

    All engines use guard pages rather than explicit bounds checks —
    the configuration the paper selected ("All engines were also
    configured to omit bounds checks and use guard pages for
    protection"). The mechanisms that differ are exactly the ones the
    paper discusses:

    - codegen quality: Cranelift (Wasmtime) keeps Wasm locals in stack
      slots and materializes every constant; the LLVM-class backends
      (Wasm2c, WAMR) register-allocate locals and fold immediates;
    - where the heap base lives: Wasm2c reloads it from the context
      structure at every access unless it is pinned in a register
      (§6.2, "Optimizations to Wasm2c");
    - the spec-conformance compiler barrier that stops redundant
      heap-base loads from being eliminated (removed in the
      "no barrier" variant);
    - indirect-call type checks (all engines);
    - WAMR's per-function stack-overflow check. *)

type codegen = Cranelift | Llvm

type heap_base =
  | Pinned  (** kept permanently in x28 *)
  | In_struct of { barrier : bool }
      (** loaded from the context struct; with [barrier = true] the
          load cannot be cached across accesses *)

type t = {
  name : string;
  codegen : codegen;
  heap_base : heap_base;
  indirect_checks : bool;
  stack_check : bool;  (** per-function stack-limit check (WAMR AOT) *)
}

let wasmtime =
  { name = "Wasmtime"; codegen = Cranelift; heap_base = Pinned;
    indirect_checks = true; stack_check = false }

let wasm2c =
  { name = "Wasm2c"; codegen = Llvm;
    heap_base = In_struct { barrier = true }; indirect_checks = true;
    stack_check = false }

let wasm2c_no_barrier =
  { wasm2c with name = "Wasm2c (no barrier)";
    heap_base = In_struct { barrier = false } }

let wasm2c_pinned =
  { wasm2c with name = "Wasm2c (pinned register)"; heap_base = Pinned }

let wamr =
  { name = "WAMR"; codegen = Llvm; heap_base = Pinned;
    indirect_checks = true; stack_check = true }

let all = [ wasmtime; wasm2c; wasm2c_no_barrier; wasm2c_pinned; wamr ]
