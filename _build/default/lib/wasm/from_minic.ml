(** MiniC → Wasm IR lowering.

    This is the extra compilation step that language-based sandboxing
    imposes (§6.2: "The compiler first targets the safe Wasm IR...
    These additional steps make it more difficult for the compiler to
    make correct decisions"): address arithmetic that the native
    backend folds into ARM64 addressing modes becomes explicit stack
    arithmetic here, function pointers become table indices, and every
    global lives in the 32-bit linear memory. *)

open Lfi_minic.Ast
module W = Ir

exception Error of string

let errorf fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(** Linear-memory layout for globals: the first KiB is kept as a null
    guard, mirroring C toolchains for Wasm. *)
let globals_base = 1024

type genv = {
  prog : program;
  fidx : (string, int) Hashtbl.t;  (** function name -> index *)
  table_slot : (string, int) Hashtbl.t;  (** function name -> table slot *)
  mutable table : int list;  (** reversed table (function indices) *)
  gaddr : (string, int) Hashtbl.t;  (** global name -> memory offset *)
  mutable types : W.functype list;  (** reversed *)
  fenv : (string * ty) list;
}

let wasm_ty : ty -> W.valtype = function Int -> W.I64 | Float -> W.F64

let type_index (g : genv) (ft : W.functype) : int =
  let tys = List.rev g.types in
  match List.find_index (fun t -> t = ft) tys with
  | Some i -> i
  | None ->
      g.types <- ft :: g.types;
      List.length tys

let table_index (g : genv) (fname : string) : int =
  match Hashtbl.find_opt g.table_slot fname with
  | Some s -> s
  | None ->
      let fi =
        match Hashtbl.find_opt g.fidx fname with
        | Some i -> i
        | None -> errorf "address of unknown function %s" fname
      in
      let s = List.length g.table in
      g.table <- fi :: g.table;
      Hashtbl.replace g.table_slot fname s;
      s

type fctx = {
  g : genv;
  lidx : (string, int) Hashtbl.t;
  mutable env : (string * ty) list;
}

let local ctx name =
  match Hashtbl.find_opt ctx.lidx name with
  | Some i -> i
  | None -> errorf "unbound variable %s" name

let ibin_of : binop -> W.ibinop option = function
  | Add -> Some W.Add
  | Sub -> Some W.Sub
  | Mul -> Some W.Mul
  | Div -> Some W.Div_s
  | Rem -> Some W.Rem_s
  | And -> Some W.And
  | Or -> Some W.Or
  | Xor -> Some W.Xor
  | Shl -> Some W.Shl
  | Shr -> Some W.Shr_s
  | Lshr -> Some W.Shr_u
  | _ -> None

let icmp_of : binop -> W.icmp option = function
  | Eq -> Some W.Eq
  | Ne -> Some W.Ne
  | Lt -> Some W.Lt_s
  | Le -> Some W.Le_s
  | Gt -> Some W.Gt_s
  | Ge -> Some W.Ge_s
  | Ult -> Some W.Lt_u
  | _ -> None

let fbin_of : binop -> W.fbinop option = function
  | FAdd -> Some W.Fadd
  | FSub -> Some W.Fsub
  | FMul -> Some W.Fmul
  | FDiv -> Some W.Fdiv
  | _ -> None

let fcmp_of : binop -> W.fcmp option = function
  | FEq -> Some W.Feq
  | FLt -> Some W.Flt
  | FLe -> Some W.Fle
  | _ -> None

let rec compile_expr (ctx : fctx) (e : expr) : W.instr list =
  match e with
  | Int v -> [ W.Const v ]
  | Flt v -> [ W.Fconst v ]
  | Var name -> [ W.Local_get (local ctx name) ]
  | Addr name -> (
      match Hashtbl.find_opt ctx.g.gaddr name with
      | Some off -> [ W.Const off ]
      | None -> [ W.Const (table_index ctx.g name) ])
  | Bin (op, a, b) -> (
      let ca = compile_expr ctx a and cb = compile_expr ctx b in
      match (ibin_of op, icmp_of op, fbin_of op, fcmp_of op) with
      | Some o, _, _, _ -> ca @ cb @ [ W.Ibin o ]
      | _, Some o, _, _ -> ca @ cb @ [ W.Icmp o ]
      | _, _, Some o, _ -> ca @ cb @ [ W.Fbin o ]
      | _, _, _, Some o -> ca @ cb @ [ W.Fcmp o ]
      | _ -> assert false)
  | Un (Neg, a) -> compile_expr ctx a @ [ W.Ineg ]
  | Un (Not, a) -> compile_expr ctx a @ [ W.Inot ]
  | Un (FNeg, a) -> compile_expr ctx a @ [ W.Fneg ]
  | Un (FSqrt, a) -> compile_expr ctx a @ [ W.Fsqrt ]
  | Un (FAbs, a) -> compile_expr ctx a @ [ W.Fabs ]
  | Cvt (ItoF, a) -> compile_expr ctx a @ [ W.I_to_f ]
  | Cvt (FtoI, a) -> compile_expr ctx a @ [ W.F_to_i ]
  | Load (elt, a) -> compile_address ctx a @ [ W.Load (elt, snd (split_offset a)) ]
  | Call (name, args) -> (
      match Hashtbl.find_opt ctx.g.fidx name with
      | Some i -> List.concat_map (compile_expr ctx) args @ [ W.Call i ]
      | None -> errorf "unknown function %s" name)
  | Call_indirect (fp, args, rty) ->
      let ft =
        { W.params = List.map (fun a -> wasm_ty (typeof_e ctx a)) args;
          result = wasm_ty (Option.value rty ~default:Int) }
      in
      let ti = type_index ctx.g ft in
      List.concat_map (compile_expr ctx) args
      @ compile_expr ctx fp
      @ [ W.Call_indirect ti ]
  | Syscall (k, args) ->
      List.concat_map (compile_expr ctx) args
      @ [ W.Host_call (k, List.length args) ]

and typeof_e ctx e = typeof ~fenv:ctx.g.fenv ~env:ctx.env e

(** Wasm folds [base + const] into the static load offset. *)
and split_offset = function
  | Bin (Add, _, Int k) when k >= 0 && k < 4096 -> (true, k)
  | _ -> (false, 0)

and compile_address ctx (a : expr) : W.instr list =
  match a with
  | Bin (Add, base, Int k) when k >= 0 && k < 4096 -> compile_expr ctx base
  | _ -> compile_expr ctx a

let rec compile_stmt (ctx : fctx) (s : stmt) : W.instr list =
  match s with
  | Decl (name, t, e) ->
      ctx.env <- (name, t) :: ctx.env;
      compile_expr ctx e @ [ W.Local_set (local ctx name) ]
  | Assign (name, e) -> compile_expr ctx e @ [ W.Local_set (local ctx name) ]
  | Store (elt, a, v) ->
      compile_address ctx a
      @ compile_expr ctx v
      @ [ W.Store (elt, snd (split_offset a)) ]
  | If (c, t, e) ->
      compile_expr ctx c
      @ [ W.If (List.concat_map (compile_stmt ctx) t,
                List.concat_map (compile_stmt ctx) e) ]
  | While (c, body) ->
      [ W.Block
          [ W.Loop
              (compile_expr ctx c
              @ [ W.Const 0; W.Icmp W.Eq; W.Br_if 1 ]
              @ List.concat_map (compile_stmt ctx) body
              @ [ W.Br 0 ]) ] ]
  | Return e -> compile_expr ctx e @ [ W.Return ]
  | Expr e -> compile_expr ctx e @ [ W.Drop ]
  | Break -> [ W.Br 1 ]  (* resolved properly below *)
  | Continue -> [ W.Br 0 ]

(* Break/Continue need label depths relative to intervening If/Block
   labels; we rewrite them in a post-pass that tracks nesting. *)
let fix_breaks (body : W.instr list) : W.instr list =
  (* depth = number of labels between the instruction and the
     innermost Loop (for Continue) / its enclosing Block (for Break) *)
  let rec go (depth_to_loop : int option) instrs =
    List.map
      (fun (i : W.instr) ->
        match i with
        | W.Block inner -> W.Block (go (Option.map (fun d -> d + 1) depth_to_loop) inner)
        | W.Loop inner -> W.Loop (go (Some 0) inner)
        | W.If (t, e) ->
            W.If
              ( go (Option.map (fun d -> d + 1) depth_to_loop) t,
                go (Option.map (fun d -> d + 1) depth_to_loop) e )
        | W.Br 0 -> (
            (* Continue marker: branch to the loop *)
            match depth_to_loop with
            | Some d -> W.Br d
            | None -> i)
        | W.Br 1 -> (
            (* Break marker: branch past the loop's Block *)
            match depth_to_loop with
            | Some d -> W.Br (d + 1)
            | None -> i)
        | i -> i)
      instrs
  in
  go None body

let collect_locals = Lfi_minic.Compile.collect_decls

(* ------------------------------------------------------------------ *)

(** Lower a MiniC program to a Wasm module. *)
let lower (prog : program) : W.module_ =
  let fenv = List.map (fun f -> (f.name, f.ret)) prog.funcs in
  let fidx = Hashtbl.create 16 in
  List.iteri (fun k f -> Hashtbl.replace fidx f.name k) prog.funcs;
  (* globals layout *)
  let gaddr = Hashtbl.create 16 in
  let data = ref [] in
  let cursor = ref globals_base in
  let align16 v = (v + 15) / 16 * 16 in
  List.iter
    (fun g ->
      let name, size, init =
        match g with
        | Zeroed (n, s) -> (n, s, None)
        | Init64 (n, ws) ->
            let b = Bytes.create (8 * List.length ws) in
            List.iteri (fun k wv -> Bytes.set_int64_le b (8 * k) (Int64.of_int wv)) ws;
            (n, Bytes.length b, Some (Bytes.to_string b))
        | InitF64 (n, fs) ->
            let b = Bytes.create (8 * List.length fs) in
            List.iteri
              (fun k fv -> Bytes.set_int64_le b (8 * k) (Int64.bits_of_float fv))
              fs;
            (n, Bytes.length b, Some (Bytes.to_string b))
        | Str (n, s) -> (n, String.length s + 1, Some (s ^ "\000"))
      in
      let off = align16 !cursor in
      Hashtbl.replace gaddr name off;
      (match init with
      | Some bytes -> data := { W.offset = off; bytes } :: !data
      | None -> ());
      cursor := off + size)
    prog.globals;
  let g =
    { prog; fidx; table_slot = Hashtbl.create 8; table = []; gaddr;
      types = []; fenv }
  in
  let funcs =
    List.map
      (fun (f : func) ->
        let lidx = Hashtbl.create 16 in
        let all = List.rev (collect_locals (List.rev f.params) f.body) in
        List.iteri (fun k (n, _) -> Hashtbl.replace lidx n k) all;
        let ctx = { g; lidx; env = all } in
        let implicit_return =
          match f.ret with
          | Int -> [ W.Const 0; W.Return ]
          | Float -> [ W.Fconst 0.0; W.Return ]
        in
        let body =
          fix_breaks (List.concat_map (compile_stmt ctx) f.body)
          @ implicit_return
        in
        let nparams = List.length f.params in
        let locals =
          List.filteri (fun k _ -> k >= nparams) all
          |> List.map (fun (_, t) -> wasm_ty t)
        in
        {
          W.ftype =
            { W.params = List.map (fun (_, t) -> wasm_ty t) f.params;
              result = wasm_ty f.ret };
          locals;
          body;
          name = f.name;
        })
      prog.funcs
  in
  (* entry: call main, then exit with its result *)
  let main_idx =
    match Hashtbl.find_opt fidx "main" with
    | Some i -> i
    | None -> errorf "no main function"
  in
  let start_body =
    [ W.Call main_idx; W.Host_call (Lfi_runtime.Sysno.exit, 1); W.Drop;
      W.Const 0; W.Return ]
  in
  let start_func =
    { W.ftype = { W.params = []; result = W.I64 }; locals = [];
      body = start_body; name = "_start" }
  in
  let funcs = Array.of_list (funcs @ [ start_func ]) in
  let mem_bytes = !cursor + (4 * 1024 * 1024) (* heap slack *) in
  {
    W.types = List.rev g.types;
    funcs;
    table = Array.of_list (List.rev g.table);
    memory_pages = ((mem_bytes + 65535) / 65536);
    data = List.rev !data;
    start = Array.length funcs - 1;
  }
