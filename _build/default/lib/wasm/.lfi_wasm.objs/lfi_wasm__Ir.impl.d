lib/wasm/ir.ml: Array Buffer Bytes Int64 Lfi_minic List Printf String
