lib/wasm/engine.ml:
