lib/wasm/compile_wasm.ml: Array Char Engine Insn Int64 Ir Lfi_arm64 Lfi_core Lfi_minic Lfi_runtime List Printf Reg Source String Validate
