lib/wasm/validate.ml: Array Ir Lfi_minic List Printf Result
