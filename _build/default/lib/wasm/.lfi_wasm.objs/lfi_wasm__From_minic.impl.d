lib/wasm/from_minic.ml: Array Bytes Hashtbl Int64 Ir Lfi_minic Lfi_runtime List Option Printf String
