(** A WebAssembly-like stack IR.

    This is the language-based-sandboxing baseline of the paper's
    Figure 4: programs are lowered to a typed stack machine with a
    32-bit linear memory, validated (the "required validation step"
    the paper benchmarks against WABT), and then compiled to ARM64 by
    {!Compile_wasm} under several engine configurations (Wasmtime-,
    Wasm2c- and WAMR-like).

    The IR is structurally faithful to Wasm where it matters to the
    experiments — stack discipline, structured control flow, 32-bit
    memory indices, an indirect-call table with runtime type checks —
    and simplified elsewhere (two value types, [i64] and [f64]; host
    calls instead of imports). *)

type valtype = I64 | F64

let valtype_to_string = function I64 -> "i64" | F64 -> "f64"

type elt = Lfi_minic.Ast.elt

type ibinop =
  | Add | Sub | Mul | Div_s | Rem_s
  | And | Or | Xor | Shl | Shr_s | Shr_u

type icmp = Eq | Ne | Lt_s | Le_s | Gt_s | Ge_s | Lt_u

type fbinop = Fadd | Fsub | Fmul | Fdiv

type fcmp = Feq | Flt | Fle

type instr =
  | Const of int
  | Fconst of float
  | Local_get of int
  | Local_set of int
  | Ibin of ibinop
  | Icmp of icmp
  | Fbin of fbinop
  | Fcmp of fcmp
  | Ineg
  | Inot
  | Fneg
  | Fsqrt
  | Fabs
  | I_to_f  (** f64.convert_i64_s *)
  | F_to_i  (** i64.trunc_f64_s *)
  | Load of elt * int  (** element type, static offset *)
  | Store of elt * int
  | Call of int  (** function index *)
  | Call_indirect of int  (** type index; pops the table index *)
  | Host_call of int * int  (** runtime call number, arity *)
  | Drop
  | Block of instr list  (** label type: no result *)
  | Loop of instr list
  | If of instr list * instr list
  | Br of int
  | Br_if of int
  | Return

type functype = { params : valtype list; result : valtype }

type func = {
  ftype : functype;
  locals : valtype list;  (** non-parameter locals *)
  body : instr list;
  name : string;  (** for diagnostics *)
}

type data_segment = { offset : int; bytes : string }

type module_ = {
  types : functype list;
  funcs : func array;
  table : int array;  (** table slot -> function index *)
  memory_pages : int;  (** 64KiB wasm pages *)
  data : data_segment list;
  start : int;  (** index of the entry function *)
}

let local_type (f : func) (i : int) : valtype option =
  let all = f.ftype.params @ f.locals in
  List.nth_opt all i

(* ------------------------------------------------------------------ *)
(* A compact binary serialization (for size accounting and the
   validator-throughput comparison; not the W3C format)                *)
(* ------------------------------------------------------------------ *)

let rec emit_leb buf (v : int) =
  let b = v land 0x7f and rest = v lsr 7 in
  if rest = 0 then Buffer.add_uint8 buf b
  else begin
    Buffer.add_uint8 buf (b lor 0x80);
    emit_leb buf rest
  end

(* zigzag for signed values (constants may be negative) *)
let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag z = (z lsr 1) lxor (- (z land 1))

let elt_code (e : elt) =
  match e with
  | Lfi_minic.Ast.U8 -> 0
  | Lfi_minic.Ast.U16 -> 1
  | Lfi_minic.Ast.I32 -> 2
  | Lfi_minic.Ast.I64 -> 3
  | Lfi_minic.Ast.F32 -> 4
  | Lfi_minic.Ast.F64 -> 5

let ibin_code = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div_s -> 3 | Rem_s -> 4 | And -> 5
  | Or -> 6 | Xor -> 7 | Shl -> 8 | Shr_s -> 9 | Shr_u -> 10

let ibin_of_code = function
  | 0 -> Add | 1 -> Sub | 2 -> Mul | 3 -> Div_s | 4 -> Rem_s | 5 -> And
  | 6 -> Or | 7 -> Xor | 8 -> Shl | 9 -> Shr_s | _ -> Shr_u

let icmp_code = function
  | Eq -> 0 | Ne -> 1 | Lt_s -> 2 | Le_s -> 3 | Gt_s -> 4 | Ge_s -> 5
  | Lt_u -> 6

let icmp_of_code = function
  | 0 -> Eq | 1 -> Ne | 2 -> Lt_s | 3 -> Le_s | 4 -> Gt_s | 5 -> Ge_s
  | _ -> Lt_u

let fbin_code = function Fadd -> 0 | Fsub -> 1 | Fmul -> 2 | Fdiv -> 3
let fbin_of_code = function 0 -> Fadd | 1 -> Fsub | 2 -> Fmul | _ -> Fdiv
let fcmp_code = function Feq -> 0 | Flt -> 1 | Fle -> 2
let fcmp_of_code = function 0 -> Feq | 1 -> Flt | _ -> Fle

let elt_of_code : int -> elt = function
  | 0 -> Lfi_minic.Ast.U8
  | 1 -> Lfi_minic.Ast.U16
  | 2 -> Lfi_minic.Ast.I32
  | 3 -> Lfi_minic.Ast.I64
  | 4 -> Lfi_minic.Ast.F32
  | _ -> Lfi_minic.Ast.F64

let rec emit_instr buf (i : instr) =
  let op n = Buffer.add_uint8 buf n in
  match i with
  | Const v ->
      op 0x01;
      emit_leb buf (zigzag v)
  | Fconst v ->
      op 0x02;
      Buffer.add_int64_le buf (Int64.bits_of_float v)
  | Local_get n -> op 0x03; emit_leb buf n
  | Local_set n -> op 0x04; emit_leb buf n
  | Ibin o -> op 0x05; op (ibin_code o)
  | Icmp o -> op 0x06; op (icmp_code o)
  | Fbin o -> op 0x07; op (fbin_code o)
  | Fcmp o -> op 0x08; op (fcmp_code o)
  | Ineg -> op 0x09
  | Inot -> op 0x0a
  | Fneg -> op 0x0b
  | Fsqrt -> op 0x0c
  | Fabs -> op 0x0d
  | I_to_f -> op 0x0e
  | F_to_i -> op 0x0f
  | Load (e, o) -> op 0x10; op (elt_code e); emit_leb buf o
  | Store (e, o) -> op 0x11; op (elt_code e); emit_leb buf o
  | Call n -> op 0x12; emit_leb buf n
  | Call_indirect n -> op 0x13; emit_leb buf n
  | Host_call (n, a) -> op 0x14; emit_leb buf n; emit_leb buf a
  | Drop -> op 0x15
  | Block body -> op 0x16; List.iter (emit_instr buf) body; op 0x1f
  | Loop body -> op 0x17; List.iter (emit_instr buf) body; op 0x1f
  | If (t, e) ->
      op 0x18;
      List.iter (emit_instr buf) t;
      op 0x1e;
      List.iter (emit_instr buf) e;
      op 0x1f
  | Br n -> op 0x19; emit_leb buf n
  | Br_if n -> op 0x1a; emit_leb buf n
  | Return -> op 0x1b

(** Serialized module size in bytes (our stand-in for ".wasm size"). *)
let serialize (m : module_) : bytes =
  let buf = Buffer.create 4096 in
  let vt t = match t with I64 -> 0 | F64 -> 1 in
  let emit_types ts =
    emit_leb buf (List.length ts);
    List.iter (fun t -> Buffer.add_uint8 buf (vt t)) ts
  in
  emit_leb buf (List.length m.types);
  List.iter
    (fun t ->
      emit_types t.params;
      Buffer.add_uint8 buf (vt t.result))
    m.types;
  emit_leb buf (Array.length m.funcs);
  Array.iter
    (fun f ->
      emit_types f.ftype.params;
      Buffer.add_uint8 buf (vt f.ftype.result);
      emit_types f.locals;
      let body = Buffer.create 256 in
      List.iter (emit_instr body) f.body;
      emit_leb buf (Buffer.length body);
      Buffer.add_buffer buf body)
    m.funcs;
  emit_leb buf (Array.length m.table);
  Array.iter (fun n -> emit_leb buf n) m.table;
  emit_leb buf m.memory_pages;
  List.iter
    (fun d ->
      emit_leb buf d.offset;
      emit_leb buf (String.length d.bytes);
      Buffer.add_string buf d.bytes)
    m.data;
  Buffer.to_bytes buf

let size_bytes m = Bytes.length (serialize m)

(* ------------------------------------------------------------------ *)
(* Deserialization                                                     *)
(* ------------------------------------------------------------------ *)

exception Bad_module of string

(** Parse a serialized module back (the inverse of {!serialize}).  The
    validator-throughput experiment measures [validate (deserialize b)]
    — parse plus type-check, the work a real engine's required
    validation step performs.  Parameter and local types are recorded
    in full, so a deserialized module round-trips through the
    type-checker. *)
let deserialize (b : bytes) : module_ =
  let pos = ref 0 in
  let u8 () =
    if !pos >= Bytes.length b then raise (Bad_module "truncated");
    let v = Bytes.get_uint8 b !pos in
    incr pos;
    v
  in
  let rec leb_at shift acc =
    let byte = u8 () in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 <> 0 then leb_at (shift + 7) acc else acc
  in
  let leb () = leb_at 0 0 in
  let i64 () =
    if !pos + 8 > Bytes.length b then raise (Bad_module "truncated");
    let v = Bytes.get_int64_le b !pos in
    pos := !pos + 8;
    v
  in
  (* [parse_until stops] consumes instructions until one of the
     sentinel opcodes (0x1e = else, 0x1f = end) appears, returning the
     instructions and the sentinel. *)
  let rec parse_until (stops : int list) acc : instr list * int =
    let opcode = u8 () in
    if List.mem opcode stops then (List.rev acc, opcode)
    else parse_until stops (parse_body opcode :: acc)
  and parse_body (opcode : int) : instr =
    match opcode with
    | 0x01 -> Const (unzigzag (leb ()))
    | 0x02 -> Fconst (Int64.float_of_bits (i64 ()))
    | 0x03 -> Local_get (leb ())
    | 0x04 -> Local_set (leb ())
    | 0x05 -> Ibin (ibin_of_code (u8 ()))
    | 0x06 -> Icmp (icmp_of_code (u8 ()))
    | 0x07 -> Fbin (fbin_of_code (u8 ()))
    | 0x08 -> Fcmp (fcmp_of_code (u8 ()))
    | 0x09 -> Ineg
    | 0x0a -> Inot
    | 0x0b -> Fneg
    | 0x0c -> Fsqrt
    | 0x0d -> Fabs
    | 0x0e -> I_to_f
    | 0x0f -> F_to_i
    | 0x10 ->
        let e = elt_of_code (u8 ()) in
        Load (e, leb ())
    | 0x11 ->
        let e = elt_of_code (u8 ()) in
        Store (e, leb ())
    | 0x12 -> Call (leb ())
    | 0x13 -> Call_indirect (leb ())
    | 0x14 ->
        let n = leb () in
        Host_call (n, leb ())
    | 0x15 -> Drop
    | 0x16 ->
        let body, _ = parse_until [ 0x1f ] [] in
        Block body
    | 0x17 ->
        let body, _ = parse_until [ 0x1f ] [] in
        Loop body
    | 0x18 -> (
        let t, stop = parse_until [ 0x1e; 0x1f ] [] in
        if stop = 0x1f then If (t, [])
        else
          let e, _ = parse_until [ 0x1f ] [] in
          If (t, e))
    | 0x19 -> Br (leb ())
    | 0x1a -> Br_if (leb ())
    | 0x1b -> Return
    | n -> raise (Bad_module (Printf.sprintf "bad opcode 0x%02x" n))
  in
  let valtype () = if u8 () = 0 then I64 else F64 in
  let valtypes () =
    let n = leb () in
    List.init n (fun _ -> valtype ())
  in
  let ntypes = leb () in
  let types =
    List.init ntypes (fun _ ->
        let params = valtypes () in
        let result = valtype () in
        { params; result })
  in
  let nfuncs = leb () in
  let funcs =
    Array.init nfuncs (fun k ->
        let params = valtypes () in
        let result = valtype () in
        let locals = valtypes () in
        let body_len = leb () in
        let body_end = !pos + body_len in
        let rec top acc =
          if !pos > body_end then raise (Bad_module "body overrun")
          else if !pos = body_end then List.rev acc
          else top (parse_body (u8 ()) :: acc)
        in
        let body = top [] in
        {
          ftype = { params; result };
          locals;
          body;
          name = Printf.sprintf "f%d" k;
        })
  in
  let ntable = leb () in
  let table = Array.init ntable (fun _ -> leb ()) in
  let memory_pages = leb () in
  let data = ref [] in
  while !pos < Bytes.length b do
    let offset = leb () in
    let len = leb () in
    if !pos + len > Bytes.length b then raise (Bad_module "truncated data");
    data := { offset; bytes = Bytes.sub_string b !pos len } :: !data;
    pos := !pos + len
  done;
  {
    types;
    funcs;
    table;
    memory_pages;
    data = List.rev !data;
    start = max 0 (Array.length funcs - 1);
  }
