(** The Wasm validator — the "required validation step" whose
    throughput the paper compares against the LFI verifier (§5.2:
    "the WABT WebAssembly validator ... runs at 3 MB/s").

    Performs full abstract-stack type checking of every function body:
    operand types, branch label arity, local indices, call signatures
    and table/type indices. *)

open Ir

type error = { func : string; msg : string }

let errorf func fmt = Printf.ksprintf (fun msg -> Error { func; msg }) fmt

let ( let* ) = Result.bind

(** Abstract operand stack; labels carry the stack depth at entry so
    that branches can be checked. *)
type ctx = {
  m : module_;
  f : func;
  mutable stack : valtype list;
  mutable labels : int list;  (** stack depth at each enclosing label *)
}

let push ctx t = ctx.stack <- t :: ctx.stack

let pop ctx (expect : valtype) : (unit, error) result =
  match ctx.stack with
  | t :: tl when t = expect ->
      ctx.stack <- tl;
      Ok ()
  | t :: _ ->
      errorf ctx.f.name "expected %s, found %s" (valtype_to_string expect)
        (valtype_to_string t)
  | [] -> errorf ctx.f.name "stack underflow"

let pop_any ctx : (valtype, error) result =
  match ctx.stack with
  | t :: tl ->
      ctx.stack <- tl;
      Ok t
  | [] -> errorf ctx.f.name "stack underflow"

let elt_valtype (e : elt) : valtype =
  match e with
  | Lfi_minic.Ast.F32 | Lfi_minic.Ast.F64 -> F64
  | _ -> I64

(** Check a block body.  [Br]/[Return] terminate the block: following
    instructions are dead code and skipped (real Wasm validates dead
    code stack-polymorphically; skipping is the simple sound choice),
    and the stack is reset to the block's entry depth. *)
let rec check_block (ctx : ctx) (body : instr list) : (unit, error) result =
  let entry_depth = List.length ctx.stack in
  let reset_stack () =
    let n = List.length ctx.stack in
    if n > entry_depth then
      ctx.stack <-
        (let rec drop k l = if k = 0 then l else drop (k - 1) (List.tl l) in
         drop (n - entry_depth) ctx.stack)
  in
  let rec go = function
    | [] -> Ok ()
    | i :: rest -> (
        let* () = check_instr ctx i in
        match i with
        | Br _ | Return ->
            reset_stack ();
            Ok () (* dead code after an unconditional exit is skipped *)
        | _ -> go rest)
  in
  go body

and check_instr ctx (i : instr) : (unit, error) result =
  let f = ctx.f in
  match i with
  | Const _ ->
      push ctx I64;
      Ok ()
  | Fconst _ ->
      push ctx F64;
      Ok ()
  | Local_get n -> (
      match local_type f n with
      | Some t ->
          push ctx t;
          Ok ()
      | None -> errorf f.name "local %d out of range" n)
  | Local_set n -> (
      match local_type f n with
      | Some t -> pop ctx t
      | None -> errorf f.name "local %d out of range" n)
  | Ibin _ ->
      let* () = pop ctx I64 in
      let* () = pop ctx I64 in
      push ctx I64;
      Ok ()
  | Icmp _ ->
      let* () = pop ctx I64 in
      let* () = pop ctx I64 in
      push ctx I64;
      Ok ()
  | Fbin _ ->
      let* () = pop ctx F64 in
      let* () = pop ctx F64 in
      push ctx F64;
      Ok ()
  | Fcmp _ ->
      let* () = pop ctx F64 in
      let* () = pop ctx F64 in
      push ctx I64;
      Ok ()
  | Ineg | Inot ->
      let* () = pop ctx I64 in
      push ctx I64;
      Ok ()
  | Fneg | Fsqrt | Fabs ->
      let* () = pop ctx F64 in
      push ctx F64;
      Ok ()
  | I_to_f ->
      let* () = pop ctx I64 in
      push ctx F64;
      Ok ()
  | F_to_i ->
      let* () = pop ctx F64 in
      push ctx I64;
      Ok ()
  | Load (e, off) ->
      if off < 0 then errorf f.name "negative load offset"
      else
        let* () = pop ctx I64 in
        push ctx (elt_valtype e);
        Ok ()
  | Store (e, off) ->
      if off < 0 then errorf f.name "negative store offset"
      else
        let* () = pop ctx (elt_valtype e) in
        pop ctx I64
  | Call n ->
      if n < 0 || n >= Array.length ctx.m.funcs then
        errorf f.name "call index %d out of range" n
      else begin
        let callee = ctx.m.funcs.(n) in
        let* () =
          List.fold_left
            (fun acc t ->
              let* () = acc in
              pop ctx t)
            (Ok ())
            (List.rev callee.ftype.params)
        in
        push ctx callee.ftype.result;
        Ok ()
      end
  | Call_indirect tyn ->
      if tyn < 0 || tyn >= List.length ctx.m.types then
        errorf f.name "type index %d out of range" tyn
      else begin
        let ft = List.nth ctx.m.types tyn in
        let* () = pop ctx I64 (* table index *) in
        let* () =
          List.fold_left
            (fun acc t ->
              let* () = acc in
              pop ctx t)
            (Ok ())
            (List.rev ft.params)
        in
        push ctx ft.result;
        Ok ()
      end
  | Host_call (_, arity) ->
      let* () =
        List.fold_left
          (fun acc () ->
            let* () = acc in
            pop ctx I64)
          (Ok ())
          (List.init arity (fun _ -> ()))
      in
      push ctx I64;
      Ok ()
  | Drop ->
      let* _ = pop_any ctx in
      Ok ()
  | Block body | Loop body ->
      let depth = List.length ctx.stack in
      ctx.labels <- depth :: ctx.labels;
      let* () = check_block ctx body in
      ctx.labels <- List.tl ctx.labels;
      if List.length ctx.stack <> depth then
        errorf f.name "block leaves operands on the stack"
      else Ok ()
  | If (then_b, else_b) ->
      let* () = pop ctx I64 in
      let depth = List.length ctx.stack in
      ctx.labels <- depth :: ctx.labels;
      let* () = check_block ctx then_b in
      if List.length ctx.stack <> depth then
        errorf f.name "then-branch leaves operands on the stack"
      else begin
        let* () = check_block ctx else_b in
        ctx.labels <- List.tl ctx.labels;
        if List.length ctx.stack <> depth then
          errorf f.name "else-branch leaves operands on the stack"
        else Ok ()
      end
  | Br n | Br_if n -> (
      let* () = match i with Br_if _ -> pop ctx I64 | _ -> Ok () in
      match List.nth_opt ctx.labels n with
      | None -> errorf f.name "branch depth %d out of range" n
      | Some depth ->
          if List.length ctx.stack < depth then
            errorf f.name "branch with underfull stack"
          else Ok ())
  | Return -> pop ctx f.ftype.result

let check_func (m : module_) (f : func) : (unit, error) result =
  let ctx = { m; f; stack = []; labels = [ 0 ] } in
  let* () = check_block ctx f.body in
  Ok ()

(** Validate a whole module. *)
let validate (m : module_) : (unit, error) result =
  let* () =
    Array.fold_left
      (fun acc f ->
        let* () = acc in
        check_func m f)
      (Ok ()) m.funcs
  in
  (* table entries must reference real functions *)
  let* () =
    Array.fold_left
      (fun acc n ->
        let* () = acc in
        if n < 0 || n >= Array.length m.funcs then
          errorf "table" "entry %d out of range" n
        else Ok ())
      (Ok ()) m.table
  in
  if m.start < 0 || m.start >= Array.length m.funcs then
    errorf "module" "bad start function"
  else Ok ()
