(** A small direct-mapped TLB model.

    Used to reproduce the paper's virtualization comparison (Figure 5):
    under hardware-assisted virtualization "the cost of a TLB miss is
    doubled due to the additional pagetable levels" (Section 6.4).  The
    emulator looks every data access up here; misses charge the page
    walk cost, multiplied by [nested_walk_factor] when the machine
    simulates a guest behind nested page tables. *)

type t = {
  entries : int64 array;  (** tagged page numbers; -1 = invalid *)
  mutable hits : int;
  mutable misses : int;
}

let create ~entries = { entries = Array.make entries (-1L); hits = 0; misses = 0 }

let clear t =
  Array.fill t.entries 0 (Array.length t.entries) (-1L);
  t.hits <- 0;
  t.misses <- 0

(** Look up the page of [addr]; returns [true] on a hit and installs
    the translation on a miss. *)
let access (t : t) (addr : int64) : bool =
  let page = Int64.shift_right_logical addr Memory.page_bits in
  let slot = Int64.to_int (Int64.rem page (Int64.of_int (Array.length t.entries))) in
  if Int64.equal t.entries.(slot) page then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.entries.(slot) <- page;
    t.misses <- t.misses + 1;
    false
  end

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total
