(** Microarchitectural cost models.

    The emulator charges each executed instruction a throughput cost in
    cycles.  Two models are provided, mirroring the paper's evaluation
    machines: an Apple-M1-class wide core ("m1", 8-wide, 3.2 GHz) and a
    Neoverse-class server core ("t2a", 4-wide, 3.0 GHz, the GCP T2A
    Ampere Altra instance).

    Constants are either taken from the paper and the microarchitectural
    references it cites ([8, 27]) or labelled CALIBRATED:

    - the extended-register [add ... uxtw] guard "executes with 2-cycle
      latency and half-throughput on both Apple and Arm CPU designs"
      (Section 4) — it is charged roughly twice a plain ALU op;
    - the guarded addressing mode [\[x21, wN, uxtw\]] has the same cost
      as a plain load: "microarchitectural documentation shows that both
      forms have equivalent performance" (Section 4.1);
    - Table 5 context-switch costs: Linux getpid-style syscall 129ns
      (M1) / 160ns (T2A); LFI runtime call 22ns / 26ns; LFI direct yield
      17ns / 18ns ("roughly 50 cycles", Section 5.3); Linux pipe
      round-trip 1504ns / 2494ns; gVisor 12019ns / 22899ns.
    - virtualization "doubles the cost of a TLB miss due to the
      additional pagetable levels" (Section 6.4) — nested page walks
      charge twice the walk cost. *)

open Lfi_arm64

type t = {
  name : string;
  clock_ghz : float;
  issue_width : float;  (** decoded instructions per cycle, for reporting *)
  alu : float;          (** simple ALU / move / bitfield / csel *)
  ext_add : float;      (** extended-register add (the basic LFI guard) *)
  mul : float;
  div : float;
  load : float;         (** L1-hit load, any addressing mode *)
  store : float;
  pair : float;         (** ldp/stp *)
  atomic : float;       (** exclusives / acquire-release *)
  branch : float;       (** direct unconditional *)
  cond_branch : float;  (** includes amortized misprediction cost *)
  indirect_branch : float;
  fp : float;           (** FP add/sub/mul/convert *)
  fp_div : float;
  nop : float;
  (* memory system *)
  tlb_entries : int;
  tlb_walk_cycles : float;       (** page-walk cost on a TLB miss *)
  nested_walk_factor : float;    (** multiplier under virtualization *)
  (* isolation-domain switch constants (Table 5), in cycles *)
  linux_syscall : float;
  linux_pipe_roundtrip : float;
  gvisor_syscall : float;
  gvisor_pipe_roundtrip : float;
  lfi_runtime_call_entry : float;
      (** fixed cost of entering/leaving the runtime on a runtime call,
          beyond the executed instructions (register spill, dispatch) *)
  lfi_yield_direct : float;
      (** callee-saved save/restore for the optimized yield *)
  scxtnum_switch : float;
      (** CALIBRATED: cost of writing SCXTNUM_EL0 when crossing between
          the runtime and a sandbox under the §7.1 Spectre hardening
          ("this will likely have some cost"; the paper could not
          measure it on available hardware, so this models a system
          register write plus its serialization) *)
}

(* CALIBRATED: per-class throughput costs chosen so that the native
   instruction mix of the SPEC proxies executes at a plausible IPC
   (~3.5-4 on m1, ~2-2.5 on t2a) and so that relative guard costs follow
   the documented latencies (ext_add = 2x alu, guarded load = load). *)

let m1 =
  {
    name = "m1";
    clock_ghz = 3.2;
    issue_width = 8.0;
    alu = 0.18;
    ext_add = 0.36;
    mul = 0.5;
    div = 2.2;
    load = 0.45;
    store = 0.50;
    pair = 0.60;
    atomic = 2.0;
    branch = 0.18;
    cond_branch = 0.40;
    indirect_branch = 0.70;
    fp = 0.40;
    fp_div = 3.0;
    nop = 0.08;
    tlb_entries = 64;
    (* 64 entries x 16KiB = 1MiB reach: the same ratio to our MB-scale
       proxy footprints as a real L2 TLB (tens of MiB reach) has to
       SPEC's GB-scale footprints *)
    tlb_walk_cycles = 18.0;
    nested_walk_factor = 2.0;
    linux_syscall = 413.0; (* 129 ns * 3.2 GHz *)
    linux_pipe_roundtrip = 4813.0; (* 1504 ns *)
    gvisor_syscall = Float.nan; (* gVisor unsupported on 16K pages *)
    gvisor_pipe_roundtrip = Float.nan;
    lfi_runtime_call_entry = 55.0; (* 22 ns total incl. instructions *)
    lfi_yield_direct = 42.0; (* 17 ns total incl. instructions *)
    scxtnum_switch = 12.0;
  }

let t2a =
  {
    name = "t2a";
    clock_ghz = 3.0;
    issue_width = 4.0;
    alu = 0.30;
    ext_add = 0.60;
    mul = 0.8;
    div = 3.0;
    load = 0.60;
    store = 0.65;
    pair = 0.85;
    atomic = 2.5;
    branch = 0.30;
    cond_branch = 0.55;
    indirect_branch = 0.95;
    fp = 0.55;
    fp_div = 4.0;
    nop = 0.12;
    tlb_entries = 64;
    tlb_walk_cycles = 22.0;
    nested_walk_factor = 2.0;
    linux_syscall = 480.0; (* 160 ns * 3.0 GHz *)
    linux_pipe_roundtrip = 7482.0; (* 2494 ns *)
    gvisor_syscall = 36057.0; (* 12019 ns *)
    gvisor_pipe_roundtrip = 68697.0; (* 22899 ns *)
    lfi_runtime_call_entry = 62.0; (* 26 ns *)
    lfi_yield_direct = 46.0; (* 18 ns *)
    scxtnum_switch = 15.0;
  }

let by_name = function
  | "m1" -> Some m1
  | "t2a" -> Some t2a
  | _ -> None

(** Throughput cost (cycles) of one instruction, memory system aside. *)
let cost (u : t) (i : Insn.t) : float =
  match i with
  | Insn.Alu { op2 = Insn.Ext _; _ } -> u.ext_add
  | Insn.Alu _ | Insn.Shiftv _ | Insn.Mov _ | Insn.Bitfield _ | Insn.Extr _
  | Insn.Csel _ | Insn.Ccmp _ | Insn.Cls _ | Insn.Rbit _ | Insn.Rev _
  | Insn.Adr _ ->
      u.alu
  | Insn.Madd _ | Insn.Smulh _ | Insn.Maddl _ -> u.mul
  | Insn.Div _ -> u.div
  | Insn.Ldr _ | Insn.Fldr _ -> u.load
  | Insn.Str _ | Insn.Fstr _ -> u.store
  | Insn.Ldp _ | Insn.Stp _ | Insn.Fldp _ | Insn.Fstp _ -> u.pair
  | Insn.Ldxr _ | Insn.Stxr _ | Insn.Ldar _ | Insn.Stlr _ -> u.atomic
  | Insn.B _ | Insn.Bl _ -> u.branch
  | Insn.Bcond _ | Insn.Cbz _ | Insn.Tbz _ -> u.cond_branch
  | Insn.Br _ | Insn.Blr _ | Insn.Ret _ -> u.indirect_branch
  | Insn.Fop2 { op = Insn.FDIV; _ } -> u.fp_div
  | Insn.Fop1 { op = Insn.FSQRT; _ } -> u.fp_div
  | Insn.Fop2 _ | Insn.Fop1 _ | Insn.Fmadd _ | Insn.Fcmp _ | Insn.Fcvt _
  | Insn.Scvtf _ | Insn.Fcvtzs _ | Insn.Fmov_to_fp _ | Insn.Fmov_from_fp _ ->
      u.fp
  | Insn.Nop -> u.nop
  | Insn.Svc _ | Insn.Mrs _ | Insn.Msr _ | Insn.Dmb -> u.alu
  | Insn.Udf _ -> u.alu

let cycles_to_ns u cycles = cycles /. u.clock_ghz
