lib/emulator/cost_model.ml: Float Insn Lfi_arm64
