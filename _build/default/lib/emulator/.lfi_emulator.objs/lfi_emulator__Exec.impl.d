lib/emulator/exec.ml: Array Cost_model Decode Float Format Hashtbl Insn Int32 Int64 Lfi_arm64 Machine Memory Reg
