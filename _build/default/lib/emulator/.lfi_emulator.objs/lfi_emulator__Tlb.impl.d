lib/emulator/tlb.ml: Array Int64 Memory
