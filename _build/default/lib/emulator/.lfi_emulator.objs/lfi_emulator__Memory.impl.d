lib/emulator/memory.ml: Bytes Char Format Hashtbl Int32 Int64 List
