lib/emulator/machine.ml: Array Cost_model Hashtbl Insn Int32 Int64 Lfi_arm64 Memory Reg Tlb
