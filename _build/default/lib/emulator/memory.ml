(** Sparse, page-protected 64-bit memory.

    Pages are 16KiB — the page size on Apple ARM64 machines, which is
    why the paper sizes guard regions at 48KiB (the smallest multiple of
    16KiB greater than 2^15 + 2^10).  Each page carries read / write /
    execute permissions; unmapped or mis-permissioned accesses fault,
    which is what makes the sandbox guard regions effective. *)

let page_bits = 14
let page_size = 1 lsl page_bits (* 16 KiB *)

type perm = { r : bool; w : bool; x : bool }

let perm_rw = { r = true; w = true; x = false }
let perm_r = { r = true; w = false; x = false }
let perm_rx = { r = true; w = false; x = true }

type page = { mutable perm : perm; data : Bytes.t }

type access = Read | Write | Fetch

type fault = { addr : int64; access : access; reason : string }

exception Fault of fault

let access_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Fetch -> "fetch"

let pp_fault fmt f =
  Format.fprintf fmt "%s fault at 0x%Lx (%s)"
    (access_to_string f.access)
    f.addr f.reason

type t = {
  pages : (int, page) Hashtbl.t;
  mutable last_index : int;  (** 1-entry lookup cache *)
  mutable last_page : page option;
}

let create () = { pages = Hashtbl.create 1024; last_index = -1; last_page = None }

let page_index (addr : int64) = Int64.to_int (Int64.shift_right_logical addr page_bits)
let page_offset (addr : int64) = Int64.to_int addr land (page_size - 1)

let fault addr access reason = raise (Fault { addr; access; reason })

let find_page m idx =
  if idx = m.last_index then m.last_page
  else begin
    let p = Hashtbl.find_opt m.pages idx in
    m.last_index <- idx;
    m.last_page <- p;
    p
  end

(** Map [len] bytes starting at [addr] (both page-aligned) with [perm].
    Already-mapped pages are re-protected, not cleared. *)
let map m ~(addr : int64) ~(len : int) ~(perm : perm) =
  if page_offset addr <> 0 then invalid_arg "Memory.map: unaligned address";
  if len mod page_size <> 0 then invalid_arg "Memory.map: unaligned length";
  let first = page_index addr in
  for i = first to first + (len / page_size) - 1 do
    match Hashtbl.find_opt m.pages i with
    | Some p -> p.perm <- perm
    | None ->
        Hashtbl.replace m.pages i { perm; data = Bytes.make page_size '\000' }
  done;
  m.last_index <- -1;
  m.last_page <- None

let unmap m ~(addr : int64) ~(len : int) =
  if page_offset addr <> 0 || len mod page_size <> 0 then
    invalid_arg "Memory.unmap: unaligned";
  let first = page_index addr in
  for i = first to first + (len / page_size) - 1 do
    Hashtbl.remove m.pages i
  done;
  m.last_index <- -1;
  m.last_page <- None

let is_mapped m (addr : int64) = Hashtbl.mem m.pages (page_index addr)

let protect m ~(addr : int64) ~(len : int) ~(perm : perm) =
  let first = page_index addr in
  for i = first to first + ((len + page_size - 1) / page_size) - 1 do
    match Hashtbl.find_opt m.pages i with
    | Some p -> p.perm <- perm
    | None -> invalid_arg "Memory.protect: unmapped page"
  done;
  m.last_index <- -1;
  m.last_page <- None

let get_page m addr access =
  match find_page m (page_index addr) with
  | None -> fault addr access "unmapped"
  | Some p ->
      (match access with
      | Read -> if not p.perm.r then fault addr access "no read permission"
      | Write -> if not p.perm.w then fault addr access "no write permission"
      | Fetch -> if not p.perm.x then fault addr access "not executable");
      p

(* Single-byte primitives; multi-byte accesses may cross pages. *)

let read_u8 m addr =
  let p = get_page m addr Read in
  Bytes.get_uint8 p.data (page_offset addr)

let write_u8 m addr v =
  let p = get_page m addr Write in
  Bytes.set_uint8 p.data (page_offset addr) v

(** Read [size] (1/2/4/8) bytes little-endian as an unsigned Int64
    (fully represented; 8-byte reads use the native int64 range). *)
let read m (addr : int64) (size : int) : int64 =
  let off = page_offset addr in
  if off + size <= page_size then begin
    let p = get_page m addr Read in
    match size with
    | 1 -> Int64.of_int (Bytes.get_uint8 p.data off)
    | 2 -> Int64.of_int (Bytes.get_uint16_le p.data off)
    | 4 -> Int64.of_int32 (Bytes.get_int32_le p.data off) |> Int64.logand 0xFFFFFFFFL
    | 8 -> Bytes.get_int64_le p.data off
    | _ -> invalid_arg "Memory.read: bad size"
  end
  else begin
    (* page-crossing: byte by byte *)
    let v = ref 0L in
    for i = size - 1 downto 0 do
      let b = read_u8 m (Int64.add addr (Int64.of_int i)) in
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
    done;
    !v
  end

let write m (addr : int64) (size : int) (v : int64) =
  let off = page_offset addr in
  if off + size <= page_size then begin
    let p = get_page m addr Write in
    match size with
    | 1 -> Bytes.set_uint8 p.data off (Int64.to_int v land 0xff)
    | 2 -> Bytes.set_uint16_le p.data off (Int64.to_int v land 0xffff)
    | 4 -> Bytes.set_int32_le p.data off (Int64.to_int32 v)
    | 8 -> Bytes.set_int64_le p.data off v
    | _ -> invalid_arg "Memory.write: bad size"
  end
  else
    for i = 0 to size - 1 do
      write_u8 m
        (Int64.add addr (Int64.of_int i))
        (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
    done

(** Fetch a 4-byte instruction word (requires execute permission). *)
let fetch m (addr : int64) : int =
  if Int64.rem addr 4L <> 0L then fault addr Fetch "misaligned pc";
  let p = get_page m addr Fetch in
  Int32.to_int (Bytes.get_int32_le p.data (page_offset addr)) land 0xFFFFFFFF

(** Bulk copy-in (for loaders). *)
let write_bytes m (addr : int64) (b : bytes) =
  Bytes.iteri
    (fun i c -> write_u8 m (Int64.add addr (Int64.of_int i)) (Char.code c))
    b

let read_bytes m (addr : int64) (len : int) : bytes =
  Bytes.init len (fun i ->
      Char.chr (read_u8 m (Int64.add addr (Int64.of_int i))))

(** Copy [len] bytes between two mapped regions (used by fork). *)
let copy m ~src ~dst ~len =
  for i = 0 to len - 1 do
    let o = Int64.of_int i in
    write_u8 m (Int64.add dst o) (read_u8 m (Int64.add src o))
  done

(** List of mapped page indices (ascending); used by fork to copy a
    sandbox without touching unmapped guard regions. *)
let mapped_pages m =
  Hashtbl.fold (fun idx p acc -> (idx, p) :: acc) m.pages []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let page_data (p : page) = p.data
let page_perm (p : page) = p.perm
