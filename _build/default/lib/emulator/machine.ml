(** Architectural state of one emulated ARM64 hardware thread.

    Register values are [int64]; the 32 SIMD/FP registers are stored as
    a low and a high 64-bit half (the subset only computes on the low
    half; [q] loads/stores move both).  The machine also carries the
    cycle accounting state: a cost model, an optional TLB, and the
    running cycle counter that every experiment reports. *)

open Lfi_arm64

(** Program counters at or above this address belong to the host
    runtime: the emulator stops with a [Runtime_entry] event instead of
    fetching, which is how the runtime-call table of Section 4.4 hands
    control to the (native, trusted) runtime without a trampoline. *)
let host_region_start = 0x7F00_0000_0000L

type t = {
  mutable pc : int64;
  regs : int64 array;  (** x0 .. x30 *)
  mutable sp : int64;
  mutable flag_n : bool;
  mutable flag_z : bool;
  mutable flag_c : bool;
  mutable flag_v : bool;
  vlo : int64 array;
  vhi : int64 array;
  mutable exclusive : int64 option;  (** local exclusive monitor *)
  mem : Memory.t;
  uarch : Cost_model.t;
  tlb : Tlb.t;
  mutable nested_paging : bool;
      (** simulate running as a guest under virtualization *)
  mutable cycles : float;
  mutable insns : int;
  decode_cache : (int64, Insn.t) Hashtbl.t;
}

let create ?(uarch = Cost_model.m1) (mem : Memory.t) =
  {
    pc = 0L;
    regs = Array.make 31 0L;
    sp = 0L;
    flag_n = false;
    flag_z = false;
    flag_c = false;
    flag_v = false;
    vlo = Array.make 32 0L;
    vhi = Array.make 32 0L;
    exclusive = None;
    mem;
    uarch;
    tlb = Tlb.create ~entries:uarch.Cost_model.tlb_entries;
    nested_paging = false;
    cycles = 0.0;
    insns = 0;
    decode_cache = Hashtbl.create 4096;
  }

let mask32 = 0xFFFFFFFFL

(** Read a general register operand. *)
let get (m : t) (r : Reg.t) : int64 =
  match r with
  | Reg.R (Reg.W64, n) -> m.regs.(n)
  | Reg.R (Reg.W32, n) -> Int64.logand m.regs.(n) mask32
  | Reg.ZR _ -> 0L
  | Reg.SP Reg.W64 -> m.sp
  | Reg.SP Reg.W32 -> Int64.logand m.sp mask32

(** Write a general register operand; 32-bit writes zero the top half
    (the property the LFI guard depends on). *)
let set (m : t) (r : Reg.t) (v : int64) =
  match r with
  | Reg.R (Reg.W64, n) -> m.regs.(n) <- v
  | Reg.R (Reg.W32, n) -> m.regs.(n) <- Int64.logand v mask32
  | Reg.ZR _ -> ()
  | Reg.SP Reg.W64 -> m.sp <- v
  | Reg.SP Reg.W32 -> m.sp <- Int64.logand v mask32

let get_fp_lo (m : t) (f : Reg.Fp.t) = m.vlo.(f.Reg.Fp.n)
let set_fp_lo (m : t) (f : Reg.Fp.t) v = m.vlo.(f.Reg.Fp.n) <- v

(** The double (or single, widened) value held by an FP register. *)
let get_float (m : t) (f : Reg.Fp.t) : float =
  match f.Reg.Fp.size with
  | Reg.Fp.D | Reg.Fp.Q -> Int64.float_of_bits m.vlo.(f.Reg.Fp.n)
  | Reg.Fp.S ->
      Int32.float_of_bits (Int64.to_int32 (Int64.logand m.vlo.(f.Reg.Fp.n) mask32))

let set_float (m : t) (f : Reg.Fp.t) (v : float) =
  match f.Reg.Fp.size with
  | Reg.Fp.D | Reg.Fp.Q -> m.vlo.(f.Reg.Fp.n) <- Int64.bits_of_float v
  | Reg.Fp.S ->
      m.vlo.(f.Reg.Fp.n) <-
        Int64.logand (Int64.of_int32 (Int32.bits_of_float v)) mask32

let cond_holds (m : t) (c : Insn.cond) : bool =
  let n = m.flag_n and z = m.flag_z and cf = m.flag_c and v = m.flag_v in
  match c with
  | Insn.EQ -> z
  | Insn.NE -> not z
  | Insn.CS -> cf
  | Insn.CC -> not cf
  | Insn.MI -> n
  | Insn.PL -> not n
  | Insn.VS -> v
  | Insn.VC -> not v
  | Insn.HI -> cf && not z
  | Insn.LS -> not (cf && not z)
  | Insn.GE -> n = v
  | Insn.LT -> n <> v
  | Insn.GT -> (not z) && n = v
  | Insn.LE -> z || n <> v
  | Insn.AL -> true

let set_nzcv (m : t) ~n ~z ~c ~v =
  m.flag_n <- n;
  m.flag_z <- z;
  m.flag_c <- c;
  m.flag_v <- v

(** Charge TLB cost for a data access. *)
let charge_tlb (m : t) (addr : int64) =
  if not (Tlb.access m.tlb addr) then begin
    let walk = m.uarch.Cost_model.tlb_walk_cycles in
    let walk =
      if m.nested_paging then walk *. m.uarch.Cost_model.nested_walk_factor
      else walk
    in
    m.cycles <- m.cycles +. walk
  end

(** Snapshot of the register state (used by fork and context switch). *)
type snapshot = {
  s_pc : int64;
  s_regs : int64 array;
  s_sp : int64;
  s_flags : bool * bool * bool * bool;
  s_vlo : int64 array;
  s_vhi : int64 array;
}

let snapshot (m : t) : snapshot =
  {
    s_pc = m.pc;
    s_regs = Array.copy m.regs;
    s_sp = m.sp;
    s_flags = (m.flag_n, m.flag_z, m.flag_c, m.flag_v);
    s_vlo = Array.copy m.vlo;
    s_vhi = Array.copy m.vhi;
  }

let restore (m : t) (s : snapshot) =
  m.pc <- s.s_pc;
  Array.blit s.s_regs 0 m.regs 0 31;
  m.sp <- s.s_sp;
  (let n, z, c, v = s.s_flags in
   set_nzcv m ~n ~z ~c ~v);
  Array.blit s.s_vlo 0 m.vlo 0 32;
  Array.blit s.s_vhi 0 m.vhi 0 32;
  m.exclusive <- None
