(** Rewriter configuration: the optimization levels of Section 6.1. *)

type opt_level =
  | O0  (** only the basic two-cycle [add ... uxtw] guard (plus the
            stack-pointer optimizations, which O0 keeps in the paper) *)
  | O1  (** zero-instruction guards via the [\[x21, wN, uxtw\]]
            addressing mode and the Table 3 rewrites *)
  | O2  (** O1 plus redundant guard elimination with the hoisting
            registers x23/x24 (§4.3) *)

let opt_level_to_string = function O0 -> "O0" | O1 -> "O1" | O2 -> "O2"

type t = {
  opt : opt_level;
  sandbox_loads : bool;
      (** [false] gives the "no loads" variant: only stores and jumps
          are isolated (≈1% overhead, suitable for compartmentalization)
          — the "LFI O2, no loads" series of Figure 3 *)
  allow_exclusives : bool;
      (** when [false], LL/SC instructions are rejected outright
          (the §7.1 mitigation for the S2C timerless side channel);
          when [true] they are guarded like other accesses *)
  sp_block_optimization : bool;
      (** §4.2 "later access within the same basic block": elide the sp
          guard after a small immediate adjustment that is anchored by
          a following sp access.  On by default (the paper keeps the
          stack-pointer optimizations even at O0); the ablation bench
          turns it off to price it *)
}

let default =
  { opt = O2; sandbox_loads = true; allow_exclusives = true;
    sp_block_optimization = true }

let o0 = { default with opt = O0 }
let o1 = { default with opt = O1 }
let o2 = default
let o2_no_loads = { default with sandbox_loads = false }

let name c =
  Printf.sprintf "LFI %s%s"
    (opt_level_to_string c.opt)
    (if c.sandbox_loads then "" else ", no loads")
