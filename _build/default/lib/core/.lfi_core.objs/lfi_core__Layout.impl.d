lib/core/layout.ml: Int64
