lib/core/rewriter.ml: Array Config Hashtbl Insn Layout Lfi_arm64 List Option Parser Printer Printf Reg Source
