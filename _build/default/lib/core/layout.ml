(** The LFI sandbox layout (Figure 1 of the paper).

    Each sandbox occupies one 4GiB-aligned 4GiB slot:

    {v
    +0        runtime-call table (one 16KiB page, read-only)
    +16KiB    guard region (48KiB, unmapped)
    +64KiB    code (read/execute-only), then data (read/write)
    ...       heap (grows up), stack (grows down from stack_top)
    4GiB-48KiB..4GiB   guard region (unmapped)
    v}

    Code must end at least 128MiB before the end of the slot so that a
    direct branch (±128MiB reach) can never land in a neighbouring
    sandbox's executable region. *)

let page_size = 16 * 1024 (* Apple ARM64 page size; see §3 footnote 1 *)

let sandbox_bits = 32
let sandbox_size = 1 lsl sandbox_bits (* 4 GiB *)

(** Guard regions are 48KiB: the smallest multiple of the 16KiB page
    size greater than 2^15 + 2^10, covering the largest scaled
    immediate (32KiB) plus the largest pre/post-index drift (1KiB). *)
let guard_size = 48 * 1024

(** The runtime-call table occupies the first page of the sandbox. *)
let rtcall_table_offset = 0
let rtcall_table_size = page_size
let rtcall_entry_count = rtcall_table_size / 8

(** Sandbox-relative address where code starts. *)
let code_origin = rtcall_table_size + guard_size (* 64 KiB *)

(** No executable bytes may live at or above this offset (128MiB below
    the end of the slot). *)
let code_limit = sandbox_size - (128 * 1024 * 1024)

(** Top of the stack: just below the top guard region. *)
let stack_top = sandbox_size - guard_size
let default_stack_size = 8 * 1024 * 1024

(** Largest immediate reachable by a scaled load/store offset (the
    encodings cap immediates at 2^15 bytes, §2). *)
let max_mem_immediate = 1 lsl 15

(** Largest pre/post-index immediate (9 bits signed). *)
let max_index_immediate = 1 lsl 8

(** sp may drift this far via unguarded small-immediate arithmetic
    (§4.2: immediates below 2^10). *)
let max_sp_drift = 1 lsl 10

(** Number of sandboxes in a 48-bit user address space (§3: 64Ki,
    one slot possibly reserved for the runtime). *)
let max_sandboxes_48bit = (1 lsl (48 - sandbox_bits)) - 1

let slot_base index = Int64.mul (Int64.of_int index) (Int64.of_int sandbox_size)

(** Runtime-call table entry [k] lives at sandbox offset [8k]. *)
let rtcall_entry_offset k = 8 * k
