lib/verifier/verifier.ml: Array Buffer Bytes Decode Format Insn Lfi_arm64 Lfi_core List Printer Printf Reg
