lib/minic/minic_parser.ml: Ast Buffer Hashtbl Lfi_runtime List Option Printf String
