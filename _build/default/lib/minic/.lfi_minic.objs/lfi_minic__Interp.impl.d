lib/minic/interp.ml: Array Ast Buffer Bytes Float Hashtbl Int32 Int64 Lfi_runtime List Printf String
