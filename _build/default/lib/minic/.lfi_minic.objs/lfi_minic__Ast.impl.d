lib/minic/ast.ml: Lfi_runtime List
