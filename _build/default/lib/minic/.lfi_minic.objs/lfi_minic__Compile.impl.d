lib/minic/compile.ml: Array Ast Hashtbl Insn Int64 Lfi_arm64 Lfi_runtime List Option Printf Reg Source
