(** A C-like surface syntax for MiniC, so programs can live in [.mc]
    files and be driven through the toolchain from the command line
    (see [bin/lfi_cc.ml]).

    {v
    global tbl[4096];                 // zero-initialized bytes
    global primes = { 2, 3, 5, 7 };   // 64-bit words
    string banner = "hello";

    int sum(int n) {
      int acc = 0;
      int k = 0;
      while (k < n) {
        acc = acc + load64(&tbl + k * 8);
        k = k + 1;
      }
      return acc;
    }

    int main() {
      store64(&tbl, 41);
      if (sum(1) >= 41) { return 1; } else { return 0; }
    }
    v}

    Types are [int] (i64) and [float] (f64).  Memory is accessed with
    the intrinsics [load8/load16/load32/load64/loadf32/loadf64] and
    [store8/.../storef64]; [&name] takes the address of a global or
    function; [icall(fp, args...)] calls through a function pointer;
    [sys_*(...)] invoke runtime calls.  Arithmetic operators dispatch
    on the (inferred) type of their left operand. *)

open Ast

exception Parse_error of { line : int; msg : string }

let errorf line fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { line; msg })) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | STRING of string
  | PUNCT of string  (** operators and punctuation *)
  | EOF

type lexed = { tok : token; line : int }

let keywords =
  [ "int"; "float"; "global"; "string"; "if"; "else"; "while"; "return";
    "break"; "continue" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let two_char_ops =
  [ "=="; "!="; "<="; ">="; "<<"; ">>"; "&&"; "||" ]

let lex (src : string) : lexed list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let push tok = toks := { tok; line = !line } :: !toks in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && !pos + 1 < n && src.[!pos + 1] = '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_digit c then begin
      let start = !pos in
      let hex = c = '0' && !pos + 1 < n && src.[!pos + 1] = 'x' in
      if hex then pos := !pos + 2;
      while
        !pos < n
        && (is_digit src.[!pos]
           || (hex && ((src.[!pos] >= 'a' && src.[!pos] <= 'f')
                      || (src.[!pos] >= 'A' && src.[!pos] <= 'F'))))
      do
        incr pos
      done;
      if (not hex) && !pos < n && src.[!pos] = '.' then begin
        incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
        push (FLOAT (float_of_string (String.sub src start (!pos - start))))
      end
      else
        push (INT (int_of_string (String.sub src start (!pos - start))))
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      push (IDENT (String.sub src start (!pos - start)))
    end
    else if c = '"' then begin
      incr pos;
      let buf = Buffer.create 16 in
      while !pos < n && src.[!pos] <> '"' do
        (if src.[!pos] = '\\' && !pos + 1 < n then begin
           (match src.[!pos + 1] with
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | '0' -> Buffer.add_char buf '\000'
           | c -> Buffer.add_char buf c);
           incr pos
         end
         else Buffer.add_char buf src.[!pos]);
        incr pos
      done;
      if !pos >= n then errorf !line "unterminated string";
      incr pos;
      push (STRING (Buffer.contents buf))
    end
    else begin
      let two =
        if !pos + 1 < n then String.sub src !pos 2 else ""
      in
      if List.mem two two_char_ops then begin
        push (PUNCT two);
        pos := !pos + 2
      end
      else begin
        push (PUNCT (String.make 1 c));
        incr pos
      end
    end
  done;
  List.rev ({ tok = EOF; line = !line } :: !toks)

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)
(* ------------------------------------------------------------------ *)

type st = {
  mutable toks : lexed list;
  mutable env : (string * ty) list;  (** locals in scope *)
  fenv : (string, ty) Hashtbl.t;  (** function name -> return type *)
}

let peek st = match st.toks with t :: _ -> t | [] -> assert false

let advance st =
  match st.toks with _ :: tl when tl <> [] -> st.toks <- tl | _ -> ()

let cur_line st = (peek st).line

let expect_punct st p =
  match (peek st).tok with
  | PUNCT q when q = p -> advance st
  | _ -> errorf (cur_line st) "expected %S" p

let expect_ident st =
  match (peek st).tok with
  | IDENT s when not (List.mem s keywords) ->
      advance st;
      s
  | IDENT s -> errorf (cur_line st) "%S is a keyword" s
  | _ -> errorf (cur_line st) "expected identifier"

let accept_punct st p =
  match (peek st).tok with
  | PUNCT q when q = p ->
      advance st;
      true
  | _ -> false

let accept_ident st s =
  match (peek st).tok with
  | IDENT q when q = s ->
      advance st;
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

let sysno_of_name = function
  | "sys_exit" -> Some (Lfi_runtime.Sysno.exit, 1)
  | "sys_write" -> Some (Lfi_runtime.Sysno.write, 3)
  | "sys_read" -> Some (Lfi_runtime.Sysno.read, 3)
  | "sys_open" -> Some (Lfi_runtime.Sysno.openat, 2)
  | "sys_close" -> Some (Lfi_runtime.Sysno.close, 1)
  | "sys_pipe" -> Some (Lfi_runtime.Sysno.pipe, 1)
  | "sys_fork" -> Some (Lfi_runtime.Sysno.fork, 0)
  | "sys_wait" -> Some (Lfi_runtime.Sysno.wait, 1)
  | "sys_yield" -> Some (Lfi_runtime.Sysno.yield, 0)
  | "sys_yield_to" -> Some (Lfi_runtime.Sysno.yield_to, 1)
  | "sys_getpid" -> Some (Lfi_runtime.Sysno.getpid, 0)
  | "sys_mmap" -> Some (Lfi_runtime.Sysno.mmap, 1)
  | "sys_brk" -> Some (Lfi_runtime.Sysno.brk, 1)
  | _ -> None

let load_intrinsics =
  [ ("load8", U8); ("load16", U16); ("load32", I32); ("load64", I64);
    ("loadf32", F32); ("loadf64", F64) ]

let store_intrinsics =
  [ ("store8", U8); ("store16", U16); ("store32", I32); ("store64", I64);
    ("storef32", F32); ("storef64", F64) ]

let typeof_in st (e : expr) : ty =
  let fenv = Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.fenv [] in
  try typeof ~fenv ~env:st.env e
  with Invalid_argument m -> errorf (cur_line st) "%s" m

(* operator selection by operand type *)
let mk_bin st line op a b : expr =
  let fl = typeof_in st a = Float in
  let pick i f =
    if fl then (match f with Some f -> f | None -> errorf line "operator not defined on float")
    else i
  in
  let op' =
    match op with
    | "+" -> pick Add (Some FAdd)
    | "-" -> pick Sub (Some FSub)
    | "*" -> pick Mul (Some FMul)
    | "/" -> pick Div (Some FDiv)
    | "%" -> pick Rem None
    | "&" -> pick And None
    | "|" -> pick Or None
    | "^" -> pick Xor None
    | "<<" -> pick Shl None
    | ">>" -> pick Shr None
    | "==" -> pick Eq (Some FEq)
    | "!=" -> pick Ne None
    | "<" -> pick Lt (Some FLt)
    | "<=" -> pick Le (Some FLe)
    | ">" -> pick Gt None
    | ">=" -> pick Ge None
    | "&&" -> pick And None (* non-short-circuit, both sides 0/1 *)
    | "||" -> pick Or None
    | _ -> errorf line "unknown operator %S" op
  in
  match (op, fl) with
  | ">", true -> Bin (FLt, b, a)
  | ">=", true -> Bin (FLe, b, a)
  | "!=", true -> Bin (Eq, Bin (FEq, a, b), Int 0)
  | _ -> Bin (op', a, b)

(* precedence: higher binds tighter *)
let prec = function
  | "*" | "/" | "%" -> 7
  | "+" | "-" -> 6
  | "<<" | ">>" -> 5
  | "<" | "<=" | ">" | ">=" -> 4
  | "==" | "!=" -> 3
  | "&" -> 2
  | "^" -> 2
  | "|" -> 2
  | "&&" -> 1
  | "||" -> 1
  | _ -> -1

let rec parse_expr st = parse_binary st 0

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let rec loop () =
    match (peek st).tok with
    | PUNCT p when prec p >= min_prec && prec p > 0 ->
        let line = cur_line st in
        advance st;
        let rhs = parse_binary st (prec p + 1) in
        lhs := mk_bin st line p !lhs rhs;
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_unary st : expr =
  let line = cur_line st in
  match (peek st).tok with
  | PUNCT "-" ->
      advance st;
      let e = parse_unary st in
      if typeof_in st e = Float then Un (FNeg, e) else Un (Neg, e)
  | PUNCT "~" ->
      advance st;
      Un (Not, parse_unary st)
  | PUNCT "&" ->
      advance st;
      Addr (expect_ident st)
  | PUNCT "(" ->
      advance st;
      let e = parse_expr st in
      expect_punct st ")";
      e
  | INT v ->
      advance st;
      Int v
  | FLOAT v ->
      advance st;
      Flt v
  | IDENT name -> (
      advance st;
      if not (accept_punct st "(") then begin
        if List.mem_assoc name st.env then Var name
        else errorf line "unbound variable %s" name
      end
      else
        (* call-like syntax *)
        let args = parse_args st in
        match name with
        | "itof" -> one line "itof" args (fun a -> Cvt (ItoF, a))
        | "ftoi" -> one line "ftoi" args (fun a -> Cvt (FtoI, a))
        | "sqrt" -> one line "sqrt" args (fun a -> Un (FSqrt, a))
        | "fabs" -> one line "fabs" args (fun a -> Un (FAbs, a))
        | "icall" -> (
            match args with
            | fp :: rest -> Call_indirect (fp, rest, Some Int)
            | [] -> errorf line "icall needs a function pointer")
        | _ -> (
            match List.assoc_opt name load_intrinsics with
            | Some elt -> one line name args (fun a -> Load (elt, a))
            | None -> (
                match sysno_of_name name with
                | Some (k, arity) ->
                    if List.length args <> arity then
                      errorf line "%s expects %d arguments" name arity;
                    Syscall (k, args)
                | None ->
                    if Hashtbl.mem st.fenv name then Call (name, args)
                    else errorf line "unknown function %s" name)))
  | STRING _ -> errorf line "string literals only in globals"
  | PUNCT p -> errorf line "unexpected %S" p
  | EOF -> errorf line "unexpected end of file"

and one line what args f =
  match args with [ a ] -> f a | _ -> errorf line "%s expects 1 argument" what

and parse_args st : expr list =
  if accept_punct st ")" then []
  else
    let rec go acc =
      let e = parse_expr st in
      if accept_punct st "," then go (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    go []

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_type st : ty option =
  if accept_ident st "int" then Some Int
  else if accept_ident st "float" then Some Float
  else None

let rec parse_block st : stmt list =
  expect_punct st "{";
  let saved_env = st.env in
  let rec go acc =
    if accept_punct st "}" then List.rev acc
    else go (parse_stmt st :: acc)
  in
  let body = go [] in
  st.env <- saved_env;
  body

and parse_stmt st : stmt =
  let line = cur_line st in
  match (peek st).tok with
  | IDENT "if" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let t = parse_block st in
      let e = if accept_ident st "else" then parse_block st else [] in
      If (c, t, e)
  | IDENT "while" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      While (c, parse_block st)
  | IDENT "return" ->
      advance st;
      let e = parse_expr st in
      expect_punct st ";";
      Return e
  | IDENT "break" ->
      advance st;
      expect_punct st ";";
      Break
  | IDENT "continue" ->
      advance st;
      expect_punct st ";";
      Continue
  | IDENT ("int" | "float") ->
      let ty = Option.get (parse_type st) in
      let name = expect_ident st in
      expect_punct st "=";
      let e = parse_expr st in
      expect_punct st ";";
      st.env <- (name, ty) :: st.env;
      Decl (name, ty, e)
  | IDENT name when List.assoc_opt name store_intrinsics <> None ->
      advance st;
      let elt = List.assoc name store_intrinsics in
      expect_punct st "(";
      let a = parse_expr st in
      expect_punct st ",";
      let v = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      Store (elt, a, v)
  | IDENT name -> (
      advance st;
      if accept_punct st "=" then begin
        let e = parse_expr st in
        expect_punct st ";";
        if not (List.mem_assoc name st.env) then
          errorf line "assignment to undeclared variable %s" name;
        Assign (name, e)
      end
      else if accept_punct st "(" then begin
        (* expression statement: call for side effects *)
        let args = parse_args st in
        expect_punct st ";";
        match sysno_of_name name with
        | Some (k, arity) ->
            if List.length args <> arity then
              errorf line "%s expects %d arguments" name arity;
            Expr (Syscall (k, args))
        | None ->
            if Hashtbl.mem st.fenv name then Expr (Call (name, args))
            else errorf line "unknown function %s" name
      end
      else errorf line "expected statement")
  | _ -> errorf line "expected statement"

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse (src : string) : program =
  let toks = lex src in
  (* pass 1: function signatures (so forward calls type-check) *)
  let fenv = Hashtbl.create 16 in
  let rec scan = function
    | { tok = IDENT ("int" | "float" as t); _ }
      :: { tok = IDENT name; _ }
      :: { tok = PUNCT "("; _ }
      :: rest ->
        Hashtbl.replace fenv name (if t = "int" then (Int : ty) else Float);
        scan rest
    | _ :: rest -> scan rest
    | [] -> ()
  in
  scan toks;
  let st = { toks; env = []; fenv } in
  let globals = ref [] and funcs = ref [] in
  let rec top () =
    match (peek st).tok with
    | EOF -> ()
    | IDENT "global" ->
        advance st;
        let name = expect_ident st in
        (if accept_punct st "[" then begin
           let size =
             match (peek st).tok with
             | INT v ->
                 advance st;
                 v
             | _ -> errorf (cur_line st) "expected size"
           in
           expect_punct st "]";
           globals := Zeroed (name, size) :: !globals
         end
         else begin
           expect_punct st "=";
           expect_punct st "{";
           let rec vals acc =
             match (peek st).tok with
             | INT v ->
                 advance st;
                 if accept_punct st "," then vals (v :: acc)
                 else begin
                   expect_punct st "}";
                   List.rev (v :: acc)
                 end
             | _ -> errorf (cur_line st) "expected integer"
           in
           globals := Init64 (name, vals []) :: !globals
         end);
        expect_punct st ";";
        top ()
    | IDENT "string" ->
        advance st;
        let name = expect_ident st in
        expect_punct st "=";
        (match (peek st).tok with
        | STRING s ->
            advance st;
            globals := Str (name, s) :: !globals
        | _ -> errorf (cur_line st) "expected string literal");
        expect_punct st ";";
        top ()
    | IDENT ("int" | "float") ->
        let ret = Option.get (parse_type st) in
        let name = expect_ident st in
        expect_punct st "(";
        let rec params acc =
          if accept_punct st ")" then List.rev acc
          else begin
            (if acc <> [] then expect_punct st ",");
            match parse_type st with
            | Some t -> params ((expect_ident st, t) :: acc)
            | None -> errorf (cur_line st) "expected parameter type"
          end
        in
        let ps = params [] in
        st.env <- ps;
        let body = parse_block st in
        st.env <- [];
        funcs := { name; params = ps; ret; body } :: !funcs;
        top ()
    | _ -> errorf (cur_line st) "expected a global or function definition"
  in
  top ();
  { globals = List.rev !globals; funcs = List.rev !funcs }
