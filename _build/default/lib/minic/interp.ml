(** Reference interpreter for MiniC.

    Executes programs directly over an OCaml byte-array memory with the
    same semantics the ARM64 backend implements (int64 arithmetic,
    ARM-style division and float-to-int saturation, 32-bit truncating
    element stores).  The test suite uses it for differential testing:
    a random program must produce the same result interpreted, compiled
    to ARM64 (native and LFI-rewritten), and compiled through the Wasm
    pipeline. *)

open Ast

exception Exited of int64
exception Unsupported of string
exception Break_loop
exception Continue_loop

type value = VI of int64 | VF of float

let as_int = function VI v -> v | VF _ -> raise (Unsupported "float as int")
let as_flt = function VF v -> v | VI _ -> raise (Unsupported "int as float")

type state = {
  mem : Bytes.t;
  gaddr : (string, int) Hashtbl.t;
  faddr : (string, func) Hashtbl.t;  (** functions by name *)
  ftable : func array;  (** address-taken functions; Addr f = 2^40 + idx *)
  fslot : (string, int) Hashtbl.t;
  mutable output : Buffer.t;
  mutable fuel : int;  (** instruction budget; Out_of_fuel when spent *)
}

exception Out_of_fuel

(* Function "addresses" are tagged so that Call_indirect can find them;
   they are never dereferenced as data. *)
let fn_tag = 1 lsl 40

(** Lay out the globals exactly like {!Lfi_wasm.From_minic}: 16-aligned
    offsets starting at 1024. *)
let build (prog : program) ~(mem_size : int) ~(fuel : int) : state =
  let gaddr = Hashtbl.create 16 in
  let mem = Bytes.make mem_size '\000' in
  let cursor = ref 1024 in
  let align16 v = (v + 15) / 16 * 16 in
  List.iter
    (fun g ->
      let name, size, init =
        match g with
        | Zeroed (n, s) -> (n, s, None)
        | Init64 (n, ws) ->
            let b = Bytes.create (8 * List.length ws) in
            List.iteri
              (fun k wv -> Bytes.set_int64_le b (8 * k) (Int64.of_int wv))
              ws;
            (n, Bytes.length b, Some b)
        | InitF64 (n, fs) ->
            let b = Bytes.create (8 * List.length fs) in
            List.iteri
              (fun k fv ->
                Bytes.set_int64_le b (8 * k) (Int64.bits_of_float fv))
              fs;
            (n, Bytes.length b, Some b)
        | Str (n, s) -> (n, String.length s + 1, Some (Bytes.of_string (s ^ "\000")))
      in
      let off = align16 !cursor in
      Hashtbl.replace gaddr name off;
      (match init with
      | Some b -> Bytes.blit b 0 mem off (Bytes.length b)
      | None -> ());
      cursor := off + size)
    prog.globals;
  let faddr = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace faddr f.name f) prog.funcs;
  {
    mem;
    gaddr;
    faddr;
    ftable = Array.of_list prog.funcs;
    fslot = Hashtbl.create 8;
    output = Buffer.create 64;
    fuel;
  }

let burn st =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise Out_of_fuel

let mask32 = 0xFFFFFFFFL

let load_elt st (elt : elt) (addr : int64) : value =
  let a = Int64.to_int (Int64.logand addr mask32) in
  if a < 0 || a + elt_size elt > Bytes.length st.mem then
    raise (Unsupported (Printf.sprintf "OOB load at %d" a));
  match elt with
  | U8 -> VI (Int64.of_int (Bytes.get_uint8 st.mem a))
  | U16 -> VI (Int64.of_int (Bytes.get_uint16_le st.mem a))
  | I32 -> VI (Int64.of_int32 (Bytes.get_int32_le st.mem a))
  | I64 -> VI (Bytes.get_int64_le st.mem a)
  | F32 ->
      VF (Int32.float_of_bits (Bytes.get_int32_le st.mem a))
  | F64 -> VF (Int64.float_of_bits (Bytes.get_int64_le st.mem a))

let store_elt st (elt : elt) (addr : int64) (v : value) =
  let a = Int64.to_int (Int64.logand addr mask32) in
  if a < 0 || a + elt_size elt > Bytes.length st.mem then
    raise (Unsupported (Printf.sprintf "OOB store at %d" a));
  match elt with
  | U8 -> Bytes.set_uint8 st.mem a (Int64.to_int (as_int v) land 0xff)
  | U16 -> Bytes.set_uint16_le st.mem a (Int64.to_int (as_int v) land 0xffff)
  | I32 -> Bytes.set_int32_le st.mem a (Int64.to_int32 (as_int v))
  | I64 -> Bytes.set_int64_le st.mem a (as_int v)
  | F32 ->
      Bytes.set_int32_le st.mem a (Int32.bits_of_float (as_flt v))
  | F64 -> Bytes.set_int64_le st.mem a (Int64.bits_of_float (as_flt v))

(* ARM semantics for the corner cases *)
let arm_div a b =
  if Int64.equal b 0L then 0L
  else if Int64.equal a Int64.min_int && Int64.equal b (-1L) then Int64.min_int
  else Int64.div a b

let arm_rem a b = Int64.sub a (Int64.mul (arm_div a b) b)

let shift_amount b = Int64.to_int (Int64.logand b 63L)

let bool64 c = if c then 1L else 0L

let fcvtzs v =
  if Float.is_nan v then 0L
  else if v >= 9.2233720368547758e18 then Int64.max_int
  else if v <= -9.2233720368547758e18 then Int64.min_int
  else Int64.of_float v

exception Returned of value

let rec eval_expr (st : state) (env : (string, value) Hashtbl.t) (e : expr) :
    value =
  burn st;
  match e with
  | Int v -> VI (Int64.of_int v)
  | Flt v -> VF v
  | Var x -> (
      match Hashtbl.find_opt env x with
      | Some v -> v
      | None -> raise (Unsupported ("unbound " ^ x)))
  | Addr name -> (
      match Hashtbl.find_opt st.gaddr name with
      | Some off -> VI (Int64.of_int off)
      | None -> (
          (* function address: return its table slot, tagged *)
          match Hashtbl.find_opt st.fslot name with
          | Some s -> VI (Int64.of_int (fn_tag + s))
          | None ->
              if not (Hashtbl.mem st.faddr name) then
                raise (Unsupported ("unknown symbol " ^ name));
              let s = Hashtbl.length st.fslot in
              Hashtbl.replace st.fslot name s;
              VI (Int64.of_int (fn_tag + s))))
  | Bin (op, a, b) -> eval_bin st env op a b
  | Un (Neg, a) -> VI (Int64.neg (as_int (eval_expr st env a)))
  | Un (Not, a) -> VI (Int64.lognot (as_int (eval_expr st env a)))
  | Un (FNeg, a) -> VF (-.as_flt (eval_expr st env a))
  | Un (FSqrt, a) -> VF (Float.sqrt (as_flt (eval_expr st env a)))
  | Un (FAbs, a) -> VF (Float.abs (as_flt (eval_expr st env a)))
  | Cvt (ItoF, a) -> VF (Int64.to_float (as_int (eval_expr st env a)))
  | Cvt (FtoI, a) -> VI (fcvtzs (as_flt (eval_expr st env a)))
  | Load (elt, a) -> load_elt st elt (as_int (eval_expr st env a))
  | Call (name, args) -> (
      match Hashtbl.find_opt st.faddr name with
      | Some f -> call_func st f (List.map (eval_expr st env) args)
      | None -> raise (Unsupported ("unknown function " ^ name)))
  | Call_indirect (fp, args, _) -> (
      let fv = Int64.to_int (as_int (eval_expr st env fp)) in
      let slot = fv - fn_tag in
      let name =
        Hashtbl.fold (fun n s acc -> if s = slot then Some n else acc)
          st.fslot None
      in
      match name with
      | Some n ->
          call_func st (Hashtbl.find st.faddr n)
            (List.map (eval_expr st env) args)
      | None -> raise (Unsupported "indirect call to a non-function"))
  | Syscall (k, args) ->
      let args = List.map (fun a -> as_int (eval_expr st env a)) args in
      if k = Lfi_runtime.Sysno.exit then
        raise (Exited (match args with a :: _ -> a | [] -> 0L))
      else if k = Lfi_runtime.Sysno.getpid then VI 1L
      else if k = Lfi_runtime.Sysno.write then (
        match args with
        | [ _fd; buf; len ] ->
            let off = Int64.to_int (Int64.logand buf mask32) in
            let n = Int64.to_int len in
            if off >= 0 && off + n <= Bytes.length st.mem && n >= 0 then begin
              Buffer.add_subbytes st.output st.mem off n;
              VI len
            end
            else VI (-22L)
        | _ -> VI (-22L))
      else raise (Unsupported (Printf.sprintf "syscall %d" k))

and eval_bin st env op a b : value =
  let va = eval_expr st env a in
  let vb = eval_expr st env b in
  match op with
  | Add -> VI (Int64.add (as_int va) (as_int vb))
  | Sub -> VI (Int64.sub (as_int va) (as_int vb))
  | Mul -> VI (Int64.mul (as_int va) (as_int vb))
  | Div -> VI (arm_div (as_int va) (as_int vb))
  | Rem -> VI (arm_rem (as_int va) (as_int vb))
  | And -> VI (Int64.logand (as_int va) (as_int vb))
  | Or -> VI (Int64.logor (as_int va) (as_int vb))
  | Xor -> VI (Int64.logxor (as_int va) (as_int vb))
  | Shl -> VI (Int64.shift_left (as_int va) (shift_amount (as_int vb)))
  | Shr -> VI (Int64.shift_right (as_int va) (shift_amount (as_int vb)))
  | Lshr ->
      VI (Int64.shift_right_logical (as_int va) (shift_amount (as_int vb)))
  | Eq -> VI (bool64 (Int64.equal (as_int va) (as_int vb)))
  | Ne -> VI (bool64 (not (Int64.equal (as_int va) (as_int vb))))
  | Lt -> VI (bool64 (Int64.compare (as_int va) (as_int vb) < 0))
  | Le -> VI (bool64 (Int64.compare (as_int va) (as_int vb) <= 0))
  | Gt -> VI (bool64 (Int64.compare (as_int va) (as_int vb) > 0))
  | Ge -> VI (bool64 (Int64.compare (as_int va) (as_int vb) >= 0))
  | Ult -> VI (bool64 (Int64.unsigned_compare (as_int va) (as_int vb) < 0))
  | FAdd -> VF (as_flt va +. as_flt vb)
  | FSub -> VF (as_flt va -. as_flt vb)
  | FMul -> VF (as_flt va *. as_flt vb)
  | FDiv -> VF (as_flt va /. as_flt vb)
  | FEq -> VI (bool64 (as_flt va = as_flt vb))
  | FLt -> VI (bool64 (as_flt va < as_flt vb))
  | FLe -> VI (bool64 (as_flt va <= as_flt vb))

and exec_stmts st env (stmts : stmt list) : unit =
  List.iter (exec_stmt st env) stmts

and exec_stmt st env (s : stmt) : unit =
  burn st;
  match s with
  | Decl (n, _, e) | Assign (n, e) ->
      Hashtbl.replace env n (eval_expr st env e)
  | Store (elt, a, v) ->
      let addr = as_int (eval_expr st env a) in
      store_elt st elt addr (eval_expr st env v)
  | If (c, t, e) ->
      if not (Int64.equal (as_int (eval_expr st env c)) 0L) then
        exec_stmts st env t
      else exec_stmts st env e
  | While (c, body) -> exec_while st env c body
  | Return e -> raise (Returned (eval_expr st env e))
  | Expr e -> ignore (eval_expr st env e)
  | Break -> raise Break_loop
  | Continue -> raise Continue_loop

and exec_while st env c body =
  let rec go () =
    burn st;
    if not (Int64.equal (as_int (eval_expr st env c)) 0L) then begin
      (try exec_stmts st env body with Continue_loop -> ());
      go ()
    end
  in
  try go () with Break_loop -> ()

and call_func st (f : func) (args : value list) : value =
  let env = Hashtbl.create 16 in
  (try
     List.iter2 (fun (n, _) v -> Hashtbl.replace env n v) f.params args
   with Invalid_argument _ -> raise (Unsupported "arity mismatch"));
  try
    exec_stmts st env f.body;
    (* implicit return 0 *)
    match f.ret with Int -> VI 0L | Float -> VF 0.0
  with Returned v -> v

(** Run a program; returns [(exit_code, stdout)].  [fuel] bounds the
    number of evaluation steps so that generated programs cannot hang
    the test suite. *)
let run ?(mem_size = 1 lsl 20) ?(fuel = 10_000_000) (prog : program) :
    int64 * string =
  let st = build prog ~mem_size ~fuel in
  match Hashtbl.find_opt st.faddr "main" with
  | None -> raise (Unsupported "no main")
  | Some main -> (
      try
        let v = call_func st main [] in
        (as_int v, Buffer.contents st.output)
      with Exited code -> (code, Buffer.contents st.output))
