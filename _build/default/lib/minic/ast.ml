(** MiniC: a small imperative language used to write the SPEC-proxy
    workloads.

    MiniC plays the role of C in the paper's pipeline: workloads are
    written once, compiled by the native ARM64 backend ({!Compile}) to
    GNU assembly text — which the LFI rewriter then instruments exactly
    as it would instrument Clang output — and compiled a second time
    through the WebAssembly-like stack IR ({!Lfi_wasm}) for the Figure 4
    comparison.

    The language is deliberately C-shaped: 64-bit integers and doubles,
    flat global arrays, functions with by-value parameters, loops,
    conditionals, raw loads/stores with C-like element types, function
    pointers, and direct access to the runtime calls. *)

type ty = Int | Float

(** Element types for memory access (loads sign- or zero-extend like
    the corresponding C types). *)
type elt =
  | U8
  | U16
  | I32
  | I64
  | F32
  | F64

let elt_size = function
  | U8 -> 1
  | U16 -> 2
  | I32 | F32 -> 4
  | I64 | F64 -> 8

type binop =
  (* integer *)
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr  (** Shr is arithmetic *)
  | Lshr
  | Eq | Ne | Lt | Le | Gt | Ge  (** signed comparisons, produce 0/1 *)
  | Ult  (** unsigned < *)
  (* float *)
  | FAdd | FSub | FMul | FDiv
  | FEq | FLt | FLe

type unop = Neg | Not  (** bitwise not *) | FNeg | FSqrt | FAbs
type cvt = ItoF | FtoI

type expr =
  | Int of int
  | Flt of float
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Cvt of cvt * expr
  | Load of elt * expr  (** byte address *)
  | Addr of string  (** address of a global or function *)
  | Call of string * expr list
  | Call_indirect of expr * expr list * ty option
      (** call through a function pointer; the callee's return type
          must be given because it cannot be inferred *)
  | Syscall of int * expr list  (** runtime call; returns Int *)

type stmt =
  | Decl of string * ty * expr  (** declare and initialize a local *)
  | Assign of string * expr
  | Store of elt * expr * expr  (** address, value *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr
  | Expr of expr  (** evaluate for side effects *)
  | Break
  | Continue

(** A global definition. *)
type global =
  | Zeroed of string * int  (** name, size in bytes (zero-filled) *)
  | Init64 of string * int list  (** name, 64-bit words *)
  | InitF64 of string * float list
  | Str of string * string  (** name, NUL-terminated string *)

type func = {
  name : string;
  params : (string * ty) list;
  ret : ty;
  body : stmt list;
}

type program = { globals : global list; funcs : func list }

(* ------------------------------------------------------------------ *)
(* EDSL                                                                *)
(* ------------------------------------------------------------------ *)

(** Combinators for writing workloads.  Open this module locally
    ([let open Ast.Dsl in ...]): it shadows the standard comparison and
    arithmetic operators with expression builders, so programs read
    almost like C. *)
module Dsl = struct
  (* ------------------------------------------------------------------ *)
  (* EDSL helpers — workloads read almost like C                          *)
  (* ------------------------------------------------------------------ *)

  let i n = Int n
  let f x = Flt x
  let v name = Var name
  let ( + ) a b = Bin (Add, a, b)
  let ( - ) a b = Bin (Sub, a, b)
  let ( * ) a b = Bin (Mul, a, b)
  let ( / ) a b = Bin (Div, a, b)
  let ( % ) a b = Bin (Rem, a, b)
  let band a b = Bin (And, a, b)
  let bor a b = Bin (Or, a, b)
  let bxor a b = Bin (Xor, a, b)
  let shl a b = Bin (Shl, a, b)
  let sar a b = Bin (Shr, a, b)
  let shr a b = Bin (Lshr, a, b)
  let ( == ) a b = Bin (Eq, a, b)
  let ( != ) a b = Bin (Ne, a, b)
  let ( < ) a b = Bin (Lt, a, b)
  let ( <= ) a b = Bin (Le, a, b)
  let ( > ) a b = Bin (Gt, a, b)
  let ( >= ) a b = Bin (Ge, a, b)
  let ( <. ) a b = Bin (FLt, a, b)
  let ( <=. ) a b = Bin (FLe, a, b)
  let ( ==. ) a b = Bin (FEq, a, b)
  let ( +. ) a b = Bin (FAdd, a, b)
  let ( -. ) a b = Bin (FSub, a, b)
  let ( *. ) a b = Bin (FMul, a, b)
  let ( /. ) a b = Bin (FDiv, a, b)
  let neg a = Un (Neg, a)
  let fneg a = Un (FNeg, a)
  let fsqrt a = Un (FSqrt, a)
  let fabs' a = Un (FAbs, a)
  let itof a = Cvt (ItoF, a)
  let ftoi a = Cvt (FtoI, a)
  let ld elt addr = Load (elt, addr)
  let addr name = Addr name
  let call name args = Call (name, args)

  (** [arr name idx ~elt] — address of element [idx] of global [name]. *)
  let idx name index ~elt = Bin (Add, Addr name, Bin (Mul, index, Int (elt_size elt)))

  let decl name ty e = Decl (name, ty, e)
  let set name e = Assign (name, e)
  let store elt a v = Store (elt, a, v)
  let if_ c t e = If (c, t, e)
  let while_ c body = While (c, body)
  let ret e = Return e
  let expr e = Expr e

  (** for (var = lo; var < hi; var += step) body *)
  let for_ var lo hi ?(step = Int 1) body =
    [ Decl (var, Int, lo);
      While (Bin (Lt, Var var, hi), body @ [ Assign (var, Bin (Add, Var var, step)) ]) ]

  (* Runtime-call wrappers. *)
  let sys_exit e = Expr (Syscall (Lfi_runtime.Sysno.exit, [ e ]))
  let sys_write fd buf len = Syscall (Lfi_runtime.Sysno.write, [ fd; buf; len ])
  let sys_read fd buf len = Syscall (Lfi_runtime.Sysno.read, [ fd; buf; len ])
  let sys_yield () = Syscall (Lfi_runtime.Sysno.yield, [])
  let sys_yield_to pid = Syscall (Lfi_runtime.Sysno.yield_to, [ pid ])
  let sys_getpid () = Syscall (Lfi_runtime.Sysno.getpid, [])
  let sys_fork () = Syscall (Lfi_runtime.Sysno.fork, [])
  let sys_wait status = Syscall (Lfi_runtime.Sysno.wait, [ status ])
  let sys_pipe fds = Syscall (Lfi_runtime.Sysno.pipe, [ fds ])
  let sys_mmap len = Syscall (Lfi_runtime.Sysno.mmap, [ len ])

  let func ?(params = []) ?(ret : ty = Int) name body = { name; params; ret; body }


end

(** Typing judgment used by both backends.  [fenv] maps function names
    to return types, [env] maps locals to their types. *)
let typeof ~(fenv : (string * ty) list) ~(env : (string * ty) list)
    (e : expr) : ty =
  match e with
  | Int _ -> Int
  | Flt _ -> Float
  | Var x -> (
      match List.assoc_opt x env with
      | Some t -> t
      | None -> invalid_arg ("unbound variable " ^ x))
  | Bin (op, _, _) -> (
      match op with
      | FAdd | FSub | FMul | FDiv -> Float
      | _ -> Int)
  | Un ((FNeg | FSqrt | FAbs), _) -> Float
  | Un ((Neg | Not), _) -> Int
  | Cvt (ItoF, _) -> Float
  | Cvt (FtoI, _) -> Int
  | Load ((F32 | F64), _) -> Float
  | Load (_, _) -> Int
  | Addr _ -> Int
  | Call (name, _) -> (
      match List.assoc_opt name fenv with
      | Some t -> t
      | None -> invalid_arg ("unknown function " ^ name))
  | Call_indirect (_, _, Some t) -> t
  | Call_indirect (_, _, None) -> Int
  | Syscall _ -> Int

let is_float ~fenv ~env e = typeof ~fenv ~env e = Float
