lib/runtime/sysno.ml: Printf
