lib/runtime/runtime.ml: Array Buffer Bytes Char Cost_model Exec Format Hashtbl Int32 Int64 Lfi_arm64 Lfi_core Lfi_elf Lfi_emulator Lfi_verifier List Machine Memory Printf Proc Sysno Vfs
