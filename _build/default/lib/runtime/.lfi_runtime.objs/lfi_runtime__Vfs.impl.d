lib/runtime/vfs.ml: Bytes Hashtbl List String
