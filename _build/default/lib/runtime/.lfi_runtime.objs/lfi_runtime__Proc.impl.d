lib/runtime/proc.ml: Buffer Hashtbl Lfi_emulator Machine Vfs
