lib/elf/elf.ml: Bytes Char Fun Int32 Int64 Lfi_arm64 List
