(** Minimal ELF64 writer/reader for AArch64 executables.

    The runtime loads sandbox programs from real ELF images: the
    verifier reads the executable segment's bytes out of the file, so
    the trust boundary is the binary itself, exactly as in the paper
    (Section 5.3: "ELF executables are verified and then loaded into
    appropriate 4GiB slots").

    Only what the system needs is implemented: little-endian ELF64,
    [ET_EXEC], [EM_AARCH64], [PT_LOAD] program headers.  Virtual
    addresses are sandbox-relative (see {!Lfi_arm64.Assemble}). *)

type segment = {
  vaddr : int;  (** sandbox-relative address *)
  flags : int;  (** PF_X = 1, PF_W = 2, PF_R = 4 *)
  data : bytes;  (** file contents (p_filesz bytes) *)
  memsz : int;  (** in-memory size; the tail beyond [data] is BSS *)
}

type t = { entry : int; segments : segment list }

let pf_x = 1
let pf_w = 2
let pf_r = 4

let ehsize = 64
let phentsize = 56

exception Bad_elf of string

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let write (t : t) : bytes =
  let phnum = List.length t.segments in
  let header_bytes = ehsize + (phnum * phentsize) in
  let total =
    List.fold_left (fun acc s -> acc + Bytes.length s.data) header_bytes
      t.segments
  in
  let b = Bytes.make total '\000' in
  let u8 off v = Bytes.set_uint8 b off v in
  let u16 off v = Bytes.set_uint16_le b off v in
  let u32 off v = Bytes.set_int32_le b off (Int32.of_int v) in
  let u64 off v = Bytes.set_int64_le b off (Int64.of_int v) in
  (* e_ident *)
  u8 0 0x7f;
  u8 1 (Char.code 'E');
  u8 2 (Char.code 'L');
  u8 3 (Char.code 'F');
  u8 4 2 (* ELFCLASS64 *);
  u8 5 1 (* ELFDATA2LSB *);
  u8 6 1 (* EV_CURRENT *);
  u16 16 2 (* ET_EXEC *);
  u16 18 0xB7 (* EM_AARCH64 *);
  u32 20 1 (* e_version *);
  u64 24 t.entry;
  u64 32 ehsize (* e_phoff *);
  u64 40 0 (* e_shoff *);
  u32 48 0 (* e_flags *);
  u16 52 ehsize;
  u16 54 phentsize;
  u16 56 phnum;
  (* segments *)
  let off = ref header_bytes in
  List.iteri
    (fun i s ->
      let ph = ehsize + (i * phentsize) in
      u32 ph 1 (* PT_LOAD *);
      u32 (ph + 4) s.flags;
      u64 (ph + 8) !off (* p_offset *);
      u64 (ph + 16) s.vaddr;
      u64 (ph + 24) s.vaddr (* p_paddr *);
      u64 (ph + 32) (Bytes.length s.data) (* p_filesz *);
      u64 (ph + 40) s.memsz;
      u64 (ph + 48) Lfi_arm64.Assemble.default_origin (* p_align *);
      Bytes.blit s.data 0 b !off (Bytes.length s.data);
      off := !off + Bytes.length s.data)
    t.segments;
  b

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let read (b : bytes) : t =
  let len = Bytes.length b in
  if len < ehsize then raise (Bad_elf "truncated header");
  let u8 off = Bytes.get_uint8 b off in
  let u16 off = Bytes.get_uint16_le b off in
  let u64 off = Int64.to_int (Bytes.get_int64_le b off) in
  if u8 0 <> 0x7f || u8 1 <> Char.code 'E' || u8 2 <> Char.code 'L'
     || u8 3 <> Char.code 'F' then raise (Bad_elf "bad magic");
  if u8 4 <> 2 then raise (Bad_elf "not ELF64");
  if u8 5 <> 1 then raise (Bad_elf "not little-endian");
  if u16 18 <> 0xB7 then raise (Bad_elf "not AArch64");
  let entry = u64 24 in
  let phoff = u64 32 in
  let phnum = u16 56 in
  let phentsize' = u16 54 in
  if phentsize' <> phentsize then raise (Bad_elf "bad phentsize");
  let segments =
    List.init phnum (fun i ->
        let ph = phoff + (i * phentsize) in
        if ph + phentsize > len then raise (Bad_elf "truncated phdr");
        let p_type = Int32.to_int (Bytes.get_int32_le b ph) in
        if p_type <> 1 then None
        else
          let flags = Int32.to_int (Bytes.get_int32_le b (ph + 4)) in
          let offset = u64 (ph + 8) in
          let vaddr = u64 (ph + 16) in
          let filesz = u64 (ph + 32) in
          let memsz = u64 (ph + 40) in
          if offset + filesz > len then raise (Bad_elf "segment past EOF");
          if memsz < filesz then raise (Bad_elf "memsz < filesz");
          Some { vaddr; flags; data = Bytes.sub b offset filesz; memsz })
    |> List.filter_map Fun.id
  in
  { entry; segments }

(* ------------------------------------------------------------------ *)
(* Bridges                                                             *)
(* ------------------------------------------------------------------ *)

(** Trailing zero bytes of a writable segment become BSS (zero file
    size, nonzero memory size), as a real linker would arrange. *)
let trim_bss (data : bytes) : bytes * int =
  let n = Bytes.length data in
  let rec last k = if k > 0 && Bytes.get data (k - 1) = '\000' then last (k - 1) else k in
  let keep = last n in
  (Bytes.sub data 0 keep, n)

(** Package an assembled image as an ELF executable. *)
let of_image (img : Lfi_arm64.Assemble.image) : t =
  let data, data_memsz = trim_bss img.Lfi_arm64.Assemble.data in
  {
    entry = img.Lfi_arm64.Assemble.entry;
    segments =
      [ { vaddr = img.origin; flags = pf_r lor pf_x; data = img.text;
          memsz = Bytes.length img.text };
        { vaddr = img.data_origin; flags = pf_r lor pf_w; data;
          memsz = data_memsz } ];
  }

(** The executable segment's bytes (what the verifier checks). *)
let text_segment (t : t) : segment option =
  List.find_opt (fun s -> s.flags land pf_x <> 0) t.segments

let text_size (t : t) =
  match text_segment t with Some s -> Bytes.length s.data | None -> 0

let total_size (t : t) = Bytes.length (write t)
