.PHONY: all build check test bench bench-json bench-compare serve-bench serve-trace-demo crash-demo trace-demo fuzz-smoke fuzz prove-smoke prove clean

all: build

build:
	dune build

check: build
	dune runtest

test: check

# Full experiment suite (figures + tables + Bechamel wall-clock).
bench:
	dune exec bench/main.exe

# Emulator/rewriter/verifier throughput snapshot for perf tracking.
# Compare against BENCH_baseline.json (pre-overhaul emulator).
bench-json:
	dune exec bench/main.exe -- --quick --json BENCH_emulator.json

# Regression gate: rerun the emulator samples and compare insns/s
# against the committed baseline; exits nonzero on a >10% slowdown.
bench-compare:
	dune exec bench/main.exe -- --quick --compare BENCH_emulator.json

# Library-serving benchmark: replay a seeded request stream through a
# pool of warm sandboxed-library instances and commit the lfi-serve/v3
# report plus the lfi-snap/v2 snapshot stream; --suite appends the
# multi-tenant scale runs (open + closed loop at 256 slots / 4
# tenants, the knee sweep, the measured yield_to handoff cost) and
# writes the knee-sweep artifact. The stream and every number in all
# three files are a pure function of the seed, so they are
# byte-stable; CI re-runs this and diffs them.
serve-bench:
	dune exec bin/lfi_serve.exe -- --workload xzbox --requests 1000 \
	  --pool 4 --seed 1 --json BENCH_serve.json \
	  --snapshot=BENCH_serve_snap.jsonl --snapshot-every 250 \
	  --suite --knee-json BENCH_serve_knee.json

# Serving observability demo: serve the slowbox workload (whose rare
# `grind` export deliberately blows its latency SLO), writing a
# Perfetto trace with one track per pool slot and one slice per
# request phase, plus a snapshot stream for lfi_top.
serve-trace-demo:
	dune exec bin/lfi_serve.exe -- --workload slowbox --requests 400 \
	  --pool 4 --seed 7 --trace serve_trace.json \
	  --snapshot=serve_snap.jsonl --snapshot-every 50 --json /dev/null
	@echo "wrote serve_trace.json (open in https://ui.perfetto.dev)"
	@echo "view the run: dune exec bin/lfi_top.exe -- serve_snap.jsonl --replay"

# Deliberately crash the `crashy` workload (wild read into the guard
# region) and emit the postmortem crash report: text on stderr, JSON
# in postmortem_crash.json. The kill is the point, so tolerate it.
crash-demo:
	dune exec bin/lfi_run.exe -- --workload crashy \
	  --postmortem=postmortem_crash.json || true
	@echo "wrote postmortem_crash.json"

# Perfetto-loadable Chrome trace of a coremark run (plus a metrics
# snapshot). Coremark exits with its checksum, so tolerate exit != 0.
trace-demo:
	dune exec bin/lfi_run.exe -- --workload coremark \
	  --trace trace_coremark.json --metrics metrics_coremark.json || true
	@echo "wrote trace_coremark.json (open in https://ui.perfetto.dev)"

# Fixed-seed differential fuzzing smoke: all three engines, >=500
# cases each, deterministic, plus the weakened-verifier oracle demo.
# Zero failures expected; finishes in well under a minute.
fuzz-smoke:
	dune exec bin/lfi_fuzz.exe -- all --seed 0 --count 500 --minic 40
	dune exec bin/lfi_fuzz.exe -- --demo-weakened

# Symbolic soundness gate: every instruction the verifier accepts
# (smoke strata) must carry a symbolic proof that it preserves the
# sandbox invariant — zero holes expected — and every deliberate
# verifier weakening must surface a hole the escape oracle confirms.
# Deterministic and fast; runs on every push.
prove-smoke:
	dune exec bin/lfi_prove.exe
	dune exec bin/lfi_prove.exe -- --demo-weakened

# Full per-instruction enumeration (nightly): ~5M candidate encodings
# across all strata, still zero holes expected; writes the byte-stable
# lfi-prove/v1 report.
prove:
	dune exec bin/lfi_prove.exe -- --full --json PROVE_full.json

# Long fuzzing run (nightly): a different seed per day, large counts.
# Minimized repros for any failure land in test/corpus/repro_*.s and
# replay under `dune runtest` from then on.
FUZZ_SEED ?= $(shell date +%Y%m%d)
fuzz:
	dune exec bin/lfi_fuzz.exe -- all --seed $(FUZZ_SEED) --count 20000 --minic 400

clean:
	dune clean
