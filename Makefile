.PHONY: all build check test bench bench-json trace-demo clean

all: build

build:
	dune build

check: build
	dune runtest

test: check

# Full experiment suite (figures + tables + Bechamel wall-clock).
bench:
	dune exec bench/main.exe

# Emulator/rewriter/verifier throughput snapshot for perf tracking.
# Compare against BENCH_baseline.json (pre-overhaul emulator).
bench-json:
	dune exec bench/main.exe -- --quick --json BENCH_emulator.json

# Perfetto-loadable Chrome trace of a coremark run (plus a metrics
# snapshot). Coremark exits with its checksum, so tolerate exit != 0.
trace-demo:
	dune exec bin/lfi_run.exe -- --workload coremark \
	  --trace trace_coremark.json --metrics metrics_coremark.json || true
	@echo "wrote trace_coremark.json (open in https://ui.perfetto.dev)"

clean:
	dune clean
