.PHONY: all build check test bench bench-json clean

all: build

build:
	dune build

check: build
	dune runtest

test: check

# Full experiment suite (figures + tables + Bechamel wall-clock).
bench:
	dune exec bench/main.exe

# Emulator/rewriter/verifier throughput snapshot for perf tracking.
# Compare against BENCH_baseline.json (pre-overhaul emulator).
bench-json:
	dune exec bench/main.exe -- --quick --json BENCH_emulator.json

clean:
	dune clean
