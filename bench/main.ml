(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 6), then measures the wall-clock speed
   of the real-time components (rewriter, verifier, assembler, Wasm
   validator, emulator) with Bechamel.

   Run with: dune exec bench/main.exe
   (or `dune exec bench/main.exe -- --quick` to skip the Bechamel
   wall-clock section). *)

let section title =
  Printf.printf "\n%s\n%s\n\n%!" title (String.make (String.length title) '=')

(* Library-call transition costs vs process-isolation baselines: the
   same seeded stream `make serve-bench` commits, replayed under both
   uarch models.  (The --quick JSON/compare paths don't run this — the
   committed BENCH_serve.json diff in CI covers the serve path.) *)
let serve_experiment () =
  Printf.printf
    "  %-5s %10s %10s %10s %12s %12s %10s\n"
    "uarch" "gate mean" "gate p50" "gate p99" "linux pipe" "gvisor pipe"
    "req/s";
  List.iter
    (fun uarch ->
      let r =
        Lfi_libbox.Serve.run ~uarch ~spec:Lfi_workloads.Libs.xzbox ~pool:4
          ~requests:1000 ~seed:1 ()
      in
      let open Lfi_emulator.Cost_model in
      let fmt v = if Float.is_nan v then "-" else Printf.sprintf "%.0f" v in
      Printf.printf "  %-5s %10.1f %10.0f %10.0f %12s %12s %10.0f\n%!"
        uarch.name r.Lfi_libbox.Serve.gate_mean r.Lfi_libbox.Serve.gate_p50
        r.Lfi_libbox.Serve.gate_p99
        (fmt uarch.linux_pipe_roundtrip)
        (fmt uarch.gvisor_pipe_roundtrip)
        r.Lfi_libbox.Serve.requests_per_sec)
    [ Lfi_emulator.Cost_model.m1; Lfi_emulator.Cost_model.t2a ];
  Printf.printf
    "\n  A sandboxed library call crosses the boundary for the cost of a\n\
    \  runtime-call gate (plus marshalling), orders of magnitude below a\n\
    \  pipe round-trip between processes.\n"

let run_experiments () =
  section "Experiment E1 - Figure 3 (LFI optimization levels)";
  Lfi_experiments.Fig3.run_all ();
  section "Experiment E2 - Figure 4 + Table 4 (LFI vs WebAssembly)";
  Lfi_experiments.Fig4.run_all ();
  section "Experiment E3 - Code size (Section 6.3)";
  Lfi_experiments.Codesize.run_all ();
  section "Experiment E4 - Figure 5 (LFI vs virtualization)";
  Lfi_experiments.Fig5.run_all ();
  section "Experiment E5 - Table 5 (context switch microbenchmarks)";
  Lfi_experiments.Table5.run_all ();
  section "Experiment E6 - Verifier throughput (Section 5.2)";
  Lfi_experiments.Verifier_speed.run_all ();
  section "Experiment E7 - Ablations (Sections 4.2-4.3)";
  Lfi_experiments.Ablation.run_all ();
  section "Experiment E8 - Spectre hardening cost (Section 7.1)";
  Lfi_experiments.Spectre.run_all ();
  section "CoreMark (artifact appendix A.6.3)";
  Lfi_experiments.Coremark_exp.run_all ();
  section "Experiment E9 - Library serving (Section 5.3 transition costs)";
  serve_experiment ()

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock benchmarks of the toolchain itself              *)
(* ------------------------------------------------------------------ *)

let bechamel_benchmarks () =
  let open Bechamel in
  let open Toolkit in
  (* fixtures: the mcf proxy at each pipeline stage *)
  let w = Option.get (Lfi_workloads.Registry.find "mcf") in
  let prog = w.Lfi_workloads.Common.program in
  let native_src = Lfi_minic.Compile.compile prog in
  let native_text = Lfi_arm64.Source.to_string native_src in
  let rewritten, _ = Lfi_core.Rewriter.rewrite native_src in
  let image = Lfi_arm64.Assemble.assemble rewritten in
  let code =
    match Lfi_elf.Elf.text_segment (Lfi_elf.Elf.of_image image) with
    | Some seg -> seg.Lfi_elf.Elf.data
    | None -> assert false
  in
  let wasm_blob = Lfi_wasm.Ir.serialize (Lfi_wasm.From_minic.lower prog) in
  let small = Option.get (Lfi_workloads.Registry.find "deepsjeng") in

  let tests =
    [
      Test.make ~name:"parse-asm"
        (Staged.stage (fun () ->
             ignore (Lfi_arm64.Parser.parse_string_exn native_text)));
      Test.make ~name:"rewrite-O2"
        (Staged.stage (fun () -> ignore (Lfi_core.Rewriter.rewrite native_src)));
      Test.make ~name:"assemble"
        (Staged.stage (fun () -> ignore (Lfi_arm64.Assemble.assemble rewritten)));
      Test.make ~name:"verify"
        (Staged.stage (fun () ->
             match Lfi_verifier.Verifier.verify ~code () with
             | Ok _ -> ()
             | Error _ -> failwith "verify failed"));
      Test.make ~name:"wasm-validate"
        (Staged.stage (fun () ->
             match Lfi_wasm.Validate.validate (Lfi_wasm.Ir.deserialize wasm_blob) with
             | Ok () -> ()
             | Error _ -> failwith "validate failed"));
      Test.make ~name:"emulate-deepsjeng"
        (Staged.stage (fun () ->
             ignore
               (Lfi_experiments.Run.run
                  (Lfi_experiments.Run.Lfi Lfi_core.Config.o2)
                  small.Lfi_workloads.Common.program)));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  section "Toolchain wall-clock (Bechamel, ns/run)";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-20s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-20s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* JSON perf harness (--json FILE)                                     *)
(*                                                                     *)
(* Measures the host-side throughput of the components every           *)
(* experiment is bottlenecked on — emulated instructions per second    *)
(* on registry workloads under both uarch models, plus rewriter and    *)
(* verifier wall-clock — and writes the numbers to a JSON file so      *)
(* successive PRs have a perf trajectory to compare against.           *)
(* ------------------------------------------------------------------ *)

type emu_sample = {
  workload : string;
  uarch : string;
  system : string;
  insns : int;
  sim_cycles : float;
  wall_s : float;
  insns_per_sec : float;
  (* from one extra metrics-enabled run (schema v2 telemetry section) *)
  decode_hit_rate : float;
  tc_hit_rate : float;
  tlb_hit_rate : float;
  guard_fraction : float;
  insns_per_sec_metrics : float;
  guard_clamps : int;
      (* the flight recorder's guard-clamp audit: exactly 0 for every
         well-behaved workload *)
  (* superblock engine, sampled from the timed (metrics-off) run where
     block dispatch is armed (schema v4 telemetry section) *)
  block_cache_hit_rate : float;
  avg_block_len : float;
  deopt_count : int;
}

(* One paired native-vs-rewritten overhead sample (schema v5).  Cycle
   counts are simulated and deterministic, so a single run per level
   suffices and the numbers are bit-stable across machines. *)
type ov_sample = {
  ov_workload : string;
  ov_uarch : string;
  ov_opt : string;
  ov_native : float;  (** simulated cycles of the unsandboxed build *)
  ov_cycles : float;  (** simulated cycles at this rewriter level *)
  ov_pct : float;  (** percent over native *)
  ov_categories : (string * float) list;
      (** per-category tax cycles (inserted sites only), attributed by
          the per-site profiler; only the O2 rows carry it *)
}

let opt_levels =
  [ ("O0", Lfi_core.Config.o0); ("O1", Lfi_core.Config.o1);
    ("O2", Lfi_core.Config.o2) ]

let overhead_samples workloads : ov_sample list =
  List.concat_map
    (fun short ->
      let w = Option.get (Lfi_workloads.Registry.find short) in
      let prog = w.Lfi_workloads.Common.program in
      List.concat_map
        (fun uarch ->
          let native_elf = Lfi_experiments.Run.build Lfi_experiments.Run.Native prog in
          let native =
            (Lfi_experiments.Run.execute ~uarch Lfi_experiments.Run.Native
               native_elf)
              .Lfi_experiments.Run.cycles
          in
          List.map
            (fun (opt, config) ->
              let sys = Lfi_experiments.Run.Lfi config in
              let elf = Lfi_experiments.Run.build sys prog in
              (* only the O2 row pays for attribution: the per-site
                 accumulator deopts superblock dispatch, but cycle
                 counts are dispatch-invariant, so the O0/O1 rows can
                 run unobserved *)
              let attribute = opt = "O2" in
              let r, rt =
                Lfi_experiments.Run.execute_rt ~uarch ~overhead:attribute sys
                  elf
              in
              let categories =
                match Lfi_runtime.Runtime.overhead_acc rt with
                | None -> []
                | Some a ->
                    let open Lfi_telemetry.Overhead in
                    List.map
                      (fun cat ->
                        let tax = ref 0.0 in
                        Array.iteri
                          (fun i (s : site) ->
                            if s.category = cat && s.inserted then
                              tax := !tax +. a.cycles.(i))
                          a.sites;
                        (category_name cat, !tax))
                      all_categories
              in
              {
                ov_workload = short;
                ov_uarch = uarch.Lfi_emulator.Cost_model.name;
                ov_opt = opt;
                ov_native = native;
                ov_cycles = r.Lfi_experiments.Run.cycles;
                ov_pct =
                  (r.Lfi_experiments.Run.cycles -. native) /. native *. 100.0;
                ov_categories = categories;
              })
            opt_levels)
        [ Lfi_emulator.Cost_model.m1; Lfi_emulator.Cost_model.t2a ])
    workloads

let time_wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(** Best-of-[reps] wall clock for one run of [f] (first call warms the
    decode and translation caches' allocation paths).  Short workloads
    get extra reps until the cumulative measured time reaches a floor:
    a single ~15 ms run can land entirely inside a slow scheduling
    window on a shared box, and best-of only converges to the stable
    peak if at least one rep catches a quiet slice. *)
let best_of reps f =
  let min_total = 0.25 and max_reps = 32 in
  let best = ref infinity in
  let result = ref None in
  let total = ref 0.0 in
  let n = ref 0 in
  while !n < reps || (!total < min_total && !n < max_reps) do
    incr n;
    let r, dt = time_wall f in
    result := Some r;
    total := !total +. dt;
    if dt < !best then best := dt
  done;
  (Option.get !result, !best)

let emulator_samples ~reps workloads =
  List.concat_map
    (fun short ->
      let w = Option.get (Lfi_workloads.Registry.find short) in
      List.concat_map
        (fun uarch ->
          List.map
            (fun (sysname, sys) ->
              (* build outside the timed section: we are measuring the
                 emulator, not the compiler *)
              let elf = Lfi_experiments.Run.build sys w.Lfi_workloads.Common.program in
              (* the timed run keeps metrics off so block dispatch stays
                 armed; the runtime handle still exposes the machine's
                 unconditional superblock counters afterwards *)
              let (r, rt), wall =
                best_of reps (fun () ->
                    Lfi_experiments.Run.execute_rt ~uarch sys elf)
              in
              let bsnap = Lfi_runtime.Runtime.metrics_snapshot rt in
              (* one extra run with the telemetry counters enabled:
                 cache hit rates, plus the metrics-on throughput so the
                 overhead of counting is itself on record *)
              let (rm, rtm), wall_m =
                time_wall (fun () ->
                    Lfi_experiments.Run.execute_rt ~uarch ~metrics:true sys elf)
              in
              let snap = Lfi_runtime.Runtime.metrics_snapshot rtm in
              let e = snap.Lfi_telemetry.Metrics.emu in
              let open Lfi_telemetry.Metrics in
              {
                workload = short;
                uarch = uarch.Lfi_emulator.Cost_model.name;
                system = sysname;
                insns = r.Lfi_experiments.Run.insns;
                sim_cycles = r.Lfi_experiments.Run.cycles;
                wall_s = wall;
                insns_per_sec = float_of_int r.Lfi_experiments.Run.insns /. wall;
                decode_hit_rate =
                  hit_rate ~hits:e.decode_hits ~misses:e.decode_misses;
                tc_hit_rate = hit_rate ~hits:snap.tc_hits ~misses:snap.tc_misses;
                tlb_hit_rate =
                  hit_rate ~hits:snap.tlb_hits ~misses:snap.tlb_misses;
                guard_fraction =
                  float_of_int e.guards /. float_of_int (max 1 (insn_total e));
                insns_per_sec_metrics =
                  float_of_int rm.Lfi_experiments.Run.insns /. wall_m;
                guard_clamps = Lfi_runtime.Runtime.total_clamps rtm;
                block_cache_hit_rate = block_hit_rate bsnap;
                avg_block_len = avg_block_len bsnap;
                deopt_count = bsnap.blk_deopts;
              })
            [
              ("native", Lfi_experiments.Run.Native);
              ("lfi-o2", Lfi_experiments.Run.Lfi Lfi_core.Config.o2);
            ])
        [ Lfi_emulator.Cost_model.m1; Lfi_emulator.Cost_model.t2a ])
    workloads

let json_perf ~quick ~filter file =
  let reps = if quick then 2 else 4 in
  let workloads =
    match filter with
    | [] -> if quick then [ "mcf"; "xz" ] else [ "mcf"; "xz"; "deepsjeng" ]
    | names -> names
  in
  Printf.printf "measuring emulator throughput on %s (%d reps)...\n%!"
    (String.concat ", " workloads) reps;
  let emu = emulator_samples ~reps workloads in
  List.iter
    (fun s ->
      Printf.printf "  %-10s %-4s %-7s %9d insns  %8.3f ms  %10.0f insns/s\n%!"
        s.workload s.uarch s.system s.insns (s.wall_s *. 1000.0)
        s.insns_per_sec)
    emu;
  (* rewriter + verifier wall clock on the mcf proxy *)
  let w = Option.get (Lfi_workloads.Registry.find "mcf") in
  let native_src = Lfi_minic.Compile.compile w.Lfi_workloads.Common.program in
  let (rewritten, rstats), rewrite_s =
    best_of (reps * 2) (fun () -> Lfi_core.Rewriter.rewrite native_src)
  in
  let image = Lfi_arm64.Assemble.assemble rewritten in
  let code =
    match Lfi_elf.Elf.text_segment (Lfi_elf.Elf.of_image image) with
    | Some seg -> seg.Lfi_elf.Elf.data
    | None -> assert false
  in
  let verify_res, verify_s =
    best_of (reps * 2) (fun () -> Lfi_verifier.Verifier.verify ~code ())
  in
  (match verify_res with
  | Ok _ -> ()
  | Error _ -> failwith "verifier rejected the mcf proxy");
  Printf.printf "measuring SFI overhead vs native on %s...\n%!"
    (String.concat ", " workloads);
  let ov = overhead_samples workloads in
  List.iter
    (fun s ->
      Printf.printf "  %-10s %-4s %-3s %12.0f cycles  %+6.2f%% over native\n%!"
        s.ov_workload s.ov_uarch s.ov_opt s.ov_cycles s.ov_pct)
    ov;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"lfi-bench/v5\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf "  \"emulator\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"uarch\": %S, \"system\": %S, \"insns\": \
            %d, \"sim_cycles\": %.1f, \"wall_s\": %.6f, \"insns_per_sec\": \
            %.0f,\n\
           \     \"telemetry\": {\"decode_cache_hit_rate\": %.6f, \
            \"translation_cache_hit_rate\": %.6f, \"tlb_hit_rate\": %.6f, \
            \"guard_fraction\": %.6f, \"insns_per_sec_metrics\": %.0f, \
            \"guard_clamps\": %d, \"block_cache_hit_rate\": %.6f, \
            \"avg_block_len\": %.2f, \"deopt_count\": %d}}%s\n"
           s.workload s.uarch s.system s.insns s.sim_cycles s.wall_s
           s.insns_per_sec s.decode_hit_rate s.tc_hit_rate s.tlb_hit_rate
           s.guard_fraction s.insns_per_sec_metrics s.guard_clamps
           s.block_cache_hit_rate s.avg_block_len s.deopt_count
           (if i = List.length emu - 1 then "" else ",")))
    emu;
  Buffer.add_string buf "  ],\n";
  (* percent-over-native per (workload, uarch, opt): simulated cycles,
     so the section is deterministic and diffs cleanly in CI.  The O2
     rows carry the per-category tax breakdown from the per-site
     profiler.  (The old-schema --compare scanner skips these chunks:
     they carry no insns_per_sec.) *)
  Buffer.add_string buf "  \"overhead\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"uarch\": %S, \"opt\": %S, \
            \"native_cycles\": %.1f, \"cycles\": %.1f, \"overhead_pct\": \
            %.2f"
           s.ov_workload s.ov_uarch s.ov_opt s.ov_native s.ov_cycles s.ov_pct);
      if s.ov_categories <> [] then begin
        Buffer.add_string buf ",\n     \"categories\": {";
        List.iteri
          (fun j (name, tax) ->
            Buffer.add_string buf
              (Printf.sprintf "%s%S: %.1f"
                 (if j > 0 then ", " else "")
                 name tax))
          s.ov_categories;
        Buffer.add_string buf "}"
      end;
      Buffer.add_string buf
        (Printf.sprintf "}%s\n" (if i = List.length ov - 1 then "" else ",")))
    ov;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"rewriter\": {\"input\": \"mcf\", \"wall_s\": %.6f, \"guards\": \
        %d, \"hoists\": %d, \"sp_guards_elided\": %d, \"branches_relaxed\": \
        %d},\n"
       rewrite_s rstats.Lfi_core.Rewriter.guards
       rstats.Lfi_core.Rewriter.hoists
       rstats.Lfi_core.Rewriter.sp_guards_elided
       rstats.Lfi_core.Rewriter.branches_relaxed);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"verifier\": {\"input\": \"mcf\", \"wall_s\": %.6f, \
        \"text_bytes\": %d, \"mb_per_sec\": %.1f}\n"
       verify_s (Bytes.length code)
       (float_of_int (Bytes.length code) /. verify_s /. 1e6));
  Buffer.add_string buf "}\n";
  let oc = open_out file in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s\n%!" file

(* ------------------------------------------------------------------ *)
(* Regression gate (--compare FILE)                                    *)
(*                                                                     *)
(* Re-measures the emulator samples and compares throughput against a  *)
(* baseline JSON written by --json (any schema version: only the       *)
(* per-sample insns_per_sec is read).  Exits nonzero if any matching   *)
(* (workload, uarch, system) sample regressed by more than 10%, so CI  *)
(* can gate on it.                                                     *)
(* ------------------------------------------------------------------ *)

let regression_threshold = 0.10

(* Minimal field extraction from our own JSON: each emulator sample is
   a chunk starting at {"workload"; fields are scanned inside the
   chunk, so no general JSON parser is needed. *)
let find_sub (hay : string) (needle : string) (from : int) : int option =
  let n = String.length needle and h = String.length hay in
  let rec go i =
    if i + n > h then None
    else if String.sub hay i n = needle then Some i
    else go (i + 1)
  in
  go from

let str_field chunk name =
  let key = Printf.sprintf "\"%s\": \"" name in
  match find_sub chunk key 0 with
  | None -> None
  | Some i ->
      let start = i + String.length key in
      let stop = String.index_from chunk start '"' in
      Some (String.sub chunk start (stop - start))

let num_field chunk name =
  let key = Printf.sprintf "\"%s\": " name in
  match find_sub chunk key 0 with
  | None -> None
  | Some i ->
      let start = i + String.length key in
      let stop = ref start in
      while
        !stop < String.length chunk
        && (match chunk.[!stop] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub chunk start (!stop - start))

(* every sample object in our JSON starts with the workload key *)
let sample_chunks (content : string) : string list =
  let marker = "{\"workload\":" in
  let rec chunks acc pos =
    match find_sub content marker pos with
    | None -> List.rev acc
    | Some i ->
        let stop =
          match find_sub content marker (i + 1) with
          | None -> String.length content
          | Some j -> j
        in
        chunks (String.sub content i (stop - i) :: acc) stop
  in
  chunks [] 0

let baseline_samples (content : string) : (string * string * string * float) list =
  List.filter_map
    (fun chunk ->
      match
        ( str_field chunk "workload",
          str_field chunk "uarch",
          str_field chunk "system",
          num_field chunk "insns_per_sec" )
      with
      | Some w, Some u, Some s, Some ips -> Some (w, u, s, ips)
      | _ -> None)
    (sample_chunks content)

(* the v5 overhead section: keyed on [opt] instead of [system], and on
   the deterministic [overhead_pct] instead of wall-clock throughput *)
let baseline_overhead (content : string) : (string * string * string * float) list =
  List.filter_map
    (fun chunk ->
      match
        ( str_field chunk "workload",
          str_field chunk "uarch",
          str_field chunk "opt",
          num_field chunk "overhead_pct" )
      with
      | Some w, Some u, Some o, Some pct -> Some (w, u, o, pct)
      | _ -> None)
    (sample_chunks content)

let compare_baseline ~quick ~filter file =
  let content =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let baseline = baseline_samples content in
  let baseline =
    match filter with
    | [] -> baseline
    | names -> List.filter (fun (w, _, _, _) -> List.mem w names) baseline
  in
  if baseline = [] then begin
    Printf.eprintf "%s: no emulator samples found%s\n" file
      (if filter = [] then "" else " matching --filter");
    exit 2
  end;
  (* more reps than a measurement run: the gate compares best-of-N
     wall clocks, and best-of converges to the machine's stable peak —
     extra reps buy noise immunity, not flattery *)
  let reps = if quick then 4 else 8 in
  let workloads =
    List.sort_uniq compare (List.map (fun (w, _, _, _) -> w) baseline)
  in
  Printf.printf "comparing against %s on %s (%d reps)...\n%!" file
    (String.concat ", " workloads) reps;
  let current = emulator_samples ~reps workloads in
  (* one retry for samples that come in below threshold: best-of wall
     clock is monotone in reps, so a second measurement can only
     recover a slow scheduling window, never hide a real regression
     (a genuine slowdown fails both passes) *)
  let find_sample samples (w, u, sys) =
    List.find_opt (fun s -> s.workload = w && s.uarch = u && s.system = sys)
      samples
  in
  let flagged =
    List.filter
      (fun (w, u, sys, base_ips) ->
        match find_sample current (w, u, sys) with
        | Some s -> s.insns_per_sec /. base_ips < 1.0 -. regression_threshold
        | None -> false)
      baseline
  in
  let current =
    if flagged = [] then current
    else begin
      let rework =
        List.sort_uniq compare (List.map (fun (w, _, _, _) -> w) flagged)
      in
      Printf.printf "re-measuring %d flagged sample(s) on %s...\n%!"
        (List.length flagged)
        (String.concat ", " rework);
      let retry = emulator_samples ~reps rework in
      List.map
        (fun s ->
          match find_sample retry (s.workload, s.uarch, s.system) with
          | Some r when r.insns_per_sec > s.insns_per_sec -> r
          | _ -> s)
        current
    end
  in
  let regressions = ref 0 in
  let clamped = ref 0 in
  List.iter
    (fun (w, u, sys, base_ips) ->
      match
        List.find_opt
          (fun s -> s.workload = w && s.uarch = u && s.system = sys)
          current
      with
      | None -> Printf.printf "  %-10s %-4s %-7s (not measured)\n%!" w u sys
      | Some s ->
          let ratio = s.insns_per_sec /. base_ips in
          let bad = ratio < 1.0 -. regression_threshold in
          if bad then incr regressions;
          if s.guard_clamps <> 0 then incr clamped;
          Printf.printf
            "  %-10s %-4s %-7s %10.0f -> %10.0f insns/s  %+6.1f%%%s%s\n%!" w u
            sys base_ips s.insns_per_sec
            ((ratio -. 1.0) *. 100.0)
            (if bad then "  REGRESSION" else "")
            (if s.guard_clamps <> 0 then
               Printf.sprintf "  %d GUARD CLAMPS" s.guard_clamps
             else ""))
    baseline;
  if !clamped > 0 then
    Printf.printf "warning: nonzero guard-clamp audit on %d sample(s)\n" !clamped;
  (* overhead gate (schema v5): percent-over-native is a pure function
     of the rewriter and the cost model — no wall-clock noise, nothing
     to retry — so fail on a >10% relative regression outright *)
  let ov_baseline =
    let b = baseline_overhead content in
    match filter with
    | [] -> b
    | names -> List.filter (fun (w, _, _, _) -> List.mem w names) b
  in
  (if ov_baseline <> [] then
     let ov_workloads =
       List.sort_uniq compare (List.map (fun (w, _, _, _) -> w) ov_baseline)
     in
     Printf.printf "re-deriving SFI overhead on %s...\n%!"
       (String.concat ", " ov_workloads);
     let ov_current = overhead_samples ov_workloads in
     List.iter
       (fun (w, u, o, base_pct) ->
         match
           List.find_opt
             (fun s -> s.ov_workload = w && s.ov_uarch = u && s.ov_opt = o)
             ov_current
         with
         | None -> Printf.printf "  %-10s %-4s %-3s (not measured)\n%!" w u o
         | Some s ->
             let bad =
               s.ov_pct > base_pct *. (1.0 +. regression_threshold)
             in
             if bad then incr regressions;
             Printf.printf
               "  %-10s %-4s %-3s %8.2f%% -> %8.2f%% over native%s\n%!" w u o
               base_pct s.ov_pct
               (if bad then "  REGRESSION" else ""))
       ov_baseline);
  (* serve-path tail-latency gate: replay the committed serve stream
     and compare call p99 against BENCH_serve.json.  The latency is in
     simulated cycles — a pure function of the code, no wall-clock
     noise — so any drift past the threshold is a real serve-path
     regression and there is nothing to retry *)
  let serve_file = "BENCH_serve.json" in
  (if Sys.file_exists serve_file then
     let content =
       let ic = open_in_bin serve_file in
       let n = in_channel_length ic in
       let s = really_input_string ic n in
       close_in ic;
       s
     in
     let key = "\"call_p99\": " in
     let base =
       match find_sub content key 0 with
       | None -> None
       | Some i ->
           let start = i + String.length key in
           let stop = ref start in
           while
             !stop < String.length content
             && (match content.[!stop] with
                | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
                | _ -> false)
           do
             incr stop
           done;
           float_of_string_opt (String.sub content start (!stop - start))
     in
     match base with
     | None ->
         Printf.printf "  serve      (no numeric call_p99 in %s; skipped)\n%!"
           serve_file
     | Some base ->
         let r =
           Lfi_libbox.Serve.run ~uarch:Lfi_emulator.Cost_model.m1
             ~spec:Lfi_workloads.Libs.xzbox ~pool:4 ~requests:1000 ~seed:1 ()
         in
         let now = r.Lfi_libbox.Serve.call_p99 in
         let bad = now > base *. (1.0 +. regression_threshold) in
         if bad then incr regressions;
         Printf.printf "  %-10s %-4s %-7s %10.0f -> %10.0f p99 cycles %s\n%!"
           "serve" "m1" "lfi-o2" base now
           (if bad then "  REGRESSION" else ""));
  (* closed-loop tail-latency gate (schema v3): re-run the suite's
     closed-loop point (256 slots, 4 tenants, 64 clients — the same
     parameters lfi_serve --suite committed) and fail if end-to-end
     p999 grew more than the threshold.  Also simulated cycles: a pure
     function of the scheduler, so drift means a real scheduling
     regression *)
  (if Sys.file_exists serve_file then
     let content =
       let ic = open_in_bin serve_file in
       let n = in_channel_length ic in
       let s = really_input_string ic n in
       close_in ic;
       s
     in
     match find_sub content "\"closed_loop\": " 0 with
     | None ->
         Printf.printf
           "  serve-closed (no closed_loop section in %s; skipped)\n%!"
           serve_file
     | Some i ->
         let stop =
           match find_sub content "\"knee\"" i with
           | Some j -> j
           | None -> String.length content
         in
         let chunk = String.sub content i (stop - i) in
         (match num_field chunk "p999" with
          | None ->
              Printf.printf
                "  serve-closed (no numeric p999 in closed_loop; skipped)\n%!"
          | Some base ->
              let module S = Lfi_libbox.Serve.Suite in
              let r =
                Lfi_libbox.Serve.run ~uarch:Lfi_emulator.Cost_model.m1
                  ~arrival:
                    (Lfi_sched.Arrival.Closed { concurrency = S.concurrency })
                  ~tenants:S.tenants ~batch_max:S.batch_max
                  ~spec:Lfi_workloads.Libs.xzbox ~pool:S.pool
                  ~requests:S.requests ~seed:1 ()
              in
              let now = r.Lfi_libbox.Serve.latency_p999 in
              let bad = now > base *. (1.0 +. regression_threshold) in
              if bad then incr regressions;
              Printf.printf
                "  %-10s %-4s %-7s %10.0f -> %10.0f p999 cycles %s\n%!"
                "serve-closed" "m1" "lfi-o2" base now
                (if bad then "  REGRESSION" else "")));
  if !regressions > 0 then begin
    Printf.printf "%d sample(s) regressed more than %.0f%%\n" !regressions
      (regression_threshold *. 100.0);
    exit 1
  end
  else Printf.printf "no regression beyond %.0f%%\n" (regression_threshold *. 100.0)

let () =
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  let opt_arg name =
    let rec go i =
      if i >= Array.length Sys.argv then None
      else if Sys.argv.(i) = name && i + 1 < Array.length Sys.argv then
        Some Sys.argv.(i + 1)
      else go (i + 1)
    in
    go 1
  in
  let json_file = opt_arg "--json" in
  let compare_file = opt_arg "--compare" in
  (* --filter WORKLOAD is repeatable; it narrows the measured matrix
     (and, via the registry, the full-suite experiments) to the named
     workloads *)
  let filter =
    let acc = ref [] in
    Array.iteri
      (fun i a ->
        if a = "--filter" && i + 1 < Array.length Sys.argv then
          acc := Sys.argv.(i + 1) :: !acc)
      Sys.argv;
    List.rev !acc
  in
  List.iter
    (fun f ->
      if Option.is_none (Lfi_workloads.Registry.find f) then begin
        Printf.eprintf "unknown workload %S in --filter\n" f;
        exit 2
      end)
    filter;
  if filter <> [] then Lfi_workloads.Registry.filter := filter;
  match (json_file, compare_file) with
  | _, Some file -> compare_baseline ~quick ~filter file
  | Some file, None -> json_perf ~quick ~filter file
  | None, None
    when Array.exists (fun a -> a = "--json" || a = "--compare") Sys.argv ->
      prerr_endline
        "usage: main.exe [--quick] [--filter WORKLOAD]... [--json FILE | \
         --compare FILE]";
      exit 2
  | None, None ->
      run_experiments ();
      if not quick then bechamel_benchmarks ();
      print_newline ();
      print_endline
        "Done.  Paper-vs-measured commentary for every experiment is in \
         EXPERIMENTS.md."
