(** Architectural state of one emulated ARM64 hardware thread.

    Register values are [int64]; the 32 SIMD/FP registers are stored as
    a low and a high 64-bit half (the subset only computes on the low
    half; [q] loads/stores move both).  The machine also carries the
    cycle accounting state: a cost model, an optional TLB, and the
    running cycle counter that every experiment reports.

    {2 Superblock cache}

    Above the decode cache sits the superblock layer (DESIGN.md §5f):
    decoded instructions are lowered into pre-resolved closures,
    grouped into basic blocks keyed by entry pc, and dispatched
    block-at-a-time by {!Exec.run} — see {!Block} for the engine.
    This module owns only the storage and the invalidation protocol:
    blocks live in per-executable-page tables ({!bpage}) reached
    through a one-entry last-page pointer, each block is registered on
    {e every} page it overlaps (a block may straddle a page boundary),
    and {!invalidate_code} — already fired by the memory system for
    any map / unmap / protect / write-to-executable-page — marks every
    overlapping block dead and unlinks it, so a stale block can never
    run.  Chain links ([b_succ0]/[b_succ1]) are validated against
    [b_valid] on every hop, which makes dangling links after an
    invalidation harmless.

    {2 Decode cache}

    Decoded instructions are cached in flat per-executable-page arrays
    ([Insn.t option array], one slot per 4-byte instruction word),
    reached through a one-entry last-page pointer — the hot fetch path
    is two integer compares and an array load, with no hashing and no
    boxed [int64] key allocation.  The cache participates in the memory
    system's invalidation protocol: {!create} registers a hook on the
    machine's {!Memory.t} so that any [map] / [unmap] / [protect] of a
    page, or any write into an executable page, drops the decoded
    instructions covering the affected range.  A cached instruction
    therefore always agrees with what {!Memory.fetch} would return. *)

open Lfi_arm64

(** Program counters at or above this address belong to the host
    runtime: the emulator stops with a [Runtime_entry] event instead of
    fetching, which is how the runtime-call table of Section 4.4 hands
    control to the (native, trusted) runtime without a trampoline. *)
let host_region_start = 0x7F00_0000_0000L

(** Instruction slots per page (one per aligned 4-byte word). *)
let decode_slots = Memory.page_size / 4

(* Decode-cache slots hold this sentinel until first decode; it is
   distinguished by physical equality, so a genuinely decoded [Udf]
   (a fresh allocation) never aliases it. *)
let undecoded : Insn.t = Insn.Udf (-1)

let no_decode_page : Insn.t array = [||]
let no_cost_page : float array = [||]

(* ---------------- escape oracle ---------------- *)

(** What kind of access escaped the sandbox. *)
type escape_kind = Eload | Estore | Ebranch

type escape = {
  esc_pc : int64;  (** pc of the offending instruction *)
  esc_addr : int64;  (** resolved data address or branch target *)
  esc_kind : escape_kind;
}

(** Ground-truth sandbox-escape detector for the fuzzing subsystem
    (DESIGN.md §5d).  When installed, every data access funnelled
    through the emulator's load/store path is checked against the
    [o_lo, o_hi) window and every taken branch against
    [o_branch_lo, o_branch_hi) or the runtime-call host window; any
    miss is recorded (and counted) without stopping execution.  The
    windows are plain addresses — the emulator knows nothing about
    slots or layouts, so the fuzzer constructs them from
    [Lfi_core.Layout].  [None] (the default) costs one predictable
    branch per access, the same discipline as [metrics]/[flight]. *)
type oracle = {
  o_lo : int64;  (** first legal data address (inclusive) *)
  o_hi : int64;  (** first illegal data address past the window *)
  o_branch_lo : int64;  (** first legal branch target (inclusive) *)
  o_branch_hi : int64;  (** first illegal branch target *)
  o_host_lo : int64;  (** runtime-call entry window (inclusive) ... *)
  o_host_hi : int64;  (** ... and its exclusive end *)
  mutable o_escapes : escape list;  (** most recent first, capped *)
  mutable o_count : int;  (** total escapes, including uncollected *)
}

(** Keep only this many escape records per oracle; a wild mutant can
    escape on every instruction and we only need one witness. *)
let oracle_max_escapes = 64

let oracle ~lo ~hi ~branch_lo ~branch_hi ~host_lo ~host_hi : oracle =
  {
    o_lo = lo;
    o_hi = hi;
    o_branch_lo = branch_lo;
    o_branch_hi = branch_hi;
    o_host_lo = host_lo;
    o_host_hi = host_hi;
    o_escapes = [];
    o_count = 0;
  }

let record_escape (o : oracle) ~(pc : int64) ~(addr : int64)
    (kind : escape_kind) =
  o.o_count <- o.o_count + 1;
  if o.o_count <= oracle_max_escapes then
    o.o_escapes <-
      { esc_pc = pc; esc_addr = addr; esc_kind = kind } :: o.o_escapes

(* ---------------- superblocks ---------------- *)

(** Global kill-switch for block dispatch, read once at machine
    creation (tests flip the per-machine flag instead).  Set
    [LFI_SUPERBLOCKS=0] to force every machine onto the single-step
    path — CI uses this to run the whole suite in legacy mode. *)
let superblocks_default =
  ref
    (match Sys.getenv_opt "LFI_SUPERBLOCKS" with
    | Some ("0" | "false" | "off" | "no") -> false
    | _ -> true)

(** Number of instructions a block may cover (body + terminator).
    256 bytes of code, so a block overlaps at most two 16KiB pages. *)
let max_block_len = 64

type t = {
  mutable pc : int64;
  regs : int64 array;  (** x0 .. x30 *)
  mutable sp : int64;
  mutable flag_n : bool;
  mutable flag_z : bool;
  mutable flag_c : bool;
  mutable flag_v : bool;
  vlo : int64 array;
  vhi : int64 array;
  mutable exclusive : int64 option;  (** local exclusive monitor *)
  mem : Memory.t;
  uarch : Cost_model.t;
  tlb : Tlb.t;
  mutable nested_paging : bool;
      (** simulate running as a guest under virtualization *)
  cycle_acc : float array;
      (** running cycle counter; a 1-element flat float array so the
          hot-path accumulate is an unboxed float store (a [mutable
          float] field in this mixed record would box on every add) *)
  mutable insns : int;
  decode_pages : (int, Insn.t array * float array) Hashtbl.t;
      (** per-page decoded-instruction arrays ([undecoded] sentinel in
          empty slots) plus each slot's cost under [uarch] (a flat
          float array, so charging a cached instruction is an unboxed
          load), keyed by page index *)
  mutable dc_idx : int;  (** page index of [dc_arr]; -1 = none *)
  mutable dc_arr : Insn.t array;  (** last decode page touched *)
  mutable dc_cost : float array;  (** cost slots of [dc_arr] *)
  mutable metrics : Lfi_telemetry.Metrics.emu option;
      (** telemetry handle; [None] (the default) counts nothing and
          allocates nothing — each count site is one predictable
          branch, preserving the hot loop's throughput *)
  mutable profile : Lfi_telemetry.Profile.t option;
      (** pc-sampling profiler handle; [None] by default *)
  mutable flight : Lfi_telemetry.Flight.t option;
      (** flight recorder of the sandbox currently on this machine;
          the runtime swaps it on context switch.  [None] costs one
          predictable branch per taken branch / guarded access *)
  mutable escape_oracle : oracle option;
      (** fuzzing ground truth; [None] by default.  Not part of
          {!snapshot}, so it survives context switches and restores. *)
  mutable overhead : Lfi_telemetry.Overhead.acc option;
      (** per-rewrite-site cycle attribution; [None] (the default)
          charges nothing — one predictable branch per fetch, same
          discipline as {!metrics} *)
  (* --- superblock cache (see {!Block} for the engine) --- *)
  mutable blocks_enabled : bool;
      (** master switch for block dispatch on this machine; when armed
          telemetry ({!metrics}, {!profile}) or the {!escape_oracle}
          needs per-instruction observability, {!Exec.run} deopts to
          the single-step path regardless of this flag *)
  blocks : (int, bpage) Hashtbl.t;  (** per-page block tables *)
  mutable bp_idx : int;  (** page index of [bp_arr]; -1 = none *)
  mutable bp_arr : blk array;  (** entry slots of the last block page *)
  mutable blk_i : int;
      (** index of the body op currently executing, maintained by the
          block dispatch loop so a memory fault mid-block can
          reconstruct the faulting pc and the partial insn count *)
  (* unconditional block-engine counters (flat ints, like the
     translation cache's): the bench reads them off the plain
     (metrics-off) run, which is exactly the run where blocks are
     live *)
  mutable blk_execs : int;  (** blocks dispatched *)
  mutable blk_builds : int;  (** lookup misses (block lowered+built) *)
  mutable blk_insns : int;  (** instructions retired via blocks *)
  mutable blk_deopts : int;
      (** times {!Exec.run} fell back to single-step: armed telemetry
          or oracle, quantum tails shorter than the next block, or
          [blocks_enabled = false] on a machine that has the engine
          compiled in *)
}

(** One lowered basic block.  [b_body] holds the straight-line
    instructions as pre-resolved closures (operands resolved to array
    indices, immediates pre-extended and pre-boxed); [b_term] is the
    control-flow decision that ends the block.  [b_costs] keeps each
    instruction's cost under the machine's cost model ([b_costs.(i)]
    for body op [i], last slot for the terminator) — the dispatch loop
    charges them one at a time, in program order, so the cycle
    accumulator sees bit-for-bit the same sequence of float adds as
    the single-step path. *)
and blk = {
  b_pci : int;  (** entry pc, untagged *)
  b_len : int;  (** instructions retired by a full execution *)
  b_body : (t -> unit) array;
  b_costs : float array;
  b_term : bterm;
  b_pages : int;  (** number of pages this block overlaps (1 or 2) *)
  b_wx : bool;
      (** some overlapped page was writable+executable at build time:
          one of the block's own stores could invalidate it, so the
          body loop must re-check [b_valid] after every op.  When
          false the check is skipped — permission changes only happen
          through host-side calls ([Memory.protect] &c.) that
          invalidate first, never mid-block. *)
  mutable b_valid : bool;
  mutable b_succ0 : blk;  (** chain links: likely successors, *)
  mutable b_succ1 : blk;  (** validated by [b_valid] + [b_pci] *)
}

(** Block terminators.  Branch targets, fall-through pcs, and the
    terminator's own pc ([ti], for the flight recorder) are untagged
    ints: the dispatch loop threads the pc as an int and only
    materializes the boxed [pc] field at exit points.  The link value
    ([bl]/[blr]) and the trap pcs stay pre-boxed [int64]s — they are
    stored into the register file / [pc] directly. *)
and bterm =
  | Tb of { target : int; ti : int }
  | Tbl of { target : int; ti : int; link : int64 }
  | Tbcond of { cond : Lfi_arm64.Insn.cond; target : int; ti : int;
                next : int }
  | Tcbz of { nz : bool; reg : Lfi_arm64.Reg.t; target : int; ti : int;
              next : int }
  | Ttbz of { nz : bool; reg : Lfi_arm64.Reg.t; bit : int; target : int;
              ti : int; next : int }
  | Tbr of { reg : Lfi_arm64.Reg.t; ti : int }
  | Tblr of { reg : Lfi_arm64.Reg.t; ti : int; link : int64 }
  | Tret of { reg : Lfi_arm64.Reg.t; ti : int }
  | Tsvc of { n : int; next : int64 }
  | Tudf of { pc : int64 }
  | Tfall of { next : int }
      (** block ended without a branch (length cap, or the next fetch
          would fault); counts no instruction and charges no cost *)

(** Per-page block table: one entry slot per aligned word (a block is
    found by its entry pc) plus the list of every block overlapping
    the page, which is what invalidation walks.  A block straddling
    into a page appears in that page's [bp_blocks] even though its
    entry slot lives on the previous page. *)
and bpage = {
  bp_entries : blk array;  (** [no_blk] sentinel in empty slots *)
  mutable bp_blocks : blk list;
}

(* Sentinel block: never valid, so an empty entry slot or chain link
   reads as a guaranteed miss with no option boxing on the hot path. *)
let rec no_blk =
  {
    b_pci = -1;
    b_len = 0;
    b_body = [||];
    b_costs = [||];
    b_term = Tfall { next = 0 };
    b_pages = 0;
    b_wx = false;
    b_valid = false;
    b_succ0 = no_blk;
    b_succ1 = no_blk;
  }

let no_block_page : blk array = [||]

(** Mark [b] dead and clear its entry slot (which lives on its entry
    page, not necessarily the page being invalidated — the straddling
    case).  The slot is cleared only if it still holds [b]: a newer
    block may have replaced an already-dead one. *)
let kill_block (m : t) (b : blk) =
  b.b_valid <- false;
  let epage = b.b_pci lsr Memory.page_bits in
  match Hashtbl.find_opt m.blocks epage with
  | None -> ()
  | Some bp ->
      let slot = (b.b_pci land (Memory.page_size - 1)) lsr 2 in
      if Array.unsafe_get bp.bp_entries slot == b then
        Array.unsafe_set bp.bp_entries slot no_blk

(** Drop every lowered block overlapping a page in [first, last] —
    including blocks whose entry is on an earlier page but whose body
    straddles into the invalidated range. *)
let invalidate_blocks (m : t) (first : int) (last : int) =
  if Hashtbl.length m.blocks > 0 then begin
    for i = first to last do
      match Hashtbl.find_opt m.blocks i with
      | None -> ()
      | Some bp ->
          List.iter (fun b -> kill_block m b) bp.bp_blocks;
          Hashtbl.remove m.blocks i
    done;
    (* a block entered on page [first - 1] may straddle into [first];
       its home page was not dropped above, so walk it too *)
    (if first > 0 then
       match Hashtbl.find_opt m.blocks (first - 1) with
       | None -> ()
       | Some bp ->
           bp.bp_blocks <-
             List.filter
               (fun b ->
                 if b.b_pages > 1 then begin
                   kill_block m b;
                   false
                 end
                 else true)
               bp.bp_blocks);
    if m.bp_idx >= first - 1 && m.bp_idx <= last then begin
      m.bp_idx <- -1;
      m.bp_arr <- no_block_page
    end
  end

(** Drop cached decoded instructions for every page overlapping
    [addr, addr+len); called from the memory system's
    [on_code_change] hook. *)
let invalidate_code (m : t) (addr : int64) (len : int) =
  (let first = Memory.page_index addr in
   let last =
     if len <= 0 then first
     else Memory.page_index (Int64.add addr (Int64.of_int (len - 1)))
   in
   invalidate_blocks m first last);
  if Hashtbl.length m.decode_pages > 0 then begin
    let first = Memory.page_index addr in
    let last =
      if len <= 0 then first
      else Memory.page_index (Int64.add addr (Int64.of_int (len - 1)))
    in
    for i = first to last do
      if Hashtbl.mem m.decode_pages i then begin
        (match m.metrics with
        | None -> ()
        | Some t ->
            t.Lfi_telemetry.Metrics.decode_invalidations <-
              t.Lfi_telemetry.Metrics.decode_invalidations + 1);
        Hashtbl.remove m.decode_pages i
      end
    done;
    if m.dc_idx >= first && m.dc_idx <= last then begin
      m.dc_idx <- -1;
      m.dc_arr <- no_decode_page;
      m.dc_cost <- no_cost_page
    end
  end

let create ?(uarch = Cost_model.m1) (mem : Memory.t) =
  let m =
    {
      pc = 0L;
      regs = Array.make 31 0L;
      sp = 0L;
      flag_n = false;
      flag_z = false;
      flag_c = false;
      flag_v = false;
      vlo = Array.make 32 0L;
      vhi = Array.make 32 0L;
      exclusive = None;
      mem;
      uarch;
      tlb = Tlb.create ~entries:uarch.Cost_model.tlb_entries;
      nested_paging = false;
      cycle_acc = Array.make 1 0.0;
      insns = 0;
      decode_pages = Hashtbl.create 64;
      dc_idx = -1;
      dc_arr = no_decode_page;
      dc_cost = no_cost_page;
      metrics = None;
      profile = None;
      flight = None;
      escape_oracle = None;
      overhead = None;
      blocks_enabled = !superblocks_default;
      blocks = Hashtbl.create 16;
      bp_idx = -1;
      bp_arr = no_block_page;
      blk_i = 0;
      blk_execs = 0;
      blk_builds = 0;
      blk_insns = 0;
      blk_deopts = 0;
    }
  in
  (* Join the memory system's invalidation protocol, preserving any
     hook already installed (several machines may share one memory). *)
  let prev = mem.Memory.on_code_change in
  mem.Memory.on_code_change <-
    (fun addr len ->
      prev addr len;
      invalidate_code m addr len);
  m

(** Install the decode page for page index [idx] as the last-page
    pointer ([dc_idx] / [dc_arr] / [dc_cost]), creating it on first
    touch. *)
let decode_page (m : t) (idx : int) : unit =
  let arr, costs =
    match Hashtbl.find_opt m.decode_pages idx with
    | Some (arr, costs) -> (arr, costs)
    | None ->
        let arr = Array.make decode_slots undecoded in
        let costs = Array.make decode_slots 0.0 in
        Hashtbl.replace m.decode_pages idx (arr, costs);
        (arr, costs)
  in
  m.dc_idx <- idx;
  m.dc_arr <- arr;
  m.dc_cost <- costs

(* ---------------- cycle accounting ---------------- *)

let cycles (m : t) : float = Array.unsafe_get m.cycle_acc 0

let[@inline] add_cycles (m : t) (c : float) =
  Array.unsafe_set m.cycle_acc 0 (Array.unsafe_get m.cycle_acc 0 +. c)

let set_cycles (m : t) (c : float) = m.cycle_acc.(0) <- c

let mask32 = 0xFFFFFFFFL

(** Read a general register operand. *)
let[@inline] get (m : t) (r : Reg.t) : int64 =
  match r with
  | Reg.R (Reg.W64, n) -> m.regs.(n)
  | Reg.R (Reg.W32, n) -> Int64.logand m.regs.(n) mask32
  | Reg.ZR _ -> 0L
  | Reg.SP Reg.W64 -> m.sp
  | Reg.SP Reg.W32 -> Int64.logand m.sp mask32

(** Write a general register operand; 32-bit writes zero the top half
    (the property the LFI guard depends on). *)
let[@inline] set (m : t) (r : Reg.t) (v : int64) =
  match r with
  | Reg.R (Reg.W64, n) -> m.regs.(n) <- v
  | Reg.R (Reg.W32, n) -> m.regs.(n) <- Int64.logand v mask32
  | Reg.ZR _ -> ()
  | Reg.SP Reg.W64 -> m.sp <- v
  | Reg.SP Reg.W32 -> m.sp <- Int64.logand v mask32

let get_fp_lo (m : t) (f : Reg.Fp.t) = m.vlo.(f.Reg.Fp.n)
let set_fp_lo (m : t) (f : Reg.Fp.t) v = m.vlo.(f.Reg.Fp.n) <- v

(** The double (or single, widened) value held by an FP register. *)
let get_float (m : t) (f : Reg.Fp.t) : float =
  match f.Reg.Fp.size with
  | Reg.Fp.D | Reg.Fp.Q -> Int64.float_of_bits m.vlo.(f.Reg.Fp.n)
  | Reg.Fp.S ->
      Int32.float_of_bits (Int64.to_int32 (Int64.logand m.vlo.(f.Reg.Fp.n) mask32))

let set_float (m : t) (f : Reg.Fp.t) (v : float) =
  match f.Reg.Fp.size with
  | Reg.Fp.D | Reg.Fp.Q -> m.vlo.(f.Reg.Fp.n) <- Int64.bits_of_float v
  | Reg.Fp.S ->
      m.vlo.(f.Reg.Fp.n) <-
        Int64.logand (Int64.of_int32 (Int32.bits_of_float v)) mask32

let[@inline] cond_holds (m : t) (c : Insn.cond) : bool =
  let n = m.flag_n and z = m.flag_z and cf = m.flag_c and v = m.flag_v in
  match c with
  | Insn.EQ -> z
  | Insn.NE -> not z
  | Insn.CS -> cf
  | Insn.CC -> not cf
  | Insn.MI -> n
  | Insn.PL -> not n
  | Insn.VS -> v
  | Insn.VC -> not v
  | Insn.HI -> cf && not z
  | Insn.LS -> not (cf && not z)
  | Insn.GE -> n = v
  | Insn.LT -> n <> v
  | Insn.GT -> (not z) && n = v
  | Insn.LE -> z || n <> v
  | Insn.AL -> true

let[@inline] set_nzcv (m : t) ~n ~z ~c ~v =
  m.flag_n <- n;
  m.flag_z <- z;
  m.flag_c <- c;
  m.flag_v <- v

(** Charge TLB cost for a data access. *)
let[@inline] charge_tlb (m : t) (addr : int64) =
  if not (Tlb.access m.tlb addr) then begin
    let walk = m.uarch.Cost_model.tlb_walk_cycles in
    let walk =
      if m.nested_paging then walk *. m.uarch.Cost_model.nested_walk_factor
      else walk
    in
    add_cycles m walk
  end

(** Snapshot of the register state (used by fork and context switch). *)
type snapshot = {
  s_pc : int64;
  s_regs : int64 array;
  s_sp : int64;
  s_flags : bool * bool * bool * bool;
  s_vlo : int64 array;
  s_vhi : int64 array;
}

let snapshot (m : t) : snapshot =
  {
    s_pc = m.pc;
    s_regs = Array.copy m.regs;
    s_sp = m.sp;
    s_flags = (m.flag_n, m.flag_z, m.flag_c, m.flag_v);
    s_vlo = Array.copy m.vlo;
    s_vhi = Array.copy m.vhi;
  }

let restore (m : t) (s : snapshot) =
  m.pc <- s.s_pc;
  Array.blit s.s_regs 0 m.regs 0 31;
  m.sp <- s.s_sp;
  (let n, z, c, v = s.s_flags in
   set_nzcv m ~n ~z ~c ~v);
  Array.blit s.s_vlo 0 m.vlo 0 32;
  Array.blit s.s_vhi 0 m.vhi 0 32;
  m.exclusive <- None
