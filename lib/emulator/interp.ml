(** The single-instruction ARM64 interpreter.

    Executes decoded instructions against a {!Machine.t}, charging the
    cost model for every instruction and the TLB for every data access.
    Anything that must escape to the host — memory faults, [svc],
    undefined instructions, or control reaching the runtime region —
    is reported as an {!event}; the runtime decides what it means.

    This module is the semantic reference: the superblock engine
    ({!Block}) lowers hot instructions into specialized closures but
    falls back to {!exec_insn} for everything else, and {!Exec.run}
    deopts to the step loop here whenever per-instruction telemetry is
    armed.  The step path is engineered to be allocation-free on the
    common path: instruction fetch is an array probe into the
    machine's per-page decode cache, effective addresses are computed
    by {!addr_of} and written back by {!writeback} (no intermediate
    [(addr, closure)] pair), cycle accounting goes through the
    machine's unboxed accumulator, and [step] returns its event
    directly — the only allocations left are the boxed [int64]
    temporaries inherent to OCaml's int64 arithmetic. *)

open Lfi_arm64
open Machine

type trap =
  | Mem_fault of Memory.fault
  | Undefined of int64  (** pc of a [Udf] or unsupported instruction *)
  | Svc_trap of int  (** pc already advanced past the svc *)

type event =
  | Quantum_expired
  | Runtime_entry of int64  (** pc within the host runtime region *)
  | Trap of trap

let pp_trap fmt = function
  | Mem_fault f -> Memory.pp_fault fmt f
  | Undefined pc -> Format.fprintf fmt "undefined instruction at 0x%Lx" pc
  | Svc_trap n -> Format.fprintf fmt "svc #%d" n

(* ------------------------------------------------------------------ *)
(* Arithmetic helpers                                                  *)
(* ------------------------------------------------------------------ *)

let mask_w (w : Reg.width) v =
  match w with Reg.W64 -> v | Reg.W32 -> Int64.logand v mask32

let sext32 v =
  Int64.shift_right (Int64.shift_left v 32) 32

let sign_bit (w : Reg.width) v =
  match w with
  | Reg.W64 -> Int64.compare v 0L < 0
  | Reg.W32 -> Int64.logand v 0x80000000L <> 0L

let extend_value (e : Insn.extend) (v : int64) : int64 =
  match e with
  | Insn.Uxtb -> Int64.logand v 0xFFL
  | Insn.Uxth -> Int64.logand v 0xFFFFL
  | Insn.Uxtw -> Int64.logand v mask32
  | Insn.Uxtx -> v
  | Insn.Sxtb -> Int64.shift_right (Int64.shift_left v 56) 56
  | Insn.Sxth -> Int64.shift_right (Int64.shift_left v 48) 48
  | Insn.Sxtw -> sext32 v
  | Insn.Sxtx -> v

let shift_value (w : Reg.width) (k : Insn.shift) (v : int64) (a : int) : int64 =
  let bits = match w with Reg.W64 -> 64 | Reg.W32 -> 32 in
  let a = a mod bits in
  if a = 0 then mask_w w v
  else
    match k with
    | Insn.Lsl -> mask_w w (Int64.shift_left v a)
    | Insn.Lsr -> Int64.shift_right_logical (mask_w w v) a
    | Insn.Asr ->
        let v =
          match w with Reg.W64 -> v | Reg.W32 -> sext32 (mask_w w v)
        in
        mask_w w (Int64.shift_right v a)
    | Insn.Ror ->
        let v = mask_w w v in
        mask_w w
          (Int64.logor
             (Int64.shift_right_logical v a)
             (Int64.shift_left v (bits - a)))

let operand2_value (m : Machine.t) (w : Reg.width) (op2 : Insn.operand2) :
    int64 =
  match op2 with
  | Insn.Imm (v, sh) -> Int64.shift_left (Int64.of_int v) sh
  | Insn.Sh (r, k, a) -> shift_value w k (get m r) a
  | Insn.Ext (r, e, a) ->
      mask_w w (Int64.shift_left (extend_value e (get m r)) a)

(** Add/sub with NZCV computation at the given width. *)
let arith_flags (m : Machine.t) (w : Reg.width) ~sub (a : int64) (b : int64) :
    int64 =
  let a = mask_w w a and b = mask_w w b in
  let r = if sub then Int64.sub a b else Int64.add a b in
  let r_masked = mask_w w r in
  let n = sign_bit w r_masked in
  let z = Int64.equal r_masked 0L in
  let c =
    match (w, sub) with
    | Reg.W64, false -> Int64.unsigned_compare r_masked a < 0
    | Reg.W64, true -> Int64.unsigned_compare a b >= 0
    | Reg.W32, false -> Int64.unsigned_compare r 0xFFFFFFFFL > 0
    | Reg.W32, true -> Int64.unsigned_compare a b >= 0
  in
  let sa = sign_bit w a
  and sb = sign_bit w b
  and sr = sign_bit w r_masked in
  let v = if sub then sa <> sb && sr <> sa else sa = sb && sr <> sa in
  set_nzcv m ~n ~z ~c ~v;
  r_masked

let logic_flags (m : Machine.t) (w : Reg.width) (r : int64) =
  set_nzcv m ~n:(sign_bit w r) ~z:(Int64.equal (mask_w w r) 0L) ~c:false
    ~v:false

(* 128-bit multiply high half. *)
let mulh ~signed (a : int64) (b : int64) : int64 =
  let open Int64 in
  let mask = 0xFFFFFFFFL in
  let alo = logand a mask and ahi = shift_right_logical a 32 in
  let blo = logand b mask and bhi = shift_right_logical b 32 in
  (* unsigned 128-bit product via 32x32 partials *)
  let ll = mul alo blo in
  let lh = mul alo bhi in
  let hl = mul ahi blo in
  let hh = mul ahi bhi in
  let mid = add (add (shift_right_logical ll 32) (logand lh mask)) (logand hl mask) in
  let uhi =
    add (add hh (shift_right_logical lh 32))
      (add (shift_right_logical hl 32) (shift_right_logical mid 32))
  in
  if not signed then uhi
  else
    (* signed correction: if a < 0 subtract b from high, if b < 0
       subtract a *)
    let uhi = if compare a 0L < 0 then sub uhi b else uhi in
    if compare b 0L < 0 then sub uhi a else uhi

let bitfield_result (w : Reg.width) (op : Insn.bf_op) ~(dst_old : int64)
    ~(src : int64) ~(immr : int) ~(imms : int) : int64 =
  let bits = match w with Reg.W64 -> 64 | Reg.W32 -> 32 in
  let mask n = if n >= 64 then -1L else Int64.sub (Int64.shift_left 1L n) 1L in
  let src = mask_w w src in
  let result =
    if imms >= immr then begin
      (* extract field src[imms:immr] at bit 0 *)
      let width = imms - immr + 1 in
      let fld = Int64.logand (Int64.shift_right_logical src immr) (mask width) in
      match op with
      | Insn.UBFM -> fld
      | Insn.SBFM ->
          let sh = 64 - width in
          Int64.shift_right (Int64.shift_left fld sh) sh
      | Insn.BFM ->
          Int64.logor
            (Int64.logand dst_old (Int64.lognot (mask width)))
            fld
    end
    else begin
      (* insert field src[imms:0] at bit (bits - immr) *)
      let width = imms + 1 in
      let lsb = bits - immr in
      let fld = Int64.logand src (mask width) in
      match op with
      | Insn.UBFM -> Int64.shift_left fld lsb
      | Insn.SBFM ->
          let sh = 64 - width in
          Int64.shift_left (Int64.shift_right (Int64.shift_left fld sh) sh) lsb
      | Insn.BFM ->
          let hole = Int64.shift_left (mask width) lsb in
          Int64.logor
            (Int64.logand dst_old (Int64.lognot hole))
            (Int64.shift_left fld lsb)
    end
  in
  mask_w w result

let clz_value (w : Reg.width) (v : int64) =
  let bits = match w with Reg.W64 -> 64 | Reg.W32 -> 32 in
  let rec go i =
    if i < 0 then bits
    else if Int64.logand (Int64.shift_right_logical v i) 1L = 1L then
      bits - 1 - i
    else go (i - 1)
  in
  go (bits - 1)

let cls_value (w : Reg.width) (v : int64) =
  let bits = match w with Reg.W64 -> 64 | Reg.W32 -> 32 in
  let sign = Int64.logand (Int64.shift_right_logical v (bits - 1)) 1L in
  let rec go i acc =
    if i < 0 then acc
    else if Int64.logand (Int64.shift_right_logical v i) 1L = sign then
      go (i - 1) (acc + 1)
    else acc
  in
  go (bits - 2) 0

let rbit_value (w : Reg.width) (v : int64) =
  let bits = match w with Reg.W64 -> 64 | Reg.W32 -> 32 in
  let r = ref 0L in
  for i = 0 to bits - 1 do
    if Int64.logand (Int64.shift_right_logical v i) 1L = 1L then
      r := Int64.logor !r (Int64.shift_left 1L (bits - 1 - i))
  done;
  !r

let rev_value (w : Reg.width) (group : int) (v : int64) =
  let bits = match w with Reg.W64 -> 64 | Reg.W32 -> 32 in
  let nbytes = bits / 8 in
  let out = ref 0L in
  let gbytes = group in
  for g = 0 to (nbytes / gbytes) - 1 do
    for b = 0 to gbytes - 1 do
      let src_byte = (g * gbytes) + b in
      let dst_byte = (g * gbytes) + (gbytes - 1 - b) in
      let byte =
        Int64.logand (Int64.shift_right_logical v (8 * src_byte)) 0xFFL
      in
      out := Int64.logor !out (Int64.shift_left byte (8 * dst_byte))
    done
  done;
  !out

(* ------------------------------------------------------------------ *)
(* Addressing                                                          *)
(* ------------------------------------------------------------------ *)

(** Effective address of an addressing mode.  Base-register writeback
    (pre/post-index) is applied separately by {!writeback}, so the pair
    never materializes as an allocated [(addr, closure)] value.

    The [\[x21, wN, uxtw\]] guarded form gets its own arm: when the
    flight recorder is live it audits whether the [uxtw] clamp changed
    the access.  A well-formed index is either a sandbox-relative
    offset (upper 32 bits zero) or a full in-sandbox pointer (upper 32
    bits equal to the base's); anything else is an address the guard
    silently pulled back into the sandbox (Section 5.2's clamped
    escape), so it bumps the audit counter and logs the pc.  The
    comparisons are untagged ([Int64.to_int] then [lsr]), so the audit
    allocates nothing; with the recorder off it is one [None] check. *)
let[@inline] addr_of (m : Machine.t) (a : Insn.addr) : int64 =
  match a with
  | Insn.Imm_off (b, i) | Insn.Pre (b, i) ->
      Int64.add (get m b) (Int64.of_int i)
  | Insn.Post (b, _) -> get m b
  | Insn.Reg_off (Reg.R (Reg.W64, 21), Reg.R (_, n), Insn.Uxtw, amt) ->
      let base = Array.unsafe_get m.regs 21 in
      let raw = Array.unsafe_get m.regs n in
      (match m.flight with
      | None -> ()
      | Some f ->
          let hi = Int64.to_int raw lsr 32 in
          if hi <> 0 && hi <> Int64.to_int base lsr 32 then
            Lfi_telemetry.Flight.clamp f (Int64.to_int m.pc) (Int64.to_int raw));
      Int64.add base (Int64.shift_left (Int64.logand raw mask32) amt)
  | Insn.Reg_off (b, r, e, amt) ->
      Int64.add (get m b) (Int64.shift_left (extend_value e (get m r)) amt)

(** Apply the base-register update of [a], given the effective address
    previously computed by {!addr_of}. *)
let[@inline] writeback (m : Machine.t) (a : Insn.addr) (addr : int64) =
  match a with
  | Insn.Imm_off _ | Insn.Reg_off _ -> ()
  | Insn.Pre (b, _) -> set m b addr
  | Insn.Post (b, i) -> set m b (Int64.add addr (Int64.of_int i))

let ld_result (sz : Insn.mem_size) ~signed (w : Reg.width) (raw : int64) :
    int64 =
  if not signed then raw
  else
    let shift = 64 - (8 * Insn.mem_bytes sz) in
    let v = Int64.shift_right (Int64.shift_left raw shift) shift in
    mask_w w v

(* ------------------------------------------------------------------ *)
(* Floating point                                                      *)
(* ------------------------------------------------------------------ *)

let round_to_size (f : Reg.Fp.t) (v : float) : float =
  match f.Reg.Fp.size with
  | Reg.Fp.S -> Int32.float_of_bits (Int32.bits_of_float v)
  | Reg.Fp.D | Reg.Fp.Q -> v

let fcvtzs_value ~signed (w : Reg.width) (v : float) : int64 =
  if Float.is_nan v then 0L
  else
    match (w, signed) with
    | Reg.W64, true ->
        if v >= 9.2233720368547758e18 then Int64.max_int
        else if v <= -9.2233720368547758e18 then Int64.min_int
        else Int64.of_float v
    | Reg.W32, true ->
        if v >= 2147483647.0 then 0x7FFFFFFFL
        else if v <= -2147483648.0 then 0x80000000L
        else Int64.logand (Int64.of_float v) mask32
    | Reg.W64, false ->
        if v <= 0.0 then 0L
        else if v >= 1.8446744073709552e19 then -1L
        else if v >= 9.2233720368547758e18 then
          Int64.add (Int64.of_float (v -. 9.2233720368547758e18)) Int64.min_int
        else Int64.of_float v
    | Reg.W32, false ->
        if v <= 0.0 then 0L
        else if v >= 4294967295.0 then 0xFFFFFFFFL
        else Int64.of_float v

let ucvtf_value (v : int64) : float =
  if Int64.compare v 0L >= 0 then Int64.to_float v
  else Int64.to_float v +. 1.8446744073709552e19

(* ------------------------------------------------------------------ *)
(* Step                                                                *)
(* ------------------------------------------------------------------ *)

(** Telemetry: decode-cache outcome plus the instruction-class mix,
    counted in one pass so the metrics-off fetch path pays a single
    [None] check.  A guard is the rewriter's x21-based add — either the
    fundamental [add xD, x21, wN, uxtw] or the sp re-anchor
    [add sp, x21, x22, uxtx]. *)
let count_fetch (t : Lfi_telemetry.Metrics.emu) ~(hit : bool) (i : Insn.t) =
  let open Lfi_telemetry.Metrics in
  if hit then t.decode_hits <- t.decode_hits + 1
  else t.decode_misses <- t.decode_misses + 1;
  match i with
  | Insn.Alu
      { op = Insn.ADD; flags = false; src = Reg.R (Reg.W64, 21);
        op2 = Insn.Ext (_, (Insn.Uxtw | Insn.Uxtx), 0); _ } ->
      t.guards <- t.guards + 1
  | Insn.Ldr _ | Insn.Ldp _ | Insn.Fldr _ | Insn.Fldp _ | Insn.Ldxr _
  | Insn.Ldar _ ->
      t.loads <- t.loads + 1
  | Insn.Str _ | Insn.Stp _ | Insn.Fstr _ | Insn.Fstp _ | Insn.Stxr _
  | Insn.Stlr _ ->
      t.stores <- t.stores + 1
  | Insn.B _ | Insn.Bl _ | Insn.Bcond _ | Insn.Cbz _ | Insn.Tbz _
  | Insn.Br _ | Insn.Blr _ | Insn.Ret _ ->
      t.branches <- t.branches + 1
  | _ -> t.other <- t.other + 1

(** Fetch (through the per-page decode cache) the instruction at the
    current pc and charge its throughput cost.  The alignment check
    runs before the cache probe so a misaligned pc can never alias a
    cached aligned slot; on a hit the charge is an unboxed load from
    the page's cost array — no [Cost_model.cost] dispatch per step. *)
let fetch_insn (m : Machine.t) : Insn.t =
  let pc = m.pc in
  if Int64.logand pc 3L <> 0L then
    raise (Memory.Fault { Memory.addr = pc; access = Memory.Fetch;
                          reason = "misaligned pc" });
  let pci = Int64.to_int pc in
  let pidx = pci lsr Memory.page_bits in
  let slot = (pci land (Memory.page_size - 1)) lsr 2 in
  if m.dc_idx <> pidx then Machine.decode_page m pidx;
  let i = Array.unsafe_get m.dc_arr slot in
  if i != Machine.undecoded then begin
    let c = Array.unsafe_get m.dc_cost slot in
    add_cycles m c;
    (match m.metrics with None -> () | Some t -> count_fetch t ~hit:true i);
    (match m.overhead with
    | None -> ()
    | Some a -> Lfi_telemetry.Overhead.charge a pci c);
    i
  end
  else begin
    let word = Memory.fetch m.mem pc in
    let i = Decode.decode word in
    let c = Cost_model.cost m.uarch i in
    Array.unsafe_set m.dc_arr slot i;
    Array.unsafe_set m.dc_cost slot c;
    add_cycles m c;
    (match m.metrics with None -> () | Some t -> count_fetch t ~hit:false i);
    (match m.overhead with
    | None -> ()
    | Some a -> Lfi_telemetry.Overhead.charge a pci c);
    i
  end

let target_offset = function
  | Insn.Off n -> Int64.of_int n
  | Insn.Sym s -> failwith ("unresolved symbol at execution: " ^ s)

let[@inline] branch_to (m : Machine.t) t =
  m.pc <- Int64.add m.pc (target_offset t)

(** Escape-oracle check on the (already updated) [m.pc] of a taken
    branch; [from] is the branch's own pc (DESIGN.md §5d).  Legal
    targets are the sandbox branch window and the runtime-call host
    entries.  [Int64.unsigned_compare] keeps the windows honest even
    for targets with the top bit set.  Recording never stops execution:
    the mutant keeps running (and may fault on an unmapped page), the
    fuzzer reads the records afterwards. *)
let[@inline] note_branch_oracle (m : Machine.t) (from : int64) =
  match m.escape_oracle with
  | None -> ()
  | Some o ->
      let t = m.pc in
      let in_window lo hi =
        Int64.unsigned_compare t lo >= 0 && Int64.unsigned_compare t hi < 0
      in
      if
        not
          (in_window o.Machine.o_branch_lo o.Machine.o_branch_hi
          || in_window o.Machine.o_host_lo o.Machine.o_host_hi)
      then Machine.record_escape o ~pc:from ~addr:t Machine.Ebranch

(** Log a taken control transfer into the flight recorder: [from] is
    the branch's own pc, the argument is the (already updated) target.
    One predictable [None] branch when the recorder is off. *)
let[@inline] note_jump (m : Machine.t) (kind : int) (from : int64) =
  note_branch_oracle m from;
  match m.flight with
  | None -> ()
  | Some f ->
      Lfi_telemetry.Flight.record f kind (Int64.to_int from)
        (Int64.to_int m.pc)

(** Escape-oracle check on a data access: the whole [size]-byte access
    must land inside the oracle's [o_lo, o_hi) data window.  At the
    call sites below [m.pc] still points at the accessing
    instruction. *)
let[@inline] oracle_data (m : Machine.t) (addr : int64) (size : int)
    (kind : Machine.escape_kind) =
  match m.escape_oracle with
  | None -> ()
  | Some o ->
      if
        Int64.unsigned_compare addr o.Machine.o_lo < 0
        || Int64.unsigned_compare
             (Int64.add addr (Int64.of_int size))
             o.Machine.o_hi
           > 0
      then Machine.record_escape o ~pc:m.pc ~addr kind

let[@inline] mem_read (m : Machine.t) (addr : int64) (size : int) : int64 =
  oracle_data m addr size Machine.Eload;
  charge_tlb m addr;
  Memory.read m.mem addr size

let[@inline] mem_write (m : Machine.t) (addr : int64) (size : int) (v : int64)
    =
  oracle_data m addr size Machine.Estore;
  charge_tlb m addr;
  Memory.write m.mem addr size v

let host_region_start_i = Int64.to_int host_region_start

(** Execute one already-fetched instruction at [m.pc]: the semantic
    core shared by the step path (below) and the superblock engine's
    generic fallback.  The caller has already charged the instruction's
    cost and counted it; this updates register/memory/flag state and
    [m.pc], letting {!Memory.Fault} escape.  Returns [None] for normal
    completion or [Some event]. *)
let exec_insn (m : Machine.t) (insn : Insn.t) : event option =
      let next = Int64.add m.pc 4L in
      match insn with
      | Insn.Alu { op; flags; dst; src; op2 } ->
          let w = Reg.width dst in
          let a = mask_w w (get m src) in
          let b = operand2_value m w op2 in
          let r =
            match (op, flags) with
            | Insn.ADD, false -> mask_w w (Int64.add a b)
            | Insn.SUB, false -> mask_w w (Int64.sub a b)
            | Insn.ADD, true -> arith_flags m w ~sub:false a b
            | Insn.SUB, true -> arith_flags m w ~sub:true a b
            | Insn.AND, false -> Int64.logand a b
            | Insn.AND, true ->
                let r = Int64.logand a b in
                logic_flags m w r;
                r
            | Insn.ORR, _ -> Int64.logor a b
            | Insn.EOR, _ -> Int64.logxor a b
            | Insn.BIC, false -> Int64.logand a (Int64.lognot b)
            | Insn.BIC, true ->
                let r = Int64.logand a (Int64.lognot b) in
                logic_flags m w r;
                r
            | Insn.ORN, _ -> Int64.logor a (Int64.lognot b)
            | Insn.EON, _ -> Int64.logxor a (Int64.lognot b)
          in
          set m dst (mask_w w r);
          m.pc <- next;
          None
      | Insn.Shiftv { op; dst; src; amount } ->
          let w = Reg.width dst in
          let bits = match w with Reg.W64 -> 64 | Reg.W32 -> 32 in
          let a = Int64.to_int (Int64.logand (get m amount) (Int64.of_int (bits - 1))) in
          set m dst (shift_value w op (get m src) a);
          m.pc <- next;
          None
      | Insn.Mov { op; dst; imm; hw } ->
          let w = Reg.width dst in
          let v = Int64.shift_left (Int64.of_int imm) (hw * 16) in
          let r =
            match op with
            | Insn.MOVZ -> v
            | Insn.MOVN -> mask_w w (Int64.lognot v)
            | Insn.MOVK ->
                let hole = Int64.shift_left 0xFFFFL (hw * 16) in
                Int64.logor (Int64.logand (get m dst) (Int64.lognot hole)) v
          in
          set m dst (mask_w w r);
          m.pc <- next;
          None
      | Insn.Bitfield { op; dst; src; immr; imms } ->
          let w = Reg.width dst in
          set m dst
            (bitfield_result w op ~dst_old:(get m dst) ~src:(get m src) ~immr
               ~imms);
          m.pc <- next;
          None
      | Insn.Extr { dst; src1; src2; lsb } ->
          let w = Reg.width dst in
          let bits = match w with Reg.W64 -> 64 | Reg.W32 -> 32 in
          let hi = mask_w w (get m src1) and lo = mask_w w (get m src2) in
          let r =
            if lsb = 0 then lo
            else
              Int64.logor
                (Int64.shift_right_logical lo lsb)
                (Int64.shift_left hi (bits - lsb))
          in
          set m dst (mask_w w r);
          m.pc <- next;
          None
      | Insn.Madd { sub; dst; src1; src2; acc } ->
          let w = Reg.width dst in
          let p = Int64.mul (get m src1) (get m src2) in
          let r =
            if sub then Int64.sub (get m acc) p else Int64.add (get m acc) p
          in
          set m dst (mask_w w r);
          m.pc <- next;
          None
      | Insn.Smulh { signed; dst; src1; src2 } ->
          set m dst (mulh ~signed (get m src1) (get m src2));
          m.pc <- next;
          None
      | Insn.Maddl { signed; sub; dst; src1; src2; acc } ->
          let widen v =
            if signed then sext32 (Int64.logand v mask32)
            else Int64.logand v mask32
          in
          let p = Int64.mul (widen (get m src1)) (widen (get m src2)) in
          let r =
            if sub then Int64.sub (get m acc) p else Int64.add (get m acc) p
          in
          set m dst r;
          m.pc <- next;
          None
      | Insn.Ccmp { cmn; src; op2; nzcv; cond } ->
          (if cond_holds m cond then begin
             let w = Reg.width src in
             let b =
               match op2 with
               | Insn.CReg r -> get m r
               | Insn.CImm v -> Int64.of_int v
             in
             ignore (arith_flags m w ~sub:(not cmn) (get m src) b)
           end
           else
             set_nzcv m
               ~n:(nzcv land 8 <> 0)
               ~z:(nzcv land 4 <> 0)
               ~c:(nzcv land 2 <> 0)
               ~v:(nzcv land 1 <> 0));
          m.pc <- next;
          None
      | Insn.Div { signed; dst; src1; src2 } ->
          let w = Reg.width dst in
          let a = get m src1 and b = get m src2 in
          let a, b =
            match w with
            | Reg.W64 -> (a, b)
            | Reg.W32 ->
                if signed then (sext32 a, sext32 b)
                else (mask_w w a, mask_w w b)
          in
          let r =
            if Int64.equal b 0L then 0L
            else if signed then
              if Int64.equal a Int64.min_int && Int64.equal b (-1L) then
                Int64.min_int
              else Int64.div a b
            else Int64.unsigned_div a b
          in
          set m dst (mask_w w r);
          m.pc <- next;
          None
      | Insn.Csel { op; dst; src1; src2; cond } ->
          let w = Reg.width dst in
          let r =
            if cond_holds m cond then mask_w w (get m src1)
            else
              let b = mask_w w (get m src2) in
              match op with
              | Insn.CSEL -> b
              | Insn.CSINC -> mask_w w (Int64.add b 1L)
              | Insn.CSINV -> mask_w w (Int64.lognot b)
              | Insn.CSNEG -> mask_w w (Int64.neg b)
          in
          set m dst r;
          m.pc <- next;
          None
      | Insn.Cls { count_zero; dst; src } ->
          let w = Reg.width dst in
          let v = mask_w w (get m src) in
          set m dst
            (Int64.of_int (if count_zero then clz_value w v else cls_value w v));
          m.pc <- next;
          None
      | Insn.Rbit { dst; src } ->
          let w = Reg.width dst in
          set m dst (rbit_value w (mask_w w (get m src)));
          m.pc <- next;
          None
      | Insn.Rev { bytes; dst; src } ->
          let w = Reg.width dst in
          set m dst (mask_w w (rev_value w bytes (mask_w w (get m src))));
          m.pc <- next;
          None
      | Insn.Adr { page; dst; target } ->
          let off = target_offset target in
          let base =
            if page then Int64.logand m.pc (Int64.lognot 0xFFFL) else m.pc
          in
          set m dst (Int64.add base off);
          m.pc <- next;
          None
      | Insn.Ldr { sz; signed; dst; addr } ->
          let a = addr_of m addr in
          let raw = mem_read m a (Insn.mem_bytes sz) in
          writeback m addr a;
          set m dst (ld_result sz ~signed (Reg.width dst) raw);
          m.pc <- next;
          None
      | Insn.Str { sz; src; addr } ->
          let a = addr_of m addr in
          mem_write m a (Insn.mem_bytes sz) (get m src);
          writeback m addr a;
          m.pc <- next;
          None
      | Insn.Ldp { w; r1; r2; addr } ->
          let size = match w with Reg.W64 -> 8 | Reg.W32 -> 4 in
          let a = addr_of m addr in
          let v1 = mem_read m a size in
          let v2 = mem_read m (Int64.add a (Int64.of_int size)) size in
          writeback m addr a;
          set m r1 v1;
          set m r2 v2;
          m.pc <- next;
          None
      | Insn.Stp { w; r1; r2; addr } ->
          let size = match w with Reg.W64 -> 8 | Reg.W32 -> 4 in
          let a = addr_of m addr in
          mem_write m a size (get m r1);
          mem_write m (Int64.add a (Int64.of_int size)) size (get m r2);
          writeback m addr a;
          m.pc <- next;
          None
      | Insn.Fldr { dst; addr } ->
          let a = addr_of m addr in
          let bytes = Reg.Fp.bytes dst in
          if bytes = 16 then begin
            let lo = mem_read m a 8 and hi = mem_read m (Int64.add a 8L) 8 in
            m.vlo.(dst.Reg.Fp.n) <- lo;
            m.vhi.(dst.Reg.Fp.n) <- hi
          end
          else begin
            let v = mem_read m a bytes in
            m.vlo.(dst.Reg.Fp.n) <- v;
            m.vhi.(dst.Reg.Fp.n) <- 0L
          end;
          writeback m addr a;
          m.pc <- next;
          None
      | Insn.Fstr { src; addr } ->
          let a = addr_of m addr in
          let bytes = Reg.Fp.bytes src in
          if bytes = 16 then begin
            mem_write m a 8 m.vlo.(src.Reg.Fp.n);
            mem_write m (Int64.add a 8L) 8 m.vhi.(src.Reg.Fp.n)
          end
          else
            mem_write m a bytes
              (if bytes = 4 then Int64.logand m.vlo.(src.Reg.Fp.n) mask32
               else m.vlo.(src.Reg.Fp.n));
          writeback m addr a;
          m.pc <- next;
          None
      | Insn.Fldp { r1; r2; addr } ->
          let bytes = Reg.Fp.bytes r1 in
          let a = addr_of m addr in
          let rd (f : Reg.Fp.t) a =
            if bytes = 16 then begin
              m.vlo.(f.Reg.Fp.n) <- mem_read m a 8;
              m.vhi.(f.Reg.Fp.n) <- mem_read m (Int64.add a 8L) 8
            end
            else begin
              m.vlo.(f.Reg.Fp.n) <- mem_read m a bytes;
              m.vhi.(f.Reg.Fp.n) <- 0L
            end
          in
          rd r1 a;
          rd r2 (Int64.add a (Int64.of_int bytes));
          writeback m addr a;
          m.pc <- next;
          None
      | Insn.Fstp { r1; r2; addr } ->
          let bytes = Reg.Fp.bytes r1 in
          let a = addr_of m addr in
          let wr (f : Reg.Fp.t) a =
            if bytes = 16 then begin
              mem_write m a 8 m.vlo.(f.Reg.Fp.n);
              mem_write m (Int64.add a 8L) 8 m.vhi.(f.Reg.Fp.n)
            end
            else
              mem_write m a bytes
                (if bytes = 4 then Int64.logand m.vlo.(f.Reg.Fp.n) mask32
                 else m.vlo.(f.Reg.Fp.n))
          in
          wr r1 a;
          wr r2 (Int64.add a (Int64.of_int bytes));
          writeback m addr a;
          m.pc <- next;
          None
      | Insn.Ldxr { sz; dst; base } ->
          let a = get m base in
          let v = mem_read m a (Insn.mem_bytes sz) in
          m.exclusive <- Some a;
          set m dst v;
          m.pc <- next;
          None
      | Insn.Stxr { sz; status; src; base } ->
          let a = get m base in
          (match m.exclusive with
          | Some e when Int64.equal e a ->
              mem_write m a (Insn.mem_bytes sz) (get m src);
              set m status 0L
          | _ -> set m status 1L);
          m.exclusive <- None;
          m.pc <- next;
          None
      | Insn.Ldar { sz; dst; base } ->
          set m dst (mem_read m (get m base) (Insn.mem_bytes sz));
          m.pc <- next;
          None
      | Insn.Stlr { sz; src; base } ->
          mem_write m (get m base) (Insn.mem_bytes sz) (get m src);
          m.pc <- next;
          None
      | Insn.B t ->
          let from = m.pc in
          branch_to m t;
          note_jump m Lfi_telemetry.Flight.k_branch from;
          None
      | Insn.Bl t ->
          let from = m.pc in
          m.regs.(30) <- next;
          branch_to m t;
          note_jump m Lfi_telemetry.Flight.k_call from;
          None
      | Insn.Bcond (c, t) ->
          if cond_holds m c then begin
            let from = m.pc in
            branch_to m t;
            note_jump m Lfi_telemetry.Flight.k_branch from
          end
          else m.pc <- next;
          None
      | Insn.Cbz { nz; reg; target } ->
          let v = mask_w (Reg.width reg) (get m reg) in
          let zero = Int64.equal v 0L in
          if (zero && not nz) || ((not zero) && nz) then begin
            let from = m.pc in
            branch_to m target;
            note_jump m Lfi_telemetry.Flight.k_branch from
          end
          else m.pc <- next;
          None
      | Insn.Tbz { nz; reg; bit; target } ->
          let b =
            Int64.logand (Int64.shift_right_logical (get m reg) bit) 1L
          in
          let taken = if nz then Int64.equal b 1L else Int64.equal b 0L in
          if taken then begin
            let from = m.pc in
            branch_to m target;
            note_jump m Lfi_telemetry.Flight.k_branch from
          end
          else m.pc <- next;
          None
      | Insn.Br r ->
          let from = m.pc in
          m.pc <- get m r;
          note_jump m Lfi_telemetry.Flight.k_branch from;
          None
      | Insn.Blr r ->
          let from = m.pc in
          let target = get m r in
          m.regs.(30) <- next;
          m.pc <- target;
          note_jump m Lfi_telemetry.Flight.k_call from;
          None
      | Insn.Ret r ->
          let from = m.pc in
          m.pc <- get m r;
          note_jump m Lfi_telemetry.Flight.k_ret from;
          None
      | Insn.Fop2 { op; dst; src1; src2 } ->
          let a = get_float m src1 and b = get_float m src2 in
          let r =
            match op with
            | Insn.FADD -> a +. b
            | Insn.FSUB -> a -. b
            | Insn.FMUL -> a *. b
            | Insn.FDIV -> a /. b
            | Insn.FMIN -> Float.min a b
            | Insn.FMAX -> Float.max a b
          in
          set_float m dst (round_to_size dst r);
          m.pc <- next;
          None
      | Insn.Fop1 { op; dst; src } ->
          let a = get_float m src in
          let r =
            match op with
            | Insn.FNEG -> -.a
            | Insn.FABS -> Float.abs a
            | Insn.FSQRT -> Float.sqrt a
            | Insn.FMOV -> a
          in
          set_float m dst (round_to_size dst r);
          m.pc <- next;
          None
      | Insn.Fmadd { sub; dst; src1; src2; acc } ->
          let a = get_float m src1
          and b = get_float m src2
          and c = get_float m acc in
          let r = if sub then c -. (a *. b) else c +. (a *. b) in
          set_float m dst (round_to_size dst r);
          m.pc <- next;
          None
      | Insn.Fcmp { src1; src2 } ->
          let a = get_float m src1 in
          let b = match src2 with Some r -> get_float m r | None -> 0.0 in
          if Float.is_nan a || Float.is_nan b then
            set_nzcv m ~n:false ~z:false ~c:true ~v:true
          else if a < b then set_nzcv m ~n:true ~z:false ~c:false ~v:false
          else if a = b then set_nzcv m ~n:false ~z:true ~c:true ~v:false
          else set_nzcv m ~n:false ~z:false ~c:true ~v:false;
          m.pc <- next;
          None
      | Insn.Fcvt { dst; src } ->
          set_float m dst (round_to_size dst (get_float m src));
          m.pc <- next;
          None
      | Insn.Scvtf { signed; dst; src } ->
          let v = get m src in
          let v =
            match Reg.width src with
            | Reg.W64 -> v
            | Reg.W32 -> if signed then sext32 v else Int64.logand v mask32
          in
          let f = if signed then Int64.to_float v else ucvtf_value v in
          set_float m dst (round_to_size dst f);
          m.pc <- next;
          None
      | Insn.Fcvtzs { signed; dst; src } ->
          set m dst (fcvtzs_value ~signed (Reg.width dst) (get_float m src));
          m.pc <- next;
          None
      | Insn.Fmov_to_fp { dst; src } ->
          (match dst.Reg.Fp.size with
          | Reg.Fp.D | Reg.Fp.Q -> m.vlo.(dst.Reg.Fp.n) <- get m src
          | Reg.Fp.S ->
              m.vlo.(dst.Reg.Fp.n) <- Int64.logand (get m src) mask32);
          m.pc <- next;
          None
      | Insn.Fmov_from_fp { dst; src } ->
          let v = m.vlo.(src.Reg.Fp.n) in
          set m dst
            (match src.Reg.Fp.size with
            | Reg.Fp.D | Reg.Fp.Q -> v
            | Reg.Fp.S -> Int64.logand v mask32);
          m.pc <- next;
          None
      | Insn.Nop | Insn.Dmb ->
          m.pc <- next;
          None
      | Insn.Mrs { dst; _ } ->
          set m dst 0L;
          m.pc <- next;
          None
      | Insn.Msr _ ->
          m.pc <- next;
          None
      | Insn.Svc n ->
          m.pc <- next;
          Some (Trap (Svc_trap n))
      | Insn.Udf _ -> Some (Trap (Undefined m.pc))

(** One instruction, letting {!Memory.Fault} escape — the quantum loop
    in {!run} installs a single handler for the whole quantum instead
    of one per step.  Returns [None] for normal completion (pc already
    updated) or [Some event]. *)
let step_raw (m : Machine.t) : event option =
  (* untagged compare: addresses are < 2^62, so [Int64.to_int] is exact
     (a pc with the top bits set goes to the fetch path and faults as
     unmapped, which is just as terminal) *)
  if Int64.to_int m.pc >= host_region_start_i then
    Some (Runtime_entry m.pc)
  else begin
    let insn = fetch_insn m in
    m.insns <- m.insns + 1;
    (match m.profile with
    | None -> ()
    | Some p ->
        if m.insns land p.Lfi_telemetry.Profile.mask = 0 then
          Lfi_telemetry.Profile.sample p (Int64.to_int m.pc));
    exec_insn m insn
  end

let count_fault (m : Machine.t) =
  match m.metrics with
  | None -> ()
  | Some t -> t.Lfi_telemetry.Metrics.faults <- t.Lfi_telemetry.Metrics.faults + 1

(** Execute exactly one instruction.  Returns [None] for normal
    completion (pc already updated) or [Some event]. *)
let step (m : Machine.t) : event option =
  try step_raw m
  with Memory.Fault f ->
    count_fault m;
    Some (Trap (Mem_fault f))

(** Run until an event occurs or [quantum] instructions have executed. *)
let run (m : Machine.t) ~(quantum : int) : event =
  let rec go n =
    if n <= 0 then Quantum_expired
    else match step_raw m with None -> go (n - 1) | Some e -> e
  in
  try go quantum
  with Memory.Fault f ->
    count_fault m;
    Trap (Mem_fault f)
