(** Superblock engine: lowering, block cache, and threaded dispatch.

    The single-step path in {!Interp} pays a fixed per-instruction tax
    — decode-cache probe, host-region check, boxed pc writes, operand
    matches — that dominates once the decode cache hits every time.
    This module removes it structurally: straight-line runs of decoded
    instructions are {e lowered} once into pre-resolved closures
    (register operands resolved to array indices, immediates
    pre-extended and pre-boxed, guard checks specialized into
    monomorphic fast paths), grouped into blocks keyed by entry pc, and
    executed back-to-back with a single bounds/translation check per
    block.  Blocks chain through [b_succ0]/[b_succ1], so a hot loop
    runs block-to-block without touching the hash table at all.

    Observational equivalence with {!Interp} is the design invariant
    (the golden differential suite runs both modes and demands
    bit-identical cycles):

    - costs are charged {e per instruction, in program order} from
      [b_costs] — never pre-summed, because float addition is not
      associative and TLB-walk charges interleave with them;
    - [m.insns] advances by the block's retired count at block
      boundaries, and a {!Memory.Fault} mid-block repairs both the
      count and [m.pc] from [m.blk_i] before re-raising;
    - flight-recorder events (taken branches, guard-clamp audits) are
      replicated inside the lowered closures with build-time pcs;
    - a block invalidated by its own store (self-modifying code on a
      W+X page) stops after the offending instruction, exactly where
      the step path would re-fetch;
    - anything needing finer observation ({!Machine.metrics},
      {!Machine.profile}, {!Machine.escape_oracle},
      {!Machine.overhead}) never reaches this module — {!Exec.run}
      deopts to the step loop first.  Overhead attribution in
      particular charges per fetched pc, so both dispatch modes
      produce identical site accounting: armed, they run the same
      step path; off, neither charges anything. *)

open Lfi_arm64
open Machine

let host_region_start_i = Interp.host_region_start_i

(* ------------------------------------------------------------------ *)
(* Lowering helpers                                                    *)
(* ------------------------------------------------------------------ *)

(** Guard-clamp audit for the [\[x21, wN, uxtw\]] addressing form,
    with the instruction's pc captured at build time (the dispatch
    loop does not maintain [m.pc] per instruction). *)
let[@inline] clamp_audit (m : Machine.t) (pci : int) (base : int64)
    (raw : int64) =
  match m.flight with
  | None -> ()
  | Some f ->
      let hi = Int64.to_int raw lsr 32 in
      if hi <> 0 && hi <> Int64.to_int base lsr 32 then
        Lfi_telemetry.Flight.clamp f pci (Int64.to_int raw)

(** Effective address inside a lowered closure: the guarded form runs
    the clamp audit against the captured pc; every other mode is
    pc-independent and delegates to {!Interp.addr_of}. *)
let[@inline] baddr_of (m : Machine.t) (pci : int) (a : Insn.addr) : int64 =
  match a with
  | Insn.Reg_off (Reg.R (Reg.W64, 21), Reg.R (_, n), Insn.Uxtw, amt) ->
      let base = Array.unsafe_get m.regs 21 in
      let raw = Array.unsafe_get m.regs n in
      clamp_audit m pci base raw;
      Int64.add base (Int64.shift_left (Int64.logand raw mask32) amt)
  | _ -> Interp.addr_of m a

(* Data access without the escape-oracle probe: the oracle forces a
   deopt in Exec.run, so block closures never run with it armed. *)
let[@inline] bread (m : Machine.t) (a : int64) (size : int) : int64 =
  charge_tlb m a;
  Memory.read m.mem a size

let[@inline] bwrite (m : Machine.t) (a : int64) (size : int) (v : int64) =
  charge_tlb m a;
  Memory.write m.mem a size v

(** Pre-resolve an ALU second operand.  Immediates become a captured
    pre-shifted boxed constant; a plain W64 register becomes an
    unchecked array load; the rest keep their exact step-path
    computation. *)
let lower_operand2 (w : Reg.width) (op2 : Insn.operand2) : Machine.t -> int64 =
  match op2 with
  | Insn.Imm (v, sh) ->
      let c = Int64.shift_left (Int64.of_int v) sh in
      fun _ -> c
  | Insn.Sh (Reg.R (Reg.W64, n), _, 0) ->
      (* shift by 0 is the identity at W64 for every shift kind *)
      fun m -> Array.unsafe_get m.regs n
  | Insn.Sh (r, k, a) -> fun m -> Interp.shift_value w k (get m r) a
  | Insn.Ext (r, e, a) ->
      fun m ->
        Interp.mask_w w (Int64.shift_left (Interp.extend_value e (get m r)) a)

(** Semi-generic ALU lowering: the op/flags dispatch and the operand
    shape are resolved at build time, leaving only the arithmetic in
    the closure.  [get]/[set] already apply the width masks the step
    path applies, so results are bit-identical. *)
let lower_alu (op : Insn.alu_op) (flags : bool) (dst : Reg.t) (src : Reg.t)
    (op2 : Insn.operand2) : Machine.t -> unit =
  let w = Reg.width dst in
  let o2 = lower_operand2 w op2 in
  match (op, flags) with
  | Insn.ADD, false -> fun m -> set m dst (Int64.add (get m src) (o2 m))
  | Insn.SUB, false -> fun m -> set m dst (Int64.sub (get m src) (o2 m))
  | Insn.ADD, true ->
      fun m -> set m dst (Interp.arith_flags m w ~sub:false (get m src) (o2 m))
  | Insn.SUB, true ->
      fun m -> set m dst (Interp.arith_flags m w ~sub:true (get m src) (o2 m))
  | Insn.AND, false -> fun m -> set m dst (Int64.logand (get m src) (o2 m))
  | Insn.AND, true ->
      fun m ->
        let r = Int64.logand (get m src) (o2 m) in
        Interp.logic_flags m w r;
        set m dst (Interp.mask_w w r)
  | Insn.ORR, _ -> fun m -> set m dst (Int64.logor (get m src) (o2 m))
  | Insn.EOR, _ -> fun m -> set m dst (Int64.logxor (get m src) (o2 m))
  | Insn.BIC, false ->
      fun m -> set m dst (Int64.logand (get m src) (Int64.lognot (o2 m)))
  | Insn.BIC, true ->
      fun m ->
        let r = Int64.logand (get m src) (Int64.lognot (o2 m)) in
        Interp.logic_flags m w r;
        set m dst (Interp.mask_w w r)
  | Insn.ORN, _ ->
      fun m -> set m dst (Int64.logor (get m src) (Int64.lognot (o2 m)))
  | Insn.EON, _ ->
      fun m -> set m dst (Int64.logxor (get m src) (Int64.lognot (o2 m)))

let ignore_op : Machine.t -> unit = fun _ -> ()

(** Bitfield moves (lsl/lsr/asr-immediate, uxtb/uxth, sxtb/sxth/sxtw,
    bfi/bfxil, …) have every parameter known at build time: precompute
    the field mask and shift amounts so the closure is two or three
    word ops.  Mirrors {!Interp.bitfield_result} bit for bit — in each
    specialized arm the field mask removes every source bit the step
    path's width mask would have removed, so raw register reads are
    safe. *)
let lower_bitfield (op : Insn.bf_op) (dst : Reg.t) (src : Reg.t) (immr : int)
    (imms : int) : Machine.t -> unit =
  let w = Reg.width dst in
  let bits = match w with Reg.W64 -> 64 | Reg.W32 -> 32 in
  let mk n = if n >= 64 then -1L else Int64.sub (Int64.shift_left 1L n) 1L in
  (* decoder invariant; the leak analyses above depend on it *)
  let ok = imms < bits && immr < bits in
  match (op, dst, src) with
  | Insn.UBFM, Reg.R (_, d), Reg.R (_, s) when ok && imms >= immr ->
      (* extract src[imms:immr] at bit 0; imms < bits, so [fmask]
         strips any bits the W32 source mask would have stripped *)
      let fmask = mk (imms - immr + 1) in
      fun m ->
        Array.unsafe_set m.regs d
          (Int64.logand
             (Int64.shift_right_logical (Array.unsafe_get m.regs s) immr)
             fmask)
  | Insn.UBFM, Reg.R (_, d), Reg.R (_, s) when ok ->
      (* insert src[imms:0] at bit (bits - immr); width + lsb <= bits,
         so the shifted field never leaves the destination width and
         no result mask is needed *)
      let fmask = mk (imms + 1) in
      let lsb = bits - immr in
      fun m ->
        Array.unsafe_set m.regs d
          (Int64.shift_left (Int64.logand (Array.unsafe_get m.regs s) fmask)
             lsb)
  | Insn.SBFM, Reg.R (_, d), Reg.R (_, s) when ok && imms >= immr -> (
      let width = imms - immr + 1 in
      let fmask = mk width in
      let sh = 64 - width in
      match w with
      | Reg.W64 ->
          fun m ->
            let fld =
              Int64.logand
                (Int64.shift_right_logical (Array.unsafe_get m.regs s) immr)
                fmask
            in
            Array.unsafe_set m.regs d
              (Int64.shift_right (Int64.shift_left fld sh) sh)
      | Reg.W32 ->
          fun m ->
            let fld =
              Int64.logand
                (Int64.shift_right_logical (Array.unsafe_get m.regs s) immr)
                fmask
            in
            Array.unsafe_set m.regs d
              (Int64.logand mask32
                 (Int64.shift_right (Int64.shift_left fld sh) sh)))
  | Insn.SBFM, Reg.R (_, d), Reg.R (_, s) when ok -> (
      let fmask = mk (imms + 1) in
      let sh = 64 - (imms + 1) in
      let lsb = bits - immr in
      match w with
      | Reg.W64 ->
          fun m ->
            let fld = Int64.logand (Array.unsafe_get m.regs s) fmask in
            Array.unsafe_set m.regs d
              (Int64.shift_left
                 (Int64.shift_right (Int64.shift_left fld sh) sh)
                 lsb)
      | Reg.W32 ->
          fun m ->
            let fld = Int64.logand (Array.unsafe_get m.regs s) fmask in
            Array.unsafe_set m.regs d
              (Int64.logand mask32
                 (Int64.shift_left
                    (Int64.shift_right (Int64.shift_left fld sh) sh)
                    lsb)))
  | _ ->
      (* BFM (reads the old destination), or a ZR/SP operand *)
      fun m ->
        set m dst
          (Interp.bitfield_result w op ~dst_old:(get m dst) ~src:(get m src)
             ~immr ~imms)

(** Lower one straight-line instruction at [pci] into a closure.

    Tier A: fully specialized monomorphic paths for the instructions
    that dominate rewriter output — W64 register/immediate ALU, the
    x21 guard add, mov-immediates, adr, and unsigned loads/stores with
    immediate offsets.  Tier B: shape-resolved closures that reuse the
    step path's helpers ([get]/[set], {!Interp.arith_flags}, …).
    Tier C (the [_] arm): capture the decoded instruction, restore
    [m.pc] (some semantics read it), and run {!Interp.exec_insn}. *)
let lower (pci : int) (insn : Insn.t) : Machine.t -> unit =
  match insn with
  (* --- the LFI guard: add xD, x21, wN, uxtw --- *)
  | Insn.Alu
      { op = Insn.ADD; flags = false; dst = Reg.R (Reg.W64, d);
        src = Reg.R (Reg.W64, 21); op2 = Insn.Ext (Reg.R (_, n), Insn.Uxtw, 0)
      } ->
      fun m ->
        Array.unsafe_set m.regs d
          (Int64.add (Array.unsafe_get m.regs 21)
             (Int64.logand (Array.unsafe_get m.regs n) mask32))
  (* --- W64 reg/reg ALU, unshifted --- *)
  | Insn.Alu
      { op; flags = false; dst = Reg.R (Reg.W64, d); src = Reg.R (Reg.W64, s);
        op2 = Insn.Sh (Reg.R (Reg.W64, s2), _, 0) } -> (
      match op with
      | Insn.ADD ->
          fun m ->
            Array.unsafe_set m.regs d
              (Int64.add (Array.unsafe_get m.regs s)
                 (Array.unsafe_get m.regs s2))
      | Insn.SUB ->
          fun m ->
            Array.unsafe_set m.regs d
              (Int64.sub (Array.unsafe_get m.regs s)
                 (Array.unsafe_get m.regs s2))
      | Insn.AND ->
          fun m ->
            Array.unsafe_set m.regs d
              (Int64.logand (Array.unsafe_get m.regs s)
                 (Array.unsafe_get m.regs s2))
      | Insn.ORR ->
          fun m ->
            Array.unsafe_set m.regs d
              (Int64.logor (Array.unsafe_get m.regs s)
                 (Array.unsafe_get m.regs s2))
      | Insn.EOR ->
          fun m ->
            Array.unsafe_set m.regs d
              (Int64.logxor (Array.unsafe_get m.regs s)
                 (Array.unsafe_get m.regs s2))
      | Insn.BIC ->
          fun m ->
            Array.unsafe_set m.regs d
              (Int64.logand (Array.unsafe_get m.regs s)
                 (Int64.lognot (Array.unsafe_get m.regs s2)))
      | Insn.ORN ->
          fun m ->
            Array.unsafe_set m.regs d
              (Int64.logor (Array.unsafe_get m.regs s)
                 (Int64.lognot (Array.unsafe_get m.regs s2)))
      | Insn.EON ->
          fun m ->
            Array.unsafe_set m.regs d
              (Int64.logxor (Array.unsafe_get m.regs s)
                 (Int64.lognot (Array.unsafe_get m.regs s2))))
  (* --- W64 reg/imm add/sub (address arithmetic) --- *)
  | Insn.Alu
      { op = (Insn.ADD | Insn.SUB) as op; flags = false;
        dst = Reg.R (Reg.W64, d); src = Reg.R (Reg.W64, s);
        op2 = Insn.Imm (iv, sh) } ->
      let c = Int64.shift_left (Int64.of_int iv) sh in
      if op = Insn.ADD then
        fun m ->
          Array.unsafe_set m.regs d (Int64.add (Array.unsafe_get m.regs s) c)
      else
        fun m ->
          Array.unsafe_set m.regs d (Int64.sub (Array.unsafe_get m.regs s) c)
  (* --- W32 reg/reg ALU, unshifted: one final mask replaces the
         per-operand masks (the low 32 result bits of +/-/logic depend
         only on the low 32 operand bits) --- *)
  | Insn.Alu
      { op; flags = false; dst = Reg.R (Reg.W32, d); src = Reg.R (Reg.W32, s);
        op2 = Insn.Sh (Reg.R (Reg.W32, s2), _, 0) } -> (
      match op with
      | Insn.ADD ->
          fun m ->
            Array.unsafe_set m.regs d
              (Int64.logand mask32
                 (Int64.add (Array.unsafe_get m.regs s)
                    (Array.unsafe_get m.regs s2)))
      | Insn.SUB ->
          fun m ->
            Array.unsafe_set m.regs d
              (Int64.logand mask32
                 (Int64.sub (Array.unsafe_get m.regs s)
                    (Array.unsafe_get m.regs s2)))
      | Insn.AND ->
          fun m ->
            Array.unsafe_set m.regs d
              (Int64.logand mask32
                 (Int64.logand (Array.unsafe_get m.regs s)
                    (Array.unsafe_get m.regs s2)))
      | Insn.ORR ->
          fun m ->
            Array.unsafe_set m.regs d
              (Int64.logand mask32
                 (Int64.logor (Array.unsafe_get m.regs s)
                    (Array.unsafe_get m.regs s2)))
      | Insn.EOR ->
          fun m ->
            Array.unsafe_set m.regs d
              (Int64.logand mask32
                 (Int64.logxor (Array.unsafe_get m.regs s)
                    (Array.unsafe_get m.regs s2)))
      | Insn.BIC ->
          fun m ->
            Array.unsafe_set m.regs d
              (Int64.logand mask32
                 (Int64.logand (Array.unsafe_get m.regs s)
                    (Int64.lognot (Array.unsafe_get m.regs s2))))
      | Insn.ORN ->
          fun m ->
            Array.unsafe_set m.regs d
              (Int64.logand mask32
                 (Int64.logor (Array.unsafe_get m.regs s)
                    (Int64.lognot (Array.unsafe_get m.regs s2))))
      | Insn.EON ->
          fun m ->
            Array.unsafe_set m.regs d
              (Int64.logand mask32
                 (Int64.logxor (Array.unsafe_get m.regs s)
                    (Int64.lognot (Array.unsafe_get m.regs s2)))))
  (* --- W32 reg/imm add/sub --- *)
  | Insn.Alu
      { op = (Insn.ADD | Insn.SUB) as op; flags = false;
        dst = Reg.R (Reg.W32, d); src = Reg.R (Reg.W32, s);
        op2 = Insn.Imm (iv, sh) } ->
      let c = Int64.shift_left (Int64.of_int iv) sh in
      if op = Insn.ADD then
        fun m ->
          Array.unsafe_set m.regs d
            (Int64.logand mask32 (Int64.add (Array.unsafe_get m.regs s) c))
      else
        fun m ->
          Array.unsafe_set m.regs d
            (Int64.logand mask32 (Int64.sub (Array.unsafe_get m.regs s) c))
  (* --- cmp/cmn (flag-setting add/sub into the zero register):
         arith_flags masks its operands itself, so raw register reads
         are fine --- *)
  | Insn.Alu
      { op = (Insn.ADD | Insn.SUB) as op; flags = true; dst = Reg.ZR w;
        src = Reg.R (_, s); op2 = Insn.Sh (Reg.R (w2, s2), _, 0) }
    when w2 = w ->
      let sub = op = Insn.SUB in
      fun m ->
        ignore
          (Interp.arith_flags m w ~sub (Array.unsafe_get m.regs s)
             (Array.unsafe_get m.regs s2))
  | Insn.Alu
      { op = (Insn.ADD | Insn.SUB) as op; flags = true; dst = Reg.ZR w;
        src = Reg.R (_, s); op2 = Insn.Imm (iv, sh) } ->
      let c = Int64.shift_left (Int64.of_int iv) sh in
      let sub = op = Insn.SUB in
      fun m ->
        ignore (Interp.arith_flags m w ~sub (Array.unsafe_get m.regs s) c)
  | Insn.Alu { op; flags; dst; src; op2 } -> lower_alu op flags dst src op2
  (* --- move-immediates: fold to a pre-boxed constant --- *)
  | Insn.Mov { op = Insn.MOVZ; dst; imm; hw } -> (
      let k = Int64.shift_left (Int64.of_int imm) (hw * 16) in
      match dst with
      | Reg.R (Reg.W64, d) -> fun m -> Array.unsafe_set m.regs d k
      | _ -> fun m -> set m dst k)
  | Insn.Mov { op = Insn.MOVN; dst; imm; hw } -> (
      let w = Reg.width dst in
      let k =
        Interp.mask_w w
          (Int64.lognot (Int64.shift_left (Int64.of_int imm) (hw * 16)))
      in
      match dst with
      | Reg.R (Reg.W64, d) -> fun m -> Array.unsafe_set m.regs d k
      | _ -> fun m -> set m dst k)
  | Insn.Mov { op = Insn.MOVK; dst; imm; hw } ->
      let w = Reg.width dst in
      let v = Int64.shift_left (Int64.of_int imm) (hw * 16) in
      let keep = Int64.lognot (Int64.shift_left 0xFFFFL (hw * 16)) in
      fun m ->
        set m dst (Interp.mask_w w (Int64.logor (Int64.logand (get m dst) keep) v))
  (* --- adr/adrp: the result is a build-time constant --- *)
  | Insn.Adr { page; dst; target = Insn.Off off } -> (
      let pc = Int64.of_int pci in
      let base = if page then Int64.logand pc (Int64.lognot 0xFFFL) else pc in
      let k = Int64.add base (Int64.of_int off) in
      match dst with
      | Reg.R (Reg.W64, d) -> fun m -> Array.unsafe_set m.regs d k
      | _ -> fun m -> set m dst k)
  (* --- unsigned loads, immediate offset --- *)
  | Insn.Ldr
      { sz = Insn.X; signed = false; dst = Reg.R (Reg.W64, d);
        addr = Insn.Imm_off (Reg.R (Reg.W64, bn), off) } ->
      let o = Int64.of_int off in
      fun m ->
        let a = Int64.add (Array.unsafe_get m.regs bn) o in
        charge_tlb m a;
        Array.unsafe_set m.regs d (Memory.read m.mem a 8)
  | Insn.Ldr
      { sz = (Insn.W | Insn.H | Insn.B) as sz; signed = false;
        dst = Reg.R (Reg.W32, d); addr = Insn.Imm_off (Reg.R (Reg.W64, bn), off)
      } ->
      let o = Int64.of_int off in
      let bytes = Insn.mem_bytes sz in
      fun m ->
        let a = Int64.add (Array.unsafe_get m.regs bn) o in
        charge_tlb m a;
        (* a read of <= 4 bytes is already < 2^32: the W32 write mask
           is the identity *)
        Array.unsafe_set m.regs d (Memory.read m.mem a bytes)
  (* --- guarded unsigned loads: ldr rD, [x21, wN, uxtw #s] --- *)
  | Insn.Ldr
      { sz; signed = false; dst = Reg.R (dw, d);
        addr = Insn.Reg_off (Reg.R (Reg.W64, 21), Reg.R (_, n), Insn.Uxtw, amt)
      }
    when (match (sz, dw) with
         | Insn.X, Reg.W64 -> true
         | (Insn.W | Insn.H | Insn.B), Reg.W32 -> true
         | _ -> false) ->
      let bytes = Insn.mem_bytes sz in
      fun m ->
        let base = Array.unsafe_get m.regs 21 in
        let raw = Array.unsafe_get m.regs n in
        clamp_audit m pci base raw;
        let a =
          Int64.add base (Int64.shift_left (Int64.logand raw mask32) amt)
        in
        charge_tlb m a;
        Array.unsafe_set m.regs d (Memory.read m.mem a bytes)
  (* --- stores, immediate offset --- *)
  | Insn.Str { sz; src; addr = Insn.Imm_off (Reg.R (Reg.W64, bn), off) } ->
      let o = Int64.of_int off in
      let bytes = Insn.mem_bytes sz in
      fun m ->
        let a = Int64.add (Array.unsafe_get m.regs bn) o in
        charge_tlb m a;
        Memory.write m.mem a bytes (get m src)
  (* --- guarded stores: str rS, [x21, wN, uxtw #s] --- *)
  | Insn.Str
      { sz; src;
        addr = Insn.Reg_off (Reg.R (Reg.W64, 21), Reg.R (_, n), Insn.Uxtw, amt)
      } ->
      let bytes = Insn.mem_bytes sz in
      fun m ->
        let base = Array.unsafe_get m.regs 21 in
        let raw = Array.unsafe_get m.regs n in
        clamp_audit m pci base raw;
        let a =
          Int64.add base (Int64.shift_left (Int64.logand raw mask32) amt)
        in
        charge_tlb m a;
        Memory.write m.mem a bytes (get m src)
  (* --- remaining loads/stores: shape-resolved, pc-free addressing --- *)
  | Insn.Ldr { sz; signed; dst; addr } ->
      let bytes = Insn.mem_bytes sz in
      let w = Reg.width dst in
      fun m ->
        let a = baddr_of m pci addr in
        let raw = bread m a bytes in
        Interp.writeback m addr a;
        set m dst (Interp.ld_result sz ~signed w raw)
  | Insn.Str { sz; src; addr } ->
      let bytes = Insn.mem_bytes sz in
      fun m ->
        let a = baddr_of m pci addr in
        bwrite m a bytes (get m src);
        Interp.writeback m addr a
  | Insn.Ldp { w; r1; r2; addr } ->
      let size = match w with Reg.W64 -> 8 | Reg.W32 -> 4 in
      let szL = Int64.of_int size in
      fun m ->
        let a = baddr_of m pci addr in
        let v1 = bread m a size in
        let v2 = bread m (Int64.add a szL) size in
        Interp.writeback m addr a;
        set m r1 v1;
        set m r2 v2
  | Insn.Stp { w; r1; r2; addr } ->
      let size = match w with Reg.W64 -> 8 | Reg.W32 -> 4 in
      let szL = Int64.of_int size in
      fun m ->
        let a = baddr_of m pci addr in
        bwrite m a size (get m r1);
        bwrite m (Int64.add a szL) size (get m r2);
        Interp.writeback m addr a
  | Insn.Fldr { dst; addr } ->
      let bytes = Reg.Fp.bytes dst in
      let n = dst.Reg.Fp.n in
      if bytes = 16 then
        fun m ->
          let a = baddr_of m pci addr in
          let lo = bread m a 8 and hi = bread m (Int64.add a 8L) 8 in
          Array.unsafe_set m.vlo n lo;
          Array.unsafe_set m.vhi n hi;
          Interp.writeback m addr a
      else
        fun m ->
          let a = baddr_of m pci addr in
          let v = bread m a bytes in
          Array.unsafe_set m.vlo n v;
          Array.unsafe_set m.vhi n 0L;
          Interp.writeback m addr a
  | Insn.Fstr { src; addr } ->
      let bytes = Reg.Fp.bytes src in
      let n = src.Reg.Fp.n in
      fun m ->
        let a = baddr_of m pci addr in
        (if bytes = 16 then begin
           bwrite m a 8 (Array.unsafe_get m.vlo n);
           bwrite m (Int64.add a 8L) 8 (Array.unsafe_get m.vhi n)
         end
         else
           bwrite m a bytes
             (if bytes = 4 then Int64.logand (Array.unsafe_get m.vlo n) mask32
              else Array.unsafe_get m.vlo n));
        Interp.writeback m addr a
  | Insn.Fldp { r1; r2; addr } ->
      let bytes = Reg.Fp.bytes r1 in
      let szL = Int64.of_int bytes in
      let n1 = r1.Reg.Fp.n and n2 = r2.Reg.Fp.n in
      fun m ->
        let a = baddr_of m pci addr in
        let rd n a =
          if bytes = 16 then begin
            Array.unsafe_set m.vlo n (bread m a 8);
            Array.unsafe_set m.vhi n (bread m (Int64.add a 8L) 8)
          end
          else begin
            Array.unsafe_set m.vlo n (bread m a bytes);
            Array.unsafe_set m.vhi n 0L
          end
        in
        rd n1 a;
        rd n2 (Int64.add a szL);
        Interp.writeback m addr a
  | Insn.Fstp { r1; r2; addr } ->
      let bytes = Reg.Fp.bytes r1 in
      let szL = Int64.of_int bytes in
      let n1 = r1.Reg.Fp.n and n2 = r2.Reg.Fp.n in
      fun m ->
        let a = baddr_of m pci addr in
        let wr n a =
          if bytes = 16 then begin
            bwrite m a 8 (Array.unsafe_get m.vlo n);
            bwrite m (Int64.add a 8L) 8 (Array.unsafe_get m.vhi n)
          end
          else
            bwrite m a bytes
              (if bytes = 4 then Int64.logand (Array.unsafe_get m.vlo n) mask32
               else Array.unsafe_get m.vlo n)
        in
        wr n1 a;
        wr n2 (Int64.add a szL);
        Interp.writeback m addr a
  | Insn.Ldxr { sz; dst; base } ->
      let bytes = Insn.mem_bytes sz in
      fun m ->
        let a = get m base in
        let v = bread m a bytes in
        m.exclusive <- Some a;
        set m dst v
  | Insn.Stxr { sz; status; src; base } ->
      let bytes = Insn.mem_bytes sz in
      fun m ->
        let a = get m base in
        (match m.exclusive with
        | Some e when Int64.equal e a ->
            bwrite m a bytes (get m src);
            set m status 0L
        | _ -> set m status 1L);
        m.exclusive <- None
  | Insn.Ldar { sz; dst; base } ->
      let bytes = Insn.mem_bytes sz in
      fun m -> set m dst (bread m (get m base) bytes)
  | Insn.Stlr { sz; src; base } ->
      let bytes = Insn.mem_bytes sz in
      fun m -> bwrite m (get m base) bytes (get m src)
  (* --- integer data-processing, shape-resolved --- *)
  | Insn.Shiftv { op; dst; src; amount } ->
      let w = Reg.width dst in
      let bmask =
        Int64.of_int ((match w with Reg.W64 -> 64 | Reg.W32 -> 32) - 1)
      in
      fun m ->
        let a = Int64.to_int (Int64.logand (get m amount) bmask) in
        set m dst (Interp.shift_value w op (get m src) a)
  | Insn.Bitfield { op; dst; src; immr; imms } ->
      lower_bitfield op dst src immr imms
  | Insn.Extr { dst; src1; src2; lsb } ->
      let w = Reg.width dst in
      let bits = match w with Reg.W64 -> 64 | Reg.W32 -> 32 in
      fun m ->
        let hi = Interp.mask_w w (get m src1)
        and lo = Interp.mask_w w (get m src2) in
        let r =
          if lsb = 0 then lo
          else
            Int64.logor
              (Int64.shift_right_logical lo lsb)
              (Int64.shift_left hi (bits - lsb))
        in
        set m dst (Interp.mask_w w r)
  | Insn.Madd { sub; dst; src1; src2; acc } ->
      let w = Reg.width dst in
      if sub then
        fun m ->
          let p = Int64.mul (get m src1) (get m src2) in
          set m dst (Interp.mask_w w (Int64.sub (get m acc) p))
      else
        fun m ->
          let p = Int64.mul (get m src1) (get m src2) in
          set m dst (Interp.mask_w w (Int64.add (get m acc) p))
  | Insn.Smulh { signed; dst; src1; src2 } ->
      fun m -> set m dst (Interp.mulh ~signed (get m src1) (get m src2))
  | Insn.Maddl { signed; sub; dst; src1; src2; acc } ->
      let widen v =
        if signed then Interp.sext32 (Int64.logand v mask32)
        else Int64.logand v mask32
      in
      fun m ->
        let p = Int64.mul (widen (get m src1)) (widen (get m src2)) in
        let r =
          if sub then Int64.sub (get m acc) p else Int64.add (get m acc) p
        in
        set m dst r
  | Insn.Ccmp { cmn; src; op2; nzcv; cond } ->
      let w = Reg.width src in
      fun m ->
        if cond_holds m cond then begin
          let b =
            match op2 with
            | Insn.CReg r -> get m r
            | Insn.CImm v -> Int64.of_int v
          in
          ignore (Interp.arith_flags m w ~sub:(not cmn) (get m src) b)
        end
        else
          set_nzcv m
            ~n:(nzcv land 8 <> 0)
            ~z:(nzcv land 4 <> 0)
            ~c:(nzcv land 2 <> 0)
            ~v:(nzcv land 1 <> 0)
  | Insn.Div { signed; dst; src1; src2 } ->
      let w = Reg.width dst in
      fun m ->
        let a = get m src1 and b = get m src2 in
        let a, b =
          match w with
          | Reg.W64 -> (a, b)
          | Reg.W32 ->
              if signed then (Interp.sext32 a, Interp.sext32 b)
              else (Interp.mask_w w a, Interp.mask_w w b)
        in
        let r =
          if Int64.equal b 0L then 0L
          else if signed then
            if Int64.equal a Int64.min_int && Int64.equal b (-1L) then
              Int64.min_int
            else Int64.div a b
          else Int64.unsigned_div a b
        in
        set m dst (Interp.mask_w w r)
  | Insn.Csel
      { op = Insn.CSINC; dst = Reg.R (_, d); src1 = Reg.ZR _;
        src2 = Reg.ZR _; cond } ->
      (* cset: materialize the (inverted) condition as 0/1 *)
      fun m ->
        Array.unsafe_set m.regs d (if cond_holds m cond then 0L else 1L)
  | Insn.Csel { op; dst; src1; src2; cond } ->
      let w = Reg.width dst in
      fun m ->
        let r =
          if cond_holds m cond then Interp.mask_w w (get m src1)
          else
            let b = Interp.mask_w w (get m src2) in
            match op with
            | Insn.CSEL -> b
            | Insn.CSINC -> Interp.mask_w w (Int64.add b 1L)
            | Insn.CSINV -> Interp.mask_w w (Int64.lognot b)
            | Insn.CSNEG -> Interp.mask_w w (Int64.neg b)
        in
        set m dst r
  | Insn.Cls { count_zero; dst; src } ->
      let w = Reg.width dst in
      fun m ->
        let v = Interp.mask_w w (get m src) in
        set m dst
          (Int64.of_int
             (if count_zero then Interp.clz_value w v else Interp.cls_value w v))
  | Insn.Rbit { dst; src } ->
      let w = Reg.width dst in
      fun m -> set m dst (Interp.rbit_value w (Interp.mask_w w (get m src)))
  | Insn.Rev { bytes; dst; src } ->
      let w = Reg.width dst in
      fun m ->
        set m dst
          (Interp.mask_w w (Interp.rev_value w bytes (Interp.mask_w w (get m src))))
  (* --- floating point, op resolved at build time --- *)
  | Insn.Fop2 { op; dst; src1; src2 } -> (
      match op with
      | Insn.FADD ->
          fun m ->
            set_float m dst
              (Interp.round_to_size dst (get_float m src1 +. get_float m src2))
      | Insn.FSUB ->
          fun m ->
            set_float m dst
              (Interp.round_to_size dst (get_float m src1 -. get_float m src2))
      | Insn.FMUL ->
          fun m ->
            set_float m dst
              (Interp.round_to_size dst (get_float m src1 *. get_float m src2))
      | Insn.FDIV ->
          fun m ->
            set_float m dst
              (Interp.round_to_size dst (get_float m src1 /. get_float m src2))
      | Insn.FMIN ->
          fun m ->
            set_float m dst
              (Interp.round_to_size dst
                 (Float.min (get_float m src1) (get_float m src2)))
      | Insn.FMAX ->
          fun m ->
            set_float m dst
              (Interp.round_to_size dst
                 (Float.max (get_float m src1) (get_float m src2))))
  | Insn.Fop1 { op; dst; src } -> (
      match op with
      | Insn.FNEG ->
          fun m -> set_float m dst (Interp.round_to_size dst (-.(get_float m src)))
      | Insn.FABS ->
          fun m ->
            set_float m dst (Interp.round_to_size dst (Float.abs (get_float m src)))
      | Insn.FSQRT ->
          fun m ->
            set_float m dst
              (Interp.round_to_size dst (Float.sqrt (get_float m src)))
      | Insn.FMOV ->
          fun m -> set_float m dst (Interp.round_to_size dst (get_float m src)))
  | Insn.Fmadd { sub; dst; src1; src2; acc } ->
      if sub then
        fun m ->
          let a = get_float m src1
          and b = get_float m src2
          and c = get_float m acc in
          set_float m dst (Interp.round_to_size dst (c -. (a *. b)))
      else
        fun m ->
          let a = get_float m src1
          and b = get_float m src2
          and c = get_float m acc in
          set_float m dst (Interp.round_to_size dst (c +. (a *. b)))
  | Insn.Fcmp { src1; src2 } ->
      fun m ->
        let a = get_float m src1 in
        let b = match src2 with Some r -> get_float m r | None -> 0.0 in
        if Float.is_nan a || Float.is_nan b then
          set_nzcv m ~n:false ~z:false ~c:true ~v:true
        else if a < b then set_nzcv m ~n:true ~z:false ~c:false ~v:false
        else if a = b then set_nzcv m ~n:false ~z:true ~c:true ~v:false
        else set_nzcv m ~n:false ~z:false ~c:true ~v:false
  | Insn.Fcvt { dst; src } ->
      fun m -> set_float m dst (Interp.round_to_size dst (get_float m src))
  | Insn.Scvtf { signed; dst; src } ->
      let sw = Reg.width src in
      fun m ->
        let v = get m src in
        let v =
          match sw with
          | Reg.W64 -> v
          | Reg.W32 ->
              if signed then Interp.sext32 v else Int64.logand v mask32
        in
        let f = if signed then Int64.to_float v else Interp.ucvtf_value v in
        set_float m dst (Interp.round_to_size dst f)
  | Insn.Fcvtzs { signed; dst; src } ->
      let w = Reg.width dst in
      fun m -> set m dst (Interp.fcvtzs_value ~signed w (get_float m src))
  | Insn.Fmov_to_fp { dst; src } -> (
      let n = dst.Reg.Fp.n in
      match dst.Reg.Fp.size with
      | Reg.Fp.D | Reg.Fp.Q -> fun m -> Array.unsafe_set m.vlo n (get m src)
      | Reg.Fp.S ->
          fun m -> Array.unsafe_set m.vlo n (Int64.logand (get m src) mask32))
  | Insn.Fmov_from_fp { dst; src } -> (
      let n = src.Reg.Fp.n in
      match src.Reg.Fp.size with
      | Reg.Fp.D | Reg.Fp.Q -> fun m -> set m dst (Array.unsafe_get m.vlo n)
      | Reg.Fp.S ->
          fun m -> set m dst (Int64.logand (Array.unsafe_get m.vlo n) mask32))
  (* --- system --- *)
  | Insn.Nop | Insn.Dmb | Insn.Msr _ -> ignore_op
  | Insn.Mrs { dst; _ } -> fun m -> set m dst 0L
  (* --- everything else (adr with an unresolved symbol, and any
         future instruction): restore pc and fall back to the
         reference interpreter --- *)
  | _ ->
      let pc = Int64.of_int pci in
      fun m ->
        m.pc <- pc;
        ignore (Interp.exec_insn m insn)

(* ------------------------------------------------------------------ *)
(* Block construction                                                  *)
(* ------------------------------------------------------------------ *)

let is_term (i : Insn.t) : bool =
  match i with
  | Insn.B _ | Insn.Bl _ | Insn.Bcond _ | Insn.Cbz _ | Insn.Tbz _ | Insn.Br _
  | Insn.Blr _ | Insn.Ret _ | Insn.Svc _ | Insn.Udf _ ->
      true
  | _ -> false

(* A branch whose target is still symbolic cannot be resolved at build
   time.  At k > 0 the block simply ends before it — the step path
   would have executed the preceding instructions first, and so do we;
   at k = 0 failing the build IS the execution attempt. *)
let has_sym_target (i : Insn.t) : bool =
  match i with
  | Insn.B (Insn.Sym _)
  | Insn.Bl (Insn.Sym _)
  | Insn.Bcond (_, Insn.Sym _)
  | Insn.Cbz { target = Insn.Sym _; _ }
  | Insn.Tbz { target = Insn.Sym _; _ } ->
      true
  | _ -> false

let make_term (tpc : int) (insn : Insn.t) : bterm =
  let next = tpc + 4 in
  match insn with
  | Insn.B (Insn.Off o) -> Tb { target = tpc + o; ti = tpc }
  | Insn.Bl (Insn.Off o) ->
      Tbl { target = tpc + o; ti = tpc; link = Int64.of_int next }
  | Insn.Bcond (c, Insn.Off o) ->
      Tbcond { cond = c; target = tpc + o; ti = tpc; next }
  | Insn.Cbz { nz; reg; target = Insn.Off o } ->
      Tcbz { nz; reg; target = tpc + o; ti = tpc; next }
  | Insn.Tbz { nz; reg; bit; target = Insn.Off o } ->
      Ttbz { nz; reg; bit; target = tpc + o; ti = tpc; next }
  | Insn.Br r -> Tbr { reg = r; ti = tpc }
  | Insn.Blr r -> Tblr { reg = r; ti = tpc; link = Int64.of_int next }
  | Insn.Ret r -> Tret { reg = r; ti = tpc }
  | Insn.Svc n -> Tsvc { n; next = Int64.of_int next }
  | Insn.Udf _ -> Tudf { pc = Int64.of_int tpc }
  | Insn.B (Insn.Sym s)
  | Insn.Bl (Insn.Sym s)
  | Insn.Bcond (_, Insn.Sym s)
  | Insn.Cbz { target = Insn.Sym s; _ }
  | Insn.Tbz { target = Insn.Sym s; _ } ->
      failwith ("unresolved symbol at execution: " ^ s)
  | _ -> assert false

(** Decode (through the shared per-page decode cache) the instruction
    at [pci] without charging cost or counting telemetry — charging
    happens at execution, from [b_costs].  [None] means the fetch
    would fault: at [k > 0] the block ends cleanly before the fault
    (the step path executes the preceding instructions first), while
    at [k = 0] the fault propagates exactly as a step-path fetch. *)
let fetch_decoded (m : Machine.t) (k : int) (pci : int) :
    (Insn.t * float) option =
  let pidx = pci lsr Memory.page_bits in
  let slot = (pci land (Memory.page_size - 1)) lsr 2 in
  if m.dc_idx <> pidx then Machine.decode_page m pidx;
  let i = Array.unsafe_get m.dc_arr slot in
  if i != Machine.undecoded then Some (i, Array.unsafe_get m.dc_cost slot)
  else
    match Memory.fetch m.mem (Int64.of_int pci) with
    | word ->
        let i = Decode.decode word in
        let c = Cost_model.cost m.uarch i in
        Array.unsafe_set m.dc_arr slot i;
        Array.unsafe_set m.dc_cost slot c;
        Some (i, c)
    | exception Memory.Fault _ when k > 0 -> None

let block_page (m : Machine.t) (idx : int) : bpage =
  match Hashtbl.find_opt m.blocks idx with
  | Some bp -> bp
  | None ->
      let bp =
        { bp_entries = Array.make Machine.decode_slots no_blk; bp_blocks = [] }
      in
      Hashtbl.replace m.blocks idx bp;
      bp

(** Lower and register the block entered at [pci].  Building is the
    execution attempt at that pc: the dispatch loop does not maintain
    [m.pc], so materialize it here first — a fetch fault (misaligned
    or unmapped entry) must leave [m.pc] at the faulting instruction,
    exactly like a step-path fetch. *)
let build (m : Machine.t) (pci : int) : blk =
  m.blk_builds <- m.blk_builds + 1;
  m.pc <- Int64.of_int pci;
  if pci land 3 <> 0 then
    raise
      (Memory.Fault
         { Memory.addr = Int64.of_int pci; access = Memory.Fetch;
           reason = "misaligned pc" });
  let ops = Array.make max_block_len ignore_op in
  let costs = Array.make (max_block_len + 1) 0.0 in
  let rec scan (k : int) (pc : int) : int * bterm =
    if k = max_block_len || pc >= host_region_start_i then
      (k, Tfall { next = pc })
    else
      match fetch_decoded m k pc with
      | None -> (k, Tfall { next = pc })
      | Some (insn, cost) ->
          if is_term insn then
            if has_sym_target insn && k > 0 then
              (k, Tfall { next = pc })
            else begin
              Array.unsafe_set costs k cost;
              (k, make_term pc insn)
            end
          else begin
            Array.unsafe_set costs k cost;
            Array.unsafe_set ops k (lower pc insn);
            scan (k + 1) (pc + 4)
          end
  in
  let nbody, term = scan 0 pci in
  let total = match term with Tfall _ -> nbody | _ -> nbody + 1 in
  (* entry is in sandbox code and its fetch succeeded (or raised), so
     a block always retires at least one instruction — a zero-length
     block would livelock the dispatch loop *)
  assert (total > 0);
  let ncosts = match term with Tfall _ -> nbody | _ -> nbody + 1 in
  let pidx = pci lsr Memory.page_bits in
  let lastpc = pci + (4 * (total - 1)) in
  let npages = if lastpc lsr Memory.page_bits <> pidx then 2 else 1 in
  let page_wx idx =
    match Memory.find_page_by_index m.mem idx with
    | None -> false
    | Some p ->
        let pm = Memory.page_perm p in
        pm.Memory.w && pm.Memory.x
  in
  let b =
    {
      b_pci = pci;
      b_len = total;
      b_body = Array.sub ops 0 nbody;
      b_costs = Array.sub costs 0 ncosts;
      b_term = term;
      b_pages = npages;
      b_wx = page_wx pidx || (npages > 1 && page_wx (pidx + 1));
      b_valid = true;
      b_succ0 = no_blk;
      b_succ1 = no_blk;
    }
  in
  let bp = block_page m pidx in
  let slot = (pci land (Memory.page_size - 1)) lsr 2 in
  Array.unsafe_set bp.bp_entries slot b;
  bp.bp_blocks <- b :: bp.bp_blocks;
  if b.b_pages > 1 then begin
    let bp2 = block_page m (pidx + 1) in
    bp2.bp_blocks <- b :: bp2.bp_blocks
  end;
  b

(** Find the block entered at [pci], building it on a miss.  The
    last-page pointer ([bp_idx]/[bp_arr]) makes the common case two
    compares and an array load. *)
let lookup (m : Machine.t) (pci : int) : blk =
  let pidx = pci lsr Memory.page_bits in
  if m.bp_idx <> pidx then begin
    let bp = block_page m pidx in
    m.bp_idx <- pidx;
    m.bp_arr <- bp.bp_entries
  end;
  let slot = (pci land (Memory.page_size - 1)) lsr 2 in
  let b = Array.unsafe_get m.bp_arr slot in
  if b.b_valid && b.b_pci = pci then b else build m pci

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let[@inline] flight_jump (m : Machine.t) (kind : int) (ti : int)
    (target : int) =
  match m.flight with
  | None -> ()
  | Some f -> Lfi_telemetry.Flight.record f kind ti target

(** Execute a block terminator: compute the next pc (returned as an
    untagged int — the dispatch loop only materializes the boxed
    [m.pc] at exit points), write the link register, and replicate the
    step path's flight-recorder events.  Trap terminators
    ([Tsvc]/[Tudf]) set [m.pc] themselves and return -1; the caller
    disambiguates -1 against the terminator kind, so a genuine
    indirect branch to pc -1 still dispatches (and faults) like the
    step path.  Never faults. *)
let exec_term (m : Machine.t) (t : bterm) : int =
  match t with
  | Tb { target; ti } ->
      flight_jump m Lfi_telemetry.Flight.k_branch ti target;
      target
  | Tbl { target; ti; link } ->
      Array.unsafe_set m.regs 30 link;
      flight_jump m Lfi_telemetry.Flight.k_call ti target;
      target
  | Tbcond { cond; target; ti; next } ->
      if cond_holds m cond then begin
        flight_jump m Lfi_telemetry.Flight.k_branch ti target;
        target
      end
      else next
  | Tcbz { nz; reg; target; ti; next } ->
      let v = Interp.mask_w (Reg.width reg) (get m reg) in
      let zero = Int64.equal v 0L in
      if (zero && not nz) || ((not zero) && nz) then begin
        flight_jump m Lfi_telemetry.Flight.k_branch ti target;
        target
      end
      else next
  | Ttbz { nz; reg; bit; target; ti; next } ->
      let b = Int64.logand (Int64.shift_right_logical (get m reg) bit) 1L in
      let taken = if nz then Int64.equal b 1L else Int64.equal b 0L in
      if taken then begin
        flight_jump m Lfi_telemetry.Flight.k_branch ti target;
        target
      end
      else next
  | Tbr { reg; ti } ->
      let t = Int64.to_int (get m reg) in
      flight_jump m Lfi_telemetry.Flight.k_branch ti t;
      t
  | Tblr { reg; ti; link } ->
      let t = Int64.to_int (get m reg) in
      Array.unsafe_set m.regs 30 link;
      flight_jump m Lfi_telemetry.Flight.k_call ti t;
      t
  | Tret { reg; ti } ->
      let t = Int64.to_int (get m reg) in
      flight_jump m Lfi_telemetry.Flight.k_ret ti t;
      t
  | Tsvc { n = _; next } ->
      m.pc <- next;
      -1
  | Tudf { pc } ->
      m.pc <- pc;
      -1
  | Tfall _ -> assert false

(* Straight-line body ops on a W+X block: charge the instruction's
   cost, record the index for fault repair, execute, and re-check
   [b_valid] — one of our own stores may have invalidated the block.
   Returns the number of ops completed; on early stop the caller
   re-dispatches at the next pc, which re-lowers from the freshly
   written bytes, exactly like the step path's next fetch. *)
let rec body_loop (m : Machine.t) (b : blk) (body : (Machine.t -> unit) array)
    (costs : float array) (n : int) (i : int) : int =
  if i >= n then n
  else begin
    add_cycles m (Array.unsafe_get costs i);
    m.blk_i <- i;
    (Array.unsafe_get body i) m;
    if b.b_valid then body_loop m b body costs n (i + 1) else i + 1
  end

(* The common case: no overlapped page is writable+executable, so the
   block cannot be invalidated mid-execution (host-side permission
   changes invalidate before any further sandbox instruction runs) and
   the per-op validity check is dropped. *)
let rec body_fast (m : Machine.t) (body : (Machine.t -> unit) array)
    (costs : float array) (n : int) (i : int) : unit =
  if i < n then begin
    add_cycles m (Array.unsafe_get costs i);
    m.blk_i <- i;
    (Array.unsafe_get body i) m;
    body_fast m body costs n (i + 1)
  end

(* Retire the terminator after a fully-executed body of [n] ops;
   returns the next pc (or -1 for a trap terminator). *)
let[@inline] finish_block (m : Machine.t) (b : blk) (n : int) : int =
  match b.b_term with
  | Tfall { next } ->
      m.insns <- m.insns + n;
      m.blk_insns <- m.blk_insns + n;
      next
  | term ->
      add_cycles m (Array.unsafe_get b.b_costs n);
      m.insns <- m.insns + n + 1;
      m.blk_insns <- m.blk_insns + n + 1;
      exec_term m term

(** Run one block to completion (or to its self-invalidation point);
    returns the next pc as an untagged int, or -1 for a trap
    terminator (which has set [m.pc]).  On a memory fault the
    instruction count and pc are repaired to the faulting instruction
    — bit-identical to the step path, which counts an instruction
    before executing it — and the fault re-raised for {!run}'s single
    handler. *)
let exec_block (m : Machine.t) (b : blk) : int =
  m.blk_execs <- m.blk_execs + 1;
  let body = b.b_body in
  let n = Array.length body in
  try
    if b.b_wx then begin
      let c = body_loop m b body b.b_costs n 0 in
      if b.b_valid then finish_block m b n
      else begin
        (* invalidated mid-block by one of our own stores: resume at
           the next pc, which re-lowers the freshly written bytes *)
        m.insns <- m.insns + c;
        m.blk_insns <- m.blk_insns + c;
        b.b_pci + (4 * c)
      end
    end
    else begin
      body_fast m body b.b_costs n 0;
      finish_block m b n
    end
  with Memory.Fault _ as e ->
    let k = m.blk_i in
    m.insns <- m.insns + k + 1;
    m.blk_insns <- m.blk_insns + k + 1;
    m.pc <- Int64.of_int (b.b_pci + (4 * k));
    raise e

(** Block-dispatch quantum loop: the {!Exec.run} fast path.

    Each iteration does one bounds/translation check (host region +
    quantum budget), then runs a whole block.  Chain links are tried
    before the block table; a quantum tail too short for the next
    block is single-stepped through {!Interp.step_raw} so the quantum
    boundary lands on exactly the same instruction as the step path —
    per-call instruction budgets (libbox) kill at identical counts in
    both modes. *)
let run (m : Machine.t) ~(quantum : int) : Interp.event =
  let rec dispatch (pci : int) (remaining : int) : Interp.event =
    if remaining <= 0 then begin
      m.pc <- Int64.of_int pci;
      Interp.Quantum_expired
    end
    else if pci >= host_region_start_i then begin
      let pc = Int64.of_int pci in
      m.pc <- pc;
      Interp.Runtime_entry pc
    end
    else enter (lookup m pci) pci remaining
  and chain (prev : blk) (pci : int) (remaining : int) : Interp.event =
    if remaining <= 0 then begin
      m.pc <- Int64.of_int pci;
      Interp.Quantum_expired
    end
    else if pci >= host_region_start_i then begin
      let pc = Int64.of_int pci in
      m.pc <- pc;
      Interp.Runtime_entry pc
    end
    else begin
      let s0 = prev.b_succ0 in
      if s0.b_valid && s0.b_pci = pci then enter s0 pci remaining
      else
        let s1 = prev.b_succ1 in
        if s1.b_valid && s1.b_pci = pci then enter s1 pci remaining
        else begin
          let nb = lookup m pci in
          if not prev.b_succ0.b_valid then prev.b_succ0 <- nb
          else prev.b_succ1 <- nb;
          enter nb pci remaining
        end
    end
  and enter (b : blk) (pci : int) (remaining : int) : Interp.event =
    if b.b_len <= remaining then begin
      let before = m.insns in
      let npc = exec_block m b in
      if npc <> -1 then chain b npc (remaining - (m.insns - before))
      else
        match b.b_term with
        | Tsvc { n; _ } -> Interp.Trap (Interp.Svc_trap n)
        | Tudf { pc } -> Interp.Trap (Interp.Undefined pc)
        | _ ->
            (* a genuine branch whose target truncates to -1: dispatch
               there and fault exactly like the step path's next fetch *)
            chain b npc (remaining - (m.insns - before))
    end
    else begin
      (* quantum tail: not enough budget for the whole block *)
      m.blk_deopts <- m.blk_deopts + 1;
      m.pc <- Int64.of_int pci;
      tail remaining
    end
  and tail (remaining : int) : Interp.event =
    if remaining <= 0 then Interp.Quantum_expired
    else
      match Interp.step_raw m with
      | None -> tail (remaining - 1)
      | Some e -> e
  in
  try dispatch (Int64.to_int m.pc) quantum
  with Memory.Fault f ->
    Interp.count_fault m;
    Interp.Trap (Interp.Mem_fault f)
