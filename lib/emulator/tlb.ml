(** A small direct-mapped TLB model.

    Used to reproduce the paper's virtualization comparison (Figure 5):
    under hardware-assisted virtualization "the cost of a TLB miss is
    doubled due to the additional pagetable levels" (Section 6.4).  The
    emulator looks every data access up here; misses charge the page
    walk cost, multiplied by [nested_walk_factor] when the machine
    simulates a guest behind nested page tables.

    Entries are untagged page numbers in a flat [int array] sized to a
    power of two, so the per-access lookup is an untagged shift, a mask
    and an array compare — no boxed [int64] arithmetic on the emulator's
    hot path.  Slot selection by mask agrees with the previous
    modulo-based mapping for power-of-two sizes, so modeled miss counts
    (and hence cycle totals) are unchanged. *)

type t = {
  entries : int array;  (** page number per slot; -1 = invalid *)
  mask : int;  (** slot mask; [Array.length entries - 1] *)
  mutable hits : int;
  mutable misses : int;
}

let rec pow2_ge n k = if k >= n then k else pow2_ge n (k * 2)

let create ~entries =
  let n = pow2_ge entries 1 in
  { entries = Array.make n (-1); mask = n - 1; hits = 0; misses = 0 }

let clear t =
  Array.fill t.entries 0 (Array.length t.entries) (-1);
  t.hits <- 0;
  t.misses <- 0

(** Look up the page of [addr]; returns [true] on a hit and installs
    the translation on a miss. *)
let[@inline] access (t : t) (addr : int64) : bool =
  let page = Int64.to_int addr lsr Memory.page_bits in
  let slot = page land t.mask in
  if Array.unsafe_get t.entries slot = page then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    Array.unsafe_set t.entries slot page;
    t.misses <- t.misses + 1;
    false
  end

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total
