(** Execution facade: the runtime's entry point into the emulator.

    Re-exports the single-step interpreter ({!Interp}: [step],
    [exec_insn], the [event]/[trap] types) and routes whole quanta
    ({!run}) to the superblock engine ({!Block}) when nothing needs
    per-instruction observability.

    Deopt triggers — any of these forces the step path for the whole
    quantum (DESIGN.md §5f):
    - [m.metrics] armed: per-instruction class counts and decode-cache
      telemetry only exist on the step path;
    - [m.profile] armed: the pc-sampling profiler needs [m.pc] and
      [m.insns] maintained every instruction;
    - [m.escape_oracle] armed: the fuzzing oracle checks every data
      access and branch target;
    - [m.overhead] armed: per-site cycle attribution charges at fetch
      time, which only the step path performs per instruction;
    - [m.blocks_enabled = false]: the per-machine kill switch
      (seeded from [LFI_SUPERBLOCKS]).

    The flight recorder is NOT a deopt trigger: it is on by default in
    production configs, so lowered blocks replicate its events
    (taken-branch records, guard-clamp audits) exactly instead. *)

include Interp

let[@inline] blocks_armed (m : Machine.t) : bool =
  m.Machine.blocks_enabled
  && (match m.Machine.metrics with None -> true | Some _ -> false)
  && (match m.Machine.profile with None -> true | Some _ -> false)
  && (match m.Machine.escape_oracle with None -> true | Some _ -> false)
  && (match m.Machine.overhead with None -> true | Some _ -> false)

(** Run until an event occurs or [quantum] instructions have executed. *)
let run (m : Machine.t) ~(quantum : int) : event =
  if blocks_armed m then Block.run m ~quantum
  else begin
    if m.Machine.blocks_enabled then
      m.Machine.blk_deopts <- m.Machine.blk_deopts + 1;
    Interp.run m ~quantum
  end
