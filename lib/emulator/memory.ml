(** Sparse, page-protected 64-bit memory.

    Pages are 16KiB — the page size on Apple ARM64 machines, which is
    why the paper sizes guard regions at 48KiB (the smallest multiple of
    16KiB greater than 2^15 + 2^10).  Each page carries read / write /
    execute permissions; unmapped or mis-permissioned accesses fault,
    which is what makes the sandbox guard regions effective.

    Lookups go through a direct-mapped {e translation cache}: an
    [tc_size]-entry array keyed by page index whose entries hold the
    page and its permissions precomputed as a bitmask, so the hot
    load/store/fetch path is an array probe plus a bit test instead of
    a hash-table lookup.  Any mapping or permission change flushes the
    cache and fires [on_code_change], the invalidation hook the
    emulator's decode cache registers (see {!Machine.create}): stale
    translations and stale decoded instructions are impossible by
    construction. *)

let page_bits = 14
let page_size = 1 lsl page_bits (* 16 KiB *)

type perm = { r : bool; w : bool; x : bool }

let perm_rw = { r = true; w = true; x = false }
let perm_r = { r = true; w = false; x = false }
let perm_rx = { r = true; w = false; x = true }

type page = {
  mutable perm : perm;
  data : Bytes.t;
  mutable dirty : bool;
      (** set on every store into the page; consumers (snapshot-based
          reset, see [lib/libbox]) clear it at their baseline and later
          restore only pages whose flag came back on.  A single
          unconditional store on the write path — cheaper than any
          branch or handle indirection. *)
}

type access = Read | Write | Fetch

type fault = { addr : int64; access : access; reason : string }

exception Fault of fault

let access_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Fetch -> "fetch"

let pp_fault fmt f =
  Format.fprintf fmt "%s fault at 0x%Lx (%s)"
    (access_to_string f.access)
    f.addr f.reason

(* Permission bitmask: bit 0 = read, bit 1 = write, bit 2 = execute.
   Matches the [access] order used by [get_page]. *)
let pb_r = 1
let pb_w = 2
let pb_x = 4

let perm_bits (p : perm) =
  (if p.r then pb_r else 0)
  lor (if p.w then pb_w else 0)
  lor if p.x then pb_x else 0

(* Translation-cache geometry: 256 entries x 16KiB pages = 4MiB of
   reach, comfortably covering a proxy workload's working set. *)
let tc_size = 256
let tc_mask = tc_size - 1

let dummy_page =
  { perm = { r = false; w = false; x = false };
    data = Bytes.create 0;
    dirty = false }

type t = {
  pages : (int, page) Hashtbl.t;
  (* direct-mapped translation cache, keyed by page index *)
  tc_idx : int array;  (** cached page index per slot; -1 = invalid *)
  tc_page : page array;  (** valid iff [tc_idx] matches *)
  tc_bits : int array;  (** [perm_bits] of the cached page *)
  mutable tc_hits : int;
      (** translation-cache hit/miss counters; flat mutable ints kept
          unconditionally, like {!Tlb.t}'s — an increment is cheaper
          than a telemetry-handle branch on this path *)
  mutable tc_misses : int;
  mutable on_code_change : int64 -> int -> unit;
      (** invalidation hook: [on_code_change addr len] is fired after
          any operation that can change what a fetch from
          [addr, addr+len) would observe — map / unmap / protect of the
          range, or a write into an executable page *)
}

let create () =
  {
    pages = Hashtbl.create 1024;
    tc_idx = Array.make tc_size (-1);
    tc_page = Array.make tc_size dummy_page;
    tc_bits = Array.make tc_size 0;
    tc_hits = 0;
    tc_misses = 0;
    on_code_change = (fun _ _ -> ());
  }

let page_index (addr : int64) = Int64.to_int (Int64.shift_right_logical addr page_bits)
let page_offset (addr : int64) = Int64.to_int addr land (page_size - 1)

let fault addr access reason = raise (Fault { addr; access; reason })

let tc_flush m = Array.fill m.tc_idx 0 tc_size (-1)

let code_changed m (addr : int64) (len : int) = m.on_code_change addr len

(** Map [len] bytes starting at [addr] (both page-aligned) with [perm].
    Already-mapped pages are re-protected, not cleared. *)
let map m ~(addr : int64) ~(len : int) ~(perm : perm) =
  if page_offset addr <> 0 then invalid_arg "Memory.map: unaligned address";
  if len mod page_size <> 0 then invalid_arg "Memory.map: unaligned length";
  let first = page_index addr in
  for i = first to first + (len / page_size) - 1 do
    match Hashtbl.find_opt m.pages i with
    | Some p -> p.perm <- perm
    | None ->
        Hashtbl.replace m.pages i
          { perm; data = Bytes.make page_size '\000'; dirty = true }
  done;
  tc_flush m;
  code_changed m addr len

let unmap m ~(addr : int64) ~(len : int) =
  if page_offset addr <> 0 || len mod page_size <> 0 then
    invalid_arg "Memory.unmap: unaligned";
  let first = page_index addr in
  for i = first to first + (len / page_size) - 1 do
    Hashtbl.remove m.pages i
  done;
  tc_flush m;
  code_changed m addr len

let is_mapped m (addr : int64) = Hashtbl.mem m.pages (page_index addr)

(** Change the protection of every page overlapping [addr, addr+len).
    [len] is rounded up to whole pages; [len = 0] is a no-op. *)
let protect m ~(addr : int64) ~(len : int) ~(perm : perm) =
  if len < 0 then invalid_arg "Memory.protect: negative length";
  if len > 0 then begin
    let first = page_index addr in
    let last = page_index (Int64.add addr (Int64.of_int (len - 1))) in
    for i = first to last do
      match Hashtbl.find_opt m.pages i with
      | Some p -> p.perm <- perm
      | None -> invalid_arg "Memory.protect: unmapped page"
    done;
    tc_flush m;
    code_changed m addr len
  end

(** Re-protect a single page by index (used by fork to clone page
    permissions); goes through the same invalidation as {!protect}. *)
let set_page_perm m (idx : int) (perm : perm) =
  match Hashtbl.find_opt m.pages idx with
  | None -> invalid_arg "Memory.set_page_perm: unmapped page"
  | Some p ->
      p.perm <- perm;
      tc_flush m;
      code_changed m (Int64.shift_left (Int64.of_int idx) page_bits) page_size

(* The translation-cache lookup: one array probe + one bit test on a
   hit; misses fill the slot from the page table.  The page index is
   computed with untagged int arithmetic (addresses fit in 63 bits, and
   [lsr] on a negative int still yields the non-negative index the
   unmapped-page fault path expects). *)
let[@inline] get_page m (addr : int64) (access : access) : page =
  let idx = Int64.to_int addr lsr page_bits in
  let slot = idx land tc_mask in
  let bit = match access with Read -> pb_r | Write -> pb_w | Fetch -> pb_x in
  if Array.unsafe_get m.tc_idx slot = idx then begin
    m.tc_hits <- m.tc_hits + 1;
    if Array.unsafe_get m.tc_bits slot land bit = 0 then
      fault addr access
        (match access with
        | Read -> "no read permission"
        | Write -> "no write permission"
        | Fetch -> "not executable");
    Array.unsafe_get m.tc_page slot
  end
  else begin
    m.tc_misses <- m.tc_misses + 1;
    match Hashtbl.find_opt m.pages idx with
    | None -> fault addr access "unmapped"
    | Some p ->
        m.tc_idx.(slot) <- idx;
        m.tc_page.(slot) <- p;
        m.tc_bits.(slot) <- perm_bits p.perm;
        if perm_bits p.perm land bit = 0 then
          fault addr access
            (match access with
            | Read -> "no read permission"
            | Write -> "no write permission"
            | Fetch -> "not executable");
        p
  end

(* Writes into an executable page must invalidate decoded instructions
   covering it.  Pages are almost never writable+executable, so the
   check is a single bit test in practice. *)
let[@inline] wx_invalidate m (p : page) (addr : int64) (len : int) =
  if p.perm.x then code_changed m addr len

(* Single-byte primitives; multi-byte accesses may cross pages. *)

let read_u8 m addr =
  let p = get_page m addr Read in
  Bytes.get_uint8 p.data (page_offset addr)

let write_u8 m addr v =
  let p = get_page m addr Write in
  p.dirty <- true;
  wx_invalidate m p addr 1;
  Bytes.set_uint8 p.data (page_offset addr) v

(** Read [size] (1/2/4/8) bytes little-endian as an unsigned Int64
    (fully represented; 8-byte reads use the native int64 range). *)
let read m (addr : int64) (size : int) : int64 =
  let off = page_offset addr in
  if off + size <= page_size then begin
    let p = get_page m addr Read in
    match size with
    | 8 -> Bytes.get_int64_le p.data off
    | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le p.data off)) 0xFFFFFFFFL
    | 2 -> Int64.of_int (Bytes.get_uint16_le p.data off)
    | 1 -> Int64.of_int (Bytes.get_uint8 p.data off)
    | _ -> invalid_arg "Memory.read: bad size"
  end
  else begin
    (* page-crossing: byte by byte *)
    let v = ref 0L in
    for i = size - 1 downto 0 do
      let b = read_u8 m (Int64.add addr (Int64.of_int i)) in
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
    done;
    !v
  end

let write m (addr : int64) (size : int) (v : int64) =
  let off = page_offset addr in
  if off + size <= page_size then begin
    let p = get_page m addr Write in
    p.dirty <- true;
    wx_invalidate m p addr size;
    match size with
    | 8 -> Bytes.set_int64_le p.data off v
    | 4 -> Bytes.set_int32_le p.data off (Int64.to_int32 v)
    | 2 -> Bytes.set_uint16_le p.data off (Int64.to_int v land 0xffff)
    | 1 -> Bytes.set_uint8 p.data off (Int64.to_int v land 0xff)
    | _ -> invalid_arg "Memory.write: bad size"
  end
  else
    for i = 0 to size - 1 do
      write_u8 m
        (Int64.add addr (Int64.of_int i))
        (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
    done

(** Fetch a 4-byte instruction word (requires execute permission). *)
let fetch m (addr : int64) : int =
  if Int64.logand addr 3L <> 0L then fault addr Fetch "misaligned pc";
  let p = get_page m addr Fetch in
  Int32.to_int (Bytes.get_int32_le p.data (page_offset addr)) land 0xFFFFFFFF

(** Bulk copy-in (for loaders). *)
let write_bytes m (addr : int64) (b : bytes) =
  Bytes.iteri
    (fun i c -> write_u8 m (Int64.add addr (Int64.of_int i)) (Char.code c))
    b

let read_bytes m (addr : int64) (len : int) : bytes =
  Bytes.init len (fun i ->
      Char.chr (read_u8 m (Int64.add addr (Int64.of_int i))))

(** Copy [len] bytes between two mapped regions (used by fork). *)
let copy m ~src ~dst ~len =
  for i = 0 to len - 1 do
    let o = Int64.of_int i in
    write_u8 m (Int64.add dst o) (read_u8 m (Int64.add src o))
  done

(** List of mapped page indices (ascending); used by fork to copy a
    sandbox without touching unmapped guard regions. *)
let mapped_pages m =
  Hashtbl.fold (fun idx p acc -> (idx, p) :: acc) m.pages []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let page_data (p : page) = p.data
let page_perm (p : page) = p.perm
let page_dirty (p : page) = p.dirty
let page_clear_dirty (p : page) = p.dirty <- false

(** Find a mapped page by index (used by fork's bulk copy). *)
let find_page_by_index m (idx : int) = Hashtbl.find_opt m.pages idx

(** Unordered iteration over mapped pages, for order-insensitive scans
    that should not pay {!mapped_pages}' sort and list allocation. *)
let iter_pages m (f : int -> page -> unit) = Hashtbl.iter f m.pages
