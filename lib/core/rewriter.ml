(** The LFI assembly rewriter (Sections 3-5.1 of the paper).

    Consumes parsed GNU assembly (as produced by any compiler invoked
    with [-ffixed-x18 -ffixed-x21 ... ] so that the reserved registers
    are free) and inserts SFI guards so that the output passes the
    static verifier:

    - loads/stores through arbitrary registers are rewritten to the
      guarded forms of Table 3 (O1+) or the basic [add x18, x21, wN,
      uxtw] guard (O0 and instructions without register-offset forms);
    - stack-pointer writes are guarded with the two-instruction
      [mov w22, wsp; add sp, x21, x22] sequence, except where the
      pre/post-index and same-basic-block optimizations of §4.2 apply;
    - loads that write x30 are followed by an x30 guard; indirect
      branches go through a guarded x18;
    - [svc #n] system calls are lowered to the trampoline-free
      runtime-call sequence [ldr x30, \[x21, #8n\]; blr x30] (§4.4);
    - at O2, redundant guards are eliminated by hoisting a guarded base
      into x23/x24 (§4.3);
    - [tbz]/[tbnz] (±32KiB reach) and conditional branches that the
      inserted guards push out of range are relaxed to a two-instruction
      sequence (§5.1 "Difficulties"). *)

open Lfi_arm64
module Overhead = Lfi_telemetry.Overhead

exception Error of string

let errorf fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(** One entry of the overhead-attribution site table: an instruction
    the rewriter inserted or modified, by position.  Indices are
    resolved to addresses by {!resolve_sites} once the final layout is
    known. *)
type site = {
  s_out : int;  (** instruction index in the rewritten source *)
  s_cat : Overhead.category;
  s_inserted : bool;  (** inserted (pure tax) vs modified in place *)
  s_orig : int;  (** instruction index in the pre-rewrite source *)
}

type stats = {
  mutable input_insns : int;
  mutable output_insns : int;
  mutable guards : int;  (** guard instructions inserted *)
  mutable hoists : int;  (** hoisting groups created *)
  mutable sp_guards_elided : int;
  mutable branches_relaxed : int;
  mutable sites : site list;
      (** overhead site table, in output order (see {!site}) *)
}

let empty_stats () =
  { input_insns = 0; output_insns = 0; guards = 0; hoists = 0;
    sp_guards_elided = 0; branches_relaxed = 0; sites = [] }

(* Registers of the scheme. *)
let x21 = Reg.x 21
let x18 = Reg.x 18
let w22 = Reg.w 22
let wsp = Reg.wsp
let sp = Reg.sp
let x30 = Reg.x 30
let w30 = Reg.w 30
let hoist_regs = [| Reg.x 23; Reg.x 24 |]

let w_of r =
  match r with
  | Reg.R (_, n) -> Reg.R (Reg.W32, n)
  | Reg.SP _ -> Reg.SP Reg.W32
  | Reg.ZR _ -> Reg.ZR Reg.W32

(** [add xD, x21, wN, uxtw] — the fundamental guard: forces the top 32
    bits of a pointer to equal the sandbox base. *)
let addr_guard dst src_base =
  Insn.Alu
    { op = Insn.ADD; flags = false; dst; src = x21;
      op2 = Insn.Ext (w_of src_base, Insn.Uxtw, 0) }

(** The x30 guard inserted after instructions that load the link
    register from memory. *)
let lr_guard = addr_guard x30 x30

(** The two-instruction stack-pointer guard of §4.2:
    [mov w22, wsp; add sp, x21, x22]. *)
let sp_guard =
  [ Insn.Alu { op = Insn.ADD; flags = false; dst = w22; src = wsp;
               op2 = Insn.Imm (0, 0) };
    Insn.Alu { op = Insn.ADD; flags = false; dst = sp; src = x21;
               op2 = Insn.Ext (Reg.x 22, Insn.Uxtx, 0) } ]

(** Is this instruction exactly the guarded write [add xR, x21, wN,
    uxtw] for reserved register [r]? (Shared with the verifier.) *)
let is_addr_guard_for (r : Reg.t) = function
  | Insn.Alu
      { op = Insn.ADD; flags = false; dst;
        src = Reg.R (Reg.W64, 21);
        op2 = Insn.Ext (Reg.R (Reg.W32, _), Insn.Uxtw, 0) } ->
      Reg.equal dst r
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Input validation                                                    *)
(* ------------------------------------------------------------------ *)

let reserved_mentioned (i : Insn.t) =
  List.find_opt
    (fun r ->
      match Reg.number_of r with
      | Some n -> List.mem n Reg.reserved_numbers
      | None -> false)
    (Insn.regs_mentioned i)

let check_input (src : Source.t) =
  List.iter
    (function
      | Source.Insn i -> (
          match reserved_mentioned i with
          | Some r ->
              errorf
                "input uses reserved register %s in %S (compile with \
                 -ffixed-x18 -ffixed-x21 -ffixed-x22 -ffixed-x23 \
                 -ffixed-x24)"
                (Reg.to_string r) (Printer.to_string i)
          | None -> ())
      | _ -> ())
    src

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

(** Emit [w22 := wBase + i] using one or two 32-bit add/sub immediates
    (Table 3 uses a single add; larger offsets take two). *)
let materialize_offset32 (base : Reg.t) (i : int) : Insn.t list =
  let wb = w_of base in
  let mk op v src =
    Insn.Alu { op; flags = false; dst = w22; src; op2 = Insn.Imm (v, 0) }
  in
  let mk_hi op v src =
    Insn.Alu { op; flags = false; dst = w22; src; op2 = Insn.Imm (v, 12) }
  in
  let op, v = if i >= 0 then (Insn.ADD, i) else (Insn.SUB, -i) in
  if v < 4096 then [ mk op v wb ]
  else if v land 0xfff = 0 && v lsr 12 < 4096 then [ mk_hi op (v lsr 12) wb ]
  else if v lsr 12 < 4096 then
    [ mk_hi op (v lsr 12) wb; mk op (v land 0xfff) w22 ]
  else errorf "memory offset %d out of range" i

(** The guarded addressing mode [\[x21, w22, uxtw\]]. *)
let guarded_w22 = Insn.Reg_off (x21, w22, Insn.Uxtw, 0)

let guarded_reg r = Insn.Reg_off (x21, w_of r, Insn.Uxtw, 0)

let add_imm_to (dst : Reg.t) (i : int) : Insn.t =
  let op, v = if i >= 0 then (Insn.ADD, i) else (Insn.SUB, -i) in
  if v >= 4096 then errorf "index offset %d out of range" i;
  Insn.Alu { op; flags = false; dst; src = dst; op2 = Insn.Imm (v, 0) }

(** True when the addressing mode supports the register-offset guard
    form directly (only basic single-register loads/stores do). *)
let has_reg_offset_form = function
  | Insn.Ldr _ | Insn.Str _ | Insn.Fldr _ | Insn.Fstr _ -> true
  | _ -> false

let base_is_reserved_addr b =
  match Reg.number_of b with Some (18 | 23 | 24) -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Memory access transformation                                        *)
(* ------------------------------------------------------------------ *)

(** Tag attached to every emitted instruction: [None] for instructions
    passed through untouched, [Some (category, inserted)] for
    rewriter-created or rewriter-modified ones.  Tags become the site
    table. *)
type tag = (Overhead.category * bool) option

(* Tag shorthands: a guard instruction the rewriter added, an original
   instruction rewritten in place to a guarded form, and an inserted
   w22 address computation. *)
let tg_guard : tag = Some (Overhead.Guard, true)
let tg_guarded : tag = Some (Overhead.Guard, false)
let tg_clamp : tag = Some (Overhead.Clamp, true)

(** Rewrite one guarded memory access with general base [b].  Returns
    the replacement (instruction, tag) list.  [o1] selects the Table 3
    zero/one-instruction guards; otherwise the O0 basic guard through
    x18 is used. *)
let transform_general_mem ~o1 (insn : Insn.t) (addr : Insn.addr)
    (b : Reg.t) : (Insn.t * tag) list =
  let via_x18 ~guard ~pre ~post addr_for_x18 =
    (* O0 / specialized instructions: guard an address into x18 and
       access through it *)
    pre @ ((guard, tg_guard) :: (Insn.with_addr insn addr_for_x18, tg_guarded)
           :: post)
  in
  if o1 && has_reg_offset_form insn then
    match addr with
    | Insn.Imm_off (_, 0) -> [ (Insn.with_addr insn (guarded_reg b), tg_guarded) ]
    | Insn.Imm_off (_, i) ->
        List.map (fun g -> (g, tg_clamp)) (materialize_offset32 b i)
        @ [ (Insn.with_addr insn guarded_w22, tg_guarded) ]
    | Insn.Pre (_, i) ->
        [ (add_imm_to b i, tg_clamp);
          (Insn.with_addr insn (guarded_reg b), tg_guarded) ]
    | Insn.Post (_, i) ->
        [ (Insn.with_addr insn (guarded_reg b), tg_guarded);
          (add_imm_to b i, tg_clamp) ]
    | Insn.Reg_off (_, m, e, a) ->
        let op2 =
          match e with
          | Insn.Uxtx -> Insn.Sh (w_of m, Insn.Lsl, a)
          | Insn.Uxtw -> Insn.Ext (w_of m, Insn.Uxtw, a)
          | Insn.Sxtw -> Insn.Ext (w_of m, Insn.Sxtw, a)
          | Insn.Sxtx -> Insn.Sh (w_of m, Insn.Lsl, a)
          | e -> Insn.Ext (w_of m, e, a)
        in
        [ (Insn.Alu { op = Insn.ADD; flags = false; dst = w22; src = w_of b;
                      op2 }, tg_clamp);
          (Insn.with_addr insn guarded_w22, tg_guarded) ]
  else
    (* Basic scheme: the two-cycle guard into x18.  Immediates up to
       the 32KiB encoding limit stay within the 48KiB guard region, so
       they may remain as offsets from the guarded base. *)
    match addr with
    | Insn.Imm_off (_, i)
      when i >= 0 && i + Insn.access_bytes insn <= Layout.max_mem_immediate
           || i < 0 ->
        via_x18 ~guard:(addr_guard x18 b) ~pre:[] ~post:[]
          (Insn.Imm_off (x18, i))
    | Insn.Imm_off (_, i) ->
        (* scaled q-register offsets can reach 65520 bytes, past the
           guard margin the verifier accepts: fold the offset into w22
           and guard the combined address instead *)
        via_x18
          ~guard:(addr_guard x18 (Reg.x 22))
          ~pre:(List.map (fun g -> (g, tg_clamp)) (materialize_offset32 b i))
          ~post:[]
          (Insn.Imm_off (x18, 0))
    | Insn.Pre (_, i) ->
        via_x18 ~guard:(addr_guard x18 b)
          ~pre:[ (add_imm_to b i, tg_clamp) ] ~post:[]
          (Insn.Imm_off (x18, 0))
    | Insn.Post (_, i) ->
        via_x18 ~guard:(addr_guard x18 b) ~pre:[]
          ~post:[ (add_imm_to b i, tg_clamp) ]
          (Insn.Imm_off (x18, 0))
    | Insn.Reg_off (_, m, e, a) ->
        let op2 =
          match e with
          | Insn.Uxtx | Insn.Sxtx -> Insn.Sh (w_of m, Insn.Lsl, a)
          | e -> Insn.Ext (w_of m, e, a)
        in
        (* combine base and offset in 32 bits, then guard the result *)
        via_x18
          ~guard:(addr_guard x18 (Reg.x 22))
          ~pre:
            [ (Insn.Alu
                 { op = Insn.ADD; flags = false; dst = w22; src = w_of b;
                   op2 }, tg_clamp) ]
          ~post:[]
          (Insn.Imm_off (x18, 0))

(* ------------------------------------------------------------------ *)
(* Basic blocks                                                        *)
(* ------------------------------------------------------------------ *)

(** Index ranges [(start, stop))] of basic blocks over the item array.
    Labels and directives start new blocks; branches end them. *)
let basic_blocks (items : Source.item array) : (int * int) list =
  let n = Array.length items in
  let blocks = ref [] in
  let start = ref 0 in
  let flush stop = if stop > !start then blocks := (!start, stop) :: !blocks in
  for i = 0 to n - 1 do
    match items.(i) with
    | Source.Label _ | Source.Directive _ ->
        flush i;
        start := i + 1
    | Source.Insn insn ->
        if Insn.is_branch insn then begin
          flush (i + 1);
          start := i + 1
        end
  done;
  flush n;
  List.rev !blocks

(* ------------------------------------------------------------------ *)
(* Redundant guard elimination (§4.3)                                  *)
(* ------------------------------------------------------------------ *)

(** An access is hoistable when it is an immediate-offset access through
    a plain base register whose offset stays inside the guard region.
    Returns [(base, offset)]. *)
let hoistable_base ~sandbox_loads (i : Insn.t) : (int * int) option =
  let eligible = Insn.is_store i || (Insn.is_load i && sandbox_loads) in
  if not eligible then None
  else
    match Insn.addr_of i with
    | Some (Insn.Imm_off (Reg.R (Reg.W64, n), off))
      when (not (List.mem n Reg.reserved_numbers))
           && n <> 30
           && abs off < Layout.max_mem_immediate ->
        Some (n, off)
    | _ -> None

(** Plan hoisting for one basic block: returns
    [(guard_insertions, base_substitutions)] keyed by item index. *)
let plan_hoisting ~sandbox_loads (items : Source.item array) (bstart : int)
    (bstop : int) (stats : stats) :
    (int, Reg.t * int) Hashtbl.t * (int, Reg.t) Hashtbl.t =
  let guards = Hashtbl.create 8 and subs = Hashtbl.create 8 in
  (* Count future hoistable uses of base [b] with a nonzero offset,
     starting at [i], before [b] is redefined.  Zero-offset accesses are
     free at O1 (the guarded addressing mode), so only nonzero offsets
     pay for the hoisting guard: hoist when at least two would save
     their add instructions. *)
  let future_paying_uses b i =
    let rec go i acc =
      if i >= bstop then acc
      else
        match items.(i) with
        | Source.Insn insn ->
            let acc =
              match hoistable_base ~sandbox_loads insn with
              | Some (bb, off) when bb = b && off <> 0 -> acc + 1
              | _ -> acc
            in
            if Insn.writes_reg_number insn b then acc else go (i + 1) acc
        | _ -> acc
    in
    go i 0
  in
  let active = Array.make 2 None in
  let deactivate b =
    Array.iteri
      (fun k -> function
        | Some (bb, _) when bb = b -> active.(k) <- None
        | _ -> ())
      active
  in
  for i = bstart to bstop - 1 do
    match items.(i) with
    | Source.Insn insn ->
        (match hoistable_base ~sandbox_loads insn with
        | Some (b, _) -> (
            let existing =
              Array.to_list active
              |> List.find_opt (function
                   | Some (bb, _) -> bb = b
                   | None -> false)
            in
            match existing with
            | Some (Some (_, reg)) -> Hashtbl.replace subs i reg
            | _ -> (
                (* allocate a hoist register if this base is reused *)
                match
                  Array.to_list active
                  |> List.mapi (fun k v -> (k, v))
                  |> List.find_opt (fun (_, v) -> v = None)
                with
                | Some (k, None) when future_paying_uses b i >= 2 ->
                    let reg = hoist_regs.(k) in
                    active.(k) <- Some (b, reg);
                    Hashtbl.replace guards i (reg, b);
                    Hashtbl.replace subs i reg;
                    stats.hoists <- stats.hoists + 1
                | _ -> ()))
        | None -> ());
        (* a write to the base register invalidates the hoisted copy *)
        Array.iter
          (function
            | Some (b, _) when Insn.writes_reg_number insn b -> deactivate b
            | _ -> ())
          active
    | _ -> ()
  done;
  (guards, subs)

(* ------------------------------------------------------------------ *)
(* Stack pointer handling (§4.2)                                       *)
(* ------------------------------------------------------------------ *)

let is_sp_based_access (i : Insn.t) =
  match Insn.addr_of i with
  | Some (Insn.Imm_off (b, _) | Insn.Pre (b, _) | Insn.Post (b, _)) ->
      Reg.is_sp b
  | _ -> false

(** After a small-immediate sp adjustment at [i], is the guard
    unnecessary?  Yes iff the next sp-touching instruction in the same
    basic block is an sp-based memory access (which traps in a guard
    page) — a second unguarded adjustment would let sp drift. *)
let sp_guard_elidable (items : Source.item array) (i : int) (n : int) : bool =
  let rec go j =
    if j >= n then false
    else
      match items.(j) with
      | Source.Label _ | Source.Directive _ -> false
      | Source.Insn insn ->
          if is_sp_based_access insn then true
          else if Insn.writes_sp insn then false
          else if Insn.is_branch insn then false
          else go (j + 1)
  in
  go (i + 1)

(* ------------------------------------------------------------------ *)
(* Main pass                                                           *)
(* ------------------------------------------------------------------ *)

let transform_insn (cfg : Config.t) (stats : stats)
    (items : Source.item array) (idx : int) (insn : Insn.t) :
    (Insn.t * tag) list =
  let o1 = cfg.opt <> Config.O0 in
  let tg_sp : tag = Some (Overhead.Sp_anchor, true) in
  let tg_sp_mod : tag = Some (Overhead.Sp_anchor, false) in
  let out =
    match insn with
    (* ---- system calls -> runtime calls (§4.4) ---- *)
    | Insn.Svc n ->
        if n < 0 || n >= Layout.rtcall_entry_count then
          errorf "runtime call number %d out of range" n;
        [ (Insn.Ldr
             { sz = Insn.X; signed = false; dst = x30;
               addr = Insn.Imm_off (x21, Layout.rtcall_entry_offset n) },
           Some (Overhead.Rtcall_gate, true));
          (Insn.Blr x30, Some (Overhead.Rtcall_gate, false)) ]
    (* ---- indirect branches ---- *)
    | Insn.Br r -> [ (addr_guard x18 r, tg_guard); (Insn.Br x18, tg_guarded) ]
    | Insn.Blr r -> [ (addr_guard x18 r, tg_guard); (Insn.Blr x18, tg_guarded) ]
    | Insn.Ret (Reg.R (Reg.W64, 30)) -> [ (insn, None) ]
    | Insn.Ret r -> [ (addr_guard x18 r, tg_guard); (Insn.Ret x18, tg_guarded) ]
    (* ---- stack pointer writes ---- *)
    | Insn.Alu { dst = Reg.SP Reg.W64; op; flags = false; src; op2 } -> (
        match (op, src, op2) with
        | (Insn.ADD | Insn.SUB), Reg.SP Reg.W64, Insn.Imm (v, 0)
          when cfg.sp_block_optimization
               && v < Layout.max_sp_drift
               && sp_guard_elidable items idx (Array.length items) ->
            stats.sp_guards_elided <- stats.sp_guards_elided + 1;
            [ (insn, None) ]
        | (Insn.ADD | Insn.SUB), Reg.SP Reg.W64, Insn.Imm _ ->
            (insn, None) :: List.map (fun g -> (g, tg_sp)) sp_guard
        | Insn.ADD, _, Insn.Imm (0, 0) ->
            (* mov sp, xN *)
            [ (Insn.Alu
                 { op = Insn.ORR; flags = false; dst = w22;
                   src = Reg.ZR Reg.W32;
                   op2 = Insn.Sh (w_of src, Insn.Lsl, 0) }, tg_sp_mod);
              (List.nth sp_guard 1, tg_sp) ]
        | (Insn.ADD | Insn.SUB), _, Insn.Ext (m, _, a) ->
            (* variable adjustment (e.g. alloca): compute in 32 bits,
               then guard *)
            [ (Insn.Alu
                 { op; flags = false; dst = w22; src = w_of src;
                   op2 = Insn.Ext (w_of m, Insn.Uxtw, a) }, tg_sp_mod);
              (List.nth sp_guard 1, tg_sp) ]
        | _ -> errorf "unsupported sp write %S" (Printer.to_string insn))
    | _ when Insn.writes_sp insn && not (Insn.is_memory insn) ->
        errorf "unsupported sp write %S" (Printer.to_string insn)
    (* ---- exclusives ---- *)
    | (Insn.Ldxr _ | Insn.Stxr _ | Insn.Ldar _ | Insn.Stlr _)
      when not cfg.allow_exclusives ->
        errorf "LL/SC and acquire/release disabled by configuration (§7.1)"
    (* ---- memory accesses ---- *)
    | _ when Insn.is_memory insn -> (
        let addr = Option.get (Insn.addr_of insn) in
        let b = Insn.addr_base addr in
        let needs_guard =
          Insn.is_store insn || (Insn.is_load insn && cfg.sandbox_loads)
        in
        if Reg.is_sp b then
          (* sp-based: immediate and pre/post modes are safe as-is;
             register offsets are rare and rewritten through w22 *)
          match addr with
          | Insn.Imm_off _ | Insn.Pre _ | Insn.Post _ -> [ (insn, None) ]
          | Insn.Reg_off (_, m, e, a) when needs_guard ->
              let ext =
                match e with
                | Insn.Uxtx | Insn.Sxtx -> Insn.Uxtw
                | e -> e
              in
              [ (Insn.Alu
                   { op = Insn.ADD; flags = false; dst = w22; src = wsp;
                     op2 = Insn.Ext (w_of m, ext, a) }, tg_clamp);
                (Insn.with_addr insn guarded_w22, tg_guarded) ]
          | Insn.Reg_off _ -> [ (insn, None) ]
        else if base_is_reserved_addr b || Reg.equal b x21 then [ (insn, None) ]
        else if not needs_guard then [ (insn, None) ]
        else transform_general_mem ~o1 insn addr b)
    | _ -> [ (insn, None) ]
  in
  (* Loads that wrote the link register must be followed by the x30
     guard (§4.2); bl/blr/guards are exempt by construction. *)
  let needs_lr_guard i =
    Insn.writes_reg_number i 30
    && (not (Insn.is_branch i))
    && not (is_addr_guard_for x30 i)
  in
  let rec fix = function
    | [] -> []
    | (i, t) :: tl when needs_lr_guard i && Insn.is_memory i ->
        (* exception: the runtime-call table load is immediately
           followed by blr x30 *)
        let is_table_load =
          match i with
          | Insn.Ldr { dst = Reg.R (Reg.W64, 30);
                       addr = Insn.Imm_off (Reg.R (Reg.W64, 21), _); _ } ->
              true
          | _ -> false
        in
        if is_table_load then (i, t) :: fix tl
        else (i, t) :: (lr_guard, Some (Overhead.Retag, true)) :: fix tl
    | it :: tl -> it :: fix tl
  in
  fix out

(* ------------------------------------------------------------------ *)
(* Branch range relaxation                                             *)
(* ------------------------------------------------------------------ *)

(** An output item carrying its attribution: which input instruction
    it descends from, and whether (and how) the rewriter touched it. *)
type stamped = { it : Source.item; orig : int; tag : tag }

(** Replace out-of-range tbz/cbz/b.cond with an inverted short branch
    over an unconditional one.  Iterates to a fixpoint because each
    relaxation adds an instruction.  Both halves of a relaxation are
    [Trampoline] sites: the inverted branch is the original one
    modified, the unconditional [b] is inserted. *)
let relax_branches (stats : stats) (src : stamped list) : stamped list =
  let offsets (items : stamped list) =
    let tbl = Hashtbl.create 64 in
    let off = ref 0 in
    List.iter
      (fun { it; _ } ->
        match it with
        | Source.Label l -> Hashtbl.replace tbl l !off
        | Source.Insn _ -> incr off
        | Source.Directive _ -> ())
      items;
    tbl
  in
  let tbz_range = 4096 - 64 (* ±32KiB in instructions, with margin *)
  and cond_range = (1 lsl 18) - 64 in
  let rec pass items =
    let tbl = offsets items in
    let changed = ref false in
    let off = ref 0 in
    let out =
      List.concat_map
        (fun stamp ->
          match stamp.it with
          | Source.Insn insn ->
              let here = !off in
              incr off;
              let dist l =
                match Hashtbl.find_opt tbl l with
                | Some target -> Some (target - here)
                | None -> None
              in
              let relax mk_inverted target_sym =
                changed := true;
                stats.branches_relaxed <- stats.branches_relaxed + 1;
                off := !off + 1;
                [ { stamp with
                    it = Source.Insn (mk_inverted (Insn.Off 8));
                    tag = Some (Overhead.Trampoline, false) };
                  { stamp with
                    it = Source.Insn (Insn.B (Insn.Sym target_sym));
                    tag = Some (Overhead.Trampoline, true) } ]
              in
              (match insn with
              | Insn.Tbz ({ target = Insn.Sym l; _ } as r) -> (
                  match dist l with
                  | Some d when abs d > tbz_range ->
                      relax
                        (fun t -> Insn.Tbz { r with nz = not r.nz; target = t })
                        l
                  | _ -> [ stamp ])
              | Insn.Cbz ({ target = Insn.Sym l; _ } as r) -> (
                  match dist l with
                  | Some d when abs d > cond_range ->
                      relax
                        (fun t -> Insn.Cbz { r with nz = not r.nz; target = t })
                        l
                  | _ -> [ stamp ])
              | Insn.Bcond (c, Insn.Sym l) -> (
                  match dist l with
                  | Some d when abs d > cond_range ->
                      relax (fun t -> Insn.Bcond (Insn.invert_cond c, t)) l
                  | _ -> [ stamp ])
              | _ -> [ stamp ])
          | _ -> [ stamp ])
        items
    in
    if !changed then pass out else out
  in
  pass src

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Rewrite a parsed assembly file into its sandboxed equivalent. *)
let rewrite ?(config = Config.default) (src : Source.t) :
    Source.t * stats =
  check_input src;
  let stats = empty_stats () in
  stats.input_insns <- Source.insn_count src;
  let items = Array.of_list src in
  (* Plan redundant guard elimination per basic block (O2 only). *)
  let guards = Hashtbl.create 16 and subs = Hashtbl.create 16 in
  if config.opt = Config.O2 then
    List.iter
      (fun (bstart, bstop) ->
        let g, s =
          plan_hoisting ~sandbox_loads:config.sandbox_loads items bstart
            bstop stats
        in
        Hashtbl.iter (Hashtbl.replace guards) g;
        Hashtbl.iter (Hashtbl.replace subs) s)
      (basic_blocks items);
  let out = ref [] in
  Array.iteri
    (fun idx item ->
      match item with
      | Source.Label _ | Source.Directive _ ->
          out := { it = item; orig = idx; tag = None } :: !out
      | Source.Insn insn ->
          (match Hashtbl.find_opt guards idx with
          | Some (reg, base_n) ->
              out :=
                { it = Source.Insn (addr_guard reg (Reg.x base_n));
                  orig = idx; tag = tg_guard }
                :: !out
          | None -> ());
          let subbed = Hashtbl.mem subs idx in
          let insn =
            match Hashtbl.find_opt subs idx with
            | Some reg -> (
                match Insn.addr_of insn with
                | Some (Insn.Imm_off (_, i)) ->
                    Insn.with_addr insn (Insn.Imm_off (reg, i))
                | _ -> insn)
            | None -> insn
          in
          List.iter
            (fun (i, tag) ->
              (* an access redirected at a hoisted base is a modified
                 guard site even though the rewrite leaves it alone *)
              let tag =
                if subbed && tag = None then tg_guarded else tag
              in
              out := { it = Source.Insn i; orig = idx; tag } :: !out)
            (transform_insn config stats items idx insn))
    items;
  let stamped = relax_branches stats (List.rev !out) in
  (* Flatten: split items from stamps, and turn tags into the site
     table (indices into the input/output instruction streams; see
     {!resolve_sites}). *)
  let result = List.map (fun s -> s.it) stamped in
  let in_insn_index = Array.make (Array.length items) (-1) in
  let k = ref 0 in
  Array.iteri
    (fun idx item ->
      match item with
      | Source.Insn _ ->
          in_insn_index.(idx) <- !k;
          incr k
      | _ -> ())
    items;
  let sites = ref [] and out_idx = ref 0 in
  List.iter
    (fun s ->
      match s.it with
      | Source.Insn _ ->
          (match s.tag with
          | Some (cat, inserted) ->
              sites :=
                { s_out = !out_idx; s_cat = cat; s_inserted = inserted;
                  s_orig = in_insn_index.(s.orig) }
                :: !sites
          | None -> ());
          incr out_idx
      | _ -> ())
    stamped;
  stats.sites <- List.rev !sites;
  stats.output_insns <- Source.insn_count result;
  stats.guards <- stats.output_insns - stats.input_insns;
  (result, stats)

(** Resolve the site table of a finished rewrite to sandbox-relative
    addresses, by replaying the assembler's layout over both the input
    and the output source. *)
let resolve_sites ?origin ~(input : Source.t) ~(output : Source.t)
    (stats : stats) : Overhead.site list =
  let out_pcs = Assemble.insn_addresses ?origin output in
  let in_pcs = Assemble.insn_addresses ?origin input in
  List.map
    (fun s ->
      { Overhead.pc = out_pcs.(s.s_out);
        category = s.s_cat;
        inserted = s.s_inserted;
        orig_pc = (if s.s_orig >= 0 then in_pcs.(s.s_orig) else 0) })
    stats.sites

(** Per-category (inserted, modified) site counts, for cross-checking
    static stats against the dynamic overhead report. *)
let site_counts (stats : stats) :
    (Overhead.category * int * int) list =
  List.map
    (fun cat ->
      let ins = ref 0 and md = ref 0 in
      List.iter
        (fun s ->
          if s.s_cat = cat then if s.s_inserted then incr ins else incr md)
        stats.sites;
      (cat, !ins, !md))
    Overhead.all_categories

(** Convenience: rewrite assembly text to assembly text. *)
let rewrite_string ?config (text : string) : string =
  let src = Parser.parse_string_exn text in
  let out, _ = rewrite ?config src in
  Source.to_string out
