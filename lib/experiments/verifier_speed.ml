(** Experiment E6 — verifier throughput (§5.2).

    The paper: the LFI verifier runs at ~34 MB/s (all SPEC binaries in
    under 0.3s each) while the WABT WebAssembly validator manages
    ~3 MB/s.  Here both are *wall-clock* measurements of our
    implementations over the proxy binaries — unlike the cycle-model
    experiments, this one really does measure OCaml code. *)

type result = {
  lfi_mb_s : float;
  lfi_total_bytes : int;
  wasm_mb_s : float;
  wasm_total_bytes : int;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let measure ?(repeats = 20) () : result =
  (* LFI: verify every rewritten proxy's text segment *)
  let texts =
    List.map
      (fun w ->
        let elf = Run.build (Run.Lfi Lfi_core.Config.o2) w.Lfi_workloads.Common.program in
        match Lfi_elf.Elf.text_segment elf with
        | Some seg -> seg.Lfi_elf.Elf.data
        | None -> Bytes.create 0)
      (Lfi_workloads.Registry.selected ())
  in
  let lfi_total_bytes = List.fold_left (fun a b -> a + Bytes.length b) 0 texts in
  let (), lfi_time =
    time (fun () ->
        for _ = 1 to repeats do
          List.iter
            (fun code ->
              match Lfi_verifier.Verifier.verify ~code () with
              | Ok _ -> ()
              | Error _ -> failwith "verifier rejected a good binary")
            texts
        done)
  in
  (* Wasm: deserialize + validate every wasm-compatible module, the
     work a real engine's required validation step performs on binary
     input *)
  let blobs =
    List.map
      (fun w ->
        Lfi_wasm.Ir.serialize
          (Lfi_wasm.From_minic.lower w.Lfi_workloads.Common.program))
      Lfi_workloads.Registry.wasm_subset
  in
  let wasm_total_bytes =
    List.fold_left (fun a b -> a + Bytes.length b) 0 blobs
  in
  let (), wasm_time =
    time (fun () ->
        for _ = 1 to repeats * 4 do
          List.iter
            (fun blob ->
              match
                Lfi_wasm.Validate.validate (Lfi_wasm.Ir.deserialize blob)
              with
              | Ok () -> ()
              | Error _ -> failwith "validator rejected a good module")
            blobs
        done)
  in
  let mb bytes reps t =
    float_of_int (bytes * reps) /. t /. (1024. *. 1024.)
  in
  {
    lfi_mb_s = mb lfi_total_bytes repeats lfi_time;
    lfi_total_bytes;
    wasm_mb_s = mb wasm_total_bytes (repeats * 4) wasm_time;
    wasm_total_bytes;
  }

let table () : Report.table =
  let r = measure () in
  {
    Report.title = "Verifier / validator throughput (§5.2)";
    header = [ "checker"; "measured"; "paper"; "corpus" ];
    rows =
      [
        [ "LFI machine-code verifier";
          Printf.sprintf "%.1f MB/s" r.lfi_mb_s;
          Printf.sprintf "%.0f MB/s" Report.Paper.verifier_mb_s;
          Printf.sprintf "%d KB of text" (r.lfi_total_bytes / 1024) ];
        [ "Wasm bytecode validator";
          Printf.sprintf "%.1f MB/s" r.wasm_mb_s;
          Printf.sprintf "%.0f MB/s" Report.Paper.wabt_mb_s;
          Printf.sprintf "%d KB of bytecode" (r.wasm_total_bytes / 1024) ];
      ];
    notes =
      [ "wall-clock throughput of this repository's OCaml \
         implementations; the shape target is verifier >> validator \
         per byte checked" ];
  }

let run_all () = Report.print (table ())
