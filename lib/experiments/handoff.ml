(** Direct-yield handoff cost, in cycles.

    The paper's multi-tenant serving story leans on one number: an
    optimized [yield_to] between two sandboxes in the same address
    space costs on the order of {e 50 cycles} — no kernel, no page
    table switch, just a register-state swap plus scheduler
    bookkeeping.  This module measures our runtime's version of that
    number the same way {!Table5.measure_yield} does (two sandboxes
    ping-ponging through the real runtime-call table, verifier-clean
    code, the real {!Lfi_sched.Runq} promote path) but reports
    {e simulated cycles} rather than nanoseconds, so the serve bench
    can print it next to the paper's claim.

    The measured figure decomposes as [lfi_yield_direct] (the modeled
    hardware cost of the register swap: 42 cycles on m1, 46 on t2a)
    plus {!Lfi_runtime.Runtime.lfi_sched_bookkeeping} (8 cycles of
    scheduler accounting), and the loop overhead around it — landing in
    the same tens-of-cycles regime as the paper on both cost models. *)

open Lfi_emulator

type result = {
  h_uarch : string;
  h_iters : int;  (** yield_to round trips measured *)
  h_total_cycles : float;  (** whole two-sandbox run, simulated cycles *)
  h_cycles_per_handoff : float;
      (** measured: includes the guest loop around the yield *)
  h_modeled_cycles : float;
      (** the switch alone: [lfi_yield_direct] + scheduler bookkeeping *)
  h_ns_per_handoff : float;  (** at the model's clock rate *)
}

(** The number the paper's §2 design discussion cites for an optimized
    same-address-space domain switch. *)
let paper_cycles = 50.0

let measure (uarch : Cost_model.t) : result =
  let rt =
    Lfi_runtime.Runtime.create
      ~config:{ Lfi_runtime.Runtime.default_config with uarch }
      ()
  in
  let elf =
    Table5.build Lfi_core.Config.o2 Lfi_workloads.Microbench.yield_prog
  in
  let p1 =
    Lfi_runtime.Runtime.load rt ~arg:2L ~personality:Lfi_runtime.Proc.Lfi elf
  in
  let _p2 =
    Lfi_runtime.Runtime.load rt ~arg:1L ~personality:Lfi_runtime.Proc.Lfi elf
  in
  let _, _, cycles, _ = Lfi_runtime.Runtime.run_one rt p1 in
  let handoffs = 2 * Lfi_workloads.Microbench.yield_iters in
  let per = cycles /. float_of_int handoffs in
  {
    h_uarch = uarch.Cost_model.name;
    h_iters = handoffs;
    h_total_cycles = cycles;
    h_cycles_per_handoff = per;
    h_modeled_cycles =
      uarch.Cost_model.lfi_yield_direct
      +. Lfi_runtime.Runtime.lfi_sched_bookkeeping;
    h_ns_per_handoff = Cost_model.cycles_to_ns uarch per;
  }

let to_json (r : result) : string =
  Printf.sprintf
    "{\"iters\": %d, \"total_cycles\": %.1f, \"cycles_per_handoff\": %.1f, \
     \"switch_cycles\": %.1f, \"ns_per_handoff\": %.2f}"
    r.h_iters r.h_total_cycles r.h_cycles_per_handoff r.h_modeled_cycles
    r.h_ns_per_handoff
