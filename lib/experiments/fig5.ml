(** Experiment E4 — Figure 5: LFI vs hardware-assisted virtualization.

    KVM is modeled by its named mechanism (§6.4): nested page tables
    double the cost of every TLB-miss page walk.  Benchmarks with big
    irregular working sets (mcf, omnetpp, xalancbmk) pay; cache-resident
    kernels barely notice — the Figure 5 shape. *)

open Lfi_emulator

let measure ~(uarch : Cost_model.t) =
  List.map
    (fun w ->
      let base = (Run.run_cached ~uarch Run.Native w).Run.cycles in
      let kvm = Run.run_cached ~uarch Run.Native_kvm w in
      let lfi = Run.run_cached ~uarch (Run.Lfi Lfi_core.Config.o2) w in
      ( w.Lfi_workloads.Common.name,
        Run.overhead ~base kvm.Run.cycles,
        Run.overhead ~base lfi.Run.cycles,
        kvm.Run.tlb_miss_rate ))
    (Lfi_workloads.Registry.selected ())

let table ~(uarch : Cost_model.t) : Report.table =
  let rows = measure ~uarch in
  let gm sel = Run.geomean (List.map sel rows) in
  {
    Report.title =
      Printf.sprintf
        "Figure 5: LFI vs hardware-assisted virtualization - %s model"
        (String.uppercase_ascii uarch.Cost_model.name);
    header = [ "benchmark"; "QEMU KVM"; "LFI"; "TLB miss rate" ];
    rows =
      List.map
        (fun (b, kvm, lfi, miss) ->
          [ b; Report.fmt_pct kvm; Report.fmt_pct lfi;
            Printf.sprintf "%.2f%%" (miss *. 100.) ])
        rows
      @ [ [ "geomean";
            Report.fmt_pct (gm (fun (_, k, _, _) -> k));
            Report.fmt_pct (gm (fun (_, _, l, _) -> l)); "" ] ];
    notes =
      [ "KVM = nested page tables double the TLB-walk cost (§6.4); \
         paper shape: KVM a few percent, spiking on TLB-heavy \
         benchmarks; LFI comparable" ];
  }

let run_all () = Report.print (table ~uarch:Cost_model.m1)
