(** Running one program under one sandboxing system and measuring it.

    This is the "runcpu + specinvoke" of the reproduction: every
    experiment compiles a MiniC workload for a given system, runs it to
    completion in the emulator, and reports simulated cycles. *)

open Lfi_emulator

type system =
  | Native  (** unsandboxed, hosted by the LFI runtime (the paper's
                baseline, §6.1) *)
  | Native_kvm  (** unsandboxed under nested paging (Figure 5) *)
  | Lfi of Lfi_core.Config.t
  | Wasm of Lfi_wasm.Engine.t

let system_name = function
  | Native -> "native"
  | Native_kvm -> "KVM"
  | Lfi c -> Lfi_core.Config.name c
  | Wasm e -> e.Lfi_wasm.Engine.name

type result = {
  exit_code : int;
  cycles : float;
  insns : int;
  text_bytes : int;  (** text-segment size of the executable *)
  file_bytes : int;  (** whole ELF size *)
  tlb_miss_rate : float;
}

exception Run_failure of string

(** Compile [prog] for [system] and return the ELF image. *)
let build (system : system) (prog : Lfi_minic.Ast.program) : Lfi_elf.Elf.t =
  let source, sites =
    match system with
    | Native | Native_kvm -> (Lfi_minic.Compile.compile prog, [])
    | Lfi config ->
        let native = Lfi_minic.Compile.compile prog in
        let rewritten, stats = Lfi_core.Rewriter.rewrite ~config native in
        ( rewritten,
          Lfi_core.Rewriter.resolve_sites ~input:native ~output:rewritten
            stats )
    | Wasm engine ->
        let m = Lfi_wasm.From_minic.lower prog in
        (Lfi_wasm.Compile_wasm.compile engine m, [])
  in
  Lfi_elf.Elf.of_image ~sites (Lfi_arm64.Assemble.assemble source)

let personality = function
  | Native | Native_kvm | Wasm _ -> Lfi_runtime.Proc.Native_in_lfi_runtime
  | Lfi _ -> Lfi_runtime.Proc.Lfi

(** Execute a prebuilt image, returning the runtime too (so callers
    can read telemetry off it).  [metrics] turns the emulator counters
    on before the run; [overhead] arms per-site cycle attribution
    (effective only when the image carries a [.lfi_sites] table). *)
let execute_rt ?(uarch = Cost_model.m1) ?(metrics = false)
    ?(overhead = false) (system : system) (elf : Lfi_elf.Elf.t) :
    result * Lfi_runtime.Runtime.t =
  let verifier_config =
    match system with
    | Lfi c ->
        { Lfi_verifier.Verifier.default_config with
          sandbox_loads = c.Lfi_core.Config.sandbox_loads;
          allow_exclusives = c.Lfi_core.Config.allow_exclusives }
    | _ -> Lfi_verifier.Verifier.default_config
  in
  let config =
    { Lfi_runtime.Runtime.default_config with uarch; verifier_config }
  in
  let rt = Lfi_runtime.Runtime.create ~config () in
  if metrics then ignore (Lfi_runtime.Runtime.enable_metrics rt);
  if system = Native_kvm then
    rt.Lfi_runtime.Runtime.machine.Machine.nested_paging <- true;
  let p = Lfi_runtime.Runtime.load rt ~personality:(personality system) elf in
  if overhead then ignore (Lfi_runtime.Runtime.enable_overhead rt p);
  let reason, _out, cycles, insns = Lfi_runtime.Runtime.run_one rt p in
  let exit_code =
    match reason with
    | Lfi_runtime.Runtime.Exited c -> c
    | Lfi_runtime.Runtime.Killed why ->
        raise
          (Run_failure
             (Printf.sprintf "%s killed: %s" (system_name system) why))
  in
  ( {
      exit_code;
      cycles;
      insns;
      text_bytes = Lfi_elf.Elf.text_size elf;
      file_bytes = Lfi_elf.Elf.total_size elf;
      tlb_miss_rate = Tlb.miss_rate rt.Lfi_runtime.Runtime.machine.Machine.tlb;
    },
    rt )

(** Execute a prebuilt image. *)
let execute ?uarch (system : system) (elf : Lfi_elf.Elf.t) : result =
  fst (execute_rt ?uarch system elf)

let run ?uarch (system : system) (prog : Lfi_minic.Ast.program) : result =
  execute ?uarch system (build system prog)

(** Percent increase of [v] over baseline [base]. *)
let overhead ~base v = (v -. base) /. base *. 100.0

let geomean (xs : float list) =
  match xs with
  | [] -> nan
  | _ ->
      (* geometric mean of ratios (1 + overhead/100), reported back as
         percent overhead, as SPEC tools do *)
      let logs = List.map (fun x -> log (1.0 +. (x /. 100.0))) xs in
      (exp (List.fold_left ( +. ) 0.0 logs /. float_of_int (List.length logs))
      -. 1.0)
      *. 100.0

(* ------------------------------------------------------------------ *)
(* Cached running (several experiments share the same measurements)   *)
(* ------------------------------------------------------------------ *)

let cache : (string, result) Hashtbl.t = Hashtbl.create 64

(** Run a named workload under [system], memoized on
    (workload, system, uarch, nested). *)
let run_cached ?(uarch = Cost_model.m1) (system : system)
    (w : Lfi_workloads.Common.t) : result =
  let key =
    Printf.sprintf "%s/%s/%s" w.Lfi_workloads.Common.short
      (system_name system) uarch.Cost_model.name
  in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
      let r = run ~uarch system w.Lfi_workloads.Common.program in
      Hashtbl.replace cache key r;
      r
