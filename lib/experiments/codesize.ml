(** Experiment E3 — §6.3 code size overhead.

    LFI adds no alignment padding, so its text-segment increase is just
    the inserted guards: the paper reports a geomean text increase of
    12.9% and whole-binary increase of 8.3%, versus 22% binary increase
    for WAMR. *)

type row = {
  bench : string;
  text_pct : float;
  file_pct : float;
  wamr_file_pct : float option;
}

let measure () : row list =
  List.map
    (fun w ->
      let prog = w.Lfi_workloads.Common.program in
      let native = Run.build Run.Native prog in
      let lfi = Run.build (Run.Lfi Lfi_core.Config.o2) prog in
      let pct a b = (float_of_int b -. float_of_int a) /. float_of_int a *. 100.0 in
      let text_pct =
        pct (Lfi_elf.Elf.text_size native) (Lfi_elf.Elf.text_size lfi)
      in
      let file_pct =
        pct (Lfi_elf.Elf.total_size native) (Lfi_elf.Elf.total_size lfi)
      in
      let wamr_file_pct =
        if w.Lfi_workloads.Common.wasm_ok then begin
          let wamr = Run.build (Run.Wasm Lfi_wasm.Engine.wamr) prog in
          (* compare executable text: the Wasm image embeds the linear
             memory, so whole-file comparison would be meaningless *)
          Some (pct (Lfi_elf.Elf.text_size native) (Lfi_elf.Elf.text_size wamr))
        end
        else None
      in
      { bench = w.Lfi_workloads.Common.name; text_pct; file_pct; wamr_file_pct })
    (Lfi_workloads.Registry.selected ())

let table () : Report.table =
  let rows = measure () in
  let gm sel = Run.geomean (List.map sel rows) in
  let gm_wamr =
    Run.geomean (List.filter_map (fun r -> r.wamr_file_pct) rows)
  in
  {
    Report.title = "Code size increase over native (§6.3)";
    header = [ "benchmark"; "LFI text"; "LFI binary"; "WAMR text" ];
    rows =
      List.map
        (fun r ->
          [ r.bench; Report.fmt_pct r.text_pct; Report.fmt_pct r.file_pct;
            (match r.wamr_file_pct with
            | Some p -> Report.fmt_pct p
            | None -> "-") ])
        rows
      @ [ [ "geomean"; Report.fmt_pct (gm (fun r -> r.text_pct));
            Report.fmt_pct (gm (fun r -> r.file_pct));
            Report.fmt_pct gm_wamr ] ];
    notes =
      [ Printf.sprintf
          "paper: text +%.1f%%, binary +%.1f%%, WAMR binary +%.0f%%"
          Report.Paper.text_increase Report.Paper.binary_increase
          Report.Paper.wamr_binary_increase ];
  }

let run_all () = Report.print (table ())
