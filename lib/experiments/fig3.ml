(** Experiment E1 — Figure 3: LFI optimization levels on the SPEC
    proxies, both machine models.

    For each benchmark: percent increase in simulated cycles over
    native for LFI O0 / O1 / O2 / O2-no-loads.  The paper's headline
    numbers are the geomeans: 6.4% (M1) and 7.3% (T2A) at O2, ~1% with
    loads unsandboxed. *)

open Lfi_emulator

let levels =
  [ Run.Lfi Lfi_core.Config.o0;
    Run.Lfi Lfi_core.Config.o1;
    Run.Lfi Lfi_core.Config.o2;
    Run.Lfi Lfi_core.Config.o2_no_loads ]

type row = { bench : string; overheads : float list }

let measure ~(uarch : Cost_model.t) :
    row list * float list (* geomeans per level *) =
  let rows =
    List.map
      (fun w ->
        let base = (Run.run_cached ~uarch Run.Native w).Run.cycles in
        let overheads =
          List.map
            (fun sys ->
              Run.overhead ~base (Run.run_cached ~uarch sys w).Run.cycles)
            levels
        in
        { bench = w.Lfi_workloads.Common.name; overheads })
      (Lfi_workloads.Registry.selected ())
  in
  let geomeans =
    List.mapi
      (fun k _ -> Run.geomean (List.map (fun r -> List.nth r.overheads k) rows))
      levels
  in
  (rows, geomeans)

let table ~(uarch : Cost_model.t) : Report.table =
  let rows, geomeans = measure ~uarch in
  {
    Report.title =
      Printf.sprintf
        "Figure 3: overhead on SPEC 2017 proxies - %s model (percent \
         increase over native runtime)"
        (String.uppercase_ascii uarch.Cost_model.name);
    header = [ "benchmark"; "LFI O0"; "LFI O1"; "LFI O2"; "O2, no loads" ];
    rows =
      List.map
        (fun r -> r.bench :: List.map Report.fmt_pct r.overheads)
        rows
      @ [ "geomean" :: List.map Report.fmt_pct geomeans ];
    notes =
      [
        Printf.sprintf
          "paper geomean at O2: %.1f%% (m1), %.1f%% (t2a); no-loads ~%.0f%%"
          Report.Paper.fig3_geomean_m1 Report.Paper.fig3_geomean_t2a
          Report.Paper.fig3_no_loads;
      ];
  }

let run_all () =
  Report.print (table ~uarch:Cost_model.m1);
  print_newline ();
  Report.print (table ~uarch:Cost_model.t2a)
