(** In-memory filesystem and pipes.

    The runtime implements "a small Unix-like operating system within a
    single Linux process" (Section 5.3): file-backed runtime calls are
    serviced from this in-memory tree, and the runtime checks arguments
    — e.g. path-prefix access control — before touching it. *)

type file = { mutable content : Bytes.t; mutable size : int }

(** A unidirectional byte pipe. *)
type pipe = {
  mutable buf : Bytes.t;
  mutable rpos : int;
  mutable wpos : int;  (** bytes in flight = wpos - rpos *)
  mutable readers : int;
  mutable writers : int;
}

type fd_object =
  | Console_out  (** stdout/stderr; captured per process *)
  | Console_in
  | File of { file : file; mutable pos : int; writable : bool }
  | Pipe_read of pipe
  | Pipe_write of pipe

type t = {
  files : (string, file) Hashtbl.t;
  allowed_prefixes : string list;
      (** empty means everything is allowed; otherwise a path must
          start with one of these prefixes *)
}

let create ?(allowed_prefixes = []) () =
  { files = Hashtbl.create 32; allowed_prefixes }

let path_allowed t path =
  t.allowed_prefixes = []
  || List.exists
       (fun p ->
         String.length path >= String.length p
         && String.sub path 0 (String.length p) = p)
       t.allowed_prefixes

(** Pre-populate a file (host-side; not subject to access control). *)
let add_file t path content =
  Hashtbl.replace t.files path
    { content = Bytes.of_string content; size = String.length content }

let lookup t path = Hashtbl.find_opt t.files path

(** Errno-style results: negative values returned to the sandbox. *)
let eacces = -13
let enoent = -2
let ebadf = -9
let efault = -14
let einval = -22
let epipe = -32

type open_result = (fd_object, int) result

let open_file t ~path ~(writable : bool) : open_result =
  if not (path_allowed t path) then Error eacces
  else
    match lookup t path with
    | Some file ->
        if writable then file.size <- 0 (* truncate *);
        Ok (File { file; pos = 0; writable })
    | None ->
        if writable then begin
          let file = { content = Bytes.create 0; size = 0 } in
          Hashtbl.replace t.files path file;
          Ok (File { file; pos = 0; writable })
        end
        else Error enoent

let file_read (f : file) ~pos ~len : bytes =
  let avail = max 0 (f.size - pos) in
  let n = min len avail in
  Bytes.sub f.content pos n

let file_write (f : file) ~pos (b : bytes) =
  let needed = pos + Bytes.length b in
  if needed > Bytes.length f.content then begin
    let cap = max needed (2 * Bytes.length f.content) in
    let nc = Bytes.make cap '\000' in
    Bytes.blit f.content 0 nc 0 f.size;
    f.content <- nc
  end;
  Bytes.blit b 0 f.content pos (Bytes.length b);
  f.size <- max f.size needed

let file_contents (f : file) = Bytes.sub_string f.content 0 f.size

(* ------------------------------------------------------------------ *)
(* Pipes                                                               *)
(* ------------------------------------------------------------------ *)

let pipe_capacity = 64 * 1024

let make_pipe () =
  { buf = Bytes.create pipe_capacity; rpos = 0; wpos = 0; readers = 1;
    writers = 1 }

let pipe_available p = p.wpos - p.rpos
let pipe_space p = pipe_capacity - pipe_available p

(** Non-blocking read; the runtime blocks the process when this returns
    [`Would_block]. *)
let pipe_read (p : pipe) (len : int) :
    [ `Data of bytes | `Eof | `Would_block ] =
  let avail = pipe_available p in
  if avail > 0 then begin
    let n = min len avail in
    let out = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.set out i (Bytes.get p.buf ((p.rpos + i) mod pipe_capacity))
    done;
    p.rpos <- p.rpos + n;
    if p.rpos >= pipe_capacity then begin
      p.rpos <- p.rpos - pipe_capacity;
      p.wpos <- p.wpos - pipe_capacity
    end;
    `Data out
  end
  else if p.writers = 0 then `Eof
  else `Would_block

let pipe_write (p : pipe) (b : bytes) : [ `Wrote of int | `Would_block | `Broken ] =
  if p.readers = 0 then `Broken
  else
    let space = pipe_space p in
    if space = 0 then `Would_block
    else begin
      let n = min (Bytes.length b) space in
      for i = 0 to n - 1 do
        Bytes.set p.buf ((p.wpos + i) mod pipe_capacity) (Bytes.get b i)
      done;
      p.wpos <- p.wpos + n;
      `Wrote n
    end

let close_fd = function
  | Console_out | Console_in | File _ -> ()
  | Pipe_read p -> p.readers <- p.readers - 1
  | Pipe_write p -> p.writers <- p.writers - 1
