(** Runtime call numbers.

    Entry [k] of the runtime-call table lives at sandbox offset [8k]
    (Section 4.4).  Entry 0 is intentionally unused and points to an
    unmapped page, as in the paper, so that a [blr] through a zeroed
    table slot traps. *)

let invalid = 0
let exit = 1
let write = 2
let read = 3
let openat = 4
let close = 5
let pipe = 6
let fork = 7
let wait = 8
let yield = 9
let getpid = 10
let mmap = 11
let munmap = 12
(* optimized direct IPC yield (§5.3) *)
let yield_to = 13
(* read the virtual cycle counter *)
let cycles = 14
let brk = 15

(* library-call return (lib/libbox): the in-sandbox return trampoline
   hands the export's result back to the embedding host.  Outside a
   library call this is ENOSYS like any other unhandled number. *)
let box_ret = 16

let count = 17

let name = function
  | 0 -> "invalid"
  | 1 -> "exit"
  | 2 -> "write"
  | 3 -> "read"
  | 4 -> "open"
  | 5 -> "close"
  | 6 -> "pipe"
  | 7 -> "fork"
  | 8 -> "wait"
  | 9 -> "yield"
  | 10 -> "getpid"
  | 11 -> "mmap"
  | 12 -> "munmap"
  | 13 -> "yield_to"
  | 14 -> "cycles"
  | 15 -> "brk"
  | 16 -> "box_ret"
  | n -> Printf.sprintf "sys_%d" n
