(** A sandboxed process: one 4GiB slot plus scheduler state.

    All processes share one emulated address space (and one emulated
    hardware thread); a context switch is a register snapshot swap,
    never a page-table operation — the property that makes LFI context
    switches fast (Section 6.4). *)

open Lfi_emulator

(** How system calls are priced, for the comparison personalities of
    Table 5 / §6.1. *)
type personality =
  | Lfi  (** verified sandbox; runtime calls through the call table *)
  | Native_in_lfi_runtime
      (** unsandboxed code hosted by the LFI runtime — the "native"
          baseline of §6.1, which also benefits from fast calls *)
  | Native_linux  (** models ordinary hardware-protected Linux *)
  | Native_gvisor  (** models the gVisor systrap containerization *)

let personality_name = function
  | Lfi -> "lfi"
  | Native_in_lfi_runtime -> "native"
  | Native_linux -> "linux"
  | Native_gvisor -> "gvisor"

type blocked_on =
  | On_read of { fd : int; addr : int64; len : int }
  | On_write of { fd : int; addr : int64; len : int }
  | On_wait of { status_addr : int64 }

type state = Runnable | Blocked of blocked_on | Zombie of int

type t = {
  pid : int;
  slot : int;
  base : int64;  (** slot base address (0 for native processes) *)
  personality : personality;
  mutable state : state;
  mutable snapshot : Machine.snapshot;  (** register state when not running *)
  fds : (int, Vfs.fd_object) Hashtbl.t;
  mutable next_fd : int;
  mutable heap_end : int64;  (** first unmapped heap address *)
  mutable parent : int option;
  mutable children : int list;
  stdout : Buffer.t;
  mutable user_insns : int;
  mutable rtcalls : int;
  symbols : Lfi_telemetry.Profile.sym_table;
      (** the ELF symbol table sorted for pc-sample folding; [[||]]
          when the image carried no symbols *)
  sites : Lfi_telemetry.Overhead.site list;
      (** the image's [.lfi_sites] overhead site table
          (sandbox-relative pcs); [[]] when the image carried none *)
  flight : Lfi_telemetry.Flight.t;
      (** per-sandbox flight recorder; the runtime installs it on the
          machine while this process runs, and drains it into the
          postmortem report if the process is killed *)
}

let is_runnable p = p.state = Runnable

(** Allocate the lowest unused descriptor >= 3, as POSIX open(2) does.
    Closed descriptors are reused — pool-style instances churn through
    open/close far more than one-shot runs, and a high-water-mark
    allocator would leak fd numbers without bound.  [next_fd] is kept
    as a high-water mark so {!dup_fds} still copies the full range. *)
let alloc_fd (p : t) (obj : Vfs.fd_object) : int =
  let rec first_free n = if Hashtbl.mem p.fds n then first_free (n + 1) else n in
  let fd = first_free 3 in
  Hashtbl.replace p.fds fd obj;
  if fd >= p.next_fd then p.next_fd <- fd + 1;
  fd

let fd (p : t) (n : int) = Hashtbl.find_opt p.fds n

let close_fd (p : t) (n : int) =
  match Hashtbl.find_opt p.fds n with
  | Some obj ->
      Vfs.close_fd obj;
      Hashtbl.remove p.fds n;
      0
  | None -> Vfs.ebadf

let close_all (p : t) =
  Hashtbl.iter (fun _ obj -> Vfs.close_fd obj) p.fds;
  Hashtbl.reset p.fds

(** Standard file descriptors. *)
let install_std_fds (p : t) =
  Hashtbl.replace p.fds 0 Vfs.Console_in;
  Hashtbl.replace p.fds 1 Vfs.Console_out;
  Hashtbl.replace p.fds 2 Vfs.Console_out;
  p.next_fd <- 3

(** Duplicate the descriptor table for fork, bumping pipe endpoint
    reference counts. *)
let dup_fds (src : t) (dst : t) =
  Hashtbl.iter
    (fun n obj ->
      (match obj with
      | Vfs.Pipe_read pipe -> pipe.Vfs.readers <- pipe.Vfs.readers + 1
      | Vfs.Pipe_write pipe -> pipe.Vfs.writers <- pipe.Vfs.writers + 1
      | _ -> ());
      Hashtbl.replace dst.fds n obj)
    src.fds;
  dst.next_fd <- src.next_fd
