(** The LFI runtime (Section 5.3).

    One host process manages all sandboxes: ELF executables are
    verified, loaded into 4GiB slots of a single (emulated) address
    space, given a read-only runtime-call table in their first page,
    and scheduled preemptively.  Runtime calls arrive either through
    the table (sandboxed code: [ldr x30, \[x21, #8k\]; blr x30]) or as
    [svc] traps (native comparison code); both funnel into the same
    Unix-like handlers: open/read/write/close/pipe/fork/wait/mmap/
    yield, plus the optimized direct [yield_to] IPC. *)

open Lfi_emulator

type config = {
  uarch : Cost_model.t;
  quantum : int;  (** preemption quantum, in instructions *)
  verify : bool;  (** verify ELF text segments before loading *)
  verifier_config : Lfi_verifier.Verifier.config;
  stack_size : int;
  allowed_prefixes : string list;  (** VFS access control; [] = all *)
  echo_stdout : bool;  (** copy sandbox stdout to the host's stdout *)
  spectre_hardening : bool;
      (** §7.1: assign each sandbox and the runtime distinct software
          context numbers (SCXTNUM_EL0) so that branch-predictor state
          is not shared; modeled as a system-register write on every
          runtime entry/exit and on every context switch *)
  flight_recorder : bool;
      (** keep a per-sandbox ring buffer of recent control-flow events
          (and the guard-clamp audit) for postmortem reports; on by
          default — the recorder is allocation-free and cheap *)
}

let default_config =
  {
    uarch = Cost_model.m1;
    quantum = 100_000;
    verify = true;
    verifier_config = Lfi_verifier.Verifier.default_config;
    stack_size = 1 lsl 21;
    allowed_prefixes = [];
    echo_stdout = false;
    spectre_hardening = false;
    flight_recorder = true;
  }

type exit_reason =
  | Exited of int
  | Killed of string  (** fault description *)

type t = {
  cfg : config;
  mem : Memory.t;
  machine : Machine.t;
  vfs : Vfs.t;
  procs : (int, Proc.t) Hashtbl.t;
  runq : Lfi_sched.Runq.t;
      (** pids awaiting the scheduler, on the shared run-queue
          abstraction ({!Lfi_sched.Runq}) the pool layer also runs on *)
  mutable next_pid : int;
  mutable next_slot : int;
  mutable free_slots : int list;
  mutable native_loaded : bool;
  mutable ctx_switches : int;
  mutable rtcalls : int;
  mutable preemptions : int;
  mutable exit_log : (int * exit_reason) list;
  mutable trace : Lfi_telemetry.Trace.t option;
      (** runtime event trace, timestamped in simulated cycles; [None]
          (the default) emits nothing *)
  mutable call_hist : Lfi_telemetry.Histogram.t array option;
      (** per-runtime-call latency histograms, indexed by sysno *)
  mutable postmortems : (int * Lfi_telemetry.Postmortem.t) list;
      (** crash reports of killed sandboxes, most recent first *)
  mutable clamps_reaped : int;
      (** guard-clamp counts of processes already removed from the
          table, so {!total_clamps} survives reaping *)
}

let create ?(config = default_config) () =
  let mem = Memory.create () in
  {
    cfg = config;
    mem;
    machine = Machine.create ~uarch:config.uarch mem;
    vfs = Vfs.create ~allowed_prefixes:config.allowed_prefixes ();
    procs = Hashtbl.create 64;
    runq = Lfi_sched.Runq.create ();
    next_pid = 1;
    next_slot = 1 (* slot 0 is reserved for native processes *);
    free_slots = [];
    native_loaded = false;
    ctx_switches = 0;
    rtcalls = 0;
    preemptions = 0;
    exit_log = [];
    trace = None;
    call_hist = None;
    postmortems = [];
    clamps_reaped = 0;
  }

let cycles rt = Machine.cycles rt.machine
let insns rt = rt.machine.Machine.insns
let proc rt pid = Hashtbl.find_opt rt.procs pid
let stdout_of p = Buffer.contents p.Proc.stdout

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

(* All sandboxes share one emulated address space, so the trace uses a
   single Chrome "process" with one thread track per sandbox pid. *)
let trace_pid = 1

(** Turn on emulator metric counters (and per-call latency histograms).
    Idempotent; returns the live counter record. *)
let enable_metrics rt : Lfi_telemetry.Metrics.emu =
  (match rt.call_hist with
  | Some _ -> ()
  | None ->
      rt.call_hist <-
        Some (Array.init Sysno.count (fun _ -> Lfi_telemetry.Histogram.create ())));
  match rt.machine.Machine.metrics with
  | Some e -> e
  | None ->
      let e = Lfi_telemetry.Metrics.create_emu () in
      rt.machine.Machine.metrics <- Some e;
      e

(** Current counters, with the memory-system (translation cache, TLB)
    counters folded in.  The emulator counters are all zero unless
    {!enable_metrics} was called before running. *)
let metrics_snapshot rt : Lfi_telemetry.Metrics.snapshot =
  let emu =
    match rt.machine.Machine.metrics with
    | Some e -> e
    | None -> Lfi_telemetry.Metrics.create_emu ()
  in
  let tlb = rt.machine.Machine.tlb in
  {
    Lfi_telemetry.Metrics.emu;
    tc_hits = rt.mem.Memory.tc_hits;
    tc_misses = rt.mem.Memory.tc_misses;
    tlb_hits = tlb.Tlb.hits;
    tlb_misses = tlb.Tlb.misses;
    blk_execs = rt.machine.Machine.blk_execs;
    blk_builds = rt.machine.Machine.blk_builds;
    blk_insns = rt.machine.Machine.blk_insns;
    blk_deopts = rt.machine.Machine.blk_deopts;
  }

(** Turn on runtime-call / scheduler tracing.  Idempotent. *)
let enable_trace rt : Lfi_telemetry.Trace.t =
  match rt.trace with
  | Some t -> t
  | None ->
      let t = Lfi_telemetry.Trace.create () in
      Lfi_telemetry.Trace.process_name t ~pid:trace_pid ~name:"lfi-runtime";
      rt.trace <- Some t;
      t

(** Turn on pc sampling (every [period] instructions, rounded to a
    power of two).  Idempotent; the period of the first call wins. *)
let enable_profile ?period rt : Lfi_telemetry.Profile.t =
  match rt.machine.Machine.profile with
  | None ->
      let p = Lfi_telemetry.Profile.create ?period () in
      rt.machine.Machine.profile <- Some p;
      p
  | Some p -> p

(** Arm per-rewrite-site cycle attribution for sandbox [p], using the
    [.lfi_sites] table its image carried ([Proc.sites], rebased to the
    slot).  Returns [None] when the image has no site table.
    Idempotent; the machine holds one accumulator, so attribute one
    sandbox per runtime (exactly what [lfi_run --overhead] does). *)
let enable_overhead rt (p : Proc.t) : Lfi_telemetry.Overhead.acc option =
  match rt.machine.Machine.overhead with
  | Some a -> Some a
  | None ->
      if p.Proc.sites = [] then None
      else begin
        let a =
          Lfi_telemetry.Overhead.create
            ~base:(Int64.to_int p.Proc.base)
            p.Proc.sites
        in
        rt.machine.Machine.overhead <- Some a;
        Some a
      end

let overhead_acc rt = rt.machine.Machine.overhead

(* ------------------------------------------------------------------ *)
(* Address-space management                                            *)
(* ------------------------------------------------------------------ *)

let page = Memory.page_size

let align_down v = v / page * page
let align_up v = (v + page - 1) / page * page

let map_range rt (base : int64) ~(off : int) ~(len : int) ~perm =
  let lo = align_down off and hi = align_up (off + len) in
  Memory.map rt.mem
    ~addr:(Int64.add base (Int64.of_int lo))
    ~len:(hi - lo) ~perm

(** Build the read-only runtime-call table in the slot's first page.
    Entries hold host entry addresses; unused entries point into the
    (unmapped) guard region so a stray call traps. *)
let install_rtcall_table rt (base : int64) =
  map_range rt base ~off:0 ~len:Lfi_core.Layout.rtcall_table_size
    ~perm:Memory.perm_rw;
  let guard_trap = Int64.add base (Int64.of_int Lfi_core.Layout.rtcall_table_size) in
  for k = 0 to Lfi_core.Layout.rtcall_entry_count - 1 do
    let value =
      if k >= 1 && k < Sysno.count then
        Int64.add Machine.host_region_start (Int64.of_int (8 * k))
      else guard_trap
    in
    Memory.write rt.mem
      (Int64.add base (Int64.of_int (Lfi_core.Layout.rtcall_entry_offset k)))
      8 value
  done;
  Memory.protect rt.mem ~addr:base ~len:Lfi_core.Layout.rtcall_table_size
    ~perm:Memory.perm_r

let alloc_slot rt : int =
  match rt.free_slots with
  | s :: tl ->
      rt.free_slots <- tl;
      s
  | [] ->
      let s = rt.next_slot in
      rt.next_slot <- s + 1;
      s

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

exception Load_error of string

(** Rebase a slot-anchored value into [base]'s slot by replacing its
    top 32 bits — valid because sandbox pointers are 32-bit offsets
    (§5.3; exactly what the hardware guard would do). *)
let rebase (base : int64) (v : int64) =
  Int64.logor base (Int64.logand v 0xFFFFFFFFL)

(** The registers the rewriter reserves as slot anchors (x18 scratch,
    x21 call-table base, x23/x24 guard bases) plus the link register:
    every snapshot installed on the machine must keep these inside the
    owning slot. *)
let reserved_regs = [ 18; 21; 23; 24; 30 ]

(** Anchor a register snapshot to [base]: the reserved registers, pc
    and sp get their top bits replaced with the slot base, everything
    else is carried over verbatim (stray values heal through the
    address guards).  The one place snapshot construction happens —
    initial load, fork's child state, and libbox's call/reset snapshots
    all go through here. *)
let anchor_snapshot (base : int64) (snap : Machine.snapshot) :
    Machine.snapshot =
  let regs = Array.copy snap.Machine.s_regs in
  List.iter (fun n -> regs.(n) <- rebase base regs.(n)) reserved_regs;
  { snap with
    Machine.s_regs = regs;
    s_pc = rebase base snap.Machine.s_pc;
    s_sp = rebase base snap.Machine.s_sp }

let initial_snapshot (base : int64) ~(entry : int) ~(arg : int64) :
    Machine.snapshot =
  let regs = Array.make 31 0L in
  regs.(0) <- arg;
  regs.(30) <- Int64.of_int entry;
  anchor_snapshot base
    {
      Machine.s_pc = Int64.of_int entry;
      s_regs = regs;
      s_sp = Int64.of_int Lfi_core.Layout.stack_top;
      s_flags = (false, false, false, false);
      s_vlo = Array.make 32 0L;
      s_vhi = Array.make 32 0L;
    }

(** Load an ELF image into a fresh slot and create the process.
    Sandboxed programs ([`Lfi]) are statically verified first; native
    personalities run unsandboxed in slot 0 (base address 0), where
    sandbox-relative and absolute addresses coincide. *)
let load rt ?(arg = 0L) ~(personality : Proc.personality)
    (elf : Lfi_elf.Elf.t) : Proc.t =
  let native = personality <> Proc.Lfi in
  if native && rt.native_loaded then
    raise (Load_error "only one native process is supported (slot 0)");
  (* Verification: the trust boundary of the whole system. *)
  if rt.cfg.verify && not native then begin
    match Lfi_elf.Elf.text_segment elf with
    | None -> raise (Load_error "no executable segment")
    | Some seg -> (
        match
          Lfi_verifier.Verifier.verify ~config:rt.cfg.verifier_config
            ~origin:seg.Lfi_elf.Elf.vaddr ~code:seg.Lfi_elf.Elf.data ()
        with
        | Ok _ -> ()
        | Error vs ->
            raise
              (Load_error
                 (Format.asprintf "verification failed: %a (+%d more)"
                    Lfi_verifier.Verifier.pp_violation (List.hd vs)
                    (List.length vs - 1))))
  end;
  let slot = if native then 0 else alloc_slot rt in
  let base = Lfi_core.Layout.slot_base slot in
  if not native then install_rtcall_table rt base;
  (* Map and copy the segments. *)
  let data_end = ref Lfi_core.Layout.code_origin in
  List.iter
    (fun (s : Lfi_elf.Elf.segment) ->
      let len = s.Lfi_elf.Elf.memsz in
      if s.vaddr < Lfi_core.Layout.code_origin then
        raise (Load_error "segment below code origin");
      if s.flags land Lfi_elf.Elf.pf_x <> 0
         && s.vaddr + len > Lfi_core.Layout.code_limit
      then raise (Load_error "executable segment in the top 128MiB");
      (* map memsz (the BSS tail is zero pages), copy filesz *)
      map_range rt base ~off:s.vaddr ~len ~perm:Memory.perm_rw;
      Memory.write_bytes rt.mem (Int64.add base (Int64.of_int s.vaddr)) s.data;
      if s.flags land Lfi_elf.Elf.pf_x <> 0 then
        Memory.protect rt.mem
          ~addr:(Int64.add base (Int64.of_int (align_down s.vaddr)))
          ~len:(align_up (s.vaddr + len) - align_down s.vaddr)
          ~perm:Memory.perm_rx;
      data_end := max !data_end (s.vaddr + len))
    elf.Lfi_elf.Elf.segments;
  (* Stack below the top guard region. *)
  map_range rt base
    ~off:(Lfi_core.Layout.stack_top - rt.cfg.stack_size)
    ~len:rt.cfg.stack_size ~perm:Memory.perm_rw;
  let pid = rt.next_pid in
  rt.next_pid <- pid + 1;
  if native then rt.native_loaded <- true;
  let p =
    {
      Proc.pid;
      slot;
      base;
      personality;
      state = Proc.Runnable;
      snapshot = initial_snapshot base ~entry:elf.Lfi_elf.Elf.entry ~arg;
      fds = Hashtbl.create 8;
      next_fd = 3;
      heap_end = Int64.add base (Int64.of_int (align_up !data_end));
      parent = None;
      children = [];
      stdout = Buffer.create 256;
      user_insns = 0;
      rtcalls = 0;
      symbols = Lfi_telemetry.Profile.sym_table elf.Lfi_elf.Elf.symbols;
      sites = elf.Lfi_elf.Elf.sites;
      flight = Lfi_telemetry.Flight.create ();
    }
  in
  Proc.install_std_fds p;
  Hashtbl.replace rt.procs pid p;
  Lfi_sched.Runq.push rt.runq pid;
  (match rt.trace with
  | None -> ()
  | Some t ->
      Lfi_telemetry.Trace.thread_name t ~pid:trace_pid ~tid:pid
        ~name:
          (Printf.sprintf "sandbox %d (%s)" pid
             (Proc.personality_name personality)));
  p

let load_image rt ?arg ~personality (img : Lfi_arm64.Assemble.image) =
  load rt ?arg ~personality (Lfi_elf.Elf.of_image img)

(* ------------------------------------------------------------------ *)
(* Runtime-call helpers                                                *)
(* ------------------------------------------------------------------ *)

(** Reconstruct a sandbox pointer from a (possibly garbage) 64-bit
    value: the top 32 bits are replaced with the sandbox base, exactly
    as the hardware guard would (§5.3 — this is what makes fork in a
    single address space work). *)
let uaddr (p : Proc.t) (v : int64) : int64 =
  match p.Proc.personality with
  | Proc.Lfi -> Int64.logor p.Proc.base (Int64.logand v 0xFFFFFFFFL)
  | _ -> v

(* A copyin/copyout that faults is the sandbox handing the runtime a
   bad pointer: that is EFAULT, not EINVAL (which is reserved for
   malformed arguments, e.g. an over-long path below). *)
let read_user_bytes rt p (addr : int64) (len : int) : (bytes, int) result =
  try Ok (Memory.read_bytes rt.mem (uaddr p addr) len)
  with Memory.Fault _ -> Error Vfs.efault

let write_user_bytes rt p (addr : int64) (b : bytes) : (unit, int) result =
  try
    Memory.write_bytes rt.mem (uaddr p addr) b;
    Ok ()
  with Memory.Fault _ -> Error Vfs.efault

let read_user_string rt p (addr : int64) : (string, int) result =
  let addr = uaddr p addr in
  let buf = Buffer.create 32 in
  let rec go i =
    if i > 4096 then Error Vfs.einval
    else
      let c = Memory.read rt.mem (Int64.add addr (Int64.of_int i)) 1 in
      if Int64.equal c 0L then Ok (Buffer.contents buf)
      else begin
        Buffer.add_char buf (Char.chr (Int64.to_int c));
        go (i + 1)
      end
  in
  try go 0 with Memory.Fault _ -> Error Vfs.efault

let syscall_entry_cost rt (p : Proc.t) =
  let u = rt.cfg.uarch in
  match p.Proc.personality with
  | Proc.Lfi | Proc.Native_in_lfi_runtime ->
      u.Cost_model.lfi_runtime_call_entry
  | Proc.Native_linux -> u.Cost_model.linux_syscall
  | Proc.Native_gvisor -> u.Cost_model.gvisor_syscall

(** Cost charged when the scheduler switches between processes.  For
    LFI this is just the runtime's bookkeeping — the register swap is a
    snapshot copy with no hardware mode or page-table switch, which is
    the whole point (§6.4).  The hardware-protection personalities pay
    their modeled context-switch cost. *)
let lfi_sched_bookkeeping = 8.0

let switch_cost rt (p : Proc.t) =
  let u = rt.cfg.uarch in
  match p.Proc.personality with
  | Proc.Lfi | Proc.Native_in_lfi_runtime -> lfi_sched_bookkeeping
  | Proc.Native_linux -> u.Cost_model.linux_pipe_roundtrip /. 3.0
  | Proc.Native_gvisor -> u.Cost_model.gvisor_pipe_roundtrip /. 3.0

(* ------------------------------------------------------------------ *)
(* Fork (§5.3)                                                         *)
(* ------------------------------------------------------------------ *)

let do_fork rt (parent : Proc.t) : int =
  if parent.Proc.personality <> Proc.Lfi then Vfs.einval
  else begin
    let slot = alloc_slot rt in
    let base = Lfi_core.Layout.slot_base slot in
    install_rtcall_table rt base;
    (* Copy every mapped page of the parent slot (eager copy; the paper
       also describes copy-on-write via memfd, which we do not model). *)
    let parent_first = Int64.to_int (Int64.shift_right_logical parent.Proc.base Memory.page_bits) in
    let pages_per_slot = Lfi_core.Layout.sandbox_size / page in
    List.iter
      (fun (idx, pg) ->
        if idx >= parent_first && idx < parent_first + pages_per_slot
           && idx > parent_first (* skip the call table page; freshly built *)
        then begin
          let off = (idx - parent_first) * page in
          let child_addr = Int64.add base (Int64.of_int off) in
          Memory.map rt.mem ~addr:child_addr ~len:page ~perm:Memory.perm_rw;
          let child_idx =
            Int64.to_int (Int64.shift_right_logical child_addr Memory.page_bits)
          in
          (match Memory.find_page_by_index rt.mem child_idx with
          | Some cp ->
              Bytes.blit (Memory.page_data pg) 0 (Memory.page_data cp) 0 page;
              Memory.set_page_perm rt.mem child_idx (Memory.page_perm pg)
          | None -> assert false)
        end)
      (Memory.mapped_pages rt.mem);
    (* Child registers: parent's current state anchored to the child
       slot; everything non-reserved heals via guards. *)
    let snap = Machine.snapshot rt.machine in
    snap.Machine.s_regs.(0) <- 0L (* fork returns 0 in the child *);
    let child_snap = anchor_snapshot base snap in
    let pid = rt.next_pid in
    rt.next_pid <- pid + 1;
    let child =
      {
        Proc.pid;
        slot;
        base;
        personality = Proc.Lfi;
        state = Proc.Runnable;
        snapshot = child_snap;
        fds = Hashtbl.create 8;
        next_fd = 3;
        heap_end = rebase base parent.Proc.heap_end;
        parent = Some parent.Proc.pid;
        children = [];
        stdout = Buffer.create 256;
        user_insns = 0;
        rtcalls = 0;
        symbols = parent.Proc.symbols;
        sites = parent.Proc.sites;
        flight = Lfi_telemetry.Flight.create ();
      }
    in
    Proc.dup_fds parent child;
    parent.Proc.children <- pid :: parent.Proc.children;
    Hashtbl.replace rt.procs pid child;
    Lfi_sched.Runq.push rt.runq pid;
    (match rt.trace with
    | None -> ()
    | Some t ->
        Lfi_telemetry.Trace.thread_name t ~pid:trace_pid ~tid:pid
          ~name:(Printf.sprintf "sandbox %d (lfi)" pid);
        Lfi_telemetry.Trace.instant t ~name:"fork" ~cat:"proc"
          ~ts:(Machine.cycles rt.machine) ~pid:trace_pid
          ~tid:parent.Proc.pid
          ~args:[ ("child", Lfi_telemetry.Trace.Int pid) ]);
    pid
  end

(* ------------------------------------------------------------------ *)
(* Blocking-call completion                                            *)
(* ------------------------------------------------------------------ *)

(** Reap one zombie child of [p], if any: returns [(pid, code)]. *)
let find_zombie_child rt (p : Proc.t) : (int * int) option =
  List.find_map
    (fun cpid ->
      match Hashtbl.find_opt rt.procs cpid with
      | Some { Proc.state = Proc.Zombie code; _ } -> Some (cpid, code)
      | _ -> None)
    p.Proc.children

let release_slot rt (child : Proc.t) =
  (* unmap the whole slot and recycle it *)
  let first = Int64.to_int (Int64.shift_right_logical child.Proc.base Memory.page_bits) in
  let pages_per_slot = Lfi_core.Layout.sandbox_size / page in
  List.iter
    (fun (idx, _) ->
      if idx >= first && idx < first + pages_per_slot then
        Memory.unmap rt.mem
          ~addr:(Int64.shift_left (Int64.of_int idx) Memory.page_bits)
          ~len:page)
    (Memory.mapped_pages rt.mem);
  if child.Proc.slot <> 0 then
    rt.free_slots <- child.Proc.slot :: rt.free_slots;
  (* the clamp audit outlives the process table entry *)
  rt.clamps_reaped <-
    rt.clamps_reaped + Lfi_telemetry.Flight.clamps child.Proc.flight

let reap rt (parent : Proc.t) (cpid : int) (code : int)
    ~(status_addr : int64) ~(set_result : int64 -> unit) =
  (match Hashtbl.find_opt rt.procs cpid with
  | Some child -> release_slot rt child
  | None -> ());
  Hashtbl.remove rt.procs cpid;
  parent.Proc.children <-
    List.filter (fun c -> c <> cpid) parent.Proc.children;
  if not (Int64.equal status_addr 0L) then
    ignore
      (write_user_bytes rt parent status_addr
         (let b = Bytes.create 4 in
          Bytes.set_int32_le b 0 (Int32.of_int code);
          b));
  set_result (Int64.of_int cpid)

(** Try to complete a blocked process's pending operation. *)
let try_wake rt (p : Proc.t) =
  let set_result v = p.Proc.snapshot.Machine.s_regs.(0) <- v in
  match p.Proc.state with
  | Proc.Blocked (Proc.On_read { fd; addr; len }) -> (
      match Proc.fd p fd with
      | Some (Vfs.Pipe_read pipe) -> (
          match Vfs.pipe_read pipe len with
          | `Data b ->
              (match write_user_bytes rt p addr b with
              | Ok () -> set_result (Int64.of_int (Bytes.length b))
              | Error e -> set_result (Int64.of_int e));
              p.Proc.state <- Proc.Runnable
          | `Eof ->
              set_result 0L;
              p.Proc.state <- Proc.Runnable
          | `Would_block -> ())
      | _ ->
          set_result (Int64.of_int Vfs.ebadf);
          p.Proc.state <- Proc.Runnable)
  | Proc.Blocked (Proc.On_write { fd; addr; len }) -> (
      match Proc.fd p fd with
      | Some (Vfs.Pipe_write pipe) -> (
          match read_user_bytes rt p addr len with
          | Error e ->
              set_result (Int64.of_int e);
              p.Proc.state <- Proc.Runnable
          | Ok b -> (
              match Vfs.pipe_write pipe b with
              | `Wrote n ->
                  set_result (Int64.of_int n);
                  p.Proc.state <- Proc.Runnable
              | `Broken ->
                  set_result (Int64.of_int Vfs.epipe);
                  p.Proc.state <- Proc.Runnable
              | `Would_block -> ()))
      | _ ->
          set_result (Int64.of_int Vfs.ebadf);
          p.Proc.state <- Proc.Runnable)
  | Proc.Blocked (Proc.On_wait { status_addr }) -> (
      match find_zombie_child rt p with
      | Some (cpid, code) ->
          reap rt p cpid code ~status_addr ~set_result;
          p.Proc.state <- Proc.Runnable
      | None -> ())
  | Proc.Runnable | Proc.Zombie _ -> ()

(* ------------------------------------------------------------------ *)
(* Runtime call dispatch                                               *)
(* ------------------------------------------------------------------ *)

type outcome = Continue | Switch | Died of exit_reason

let do_exit rt (p : Proc.t) (code : int) : outcome =
  Proc.close_all p;
  p.Proc.state <- Proc.Zombie code;
  rt.exit_log <- (p.Proc.pid, Exited code) :: rt.exit_log;
  Died (Exited code)

let handle_call rt (p : Proc.t) (k : int) : outcome =
  let m = rt.machine in
  let arg n = m.Machine.regs.(n) in
  let ret v =
    m.Machine.regs.(0) <- v;
    Continue
  in
  let reti v = ret (Int64.of_int v) in
  rt.rtcalls <- rt.rtcalls + 1;
  p.Proc.rtcalls <- p.Proc.rtcalls + 1;
  if rt.cfg.spectre_hardening then
    (* SCXTNUM_EL0 is rewritten when entering and when leaving the
       runtime (§7.1) *)
    Machine.add_cycles m (2.0 *. rt.cfg.uarch.Cost_model.scxtnum_switch);
  (* the optimized direct yield skips the general runtime-call
     entry/exit path: it only saves/restores callee-saved registers
     (§5.3) and is priced in its own handler *)
  if k <> Sysno.yield_to then
    Machine.add_cycles m (syscall_entry_cost rt p);
  if k = Sysno.exit then do_exit rt p (Int64.to_int (arg 0))
  else if k = Sysno.write then begin
    let fd = Int64.to_int (arg 0) and addr = arg 1
    and len = min (Int64.to_int (arg 2)) (1 lsl 20) in
    if len < 0 then reti Vfs.einval
    else
      match Proc.fd p fd with
      | Some Vfs.Console_out -> (
          match read_user_bytes rt p addr len with
          | Error e -> reti e
          | Ok b ->
              Buffer.add_bytes p.Proc.stdout b;
              if rt.cfg.echo_stdout then print_string (Bytes.to_string b);
              reti len)
      | Some (Vfs.File f) when f.writable -> (
          match read_user_bytes rt p addr len with
          | Error e -> reti e
          | Ok b ->
              Vfs.file_write f.file ~pos:f.pos b;
              f.pos <- f.pos + len;
              reti len)
      | Some (Vfs.Pipe_write pipe) -> (
          match read_user_bytes rt p addr len with
          | Error e -> reti e
          | Ok b -> (
              match Vfs.pipe_write pipe b with
              | `Wrote n -> reti n
              | `Broken -> reti Vfs.epipe
              | `Would_block ->
                  p.Proc.state <- Proc.Blocked (Proc.On_write { fd; addr; len });
                  Switch))
      | Some _ | None -> reti Vfs.ebadf
  end
  else if k = Sysno.read then begin
    let fd = Int64.to_int (arg 0) and addr = arg 1
    and len = min (Int64.to_int (arg 2)) (1 lsl 20) in
    if len < 0 then reti Vfs.einval
    else
      match Proc.fd p fd with
      | Some Vfs.Console_in -> reti 0
      | Some (Vfs.File f) ->
          let b = Vfs.file_read f.file ~pos:f.pos ~len in
          (match write_user_bytes rt p addr b with
          | Error e -> reti e
          | Ok () ->
              f.pos <- f.pos + Bytes.length b;
              reti (Bytes.length b))
      | Some (Vfs.Pipe_read pipe) -> (
          match Vfs.pipe_read pipe len with
          | `Data b -> (
              match write_user_bytes rt p addr b with
              | Error e -> reti e
              | Ok () -> reti (Bytes.length b))
          | `Eof -> reti 0
          | `Would_block ->
              p.Proc.state <- Proc.Blocked (Proc.On_read { fd; addr; len });
              Switch)
      | Some _ | None -> reti Vfs.ebadf
  end
  else if k = Sysno.openat then begin
    match read_user_string rt p (arg 0) with
    | Error e -> reti e
    | Ok path -> (
        let writable = not (Int64.equal (arg 1) 0L) in
        match Vfs.open_file rt.vfs ~path ~writable with
        | Ok obj -> reti (Proc.alloc_fd p obj)
        | Error e -> reti e)
  end
  else if k = Sysno.close then reti (Proc.close_fd p (Int64.to_int (arg 0)))
  else if k = Sysno.pipe then begin
    let pipe = Vfs.make_pipe () in
    let fd_r = Proc.alloc_fd p (Vfs.Pipe_read pipe) in
    let fd_w = Proc.alloc_fd p (Vfs.Pipe_write pipe) in
    let b = Bytes.create 8 in
    Bytes.set_int32_le b 0 (Int32.of_int fd_r);
    Bytes.set_int32_le b 4 (Int32.of_int fd_w);
    match write_user_bytes rt p (arg 0) b with
    | Error e -> reti e
    | Ok () -> reti 0
  end
  else if k = Sysno.fork then reti (do_fork rt p)
  else if k = Sysno.wait then begin
    let status_addr = arg 0 in
    match find_zombie_child rt p with
    | Some (cpid, code) ->
        reap rt p cpid code ~status_addr ~set_result:(fun v ->
            m.Machine.regs.(0) <- v);
        Continue
    | None ->
        if p.Proc.children = [] then reti (-10 (* ECHILD *))
        else begin
          p.Proc.state <- Proc.Blocked (Proc.On_wait { status_addr });
          Switch
        end
  end
  else if k = Sysno.yield then begin
    ignore (ret 0L);
    Switch
  end
  else if k = Sysno.getpid then reti p.Proc.pid
  else if k = Sysno.mmap then begin
    let len = align_up (Int64.to_int (arg 0)) in
    if len <= 0 || len > 1 lsl 30 then reti Vfs.einval
    else begin
      let addr = p.Proc.heap_end in
      let limit =
        Int64.add p.Proc.base
          (Int64.of_int (Lfi_core.Layout.stack_top - rt.cfg.stack_size))
      in
      if Int64.compare (Int64.add addr (Int64.of_int len)) limit > 0 then
        reti (-12 (* ENOMEM *))
      else begin
        Memory.map rt.mem ~addr ~len ~perm:Memory.perm_rw;
        p.Proc.heap_end <- Int64.add addr (Int64.of_int len);
        ret addr
      end
    end
  end
  else if k = Sysno.munmap then begin
    let addr = uaddr p (arg 0) and len = align_up (Int64.to_int (arg 1)) in
    let off = Int64.to_int (Int64.sub addr p.Proc.base) in
    if off < Lfi_core.Layout.code_origin || len <= 0 then reti Vfs.einval
    else begin
      (try Memory.unmap rt.mem ~addr:(Int64.of_int (align_down (Int64.to_int addr))) ~len
       with Invalid_argument _ -> ());
      reti 0
    end
  end
  else if k = Sysno.brk then begin
    let want = arg 0 in
    if Int64.equal want 0L then ret (Int64.sub p.Proc.heap_end p.Proc.base)
    else begin
      let new_end = uaddr p want in
      if Int64.compare new_end p.Proc.heap_end > 0 then begin
        let len =
          align_up (Int64.to_int (Int64.sub new_end p.Proc.heap_end))
        in
        Memory.map rt.mem ~addr:p.Proc.heap_end ~len ~perm:Memory.perm_rw;
        p.Proc.heap_end <- Int64.add p.Proc.heap_end (Int64.of_int len)
      end;
      ret (Int64.sub p.Proc.heap_end p.Proc.base)
    end
  end
  else if k = Sysno.yield_to then begin
    let target = Int64.to_int (arg 0) in
    match Hashtbl.find_opt rt.procs target with
    | Some tp when Proc.is_runnable tp && tp.Proc.pid <> p.Proc.pid ->
        ignore (ret 0L);
        (* direct invocation: put the target at the head of the queue *)
        Lfi_sched.Runq.promote rt.runq target;
        Machine.add_cycles m rt.cfg.uarch.Cost_model.lfi_yield_direct;
        Switch
    | _ -> reti Vfs.einval
  end
  else if k = Sysno.cycles then ret (Int64.of_float (Machine.cycles m))
  else reti (-38 (* ENOSYS *))

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

exception Deadlock

let next_runnable rt : Proc.t option =
  (* poll blocked processes first (the "signals" of our runtime) *)
  Hashtbl.iter (fun _ p -> try_wake rt p) rt.procs;
  Lfi_sched.Runq.select rt.runq
    ~keep:(fun pid -> Hashtbl.mem rt.procs pid)
    ~runnable:(fun pid ->
      match Hashtbl.find_opt rt.procs pid with
      | Some p -> Proc.is_runnable p
      | None -> false)
  |> Option.map (Hashtbl.find rt.procs)

(* ------------------------------------------------------------------ *)
(* Postmortem collection                                               *)
(* ------------------------------------------------------------------ *)

let perm_string (pm : Memory.perm) : string =
  Printf.sprintf "%c%c%c"
    (if pm.Memory.r then 'r' else '-')
    (if pm.Memory.w then 'w' else '-')
    (if pm.Memory.x then 'x' else '-')

(** Frame-pointer backtrace, symbolized through the process's ELF
    [.symtab].  MiniC prologues keep the AArch64 frame chain
    ([stp x29, x30, \[sp\]; add x29, sp, #0]), so [\[x29\]] is the
    caller's frame pointer and [\[x29+8\]] the return address.  Frame
    pointers are clamped with {!uaddr} exactly like the hardware guard
    would, and the walk stops at the initial zero frame, at unmapped
    memory, or after 32 frames. *)
let backtrace rt (p : Proc.t) ~(pc : int64) ~(fp : int64) :
    Lfi_telemetry.Postmortem.frame list =
  let frame (a : int64) : Lfi_telemetry.Postmortem.frame =
    let off = Int64.to_int (Int64.sub a p.Proc.base) in
    match Lfi_telemetry.Profile.resolve_sym p.Proc.symbols off with
    | Some (name, d) ->
        { Lfi_telemetry.Postmortem.fr_pc = a; fr_sym = Some name; fr_off = d }
    | None ->
        { Lfi_telemetry.Postmortem.fr_pc = a; fr_sym = None; fr_off = off }
  in
  let rec walk acc (fp : int64) depth =
    if depth >= 32 then acc
    else
      let fp = uaddr p fp in
      let off = Int64.to_int (Int64.logand fp 0xFFFFFFFFL) in
      if off < Lfi_core.Layout.code_origin || off land 7 <> 0 then acc
      else
        match
          (Memory.read rt.mem fp 8, Memory.read rt.mem (Int64.add fp 8L) 8)
        with
        | prev, ret ->
            let ret = uaddr p ret in
            if Int64.equal (Int64.logand ret 0xFFFFFFFFL) 0L then acc
            else walk (frame ret :: acc) prev (depth + 1)
        | exception Memory.Fault _ -> acc
  in
  frame pc :: List.rev (walk [] fp 0)

(** Disassemble the ±4 instructions around [pc] (the verifier's
    [pp_violation] context style; the faulting line is marked). *)
let disasm_context rt (p : Proc.t) (pc : int64) :
    Lfi_telemetry.Postmortem.disasm_line list =
  List.filter_map
    (fun k ->
      let a = Int64.add pc (Int64.of_int (4 * k)) in
      if Int64.compare a p.Proc.base < 0 then None
      else
        match Memory.read rt.mem a 4 with
        | w ->
            let word = Int64.to_int w in
            let text =
              match Lfi_arm64.Decode.decode word with
              | i -> Lfi_arm64.Printer.to_string i
              | exception _ -> Printf.sprintf ".word 0x%08x" word
            in
            Some
              {
                Lfi_telemetry.Postmortem.dl_pc = a;
                dl_word = word;
                dl_text = text;
                dl_current = k = 0;
              }
        | exception Memory.Fault _ -> None)
    [ -4; -3; -2; -1; 0; 1; 2; 3; 4 ]

(** Four 16-byte hexdump rows around [addr]; unreadable bytes are
    [None] (rendered [??]). *)
let hexdump_around rt (addr : int64) : Lfi_telemetry.Postmortem.hex_row list =
  let start = Int64.sub (Int64.logand addr (Int64.lognot 15L)) 16L in
  let start = if Int64.compare start 0L < 0 then 0L else start in
  List.init 4 (fun r ->
      let row_addr = Int64.add start (Int64.of_int (16 * r)) in
      let bytes =
        Array.init 16 (fun i ->
            let a = Int64.add row_addr (Int64.of_int i) in
            match Memory.read rt.mem a 1 with
            | v -> Some (Int64.to_int v)
            | exception Memory.Fault _ -> None)
      in
      { Lfi_telemetry.Postmortem.hr_addr = row_addr; hr_bytes = bytes })

(** Permissions of the fault page and its two neighbours on each side
    (clipped to the sandbox slot). *)
let fault_pages rt (p : Proc.t) (addr : int64) :
    Lfi_telemetry.Postmortem.page_info list =
  let idx = Memory.page_index addr in
  let lo_idx = Memory.page_index p.Proc.base in
  let hi_idx = lo_idx + (Lfi_core.Layout.sandbox_size / Memory.page_size) in
  List.filter_map
    (fun d ->
      let i = idx + d in
      if i < 0 || (p.Proc.personality = Proc.Lfi && (i < lo_idx || i >= hi_idx))
      then None
      else
        let pg_addr = Int64.shift_left (Int64.of_int i) Memory.page_bits in
        let pg_perm =
          match Memory.find_page_by_index rt.mem i with
          | Some pg -> perm_string (Memory.page_perm pg)
          | None -> "---"
        in
        Some { Lfi_telemetry.Postmortem.pg_addr; pg_perm })
    [ -2; -1; 0; 1; 2 ]

(** The sandbox's mapped regions, coalesced by permission, with
    heuristic labels from {!Lfi_core.Layout}. *)
let sandbox_layout rt (p : Proc.t) : Lfi_telemetry.Postmortem.region list =
  let first = Memory.page_index p.Proc.base in
  let count = Lfi_core.Layout.sandbox_size / Memory.page_size in
  let pages =
    Memory.mapped_pages rt.mem
    |> List.filter_map (fun (idx, pg) ->
           if idx >= first && idx < first + count then
             Some (idx, perm_string (Memory.page_perm pg))
           else None)
    |> List.sort compare
  in
  let addr_of_idx i = Int64.shift_left (Int64.of_int i) Memory.page_bits in
  let label lo_off perm =
    if lo_off = 0 && p.Proc.personality = Proc.Lfi then "rtcall table"
    else if String.contains perm 'x' then "code"
    else if lo_off >= Lfi_core.Layout.stack_top - rt.cfg.stack_size then
      "stack"
    else "data/heap"
  in
  let rec coalesce acc = function
    | [] -> List.rev acc
    | (idx, perm) :: rest ->
        let rec extend last = function
          | (j, q) :: tl when j = last + 1 && q = perm -> extend j tl
          | rest -> (last, rest)
        in
        let last, rest = extend idx rest in
        let lo_off = (idx - first) * Memory.page_size in
        let r =
          {
            Lfi_telemetry.Postmortem.rg_lo = addr_of_idx idx;
            rg_hi = addr_of_idx (last + 1);
            rg_perm = perm;
            rg_label = label lo_off perm;
          }
        in
        coalesce (r :: acc) rest
  in
  coalesce [] pages

(** Assemble the crash report for [p] from the machine's current state
    (the register file is still the dead sandbox's: [kill] runs before
    the next context switch).  Stored on the runtime for every killed
    process; also callable directly. *)
let postmortem rt (p : Proc.t) ~(reason : string)
    ?(fault : Memory.fault option) () : Lfi_telemetry.Postmortem.t =
  let m = rt.machine in
  let fl = p.Proc.flight in
  let pc = m.Machine.pc in
  let flags =
    Printf.sprintf "%c%c%c%c"
      (if m.Machine.flag_n then 'N' else '-')
      (if m.Machine.flag_z then 'Z' else '-')
      (if m.Machine.flag_c then 'C' else '-')
      (if m.Machine.flag_v then 'V' else '-')
  in
  let fault_addr =
    match fault with Some f -> Some f.Memory.addr | None -> None
  in
  let fault_access =
    match fault with
    | Some f -> Some (Memory.access_to_string f.Memory.access)
    | None -> None
  in
  {
    Lfi_telemetry.Postmortem.pid = p.Proc.pid;
    personality = Proc.personality_name p.Proc.personality;
    reason;
    base = p.Proc.base;
    insns = p.Proc.user_insns;
    cycles = Machine.cycles m;
    fault_addr;
    fault_access;
    pc;
    sp = m.Machine.sp;
    regs = Array.copy m.Machine.regs;
    flags;
    backtrace = backtrace rt p ~pc ~fp:m.Machine.regs.(29);
    disasm = disasm_context rt p pc;
    hexdump =
      (match fault_addr with
      | Some a -> hexdump_around rt a
      | None -> []);
    pages =
      (match fault_addr with Some a -> fault_pages rt p a | None -> []);
    layout = sandbox_layout rt p;
    flight_total = Lfi_telemetry.Flight.total fl;
    flight = Lfi_telemetry.Flight.events fl;
    clamps = Lfi_telemetry.Flight.clamps fl;
  }

(** Crash reports of killed sandboxes, most recent first. *)
let postmortems rt = rt.postmortems

(** The report of one killed sandbox, if it was killed. *)
let postmortem_for rt (pid : int) : Lfi_telemetry.Postmortem.t option =
  List.assoc_opt pid rt.postmortems

(** Kill [p]: assemble its crash report while the machine still holds
    its register state, close its descriptors, and record the exit.
    Factored out of the scheduler so libbox can retire a crashed warm
    instance through exactly the fault path ordinary programs take. *)
let kill_proc rt ?(fault : Memory.fault option) (p : Proc.t)
    (reason : string) =
  rt.postmortems <-
    (p.Proc.pid, postmortem rt p ~reason ?fault ()) :: rt.postmortems;
  Proc.close_all p;
  p.Proc.state <- Proc.Zombie (-1);
  rt.exit_log <- (p.Proc.pid, Killed reason) :: rt.exit_log

(** Remove an exited or killed process from the runtime entirely,
    unmapping its slot and recycling it.  Ordinary programs are reaped
    by their parent via [wait]; pool instances have no parent, so
    libbox retires them here. *)
let remove_proc rt (p : Proc.t) =
  release_slot rt p;
  Hashtbl.remove rt.procs p.Proc.pid;
  Lfi_sched.Runq.remove rt.runq p.Proc.pid

(** Guard-clamp audit total across all sandboxes, living and reaped:
    how many times a guarded access would have escaped its sandbox had
    the guard not clamped it.  Zero for all well-behaved programs. *)
let total_clamps rt : int =
  Hashtbl.fold
    (fun _ p acc -> acc + Lfi_telemetry.Flight.clamps p.Proc.flight)
    rt.procs rt.clamps_reaped

(** Run until every process has exited.  Returns the exit log (most
    recent first). *)
let run rt : (int * exit_reason) list =
  let m = rt.machine in
  let rec schedule () =
    match next_runnable rt with
    | None ->
        let blocked =
          Hashtbl.fold
            (fun _ p acc ->
              match p.Proc.state with Proc.Blocked _ -> acc + 1 | _ -> acc)
            rt.procs 0
        in
        if blocked > 0 then raise Deadlock else ()
    | Some p ->
        rt.ctx_switches <- rt.ctx_switches + 1;
        (match rt.trace with
        | None -> ()
        | Some t ->
            Lfi_telemetry.Trace.instant t ~name:"ctx-switch" ~cat:"sched"
              ~ts:(Machine.cycles m) ~pid:trace_pid ~tid:p.Proc.pid ~args:[]);
        Machine.add_cycles m (switch_cost rt p);
        if rt.cfg.spectre_hardening then
          Machine.add_cycles m rt.cfg.uarch.Cost_model.scxtnum_switch;
        Machine.restore m p.Proc.snapshot;
        m.Machine.flight <-
          (if rt.cfg.flight_recorder then Some p.Proc.flight else None);
        (match m.Machine.flight with
        | None -> ()
        | Some f ->
            Lfi_telemetry.Flight.record f Lfi_telemetry.Flight.k_ctx_switch
              (Int64.to_int m.Machine.pc) p.Proc.pid);
        execute p;
        schedule ()
  and execute (p : Proc.t) =
    let start_insns = m.Machine.insns in
    let finish () =
      p.Proc.user_insns <- p.Proc.user_insns + (m.Machine.insns - start_insns)
    in
    let ev = Exec.run m ~quantum:rt.cfg.quantum in
    (* overhead counter track: one sample per scheduler quantum keeps
       the trace linear in scheduling events, not instructions *)
    (match (rt.trace, m.Machine.overhead) with
    | Some t, Some a ->
        Lfi_telemetry.Trace.counter t ~name:"sfi-overhead-cycles"
          ~cat:"overhead" ~ts:(Machine.cycles m) ~pid:trace_pid
          ~args:
            [ ( "attributed",
                Lfi_telemetry.Trace.Float
                  (Lfi_telemetry.Overhead.attributed_cycles a) ) ]
    | _ -> ());
    match ev with
    | Exec.Quantum_expired ->
        (* timer preemption (setitimer in the real runtime) *)
        rt.preemptions <- rt.preemptions + 1;
        (match m.Machine.flight with
        | None -> ()
        | Some f ->
            Lfi_telemetry.Flight.record f Lfi_telemetry.Flight.k_preempt
              (Int64.to_int m.Machine.pc) p.Proc.pid);
        p.Proc.snapshot <- Machine.snapshot m;
        finish ()
    | Exec.Runtime_entry pc ->
        let k =
          Int64.to_int (Int64.sub pc Machine.host_region_start) / 8
        in
        (* return address: blr x30 left it in x30 *)
        m.Machine.pc <- m.Machine.regs.(30);
        run_call p k ~finish
    | Exec.Trap (Exec.Svc_trap k) ->
        if p.Proc.personality = Proc.Lfi then begin
          (* a verified binary can never reach here *)
          p.Proc.snapshot <- Machine.snapshot m;
          finish ();
          kill p "svc from sandboxed code"
        end
        else run_call p k ~finish
    | Exec.Trap (Exec.Mem_fault f) ->
        finish ();
        kill p ~fault:f (Format.asprintf "%a" Memory.pp_fault f)
    | Exec.Trap (Exec.Undefined pc) ->
        finish ();
        kill p (Printf.sprintf "undefined instruction at 0x%Lx" pc)
  and run_call (p : Proc.t) (k : int) ~finish =
    let t0 = Machine.cycles m in
    (match m.Machine.flight with
    | None -> ()
    | Some f ->
        Lfi_telemetry.Flight.record f Lfi_telemetry.Flight.k_rt_enter
          (Int64.to_int m.Machine.pc) k);
    let outcome = handle_call rt p k in
    (match m.Machine.flight with
    | None -> ()
    | Some f ->
        Lfi_telemetry.Flight.record f Lfi_telemetry.Flight.k_rt_exit
          (Int64.to_int m.Machine.pc) k);
    let dur = Machine.cycles m -. t0 in
    (match rt.trace with
    | None -> ()
    | Some t ->
        Lfi_telemetry.Trace.complete t ~name:(Sysno.name k) ~cat:"rtcall"
          ~ts:t0 ~dur ~pid:trace_pid ~tid:p.Proc.pid
          ~args:[ ("result", Lfi_telemetry.Trace.I64 m.Machine.regs.(0)) ]);
    (match rt.call_hist with
    | None -> ()
    | Some hs ->
        if k >= 0 && k < Sysno.count then
          Lfi_telemetry.Histogram.observe hs.(k) dur);
    match outcome with
    | Continue -> execute p
    | Switch ->
        p.Proc.snapshot <- Machine.snapshot m;
        finish ()
    | Died _ -> finish ()
  and kill ?fault (p : Proc.t) reason = kill_proc rt ?fault p reason in
  schedule ();
  rt.exit_log

(** Run a single program to completion and return
    [(exit_reason, stdout, cycles, insns)]. *)
let run_one rt (p : Proc.t) =
  let log = run rt in
  let reason =
    match List.assoc_opt p.Proc.pid log with
    | Some r -> r
    | None -> Killed "did not exit"
  in
  (reason, stdout_of p, cycles rt, insns rt)

(* ------------------------------------------------------------------ *)
(* Telemetry reports                                                   *)
(* ------------------------------------------------------------------ *)

(** Full metrics report as a JSON object: the emulator cache counters,
    the scheduler counters, and (when metrics were enabled) one latency
    histogram per runtime call that occurred. *)
let metrics_json rt : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"emulator\": ";
  Buffer.add_string b
    (Lfi_telemetry.Metrics.snapshot_to_json (metrics_snapshot rt));
  Buffer.add_string b ",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"runtime\": {\"ctx_switches\": %d, \"rtcalls\": %d, \
        \"preemptions\": %d, \"insns\": %d, \"cycles\": %.1f}"
       rt.ctx_switches rt.rtcalls rt.preemptions (insns rt) (cycles rt));
  (* guard-clamp audit: per-sandbox and total counts of guarded
     accesses whose unguarded address would have escaped the sandbox *)
  Buffer.add_string b
    (Printf.sprintf ",\n  \"guard_clamps\": {\"total\": %d" (total_clamps rt));
  Hashtbl.fold (fun _ p acc -> p :: acc) rt.procs []
  |> List.sort (fun a b -> compare a.Proc.pid b.Proc.pid)
  |> List.iter (fun p ->
         Buffer.add_string b
           (Printf.sprintf ", \"sandbox_%d\": %d" p.Proc.pid
              (Lfi_telemetry.Flight.clamps p.Proc.flight)));
  Buffer.add_string b "}";
  (match rt.call_hist with
  | None -> ()
  | Some hs ->
      Buffer.add_string b ",\n  \"rtcall_latency\": {\n";
      let first = ref true in
      Array.iteri
        (fun k h ->
          if h.Lfi_telemetry.Histogram.count > 0 then begin
            if not !first then Buffer.add_string b ",\n";
            first := false;
            Buffer.add_string b
              (Printf.sprintf "    \"%s\": %s" (Sysno.name k)
                 (Lfi_telemetry.Histogram.to_json h))
          end)
        hs;
      Buffer.add_string b "\n  }");
  Buffer.add_string b "\n}\n";
  Buffer.contents b

(** Per-sandbox flat profiles, one entry per process still in the
    table (exited-but-unreaped zombies included), ordered by pid.  A
    sample is attributed to the sandbox whose 4GiB slot contains its
    pc, then folded through that sandbox's ELF symbols. *)
let profile_report rt : (Proc.t * Lfi_telemetry.Profile.line list) list =
  match rt.machine.Machine.profile with
  | None -> []
  | Some prof ->
      Hashtbl.fold (fun _ p acc -> p :: acc) rt.procs []
      |> List.sort (fun a b -> compare a.Proc.pid b.Proc.pid)
      |> List.map (fun p ->
             let base = Int64.to_int p.Proc.base in
             ( p,
               Lfi_telemetry.Profile.flat prof ~symbols:p.Proc.symbols ~base
                 ~limit:(base + Lfi_core.Layout.sandbox_size) ))
