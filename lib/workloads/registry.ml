(** All SPEC CPU2017 proxy workloads, in benchmark-number order
    (the 14 C/C++ benchmarks the paper's LFI toolchain supports,
    Section 6). *)

let all : Common.t list =
  [
    Gcc.workload;
    Mcf.workload;
    Namd.workload;
    Parest.workload;
    Povray.workload;
    Lbm.workload;
    Omnetpp.workload;
    Xalancbmk.workload;
    X264.workload;
    Deepsjeng.workload;
    Imagick.workload;
    Leela.workload;
    Nab.workload;
    Xz.workload;
  ]

(** The 7-benchmark subset that compiles for WebAssembly/WASI in the
    paper (Figure 4: mcf, namd, lbm, x264, deepsjeng, nab, xz). *)
let wasm_subset = List.filter (fun w -> w.Common.wasm_ok) all

(** Optional workload filter, set by the bench CLIs' [--filter] flag:
    when non-empty, {!selected} restricts the SPEC matrix to the named
    workloads so a single one can be re-run during perf iteration. *)
let filter : string list ref = ref []

let matches (w : Common.t) (name : string) =
  w.Common.short = name || w.Common.name = name

(** [all], restricted to the active {!filter} (all of it when the
    filter is empty). *)
let selected () : Common.t list =
  match !filter with
  | [] -> all
  | names -> List.filter (fun w -> List.exists (matches w) names) all

(** Named workloads outside the SPEC suite (kept out of [all] so the
    SPEC-overhead experiments are unaffected). *)
let extras : Common.t list = [ Coremark.workload; Crashy.workload ]

let find (short : string) : Common.t option =
  List.find_opt
    (fun w -> w.Common.short = short || w.Common.name = short)
    (all @ extras)
