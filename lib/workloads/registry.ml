(** All SPEC CPU2017 proxy workloads, in benchmark-number order
    (the 14 C/C++ benchmarks the paper's LFI toolchain supports,
    Section 6). *)

let all : Common.t list =
  [
    Gcc.workload;
    Mcf.workload;
    Namd.workload;
    Parest.workload;
    Povray.workload;
    Lbm.workload;
    Omnetpp.workload;
    Xalancbmk.workload;
    X264.workload;
    Deepsjeng.workload;
    Imagick.workload;
    Leela.workload;
    Nab.workload;
    Xz.workload;
  ]

(** The 7-benchmark subset that compiles for WebAssembly/WASI in the
    paper (Figure 4: mcf, namd, lbm, x264, deepsjeng, nab, xz). *)
let wasm_subset = List.filter (fun w -> w.Common.wasm_ok) all

(** Named workloads outside the SPEC suite (kept out of [all] so the
    SPEC-overhead experiments are unaffected). *)
let extras : Common.t list = [ Coremark.workload; Crashy.workload ]

let find (short : string) : Common.t option =
  List.find_opt
    (fun w -> w.Common.short = short || w.Common.name = short)
    (all @ extras)
