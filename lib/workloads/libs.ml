(** Library-shaped workloads for lib/libbox.

    [xzbox] is an xz-flavoured buffer-processing library: a run-length
    compressor, a byte checksum, and a PRNG expander, operating on
    caller buffers marshalled through the sandbox window.  All
    arithmetic is kept inside 30 bits so the host-side reference models
    (used by the tests) can mirror it with plain OCaml ints.

    [crashbox] is the existing {!Crashy} program served as a library:
    [corrupt] dereferences the guard region and kills its instance,
    which is exactly what the pool crash-containment test needs.  The
    program is reused unmodified — the postmortem goldens that run
    crashy as a whole program are untouched.

    [slowbox] exists to trip the serving layer's SLO monitor on
    purpose: a cheap [fast] export dominates the stream, and a rare
    [grind] export burns ~200k simulated cycles — far past its
    8192-cycle latency objective — so every window that serves a grind
    burns its latency budget and the multi-window burn-rate alert
    fires deterministically.  The observability tests and the golden
    snapshot are built on it. *)

open Lfi_minic.Ast
open Lfi_minic.Ast.Dsl
open Common
[@@@warning "-33"]

let mask30 = 0x3FFFFFFF

(* ------------------------------------------------------------------ *)
(* xzbox MiniC program                                                 *)
(* ------------------------------------------------------------------ *)

(* h' = (h * 33 + byte) & mask30 *)
let mix h b = band (Bin (Add, Bin (Mul, h, i 33), b)) (i mask30)

let xzbox_program : program =
  let init =
    (* fill the dictionary from the seeded PRNG; runs once per
       instance, before the reset baseline — the dictionary persists *)
    func "init"
      [
        seed_stmt 0x5eed;
        decl "k" Int (i 0);
        while_ (v "k" < i 4096)
          [
            set8 "dict" (v "k") (Bin (Rem, call "rand" [], i 256));
            set "k" (v "k" + i 1);
          ];
        ret (i 0);
      ]
  in
  let checksum =
    func "checksum"
      ~params:[ ("src", Int); ("len", Int) ]
      [
        decl "h" Int (i 5381);
        decl "k" Int (i 0);
        while_ (v "k" < v "len")
          [
            set "h" (mix (v "h") (ld U8 (v "src" + v "k")));
            set "k" (v "k" + i 1);
          ];
        ret (v "h");
      ]
  in
  let compress =
    (* run-length encoding: runs of 4..255 become [255, byte, run];
       anything shorter is copied literally.  Output never exceeds the
       input length, so a dst buffer of [len] bytes always fits. *)
    func "compress"
      ~params:[ ("src", Int); ("len", Int); ("dst", Int) ]
      [
        decl "out" Int (i 0);
        decl "k" Int (i 0);
        while_ (v "k" < v "len")
          [
            decl "b" Int (ld U8 (v "src" + v "k"));
            decl "run" Int (i 1);
            while_
              (band
                 (band
                    (v "k" + v "run" < v "len")
                    (ld U8 (v "src" + v "k" + v "run") == v "b"))
                 (v "run" < i 255))
              [ set "run" (v "run" + i 1) ];
            if_
              (v "run" > i 3)
              [
                store U8 (v "dst" + v "out") (i 255);
                store U8 (v "dst" + v "out" + i 1) (v "b");
                store U8 (v "dst" + v "out" + i 2) (v "run");
                set "out" (v "out" + i 3);
              ]
              [
                decl "j" Int (i 0);
                while_ (v "j" < v "run")
                  [
                    store U8 (v "dst" + v "out" + v "j") (v "b");
                    set "j" (v "j" + i 1);
                  ];
                set "out" (v "out" + v "run");
              ];
            set "k" (v "k" + v "run");
          ];
        ret (v "out");
      ]
  in
  let expand =
    (* fill dst with LCG bytes and return their checksum — the
       copy-out exercise *)
    func "expand"
      ~params:[ ("dst", Int); ("len", Int); ("seed", Int) ]
      [
        decl "s" Int (band (v "seed") (i mask30));
        decl "h" Int (i 5381);
        decl "k" Int (i 0);
        while_ (v "k" < v "len")
          [
            set "s" (band (Bin (Add, Bin (Mul, v "s", i 1103515245), i 12345)) (i mask30));
            decl "b" Int (band (shr (v "s") (i 7)) (i 255));
            store U8 (v "dst" + v "k") (v "b");
            set "h" (mix (v "h") (v "b"));
            set "k" (v "k" + i 1);
          ];
        ret (v "h");
      ]
  in
  let dict_sum =
    (* checksum over the init-built dictionary: observable proof that
       init effects persist across snapshot resets *)
    func "dict_sum" [ ret (call "checksum" [ addr "dict"; i 4096 ]) ]
  in
  let poke_global =
    func "poke_global" ~params:[ ("x", Int) ]
      [ store I64 (addr "state") (v "x"); ret (i 0) ]
  in
  let peek_global = func "peek_global" [ ret (ld I64 (addr "state")) ] in
  let main = func "main" [ ret (i 0) ] in
  {
    globals = [ rng_global; Zeroed ("dict", 4096); Zeroed ("state", 8) ];
    funcs =
      [
        rand_func; init; checksum; compress; expand; dict_sum; poke_global;
        peek_global; main;
      ];
  }

(* ------------------------------------------------------------------ *)
(* Host-side reference models (mirrored by the tests)                  *)
(* ------------------------------------------------------------------ *)

(* the Dsl shadows the arithmetic/comparison operators, so the plain-
   OCaml models reopen Stdlib locally *)

let ref_checksum (b : bytes) : int =
  let open Stdlib in
  let h = ref 5381 in
  Bytes.iter (fun c -> h := ((!h * 33) + Char.code c) land mask30) b;
  !h

let ref_expand ~(len : int) ~(seed : int) : bytes * int =
  let open Stdlib in
  let s = ref (seed land mask30) and h = ref 5381 in
  let b = Bytes.create len in
  for k = 0 to len - 1 do
    s := ((!s * 1103515245) + 12345) land mask30;
    let byte = (!s lsr 7) land 255 in
    Bytes.set b k (Char.chr byte);
    h := ((!h * 33) + byte) land mask30
  done;
  (b, !h)

let ref_compress (src : bytes) : bytes =
  let open Stdlib in
  let n = Bytes.length src in
  let out = Buffer.create n in
  let k = ref 0 in
  while !k < n do
    let b = Bytes.get src !k in
    let run = ref 1 in
    while !k + !run < n && Bytes.get src (!k + !run) = b && !run < 255 do
      incr run
    done;
    if !run > 3 then begin
      Buffer.add_char out '\255';
      Buffer.add_char out b;
      Buffer.add_char out (Char.chr !run)
    end
    else
      for _ = 1 to !run do
        Buffer.add_char out b
      done;
    k := !k + !run
  done;
  Buffer.to_bytes out

(* ------------------------------------------------------------------ *)
(* Library specs                                                       *)
(* ------------------------------------------------------------------ *)

(* deterministic buffer generators drawing only from the stream rng *)
let gen_bytes ~(rng : int -> int) (len : int) : bytes =
  let open Stdlib in
  let b = Bytes.create len in
  for k = 0 to len - 1 do
    Bytes.set b k (Char.chr (rng 256))
  done;
  b

let gen_runs ~(rng : int -> int) (len : int) : bytes =
  let open Stdlib in
  let b = Bytes.create len in
  let k = ref 0 in
  while !k < len do
    let c = Char.chr (rng 256) in
    let run = 1 + rng 8 in
    let run = min run (len - !k) in
    for j = 0 to run - 1 do
      Bytes.set b (!k + j) c
    done;
    k := !k + run
  done;
  b

let xzbox : Lfi_libbox.Api.lib_spec =
  let open Lfi_libbox.Api in
  {
    l_name = "557.xzbox";
    l_short = "xzbox";
    l_program = xzbox_program;
    l_init = Some "init";
    l_arena = 1 lsl 16;
    l_exports =
      [
        {
          e_name = "checksum";
          e_weight = 4;
          e_gen =
            (fun ~rng ->
              let len = Stdlib.( + ) 32 (rng 481) in
              [ In (gen_bytes ~rng len); I (Int64.of_int len) ]);
        };
        {
          e_name = "compress";
          e_weight = 3;
          e_gen =
            (fun ~rng ->
              let len = Stdlib.( + ) 64 (rng 449) in
              [ In (gen_runs ~rng len); I (Int64.of_int len); Out len ]);
        };
        {
          e_name = "expand";
          e_weight = 2;
          e_gen =
            (fun ~rng ->
              let len = Stdlib.( + ) 64 (rng 193) in
              [ Out len; I (Int64.of_int len); I (Int64.of_int (rng 0x10000)) ]);
        };
        { e_name = "dict_sum"; e_weight = 1; e_gen = (fun ~rng:_ -> []) };
        { e_name = "poke_global"; e_weight = 0; e_gen = (fun ~rng:_ -> []) };
        { e_name = "peek_global"; e_weight = 0; e_gen = (fun ~rng:_ -> []) };
      ];
    l_slos =
      [
        (* generous: checksum's worst case sits well under 64k cycles,
           so this objective never burns — the always-green control *)
        {
          s_export = "checksum";
          s_objective =
            {
              Lfi_telemetry.Slo.latency_cycles = 65536.0;
              latency_budget = 0.05;
              error_budget = 0.01;
            };
        };
      ];
  }

let crashbox : Lfi_libbox.Api.lib_spec =
  let open Lfi_libbox.Api in
  {
    l_name = "001.crashbox";
    l_short = "crashbox";
    l_program = Crashy.program;
    l_init = None;
    l_arena = 1 lsl 14;
    l_exports =
      [
        (* not in any request stream: [poke] needs a live in-sandbox
           address argument and [corrupt] kills its instance — the
           crash-containment tests drive these directly *)
        { e_name = "poke"; e_weight = 0; e_gen = (fun ~rng:_ -> []) };
        { e_name = "corrupt"; e_weight = 0; e_gen = (fun ~rng:_ -> []) };
      ];
    l_slos = [];
  }

(* ------------------------------------------------------------------ *)
(* slowbox: the SLO tripwire                                           *)
(* ------------------------------------------------------------------ *)

let slowbox_program : program =
  let fast =
    func "fast" ~params:[ ("x", Int) ] [ ret (mix (v "x") (i 99)) ]
  in
  let grind =
    (* ~10 insns/iteration × 20000 iterations ≈ 2e5 simulated cycles:
       two orders of magnitude past the 8192-cycle objective *)
    func "grind"
      ~params:[ ("n", Int) ]
      [
        decl "h" Int (i 5381);
        decl "k" Int (i 0);
        while_ (v "k" < v "n")
          [ set "h" (mix (v "h") (v "k")); set "k" (v "k" + i 1) ];
        ret (v "h");
      ]
  in
  let main = func "main" [ ret (i 0) ] in
  { globals = []; funcs = [ fast; grind; main ] }

let slowbox : Lfi_libbox.Api.lib_spec =
  let open Lfi_libbox.Api in
  {
    l_name = "002.slowbox";
    l_short = "slowbox";
    l_program = slowbox_program;
    l_init = None;
    l_arena = 1 lsl 12;
    l_exports =
      [
        {
          e_name = "fast";
          e_weight = 9;
          e_gen = (fun ~rng -> [ I (Int64.of_int (rng 1024)) ]);
        };
        { e_name = "grind"; e_weight = 1; e_gen = (fun ~rng:_ -> [ I 20000L ]) };
      ];
    l_slos =
      [
        {
          s_export = "grind";
          s_objective =
            {
              Lfi_telemetry.Slo.latency_cycles = 8192.0;
              latency_budget = 0.01;
              error_budget = 0.01;
            };
        };
      ];
  }

let all = [ xzbox; crashbox; slowbox ]

let find (short : string) : Lfi_libbox.Api.lib_spec option =
  List.find_opt
    (fun s -> s.Lfi_libbox.Api.l_short = short || s.Lfi_libbox.Api.l_name = short)
    all
