(** Deliberately-faulting demo workload for the crash-forensics layer.

    [main] fills a scratch array, then calls [corrupt] → [poke], which
    dereferences a raw address inside the sandbox's unmapped guard
    region (between the runtime-call table and the code origin) — a
    deterministic read fault at a fixed in-sandbox offset.  Because
    MiniC prologues maintain the x29 frame chain, the postmortem's
    backtrace shows all three frames ([poke] ← [corrupt] ← [main]),
    which is exactly what [make crash-demo] and the golden postmortem
    test exercise. *)

open Lfi_minic.Ast
open Common
open Lfi_minic.Ast.Dsl

(* An address in the guard region: above the 16KiB runtime-call table
   page, below the 64KiB code origin — never mapped. *)
let bad_addr = 20000

let program : program =
  let poke =
    func "poke" ~params:[ ("off", Int) ] [ ret (ld I64 (v "off")) ]
  in
  let corrupt =
    func "corrupt"
      [
        (* the offset comes out of memory so the address is data, not
           a foldable constant *)
        decl "n" Int (a64 "scratch" (i 0));
        ret (call "poke" [ Bin (Add, i bad_addr, v "n") ]);
      ]
  in
  let main =
    func "main"
      [
        decl "k" Int (i 0);
        while_ (v "k" < i 8)
          [
            set64 "scratch" (v "k") (Bin (Mul, v "k", v "k"));
            set "k" (v "k" + i 1);
          ];
        ret (call "corrupt" []);
      ]
  in
  { globals = [ Zeroed ("scratch", 64) ]; funcs = [ poke; corrupt; main ] }

let workload =
  { name = "000.crashy"; short = "crashy"; program; wasm_ok = false }
