(** Random MiniC program generator shared by the differential tests
    and the serializer round-trip properties. *)

open Lfi_minic
module G = QCheck.Gen

(* ---------------- random MiniC programs ---------------- *)

let vars = [ "x"; "y"; "z" ]

let gen_var = G.oneofl vars

let gen_ibinop =
  G.oneofl
    Ast.[ Add; Sub; Mul; Div; Rem; And; Or; Xor; Eq; Ne; Lt; Le; Gt; Ge; Ult ]

let small_int = G.map (fun n -> Ast.Int n) (G.int_range (-100) 100)

(* loads stay within the 64-element global array *)
let gen_load e = Ast.Load (Ast.I64, Ast.Bin (Ast.Add, Ast.Addr "g",
    Ast.Bin (Ast.Mul, Ast.Bin (Ast.And, e, Ast.Int 63), Ast.Int 8)))

let rec gen_expr depth : Ast.expr G.t =
  if depth = 0 then
    G.frequency [ (3, small_int); (3, G.map (fun v -> Ast.Var v) gen_var) ]
  else
    G.frequency
      [
        (2, small_int);
        (3, G.map (fun v -> Ast.Var v) gen_var);
        ( 5,
          G.map3
            (fun op a b -> Ast.Bin (op, a, b))
            gen_ibinop (gen_expr (depth - 1)) (gen_expr (depth - 1)) );
        ( 1,
          G.map2
            (fun k e -> Ast.Bin (Ast.Shl, e, Ast.Int k))
            (G.int_range 0 8) (gen_expr (depth - 1)) );
        ( 1,
          G.map2
            (fun k e -> Ast.Bin (Ast.Lshr, e, Ast.Int k))
            (G.int_range 0 8) (gen_expr (depth - 1)) );
        (1, G.map (fun e -> Ast.Un (Ast.Neg, e)) (gen_expr (depth - 1)));
        (1, G.map (fun e -> Ast.Un (Ast.Not, e)) (gen_expr (depth - 1)));
        (2, G.map gen_load (gen_expr (depth - 1)));
        ( 1,
          (* float excursion: int -> float math -> saturating back *)
          G.map2
            (fun a b ->
              Ast.Cvt
                ( Ast.FtoI,
                  Ast.Bin
                    ( Ast.FMul,
                      Ast.Cvt (Ast.ItoF, Ast.Bin (Ast.And, a, Ast.Int 1023)),
                      Ast.Cvt (Ast.ItoF, Ast.Bin (Ast.And, b, Ast.Int 255)) ) ))
            (gen_expr (depth - 1)) (gen_expr (depth - 1)) );
        (1, G.map (fun args -> Ast.Call ("mix", args))
             (G.map2 (fun a b -> [ a; b ]) (gen_expr (depth - 1)) (gen_expr (depth - 1))));
      ]

let gen_store e v =
  Ast.Store
    ( Ast.I64,
      Ast.Bin (Ast.Add, Ast.Addr "g",
        Ast.Bin (Ast.Mul, Ast.Bin (Ast.And, e, Ast.Int 63), Ast.Int 8)),
      v )

let rec gen_stmt depth : Ast.stmt G.t =
  G.frequency
    ([
       ( 4,
         G.map2 (fun v e -> Ast.Assign (v, e)) gen_var (gen_expr 2) );
       (3, G.map2 gen_store (gen_expr 1) (gen_expr 2));
     ]
    @ (if depth > 0 then
         [
           ( 2,
             G.map3
               (fun c t e -> Ast.If (c, t, e))
               (gen_expr 1)
               (G.list_size (G.int_range 1 3) (gen_stmt (depth - 1)))
               (G.list_size (G.int_range 0 2) (gen_stmt (depth - 1))) );
         ]
       else [])
    @
    if depth > 0 then
      [
        ( 1,
          (* bounded loop with a fresh counter *)
          G.map2
            (fun n body ->
              Ast.If
                ( Ast.Int 1,
                  Ast.Decl ("c", Ast.Int, Ast.Int 0)
                  :: [
                       Ast.While
                         ( Ast.Bin (Ast.Lt, Ast.Var "c", Ast.Int n),
                           body @ [ Ast.Assign ("c", Ast.Bin (Ast.Add, Ast.Var "c", Ast.Int 1)) ] );
                     ],
                  [] ))
            (G.int_range 1 6)
            (G.list_size (G.int_range 1 4) (gen_stmt (depth - 1))) );
      ]
    else [])

let gen_program : Ast.program G.t =
  let open G in
  list_size (int_range 3 12) (gen_stmt 2) >>= fun body ->
  gen_expr 2 >>= fun result ->
  let mix =
    (* a helper function so that calls and the ABI are exercised *)
    Ast.
      {
        name = "mix";
        params = [ ("a", Int); ("b", Int) ];
        ret = Int;
        body =
          [
            Decl ("t", Int, Bin (Xor, Var "a", Bin (Mul, Var "b", Int 31)));
            If
              ( Bin (Lt, Var "t", Int 0),
                [ Return (Un (Neg, Var "t")) ],
                [] );
            Return (Var "t");
          ];
      }
  in
  let main =
    Ast.
      {
        name = "main";
        params = [];
        ret = Int;
        body =
          [
            Decl ("x", Int, Int 3);
            Decl ("y", Int, Int (-7));
            Decl ("z", Int, Int 11);
          ]
          @ body
          @ [ Return (Bin (Ast.And, result, Int 0xFFFFFF)) ];
      }
  in
  return Ast.{ globals = [ Zeroed ("g", 512) ]; funcs = [ mix; main ] }

let print_program (p : Ast.program) =
  (* print via the native backend; good enough for shrink reports *)
  try Lfi_arm64.Source.to_string (Compile.compile p)
  with _ -> "<uncompilable>"

