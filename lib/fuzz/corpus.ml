(** The adversarial corpus and fuzzing repros (DESIGN.md §5d).

    Corpus entries are assembly files under [test/corpus/] with a
    small comment header:

    {v
    // engine: soundness
    // expect: reject
    movz x21, #0
    v}

    [expect] is what the *verifier* must do with the assembled text:

    - [reject]   — at least one violation;
    - [accept]   — verifies clean (and, when executed, must not trip
                   the escape oracle);
    - [accept-escape-weakened] — verifies clean as written, and the
      soundness engine's single-bit-flip mutation pass, run against
      the deliberately weakened verifier
      ([unsafe_no_uxtw_check = true]), must find at least one mutant
      that the weakened verifier accepts but that escapes at runtime —
      while the *real* verifier rejects every such mutant.  This is
      the regression test for the oracle itself.

    Failing engine runs minimize their input and write it back here as
    a [repro_*.s] file, so every bug becomes a replayable corpus
    entry. *)

type expect = Accept | Reject | Accept_escape_weakened

let expect_of_string = function
  | "accept" -> Some Accept
  | "reject" -> Some Reject
  | "accept-escape-weakened" -> Some Accept_escape_weakened
  | _ -> None

let expect_to_string = function
  | Accept -> "accept"
  | Reject -> "reject"
  | Accept_escape_weakened -> "accept-escape-weakened"

type entry = {
  path : string;
  engine : string;  (** which engine the case belongs to *)
  expect : expect;
  text : string;  (** the whole file; headers are [//] comments the
                      assembly parser already ignores *)
}

exception Bad_entry of string

let header_value line key =
  let prefix = "// " ^ key ^ ":" in
  if String.length line >= String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then
    Some
      (String.trim
         (String.sub line (String.length prefix)
            (String.length line - String.length prefix)))
  else None

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_file (path : string) : entry =
  let text = read_file path in
  let engine = ref None and expect = ref None in
  List.iter
    (fun line ->
      let line = String.trim line in
      (match header_value line "engine" with
      | Some v -> engine := Some v
      | None -> ());
      match header_value line "expect" with
      | Some v -> (
          match expect_of_string v with
          | Some e -> expect := Some e
          | None -> raise (Bad_entry (path ^ ": unknown expect " ^ v)))
      | None -> ())
    (String.split_on_char '\n' text);
  match (!engine, !expect) with
  | Some engine, Some expect -> { path; engine; expect; text }
  | None, _ -> raise (Bad_entry (path ^ ": missing '// engine:' header"))
  | _, None -> raise (Bad_entry (path ^ ": missing '// expect:' header"))

(** All [*.s] entries of [dir], sorted by filename for determinism. *)
let load_dir (dir : string) : entry list =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".s")
  |> List.sort compare
  |> List.map (fun f -> load_file (Filename.concat dir f))

(** Write a minimized failure as a replayable corpus entry; returns
    the path.  [notes] lines are added as extra [//] comments. *)
let write_repro ~(dir : string) ~(engine : string) ~(expect : expect)
    ~(label : string) ?(notes = []) (asm : string) : string =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (Printf.sprintf "repro_%s_%s.s" engine label) in
  let oc = open_out path in
  Printf.fprintf oc "// engine: %s\n// expect: %s\n" engine
    (expect_to_string expect);
  List.iter (fun n -> Printf.fprintf oc "// %s\n" n) notes;
  output_string oc asm;
  if asm = "" || asm.[String.length asm - 1] <> '\n' then
    output_char oc '\n';
  close_out oc;
  path

(** Disassemble machine code back to parseable assembly text (for
    repros of byte-level mutants). *)
let disassemble (code : bytes) : string =
  let insns = Lfi_arm64.Decode.decode_all code in
  let b = Buffer.create 256 in
  Array.iteri
    (fun i insn ->
      match insn with
      | Lfi_arm64.Insn.Udf _ ->
          (* keep the raw word; the assembler has no .inst, so emit a
             comment — repros with udf words are documentation only *)
          Buffer.add_string b
            (Printf.sprintf "\t// .inst 0x%08x (undefined)\n"
               (Int32.to_int (Bytes.get_int32_le code (i * 4)) land 0xFFFFFFFF))
      | insn ->
          Buffer.add_char b '\t';
          Buffer.add_string b (Lfi_arm64.Printer.to_string insn);
          Buffer.add_char b '\n')
    insns;
  Buffer.contents b
