(** Shared result reporting for the three fuzzing engines. *)

type failure = {
  case : int;  (** case index within the run (with the seed, enough to
                   regenerate the input) *)
  desc : string;  (** one-line description of what diverged *)
  repro : string option;  (** path of the minimized repro, if written *)
}

type t = {
  engine : string;
  seed : int;
  cases : int;  (** cases actually executed *)
  skipped : int;  (** generated but not runnable (e.g. unbounded loops) *)
  failures : failure list;
}

let ok (t : t) = t.failures = []

let pp fmt (t : t) =
  Format.fprintf fmt "%-10s seed=%-8d %4d cases, %d skipped: %s" t.engine
    t.seed t.cases t.skipped
    (if ok t then "OK" else Printf.sprintf "%d FAILURES" (List.length t.failures));
  List.iter
    (fun f ->
      Format.fprintf fmt "@.  case %d: %s" f.case f.desc;
      match f.repro with
      | Some p -> Format.fprintf fmt "@.    repro: %s" p
      | None -> ())
    t.failures
