(** Engine 1: rewriter equivalence (DESIGN.md §5d).

    The rewriter may add guards, split instructions and relax
    branches, but it must never change what a program *computes*.
    This engine generates programs, runs each natively (base 0, no
    rewriting) and rewritten at O0/O1/O2 (in a sandbox slot), and
    compares architectural results: exit value, registers (for raw
    streams), and a digest of the data section.  Cycle and instruction
    counts are the only things allowed to differ.

    Two input populations:

    - {b raw ARM64 streams} ({!Gen_insn.stream}): straight-line
      instruction sequences whose memory accesses go through a data
      pointer in x19, wrapped in a tiny [_start] that points x19 at
      the middle of a 64KiB data section.  Because no stream
      instruction can observe its own load address, *every*
      architectural register must match between native and sandboxed
      runs (x19 itself is compared base-relative).

    - {b MiniC programs} ({!Gen_minic.gen_program}): the whole
      compiler pipeline.  Compiled code holds real pointers in
      registers, so only the exit value and the global array's bytes
      are compared. *)

open Lfi_arm64

let x19 = Reg.R (Reg.W64, 19)
let x20 = Reg.R (Reg.W64, 20)

let data_half = 32 * 1024

(** Wrap a raw stream into a runnable program: x19 points at the
    middle of a 64KiB zeroed data section ([adr] is position-sound in
    both layouts), x20 holds a small index constant. *)
let stream_program (stream : Insn.t list) : Source.t =
  [
    Source.Directive (".text", "");
    Source.Label "_start";
    Source.Insn (Insn.Adr { page = false; dst = x19; target = Insn.Sym "gmid" });
    Source.Insn (Insn.Mov { op = Insn.MOVZ; dst = x20; imm = 64; hw = 0 });
  ]
  @ List.map (fun i -> Source.Insn i) stream
  @ [
      Source.Insn (Insn.Svc Lfi_runtime.Sysno.exit);
      Source.Directive (".data", "");
      Source.Label "gdata";
      Source.Directive (".zero", string_of_int data_half);
      Source.Label "gmid";
      Source.Directive (".zero", string_of_int data_half);
    ]

let opt_levels =
  [ ("O0", Lfi_core.Config.o0); ("O1", Lfi_core.Config.o1);
    ("O2", Lfi_core.Config.o2) ]

let lfi_base = Lfi_core.Layout.slot_base 1

let build (src : Source.t) : Lfi_elf.Elf.t =
  Lfi_elf.Elf.of_image (Assemble.assemble src)

let run_at ~(base : int64) (elf : Lfi_elf.Elf.t) : Sandbox.t * Sandbox.outcome =
  let sbx = Sandbox.load ~base elf in
  let out = Sandbox.run sbx in
  (sbx, out)

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

let data_digest sbx ~len = Sandbox.read_data sbx ~off:0 ~len

(** Registers whose final value must match exactly between the native
    and sandboxed runs of a stream: everything except the reserved
    registers (x18, x21-x24), the link register (the runtime-call exit
    sequence clobbers x30 only in the rewritten run) and the pointer
    register x19 (compared base-relative below). *)
let stream_compared_regs =
  [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16; 17; 20; 25;
    26; 27; 28; 29 ]

let compare_stream_state ~(native : Sandbox.t) ~(lfi : Sandbox.t) :
    string option =
  let mn = native.Sandbox.machine and ml = lfi.Sandbox.machine in
  let reg_mismatch =
    List.find_opt
      (fun n ->
        mn.Lfi_emulator.Machine.regs.(n) <> ml.Lfi_emulator.Machine.regs.(n))
      stream_compared_regs
  in
  let rel m (sbx : Sandbox.t) =
    Int64.sub m.Lfi_emulator.Machine.regs.(19) sbx.Sandbox.base
  in
  let flags m =
    Lfi_emulator.Machine.
      (m.flag_n, m.flag_z, m.flag_c, m.flag_v)
  in
  let fp_mismatch =
    let rec go i =
      if i >= 32 then None
      else if
        mn.Lfi_emulator.Machine.vlo.(i) <> ml.Lfi_emulator.Machine.vlo.(i)
        || mn.Lfi_emulator.Machine.vhi.(i) <> ml.Lfi_emulator.Machine.vhi.(i)
      then Some i
      else go (i + 1)
    in
    go 0
  in
  match reg_mismatch with
  | Some n ->
      Some
        (Printf.sprintf "x%d: native 0x%Lx, sandboxed 0x%Lx" n
           mn.Lfi_emulator.Machine.regs.(n) ml.Lfi_emulator.Machine.regs.(n))
  | None ->
      if rel mn native <> rel ml lfi then
        Some
          (Printf.sprintf "x19-base: native 0x%Lx, sandboxed 0x%Lx"
             (rel mn native) (rel ml lfi))
      else if flags mn <> flags ml then Some "flags differ"
      else (
        match fp_mismatch with
        | Some i -> Some (Printf.sprintf "v%d differs" i)
        | None ->
            let dn = data_digest native ~len:(2 * data_half)
            and dl = data_digest lfi ~len:(2 * data_half) in
            if not (Bytes.equal dn dl) then Some "data section differs"
            else None)

(* ------------------------------------------------------------------ *)
(* One case                                                            *)
(* ------------------------------------------------------------------ *)

type case_result = Pass | Skip of string | Fail of string

(** Run [src] natively and at every opt level, with [compare_extra]
    called on matching exits for the deeper state comparison. *)
let check_source ~(compare_state : native:Sandbox.t -> lfi:Sandbox.t -> string option)
    (src : Source.t) : case_result =
  match build src with
  | exception e -> Skip ("native build failed: " ^ Printexc.to_string e)
  | native_elf -> (
      let native_sbx, native_out = run_at ~base:0L native_elf in
      match native_out.Sandbox.stop with
      | Sandbox.Out_of_budget -> Skip "native run out of budget"
      | Sandbox.Trapped why -> Skip ("native run trapped: " ^ why)
      | Sandbox.Stray_call _ -> Skip "native stray call"
      | Sandbox.Exit native_exit ->
          let rec levels = function
            | [] -> Pass
            | (name, config) :: tl -> (
                match Lfi_core.Rewriter.rewrite ~config src with
                | exception Lfi_core.Rewriter.Error e ->
                    Fail (Printf.sprintf "%s: rewriter error: %s" name e)
                | rewritten, _ -> (
                    match build rewritten with
                    | exception e ->
                        Fail
                          (Printf.sprintf "%s: rewritten output unassemblable: %s"
                             name (Printexc.to_string e))
                    | elf -> (
                        let sbx, out = run_at ~base:lfi_base elf in
                        match out.Sandbox.stop with
                        | Sandbox.Exit v when v = native_exit -> (
                            match compare_state ~native:native_sbx ~lfi:sbx with
                            | Some why -> Fail (Printf.sprintf "%s: %s" name why)
                            | None -> levels tl)
                        | Sandbox.Exit v ->
                            Fail
                              (Printf.sprintf
                                 "%s: exit value 0x%Lx, native 0x%Lx" name v
                                 native_exit)
                        | other ->
                            Fail
                              (Format.asprintf "%s: %a, native exit(0x%Lx)"
                                 name Sandbox.pp_stop other native_exit))))
          in
          levels opt_levels)

let minic_compare ~(native : Sandbox.t) ~(lfi : Sandbox.t) : string option =
  (* compiled code keeps real pointers in registers; compare the global
     array contents only *)
  let dn = Sandbox.read_data native ~off:0 ~len:512
  and dl = Sandbox.read_data lfi ~off:0 ~len:512 in
  if Bytes.equal dn dl then None else Some "global array differs"

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)
(* ------------------------------------------------------------------ *)

(** Shrink a failing stream to a minimal one and render it. *)
let minimize_stream (stream : Insn.t list) : Insn.t list =
  let fails s =
    match check_source ~compare_state:compare_stream_state (stream_program s) with
    | Fail _ -> true
    | _ -> false
  in
  if fails stream then Shrink.items stream ~still_fails:fails else stream

(** [run ~seed ~count ~minic_count ?repro_dir ()] — [count] raw-stream
    cases then [minic_count] MiniC cases, deterministically derived
    from [seed]. *)
let run ?(seed = 0) ?(count = 100) ?(minic_count = 20) ?repro_dir () :
    Report.t =
  let failures = ref [] and skipped = ref 0 and cases = ref 0 in
  let record_failure ~case ~desc ~asm =
    let repro =
      match repro_dir with
      | None -> None
      | Some dir ->
          Some
            (Corpus.write_repro ~dir ~engine:"equiv" ~expect:Corpus.Accept
               ~label:(Printf.sprintf "seed%d_case%d" seed case)
               ~notes:[ desc ] asm)
    in
    failures := { Report.case; desc; repro } :: !failures
  in
  (* raw streams *)
  for case = 0 to count - 1 do
    let rand = Random.State.make [| seed; case |] in
    let stream = QCheck.Gen.generate1 ~rand Gen_insn.stream in
    incr cases;
    match check_source ~compare_state:compare_stream_state (stream_program stream) with
    | Pass -> ()
    | Skip why ->
        (* a stream that cannot even run natively is a generator bug;
           surface it rather than hiding it in the skip count *)
        record_failure ~case ~desc:("stream not runnable: " ^ why)
          ~asm:(Source.to_string (stream_program stream))
    | Fail desc ->
        let small = minimize_stream stream in
        record_failure ~case ~desc
          ~asm:(Source.to_string (stream_program small))
  done;
  (* MiniC programs *)
  for k = 0 to minic_count - 1 do
    let case = count + k in
    let rand = Random.State.make [| seed; case |] in
    let prog = QCheck.Gen.generate1 ~rand Gen_minic.gen_program in
    match Lfi_minic.Interp.run ~fuel:2_000_000 prog with
    | exception Lfi_minic.Interp.Out_of_fuel -> incr skipped
    | exception Lfi_minic.Interp.Unsupported _ -> incr skipped
    | _ -> (
        incr cases;
        let src = Lfi_minic.Compile.compile prog in
        match check_source ~compare_state:minic_compare src with
        | Pass -> ()
        | Skip why -> record_failure ~case ~desc:("minic: " ^ why)
            ~asm:(Source.to_string src)
        | Fail desc ->
            record_failure ~case ~desc:("minic: " ^ desc)
              ~asm:(Source.to_string src))
  done;
  {
    Report.engine = "equiv";
    seed;
    cases = !cases;
    skipped = !skipped;
    failures = List.rev !failures;
  }
