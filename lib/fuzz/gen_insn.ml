(** QCheck generators for the ARM64 instruction subset.

    [insn] generates only *encodable* instructions (operand widths and
    immediate ranges within what {!Lfi_arm64.Encode} accepts), so the
    round-trip properties [decode (encode i) = i] and
    [parse (print i) = i] can require success rather than skip.

    Promoted from [test/gen.ml] so that the fuzzing subsystem
    ({!Equiv}, {!Soundness}, {!Complete}) can draw from the same
    distribution as the unit tests.  This version also covers the
    instruction forms the original skipped: FP loads/stores and pairs
    (including [q] registers), store-exclusive / load-acquire /
    store-release, [extr], [rev]/[rev16]/[rev32], [adr]/[adrp],
    [smulh]/[umulh], [clz], the [fmov] register moves, [fcvt]
    precision conversion, and the [sxtx] register-offset addressing
    mode. *)

open Lfi_arm64
module G = QCheck.Gen

let reg_num = G.int_range 0 30
let width = G.oneofl [ Reg.W32; Reg.W64 ]

let greg w = G.map (fun n -> Reg.R (w, n)) reg_num

let greg_or_zr w =
  G.frequency [ (8, greg w); (1, G.return (Reg.ZR w)) ]

let xreg = greg Reg.W64

let fp_size = G.oneofl [ Reg.Fp.S; Reg.Fp.D ]

(** All three FP sizes; [q] registers are only encodable in FP
    loads/stores and pairs. *)
let fp_size3 = G.oneofl [ Reg.Fp.S; Reg.Fp.D; Reg.Fp.Q ]

let fpreg size = G.map (fun n -> Reg.Fp.v size n) (G.int_range 0 31)

let fp_size_bytes = function Reg.Fp.S -> 4 | Reg.Fp.D -> 8 | Reg.Fp.Q -> 16

let cond =
  G.oneofl
    Insn.[ EQ; NE; CS; CC; MI; PL; VS; VC; HI; LS; GE; LT; GT; LE ]

let target = G.map (fun n -> Insn.Off (n * 4)) (G.int_range (-1000) 1000)

(* Valid logical immediate: generate from (esize, run length, rotation)
   and decode the value; restrict to patterns representable in an OCaml
   int (bit 62 clear). *)
let bitmask_imm datasize =
  let open G in
  oneofl [ 2; 4; 8; 16; 32 ] >>= fun esize ->
  if esize > datasize then return 1
  else
    int_range 1 (esize - 1) >>= fun ones ->
    int_range 0 (esize - 1) >>= fun rot ->
    let run = (1 lsl ones) - 1 in
    let elt = Encode.ror_e esize run rot in
    let rec replicate acc i =
      if i >= datasize then acc else replicate (acc lor (elt lsl i)) (i + esize)
    in
    let v = replicate 0 0 in
    if v > 0 && v < 1 lsl 62 then return v else return 1

let alu_op = G.oneofl Insn.[ ADD; SUB; AND; ORR; EOR; BIC; ORN; EON ]

let alu =
  let open G in
  width >>= fun w ->
  let bits = match w with Reg.W64 -> 64 | Reg.W32 -> 32 in
  alu_op >>= fun op ->
  bool >>= fun flags ->
  let flags =
    (* flags only encodable for add/sub/and/bic *)
    match op with
    | Insn.ADD | Insn.SUB | Insn.AND | Insn.BIC -> flags
    | _ -> false
  in
  frequency
    [
      ( 3,
        (* immediate *)
        match op with
        | Insn.ADD | Insn.SUB ->
            pair (int_range 0 4095) (oneofl [ 0; 12 ]) >>= fun (v, sh) ->
            return (Insn.Imm (v, sh))
        | Insn.AND | Insn.ORR | Insn.EOR when not flags ->
            map (fun v -> Insn.Imm (v, 0)) (bitmask_imm bits)
        | Insn.AND ->
            map (fun v -> Insn.Imm (v, 0)) (bitmask_imm bits)
        | _ ->
            (* no immediate form: fall back to register *)
            map (fun r -> Insn.Sh (r, Insn.Lsl, 0)) (greg w) );
      ( 4,
        pair (greg_or_zr w)
          (pair
             (match op with
             | Insn.ADD | Insn.SUB -> oneofl Insn.[ Lsl; Lsr; Asr ]
             | _ -> oneofl Insn.[ Lsl; Lsr; Asr; Ror ])
             (int_range 0 (bits - 1)))
        >>= fun (r, (k, a)) -> return (Insn.Sh (r, k, a)) );
      ( 2,
        match op with
        | Insn.ADD | Insn.SUB ->
            (match w with
            | Reg.W64 ->
                pair (greg_or_zr Reg.W32)
                  (oneofl Insn.[ Uxtw; Sxtw; Uxtb; Uxth; Sxtb; Sxth ])
            | Reg.W32 ->
                pair (greg_or_zr Reg.W32)
                  (oneofl Insn.[ Uxtw; Sxtw; Uxtb; Uxth; Sxtb; Sxth ]))
            >>= fun (r, e) ->
            int_range 0 4 >>= fun a -> return (Insn.Ext (r, e, a))
        | _ -> map (fun r -> Insn.Sh (r, Insn.Lsl, 0)) (greg w) );
    ]
  >>= fun op2 ->
  (* zr-only positions for register forms; sp positions depend on the
     form — keep it simple and use numbered registers everywhere *)
  pair (greg w) (greg w) >>= fun (dst, src) ->
  let dst =
    (* flags=false imm/ext forms could use SP, but numbered is always
       valid *)
    dst
  in
  return (Insn.Alu { op; flags; dst; src; op2 })

let mem_sizes : Insn.mem_size list = [ B; H; W; X ]
let mem_size = G.oneofl mem_sizes

let addr_mode =
  let open G in
  frequency
    [
      (3, map (fun b -> Insn.Imm_off (b, 0)) xreg);
      ( 4,
        pair xreg (int_range 0 510) >>= fun (b, o) ->
        return (Insn.Imm_off (b, o * 8)) );
      ( 2,
        pair xreg (int_range (-255) 255) >>= fun (b, o) ->
        return (Insn.Imm_off (b, o)) );
      (2, pair xreg (int_range (-255) 255) >>= fun (b, o) -> return (Insn.Pre (b, o)));
      (2, pair xreg (int_range (-255) 255) >>= fun (b, o) -> return (Insn.Post (b, o)));
    ]

let reg_off_addr scale =
  let open G in
  pair xreg (greg Reg.W64) >>= fun (b, m) ->
  oneofl [ 0; scale ] >>= fun a ->
  frequency
    [
      (2, return (Insn.Reg_off (b, m, Insn.Uxtx, a)));
      (1, return (Insn.Reg_off (b, m, Insn.Sxtx, a)));
      ( 2,
        map
          (fun m32 -> Insn.Reg_off (b, m32, Insn.Uxtw, a))
          (greg Reg.W32) );
      ( 1,
        map
          (fun m32 -> Insn.Reg_off (b, m32, Insn.Sxtw, a))
          (greg Reg.W32) );
    ]

let load =
  let open G in
  mem_size >>= fun sz ->
  bool >>= fun signed ->
  let scale = match sz with Insn.B -> 0 | Insn.H -> 1 | Insn.W -> 2 | Insn.X -> 3 in
  frequency [ (3, addr_mode); (2, reg_off_addr scale) ] >>= fun addr ->
  (* align scaled immediates to the access size *)
  let addr =
    match addr with
    | Insn.Imm_off (b, o) when o > 255 -> Insn.Imm_off (b, o / (1 lsl scale) * (1 lsl scale))
    | a -> a
  in
  match (sz, signed) with
  | Insn.X, _ -> return (Insn.Ldr { sz; signed = false; dst = Reg.R (Reg.W64, 0); addr })
  | Insn.W, true ->
      map (fun n -> Insn.Ldr { sz; signed = true; dst = Reg.R (Reg.W64, n); addr }) reg_num
  | Insn.W, false ->
      map (fun n -> Insn.Ldr { sz; signed = false; dst = Reg.R (Reg.W32, n); addr }) reg_num
  | (Insn.B | Insn.H), true ->
      pair reg_num width >>= fun (n, w) ->
      return (Insn.Ldr { sz; signed = true; dst = Reg.R (w, n); addr })
  | (Insn.B | Insn.H), false ->
      map (fun n -> Insn.Ldr { sz; signed = false; dst = Reg.R (Reg.W32, n); addr }) reg_num

let store =
  let open G in
  mem_size >>= fun sz ->
  let scale = match sz with Insn.B -> 0 | Insn.H -> 1 | Insn.W -> 2 | Insn.X -> 3 in
  frequency [ (3, addr_mode); (2, reg_off_addr scale) ] >>= fun addr ->
  let addr =
    match addr with
    | Insn.Imm_off (b, o) when o > 255 -> Insn.Imm_off (b, o / (1 lsl scale) * (1 lsl scale))
    | a -> a
  in
  let w = match sz with Insn.X -> Reg.W64 | _ -> Reg.W32 in
  map (fun n -> Insn.Str { sz; src = Reg.R (w, n); addr }) reg_num

let pair_insn =
  let open G in
  width >>= fun w ->
  let unit = match w with Reg.W64 -> 8 | Reg.W32 -> 4 in
  pair (greg w) (greg w) >>= fun (r1, r2) ->
  pair xreg (int_range (-60) 60) >>= fun (b, o) ->
  oneofl
    [ Insn.Imm_off (b, o * unit); Insn.Pre (b, o * unit); Insn.Post (b, o * unit) ]
  >>= fun addr ->
  bool >>= fun ld ->
  if ld then return (Insn.Ldp { w; r1; r2; addr })
  else return (Insn.Stp { w; r1; r2; addr })

(** FP load/store of one register: scaled immediates, unscaled
    immediates, pre/post indexing and all four register-offset
    extensions, for [s]/[d]/[q] registers. *)
let fp_mem =
  let open G in
  fp_size3 >>= fun sz ->
  let unit = fp_size_bytes sz in
  let scale = match sz with Reg.Fp.S -> 2 | Reg.Fp.D -> 3 | Reg.Fp.Q -> 4 in
  frequency
    [
      (3, map (fun b -> Insn.Imm_off (b, 0)) xreg);
      ( 3,
        pair xreg (int_range 0 255) >>= fun (b, o) ->
        return (Insn.Imm_off (b, o * unit)) );
      ( 2,
        pair xreg (int_range (-255) 255) >>= fun (b, o) ->
        return (Insn.Imm_off (b, o)) );
      (1, pair xreg (int_range (-255) 255) >>= fun (b, o) -> return (Insn.Pre (b, o)));
      (1, pair xreg (int_range (-255) 255) >>= fun (b, o) -> return (Insn.Post (b, o)));
      (2, reg_off_addr scale);
    ]
  >>= fun addr ->
  pair (fpreg sz) bool >>= fun (r, ld) ->
  if ld then return (Insn.Fldr { dst = r; addr })
  else return (Insn.Fstr { src = r; addr })

(** FP load/store pair for [s]/[d]/[q] registers (7-bit signed scaled
    immediate). *)
let fp_pair =
  let open G in
  fp_size3 >>= fun sz ->
  let unit = fp_size_bytes sz in
  pair (fpreg sz) (fpreg sz) >>= fun (r1, r2) ->
  pair xreg (int_range (-60) 60) >>= fun (b, o) ->
  oneofl
    [ Insn.Imm_off (b, o * unit); Insn.Pre (b, o * unit); Insn.Post (b, o * unit) ]
  >>= fun addr ->
  bool >>= fun ld ->
  if ld then return (Insn.Fldp { r1; r2; addr })
  else return (Insn.Fstp { r1; r2; addr })

(** LL/SC and acquire/release: ldxr/stxr/ldar/stlr.  The transfer
    register width follows the access size; stxr's status register is
    always 32-bit. *)
let excl =
  let open G in
  mem_size >>= fun sz ->
  let w = if sz = Insn.X then Reg.W64 else Reg.W32 in
  pair (greg w) xreg >>= fun (r, base) ->
  oneof
    [
      return (Insn.Ldxr { sz; dst = r; base });
      map
        (fun status -> Insn.Stxr { sz; status; src = r; base })
        (greg Reg.W32);
      return (Insn.Ldar { sz; dst = r; base });
      return (Insn.Stlr { sz; src = r; base });
    ]

let misc =
  let open G in
  oneof
    [
      (width >>= fun w ->
       pair (greg w) (pair (int_range 0 65535) (int_range 0 (match w with Reg.W64 -> 3 | _ -> 1)))
       >>= fun (dst, (imm, hw)) ->
       oneofl Insn.[ MOVZ; MOVN; MOVK ] >>= fun op ->
       return (Insn.Mov { op; dst; imm; hw }));
      (width >>= fun w ->
       let bits = match w with Reg.W64 -> 64 | _ -> 32 in
       pair (greg w) (greg w) >>= fun (dst, src) ->
       pair (int_range 0 (bits - 1)) (int_range 0 (bits - 1))
       >>= fun (immr, imms) ->
       oneofl Insn.[ UBFM; SBFM; BFM ] >>= fun op ->
       return (Insn.Bitfield { op; dst; src; immr; imms }));
      (width >>= fun w ->
       G.quad (greg w) (greg w) (greg w) (greg_or_zr w)
       >>= fun (dst, src1, src2, acc) ->
       bool >>= fun sub -> return (Insn.Madd { sub; dst; src1; src2; acc }));
      (width >>= fun w ->
       G.triple (greg w) (greg w) (greg w) >>= fun (dst, src1, src2) ->
       bool >>= fun signed -> return (Insn.Div { signed; dst; src1; src2 }));
      (width >>= fun w ->
       G.quad (greg w) (greg w) (greg w) cond
       >>= fun (dst, src1, src2, c) ->
       oneofl Insn.[ CSEL; CSINC; CSINV; CSNEG ] >>= fun op ->
       return (Insn.Csel { op; dst; src1; src2; cond = c }));
      (width >>= fun w ->
       G.quad (greg w) bool (int_range 0 15) cond
       >>= fun (src, cmn, nzcv, c) ->
       frequency
         [ (1, map (fun r -> Insn.CReg r) (greg w));
           (1, map (fun v -> Insn.CImm v) (int_range 0 31)) ]
       >>= fun op2 -> return (Insn.Ccmp { cmn; src; op2; nzcv; cond = c }));
      (G.quad bool bool (pair reg_num reg_num) (pair reg_num reg_num)
       >>= fun (signed, sub, (d, a), (s1, s2)) ->
       return
         (Insn.Maddl
            { signed; sub; dst = Reg.R (Reg.W64, d);
              src1 = Reg.R (Reg.W32, s1); src2 = Reg.R (Reg.W32, s2);
              acc = Reg.R (Reg.W64, a) }));
      (width >>= fun w ->
       G.triple (greg w) (greg w) (oneofl Insn.[ Lsl; Lsr; Asr; Ror ])
       >>= fun (dst, src, op) ->
       map (fun amount -> Insn.Shiftv { op; dst; src; amount }) (greg w));
      (width >>= fun w ->
       pair (greg w) (greg w) >>= fun (dst, src) ->
       bool >>= fun count_zero ->
       return (Insn.Cls { count_zero; dst; src }));
      map (fun (dst, src) -> Insn.Rbit { dst; src })
        (width >>= fun w -> G.pair (greg w) (greg w));
    ]

(** The instruction forms the original generator skipped: extr, the
    byte-reverses, pc-relative addresses, high multiplies, fmov
    register moves and fcvt. *)
let misc2 =
  let open G in
  oneof
    [
      (width >>= fun w ->
       let bits = match w with Reg.W64 -> 64 | _ -> 32 in
       G.triple (greg w) (greg w) (greg w) >>= fun (dst, src1, src2) ->
       map (fun lsb -> Insn.Extr { dst; src1; src2; lsb })
         (int_range 0 (bits - 1)));
      (width >>= fun w ->
       pair (greg w) (greg w) >>= fun (dst, src) ->
       (match w with
       | Reg.W64 -> oneofl [ 2; 4; 8 ]
       | Reg.W32 -> oneofl [ 2; 4 ])
       >>= fun bytes -> return (Insn.Rev { bytes; dst; src }));
      (pair xreg bool >>= fun (dst, page) ->
       (* adr reaches +-1MiB; adrp +-4GiB in whole pages *)
       (if page then map (fun n -> n * 4096) (int_range (-100_000) 100_000)
        else int_range (-(1 lsl 20) + 1) ((1 lsl 20) - 1))
       >>= fun off -> return (Insn.Adr { page; dst; target = Insn.Off off }));
      (G.triple (greg Reg.W64) (greg Reg.W64) (greg Reg.W64)
       >>= fun (dst, src1, src2) ->
       bool >>= fun signed ->
       return (Insn.Smulh { signed; dst; src1; src2 }));
      (pair (fpreg Reg.Fp.D) xreg >>= fun (d, s) ->
       return (Insn.Fmov_to_fp { dst = d; src = s }));
      (pair (fpreg Reg.Fp.S) (greg Reg.W32) >>= fun (d, s) ->
       return (Insn.Fmov_to_fp { dst = d; src = s }));
      (pair xreg (fpreg Reg.Fp.D) >>= fun (d, s) ->
       return (Insn.Fmov_from_fp { dst = d; src = s }));
      (pair (greg Reg.W32) (fpreg Reg.Fp.S) >>= fun (d, s) ->
       return (Insn.Fmov_from_fp { dst = d; src = s }));
      (pair (fpreg Reg.Fp.S) (fpreg Reg.Fp.D) >>= fun (s32, d64) ->
       bool >>= fun up ->
       return
         (if up then Insn.Fcvt { dst = d64; src = s32 }
          else Insn.Fcvt { dst = s32; src = d64 }));
    ]

let branch =
  let open G in
  oneof
    [
      map (fun t -> Insn.B t) target;
      map (fun t -> Insn.Bl t) target;
      (pair cond target >>= fun (c, t) -> return (Insn.Bcond (c, t)));
      (G.triple bool xreg target >>= fun (nz, r, t) ->
       return (Insn.Cbz { nz; reg = r; target = t }));
      (G.quad bool reg_num (int_range 0 63) target >>= fun (nz, rn, b, t) ->
       let w = if b >= 32 then Reg.W64 else Reg.W32 in
       return (Insn.Tbz { nz; reg = Reg.R (w, rn); bit = b; target = t }));
      map (fun r -> Insn.Br r) xreg;
      map (fun r -> Insn.Blr r) xreg;
      map (fun r -> Insn.Ret r) xreg;
    ]

let fp =
  let open G in
  fp_size >>= fun sz ->
  oneof
    [
      (G.triple (fpreg sz) (fpreg sz) (fpreg sz) >>= fun (d, a, b) ->
       oneofl Insn.[ FADD; FSUB; FMUL; FDIV; FMIN; FMAX ] >>= fun op ->
       return (Insn.Fop2 { op; dst = d; src1 = a; src2 = b }));
      (pair (fpreg sz) (fpreg sz) >>= fun (d, a) ->
       oneofl Insn.[ FNEG; FABS; FSQRT; FMOV ] >>= fun op ->
       return (Insn.Fop1 { op; dst = d; src = a }));
      (G.quad (fpreg sz) (fpreg sz) (fpreg sz) (fpreg sz)
       >>= fun (d, a, b, c) ->
       bool >>= fun sub ->
       return (Insn.Fmadd { sub; dst = d; src1 = a; src2 = b; acc = c }));
      (pair (fpreg sz) (fpreg sz) >>= fun (a, b) ->
       bool >>= fun zero ->
       return (Insn.Fcmp { src1 = a; src2 = (if zero then None else Some b) }));
      (pair (fpreg sz) xreg >>= fun (d, s) ->
       bool >>= fun signed -> return (Insn.Scvtf { signed; dst = d; src = s }));
      (pair xreg (fpreg sz) >>= fun (d, s) ->
       bool >>= fun signed -> return (Insn.Fcvtzs { signed; dst = d; src = s }));
    ]

(** The main generator: any encodable instruction of the subset. *)
let insn : Insn.t G.t =
  G.frequency
    [
      (5, alu);
      (4, load);
      (3, store);
      (2, pair_insn);
      (2, fp_mem);
      (1, fp_pair);
      (3, misc);
      (2, misc2);
      (2, branch);
      (2, fp);
      (1, G.return Insn.Nop);
      (1, excl);
    ]

let arbitrary_insn =
  QCheck.make ~print:Printer.to_string insn

(* ------------------------------------------------------------------ *)
(* Straight-line streams for differential execution (DESIGN.md §5d)   *)
(* ------------------------------------------------------------------ *)

(* The equivalence engine runs the same stream natively and rewritten,
   at a different sandbox base, and compares architectural state — so
   a stream instruction must never produce a value that legitimately
   depends on the load address.  Data registers are drawn from a pool
   that excludes the scheme's reserved registers (x18, x21-x24), the
   link register, and the two address registers the stream's memory
   accesses go through: x19 (always holds a pointer into the data
   section) and x20 (a small index).  pc-relative [adr] and branches
   are excluded. *)

let stream_pool = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16; 17; 25; 26; 27; 28; 29 ]

let in_stream_pool (i : Insn.t) =
  (match i with
  | Insn.Adr _ -> false (* value depends on the load address *)
  | _ -> true)
  && (not (Insn.is_branch i))
  && (not (Insn.writes_sp i))
  && List.for_all
       (fun r ->
         match Reg.number_of r with
         | Some n -> List.mem n stream_pool
         | None -> (match r with Reg.ZR _ -> true | _ -> false))
       (Insn.regs_mentioned i)

(** Rejection-sample [g] until [pred] holds (the generators above hit
    a 23-of-31 register pool within a few tries). *)
let rec such_that pred g : 'a G.t =
 fun rand ->
  let v = g rand in
  if pred v then v else such_that pred g rand

let x19 = Reg.R (Reg.W64, 19)
let w20 = Reg.R (Reg.W32, 20)
let x20 = Reg.R (Reg.W64, 20)

(** Addressing through the stream's pointer register x19 (optionally
    indexed by x20, which holds a small constant).  Offsets are kept
    small enough that x19's pre/post drift over a whole stream stays
    well inside the data section. *)
let stream_addr scale =
  let open G in
  let unit = 1 lsl scale in
  frequency
    [
      (2, return (Insn.Imm_off (x19, 0)));
      (3, map (fun o -> Insn.Imm_off (x19, o * unit)) (int_range 0 120));
      (2, map (fun o -> Insn.Imm_off (x19, o)) (int_range (-255) 255));
      (1, map (fun o -> Insn.Pre (x19, o)) (int_range (-128) 128));
      (1, map (fun o -> Insn.Post (x19, o)) (int_range (-128) 128));
      ( 2,
        oneofl [ 0; scale ] >>= fun a ->
        oneofl
          [
            Insn.Reg_off (x19, x20, Insn.Uxtx, a);
            Insn.Reg_off (x19, x20, Insn.Sxtx, a);
            Insn.Reg_off (x19, w20, Insn.Uxtw, a);
            Insn.Reg_off (x19, w20, Insn.Sxtw, a);
          ] );
    ]

let stream_dreg w = G.map (fun n -> Reg.R (w, n)) (G.oneofl stream_pool)

let stream_mem =
  let open G in
  let scale_of (sz : Insn.mem_size) =
    match sz with Insn.B -> 0 | Insn.H -> 1 | Insn.W -> 2 | Insn.X -> 3
  in
  oneof
    [
      (* scalar load *)
      ( mem_size >>= fun sz ->
        stream_addr (scale_of sz) >>= fun addr ->
        bool >>= fun signed ->
        match (sz, signed) with
        | Insn.X, _ ->
            map (fun d -> Insn.Ldr { sz; signed = false; dst = d; addr })
              (stream_dreg Reg.W64)
        | Insn.W, true ->
            map (fun d -> Insn.Ldr { sz; signed = true; dst = d; addr })
              (stream_dreg Reg.W64)
        | _, true ->
            pair (stream_dreg Reg.W32) (stream_dreg Reg.W64) >>= fun (d32, d64) ->
            oneofl [ Insn.Ldr { sz; signed = true; dst = d32; addr };
                     Insn.Ldr { sz; signed = true; dst = d64; addr } ]
        | _, false ->
            map (fun d -> Insn.Ldr { sz; signed = false; dst = d; addr })
              (stream_dreg Reg.W32) );
      (* scalar store *)
      ( mem_size >>= fun sz ->
        stream_addr (scale_of sz) >>= fun addr ->
        let w = if sz = Insn.X then Reg.W64 else Reg.W32 in
        map (fun s -> Insn.Str { sz; src = s; addr }) (stream_dreg w) );
      (* integer pair *)
      ( width >>= fun w ->
        let unit = match w with Reg.W64 -> 8 | Reg.W32 -> 4 in
        pair (stream_dreg w) (stream_dreg w) >>= fun (r1, r2) ->
        pair (int_range (-16) 16) bool >>= fun (o, ld) ->
        oneofl
          [ Insn.Imm_off (x19, o * unit); Insn.Pre (x19, o * unit);
            Insn.Post (x19, o * unit) ]
        >>= fun addr ->
        if ld then return (Insn.Ldp { w; r1; r2; addr })
        else return (Insn.Stp { w; r1; r2; addr }) );
      (* fp load/store *)
      ( fp_size3 >>= fun sz ->
        let scale =
          match sz with Reg.Fp.S -> 2 | Reg.Fp.D -> 3 | Reg.Fp.Q -> 4
        in
        stream_addr scale >>= fun addr ->
        pair (fpreg sz) bool >>= fun (r, ld) ->
        if ld then return (Insn.Fldr { dst = r; addr })
        else return (Insn.Fstr { src = r; addr }) );
      (* fp pair *)
      ( fp_size3 >>= fun sz ->
        let unit = fp_size_bytes sz in
        pair (fpreg sz) (fpreg sz) >>= fun (r1, r2) ->
        pair (int_range (-16) 16) bool >>= fun (o, ld) ->
        oneofl
          [ Insn.Imm_off (x19, o * unit); Insn.Pre (x19, o * unit);
            Insn.Post (x19, o * unit) ]
        >>= fun addr ->
        if ld then return (Insn.Fldp { r1; r2; addr })
        else return (Insn.Fstp { r1; r2; addr }) );
      (* exclusives through x19 *)
      ( mem_size >>= fun sz ->
        let w = if sz = Insn.X then Reg.W64 else Reg.W32 in
        stream_dreg w >>= fun r ->
        oneof
          [
            return (Insn.Ldxr { sz; dst = r; base = x19 });
            map
              (fun status -> Insn.Stxr { sz; status; src = r; base = x19 })
              (stream_dreg Reg.W32);
            return (Insn.Ldar { sz; dst = r; base = x19 });
            return (Insn.Stlr { sz; src = r; base = x19 });
          ] );
    ]

(** One instruction of a differential stream: data processing over the
    pool registers, or a memory access through x19/x20. *)
let stream_insn : Insn.t G.t =
  G.frequency
    [
      (4, such_that in_stream_pool alu);
      (2, such_that in_stream_pool misc);
      (1, such_that in_stream_pool misc2);
      (2, such_that in_stream_pool fp);
      (4, stream_mem);
    ]

(** A whole straight-line stream (no branches, no pc-relative values,
    no sp) of 5-40 instructions. *)
let stream : Insn.t list G.t =
  G.(int_range 5 40 >>= fun n -> list_repeat n stream_insn)
