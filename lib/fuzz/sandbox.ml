(** Bare-machine program execution for the fuzzing engines
    (DESIGN.md §5d).

    The engines cannot use {!Lfi_runtime.Runtime} to run candidate
    binaries: the runtime reschedules forever on [Quantum_expired] (an
    infinite-loop mutant would hang the fuzzer), refuses unverifiable
    images, and its host-side system-call handlers touch sandbox
    memory in ways a mutated binary could confuse.  Instead this
    module mirrors the runtime's loader — runtime-call table, segment
    mapping with W^X protection, stack, {!Lfi_runtime.Runtime.initial_snapshot}
    register state — onto a fresh machine, optionally installs the
    emulator's escape oracle, and drives execution with a *mini
    runtime*: a bounded instruction budget, [exit] handled, and every
    other runtime call answered with 0.  Loading performs **no
    verification**: the soundness engine feeds this module exactly
    the mutants the verifier accepted, and the oracle is the judge. *)

open Lfi_emulator

type stop =
  | Exit of int64  (** runtime call 1: the value of x0 *)
  | Trapped of string  (** memory fault, undefined instruction, svc *)
  | Stray_call of int64  (** runtime entry at no valid table entry *)
  | Out_of_budget  (** still running after the instruction budget *)

type outcome = {
  stop : stop;
  escapes : Machine.escape list;  (** oracle records, oldest first *)
  escape_count : int;  (** total, even past the recording cap *)
  insns : int;  (** instructions actually executed *)
}

let pp_stop fmt = function
  | Exit v -> Format.fprintf fmt "exit(%Ld)" v
  | Trapped why -> Format.fprintf fmt "trap: %s" why
  | Stray_call pc -> Format.fprintf fmt "stray runtime call at 0x%Lx" pc
  | Out_of_budget -> Format.fprintf fmt "out of budget"

(** A loaded, ready-to-run sandbox. *)
type t = {
  mem : Memory.t;
  machine : Machine.t;
  base : int64;
  data_origin : int64;  (** absolute address of the data section *)
}

let page = Memory.page_size
let align_down v = v / page * page
let align_up v = (v + page - 1) / page * page

let map_range mem (base : int64) ~(off : int) ~(len : int) ~perm =
  let lo = align_down off and hi = align_up (off + len) in
  Memory.map mem
    ~addr:(Int64.add base (Int64.of_int lo))
    ~len:(hi - lo) ~perm

(* Mirror of Runtime.install_rtcall_table: entries 1..Sysno.count-1
   hold host entry addresses, everything else points into the unmapped
   guard region so a stray call traps. *)
let install_rtcall_table mem (base : int64) =
  map_range mem base ~off:0 ~len:Lfi_core.Layout.rtcall_table_size
    ~perm:Memory.perm_rw;
  let guard_trap =
    Int64.add base (Int64.of_int Lfi_core.Layout.rtcall_table_size)
  in
  for k = 0 to Lfi_core.Layout.rtcall_entry_count - 1 do
    let value =
      if k >= 1 && k < Lfi_runtime.Sysno.count then
        Int64.add Machine.host_region_start (Int64.of_int (8 * k))
      else guard_trap
    in
    Memory.write mem
      (Int64.add base (Int64.of_int (Lfi_core.Layout.rtcall_entry_offset k)))
      8 value
  done;
  Memory.protect mem ~addr:base ~len:Lfi_core.Layout.rtcall_table_size
    ~perm:Memory.perm_r

exception Load_error of string

(** Load [elf] at [base] (any multiple of the sandbox size, including
    0 for a native run) on a fresh machine. *)
let load ?(stack_size = 1 lsl 20) ~(base : int64) (elf : Lfi_elf.Elf.t) : t =
  let mem = Memory.create () in
  let machine = Machine.create mem in
  install_rtcall_table mem base;
  let data_origin = ref 0L in
  List.iter
    (fun (s : Lfi_elf.Elf.segment) ->
      let len = s.Lfi_elf.Elf.memsz in
      if s.vaddr < Lfi_core.Layout.code_origin then
        raise (Load_error "segment below code origin");
      map_range mem base ~off:s.vaddr ~len ~perm:Memory.perm_rw;
      Memory.write_bytes mem (Int64.add base (Int64.of_int s.vaddr)) s.data;
      if s.flags land Lfi_elf.Elf.pf_x <> 0 then
        Memory.protect mem
          ~addr:(Int64.add base (Int64.of_int (align_down s.vaddr)))
          ~len:(align_up (s.vaddr + len) - align_down s.vaddr)
          ~perm:Memory.perm_rx
      else data_origin := Int64.add base (Int64.of_int s.vaddr))
    elf.Lfi_elf.Elf.segments;
  map_range mem base
    ~off:(Lfi_core.Layout.stack_top - stack_size)
    ~len:stack_size ~perm:Memory.perm_rw;
  Machine.restore machine
    (Lfi_runtime.Runtime.initial_snapshot base ~entry:elf.Lfi_elf.Elf.entry
       ~arg:0L);
  { mem; machine; base; data_origin = !data_origin }

(** Install the escape oracle for the sandbox at [t.base]: data
    accesses may spill into the adjacent guard regions (that is what
    they are for — reserved-base immediates, sp drift and pre/post
    index offsets are all bounded well below the 48KiB guards), taken
    branches must stay inside the sandbox proper or land exactly on a
    runtime-call entry. *)
let install_oracle (t : t) : Machine.oracle =
  let sandbox = Int64.of_int Lfi_core.Layout.sandbox_size in
  let guard = Int64.of_int Lfi_core.Layout.guard_size in
  let o =
    Machine.oracle
      ~lo:(Int64.sub t.base guard)
      ~hi:(Int64.add t.base (Int64.add sandbox guard))
      ~branch_lo:t.base
      ~branch_hi:(Int64.add t.base sandbox)
      ~host_lo:Machine.host_region_start
      ~host_hi:
        (Int64.add Machine.host_region_start
           (Int64.of_int (8 * Lfi_runtime.Sysno.count)))
  in
  t.machine.Machine.escape_oracle <- Some o;
  o

let host_start_int = Int64.to_int Machine.host_region_start

(** Run to completion under an instruction [budget].  Runtime call 1
    ([exit]) stops with x0; every other valid entry returns 0 in x0
    and resumes at the return address [blr] left in x30 — enough to
    keep mutated programs moving without emulating the real runtime. *)
let run ?(budget = 500_000) (t : t) : outcome =
  let m = t.machine in
  let start = m.Machine.insns in
  let remaining () = budget - (m.Machine.insns - start) in
  let rec go () =
    let q = remaining () in
    if q <= 0 then Out_of_budget
    else
      match Exec.run m ~quantum:(min q 100_000) with
      | Exec.Quantum_expired -> go ()
      | Exec.Trap (Exec.Svc_trap k) when k = Lfi_runtime.Sysno.exit ->
          (* native (un-rewritten) programs exit by direct svc *)
          Exit m.Machine.regs.(0)
      | Exec.Trap tr -> Trapped (Format.asprintf "%a" Exec.pp_trap tr)
      | Exec.Runtime_entry pc ->
          let off = Int64.to_int pc - host_start_int in
          let k = off / 8 in
          if off < 0 || off mod 8 <> 0 || k >= Lfi_runtime.Sysno.count then
            Stray_call pc
          else if k = Lfi_runtime.Sysno.exit then Exit m.Machine.regs.(0)
          else begin
            m.Machine.regs.(0) <- 0L;
            m.Machine.pc <- m.Machine.regs.(30);
            go ()
          end
  in
  let stop = go () in
  let escapes, escape_count =
    match m.Machine.escape_oracle with
    | None -> ([], 0)
    | Some o -> (List.rev o.Machine.o_escapes, o.Machine.o_count)
  in
  { stop; escapes; escape_count; insns = m.Machine.insns - start }

(** Read [len] bytes of the data section starting at symbol-relative
    offset [off] (for memory digests). *)
let read_data (t : t) ~(off : int) ~(len : int) : bytes =
  Memory.read_bytes t.mem (Int64.add t.data_origin (Int64.of_int off)) len
