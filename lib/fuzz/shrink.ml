(** Failure minimization for the fuzzing engines (DESIGN.md §5d).

    Two shrinkers, both greedy-to-fixpoint:

    - {!words} operates on machine code: it overwrites one 4-byte
      instruction word at a time with [nop] and keeps the overwrite
      when the caller's predicate (e.g. "still verifies and still
      escapes") still holds.  Nop-out is position-stable — pc-relative
      branches elsewhere in the text are unaffected — so the result is
      a minimal *set of load-bearing instructions*, padded with nops.

    - {!items} operates on instruction lists (the equivalence engine's
      streams): it deletes one element at a time, keeping deletions
      that preserve the failure. *)

let nop_word =
  match Lfi_arm64.Encode.encode Lfi_arm64.Insn.Nop with
  | Ok w -> w
  | Error _ -> assert false

let get32 b i = Int32.to_int (Bytes.get_int32_le b (i * 4)) land 0xFFFFFFFF
let set32 b i v = Bytes.set_int32_le b (i * 4) (Int32.of_int v)

(** Greedily nop out instruction words of [code] while [still_fails]
    holds.  Returns the minimized copy and the number of non-nop words
    left.  [still_fails] must be true of [code] itself. *)
let words (code : bytes) ~(still_fails : bytes -> bool) : bytes * int =
  let b = Bytes.copy code in
  let n = Bytes.length b / 4 in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let w = get32 b i in
      if w <> nop_word then begin
        set32 b i nop_word;
        if still_fails b then changed := true else set32 b i w
      end
    done
  done;
  let live = ref 0 in
  for i = 0 to n - 1 do
    if get32 b i <> nop_word then incr live
  done;
  (b, !live)

(** Greedily delete elements of [xs] while [still_fails] holds of the
    remainder.  [still_fails] must be true of [xs] itself. *)
let items (xs : 'a list) ~(still_fails : 'a list -> bool) : 'a list =
  let rec pass kept = function
    | [] -> List.rev kept
    | x :: tl ->
        if still_fails (List.rev_append kept tl) then pass kept tl
        else pass (x :: kept) tl
  in
  let rec fixpoint xs =
    let xs' = pass [] xs in
    if List.length xs' < List.length xs then fixpoint xs' else xs'
  in
  fixpoint xs
