(** Engine 2: verifier soundness oracle (DESIGN.md §5d).

    The verifier is the trust root of LFI: anything it accepts is
    allowed to run.  This engine attacks that property directly.  It
    takes *verified* seed binaries, applies deterministic byte-level
    mutations (bit flips, word splices, nop-outs, immediate-field
    tweaks), and re-verifies each mutant:

    - mutant rejected — fine, that is the verifier doing its job;
    - mutant accepted — it is *executed* on a bare machine with the
      emulator's escape oracle installed ({!Sandbox.install_oracle}).
      Any load, store or taken branch that resolves outside the
      sandbox (plus its guard regions / the runtime-call entries) is a
      **soundness bug**: the verifier blessed a binary that escapes.
      The failing mutant is minimized by nopping out every word that
      is not needed to both verify and escape, and written to the
      corpus.

    Because (we believe!) the real verifier is sound, a green run only
    proves the engine *ran*; {!demo_weakened} proves it can *catch*:
    with the deliberately weakened verifier config
    ([unsafe_no_uxtw_check]), a single-bit flip of a guarded load's
    addressing mode (uxtw -> uxtx, bit 13) must slip through
    verification and trip the oracle, while the real verifier rejects
    every such mutant. *)

open Lfi_arm64
open Lfi_emulator

(* ------------------------------------------------------------------ *)
(* Mutations                                                           *)
(* ------------------------------------------------------------------ *)

type mutation =
  | Bit_flip of { word : int; bit : int }
  | Splice of { src : int; dst : int }  (** copy word [src] over [dst] *)
  | Nop_out of int  (** delete an instruction (e.g. a guard) *)
  | Imm_tweak of { word : int; bit : int }  (** flip inside bits 10-21,
      where most immediate fields live *)

let pp_mutation fmt = function
  | Bit_flip { word; bit } -> Format.fprintf fmt "flip w%d b%d" word bit
  | Splice { src; dst } -> Format.fprintf fmt "splice w%d->w%d" src dst
  | Nop_out w -> Format.fprintf fmt "nop w%d" w
  | Imm_tweak { word; bit } -> Format.fprintf fmt "imm w%d b%d" word bit

let gen_mutation (nwords : int) : mutation QCheck.Gen.t =
  let open QCheck.Gen in
  let word = int_range 0 (nwords - 1) in
  frequency
    [
      (4, map2 (fun word bit -> Bit_flip { word; bit }) word (int_range 0 31));
      (2, map2 (fun src dst -> Splice { src; dst }) word word);
      (2, map (fun w -> Nop_out w) word);
      ( 2,
        map2 (fun word bit -> Imm_tweak { word; bit }) word (int_range 10 21)
      );
    ]

let apply_mutation (code : bytes) (m : mutation) : bytes =
  let b = Bytes.copy code in
  (match m with
  | Bit_flip { word; bit } | Imm_tweak { word; bit } ->
      Shrink.set32 b word (Shrink.get32 b word lxor (1 lsl bit))
  | Splice { src; dst } -> Shrink.set32 b dst (Shrink.get32 b src)
  | Nop_out w -> Shrink.set32 b w Shrink.nop_word);
  b

(* ------------------------------------------------------------------ *)
(* Running a mutant                                                    *)
(* ------------------------------------------------------------------ *)

let base = Lfi_core.Layout.slot_base 1

let with_text (elf : Lfi_elf.Elf.t) (code : bytes) : Lfi_elf.Elf.t =
  {
    elf with
    Lfi_elf.Elf.segments =
      List.map
        (fun (s : Lfi_elf.Elf.segment) ->
          if s.Lfi_elf.Elf.flags land Lfi_elf.Elf.pf_x <> 0 then
            { s with Lfi_elf.Elf.data = code }
          else s)
        elf.Lfi_elf.Elf.segments;
  }

let text_of (elf : Lfi_elf.Elf.t) : Lfi_elf.Elf.segment =
  match Lfi_elf.Elf.text_segment elf with
  | Some s -> s
  | None -> invalid_arg "seed has no text segment"

let verifies ~(config : Lfi_verifier.Verifier.config) (elf : Lfi_elf.Elf.t)
    (code : bytes) : bool =
  let seg = text_of elf in
  match
    Lfi_verifier.Verifier.verify ~config ~origin:seg.Lfi_elf.Elf.vaddr
      ~code ()
  with
  | Ok _ -> true
  | Error _ -> false

(** Execute [code] in place of [elf]'s text with the oracle installed;
    returns the escape records. *)
let escapes_of (elf : Lfi_elf.Elf.t) (code : bytes) :
    Machine.escape list * int =
  let sbx = Sandbox.load ~base (with_text elf code) in
  ignore (Sandbox.install_oracle sbx);
  let out = Sandbox.run ~budget:200_000 sbx in
  (out.Sandbox.escapes, out.Sandbox.escape_count)

and pp_escape fmt (e : Machine.escape) =
  Format.fprintf fmt "%s at pc=0x%Lx -> 0x%Lx"
    (match e.Machine.esc_kind with
    | Machine.Eload -> "load"
    | Machine.Estore -> "store"
    | Machine.Ebranch -> "branch")
    e.Machine.esc_pc e.Machine.esc_addr

(* ------------------------------------------------------------------ *)
(* Seeds                                                               *)
(* ------------------------------------------------------------------ *)

let x21 = Reg.R (Reg.W64, 21)
let x30 = Reg.R (Reg.W64, 30)

(** The crafted seed behind {!demo_weakened} (also committed as
    [test/corpus/uxtw_load.s]): x2's *low 32 bits* are zero but its
    high bits are far outside any sandbox, so the guarded load
    [\[x21, w2, uxtw\]] legally reads runtime-call table entry 0 — the
    uxtw truncation is the whole defense.  One bit-13 flip turns the
    addressing mode into [\[x21, x2\]] (uxtx): the untruncated index
    resolves thousands of sandboxes away — an escape the real verifier
    prevents by insisting on uxtw. *)
let uxtw_demo_source : Source.t =
  [
    Source.Directive (".text", "");
    Source.Label "_start";
    Source.Insn
      (Insn.Mov { op = Insn.MOVZ; dst = Reg.R (Reg.W64, 2); imm = 0xdead; hw = 3 });
    Source.Insn
      (Insn.Ldr
         { sz = Insn.X; signed = false; dst = Reg.R (Reg.W64, 3);
           addr = Insn.Reg_off (x21, Reg.R (Reg.W32, 2), Insn.Uxtw, 0) });
    Source.Insn (Insn.Mov { op = Insn.MOVZ; dst = Reg.R (Reg.W64, 0); imm = 0; hw = 0 });
    Source.Insn
      (Insn.Ldr
         { sz = Insn.X; signed = false; dst = x30;
           addr = Insn.Imm_off (x21, Lfi_core.Layout.rtcall_entry_offset
                                       Lfi_runtime.Sysno.exit) });
    Source.Insn (Insn.Blr x30);
  ]

(** The crafted seed for the sp-drift weakening (committed as
    [test/corpus/sp_drift_weak.s]): sp parked at the sandbox top, a
    small legal drift, then a maximal sp-relative store that lands in
    the guard region — safe as written.  One bit-22 flip turns
    [add sp, sp, #5] into [add sp, sp, #5, lsl #12]: the 20 KiB drift
    pushes the store past the guard — an escape the real verifier
    prevents by bounding the drift. *)
let sp_drift_demo_source : Source.t =
  [
    Source.Directive (".text", "");
    Source.Label "_start";
    Source.Insn (Insn.Mov { op = Insn.MOVN; dst = Reg.R (Reg.W32, 22); imm = 0; hw = 0 });
    Source.Insn
      (Insn.Alu
         { op = Insn.ADD; flags = false; dst = Reg.sp; src = x21;
           op2 = Insn.Ext (Reg.R (Reg.W64, 22), Insn.Uxtx, 0) });
    Source.Insn
      (Insn.Alu
         { op = Insn.ADD; flags = false; dst = Reg.sp; src = Reg.sp;
           op2 = Insn.Imm (5, 0) });
    Source.Insn
      (Insn.Str
         { sz = Insn.X; src = Reg.R (Reg.W64, 0);
           addr =
             Insn.Imm_off (Reg.sp, Lfi_core.Layout.max_mem_immediate - 8) });
    Source.Insn
      (Insn.Ldr
         { sz = Insn.X; signed = false; dst = x30;
           addr = Insn.Imm_off (x21, Lfi_core.Layout.rtcall_entry_offset
                                       Lfi_runtime.Sysno.exit) });
    Source.Insn (Insn.Blr x30);
  ]

(** The crafted seed whose single-bit flips exercise [weakening]. *)
let demo_seed_source : Lfi_verifier.Verifier.weakening -> Source.t = function
  | Lfi_verifier.Verifier.No_uxtw_check -> uxtw_demo_source
  | Lfi_verifier.Verifier.No_sp_drift_check -> sp_drift_demo_source

let build_seed (src : Source.t) : Lfi_elf.Elf.t =
  Lfi_elf.Elf.of_image (Assemble.assemble src)

(** Deterministic seed pool: the crafted demo seed plus [n] rewritten
    (O2) random streams — i.e. real verifier-accepted binaries. *)
let seed_pool ~seed ~(n : int) : Lfi_elf.Elf.t list =
  let streams =
    List.init n (fun j ->
        let rand = Random.State.make [| seed; 1_000_000 + j |] in
        let stream = QCheck.Gen.generate1 ~rand Gen_insn.stream in
        let src = Equiv.stream_program stream in
        let rewritten, _ =
          Lfi_core.Rewriter.rewrite ~config:Lfi_core.Config.o2 src
        in
        build_seed rewritten)
  in
  build_seed uxtw_demo_source :: streams

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)
(* ------------------------------------------------------------------ *)

(** [run ~seed ~count ()] tests [count] mutants drawn over the seed
    pool.  [weakening] swaps in a deliberately unsound verifier config
    (to exercise the oracle; failures are then expected).  A failure
    is an accepted mutant whose execution escapes. *)
let run ?(seed = 0) ?(count = 200) ?(pool = 6)
    ?(weakening : Lfi_verifier.Verifier.weakening option) ?repro_dir () :
    Report.t =
  let config =
    match weakening with
    | Some w -> Lfi_verifier.Verifier.(weaken default_config w)
    | None -> Lfi_verifier.Verifier.default_config
  in
  let seeds = seed_pool ~seed ~n:pool |> Array.of_list in
  (* drop any seed the (possibly weakened) verifier does not accept:
     mutating an unverifiable binary proves nothing *)
  let seeds =
    Array.of_list
      (List.filter
         (fun elf -> verifies ~config elf (text_of elf).Lfi_elf.Elf.data)
         (Array.to_list seeds))
  in
  let failures = ref [] in
  let cases = ref 0 and rejected = ref 0 in
  for case = 0 to count - 1 do
    let rand = Random.State.make [| seed; case |] in
    let elf = seeds.(QCheck.Gen.generate1 ~rand (QCheck.Gen.int_bound (Array.length seeds - 1))) in
    let orig = (text_of elf).Lfi_elf.Elf.data in
    let nwords = Bytes.length orig / 4 in
    let m = QCheck.Gen.generate1 ~rand (gen_mutation nwords) in
    let code = apply_mutation orig m in
    incr cases;
    if not (verifies ~config elf code) then incr rejected
    else
      let escs, total = escapes_of elf code in
      if total > 0 then begin
        (* soundness bug: minimize to the words needed to both verify
           and escape, then write the repro *)
        let still_fails b =
          verifies ~config elf b && snd (escapes_of elf b) > 0
        in
        let small, live = Shrink.words code ~still_fails in
        let desc =
          Format.asprintf
            "accepted mutant escapes (%a; %d escapes, first: %a; %d live insns)"
            pp_mutation m total
            (Format.pp_print_list pp_escape)
            (match escs with e :: _ -> [ e ] | [] -> [])
            live
        in
        let repro =
          match repro_dir with
          | None -> None
          | Some dir ->
              Some
                (Corpus.write_repro ~dir ~engine:"soundness"
                   ~expect:Corpus.Reject
                   ~label:(Printf.sprintf "seed%d_case%d" seed case)
                   ~notes:[ desc ]
                   (Corpus.disassemble small))
        in
        failures := { Report.case; desc; repro } :: !failures
      end
  done;
  {
    Report.engine = "soundness";
    seed;
    cases = !cases;
    skipped = 0;
    failures = List.rev !failures;
  }

(* ------------------------------------------------------------------ *)
(* The oracle's own regression test                                    *)
(* ------------------------------------------------------------------ *)

type demo = {
  weakened_escapes : int;
      (** single-bit-flip mutants of the demo seed that the *weakened*
          verifier accepts and that escape at runtime — must be > 0,
          proving the engine catches a broken verifier *)
  real_escapes : int;
      (** same mutants filtered by the *real* verifier — must be 0 *)
}

(** Enumerate every single-bit flip of [elf]'s text under both the
    real verifier config and the config weakened by [weakening]. *)
let bit_flip_audit ?(weakening = Lfi_verifier.Verifier.No_uxtw_check)
    (elf : Lfi_elf.Elf.t) : demo =
  let orig = (text_of elf).Lfi_elf.Elf.data in
  let nwords = Bytes.length orig / 4 in
  let weak = Lfi_verifier.Verifier.(weaken default_config weakening) in
  let real = Lfi_verifier.Verifier.default_config in
  let weakened_escapes = ref 0 and real_escapes = ref 0 in
  for word = 0 to nwords - 1 do
    for bit = 0 to 31 do
      let code = apply_mutation orig (Bit_flip { word; bit }) in
      let escaped () = snd (escapes_of elf code) > 0 in
      if verifies ~config:weak elf code && escaped () then
        incr weakened_escapes;
      if verifies ~config:real elf code && escaped () then incr real_escapes
    done
  done;
  { weakened_escapes = !weakened_escapes; real_escapes = !real_escapes }

(** The audit on every known weakening's crafted seed: the acceptance
    demo for the whole oracle. *)
let demo_weakened () : (Lfi_verifier.Verifier.weakening * demo) list =
  List.map
    (fun w ->
      (w, bit_flip_audit ~weakening:w (build_seed (demo_seed_source w))))
    Lfi_verifier.Verifier.all_weakenings
