(** Engine 3: verifier completeness (DESIGN.md §5d).

    The dual of {!Soundness}: every binary the rewriter *produces* —
    at every optimization level — must pass the verifier.  A rejection
    means either the rewriter emitted an unguarded access or the
    verifier is stricter than the rewriting scheme it is supposed to
    describe; both are bugs worth a minimized repro.  Assembly of
    rewriter output must also succeed: an unencodable rewrite is a
    completeness failure, not a skip.

    Inputs are the same two populations as {!Equiv} (raw straight-line
    streams and MiniC programs through the whole compiler), but since
    nothing is executed here there is no interpreter filter — every
    generated program is a case. *)

open Lfi_arm64

let opt_levels = Equiv.opt_levels

type verdict = Vpass | Vfail of string

(** Rewrite [src] at [config] and verify the assembled text. *)
let check_level ~(name : string) (config : Lfi_core.Config.t)
    (src : Source.t) : verdict =
  match Lfi_core.Rewriter.rewrite ~config src with
  | exception Lfi_core.Rewriter.Error e ->
      Vfail (Printf.sprintf "%s: rewriter error: %s" name e)
  | rewritten, _ -> (
      match Assemble.assemble rewritten with
      | exception e ->
          Vfail
            (Printf.sprintf "%s: rewriter output unassemblable: %s" name
               (Printexc.to_string e))
      | img -> (
          let elf = Lfi_elf.Elf.of_image img in
          match Lfi_elf.Elf.text_segment elf with
          | None -> Vfail (name ^ ": no text segment")
          | Some seg -> (
              match
                Lfi_verifier.Verifier.verify
                  ~origin:seg.Lfi_elf.Elf.vaddr ~code:seg.Lfi_elf.Elf.data ()
              with
              | Ok _ -> Vpass
              | Error violations ->
                  Vfail
                    (Format.asprintf "%s: %d violations, first: %a" name
                       (List.length violations)
                       Lfi_verifier.Verifier.pp_violation
                       (List.hd violations)))))

let check_source (src : Source.t) : verdict =
  let rec go = function
    | [] -> Vpass
    | (name, config) :: tl -> (
        match check_level ~name config src with
        | Vpass -> go tl
        | Vfail _ as f -> f)
  in
  go opt_levels

(** [run ~seed ~count ~minic_count ()] — rewriter outputs for [count]
    raw streams and [minic_count] MiniC programs must all verify. *)
let run ?(seed = 0) ?(count = 150) ?(minic_count = 30) ?repro_dir () :
    Report.t =
  let failures = ref [] and cases = ref 0 in
  let record_failure ~case ~desc ~asm =
    let repro =
      match repro_dir with
      | None -> None
      | Some dir ->
          Some
            (Corpus.write_repro ~dir ~engine:"complete" ~expect:Corpus.Accept
               ~label:(Printf.sprintf "seed%d_case%d" seed case)
               ~notes:[ desc ] asm)
    in
    failures := { Report.case; desc; repro } :: !failures
  in
  for case = 0 to count - 1 do
    let rand = Random.State.make [| seed; case |] in
    let stream = QCheck.Gen.generate1 ~rand Gen_insn.stream in
    incr cases;
    match check_source (Equiv.stream_program stream) with
    | Vpass -> ()
    | Vfail desc ->
        (* minimize the stream while it still fails to verify *)
        let fails s =
          match check_source (Equiv.stream_program s) with
          | Vfail _ -> true
          | Vpass -> false
        in
        let small = Shrink.items stream ~still_fails:fails in
        record_failure ~case ~desc
          ~asm:(Source.to_string (Equiv.stream_program small))
  done;
  for k = 0 to minic_count - 1 do
    let case = count + k in
    let rand = Random.State.make [| seed; case |] in
    let prog = QCheck.Gen.generate1 ~rand Gen_minic.gen_program in
    incr cases;
    let src = Lfi_minic.Compile.compile prog in
    match check_source src with
    | Vpass -> ()
    | Vfail desc ->
        record_failure ~case ~desc:("minic: " ^ desc)
          ~asm:(Source.to_string src)
  done;
  {
    Report.engine = "complete";
    seed;
    cases = !cases;
    skipped = 0;
    failures = List.rev !failures;
  }
