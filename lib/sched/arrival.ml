(** Arrival models for the serve layer.

    - [Replay]: the pre-PR-10 shape — requests are issued back to back,
      each arriving exactly when the server is ready for it (zero queue
      wait; measures service cost and throughput, not latency under
      load).
    - [Open]: open-loop seeded Poisson arrivals at an offered rate in
      requests per simulated second.  Inter-arrival gaps are
      exponential; the server owes every arrival a response no matter
      how far behind it is — the model that exposes queueing delay and
      the throughput knee.
    - [Closed]: closed-loop with a fixed number of clients; each client
      issues its next request the instant the previous one completes.
      Offered load adapts to service rate, so the system measures
      latency at saturation without unbounded queues.

    Determinism: the exponential sampler must be a pure function of the
    seed on every platform, so it cannot touch [Float.log] (libm, not
    exactly rounded).  [ln] below uses only [frexp] (exact) and
    [+ * /] (exactly rounded per IEEE 754), which OCaml maps to the
    corresponding hardware ops — the same discipline as the cost
    models. *)

type t =
  | Replay
  | Open of { rate_rps : float }  (** offered rate, requests/simulated-second *)
  | Closed of { concurrency : int }  (** fixed in-flight clients *)

let name = function
  | Replay -> "replay"
  | Open _ -> "open"
  | Closed _ -> "closed"

let ln2 = 0.6931471805599453

(** Deterministic natural log via [frexp] + the atanh series:
    [ln (m * 2^e) = 2*atanh((m-1)/(m+1)) + e*ln2] with [m] in
    [\[0.5, 1)], so the series argument is in [(-1/3, 0\]] and 17 terms
    reach double precision.  Exactly rounded ops only. *)
let ln (x : float) : float =
  let m, e = Float.frexp x in
  let z = (m -. 1.0) /. (m +. 1.0) in
  let z2 = z *. z in
  let rec go k acc term =
    if k > 33 then acc
    else
      let term = term *. z2 in
      go (k + 2) (acc +. (term /. float_of_int k)) term
  in
  (2.0 *. go 3 z z) +. (float_of_int e *. ln2)

(* xorshift64, the same generator the request stream uses, on its own
   stream so timing never perturbs the request sequence *)
let make_raw_rng (seed : int) =
  let s = ref (Int64.of_int ((seed * 0x9E3779B9) lxor 0x5DEECE66D lor 1)) in
  fun () ->
    let x = !s in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    s := x;
    x

let two_pow_53 = 9007199254740992.0

(** A seeded stream of exponential inter-arrival gaps with mean
    [mean_cycles], in simulated cycles. *)
let exp_stream ~(seed : int) ~(mean_cycles : float) : unit -> float =
  let rng = make_raw_rng seed in
  fun () ->
    let bits = Int64.to_int (Int64.logand (rng ()) 0x1FFFFFFFFFFFFFL) in
    (* u in (0, 1]: zero is impossible, ln stays finite *)
    let u = (float_of_int bits +. 1.0) /. two_pow_53 in
    -.ln u *. mean_cycles
