(** Per-tenant request queues with quotas and admission control.

    A tenant owns a bounded FIFO of pending requests, a token-bucket
    quota refilled by {e simulated} time, and a deficit counter for
    weighted round-robin service.  Admission is deterministic: a
    request is shed (never silently dropped — the reject is counted and
    reported) when the tenant's bucket is empty ([Shed_quota]) or its
    queue is at its bound ([Shed_queue]); otherwise it is enqueued.

    The module is generic in the request payload so the serve layer can
    queue whatever record it likes; everything observable (counters,
    depths, token arithmetic) uses only int and exactly-rounded float
    ops, keeping reports byte-stable. *)

type spec = {
  t_name : string;
  t_weight : int;
      (** DRR quantum: requests served per scheduling visit relative to
          other tenants *)
  t_queue_bound : int;  (** max queued requests before shedding *)
  t_quota_rps : float;
      (** admission quota in requests per simulated second; 0 or
          negative = unlimited *)
  t_burst : float;  (** token-bucket capacity (quota tenants only) *)
}

let default_spec =
  { t_name = "default"; t_weight = 1; t_queue_bound = 1024;
    t_quota_rps = 0.0; t_burst = 1.0 }

type verdict = Admitted | Shed_queue | Shed_quota

type 'a t = {
  spec : spec;
  quota_per_cycle : float;  (** tokens accrued per simulated cycle *)
  q : 'a Queue.t;
  mutable tokens : float;
  mutable last_refill : float;  (** simulated-cycle timestamp *)
  mutable deficit : int;  (** DRR credit carried across visits *)
  mutable admitted : int;
  mutable shed_queue : int;
  mutable shed_quota : int;
  mutable completed : int;
  mutable failed : int;
  mutable steals : int;  (** dispatches served on a stolen instance *)
  mutable depth_max : int;
  mutable depth_sum : int;  (** queue depth sampled at each admission *)
}

let create ~(clock_hz : float) (spec : spec) : 'a t =
  {
    spec;
    quota_per_cycle =
      (if spec.t_quota_rps > 0.0 then spec.t_quota_rps /. clock_hz else 0.0);
    q = Queue.create ();
    tokens = (if spec.t_quota_rps > 0.0 then spec.t_burst else 0.0);
    last_refill = 0.0;
    deficit = 0;
    admitted = 0;
    shed_queue = 0;
    shed_quota = 0;
    completed = 0;
    failed = 0;
    steals = 0;
    depth_max = 0;
    depth_sum = 0;
  }

let depth t = Queue.length t.q
let has_quota t = t.spec.t_quota_rps > 0.0

let refill t ~(now : float) =
  if has_quota t && now > t.last_refill then begin
    t.tokens <-
      Float.min t.spec.t_burst
        (t.tokens +. ((now -. t.last_refill) *. t.quota_per_cycle));
    t.last_refill <- now
  end

(** Admit one request arriving at [now], or shed it deterministically.
    Quota is charged before the queue bound is checked, so a shed on a
    full queue still consumes a token — a tenant cannot convert queue
    pressure into saved quota. *)
let admit (t : 'a t) ~(now : float) (req : 'a) : verdict =
  refill t ~now;
  if has_quota t && t.tokens < 1.0 then begin
    t.shed_quota <- t.shed_quota + 1;
    Shed_quota
  end
  else begin
    if has_quota t then t.tokens <- t.tokens -. 1.0;
    if depth t >= t.spec.t_queue_bound then begin
      t.shed_queue <- t.shed_queue + 1;
      Shed_queue
    end
    else begin
      Queue.push req t.q;
      t.admitted <- t.admitted + 1;
      let d = depth t in
      if d > t.depth_max then t.depth_max <- d;
      t.depth_sum <- t.depth_sum + d;
      Admitted
    end
  end

(** Enqueue without admission control (closed-loop clients: concurrency
    is the cap, quotas do not apply). *)
let enqueue (t : 'a t) (req : 'a) =
  Queue.push req t.q;
  t.admitted <- t.admitted + 1;
  let d = depth t in
  if d > t.depth_max then t.depth_max <- d;
  t.depth_sum <- t.depth_sum + d

let peek t = Queue.peek_opt t.q
let take t = Queue.pop t.q

let sheds t = t.shed_queue + t.shed_quota

(** Fraction of the quota the tenant actually spent over a run of
    [duration] simulated cycles (NaN when it has no quota; can exceed
    1.0 slightly by the burst allowance). *)
let quota_utilization t ~(duration : float) : float =
  if not (has_quota t) || duration <= 0.0 then Float.nan
  else float_of_int t.admitted /. (t.quota_per_cycle *. duration)

let depth_avg t =
  if t.admitted = 0 then 0.0
  else float_of_int t.depth_sum /. float_of_int t.admitted
