(** The shared run queue: a deterministic FIFO of integer ids with the
    rotation discipline both schedulers in the tree need.

    [Runtime]'s preemptive scheduler runs pids through it and [Pool]
    (and the serve layer's tenant/shard queues) run instance and tenant
    indexes through it — one abstraction, one set of ordering rules:

    - [push] appends at the tail (new work runs last);
    - [promote] moves an id to the head (direct-yield handoff:
      [Sysno.yield_to] wants the target to run {e next});
    - [select] is the scheduling scan: walk from the head, drop ids
      that are no longer [keep] (dead processes, retired instances),
      skip ids that are kept but not [runnable] (blocked), and on the
      first runnable id rotate the queue so the unscanned tail runs
      first, the skipped ids keep their relative order behind it, and
      the chosen id goes to the back.  If nothing is runnable the queue
      is compacted to the kept ids in their original order.

    Ids are plain ints; the queue never interprets them.  Everything is
    arrays and ints — no hash tables, no closures captured across
    calls — so iteration order (and therefore every report built on a
    scheduler) is a pure function of the call sequence. *)

type t = {
  mutable buf : int array;
  mutable head : int;  (** index of the first element *)
  mutable len : int;
}

let create ?(capacity = 8) () =
  { buf = Array.make (max capacity 1) 0; head = 0; len = 0 }

let length q = q.len
let is_empty q = q.len = 0

let nth q i = q.buf.((q.head + i) mod Array.length q.buf)

let grow q =
  let cap = Array.length q.buf in
  let buf = Array.make (2 * cap) 0 in
  for i = 0 to q.len - 1 do
    buf.(i) <- nth q i
  done;
  q.buf <- buf;
  q.head <- 0

(** Append [x] at the tail. *)
let push q x =
  if q.len = Array.length q.buf then grow q;
  q.buf.((q.head + q.len) mod Array.length q.buf) <- x;
  q.len <- q.len + 1

(** Prepend [x] at the head. *)
let push_front q x =
  if q.len = Array.length q.buf then grow q;
  let cap = Array.length q.buf in
  q.head <- (q.head + cap - 1) mod cap;
  q.buf.(q.head) <- x;
  q.len <- q.len + 1

(** Pop the head, if any. *)
let pop q =
  if q.len = 0 then None
  else begin
    let x = q.buf.(q.head) in
    q.head <- (q.head + 1) mod Array.length q.buf;
    q.len <- q.len - 1;
    Some x
  end

let mem q x =
  let rec go i = i < q.len && (nth q i = x || go (i + 1)) in
  go 0

let clear q =
  q.head <- 0;
  q.len <- 0

let to_list q = List.init q.len (nth q)

let iter f q =
  for i = 0 to q.len - 1 do
    f (nth q i)
  done

(** Remove every occurrence of [x], preserving the order of the rest. *)
let remove q x =
  let n = q.len in
  let items = Array.init n (nth q) in
  clear q;
  Array.iter (fun y -> if y <> x then push q y) items

(** Move [x] to the head whether or not it is queued (the direct-yield
    path: run the handoff target next, exactly once). *)
let promote q x =
  remove q x;
  push_front q x

(** The scheduling scan (see the module doc for the rotation rules).
    Returns the chosen id, still enqueued at the tail. *)
let select q ~(keep : int -> bool) ~(runnable : int -> bool) : int option =
  let n = q.len in
  let items = Array.init n (nth q) in
  clear q;
  let rec go i skipped =
    if i >= n then begin
      (* nothing runnable: compact to the kept ids, original order *)
      Array.iter (fun x -> if keep x then push q x) items;
      None
    end
    else
      let x = items.(i) in
      if not (keep x) then go (i + 1) skipped
      else if runnable x then begin
        for j = i + 1 to n - 1 do
          push q items.(j)
        done;
        List.iter (push q) (List.rev skipped);
        push q x;
        Some x
      end
      else go (i + 1) (x :: skipped)
  in
  go 0 []
