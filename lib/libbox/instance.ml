(** A warm library instance: one loaded sandbox plus everything needed
    to call into it and wind it back.

    {b Calling.}  A call builds a register snapshot — arguments in
    x0..x7, pc at the export, x30 at the return trampoline — anchors it
    to the slot with {!Lfi_runtime.Runtime.anchor_snapshot} (the same
    helper load and fork use), and drives the emulator until the
    trampoline surfaces through the runtime-call table
    ([Sysno.box_ret]).  Runtime calls the export makes along the way go
    through the ordinary {!Lfi_runtime.Runtime.handle_call}; faults
    take the ordinary kill path (postmortem included) and retire the
    instance.  The transition cost — call-gate entry + exit plus buffer
    marshalling, everything except the sandboxed execution itself — is
    accounted per call into a log2 histogram.

    {b Reset.}  At creation (after the optional init export) the
    instance captures a baseline: a copy of every mapped page of its
    slot plus the heap break, with the pages' dirty flags cleared.
    [reset] restores exactly the pages whose dirty flag came back on,
    unmaps pages the request mapped, remaps pages it unmapped, and
    rewinds the fd table and heap break — so no request can observe a
    previous request's writes (test-enforced). *)

open Lfi_emulator
open Lfi_runtime

type pristine = { pg_bytes : bytes; pg_perm : Memory.perm }

type t = {
  lib : Library.t;
  rt : Runtime.t;
  p : Proc.t;
  arena_base : int64;  (** absolute base of the marshalling arena *)
  arena_len : int;
  insn_budget : int;  (** per-call runaway limit *)
  pristine : (int, pristine) Hashtbl.t;  (** page index → baseline copy *)
  mutable baseline : Machine.snapshot;
  mutable heap_end0 : int64;
  mutable alive : bool;
  gate_hist : Lfi_telemetry.Histogram.t;
  call_hist : Lfi_telemetry.Histogram.t;
  span : Lfi_telemetry.Span.t;
      (** per-request phase record, rewound on every call — the serve
          layer reads it right after dispatch *)
  mutable calls : int;
  mutable resets : int;
  mutable call_insns : int;  (** total sandboxed instructions across calls *)
  mutable pages_restored : int;  (** dirty pages rewound across resets *)
}

let page = Memory.page_size
let pages_per_slot = Lfi_core.Layout.sandbox_size / page
let align_page v = (v + page - 1) / page * page
let slot_first (p : Proc.t) = Memory.page_index p.Proc.base
let addr_of_idx idx = Int64.shift_left (Int64.of_int idx) Memory.page_bits

(** Snapshot the slot's current memory as the reset baseline and clear
    the dirty flags, so [reset] touches only pages written since. *)
let capture_baseline (inst : t) =
  Hashtbl.reset inst.pristine;
  let first = slot_first inst.p in
  Memory.iter_pages inst.rt.Runtime.mem (fun idx pg ->
      if idx >= first && idx < first + pages_per_slot then begin
        Hashtbl.replace inst.pristine idx
          { pg_bytes = Bytes.copy (Memory.page_data pg);
            pg_perm = Memory.page_perm pg };
        Memory.page_clear_dirty pg
      end);
  inst.heap_end0 <- inst.p.Proc.heap_end;
  inst.baseline <- inst.p.Proc.snapshot

(** Wind the instance back to its baseline: restore dirty pages from
    the pristine copies (a straight [Bytes.blit] — data pages are never
    executable, so no decode-cache entry can go stale; the map/unmap
    paths go through the invalidating entry points), rewind the heap
    break, and rebuild the std fd table.

    Cost is O(pages of this slot), never O(pages of the runtime): the
    baseline pages are walked through [pristine], and any page the
    request mapped beyond the baseline must sit in
    [heap_end0, heap_end) because both [mmap] and [brk] bump-allocate
    at the break — so with hundreds of resident instances a reset
    still touches only its own slot. *)
let reset (inst : t) =
  let mem = inst.rt.Runtime.mem in
  let restored = ref 0 in
  (* baseline pages: restore if dirtied, re-protect if mprotected,
     bring back if the request unmapped them *)
  Hashtbl.iter
    (fun idx pr ->
      match Memory.find_page_by_index mem idx with
      | Some pg ->
          if Memory.page_dirty pg then begin
            Bytes.blit pr.pg_bytes 0 (Memory.page_data pg) 0 page;
            Memory.page_clear_dirty pg;
            incr restored
          end;
          if Memory.page_perm pg <> pr.pg_perm then
            Memory.set_page_perm mem idx pr.pg_perm
      | None ->
          Memory.map mem ~addr:(addr_of_idx idx) ~len:page ~perm:pr.pg_perm;
          (match Memory.find_page_by_index mem idx with
          | Some pg ->
              Bytes.blit pr.pg_bytes 0 (Memory.page_data pg) 0 page;
              Memory.page_clear_dirty pg
          | None -> assert false);
          incr restored)
    inst.pristine;
  (* pages the request mapped (mmap/brk allocate at the break, so they
     all live in the heap-growth range): drop them *)
  let lo = Memory.page_index inst.heap_end0
  and hi =
    Memory.page_index
      (Int64.add inst.p.Proc.heap_end (Int64.of_int (page - 1)))
  in
  for idx = lo to hi - 1 do
    if not (Hashtbl.mem inst.pristine idx)
       && Memory.find_page_by_index mem idx <> None
    then Memory.unmap mem ~addr:(addr_of_idx idx) ~len:page
  done;
  inst.pages_restored <- inst.pages_restored + !restored;
  inst.p.Proc.heap_end <- inst.heap_end0;
  Proc.close_all inst.p;
  Proc.install_std_fds inst.p;
  Buffer.clear inst.p.Proc.stdout;
  inst.p.Proc.state <- Proc.Runnable;
  inst.p.Proc.snapshot <- inst.baseline;
  inst.resets <- inst.resets + 1

(* ------------------------------------------------------------------ *)
(* Marshalling                                                         *)
(* ------------------------------------------------------------------ *)

(** Cycles to move [len] bytes across the boundary: one load + one
    store per 8-byte word, as the runtime's copyin/copyout would
    execute. *)
let marshal_cycles (u : Cost_model.t) (len : int) : float =
  float_of_int ((len + 7) / 8) *. (u.Cost_model.load +. u.Cost_model.store)

(** Explicit copy-in/copy-out through the sandbox window, reusing the
    runtime's user-memory accessors ({!Runtime.write_user_bytes} /
    {!Runtime.read_user_bytes}); a bad pointer is [Error Efault]. *)
let copy_in (inst : t) (addr : int64) (b : bytes) : (unit, Api.error) result =
  match Runtime.write_user_bytes inst.rt inst.p addr b with
  | Ok () -> Ok ()
  | Error _ -> Error Api.Efault

let copy_out (inst : t) (addr : int64) (len : int) :
    (bytes, Api.error) result =
  match Runtime.read_user_bytes inst.rt inst.p addr len with
  | Ok b -> Ok b
  | Error _ -> Error Api.Efault

(* ------------------------------------------------------------------ *)
(* Calling                                                             *)
(* ------------------------------------------------------------------ *)

exception Marshal_error of Api.error

(** Place the arguments: scalars pass through, buffers are bump-
    allocated in the arena (8-byte aligned) and replaced by their
    sandbox-relative address.  Returns the register images and the
    [(addr, len)] list of [Out] reservations, plus marshalling cost. *)
let marshal (inst : t) (args : Api.arg list) :
    int64 list * (int64 * int) list * float =
  let u = inst.rt.Runtime.cfg.Runtime.uarch in
  let cursor = ref 0 and cost = ref 0.0 and outs = ref [] in
  let reserve len =
    let off = !cursor in
    if off + len > inst.arena_len then raise (Marshal_error Api.Arena_overflow);
    cursor := (off + len + 7) / 8 * 8;
    Int64.add inst.arena_base (Int64.of_int off)
  in
  let rec go = function
    | [] -> []
    | a :: tl ->
        let r =
          match a with
          | Api.I v -> v
          | Api.In b ->
              let addr = reserve (Bytes.length b) in
              (match copy_in inst addr b with
              | Ok () -> ()
              | Error e -> raise (Marshal_error e));
              cost := !cost +. marshal_cycles u (Bytes.length b);
              Int64.sub addr inst.p.Proc.base
          | Api.Out len ->
              let addr = reserve len in
              outs := (addr, len) :: !outs;
              Int64.sub addr inst.p.Proc.base
        in
        r :: go tl
  in
  let regs = go args in
  (regs, List.rev !outs, !cost)

(** Retire the instance through the runtime's ordinary kill path: the
    postmortem is assembled while the machine still holds the dead
    call's register state, then the slot is released for reuse. *)
let kill (inst : t) ?fault (reason : string) : Api.error =
  Runtime.kill_proc inst.rt ?fault inst.p reason;
  Runtime.remove_proc inst.rt inst.p;
  inst.alive <- false;
  Api.Killed reason

let retire (inst : t) =
  Runtime.remove_proc inst.rt inst.p;
  inst.alive <- false

(** Call [name] with [args]; on success the reply carries the return
    value, the [Out] buffers, and the per-call cycle accounting. *)
let call (inst : t) (name : string) (args : Api.arg list) :
    (Api.reply, Api.error) result =
  if not inst.alive then Error (Api.Killed "instance already retired")
  else
    match Library.export_addr inst.lib name with
    | None -> Error (Api.Unknown_export name)
    | Some entry -> (
        if List.length args > 8 then Error Api.Too_many_args
        else
          match
            Lfi_telemetry.Span.start inst.span name;
            marshal inst args
          with
          | exception Marshal_error e -> Error e
          | reg_args, outs, marshal_in -> (
              let rt = inst.rt and p = inst.p in
              let m = rt.Runtime.machine in
              let u = rt.Runtime.cfg.Runtime.uarch in
              let gate = ref marshal_in in
              Lfi_telemetry.Span.set inst.span Lfi_telemetry.Span.Marshal_in
                marshal_in;
              (* entry snapshot: args in x0.., x30 at the trampoline,
                 everything anchored to the slot *)
              let regs = Array.make 31 0L in
              List.iteri (fun i v -> regs.(i) <- v) reg_args;
              regs.(30) <- Int64.of_int inst.lib.Library.trampoline;
              let snap =
                Runtime.anchor_snapshot p.Proc.base
                  {
                    Machine.s_pc = Int64.of_int entry;
                    s_regs = regs;
                    s_sp = Int64.of_int Lfi_core.Layout.stack_top;
                    s_flags = (false, false, false, false);
                    s_vlo = Array.make 32 0L;
                    s_vhi = Array.make 32 0L;
                  }
              in
              Machine.restore m snap;
              m.Machine.flight <-
                (if rt.Runtime.cfg.Runtime.flight_recorder then
                   Some p.Proc.flight
                 else None);
              let t0 = Machine.cycles m and i0 = m.Machine.insns in
              (* host→sandbox gate: same price as a runtime-call entry *)
              Machine.add_cycles m u.Cost_model.lfi_runtime_call_entry;
              gate := !gate +. u.Cost_model.lfi_runtime_call_entry;
              inst.span.Lfi_telemetry.Span.t0 <- t0;
              Lfi_telemetry.Span.set inst.span Lfi_telemetry.Span.Gate_in
                u.Cost_model.lfi_runtime_call_entry;
              let rec drive () =
                if m.Machine.insns - i0 > inst.insn_budget then
                  Error (kill inst "library call instruction budget exceeded")
                else
                  match Exec.run m ~quantum:rt.Runtime.cfg.Runtime.quantum with
                  | Exec.Quantum_expired -> drive ()
                  | Exec.Runtime_entry pc ->
                      let k =
                        Int64.to_int (Int64.sub pc Machine.host_region_start)
                        / 8
                      in
                      m.Machine.pc <- m.Machine.regs.(30);
                      if k = Sysno.box_ret then begin
                        Lfi_telemetry.Span.set inst.span
                          Lfi_telemetry.Span.Exec
                          (Machine.cycles m -. t0
                          -. u.Cost_model.lfi_runtime_call_entry);
                        (* sandbox→host gate *)
                        Machine.add_cycles m
                          u.Cost_model.lfi_runtime_call_entry;
                        gate := !gate +. u.Cost_model.lfi_runtime_call_entry;
                        Lfi_telemetry.Span.set inst.span
                          Lfi_telemetry.Span.Gate_out
                          u.Cost_model.lfi_runtime_call_entry;
                        Ok m.Machine.regs.(0)
                      end
                      else begin
                        match Runtime.handle_call rt p k with
                        | Runtime.Continue -> drive ()
                        | Runtime.Switch ->
                            ignore
                              (kill inst
                                 "blocking runtime call in library call");
                            Error Api.Blocked
                        | Runtime.Died (Runtime.Exited c) ->
                            retire inst;
                            Error (Api.Exited c)
                        | Runtime.Died (Runtime.Killed why) ->
                            Error (kill inst why)
                      end
                  | Exec.Trap (Exec.Svc_trap _) ->
                      Error (kill inst "svc from sandboxed code")
                  | Exec.Trap (Exec.Mem_fault f) ->
                      Error
                        (kill inst ~fault:f
                           (Format.asprintf "%a" Memory.pp_fault f))
                  | Exec.Trap (Exec.Undefined pc) ->
                      Error
                        (kill inst
                           (Printf.sprintf "undefined instruction at 0x%Lx" pc))
              in
              let insns_of () = m.Machine.insns - i0 in
              match drive () with
              | Error e ->
                  p.Proc.user_insns <- p.Proc.user_insns + insns_of ();
                  Error e
              | Ok ret -> (
                  (* copy-out, in argument order *)
                  let mout = ref 0.0 in
                  let rec collect acc = function
                    | [] ->
                        Lfi_telemetry.Span.set inst.span
                          Lfi_telemetry.Span.Marshal_out !mout;
                        Ok (List.rev acc)
                    | (addr, len) :: tl -> (
                        gate := !gate +. marshal_cycles u len;
                        mout := !mout +. marshal_cycles u len;
                        Machine.add_cycles m (marshal_cycles u len);
                        match copy_out inst addr len with
                        | Ok b -> collect (b :: acc) tl
                        | Error e -> Error e)
                  in
                  match collect [] outs with
                  | Error e -> Error e
                  | Ok out_bufs ->
                      let call_insns = insns_of () in
                      let total = Machine.cycles m -. t0 in
                      p.Proc.user_insns <- p.Proc.user_insns + call_insns;
                      p.Proc.rtcalls <- p.Proc.rtcalls + 1;
                      inst.calls <- inst.calls + 1;
                      inst.call_insns <- inst.call_insns + call_insns;
                      Lfi_telemetry.Histogram.observe inst.gate_hist !gate;
                      Lfi_telemetry.Histogram.observe inst.call_hist total;
                      (match rt.Runtime.trace with
                      | None -> ()
                      | Some t ->
                          Lfi_telemetry.Trace.complete t
                            ~name:("call:" ^ name) ~cat:"libbox" ~ts:t0
                            ~dur:total ~pid:Runtime.trace_pid ~tid:p.Proc.pid
                            ~args:
                              [ ("ret", Lfi_telemetry.Trace.I64 ret);
                                ( "gate_cycles",
                                  Lfi_telemetry.Trace.Int
                                    (int_of_float !gate) ) ]);
                      Ok
                        {
                          Api.ret;
                          outs = out_bufs;
                          stats =
                            {
                              Api.gate_cycles = !gate;
                              total_cycles = total;
                              call_insns;
                            };
                        })))

(** Load one warm instance into [rt] (which should have verification
    off: the {!Library} already verified the image).  Runs [init] when
    given, then captures the reset baseline — init effects persist
    across resets. *)
let create ?(arena = 1 lsl 16) ?(insn_budget = 200_000_000) ?init
    (rt : Runtime.t) (lib : Library.t) : t =
  let p = Runtime.load rt ~personality:Proc.Lfi lib.Library.elf in
  let arena_len = align_page (max arena 1) in
  let arena_base = p.Proc.heap_end in
  Memory.map rt.Runtime.mem ~addr:arena_base ~len:arena_len
    ~perm:Memory.perm_rw;
  p.Proc.heap_end <- Int64.add arena_base (Int64.of_int arena_len);
  let inst =
    {
      lib;
      rt;
      p;
      arena_base;
      arena_len;
      insn_budget;
      pristine = Hashtbl.create 64;
      baseline = p.Proc.snapshot;
      heap_end0 = p.Proc.heap_end;
      alive = true;
      gate_hist = Lfi_telemetry.Histogram.create ();
      call_hist = Lfi_telemetry.Histogram.create ();
      span = Lfi_telemetry.Span.create ();
      calls = 0;
      resets = 0;
      call_insns = 0;
      pages_restored = 0;
    }
  in
  (match init with
  | None -> ()
  | Some name -> (
      match call inst name [] with
      | Ok _ -> ()
      | Error e ->
          raise
            (Library.Error
               (Printf.sprintf "%s: init %S failed: %s" lib.Library.name name
                  (Api.error_to_string e)))));
  (* the init call counts toward neither the serving stats *)
  Lfi_telemetry.Histogram.reset inst.gate_hist;
  Lfi_telemetry.Histogram.reset inst.call_hist;
  inst.calls <- 0;
  inst.call_insns <- 0;
  capture_baseline inst;
  inst
