(** Host-facing types for library sandboxing.

    A sandboxed library is an ordinary verified LFI binary whose
    exported functions the host calls directly: scalars travel in
    registers, buffers are marshalled through a per-instance arena
    inside the sandbox window with explicit copy-in/copy-out, and every
    transition is priced in simulated cycles so the call-gate cost can
    be compared against the cost model's process-based baselines
    (PAPER §5.3: an LFI runtime call is a function call plus a
    register swap, not a kernel round-trip). *)

(** One argument of a library call.  Arguments map to x0..x7 in order;
    buffer arguments are placed in the instance's marshalling arena and
    the callee receives a sandbox pointer. *)
type arg =
  | I of int64  (** scalar, passed in a register *)
  | In of bytes  (** copy-in: the callee sees a pointer to a copy *)
  | Out of int
      (** copy-out: reserve this many bytes; the contents after the
          call are returned in {!reply.outs}, in argument order *)

(** Per-call cost accounting, in simulated cycles. *)
type call_stats = {
  gate_cycles : float;
      (** the transition cost alone: runtime-call entry + exit plus
          buffer marshalling — the number to compare against
          [linux_pipe_roundtrip] *)
  total_cycles : float;  (** gate + sandboxed execution *)
  call_insns : int;  (** instructions retired inside the sandbox *)
}

type reply = {
  ret : int64;  (** the export's return value (x0) *)
  outs : bytes list;  (** one entry per [Out] argument, in order *)
  stats : call_stats;
}

type error =
  | Unknown_export of string
  | Too_many_args  (** more than 8 register arguments *)
  | Arena_overflow  (** buffer arguments exceed the marshalling arena *)
  | Efault  (** host-side copy touched an unmapped sandbox address *)
  | Blocked
      (** the export issued a blocking runtime call; a library call
          must run to completion, so the instance is retired *)
  | Exited of int  (** the export called the exit runtime call *)
  | Killed of string  (** fault or runaway; instance retired *)
  | No_instances  (** every pool instance has been retired *)

let error_to_string = function
  | Unknown_export n -> Printf.sprintf "unknown export %S" n
  | Too_many_args -> "more than 8 arguments"
  | Arena_overflow -> "marshalling arena overflow"
  | Efault -> "bad sandbox pointer (EFAULT)"
  | Blocked -> "blocking runtime call in library call"
  | Exited c -> Printf.sprintf "exit(%d) in library call" c
  | Killed why -> "killed: " ^ why
  | No_instances -> "no live instances"

(** An export in a library's request-stream description: how often the
    dispatcher picks it and how to generate its arguments.  [e_gen]
    draws from the seeded stream generator only through [rng] (a
    bounded uniform draw), keeping the request stream deterministic. *)
type export_spec = {
  e_name : string;
  e_weight : int;  (** relative pick weight; 0 = callable but not in the stream *)
  e_gen : rng:(int -> int) -> arg list;
}

(** A latency/error objective for one export, declared alongside the
    request stream so the serving layer can evaluate burn rates per
    window (see {!Lfi_telemetry.Slo}). *)
type slo = {
  s_export : string;
  s_objective : Lfi_telemetry.Slo.objective;
}

(** A library-shaped workload: a MiniC program plus the exports the
    host may call.  [l_init], when present, is run once per instance
    before the reset baseline is captured, so its effects persist
    across resets. *)
type lib_spec = {
  l_name : string;
  l_short : string;
  l_program : Lfi_minic.Ast.program;
  l_init : string option;
  l_arena : int;  (** marshalling arena size in bytes *)
  l_exports : export_spec list;
  l_slos : slo list;  (** per-export serving objectives *)
}
