(** A sandboxed library: compiled, rewritten, and verified once.

    The ELF is built through the ordinary pipeline (MiniC → rewriter →
    assembler → ELF) with one addition: a return trampoline,
    [__libbox_ret], appended to the program.  Host→sandbox calls are
    started by pointing the machine at an export with x30 set to the
    trampoline's (in-sandbox) address; when the export returns, the
    trampoline forwards its result to the host through the
    runtime-call table ([Sysno.box_ret]).  The trampoline address
    survives the rewriter's x30 guard because it is a sandbox offset —
    clamping it to [base | low32] is the identity — whereas a host
    address in x30 would be clamped into the slot.  The runtime-call
    table is thus the only door out of the sandbox, for library calls
    exactly as for system calls (§4.4).

    Verification happens here, once per library; instances then load
    the pre-verified image with verification off.  Exports are
    resolved through the ELF [.symtab] — every MiniC function label is
    a symbol, so an export list is just a set of names. *)

type t = {
  name : string;
  elf : Lfi_elf.Elf.t;
  exports : (string * int) list;  (** name → sandbox-relative address *)
  trampoline : int;  (** sandbox-relative address of [__libbox_ret] *)
  config : Lfi_core.Config.t;
}

exception Error of string

let trampoline_name = "__libbox_ret"

(** Append the return trampoline.  Its single parameter binds the
    export's return value (still in x0 when the export's [ret] lands
    here), which it hands to the host. *)
let with_trampoline (prog : Lfi_minic.Ast.program) : Lfi_minic.Ast.program =
  let open Lfi_minic.Ast in
  let open Lfi_minic.Ast.Dsl in
  let tramp =
    func trampoline_name
      ~params:[ ("r", Int) ]
      [ expr (Syscall (Lfi_runtime.Sysno.box_ret, [ v "r" ])); ret (i 0) ]
  in
  { prog with funcs = prog.funcs @ [ tramp ] }

let create ?(config = Lfi_core.Config.o2) ~(name : string)
    ~(exports : string list) (prog : Lfi_minic.Ast.program) : t =
  let native = Lfi_minic.Compile.compile (with_trampoline prog) in
  let rewritten, _stats = Lfi_core.Rewriter.rewrite ~config native in
  let elf = Lfi_elf.Elf.of_image (Lfi_arm64.Assemble.assemble rewritten) in
  (* Verify once; instances load with verification off. *)
  let vconfig =
    { Lfi_verifier.Verifier.default_config with
      sandbox_loads = config.Lfi_core.Config.sandbox_loads;
      allow_exclusives = config.Lfi_core.Config.allow_exclusives }
  in
  (match Lfi_elf.Elf.text_segment elf with
  | None -> raise (Error (name ^ ": no executable segment"))
  | Some seg -> (
      match
        Lfi_verifier.Verifier.verify ~config:vconfig
          ~origin:seg.Lfi_elf.Elf.vaddr ~code:seg.Lfi_elf.Elf.data ()
      with
      | Ok _ -> ()
      | Error vs ->
          raise
            (Error
               (Format.asprintf "%s: verification failed: %a (+%d more)" name
                  Lfi_verifier.Verifier.pp_violation (List.hd vs)
                  (List.length vs - 1)))));
  let resolve n =
    match Lfi_elf.Elf.find_symbol elf n with
    | Some a -> a
    | None -> raise (Error (Printf.sprintf "%s: unknown export %S" name n))
  in
  {
    name;
    elf;
    exports = List.map (fun n -> (n, resolve n)) exports;
    trampoline = resolve trampoline_name;
    config;
  }

let export_addr (t : t) (n : string) : int option = List.assoc_opt n t.exports

(** Any symbol of the library image (globals included), for tests that
    need an in-sandbox address. *)
let symbol (t : t) (n : string) : int option = Lfi_elf.Elf.find_symbol t.elf n
