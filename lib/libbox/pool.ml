(** A pool of warm library instances.

    All instances live in one runtime (one emulated address space, one
    slot each — the paper's deployment shape, §5.3).  Dispatch is
    round-robin over the live instances and every successful request is
    followed by a snapshot reset, so requests are independent by
    construction.  A request that kills its instance — fault, runaway,
    blocking call — retires only that instance: its slot is released,
    its postmortem is on the runtime, and the pool keeps serving on the
    survivors. *)

open Lfi_runtime

type t = {
  lib : Library.t;
  rt : Runtime.t;
  instances : Instance.t array;  (** creation order; dead ones stay put *)
  mutable rr : int;  (** round-robin cursor over live instances *)
  mutable served : int;
  mutable failed : int;
}

(** Build a pool of [size] instances.  The runtime is created here with
    verification off — the {!Library} already verified the image once —
    unless an explicit [runtime] is supplied. *)
let create ?runtime ?arena ?insn_budget ?init ~(size : int) (lib : Library.t)
    : t =
  if size < 1 then invalid_arg "Pool.create: size < 1";
  let rt =
    match runtime with
    | Some rt -> rt
    | None ->
        Runtime.create
          ~config:{ Runtime.default_config with verify = false }
          ()
  in
  let instances =
    Array.init size (fun _ -> Instance.create ?arena ?insn_budget ?init rt lib)
  in
  { lib; rt; instances; rr = 0; served = 0; failed = 0 }

let live (pool : t) : Instance.t list =
  Array.to_list pool.instances |> List.filter (fun i -> i.Instance.alive)

let live_count (pool : t) = List.length (live pool)

(** Dispatch one request: pick the next live instance round-robin,
    call, and reset it afterwards (marshalling-level failures also
    reset — the arena may hold partial copy-ins).  Returns the chosen
    instance so callers can attribute the result to a slot. *)
let dispatch (pool : t) (name : string) (args : Api.arg list) :
    Instance.t option * (Api.reply, Api.error) result =
  match live pool with
  | [] -> (None, Error Api.No_instances)
  | alive ->
      let inst = List.nth alive (pool.rr mod List.length alive) in
      pool.rr <- pool.rr + 1;
      let r = Instance.call inst name args in
      (match r with
      | Ok _ ->
          pool.served <- pool.served + 1;
          Instance.reset inst
      | Error _ ->
          pool.failed <- pool.failed + 1;
          if inst.Instance.alive then Instance.reset inst);
      (Some inst, r)

(** Instances lost since creation. *)
let retired (pool : t) = Array.length pool.instances - live_count pool

(** Merged per-call histograms across all instances (dead included —
    their calls before dying still count). *)
let merged_hists (pool : t) :
    Lfi_telemetry.Histogram.t * Lfi_telemetry.Histogram.t =
  let gate = Lfi_telemetry.Histogram.create ()
  and call = Lfi_telemetry.Histogram.create () in
  Array.iter
    (fun i ->
      Lfi_telemetry.Histogram.merge gate i.Instance.gate_hist;
      Lfi_telemetry.Histogram.merge call i.Instance.call_hist)
    pool.instances;
  (gate, call)
