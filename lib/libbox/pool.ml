(** A pool of warm library instances.

    All instances live in one runtime (one emulated address space, one
    slot each — the paper's deployment shape, §5.3).  Dispatch order
    comes from the shared {!Lfi_sched.Runq} the runtime's preemptive
    scheduler also runs on: live instances rotate through the queue
    (head serves, then re-queues at the tail), retired instances fall
    out of it during the scheduling scan, and a respawned instance
    joins at the tail — so cursor state can never dangle on a dead
    slot, even when every instance but one (or the last one,
    mid-stream) retires.  Every successful request is followed by a
    snapshot reset, so requests are independent by construction.  A
    request that kills its instance — fault, runaway, blocking call —
    retires only that instance: its slot is released, its postmortem is
    on the runtime, and the pool keeps serving on the survivors. *)

open Lfi_runtime
module Runq = Lfi_sched.Runq

type t = {
  lib : Library.t;
  rt : Runtime.t;
  mutable instances : Instance.t array;
      (** creation order; dead ones stay put, respawns append *)
  runq : Runq.t;  (** indexes into [instances], dispatch order *)
  arena : int option;
  insn_budget : int option;
  init : string option;
  mutable served : int;
  mutable failed : int;
}

(** Build a pool of [size] instances.  The runtime is created here with
    verification off — the {!Library} already verified the image once —
    unless an explicit [runtime] is supplied. *)
let create ?runtime ?arena ?insn_budget ?init ~(size : int) (lib : Library.t)
    : t =
  if size < 1 then invalid_arg "Pool.create: size < 1";
  let rt =
    match runtime with
    | Some rt -> rt
    | None ->
        Runtime.create
          ~config:{ Runtime.default_config with verify = false }
          ()
  in
  let instances =
    Array.init size (fun _ -> Instance.create ?arena ?insn_budget ?init rt lib)
  in
  let runq = Runq.create ~capacity:size () in
  Array.iteri (fun i _ -> Runq.push runq i) instances;
  { lib; rt; instances; runq; arena; insn_budget; init; served = 0;
    failed = 0 }

let live (pool : t) : Instance.t list =
  Array.to_list pool.instances |> List.filter (fun i -> i.Instance.alive)

let live_count (pool : t) = List.length (live pool)

(** Pick the next live instance off the run queue (rotating it to the
    tail), without dispatching.  [None] once every instance is dead. *)
let next_instance (pool : t) : Instance.t option =
  Runq.select pool.runq
    ~keep:(fun i -> pool.instances.(i).Instance.alive)
    ~runnable:(fun _ -> true)
  |> Option.map (fun i -> pool.instances.(i))

(** Run one request on a caller-chosen instance: call, account, and
    reset afterwards (marshalling-level failures also reset — the arena
    may hold partial copy-ins).  The serve layer uses this directly
    when tenant shards pick the instance; {!dispatch} wraps it with the
    pool-order pick. *)
let dispatch_on (pool : t) (inst : Instance.t) (name : string)
    (args : Api.arg list) : (Api.reply, Api.error) result =
  let r = Instance.call inst name args in
  (match r with
  | Ok _ ->
      pool.served <- pool.served + 1;
      Instance.reset inst
  | Error _ ->
      pool.failed <- pool.failed + 1;
      if inst.Instance.alive then Instance.reset inst);
  r

(** Dispatch one request on the next live instance in queue order.
    Returns the chosen instance so callers can attribute the result to
    a slot. *)
let dispatch (pool : t) (name : string) (args : Api.arg list) :
    Instance.t option * (Api.reply, Api.error) result =
  match next_instance pool with
  | None -> (None, Error Api.No_instances)
  | Some inst -> (Some inst, dispatch_on pool inst name args)

(** Replace lost capacity: load a fresh instance (reusing a retired
    slot — the runtime recycles freed slots first) and enqueue it at
    the tail of the dispatch order. *)
let respawn (pool : t) : Instance.t =
  let inst =
    Instance.create ?arena:pool.arena ?insn_budget:pool.insn_budget
      ?init:pool.init pool.rt pool.lib
  in
  pool.instances <- Array.append pool.instances [| inst |];
  Runq.push pool.runq (Array.length pool.instances - 1);
  inst

(** Instances lost since creation. *)
let retired (pool : t) = Array.length pool.instances - live_count pool

(** Merged per-call histograms across all instances (dead included —
    their calls before dying still count). *)
let merged_hists (pool : t) :
    Lfi_telemetry.Histogram.t * Lfi_telemetry.Histogram.t =
  let gate = Lfi_telemetry.Histogram.create ()
  and call = Lfi_telemetry.Histogram.create () in
  Array.iter
    (fun i ->
      Lfi_telemetry.Histogram.merge gate i.Instance.gate_hist;
      Lfi_telemetry.Histogram.merge call i.Instance.call_hist)
    pool.instances;
  (gate, call)
