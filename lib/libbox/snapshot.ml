(** Byte-stable [lfi-snap/v2] serving snapshots.

    A snapshot is one JSON line capturing the serving layer mid-run:
    per-export rolling latency (p50/p99/p999 over the retained
    windows), per-slot pool state, per-tenant scheduler state (queue
    depth, quota utilization, sheds — v2), the cumulative span-phase
    cycle breakdown, and every SLO burn-rate alert fired so far.
    Everything derives from the seed and the simulated clock, so the
    frames `lfi_serve --snapshot --snapshot-every N` writes are
    byte-identical across runs — CI diffs a committed copy, and the
    golden test pins the format.

    {!of_json} still parses [lfi-snap/v1] frames (pre-multi-tenant
    recordings replay in `lfi_top` unchanged; their tenant table is
    simply empty).

    The module is deliberately self-contained in both directions:
    {!to_json} renders a frame, {!of_json} parses one back (via the
    minimal {!Json} reader below — the repo takes no JSON dependency),
    and {!render} lays a parsed frame out as the `lfi_top` table. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader                                                  *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let skip_ws () =
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr pos
      done
    in
    let expect c =
      if peek () = c then incr pos
      else fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      let m = String.length word in
      if !pos + m <= n && String.sub s !pos m = word then begin
        pos := !pos + m;
        v
      end
      else fail ("bad literal " ^ word)
    in
    let string_body () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              incr pos;
              (match peek () with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 't' -> Buffer.add_char b '\t'
              | 'r' -> Buffer.add_char b '\r'
              | 'u' ->
                  (* our writer only emits \u00XX for control bytes *)
                  if !pos + 4 >= n then fail "bad \\u escape";
                  let code =
                    int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                  in
                  Buffer.add_char b (Char.chr (code land 0xff));
                  pos := !pos + 4
              | c -> fail (Printf.sprintf "bad escape %C" c));
              incr pos;
              go ()
          | c ->
              Buffer.add_char b c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | '{' ->
          incr pos;
          skip_ws ();
          if peek () = '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = string_body () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | '}' ->
                  incr pos;
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected , or }"
            in
            members []
      | '[' ->
          incr pos;
          skip_ws ();
          if peek () = ']' then begin
            incr pos;
            Arr []
          end
          else
            let rec elems acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  incr pos;
                  elems (v :: acc)
              | ']' ->
                  incr pos;
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected , or ]"
            in
            elems []
      | '"' -> Str (string_body ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> number ()
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let field obj name =
    match obj with
    | Obj kvs -> (
        match List.assoc_opt name kvs with
        | Some v -> v
        | None -> raise (Parse_error ("missing field " ^ name)))
    | _ -> raise (Parse_error ("not an object at field " ^ name))

  let str = function
    | Str s -> s
    | _ -> raise (Parse_error "expected string")

  let num = function
    | Num f -> f
    | Null -> Float.nan  (* the NaN→null serialization convention *)
    | _ -> raise (Parse_error "expected number")

  let boolean = function
    | Bool b -> b
    | _ -> raise (Parse_error "expected bool")

  let arr = function
    | Arr l -> l
    | _ -> raise (Parse_error "expected array")
end

(* ------------------------------------------------------------------ *)
(* Snapshot model                                                       *)
(* ------------------------------------------------------------------ *)

type export_row = {
  x_name : string;
  x_req : int;  (** cumulative requests dispatched to this export *)
  x_err : int;  (** cumulative failures *)
  x_p50 : float;  (** rolling percentiles over the retained windows *)
  x_p99 : float;
  x_p999 : float;
  x_mean : float;  (** rolling mean latency, cycles *)
  x_ipr : float;  (** rolling insns per ok request *)
  x_burn_fast : float;  (** current fast/slow latency burn rates *)
  x_burn_slow : float;
  x_alerting : bool;  (** both burn rates ≥ 1.0 right now *)
}

type slot_row = {
  sl_slot : int;
  sl_pid : int;
  sl_alive : bool;
  sl_calls : int;
  sl_resets : int;
  sl_insns : int;
  sl_restored : int;
}

type tenant_row = {
  tn_name : string;
  tn_depth : int;  (** queued requests right now *)
  tn_depth_max : int;
  tn_admitted : int;
  tn_completed : int;
  tn_failed : int;
  tn_shed_queue : int;  (** rejected: queue at bound *)
  tn_shed_quota : int;  (** rejected: token bucket empty *)
  tn_quota_util : float;  (** share of quota spent; NaN = no quota *)
  tn_steals : int;  (** requests served on another shard's instance *)
  tn_p99 : float;  (** full-run p99 latency, cycles *)
}

type t = {
  workload : string;
  seq : int;  (** requests dispatched when the frame was taken *)
  now : float;  (** cycles since serving started *)
  completed : int;
  failed : int;
  retired : int;
  window_cycles : float;
  windows : int;  (** windows spanned so far *)
  exports : export_row list;
  slots : slot_row list;
  tenants : tenant_row list;  (** empty on parsed v1 frames *)
  phases : (string * float) list;  (** cumulative cycles per span phase *)
  alerts : Lfi_telemetry.Slo.alert list;
}

let json_float (v : float) : string =
  if Float.is_nan v then "null" else Printf.sprintf "%.1f" v

(** One frame as a single JSON line (no trailing newline). *)
let to_json (t : t) : string =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"schema\": \"lfi-snap/v2\", \"workload\": %S, \"seq\": %d, " t.workload
    t.seq;
  add "\"now\": %.1f, \"completed\": %d, \"failed\": %d, \"instances_lost\": %d, "
    t.now t.completed t.failed t.retired;
  add "\"window_cycles\": %.0f, \"windows\": %d, " t.window_cycles t.windows;
  add "\"exports\": [";
  List.iteri
    (fun i x ->
      if i > 0 then add ", ";
      add
        "{\"name\": %S, \"requests\": %d, \"errors\": %d, \"p50\": %s, \
         \"p99\": %s, \"p999\": %s, \"mean\": %s, \"insns_per_request\": %s, \
         \"burn_fast\": %.2f, \"burn_slow\": %.2f, \"alerting\": %b}"
        x.x_name x.x_req x.x_err (json_float x.x_p50) (json_float x.x_p99)
        (json_float x.x_p999) (json_float x.x_mean) (json_float x.x_ipr)
        x.x_burn_fast x.x_burn_slow x.x_alerting)
    t.exports;
  add "], \"slots\": [";
  List.iteri
    (fun i s ->
      if i > 0 then add ", ";
      add
        "{\"slot\": %d, \"pid\": %d, \"alive\": %b, \"calls\": %d, \
         \"resets\": %d, \"insns\": %d, \"pages_restored\": %d}"
        s.sl_slot s.sl_pid s.sl_alive s.sl_calls s.sl_resets s.sl_insns
        s.sl_restored)
    t.slots;
  add "], \"tenants\": [";
  List.iteri
    (fun i tn ->
      if i > 0 then add ", ";
      add
        "{\"tenant\": %S, \"depth\": %d, \"depth_max\": %d, \"admitted\": %d, \
         \"completed\": %d, \"failed\": %d, \"shed_queue\": %d, \
         \"shed_quota\": %d, \"quota_utilization\": %s, \"steals\": %d, \
         \"p99\": %s}"
        tn.tn_name tn.tn_depth tn.tn_depth_max tn.tn_admitted tn.tn_completed
        tn.tn_failed tn.tn_shed_queue tn.tn_shed_quota
        (if Float.is_nan tn.tn_quota_util then "null"
         else Printf.sprintf "%.3f" tn.tn_quota_util)
        tn.tn_steals (json_float tn.tn_p99))
    t.tenants;
  add "], \"phases\": {";
  List.iteri
    (fun i (name, cycles) ->
      if i > 0 then add ", ";
      add "%S: %.1f" name cycles)
    t.phases;
  add "}, \"alerts\": [";
  List.iteri
    (fun i (a : Lfi_telemetry.Slo.alert) ->
      if i > 0 then add ", ";
      add
        "{\"export\": %S, \"window\": %d, \"kind\": %S, \"fast\": %.2f, \
         \"slow\": %.2f}"
        a.Lfi_telemetry.Slo.a_export a.Lfi_telemetry.Slo.a_window
        (Lfi_telemetry.Slo.kind_name a.Lfi_telemetry.Slo.a_kind)
        a.Lfi_telemetry.Slo.a_fast a.Lfi_telemetry.Slo.a_slow)
    t.alerts;
  add "]}";
  Buffer.contents b

exception Bad_snapshot of string

(** Parse one frame back.  Raises {!Bad_snapshot} on anything that is
    not an [lfi-snap/v1] or [lfi-snap/v2] line. *)
let of_json (line : string) : t =
  match Json.parse line with
  | exception Json.Parse_error msg -> raise (Bad_snapshot msg)
  | j -> (
      try
        let open Json in
        let schema = str (field j "schema") in
        if schema <> "lfi-snap/v1" && schema <> "lfi-snap/v2" then
          raise (Bad_snapshot "not an lfi-snap/v1 or /v2 frame");
        let int_of v = int_of_float (num v) in
        {
          workload = str (field j "workload");
          seq = int_of (field j "seq");
          now = num (field j "now");
          completed = int_of (field j "completed");
          failed = int_of (field j "failed");
          retired = int_of (field j "instances_lost");
          window_cycles = num (field j "window_cycles");
          windows = int_of (field j "windows");
          exports =
            List.map
              (fun x ->
                {
                  x_name = str (field x "name");
                  x_req = int_of (field x "requests");
                  x_err = int_of (field x "errors");
                  x_p50 = num (field x "p50");
                  x_p99 = num (field x "p99");
                  x_p999 = num (field x "p999");
                  x_mean = num (field x "mean");
                  x_ipr = num (field x "insns_per_request");
                  x_burn_fast = num (field x "burn_fast");
                  x_burn_slow = num (field x "burn_slow");
                  x_alerting = boolean (field x "alerting");
                })
              (arr (field j "exports"));
          slots =
            List.map
              (fun s ->
                {
                  sl_slot = int_of (field s "slot");
                  sl_pid = int_of (field s "pid");
                  sl_alive = boolean (field s "alive");
                  sl_calls = int_of (field s "calls");
                  sl_resets = int_of (field s "resets");
                  sl_insns = int_of (field s "insns");
                  sl_restored = int_of (field s "pages_restored");
                })
              (arr (field j "slots"));
          tenants =
            (if schema = "lfi-snap/v1" then []
             else
               List.map
                 (fun tn ->
                   {
                     tn_name = str (field tn "tenant");
                     tn_depth = int_of (field tn "depth");
                     tn_depth_max = int_of (field tn "depth_max");
                     tn_admitted = int_of (field tn "admitted");
                     tn_completed = int_of (field tn "completed");
                     tn_failed = int_of (field tn "failed");
                     tn_shed_queue = int_of (field tn "shed_queue");
                     tn_shed_quota = int_of (field tn "shed_quota");
                     tn_quota_util = num (field tn "quota_utilization");
                     tn_steals = int_of (field tn "steals");
                     tn_p99 = num (field tn "p99");
                   })
                 (arr (field j "tenants")));
          phases =
            (match field j "phases" with
            | Obj kvs -> List.map (fun (k, v) -> (k, num v)) kvs
            | _ -> raise (Bad_snapshot "phases not an object"));
          alerts =
            List.map
              (fun a ->
                {
                  Lfi_telemetry.Slo.a_export = str (field a "export");
                  a_window = int_of (field a "window");
                  a_kind =
                    (match str (field a "kind") with
                    | "latency" -> Lfi_telemetry.Slo.Latency
                    | "error_rate" -> Lfi_telemetry.Slo.Error_rate
                    | k -> raise (Bad_snapshot ("unknown alert kind " ^ k)));
                  a_fast = num (field a "fast");
                  a_slow = num (field a "slow");
                })
              (arr (field j "alerts"));
        }
      with Json.Parse_error msg -> raise (Bad_snapshot msg))

(* ------------------------------------------------------------------ *)
(* lfi_top rendering                                                    *)
(* ------------------------------------------------------------------ *)

let fnum (v : float) : string =
  if Float.is_nan v then "-" else Printf.sprintf "%.0f" v

(** Lay one frame out as the `lfi_top` text view. *)
let render (t : t) : string =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let live = List.length (List.filter (fun s -> s.sl_alive) t.slots) in
  add "lfi_top · %s · request %d · %.0f cycles · pool %d/%d live\n" t.workload
    t.seq t.now live (List.length t.slots);
  add "windows: %.0f cycles each, %d spanned · ok %d · err %d · lost %d\n\n"
    t.window_cycles t.windows t.completed t.failed t.retired;
  add "%-12s %7s %5s %8s %8s %8s %8s %10s %11s %s\n" "EXPORT" "REQ" "ERR"
    "P50" "P99" "P999" "MEAN" "INSNS/REQ" "BURN(f/s)" "SLO";
  List.iter
    (fun x ->
      add "%-12s %7d %5d %8s %8s %8s %8s %10s %5.1f/%-5.1f %s\n" x.x_name
        x.x_req x.x_err (fnum x.x_p50) (fnum x.x_p99) (fnum x.x_p999)
        (fnum x.x_mean) (fnum x.x_ipr) x.x_burn_fast x.x_burn_slow
        (if x.x_alerting then "ALERT" else "ok"))
    t.exports;
  add "\n%-6s %5s %6s %7s %7s %12s %12s\n" "SLOT" "PID" "ALIVE" "CALLS"
    "RESETS" "INSNS" "PG.RESTORED";
  List.iter
    (fun s ->
      add "%-6d %5d %6s %7d %7d %12d %12d\n" s.sl_slot s.sl_pid
        (if s.sl_alive then "yes" else "DEAD")
        s.sl_calls s.sl_resets s.sl_insns s.sl_restored)
    t.slots;
  (match t.tenants with
  | [] -> ()
  | tenants ->
      add "\n%-10s %6s %6s %8s %8s %6s %7s %7s %7s %7s %8s\n" "TENANT" "DEPTH"
        "DMAX" "ADMIT" "DONE" "FAIL" "SHED.Q" "SHED.T" "QUOTA%" "STEALS" "P99";
      List.iter
        (fun tn ->
          add "%-10s %6d %6d %8d %8d %6d %7d %7d %7s %7d %8s\n" tn.tn_name
            tn.tn_depth tn.tn_depth_max tn.tn_admitted tn.tn_completed
            tn.tn_failed tn.tn_shed_queue tn.tn_shed_quota
            (if Float.is_nan tn.tn_quota_util then "-"
             else Printf.sprintf "%.0f%%" (100.0 *. tn.tn_quota_util))
            tn.tn_steals (fnum tn.tn_p99))
        tenants);
  let phase_total =
    List.fold_left (fun acc (_, c) -> acc +. c) 0.0 t.phases
  in
  add "\n%-12s %14s %6s\n" "PHASE" "CYCLES" "%";
  List.iter
    (fun (name, cycles) ->
      add "%-12s %14.0f %5.1f%%\n" name cycles
        (if phase_total > 0.0 then 100.0 *. cycles /. phase_total else 0.0))
    t.phases;
  (match t.alerts with
  | [] -> add "\nno SLO alerts\n"
  | alerts ->
      add "\nALERTS (%d):\n" (List.length alerts);
      List.iter
        (fun (a : Lfi_telemetry.Slo.alert) ->
          add "  window %3d  %-12s %-10s burn fast %.1f slow %.1f\n"
            a.Lfi_telemetry.Slo.a_window a.Lfi_telemetry.Slo.a_export
            (Lfi_telemetry.Slo.kind_name a.Lfi_telemetry.Slo.a_kind)
            a.Lfi_telemetry.Slo.a_fast a.Lfi_telemetry.Slo.a_slow)
        alerts);
  Buffer.contents b
