(** Multi-tenant request scheduler and the [lfi-serve/v3] report.

    [run] builds a library and a pool from a {!Api.lib_spec} and drives
    a seeded request stream through it under one of three arrival
    models ({!Lfi_sched.Arrival}): back-to-back [Replay] (the v2 shape,
    whose report fields are preserved byte for byte), open-loop seeded
    Poisson arrivals at an offered rate, and closed-loop fixed
    concurrency.  Everything in the report derives from the seed and
    the simulated machine — no wall clock, no hash-table iteration
    order — so the JSON is byte-identical across runs: the property
    `make serve-bench` commits to.

    v3 adds the scheduling layer between arrival and dispatch:

    - {b per-tenant queues} ({!Lfi_sched.Tenant}): each request is
      assigned a tenant (weighted pick from the stream's xorshift when
      there is more than one); admission refills the tenant's token
      bucket from the simulated clock and sheds deterministically on an
      empty bucket or a full queue — the reject path is counted, never
      silent;
    - {b weighted service}: tenants rotate through a {!Lfi_sched.Runq}
      (the same abstraction the runtime scheduler and {!Pool} run on)
      under deficit round-robin, so a heavy tenant gets its weight
      share and no more;
    - {b batching}: consecutive same-export requests of the chosen
      tenant are served as one batch on one instance, paying the
      dispatch-decision cost once;
    - {b shards + work stealing}: the pool's slots are partitioned into
      per-tenant home shards; a tenant whose shard has no live instance
      steals from the next shard around the ring (counted per request);
    - {b latency under load}: every request's end-to-end latency
      (arrival → completion, queue wait included) lands in full-run
      histograms — the p50/p99/p999 the paper's serving story is
      about — next to the v2 windows/SLO/span instrumentation, which
      now sees end-to-end latency too.

    Request latency is measured in simulated cycles; queue wait and
    the per-batch dispatch-decision cost (8 cycles, the runtime
    scheduler's bookkeeping charge) advance the clock only under the
    open- and closed-loop models, so replay throughput is untouched. *)

open Lfi_emulator
module H = Lfi_telemetry.Histogram
module Span = Lfi_telemetry.Span
module Window = Lfi_telemetry.Window
module Slo = Lfi_telemetry.Slo
module Trace = Lfi_telemetry.Trace
module Runq = Lfi_sched.Runq
module Tenant = Lfi_sched.Tenant
module Arrival = Lfi_sched.Arrival

type tenant_stat = {
  ts_name : string;
  ts_weight : int;
  ts_quota_rps : float;  (** 0 = no quota *)
  ts_queue_bound : int;
  ts_admitted : int;
  ts_completed : int;
  ts_failed : int;
  ts_shed_queue : int;
  ts_shed_quota : int;
  ts_depth_max : int;
  ts_depth_avg : float;
  ts_steals : int;
  ts_quota_util : float;  (** NaN = no quota *)
  ts_p50 : float;
  ts_p99 : float;
  ts_p999 : float;
}

type report = {
  json : string;
  completed : int;
  failed : int;
  shed : int;  (** requests rejected at admission (quota or queue bound) *)
  retired : int;  (** instances lost *)
  gate_p50 : float;
  gate_p99 : float;
  gate_mean : float;
  call_p50 : float;
  call_p99 : float;
  call_p999 : float;
  latency_p50 : float;  (** end-to-end (queue wait included), cycles *)
  latency_p99 : float;
  latency_p999 : float;
  insns_per_request : float;
  requests_per_sec : float;
  achieved_rps : float;  (** served / simulated duration *)
  duration_cycles : float;
  steals : int;
  batches : int;
  tenants : tenant_stat list;
  alerts : Slo.alert list;  (** burn-rate alerts, in firing order *)
  snapshots : string list;  (** lfi-snap/v2 frames, in emission order *)
  summary : string;
      (** condensed one-object JSON of the run, for suite embedding *)
}

(** The serve layer's own trace process; the runtime's events stay on
    {!Lfi_runtime.Runtime.trace_pid} so the two views sit side by side
    in Perfetto. *)
let trace_pid = 2

(** Per-batch dispatch-decision charge under the open- and closed-loop
    models — the same price the runtime scheduler pays per context
    switch ({!Lfi_runtime.Runtime.lfi_sched_bookkeeping}). *)
let dispatch_decision_cycles = 8.0

(* xorshift64; the single source of randomness for the stream *)
let make_rng (seed : int) =
  let s = ref (Int64.of_int ((seed * 2654435761) lor 1)) in
  fun (bound : int) ->
    let x = !s in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    s := x;
    Int64.to_int (Int64.rem (Int64.logand x Int64.max_int) (Int64.of_int bound))

let pick_export (rng : int -> int) (exports : Api.export_spec list) :
    Api.export_spec =
  match exports with
  | [] -> invalid_arg "Serve.run: no weighted exports in the stream"
  | _ ->
      let total = List.fold_left (fun a e -> a + e.Api.e_weight) 0 exports in
      let n = rng total in
      let rec go acc = function
        | [ e ] -> e
        | e :: tl ->
            let acc = acc + e.Api.e_weight in
            if n < acc then e else go acc tl
        | [] -> assert false
      in
      go 0 exports

let json_float = Snapshot.json_float

(* burn rates of an export's window range, for the snapshot view: the
   worse of the latency and error dimensions *)
let range_burn (ob : Slo.objective option) (r : Window.rstats) : float =
  match ob with
  | None -> 0.0
  | Some ob ->
      Float.max
        (Slo.burn ~bad:r.Window.r_over ~total:r.Window.r_ok
           ~budget:ob.Slo.latency_budget)
        (Slo.burn ~bad:r.Window.r_err
           ~total:(r.Window.r_ok + r.Window.r_err)
           ~budget:ob.Slo.error_budget)

(** One admitted request waiting in a tenant queue. *)
type pending = {
  pr_export : Api.export_spec;
  pr_args : Api.arg list;
  pr_arrival : float;  (** simulated-cycle arrival timestamp *)
  pr_tenant : int;
  pr_client : int;  (** closed-loop client id; -1 otherwise *)
}

let run ?(uarch = Cost_model.m1) ?(config = Lfi_core.Config.o2)
    ?(filter : string list = []) ?(window_cycles = 50_000.0)
    ?(window_depth = 128) ?(trace : Trace.t option) ?(snapshot_every = 0)
    ?(arrival = Arrival.Replay)
    ?(tenants : Tenant.spec list = [ Tenant.default_spec ])
    ?(batch_max = 8) ~(spec : Api.lib_spec) ~(pool : int) ~(requests : int)
    ~(seed : int) () : report =
  if batch_max < 1 then invalid_arg "Serve.run: batch_max < 1";
  if tenants = [] then invalid_arg "Serve.run: no tenants";
  List.iter
    (fun (t : Tenant.spec) ->
      if t.Tenant.t_weight < 1 then
        invalid_arg "Serve.run: tenant weight < 1")
    tenants;
  let lib =
    let exports =
      List.map (fun e -> e.Api.e_name) spec.Api.l_exports
      @ match spec.Api.l_init with None -> [] | Some n -> [ n ]
    in
    Library.create ~config ~name:spec.Api.l_short ~exports spec.Api.l_program
  in
  let rt =
    Lfi_runtime.Runtime.create
      ~config:
        { Lfi_runtime.Runtime.default_config with verify = false; uarch }
      ()
  in
  (match trace with
  | None -> ()
  | Some t ->
      Trace.process_name t ~pid:Lfi_runtime.Runtime.trace_pid
        ~name:"lfi-runtime";
      rt.Lfi_runtime.Runtime.trace <- Some t);
  let p =
    Pool.create ~runtime:rt ~arena:spec.Api.l_arena ?init:spec.Api.l_init
      ~size:pool lib
  in
  (match trace with
  | None -> ()
  | Some t ->
      Trace.process_name t ~pid:trace_pid ~name:"lfi-serve";
      Trace.thread_name t ~pid:trace_pid ~tid:0 ~name:"slo";
      Array.iter
        (fun inst ->
          let slot = inst.Instance.p.Lfi_runtime.Proc.slot in
          Trace.thread_name t ~pid:trace_pid ~tid:slot
            ~name:(Printf.sprintf "slot %d" slot))
        p.Pool.instances);
  (* the request stream: weighted exports, optionally narrowed to
     --filter names (spec order is preserved, so the stream stays a
     pure function of seed + filter) *)
  let stream_exports =
    List.filter
      (fun e ->
        e.Api.e_weight > 0
        && (filter = [] || List.mem e.Api.e_name filter))
      spec.Api.l_exports
  in
  if stream_exports = [] then
    invalid_arg "Serve.run: no weighted exports in the stream";
  let machine = rt.Lfi_runtime.Runtime.machine in
  let clock_hz = uarch.Cost_model.clock_ghz *. 1e9 in
  (* window 0 opens when serving starts, after pool warm-up *)
  let origin = Machine.cycles machine in
  let slo_of name =
    List.find_opt (fun s -> s.Api.s_export = name) spec.Api.l_slos
    |> Option.map (fun s -> s.Api.s_objective)
  in
  let export_state =
    List.map
      (fun e ->
        ( e.Api.e_name,
          Window.create ~depth:window_depth ~origin ~width:window_cycles (),
          slo_of e.Api.e_name ))
      stream_exports
  in
  let overall =
    Window.create ~depth:window_depth ~origin ~width:window_cycles ()
  in
  (* ---------------- tenants, shards, tenant run queue -------------- *)
  let tenant_specs = Array.of_list tenants in
  let ntenants = Array.length tenant_specs in
  let tns : pending Tenant.t array =
    Array.map (Tenant.create ~clock_hz) tenant_specs
  in
  (* home shards: slot i belongs to tenant (i mod ntenants); with one
     tenant the shard IS the pool in creation order, so replay keeps
     the v2 rotation exactly *)
  let shards = Array.init ntenants (fun _ -> Runq.create ()) in
  Array.iteri
    (fun i _ -> Runq.push shards.(i mod ntenants) i)
    p.Pool.instances;
  let tq = Runq.create ~capacity:ntenants () in
  Array.iteri (fun t _ -> Runq.push tq t) tns;
  (* full-run end-to-end latency (the v3 headline numbers); windows
     above keep the v2 rolling view *)
  let lat_overall = H.create () in
  let lat_tenant = Array.init ntenants (fun _ -> H.create ()) in
  let phase_tot = Array.make Span.nphases 0.0 in
  let alerts = ref [] and last_eval = ref (-1) in
  let cursors : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let snapshots = ref [] in
  let rng = make_rng seed in
  let serve_cycles = ref 0.0 and serve_insns = ref 0 in
  let steals_total = ref 0 and batches = ref 0 and batched_reqs = ref 0 in
  let served_count = ref 0 in
  (* evaluate SLOs over every window that closed before [gcur] *)
  let eval_closed gcur =
    for s = !last_eval + 1 to gcur - 1 do
      List.iter
        (fun (name, w, slo) ->
          match slo with
          | None -> ()
          | Some ob ->
              let f = Window.range w ~lo:s ~hi:s in
              let sl = Window.range w ~lo:(s - 9) ~hi:s in
              List.iter
                (fun (kind, fast, slow) ->
                  alerts :=
                    { Slo.a_export = name; a_window = s; a_kind = kind;
                      a_fast = fast; a_slow = slow }
                    :: !alerts;
                  match trace with
                  | None -> ()
                  | Some t ->
                      Trace.instant t ~name:("slo:" ^ name) ~cat:"slo"
                        ~ts:(origin +. (float_of_int (s + 1) *. window_cycles))
                        ~pid:trace_pid ~tid:0
                        ~args:
                          [ ("kind", Trace.Str (Slo.kind_name kind));
                            ("window", Trace.Int s);
                            ("fast", Trace.Float fast);
                            ("slow", Trace.Float slow) ])
                (Slo.check ob
                   ~fast:(f.Window.r_over, f.Window.r_err, f.Window.r_ok)
                   ~slow:(sl.Window.r_over, sl.Window.r_err, sl.Window.r_ok)))
        export_state
    done;
    if gcur - 1 > !last_eval then last_eval := gcur - 1
  in
  let slot_rows () =
    Array.to_list
      (Array.map
         (fun inst ->
           {
             Snapshot.sl_slot = inst.Instance.p.Lfi_runtime.Proc.slot;
             sl_pid = inst.Instance.p.Lfi_runtime.Proc.pid;
             sl_alive = inst.Instance.alive;
             sl_calls = inst.Instance.calls;
             sl_resets = inst.Instance.resets;
             sl_insns = inst.Instance.call_insns;
             sl_restored = inst.Instance.pages_restored;
           })
         p.Pool.instances)
  in
  let export_rows () =
    List.map
      (fun (name, w, slo) ->
        let m = Window.merged w in
        let cur = Window.cur w in
        let r = Window.range w ~lo:0 ~hi:cur in
        let fast = range_burn slo (Window.range w ~lo:cur ~hi:cur) in
        let slow = range_burn slo (Window.range w ~lo:(cur - 9) ~hi:cur) in
        {
          Snapshot.x_name = name;
          x_req = Window.total_ok w + Window.total_err w;
          x_err = Window.total_err w;
          x_p50 = H.percentile m 0.50;
          x_p99 = H.percentile m 0.99;
          x_p999 = H.percentile m 0.999;
          x_mean = (if m.H.count = 0 then Float.nan else H.mean m);
          x_ipr =
            (if m.H.count = 0 then Float.nan
             else float_of_int r.Window.r_insns /. float_of_int m.H.count);
          x_burn_fast = fast;
          x_burn_slow = slow;
          x_alerting = fast >= 1.0 && slow >= 1.0;
        })
      export_state
  in
  let duration () = Machine.cycles machine -. origin in
  let tenant_rows () =
    Array.to_list
      (Array.mapi
         (fun t (tn : pending Tenant.t) ->
           {
             Snapshot.tn_name = tn.Tenant.spec.Tenant.t_name;
             tn_depth = Tenant.depth tn;
             tn_depth_max = tn.Tenant.depth_max;
             tn_admitted = tn.Tenant.admitted;
             tn_completed = tn.Tenant.completed;
             tn_failed = tn.Tenant.failed;
             tn_shed_queue = tn.Tenant.shed_queue;
             tn_shed_quota = tn.Tenant.shed_quota;
             tn_quota_util =
               Tenant.quota_utilization tn ~duration:(duration ());
             tn_steals = tn.Tenant.steals;
             tn_p99 = H.percentile lat_tenant.(t) 0.99;
           })
         tns)
  in
  let take_frame i =
    let frame =
      {
        Snapshot.workload = spec.Api.l_short;
        seq = i;
        now = Machine.cycles machine -. origin;
        completed = p.Pool.served;
        failed = p.Pool.failed;
        retired = Pool.retired p;
        window_cycles;
        windows = Window.spanned overall;
        exports = export_rows ();
        slots = slot_rows ();
        tenants = tenant_rows ();
        phases =
          List.map (fun ph -> (Span.name ph, phase_tot.(Span.index ph))) Span.all;
        alerts = List.rev !alerts;
      }
    in
    snapshots := Snapshot.to_json frame :: !snapshots
  in
  (* ---------------- request generation ----------------------------- *)
  let tenant_weight_total =
    Array.fold_left (fun a (s : Tenant.spec) -> a + s.Tenant.t_weight) 0
      tenant_specs
  in
  let pick_tenant () =
    if ntenants = 1 then 0
    else begin
      let n = rng tenant_weight_total in
      let rec go acc t =
        let acc = acc + tenant_specs.(t).Tenant.t_weight in
        if n < acc || t = ntenants - 1 then t else go acc (t + 1)
      in
      go 0 0
    end
  in
  (* tenant pick (when not pinned) draws before export pick, so the
     request stream stays a pure function of seed + tenant list *)
  let gen ?tenant ~(at : float) ~(client : int) () : pending =
    let t = match tenant with Some t -> t | None -> pick_tenant () in
    let e = pick_export rng stream_exports in
    let args = e.Api.e_gen ~rng in
    { pr_export = e; pr_args = args; pr_arrival = at; pr_tenant = t;
      pr_client = client }
  in
  (* ---------------- dispatch + accounting -------------------------- *)
  let replaying = arrival = Arrival.Replay in
  (* closed-loop clients re-issue on completion *)
  let issued = ref 0 in
  let on_complete : (pending -> unit) ref = ref (fun _ -> ()) in
  let record (req : pending) (inst : Instance.t option)
      (r : (Api.reply, Api.error) result) =
    let now = Machine.cycles machine in
    List.iter (fun (_, w, _) -> Window.advance w ~now) export_state;
    Window.advance overall ~now;
    let _, ew, slo =
      List.find (fun (n, _, _) -> n = req.pr_export.Api.e_name) export_state
    in
    let tn = tns.(req.pr_tenant) in
    (match r with
    | Ok reply ->
        let total = reply.Api.stats.Api.total_cycles in
        let insns = reply.Api.stats.Api.call_insns in
        serve_cycles := !serve_cycles +. total;
        serve_insns := !serve_insns + insns;
        (* end-to-end latency: queue wait + service; under replay the
           request arrived the instant it was served, so this is
           exactly the v2 number *)
        let latency = if replaying then total else now -. req.pr_arrival in
        let over =
          match slo with
          | Some ob -> latency > ob.Slo.latency_cycles
          | None -> false
        in
        Window.observe ew ~now ~latency ~insns ~over;
        Window.observe overall ~now ~latency ~insns ~over;
        H.observe lat_overall latency;
        H.observe lat_tenant.(req.pr_tenant) latency;
        tn.Tenant.completed <- tn.Tenant.completed + 1;
        (match inst with
        | None -> ()
        | Some inst ->
            Span.set inst.Instance.span Span.Queue (latency -. total);
            Span.accumulate inst.Instance.span phase_tot;
            (match trace with
            | None -> ()
            | Some t ->
                let sp = inst.Instance.span in
                let slot = inst.Instance.p.Lfi_runtime.Proc.slot in
                let cur0 =
                  Option.value ~default:origin (Hashtbl.find_opt cursors slot)
                in
                let start =
                  Float.max cur0
                    (sp.Span.t0 -. Span.get sp Span.Marshal_in
                   -. Span.get sp Span.Queue)
                in
                Hashtbl.replace cursors slot
                  (Span.emit sp t ~pid:trace_pid ~tid:slot ~ts:start)))
    | Error _ ->
        tn.Tenant.failed <- tn.Tenant.failed + 1;
        Window.fail ew ~now;
        Window.fail overall ~now);
    eval_closed (Window.cur overall);
    incr served_count;
    if
      snapshot_every > 0
      && !served_count mod snapshot_every = 0
      && !served_count < requests
    then take_frame !served_count;
    !on_complete req
  in
  (* pick an instance for tenant [t]: home shard first, then steal
     around the ring *)
  let keep i = p.Pool.instances.(i).Instance.alive in
  let always _ = true in
  let pick_instance t : (Instance.t * bool) option =
    let rec go k =
      if k >= ntenants then None
      else
        match Runq.select shards.((t + k) mod ntenants) ~keep ~runnable:always
        with
        | Some i -> Some (p.Pool.instances.(i), k > 0)
        | None -> go (k + 1)
    in
    go 0
  in
  let dispatch_one (req : pending) (inst : (Instance.t * bool) option) =
    match inst with
    | None -> record req None (Error Api.No_instances)
    | Some (inst, stolen) ->
        if stolen then begin
          let tn = tns.(req.pr_tenant) in
          tn.Tenant.steals <- tn.Tenant.steals + 1;
          incr steals_total
        end;
        record req (Some inst)
          (Pool.dispatch_on p inst req.pr_export.Api.e_name req.pr_args)
  in
  (* serve one DRR batch for tenant [t]: up to [min deficit batch_max]
     consecutive same-export requests on one instance, one dispatch
     decision for the whole batch *)
  let serve_batch t =
    let tn = tns.(t) in
    let w = tn.Tenant.spec.Tenant.t_weight in
    tn.Tenant.deficit <- min (tn.Tenant.deficit + w) (max batch_max w);
    let limit = min tn.Tenant.deficit batch_max in
    let ename =
      match Tenant.peek tn with
      | Some r -> r.pr_export.Api.e_name
      | None -> assert false
    in
    Machine.add_cycles machine dispatch_decision_cycles;
    let inst = ref (pick_instance t) in
    let served = ref 0 in
    let continue = ref true in
    while !continue && !served < limit do
      match Tenant.peek tn with
      | Some r when r.pr_export.Api.e_name = ename ->
          let req = Tenant.take tn in
          (match !inst with
          | Some (i, _) when i.Instance.alive -> ()
          | _ -> inst := pick_instance t (* re-pick: batch killed it *));
          dispatch_one req !inst;
          incr served
      | _ -> continue := false
    done;
    tn.Tenant.deficit <- tn.Tenant.deficit - !served;
    if Tenant.depth tn = 0 then tn.Tenant.deficit <- 0;
    incr batches;
    batched_reqs := !batched_reqs + !served
  in
  let next_tenant () =
    Runq.select tq ~keep:always ~runnable:(fun t -> Tenant.depth tns.(t) > 0)
  in
  (* ---------------- the three arrival models ----------------------- *)
  (match arrival with
  | Arrival.Replay ->
      (* v2 shape: each request arrives the instant the server is
         ready — no queueing, no decision charge, batch of one *)
      for _ = 1 to requests do
        let now = Machine.cycles machine in
        let req = gen ~at:now ~client:(-1) () in
        match Tenant.admit tns.(req.pr_tenant) ~now req with
        | Tenant.Admitted ->
            let req = Tenant.take tns.(req.pr_tenant) in
            dispatch_one req (pick_instance req.pr_tenant)
        | Tenant.Shed_queue | Tenant.Shed_quota -> ()
      done
  | Arrival.Open { rate_rps } ->
      if rate_rps <= 0.0 then invalid_arg "Serve.run: open-loop rate <= 0";
      let sample =
        Arrival.exp_stream ~seed ~mean_cycles:(clock_hz /. rate_rps)
      in
      let generated = ref 0 in
      let next_arrival = ref (origin +. sample ()) in
      let admit_due () =
        (* everything that arrived while the server was busy *)
        let now = Machine.cycles machine in
        while !generated < requests && !next_arrival <= now do
          let at = !next_arrival in
          let req = gen ~at ~client:(-1) () in
          incr generated;
          ignore (Tenant.admit tns.(req.pr_tenant) ~now:at req);
          next_arrival := at +. sample ()
        done
      in
      let rec loop () =
        admit_due ();
        match next_tenant () with
        | Some t ->
            serve_batch t;
            loop ()
        | None ->
            if !generated < requests then begin
              (* idle until the next arrival *)
              let now = Machine.cycles machine in
              if !next_arrival > now then
                Machine.add_cycles machine (!next_arrival -. now);
              loop ()
            end
      in
      loop ()
  | Arrival.Closed { concurrency } ->
      if concurrency < 1 then invalid_arg "Serve.run: concurrency < 1";
      (* [concurrency] clients, pinned round-robin to tenants; each
         re-issues the instant its previous request completes.  Closed
         loops self-limit, so admission control does not apply. *)
      let issue k at =
        let t = k mod ntenants in
        let req = gen ~tenant:t ~at ~client:k () in
        Tenant.enqueue tns.(t) req;
        incr issued
      in
      on_complete :=
        (fun req ->
          if req.pr_client >= 0 && !issued < requests then
            issue req.pr_client (Machine.cycles machine));
      for k = 0 to min concurrency requests - 1 do
        issue k origin
      done;
      let rec loop () =
        match next_tenant () with
        | Some t ->
            serve_batch t;
            loop ()
        | None -> ()
      in
      loop ());
  if snapshot_every > 0 then take_frame !served_count;
  let alerts = List.rev !alerts in
  let snapshots = List.rev !snapshots in
  let gate, call = Pool.merged_hists p in
  let completed = p.Pool.served and failed = p.Pool.failed in
  let retired = Pool.retired p in
  let shed = Array.fold_left (fun a tn -> a + Tenant.sheds tn) 0 tns in
  let insns_per_request =
    if completed = 0 then 0.0
    else float_of_int !serve_insns /. float_of_int completed
  in
  (* simulated wall-clock throughput: requests per second at the
     modeled clock, from the cycles spent serving *)
  let requests_per_sec =
    if !serve_cycles <= 0.0 then 0.0
    else
      float_of_int completed
      /. (!serve_cycles /. (uarch.Cost_model.clock_ghz *. 1e9))
  in
  let dur = duration () in
  let achieved_rps =
    if dur <= 0.0 then 0.0
    else float_of_int !served_count /. (dur /. clock_hz)
  in
  let tenant_stats =
    Array.to_list
      (Array.mapi
         (fun t (tn : pending Tenant.t) ->
           let s = tn.Tenant.spec in
           {
             ts_name = s.Tenant.t_name;
             ts_weight = s.Tenant.t_weight;
             ts_quota_rps = (if Tenant.has_quota tn then s.Tenant.t_quota_rps else 0.0);
             ts_queue_bound = s.Tenant.t_queue_bound;
             ts_admitted = tn.Tenant.admitted;
             ts_completed = tn.Tenant.completed;
             ts_failed = tn.Tenant.failed;
             ts_shed_queue = tn.Tenant.shed_queue;
             ts_shed_quota = tn.Tenant.shed_quota;
             ts_depth_max = tn.Tenant.depth_max;
             ts_depth_avg = Tenant.depth_avg tn;
             ts_steals = tn.Tenant.steals;
             ts_quota_util = Tenant.quota_utilization tn ~duration:dur;
             ts_p50 = H.percentile lat_tenant.(t) 0.50;
             ts_p99 = H.percentile lat_tenant.(t) 0.99;
             ts_p999 = H.percentile lat_tenant.(t) 0.999;
           })
         tns)
  in
  let lat_p50 = H.percentile lat_overall 0.50 in
  let lat_p99 = H.percentile lat_overall 0.99 in
  let lat_p999 = H.percentile lat_overall 0.999 in
  let lat_mean =
    if lat_overall.H.count = 0 then Float.nan else H.mean lat_overall
  in
  let arrival_model = Arrival.name arrival in
  let rate_str =
    match arrival with
    | Arrival.Open { rate_rps } -> Printf.sprintf "%.0f" rate_rps
    | _ -> "null"
  in
  let conc_str =
    match arrival with
    | Arrival.Closed { concurrency } -> string_of_int concurrency
    | _ -> "null"
  in
  let tenants_json inline =
    let b = Buffer.create 512 in
    let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    List.iteri
      (fun i ts ->
        if i > 0 then add (if inline then ", " else ",\n    ");
        add
          "{\"tenant\": %S, \"weight\": %d, \"quota_rps\": %s, \
           \"queue_bound\": %d, \"admitted\": %d, \"completed\": %d, \
           \"failed\": %d, \"shed_queue\": %d, \"shed_quota\": %d, \
           \"quota_utilization\": %s, \"depth_max\": %d, \"depth_avg\": \
           %.1f, \"steals\": %d, \"p50\": %s, \"p99\": %s, \"p999\": %s}"
          ts.ts_name ts.ts_weight
          (if ts.ts_quota_rps > 0.0 then Printf.sprintf "%.0f" ts.ts_quota_rps
           else "null")
          ts.ts_queue_bound ts.ts_admitted ts.ts_completed ts.ts_failed
          ts.ts_shed_queue ts.ts_shed_quota
          (if Float.is_nan ts.ts_quota_util then "null"
           else Printf.sprintf "%.3f" ts.ts_quota_util)
          ts.ts_depth_max ts.ts_depth_avg ts.ts_steals (json_float ts.ts_p50)
          (json_float ts.ts_p99) (json_float ts.ts_p999))
      tenant_stats;
    Buffer.contents b
  in
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"lfi-serve/v3\",\n";
  add "  \"workload\": %S,\n" spec.Api.l_short;
  add "  \"system\": %S,\n" (Lfi_core.Config.name config);
  add "  \"uarch\": %S,\n" uarch.Cost_model.name;
  add "  \"pool\": %d,\n" pool;
  add "  \"requests\": %d,\n" requests;
  add "  \"seed\": %d,\n" seed;
  (if filter <> [] then
     add "  \"filter\": [%s],\n"
       (String.concat ", " (List.map (Printf.sprintf "%S") filter)));
  add "  \"completed\": %d,\n" completed;
  add "  \"failed\": %d,\n" failed;
  add "  \"instances_lost\": %d,\n" retired;
  add "  \"serve_cycles\": %.1f,\n" !serve_cycles;
  add "  \"serve_insns\": %d,\n" !serve_insns;
  add "  \"insns_per_request\": %.1f,\n" insns_per_request;
  add "  \"requests_per_sec\": %.0f,\n" requests_per_sec;
  add "  \"transition_cycles\": %s,\n" (H.to_json gate);
  add "  \"transition_p50\": %s,\n" (json_float (H.percentile gate 0.50));
  add "  \"transition_p99\": %s,\n" (json_float (H.percentile gate 0.99));
  add "  \"call_cycles\": %s,\n" (H.to_json call);
  add "  \"call_p50\": %s,\n" (json_float (H.percentile call 0.50));
  add "  \"call_p99\": %s,\n" (json_float (H.percentile call 0.99));
  add "  \"call_p999\": %s,\n" (json_float (H.percentile call 0.999));
  (* the per-request phase breakdown: where a request's cycles go
     across the boundary (marshal_in is host-side work the simulated
     clock does not advance through; queue wait advances it only under
     the open/closed arrival models) *)
  add "  \"phases\": {";
  List.iteri
    (fun i ph ->
      if i > 0 then add ", ";
      add "%S: %.1f" (Span.name ph) phase_tot.(Span.index ph))
    Span.all;
  add "},\n";
  (* rolling (windowed) view: what lfi_top shows live *)
  add "  \"windows\": {\"window_cycles\": %.0f, \"spanned\": %d, \"evicted\": \
       %d,\n"
    window_cycles (Window.spanned overall) (Window.evicted overall);
  let om = Window.merged overall in
  add "    \"overall\": {\"p50\": %s, \"p99\": %s, \"p999\": %s, \"mean\": \
       %s},\n"
    (json_float (H.percentile om 0.50))
    (json_float (H.percentile om 0.99))
    (json_float (H.percentile om 0.999))
    (json_float (if om.H.count = 0 then Float.nan else H.mean om));
  add "    \"per_export\": [";
  List.iteri
    (fun i (x : Snapshot.export_row) ->
      if i > 0 then add ", ";
      add
        "{\"export\": %S, \"requests\": %d, \"errors\": %d, \"p50\": %s, \
         \"p99\": %s, \"p999\": %s, \"mean\": %s, \"insns_per_request\": %s}"
        x.Snapshot.x_name x.Snapshot.x_req x.Snapshot.x_err
        (json_float x.Snapshot.x_p50) (json_float x.Snapshot.x_p99)
        (json_float x.Snapshot.x_p999) (json_float x.Snapshot.x_mean)
        (json_float x.Snapshot.x_ipr))
    (export_rows ());
  add "]},\n";
  add "  \"slo\": {\"objectives\": [";
  List.iteri
    (fun i s ->
      if i > 0 then add ", ";
      add
        "{\"export\": %S, \"latency_cycles\": %.0f, \"latency_budget\": %.3f, \
         \"error_budget\": %.3f}"
        s.Api.s_export s.Api.s_objective.Slo.latency_cycles
        s.Api.s_objective.Slo.latency_budget s.Api.s_objective.Slo.error_budget)
    spec.Api.l_slos;
  add "], \"alerts\": [";
  List.iteri
    (fun i (a : Slo.alert) ->
      if i > 0 then add ", ";
      add
        "{\"export\": %S, \"window\": %d, \"kind\": %S, \"fast\": %.2f, \
         \"slow\": %.2f}"
        a.Slo.a_export a.Slo.a_window (Slo.kind_name a.Slo.a_kind)
        a.Slo.a_fast a.Slo.a_slow)
    alerts;
  add "]},\n";
  (* v3: arrival model, end-to-end latency, and the scheduling layer *)
  add
    "  \"arrival\": {\"model\": %S, \"rate_rps\": %s, \"concurrency\": %s, \
     \"offered\": %d, \"served\": %d, \"shed\": %d, \"duration_cycles\": \
     %.1f, \"achieved_rps\": %.0f,\n"
    arrival_model rate_str conc_str requests !served_count shed dur
    achieved_rps;
  add
    "    \"latency\": {\"p50\": %s, \"p99\": %s, \"p999\": %s, \"mean\": \
     %s}},\n"
    (json_float lat_p50) (json_float lat_p99) (json_float lat_p999)
    (json_float lat_mean);
  add "  \"tenants\": [%s],\n" (tenants_json false);
  add
    "  \"sched\": {\"batch_max\": %d, \"batches\": %d, \"batched_requests\": \
     %d, \"dispatch_decision_cycles\": %s, \"steals\": %d},\n"
    batch_max !batches !batched_reqs
    (if replaying then "0.0"
     else Printf.sprintf "%.1f" dispatch_decision_cycles)
    !steals_total;
  (* the §5.3 comparison: what the same boundary crossing costs under
     process isolation (gvisor is unmeasured/NaN on some uarches →
     null) *)
  add "  \"baselines\": {\"lfi_transition_mean\": %s, \
       \"linux_pipe_roundtrip\": %s, \"gvisor_pipe_roundtrip\": %s},\n"
    (json_float (H.mean gate))
    (json_float uarch.Cost_model.linux_pipe_roundtrip)
    (json_float uarch.Cost_model.gvisor_pipe_roundtrip);
  add "  \"per_slot\": [";
  Array.iteri
    (fun i inst ->
      if i > 0 then add ", ";
      add
        "{\"slot\": %d, \"pid\": %d, \"alive\": %b, \"calls\": %d, \
         \"resets\": %d, \"insns\": %d, \"pages_restored\": %d}"
        inst.Instance.p.Lfi_runtime.Proc.slot inst.Instance.p.Lfi_runtime.Proc.pid
        inst.Instance.alive inst.Instance.calls inst.Instance.resets
        inst.Instance.call_insns inst.Instance.pages_restored)
    p.Pool.instances;
  add "],\n";
  add "  \"per_export\": {";
  List.iteri
    (fun i (name, w, _) ->
      if i > 0 then add ", ";
      add "%S: %d" name (Window.total_ok w + Window.total_err w))
    export_state;
  add "}\n";
  add "}\n";
  (* condensed one-object view of the same run, for suite embedding *)
  let summary =
    Printf.sprintf
      "{\"uarch\": %S, \"pool\": %d, \"tenant_count\": %d, \"requests\": %d, \
       \"seed\": %d, \"model\": %S, \"rate_rps\": %s, \"concurrency\": %s, \
       \"completed\": %d, \"failed\": %d, \"shed\": %d, \"duration_cycles\": \
       %.1f, \"achieved_rps\": %.0f, \"p50\": %s, \"p99\": %s, \"p999\": %s, \
       \"mean\": %s, \"steals\": %d, \"batches\": %d, \"per_tenant\": [%s]}"
      uarch.Cost_model.name pool ntenants requests seed arrival_model rate_str
      conc_str completed failed shed dur achieved_rps (json_float lat_p50)
      (json_float lat_p99) (json_float lat_p999) (json_float lat_mean)
      !steals_total !batches (tenants_json true)
  in
  {
    json = Buffer.contents b;
    completed;
    failed;
    shed;
    retired;
    gate_p50 = H.percentile gate 0.50;
    gate_p99 = H.percentile gate 0.99;
    gate_mean = H.mean gate;
    call_p50 = H.percentile call 0.50;
    call_p99 = H.percentile call 0.99;
    call_p999 = H.percentile call 0.999;
    latency_p50 = lat_p50;
    latency_p99 = lat_p99;
    latency_p999 = lat_p999;
    insns_per_request;
    requests_per_sec;
    achieved_rps;
    duration_cycles = dur;
    steals = !steals_total;
    batches = !batches;
    tenants = tenant_stats;
    alerts;
    snapshots;
    summary;
  }

(* ------------------------------------------------------------------ *)
(* The committed bench suite                                           *)
(* ------------------------------------------------------------------ *)

(** Parameters of the committed `BENCH_serve.json` scale runs, shared
    between `lfi_serve --suite` (which writes the file) and
    `bench --compare` (which re-runs the closed-loop point to gate
    p999 regressions).  The anchor replay run keeps its own CLI
    parameters in the Makefile. *)
module Suite = struct
  let pool = 256
  let requests = 3000
  let concurrency = 64
  let open_rate = 800_000.0
  let batch_max = 8

  (** Four xzbox tenants: a free-for-all heavyweight and three quota
      classes.  At the open-loop rate the bronze tenant's weighted
      arrival share (1/10 of 800k) exceeds its 60k quota, so the
      deterministic quota shed path is exercised in the committed
      numbers. *)
  let tenants =
    [
      { Tenant.t_name = "free0"; t_weight = 4; t_queue_bound = 256;
        t_quota_rps = 0.0; t_burst = 1.0 };
      { Tenant.t_name = "gold1"; t_weight = 3; t_queue_bound = 128;
        t_quota_rps = 320_000.0; t_burst = 32.0 };
      { Tenant.t_name = "silver2"; t_weight = 2; t_queue_bound = 64;
        t_quota_rps = 180_000.0; t_burst = 16.0 };
      { Tenant.t_name = "bronze3"; t_weight = 1; t_queue_bound = 32;
        t_quota_rps = 60_000.0; t_burst = 8.0 };
    ]

  let knee_pool = 64
  let knee_requests = 900

  let knee_rates =
    [ 600_000.0; 800_000.0; 1_000_000.0; 1_100_000.0; 1_300_000.0;
      1_600_000.0 ]

  (** A swept rate is sustainable while its overall p999 stays within
      4x the lowest swept rate's p999 and no tenant shed on queue
      bound; the knee is the largest sustainable rate. *)
  let sustainable ~(base_p999 : float) (r : report) =
    r.latency_p999 <= 4.0 *. base_p999
    && List.for_all (fun ts -> ts.ts_shed_queue = 0) r.tenants
end
