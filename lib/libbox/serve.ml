(** Deterministic request-stream dispatcher and the [lfi-serve/v2]
    report.

    [run] builds a library and a pool from a {!Api.lib_spec}, replays a
    seeded request stream across the pool (weighted export pick +
    argument generation, all drawn from one xorshift64 stream), and
    reports throughput and transition costs.  Everything in the report
    derives from the seed and the simulated machine — no wall clock, no
    hash-table iteration order — so the JSON is byte-identical across
    runs: the property `make serve-bench` commits to.

    v2 adds the serving observability layer, all of it always-on and
    off the cycle-accounted path (instrumentation reads the simulated
    clock, never advances it, so v1's throughput numbers are unchanged
    to the byte):

    - {b spans}: every request's phase breakdown (queue wait, arena
      marshal-in, gate entry, sandboxed execution, gate exit,
      marshal-out) from the instance's allocation-free
      {!Lfi_telemetry.Span} record, summed into the report and — when
      a trace is attached — emitted as one Perfetto track per pool
      slot with one slice per phase;
    - {b windows}: rolling p50/p99/p999 latency and insns/request per
      export and overall, from {!Lfi_telemetry.Window} rings of log2
      histograms;
    - {b SLOs}: per-export objectives from the workload spec evaluated
      at every window close with fast (1-window) + slow (10-window)
      burn rates ({!Lfi_telemetry.Slo}), alerts landing in the trace,
      the report, and the snapshots;
    - {b snapshots}: byte-stable [lfi-snap/v1] frames every
      [snapshot_every] requests, the input to `lfi_top`. *)

open Lfi_emulator
module H = Lfi_telemetry.Histogram
module Span = Lfi_telemetry.Span
module Window = Lfi_telemetry.Window
module Slo = Lfi_telemetry.Slo
module Trace = Lfi_telemetry.Trace

type report = {
  json : string;
  completed : int;
  failed : int;
  retired : int;  (** instances lost *)
  gate_p50 : float;
  gate_p99 : float;
  gate_mean : float;
  call_p50 : float;
  call_p99 : float;
  call_p999 : float;
  insns_per_request : float;
  requests_per_sec : float;
  alerts : Slo.alert list;  (** burn-rate alerts, in firing order *)
  snapshots : string list;  (** lfi-snap/v1 frames, in emission order *)
}

(** The serve layer's own trace process; the runtime's events stay on
    {!Lfi_runtime.Runtime.trace_pid} so the two views sit side by side
    in Perfetto. *)
let trace_pid = 2

(* xorshift64; the single source of randomness for the stream *)
let make_rng (seed : int) =
  let s = ref (Int64.of_int ((seed * 2654435761) lor 1)) in
  fun (bound : int) ->
    let x = !s in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    s := x;
    Int64.to_int (Int64.rem (Int64.logand x Int64.max_int) (Int64.of_int bound))

let pick_export (rng : int -> int) (exports : Api.export_spec list) :
    Api.export_spec =
  match exports with
  | [] -> invalid_arg "Serve.run: no weighted exports in the stream"
  | _ ->
      let total = List.fold_left (fun a e -> a + e.Api.e_weight) 0 exports in
      let n = rng total in
      let rec go acc = function
        | [ e ] -> e
        | e :: tl ->
            let acc = acc + e.Api.e_weight in
            if n < acc then e else go acc tl
        | [] -> assert false
      in
      go 0 exports

let json_float = Snapshot.json_float

(* burn rates of an export's window range, for the snapshot view: the
   worse of the latency and error dimensions *)
let range_burn (ob : Slo.objective option) (r : Window.rstats) : float =
  match ob with
  | None -> 0.0
  | Some ob ->
      Float.max
        (Slo.burn ~bad:r.Window.r_over ~total:r.Window.r_ok
           ~budget:ob.Slo.latency_budget)
        (Slo.burn ~bad:r.Window.r_err
           ~total:(r.Window.r_ok + r.Window.r_err)
           ~budget:ob.Slo.error_budget)

let run ?(uarch = Cost_model.m1) ?(config = Lfi_core.Config.o2)
    ?(filter : string list = []) ?(window_cycles = 50_000.0)
    ?(window_depth = 128) ?(trace : Trace.t option) ?(snapshot_every = 0)
    ~(spec : Api.lib_spec) ~(pool : int) ~(requests : int) ~(seed : int) () :
    report =
  let lib =
    let exports =
      List.map (fun e -> e.Api.e_name) spec.Api.l_exports
      @ match spec.Api.l_init with None -> [] | Some n -> [ n ]
    in
    Library.create ~config ~name:spec.Api.l_short ~exports spec.Api.l_program
  in
  let rt =
    Lfi_runtime.Runtime.create
      ~config:
        { Lfi_runtime.Runtime.default_config with verify = false; uarch }
      ()
  in
  (match trace with
  | None -> ()
  | Some t ->
      Trace.process_name t ~pid:Lfi_runtime.Runtime.trace_pid
        ~name:"lfi-runtime";
      rt.Lfi_runtime.Runtime.trace <- Some t);
  let p =
    Pool.create ~runtime:rt ~arena:spec.Api.l_arena ?init:spec.Api.l_init
      ~size:pool lib
  in
  (match trace with
  | None -> ()
  | Some t ->
      Trace.process_name t ~pid:trace_pid ~name:"lfi-serve";
      Trace.thread_name t ~pid:trace_pid ~tid:0 ~name:"slo";
      Array.iter
        (fun inst ->
          let slot = inst.Instance.p.Lfi_runtime.Proc.slot in
          Trace.thread_name t ~pid:trace_pid ~tid:slot
            ~name:(Printf.sprintf "slot %d" slot))
        p.Pool.instances);
  (* the request stream: weighted exports, optionally narrowed to
     --filter names (spec order is preserved, so the stream stays a
     pure function of seed + filter) *)
  let stream_exports =
    List.filter
      (fun e ->
        e.Api.e_weight > 0
        && (filter = [] || List.mem e.Api.e_name filter))
      spec.Api.l_exports
  in
  if stream_exports = [] then
    invalid_arg "Serve.run: no weighted exports in the stream";
  let machine = rt.Lfi_runtime.Runtime.machine in
  (* window 0 opens when serving starts, after pool warm-up *)
  let origin = Machine.cycles machine in
  let slo_of name =
    List.find_opt (fun s -> s.Api.s_export = name) spec.Api.l_slos
    |> Option.map (fun s -> s.Api.s_objective)
  in
  let export_state =
    List.map
      (fun e ->
        ( e.Api.e_name,
          Window.create ~depth:window_depth ~origin ~width:window_cycles (),
          slo_of e.Api.e_name ))
      stream_exports
  in
  let overall =
    Window.create ~depth:window_depth ~origin ~width:window_cycles ()
  in
  let phase_tot = Array.make Span.nphases 0.0 in
  let alerts = ref [] and last_eval = ref (-1) in
  let cursors : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let snapshots = ref [] in
  let rng = make_rng seed in
  let serve_cycles = ref 0.0 and serve_insns = ref 0 in
  (* evaluate SLOs over every window that closed before [gcur] *)
  let eval_closed gcur =
    for s = !last_eval + 1 to gcur - 1 do
      List.iter
        (fun (name, w, slo) ->
          match slo with
          | None -> ()
          | Some ob ->
              let f = Window.range w ~lo:s ~hi:s in
              let sl = Window.range w ~lo:(s - 9) ~hi:s in
              List.iter
                (fun (kind, fast, slow) ->
                  alerts :=
                    { Slo.a_export = name; a_window = s; a_kind = kind;
                      a_fast = fast; a_slow = slow }
                    :: !alerts;
                  match trace with
                  | None -> ()
                  | Some t ->
                      Trace.instant t ~name:("slo:" ^ name) ~cat:"slo"
                        ~ts:(origin +. (float_of_int (s + 1) *. window_cycles))
                        ~pid:trace_pid ~tid:0
                        ~args:
                          [ ("kind", Trace.Str (Slo.kind_name kind));
                            ("window", Trace.Int s);
                            ("fast", Trace.Float fast);
                            ("slow", Trace.Float slow) ])
                (Slo.check ob
                   ~fast:(f.Window.r_over, f.Window.r_err, f.Window.r_ok)
                   ~slow:(sl.Window.r_over, sl.Window.r_err, sl.Window.r_ok)))
        export_state
    done;
    if gcur - 1 > !last_eval then last_eval := gcur - 1
  in
  let slot_rows () =
    Array.to_list
      (Array.map
         (fun inst ->
           {
             Snapshot.sl_slot = inst.Instance.p.Lfi_runtime.Proc.slot;
             sl_pid = inst.Instance.p.Lfi_runtime.Proc.pid;
             sl_alive = inst.Instance.alive;
             sl_calls = inst.Instance.calls;
             sl_resets = inst.Instance.resets;
             sl_insns = inst.Instance.call_insns;
             sl_restored = inst.Instance.pages_restored;
           })
         p.Pool.instances)
  in
  let export_rows () =
    List.map
      (fun (name, w, slo) ->
        let m = Window.merged w in
        let cur = Window.cur w in
        let r = Window.range w ~lo:0 ~hi:cur in
        let fast = range_burn slo (Window.range w ~lo:cur ~hi:cur) in
        let slow = range_burn slo (Window.range w ~lo:(cur - 9) ~hi:cur) in
        {
          Snapshot.x_name = name;
          x_req = Window.total_ok w + Window.total_err w;
          x_err = Window.total_err w;
          x_p50 = H.percentile m 0.50;
          x_p99 = H.percentile m 0.99;
          x_p999 = H.percentile m 0.999;
          x_mean = (if m.H.count = 0 then Float.nan else H.mean m);
          x_ipr =
            (if m.H.count = 0 then Float.nan
             else float_of_int r.Window.r_insns /. float_of_int m.H.count);
          x_burn_fast = fast;
          x_burn_slow = slow;
          x_alerting = fast >= 1.0 && slow >= 1.0;
        })
      export_state
  in
  let take_frame i =
    let frame =
      {
        Snapshot.workload = spec.Api.l_short;
        seq = i;
        now = Machine.cycles machine -. origin;
        completed = p.Pool.served;
        failed = p.Pool.failed;
        retired = Pool.retired p;
        window_cycles;
        windows = Window.spanned overall;
        exports = export_rows ();
        slots = slot_rows ();
        phases =
          List.map (fun ph -> (Span.name ph, phase_tot.(Span.index ph))) Span.all;
        alerts = List.rev !alerts;
      }
    in
    snapshots := Snapshot.to_json frame :: !snapshots
  in
  for i = 1 to requests do
    let e = pick_export rng stream_exports in
    let args = e.Api.e_gen ~rng in
    let inst, r = Pool.dispatch p e.Api.e_name args in
    let now = Machine.cycles machine in
    List.iter (fun (_, w, _) -> Window.advance w ~now) export_state;
    Window.advance overall ~now;
    let name, ew, slo =
      List.find (fun (n, _, _) -> n = e.Api.e_name) export_state
    in
    ignore name;
    (match r with
    | Ok reply ->
        let total = reply.Api.stats.Api.total_cycles in
        let insns = reply.Api.stats.Api.call_insns in
        serve_cycles := !serve_cycles +. total;
        serve_insns := !serve_insns + insns;
        let over =
          match slo with
          | Some ob -> total > ob.Slo.latency_cycles
          | None -> false
        in
        Window.observe ew ~now ~latency:total ~insns ~over;
        Window.observe overall ~now ~latency:total ~insns ~over;
        (match inst with
        | None -> ()
        | Some inst ->
            Span.accumulate inst.Instance.span phase_tot;
            (match trace with
            | None -> ()
            | Some t ->
                let sp = inst.Instance.span in
                let slot = inst.Instance.p.Lfi_runtime.Proc.slot in
                let cur0 =
                  Option.value ~default:origin (Hashtbl.find_opt cursors slot)
                in
                let start =
                  Float.max cur0
                    (sp.Span.t0 -. Span.get sp Span.Marshal_in
                   -. Span.get sp Span.Queue)
                in
                Hashtbl.replace cursors slot
                  (Span.emit sp t ~pid:trace_pid ~tid:slot ~ts:start)))
    | Error _ ->
        Window.fail ew ~now;
        Window.fail overall ~now);
    eval_closed (Window.cur overall);
    if snapshot_every > 0 && i mod snapshot_every = 0 && i < requests then
      take_frame i
  done;
  if snapshot_every > 0 then take_frame requests;
  let alerts = List.rev !alerts in
  let snapshots = List.rev !snapshots in
  let gate, call = Pool.merged_hists p in
  let completed = p.Pool.served and failed = p.Pool.failed in
  let retired = Pool.retired p in
  let insns_per_request =
    if completed = 0 then 0.0
    else float_of_int !serve_insns /. float_of_int completed
  in
  (* simulated wall-clock throughput: requests per second at the
     modeled clock, from the cycles spent serving *)
  let requests_per_sec =
    if !serve_cycles <= 0.0 then 0.0
    else
      float_of_int completed
      /. (!serve_cycles /. (uarch.Cost_model.clock_ghz *. 1e9))
  in
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"lfi-serve/v2\",\n";
  add "  \"workload\": %S,\n" spec.Api.l_short;
  add "  \"system\": %S,\n" (Lfi_core.Config.name config);
  add "  \"uarch\": %S,\n" uarch.Cost_model.name;
  add "  \"pool\": %d,\n" pool;
  add "  \"requests\": %d,\n" requests;
  add "  \"seed\": %d,\n" seed;
  (if filter <> [] then
     add "  \"filter\": [%s],\n"
       (String.concat ", " (List.map (Printf.sprintf "%S") filter)));
  add "  \"completed\": %d,\n" completed;
  add "  \"failed\": %d,\n" failed;
  add "  \"instances_lost\": %d,\n" retired;
  add "  \"serve_cycles\": %.1f,\n" !serve_cycles;
  add "  \"serve_insns\": %d,\n" !serve_insns;
  add "  \"insns_per_request\": %.1f,\n" insns_per_request;
  add "  \"requests_per_sec\": %.0f,\n" requests_per_sec;
  add "  \"transition_cycles\": %s,\n" (H.to_json gate);
  add "  \"transition_p50\": %s,\n" (json_float (H.percentile gate 0.50));
  add "  \"transition_p99\": %s,\n" (json_float (H.percentile gate 0.99));
  add "  \"call_cycles\": %s,\n" (H.to_json call);
  add "  \"call_p50\": %s,\n" (json_float (H.percentile call 0.50));
  add "  \"call_p99\": %s,\n" (json_float (H.percentile call 0.99));
  add "  \"call_p999\": %s,\n" (json_float (H.percentile call 0.999));
  (* the per-request phase breakdown: where a request's cycles go
     across the boundary (queue/marshal_in are host-side work the
     simulated clock does not advance through; they are priced but not
     part of serve_cycles) *)
  add "  \"phases\": {";
  List.iteri
    (fun i ph ->
      if i > 0 then add ", ";
      add "%S: %.1f" (Span.name ph) phase_tot.(Span.index ph))
    Span.all;
  add "},\n";
  (* rolling (windowed) view: what lfi_top shows live *)
  add "  \"windows\": {\"window_cycles\": %.0f, \"spanned\": %d, \"evicted\": \
       %d,\n"
    window_cycles (Window.spanned overall) (Window.evicted overall);
  let om = Window.merged overall in
  add "    \"overall\": {\"p50\": %s, \"p99\": %s, \"p999\": %s, \"mean\": \
       %s},\n"
    (json_float (H.percentile om 0.50))
    (json_float (H.percentile om 0.99))
    (json_float (H.percentile om 0.999))
    (json_float (if om.H.count = 0 then Float.nan else H.mean om));
  add "    \"per_export\": [";
  List.iteri
    (fun i (x : Snapshot.export_row) ->
      if i > 0 then add ", ";
      add
        "{\"export\": %S, \"requests\": %d, \"errors\": %d, \"p50\": %s, \
         \"p99\": %s, \"p999\": %s, \"mean\": %s, \"insns_per_request\": %s}"
        x.Snapshot.x_name x.Snapshot.x_req x.Snapshot.x_err
        (json_float x.Snapshot.x_p50) (json_float x.Snapshot.x_p99)
        (json_float x.Snapshot.x_p999) (json_float x.Snapshot.x_mean)
        (json_float x.Snapshot.x_ipr))
    (export_rows ());
  add "]},\n";
  add "  \"slo\": {\"objectives\": [";
  List.iteri
    (fun i s ->
      if i > 0 then add ", ";
      add
        "{\"export\": %S, \"latency_cycles\": %.0f, \"latency_budget\": %.3f, \
         \"error_budget\": %.3f}"
        s.Api.s_export s.Api.s_objective.Slo.latency_cycles
        s.Api.s_objective.Slo.latency_budget s.Api.s_objective.Slo.error_budget)
    spec.Api.l_slos;
  add "], \"alerts\": [";
  List.iteri
    (fun i (a : Slo.alert) ->
      if i > 0 then add ", ";
      add
        "{\"export\": %S, \"window\": %d, \"kind\": %S, \"fast\": %.2f, \
         \"slow\": %.2f}"
        a.Slo.a_export a.Slo.a_window (Slo.kind_name a.Slo.a_kind)
        a.Slo.a_fast a.Slo.a_slow)
    alerts;
  add "]},\n";
  (* the §5.3 comparison: what the same boundary crossing costs under
     process isolation (gvisor is unmeasured/NaN on some uarches →
     null) *)
  add "  \"baselines\": {\"lfi_transition_mean\": %s, \
       \"linux_pipe_roundtrip\": %s, \"gvisor_pipe_roundtrip\": %s},\n"
    (json_float (H.mean gate))
    (json_float uarch.Cost_model.linux_pipe_roundtrip)
    (json_float uarch.Cost_model.gvisor_pipe_roundtrip);
  add "  \"per_slot\": [";
  Array.iteri
    (fun i inst ->
      if i > 0 then add ", ";
      add
        "{\"slot\": %d, \"pid\": %d, \"alive\": %b, \"calls\": %d, \
         \"resets\": %d, \"insns\": %d, \"pages_restored\": %d}"
        inst.Instance.p.Lfi_runtime.Proc.slot inst.Instance.p.Lfi_runtime.Proc.pid
        inst.Instance.alive inst.Instance.calls inst.Instance.resets
        inst.Instance.call_insns inst.Instance.pages_restored)
    p.Pool.instances;
  add "],\n";
  add "  \"per_export\": {";
  List.iteri
    (fun i (name, w, _) ->
      if i > 0 then add ", ";
      add "%S: %d" name (Window.total_ok w + Window.total_err w))
    export_state;
  add "}\n";
  add "}\n";
  {
    json = Buffer.contents b;
    completed;
    failed;
    retired;
    gate_p50 = H.percentile gate 0.50;
    gate_p99 = H.percentile gate 0.99;
    gate_mean = H.mean gate;
    call_p50 = H.percentile call 0.50;
    call_p99 = H.percentile call 0.99;
    call_p999 = H.percentile call 0.999;
    insns_per_request;
    requests_per_sec;
    alerts;
    snapshots;
  }
