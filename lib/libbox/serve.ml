(** Deterministic request-stream dispatcher and the [lfi-serve/v1]
    report.

    [run] builds a library and a pool from a {!Api.lib_spec}, replays a
    seeded request stream across the pool (weighted export pick +
    argument generation, all drawn from one xorshift64 stream), and
    reports throughput and transition costs.  Everything in the report
    derives from the seed and the simulated machine — no wall clock, no
    hash-table iteration order — so the JSON is byte-identical across
    runs: the property `make serve-bench` commits to. *)

open Lfi_emulator

type report = {
  json : string;
  completed : int;
  failed : int;
  retired : int;  (** instances lost *)
  gate_p50 : float;
  gate_p99 : float;
  gate_mean : float;
  insns_per_request : float;
  requests_per_sec : float;
}

(* xorshift64; the single source of randomness for the stream *)
let make_rng (seed : int) =
  let s = ref (Int64.of_int ((seed * 2654435761) lor 1)) in
  fun (bound : int) ->
    let x = !s in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    s := x;
    Int64.to_int (Int64.rem (Int64.logand x Int64.max_int) (Int64.of_int bound))

let pick_export (rng : int -> int) (exports : Api.export_spec list) :
    Api.export_spec =
  let weighted = List.filter (fun e -> e.Api.e_weight > 0) exports in
  match weighted with
  | [] -> invalid_arg "Serve.run: no weighted exports in the stream"
  | _ ->
      let total = List.fold_left (fun a e -> a + e.Api.e_weight) 0 weighted in
      let n = rng total in
      let rec go acc = function
        | [ e ] -> e
        | e :: tl ->
            let acc = acc + e.Api.e_weight in
            if n < acc then e else go acc tl
        | [] -> assert false
      in
      go 0 weighted

let json_float (v : float) : string =
  if Float.is_nan v then "null" else Printf.sprintf "%.1f" v

let run ?(uarch = Cost_model.m1) ?(config = Lfi_core.Config.o2)
    ~(spec : Api.lib_spec) ~(pool : int) ~(requests : int) ~(seed : int) () :
    report =
  let lib =
    let exports =
      List.map (fun e -> e.Api.e_name) spec.Api.l_exports
      @ match spec.Api.l_init with None -> [] | Some n -> [ n ]
    in
    Library.create ~config ~name:spec.Api.l_short ~exports spec.Api.l_program
  in
  let rt =
    Lfi_runtime.Runtime.create
      ~config:
        { Lfi_runtime.Runtime.default_config with verify = false; uarch }
      ()
  in
  let p =
    Pool.create ~runtime:rt ~arena:spec.Api.l_arena ?init:spec.Api.l_init
      ~size:pool lib
  in
  let rng = make_rng seed in
  let per_export = Hashtbl.create 8 in
  let serve_cycles = ref 0.0 and serve_insns = ref 0 in
  for _ = 1 to requests do
    let e = pick_export rng spec.Api.l_exports in
    let args = e.Api.e_gen ~rng in
    let _inst, r = Pool.dispatch p e.Api.e_name args in
    (match r with
    | Ok reply ->
        serve_cycles := !serve_cycles +. reply.Api.stats.Api.total_cycles;
        serve_insns := !serve_insns + reply.Api.stats.Api.call_insns
    | Error _ -> ());
    Hashtbl.replace per_export e.Api.e_name
      (1 + Option.value ~default:0 (Hashtbl.find_opt per_export e.Api.e_name))
  done;
  let gate, call = Pool.merged_hists p in
  let module H = Lfi_telemetry.Histogram in
  let completed = p.Pool.served and failed = p.Pool.failed in
  let retired = Pool.retired p in
  let insns_per_request =
    if completed = 0 then 0.0
    else float_of_int !serve_insns /. float_of_int completed
  in
  (* simulated wall-clock throughput: requests per second at the
     modeled clock, from the cycles spent serving *)
  let requests_per_sec =
    if !serve_cycles <= 0.0 then 0.0
    else
      float_of_int completed
      /. (!serve_cycles /. (uarch.Cost_model.clock_ghz *. 1e9))
  in
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"lfi-serve/v1\",\n";
  add "  \"workload\": %S,\n" spec.Api.l_short;
  add "  \"system\": %S,\n" (Lfi_core.Config.name config);
  add "  \"uarch\": %S,\n" uarch.Cost_model.name;
  add "  \"pool\": %d,\n" pool;
  add "  \"requests\": %d,\n" requests;
  add "  \"seed\": %d,\n" seed;
  add "  \"completed\": %d,\n" completed;
  add "  \"failed\": %d,\n" failed;
  add "  \"instances_lost\": %d,\n" retired;
  add "  \"serve_cycles\": %.1f,\n" !serve_cycles;
  add "  \"serve_insns\": %d,\n" !serve_insns;
  add "  \"insns_per_request\": %.1f,\n" insns_per_request;
  add "  \"requests_per_sec\": %.0f,\n" requests_per_sec;
  add "  \"transition_cycles\": %s,\n" (H.to_json gate);
  add "  \"transition_p50\": %.1f,\n" (H.percentile gate 0.50);
  add "  \"transition_p99\": %.1f,\n" (H.percentile gate 0.99);
  add "  \"call_cycles\": %s,\n" (H.to_json call);
  add "  \"call_p50\": %.1f,\n" (H.percentile call 0.50);
  add "  \"call_p99\": %.1f,\n" (H.percentile call 0.99);
  (* the §5.3 comparison: what the same boundary crossing costs under
     process isolation (gvisor is unmeasured/NaN on some uarches →
     null) *)
  add "  \"baselines\": {\"lfi_transition_mean\": %s, \
       \"linux_pipe_roundtrip\": %s, \"gvisor_pipe_roundtrip\": %s},\n"
    (json_float (H.mean gate))
    (json_float uarch.Cost_model.linux_pipe_roundtrip)
    (json_float uarch.Cost_model.gvisor_pipe_roundtrip);
  add "  \"per_slot\": [";
  Array.iteri
    (fun i inst ->
      if i > 0 then add ", ";
      add
        "{\"slot\": %d, \"pid\": %d, \"alive\": %b, \"calls\": %d, \
         \"resets\": %d, \"insns\": %d, \"pages_restored\": %d}"
        inst.Instance.p.Lfi_runtime.Proc.slot inst.Instance.p.Lfi_runtime.Proc.pid
        inst.Instance.alive inst.Instance.calls inst.Instance.resets
        inst.Instance.call_insns inst.Instance.pages_restored)
    p.Pool.instances;
  add "],\n";
  add "  \"per_export\": {";
  List.iteri
    (fun i e ->
      if i > 0 then add ", ";
      add "%S: %d" e.Api.e_name
        (Option.value ~default:0 (Hashtbl.find_opt per_export e.Api.e_name)))
    (List.filter (fun e -> e.Api.e_weight > 0) spec.Api.l_exports);
  add "}\n";
  add "}\n";
  {
    json = Buffer.contents b;
    completed;
    failed;
    retired;
    gate_p50 = H.percentile gate 0.50;
    gate_p99 = H.percentile gate 0.99;
    gate_mean = H.mean gate;
    insns_per_request;
    requests_per_sec;
  }
