(** Per-sandbox flight recorder: a fixed-size, allocation-free ring
    buffer of recent control-flow events, cheap enough to stay on by
    default (unlike the opt-in Chrome tracing in {!Trace}).

    The ring is three parallel flat [int] arrays (kind / pc / argument)
    of power-of-two capacity; {!record} is three [Array.unsafe_set]s
    and an increment, with no allocation and no bounds checks, so the
    emulator can call it on every taken branch without disturbing the
    hot loop's throughput.  [pos] counts every event ever recorded; the
    live window is the last [capacity] of them, drained oldest-first by
    {!events} when a postmortem is assembled.

    The recorder also owns the {e guard-clamp audit counter}: the
    number of times a [\[x21, wN, uxtw\]]-style guarded access executed
    with an index register whose upper 32 bits did not match the
    sandbox base — i.e. the guard actually clamped an address that
    would otherwise have escaped the sandbox (the silent event of the
    paper's Section 5.2 security argument). *)

(* Event kinds, as bare ints so the hot-path store is untagged. *)
let k_branch = 0 (* taken branch (B/Br/B.cond/Cbz/Tbz); arg = target *)
let k_call = 1 (* call (Bl/Blr); arg = target *)
let k_ret = 2 (* return (Ret); arg = target *)
let k_rt_enter = 3 (* runtime-call entry; arg = sysno *)
let k_rt_exit = 4 (* runtime-call exit; arg = sysno *)
let k_ctx_switch = 5 (* scheduled onto the machine; arg = pid *)
let k_preempt = 6 (* quantum expired; arg = pid *)
let k_clamp = 7 (* guard clamped an escaping address; arg = raw index *)

let kind_name = function
  | 0 -> "branch"
  | 1 -> "call"
  | 2 -> "ret"
  | 3 -> "rt-enter"
  | 4 -> "rt-exit"
  | 5 -> "ctx-switch"
  | 6 -> "preempt"
  | 7 -> "clamp"
  | _ -> "?"

type t = {
  kinds : int array;
  pcs : int array;
  args : int array;
  mask : int;  (** capacity - 1; capacity is a power of two *)
  mutable pos : int;  (** total events ever recorded *)
  mutable clamps : int;  (** guard-clamp audit counter *)
}

let default_capacity = 64

let rec pow2_ge n k = if k >= n then k else pow2_ge n (k * 2)

let create ?(capacity = default_capacity) () =
  let cap = pow2_ge (max capacity 1) 1 in
  {
    kinds = Array.make cap 0;
    pcs = Array.make cap 0;
    args = Array.make cap 0;
    mask = cap - 1;
    pos = 0;
    clamps = 0;
  }

let capacity t = t.mask + 1
let total t = t.pos
let length t = min t.pos (t.mask + 1)
let clamps t = t.clamps

let[@inline] record (t : t) (kind : int) (pc : int) (arg : int) =
  let i = t.pos land t.mask in
  Array.unsafe_set t.kinds i kind;
  Array.unsafe_set t.pcs i pc;
  Array.unsafe_set t.args i arg;
  t.pos <- t.pos + 1

(** Record a guard clamp: bump the audit counter and log the pc (and
    the raw, would-have-escaped index value) into the ring. *)
let[@inline] clamp (t : t) (pc : int) (raw : int) =
  t.clamps <- t.clamps + 1;
  record t k_clamp pc raw

let clear t =
  t.pos <- 0;
  t.clamps <- 0

(** One drained event.  [seq] is the global sequence number (0 = first
    event the sandbox ever recorded), so wraparound is visible. *)
type event = { seq : int; kind : int; pc : int; arg : int }

(** Drain the ring oldest-first.  Allocates — postmortem path only. *)
let events (t : t) : event list =
  let n = length t in
  let first = t.pos - n in
  List.init n (fun i ->
      let seq = first + i in
      let slot = seq land t.mask in
      {
        seq;
        kind = Array.unsafe_get t.kinds slot;
        pc = Array.unsafe_get t.pcs slot;
        arg = Array.unsafe_get t.args slot;
      })
