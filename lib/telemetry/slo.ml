(** Service-level objectives with multi-window burn-rate alerting.

    An {!objective} declares, per export, how slow and how unreliable
    the serving layer is allowed to be: a latency threshold with a
    budget for the fraction of requests over it, and an error budget
    for the fraction of requests that fail outright.

    Alerting follows the standard multi-window burn-rate shape: the
    {e burn rate} of a window is the fraction of bad events divided by
    the budget (1.0 = burning the budget exactly as fast as allowed).
    An alert fires only when both a fast window (the just-closed
    window, ~1% of a run) and a slow window (the last ten windows,
    ~10% of a run) burn at ≥ 1.0 — the fast window gives detection
    latency, the slow window keeps a single outlier window from
    paging.  All inputs are counters over simulated cycles, so alerts
    are deterministic and land byte-stably in the trace and report. *)

type objective = {
  latency_cycles : float;
      (** per-request total-latency threshold, simulated cycles *)
  latency_budget : float;
      (** allowed fraction of ok requests over the threshold *)
  error_budget : float;  (** allowed fraction of failed requests *)
}

type kind = Latency | Error_rate

let kind_name = function Latency -> "latency" | Error_rate -> "error_rate"

type alert = {
  a_export : string;
  a_window : int;  (** seq of the closed window that tripped *)
  a_kind : kind;
  a_fast : float;  (** fast-window burn rate *)
  a_slow : float;  (** slow-window burn rate *)
}

(** Bad-event fraction over budget; 0 when the window is empty or the
    budget is non-positive (an un-budgeted objective cannot burn). *)
let burn ~(bad : int) ~(total : int) ~(budget : float) : float =
  if total = 0 || budget <= 0.0 then 0.0
  else float_of_int bad /. float_of_int total /. budget

(** Evaluate one objective over a closed window.  [fast] and [slow]
    are [(over, err, ok)] counter sums for the fast and slow windows;
    returns the (kind, fast-burn, slow-burn) of every dimension whose
    burn rate is ≥ 1.0 in both windows. *)
let check (ob : objective) ~(fast : int * int * int)
    ~(slow : int * int * int) : (kind * float * float) list =
  let f_over, f_err, f_ok = fast and s_over, s_err, s_ok = slow in
  let lat_f = burn ~bad:f_over ~total:f_ok ~budget:ob.latency_budget
  and lat_s = burn ~bad:s_over ~total:s_ok ~budget:ob.latency_budget
  and err_f =
    burn ~bad:f_err ~total:(f_ok + f_err) ~budget:ob.error_budget
  and err_s =
    burn ~bad:s_err ~total:(s_ok + s_err) ~budget:ob.error_budget
  in
  let hits = [] in
  let hits =
    if err_f >= 1.0 && err_s >= 1.0 then (Error_rate, err_f, err_s) :: hits
    else hits
  in
  if lat_f >= 1.0 && lat_s >= 1.0 then (Latency, lat_f, lat_s) :: hits
  else hits
