(** Emulator metric counters (the "where do the cycles go" layer).

    A {!emu} record is a flat bag of mutable [int] counters the
    emulator's hot paths bump through a [Metrics.emu option] handle
    that is [None] by default: with telemetry disabled nothing is
    allocated and each potential count site costs one predictable
    branch, which keeps the PR-1 hot loop at its measured throughput.

    The memory system's translation cache and the TLB already maintain
    their own unconditional counters (flat mutable ints, following the
    original {!Lfi_emulator.Tlb} design); a {!snapshot} folds those in
    next to the handle's counters so consumers see one coherent record
    per run. *)

type emu = {
  (* decode cache (per-page decoded-instruction arrays) *)
  mutable decode_hits : int;
  mutable decode_misses : int;
  mutable decode_invalidations : int;
      (** pages dropped by the code-change invalidation protocol *)
  (* escapes *)
  mutable faults : int;  (** memory faults that escaped to the runtime *)
  (* instruction-class mix of everything executed *)
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable guards : int;  (** LFI guard instructions (x21-based add) *)
  mutable other : int;
}

let create_emu () =
  {
    decode_hits = 0;
    decode_misses = 0;
    decode_invalidations = 0;
    faults = 0;
    loads = 0;
    stores = 0;
    branches = 0;
    guards = 0;
    other = 0;
  }

(** One run's counters, with the memory-system counters (sampled from
    the TLB and translation cache at snapshot time) alongside. *)
type snapshot = {
  emu : emu;
  tc_hits : int;  (** page-translation cache *)
  tc_misses : int;
  tlb_hits : int;
  tlb_misses : int;  (** every miss is a page walk *)
  (* superblock engine (unconditional machine counters; nonzero only
     when block dispatch actually ran — metrics-armed runs deopt to
     the step path, so a metrics run reports its own deopt count and
     zero executions) *)
  blk_execs : int;  (** blocks entered *)
  blk_builds : int;  (** blocks lowered (cache misses + rebuilds) *)
  blk_insns : int;  (** instructions retired under block dispatch *)
  blk_deopts : int;  (** quantum tails + metrics/profile/oracle deopts *)
}

let hit_rate ~hits ~misses =
  let total = hits + misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let insn_total (e : emu) = e.loads + e.stores + e.branches + e.guards + e.other

(** Fraction of block entries served from the block cache (an entry
    that was not preceded by a fresh lowering). *)
let block_hit_rate (s : snapshot) : float =
  if s.blk_execs = 0 then 0.0
  else
    float_of_int (max 0 (s.blk_execs - s.blk_builds))
    /. float_of_int s.blk_execs

(** Mean instructions retired per block execution. *)
let avg_block_len (s : snapshot) : float =
  if s.blk_execs = 0 then 0.0
  else float_of_int s.blk_insns /. float_of_int s.blk_execs

(** Render a snapshot as a JSON object (no trailing newline). *)
let snapshot_to_json (s : snapshot) : string =
  let e = s.emu in
  let b = Buffer.create 512 in
  let cache name hits misses extra =
    Buffer.add_string b
      (Printf.sprintf
         "    \"%s\": {\"hits\": %d, \"misses\": %d%s, \"hit_rate\": %.6f}"
         name hits misses extra (hit_rate ~hits ~misses))
  in
  Buffer.add_string b "{\n";
  cache "decode_cache" e.decode_hits e.decode_misses
    (Printf.sprintf ", \"invalidated_pages\": %d" e.decode_invalidations);
  Buffer.add_string b ",\n";
  cache "translation_cache" s.tc_hits s.tc_misses "";
  Buffer.add_string b ",\n";
  cache "tlb" s.tlb_hits s.tlb_misses
    (Printf.sprintf ", \"walks\": %d" s.tlb_misses);
  Buffer.add_string b ",\n";
  Buffer.add_string b
    (Printf.sprintf
       "    \"superblocks\": {\"executions\": %d, \"builds\": %d, \
        \"insns\": %d, \"deopts\": %d, \"hit_rate\": %.6f, \
        \"avg_block_len\": %.2f},\n"
       s.blk_execs s.blk_builds s.blk_insns s.blk_deopts (block_hit_rate s)
       (avg_block_len s));
  Buffer.add_string b (Printf.sprintf "    \"faults\": %d,\n" e.faults);
  Buffer.add_string b
    (Printf.sprintf
       "    \"insn_mix\": {\"loads\": %d, \"stores\": %d, \"branches\": %d, \
        \"guards\": %d, \"other\": %d, \"total\": %d}\n"
       e.loads e.stores e.branches e.guards e.other (insn_total e));
  Buffer.add_string b "  }";
  Buffer.contents b
