(** Postmortem crash report: the record a sandbox leaves behind when
    the runtime kills it, plus deterministic text and JSON renderers.

    This module is pure data + formatting — the telemetry library has
    no dependencies, so everything that needs the emulator (reading
    sandbox memory, walking frames, disassembling around the faulting
    pc) is collected by [Runtime.postmortem] in [lib/runtime] and
    handed over as plain values.  Both renderers are deterministic
    byte-for-byte given equal reports: all quantities are either ints,
    [int64] addresses printed in hex, or the simulated cycle counter
    (itself deterministic), so golden tests can compare output
    verbatim. *)

(** One backtrace frame.  [fr_off] is the offset within [fr_sym] when
    symbolized, otherwise the frame pc's offset from the sandbox
    base. *)
type frame = { fr_pc : int64; fr_sym : string option; fr_off : int }

(** One disassembled instruction around the faulting pc; [dl_current]
    marks the faulting instruction itself (rendered with a [>] marker,
    matching the verifier's [pp_violation] context style). *)
type disasm_line = {
  dl_pc : int64;
  dl_word : int;
  dl_text : string;
  dl_current : bool;
}

(** One 16-byte hexdump row around the fault address; [None] bytes are
    unreadable (unmapped or no-read permission) and render as [??]. *)
type hex_row = { hr_addr : int64; hr_bytes : int option array }

(** Permission of one page neighbouring the fault page; [pg_perm] is
    ["r-x"]-style, or ["---"] for an unmapped page. *)
type page_info = { pg_addr : int64; pg_perm : string }

(** One coalesced mapped region of the sandbox's layout. *)
type region = {
  rg_lo : int64;
  rg_hi : int64;  (** exclusive *)
  rg_perm : string;
  rg_label : string;
}

type t = {
  pid : int;
  personality : string;
  reason : string;
  base : int64;
  insns : int;  (** user instructions executed by the dead sandbox *)
  cycles : float;  (** simulated cycles at time of death *)
  fault_addr : int64 option;
  fault_access : string option;
  pc : int64;
  sp : int64;
  regs : int64 array;  (** x0 .. x30 *)
  flags : string;  (** e.g. ["nZcv"]; capital = set *)
  backtrace : frame list;
  disasm : disasm_line list;
  hexdump : hex_row list;
  pages : page_info list;
  layout : region list;
  flight_total : int;  (** events ever recorded, including overwritten *)
  flight : Flight.event list;  (** surviving ring window, oldest first *)
  clamps : int;  (** guard-clamp audit counter *)
}

let frame_label (f : frame) : string =
  match f.fr_sym with
  | Some s when f.fr_off = 0 -> s
  | Some s -> Printf.sprintf "%s+0x%x" s f.fr_off
  | None -> Printf.sprintf "+0x%x" f.fr_off

(* ---------------- text rendering ---------------- *)

let to_text (r : t) : string =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "==== postmortem: sandbox %d (%s) ====\n" r.pid r.personality;
  pf "reason : %s\n" r.reason;
  (match (r.fault_addr, r.fault_access) with
  | Some a, Some acc -> pf "fault  : %s at 0x%Lx\n" acc a
  | _ -> ());
  pf "insns  : %d   cycles : %.1f   base : 0x%Lx\n\n" r.insns r.cycles r.base;
  pf "registers:\n";
  for i = 0 to 30 do
    pf "  x%-2d %016Lx%s" i r.regs.(i)
      (if i mod 4 = 3 || i = 30 then "\n" else "")
  done;
  pf "  sp  %016Lx  pc  %016Lx  flags %s\n\n" r.sp r.pc r.flags;
  pf "backtrace:\n";
  List.iteri
    (fun i f -> pf "  #%-2d 0x%Lx  %s\n" i f.fr_pc (frame_label f))
    r.backtrace;
  if r.disasm <> [] then begin
    pf "\ncode around pc:\n";
    List.iter
      (fun d ->
        pf "  %c %8Lx:  %08x  %s\n"
          (if d.dl_current then '>' else ' ')
          d.dl_pc d.dl_word d.dl_text)
      r.disasm
  end;
  if r.hexdump <> [] then begin
    pf "\nmemory around fault address:\n";
    List.iter
      (fun row ->
        pf "  %8Lx: " row.hr_addr;
        Array.iter
          (fun byte ->
            match byte with
            | Some v -> pf "%02x " v
            | None -> pf "?? ")
          row.hr_bytes;
        pf "\n")
      r.hexdump
  end;
  if r.pages <> [] then begin
    pf "\nfault-page neighbourhood:\n";
    List.iter (fun p -> pf "  page 0x%Lx  %s\n" p.pg_addr p.pg_perm) r.pages
  end;
  pf "\nsandbox layout:\n";
  List.iter
    (fun g ->
      pf "  0x%Lx-0x%Lx  %s  %s\n" g.rg_lo g.rg_hi g.rg_perm g.rg_label)
    r.layout;
  pf "\nflight recorder (last %d of %d events):\n" (List.length r.flight)
    r.flight_total;
  List.iter
    (fun (e : Flight.event) ->
      pf "  #%-5d %-10s pc=0x%x arg=0x%x\n" e.Flight.seq
        (Flight.kind_name e.Flight.kind)
        e.Flight.pc e.Flight.arg)
    r.flight;
  pf "\nguard clamps: %d\n" r.clamps;
  Buffer.contents b

(* ---------------- JSON rendering ---------------- *)

let esc (s : string) : string =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json (r : t) : string =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let list xs one =
    List.iteri
      (fun i x ->
        if i > 0 then pf ",";
        one x)
      xs
  in
  pf "{\n  \"schema\": \"lfi-postmortem/v1\",\n";
  pf "  \"pid\": %d,\n  \"personality\": \"%s\",\n" r.pid (esc r.personality);
  pf "  \"reason\": \"%s\",\n" (esc r.reason);
  pf "  \"base\": \"0x%Lx\",\n  \"insns\": %d,\n  \"cycles\": %.1f,\n" r.base
    r.insns r.cycles;
  (match (r.fault_addr, r.fault_access) with
  | Some a, Some acc ->
      pf "  \"fault\": {\"addr\": \"0x%Lx\", \"access\": \"%s\"},\n" a
        (esc acc)
  | _ -> pf "  \"fault\": null,\n");
  pf "  \"regs\": {";
  for i = 0 to 30 do
    pf "\"x%d\": \"0x%Lx\", " i r.regs.(i)
  done;
  pf "\"sp\": \"0x%Lx\", \"pc\": \"0x%Lx\"},\n" r.sp r.pc;
  pf "  \"flags\": \"%s\",\n" r.flags;
  pf "  \"backtrace\": [";
  list r.backtrace (fun f ->
      pf "\n    {\"pc\": \"0x%Lx\", \"sym\": %s, \"off\": %d}" f.fr_pc
        (match f.fr_sym with
        | Some s -> Printf.sprintf "\"%s\"" (esc s)
        | None -> "null")
        f.fr_off);
  pf "],\n";
  pf "  \"disasm\": [";
  list r.disasm (fun d ->
      pf "\n    {\"pc\": \"0x%Lx\", \"word\": \"%08x\", \"text\": \"%s\", \"current\": %b}"
        d.dl_pc d.dl_word (esc d.dl_text) d.dl_current);
  pf "],\n";
  pf "  \"hexdump\": [";
  list r.hexdump (fun row ->
      let bytes =
        String.concat " "
          (Array.to_list
             (Array.map
                (function
                  | Some v -> Printf.sprintf "%02x" v
                  | None -> "??")
                row.hr_bytes))
      in
      pf "\n    {\"addr\": \"0x%Lx\", \"bytes\": \"%s\"}" row.hr_addr bytes);
  pf "],\n";
  pf "  \"pages\": [";
  list r.pages (fun p ->
      pf "\n    {\"addr\": \"0x%Lx\", \"perm\": \"%s\"}" p.pg_addr p.pg_perm);
  pf "],\n";
  pf "  \"layout\": [";
  list r.layout (fun g ->
      pf
        "\n    {\"lo\": \"0x%Lx\", \"hi\": \"0x%Lx\", \"perm\": \"%s\", \"label\": \"%s\"}"
        g.rg_lo g.rg_hi g.rg_perm (esc g.rg_label));
  pf "],\n";
  pf "  \"flight_total\": %d,\n" r.flight_total;
  pf "  \"flight\": [";
  list r.flight (fun (e : Flight.event) ->
      pf "\n    {\"seq\": %d, \"kind\": \"%s\", \"pc\": \"0x%x\", \"arg\": \"0x%x\"}"
        e.Flight.seq
        (Flight.kind_name e.Flight.kind)
        e.Flight.pc e.Flight.arg);
  pf "],\n";
  pf "  \"guard_clamps\": %d\n}\n" r.clamps;
  Buffer.contents b
