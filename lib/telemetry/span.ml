(** Allocation-free per-request span records for the serving layer.

    A span decomposes one library-call request into the phases the
    serve path actually spends cycles in: dispatch-queue wait, arena
    marshal-in, the host→sandbox gate, sandboxed execution, the
    sandbox→host gate, and marshal-out.  The record is a handful of
    mutable floats reused across requests — filling it is a few stores
    on the call path, so the instrumentation cannot disturb the
    measurement (the same discipline {!Histogram.observe} follows).

    Timestamps are simulated cycles, so emitted spans are byte-stable
    across runs.  {!emit} renders the span through the existing Chrome
    {!Trace} writer as one enclosing [req:<export>] slice plus one
    slice per non-empty phase, laid out sequentially on the caller's
    track (one track per pool slot); a p999 request is then directly
    inspectable in Perfetto. *)

type phase = Queue | Marshal_in | Gate_in | Exec | Gate_out | Marshal_out

let nphases = 6

let index = function
  | Queue -> 0
  | Marshal_in -> 1
  | Gate_in -> 2
  | Exec -> 3
  | Gate_out -> 4
  | Marshal_out -> 5

let name = function
  | Queue -> "queue"
  | Marshal_in -> "marshal_in"
  | Gate_in -> "gate_in"
  | Exec -> "exec"
  | Gate_out -> "gate_out"
  | Marshal_out -> "marshal_out"

(** Temporal order on the request timeline. *)
let all = [ Queue; Marshal_in; Gate_in; Exec; Gate_out; Marshal_out ]

type t = {
  mutable export : string;  (** export being called *)
  mutable t0 : float;  (** cycle timestamp of the gate-entry edge *)
  dur : float array;  (** per-phase durations, indexed by {!index} *)
}

let create () = { export = ""; t0 = 0.0; dur = Array.make nphases 0.0 }

(** Rewind the record for a new request (no allocation). *)
let start t export =
  t.export <- export;
  t.t0 <- 0.0;
  Array.fill t.dur 0 nphases 0.0

let set t ph (v : float) = t.dur.(index ph) <- v
let get t ph = t.dur.(index ph)
let total t = Array.fold_left ( +. ) 0.0 t.dur

(** Fold this span's durations into a per-phase accumulator of length
    {!nphases} (the run-wide phase breakdown in the serve report). *)
let accumulate t (acc : float array) =
  for i = 0 to nphases - 1 do
    acc.(i) <- acc.(i) +. t.dur.(i)
  done

(** Emit the span at [ts]: the enclosing request slice, then each
    non-empty phase laid end to end.  Returns the end timestamp so the
    caller can keep a per-track cursor (slices on one track must not
    overlap). *)
let emit t (tr : Trace.t) ~pid ~tid ~(ts : float) : float =
  let dur = total t in
  Trace.complete tr ~name:("req:" ^ t.export) ~cat:"request" ~ts ~dur ~pid
    ~tid ~args:[];
  let cursor = ref ts in
  List.iter
    (fun ph ->
      let d = get t ph in
      if d > 0.0 then begin
        Trace.complete tr ~name:(name ph) ~cat:"phase" ~ts:!cursor ~dur:d ~pid
          ~tid ~args:[];
        cursor := !cursor +. d
      end)
    all;
  ts +. dur
