(** Sampled program-counter profiles.

    The emulator records the current pc every [period] executed
    instructions (period is rounded to a power of two so the "is a
    sample due" check on the hot path is one [land] against the
    instruction counter).  Sampling on {e simulated instruction count}
    rather than wall time makes profiles deterministic: the same
    workload always yields the same histogram.

    The histogram is keyed by untagged pc (sandbox addresses fit in an
    OCaml int); folding through a symbol table happens once at report
    time, never while sampling. *)

type t = {
  period : int;
  mask : int;
  samples : (int, int) Hashtbl.t;  (** pc -> sample hits *)
  mutable total : int;
}

let rec pow2_ge n k = if k >= n then k else pow2_ge n (k * 2)

let create ?(period = 4096) () =
  let period = pow2_ge (max 1 period) 1 in
  { period; mask = period - 1; samples = Hashtbl.create 256; total = 0 }

let sample t (pc : int) =
  t.total <- t.total + 1;
  match Hashtbl.find_opt t.samples pc with
  | Some n -> Hashtbl.replace t.samples pc (n + 1)
  | None -> Hashtbl.add t.samples pc 1

(* ------------------------------------------------------------------ *)
(* Symbol folding                                                      *)
(* ------------------------------------------------------------------ *)

(** Symbols sorted by address, ready for binary search. *)
type sym_table = (int * string) array

(** Build a fold table from [(name, address)] pairs, dropping
    GNU-convention local labels ([.L...]). *)
let sym_table (syms : (string * int) list) : sym_table =
  let keep =
    List.filter
      (fun (name, _) -> not (String.length name >= 2 && name.[0] = '.'))
      syms
  in
  let a = Array.of_list (List.map (fun (n, v) -> (v, n)) keep) in
  Array.sort compare a;
  a

(** Nearest symbol at or below [off]: [(name, offset-within-symbol)].
    Shared by the flat profiler, the postmortem backtrace walker and
    [lfi_objdump]'s branch-target annotations. *)
let resolve_sym (tbl : sym_table) (off : int) : (string * int) option =
  let n = Array.length tbl in
  if n = 0 || fst tbl.(0) > off then None
  else begin
    (* greatest index with address <= off *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if fst tbl.(mid) <= off then lo := mid else hi := mid - 1
    done;
    let addr, name = tbl.(!lo) in
    Some (name, off - addr)
  end

(** Name of the nearest symbol at or below [off], if any. *)
let resolve (tbl : sym_table) (off : int) : string option =
  match resolve_sym tbl off with
  | Some (name, _) -> Some name
  | None -> None

(** Render [off] through [tbl] as ["sym+0x12"] (plain ["sym"] at the
    symbol's own address), falling back to [None] outside the table. *)
let pp_sym (tbl : sym_table) (off : int) : string option =
  match resolve_sym tbl off with
  | Some (name, 0) -> Some name
  | Some (name, d) -> Some (Printf.sprintf "%s+0x%x" name d)
  | None -> None

type line = { name : string; hits : int; fraction : float }

(** Flat profile of the samples in [\[base, limit)], with pcs rebased
    to [base] and folded through [symbols].  Lines are sorted by hits
    (descending), then name, so reports are deterministic. *)
let flat t ~(symbols : sym_table) ~(base : int) ~(limit : int) : line list =
  let per_sym : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let in_range = ref 0 in
  Hashtbl.iter
    (fun pc n ->
      if pc >= base && pc < limit then begin
        in_range := !in_range + n;
        let name =
          match resolve symbols (pc - base) with
          | Some s -> s
          | None -> Printf.sprintf "0x%x" (pc - base)
        in
        Hashtbl.replace per_sym name
          (n + Option.value ~default:0 (Hashtbl.find_opt per_sym name))
      end)
    t.samples;
  let total = max 1 !in_range in
  Hashtbl.fold
    (fun name hits acc ->
      { name; hits; fraction = float_of_int hits /. float_of_int total } :: acc)
    per_sym []
  |> List.sort (fun a b ->
         match compare b.hits a.hits with 0 -> compare a.name b.name | c -> c)
