(** Sliding-window aggregation over log2 histograms.

    A window [t] chops the simulated-cycle axis into fixed-width
    windows from an [origin] and keeps the most recent [depth] of them
    in a ring, one {!Histogram} plus ok/err/over/insns counters per
    window.  Observing is O(1): find the current window (advancing the
    ring over any boundary crossed since the last observation), then a
    histogram observe and a few counter stores — cheap enough to stay
    always-on in the serve path.

    Rolling percentiles come from {!Histogram.merge} over the retained
    ring ({!merged}), burn-rate windows from counter sums over a seq
    range ({!range}).  A whole-run [total] histogram is maintained in
    parallel; while nothing has been evicted, merging every retained
    window reproduces it {e exactly} (bucket arithmetic is exact under
    merge) — the invariant the tests pin down. *)

type slot = {
  hist : Histogram.t;
  mutable ok : int;  (** successful requests observed *)
  mutable err : int;  (** failed requests *)
  mutable over : int;  (** requests over the latency objective *)
  mutable insns : int;  (** sandboxed instructions, ok requests *)
  mutable seq : int;  (** window sequence number; -1 = never used *)
}

(** Counter sums over a window range (see {!range}). *)
type rstats = { r_ok : int; r_err : int; r_over : int; r_insns : int }

let rstats_zero = { r_ok = 0; r_err = 0; r_over = 0; r_insns = 0 }

type t = {
  width : float;  (** cycles per window *)
  origin : float;  (** cycle timestamp of window 0's left edge *)
  ring : slot array;
  total : Histogram.t;  (** whole-run latency histogram *)
  mutable t_ok : int;
  mutable t_err : int;
  mutable t_over : int;
  mutable t_insns : int;
  mutable cur : int;  (** highest window seq started; -1 before any *)
}

let create ?(depth = 128) ?(origin = 0.0) ~(width : float) () : t =
  if width <= 0.0 then invalid_arg "Window.create: width <= 0";
  if depth < 1 then invalid_arg "Window.create: depth < 1";
  {
    width;
    origin;
    ring =
      Array.init depth (fun _ ->
          { hist = Histogram.create (); ok = 0; err = 0; over = 0; insns = 0;
            seq = -1 });
    total = Histogram.create ();
    t_ok = 0;
    t_err = 0;
    t_over = 0;
    t_insns = 0;
    cur = -1;
  }

let depth t = Array.length t.ring
let width t = t.width
let cur t = t.cur

(** Window sequence number containing cycle timestamp [now] (clamped:
    observations before the origin land in window 0). *)
let seq_of t ~(now : float) : int =
  let s = int_of_float ((now -. t.origin) /. t.width) in
  if s < 0 then 0 else s

(** Number of windows started so far. *)
let spanned t = t.cur + 1

(** Windows whose histogram has been dropped off the ring. *)
let evicted t = max 0 (spanned t - depth t)

let clear_slot sl seq =
  Histogram.reset sl.hist;
  sl.ok <- 0;
  sl.err <- 0;
  sl.over <- 0;
  sl.insns <- 0;
  sl.seq <- seq

(** Roll the ring forward so the window containing [now] is current.
    Every slot crossed is reset and stamped; a jump larger than the
    ring touches each slot once. *)
let advance t ~(now : float) =
  let seq = seq_of t ~now in
  if seq > t.cur then begin
    let d = Array.length t.ring in
    let lo = max (t.cur + 1) (seq - d + 1) in
    for s = lo to seq do
      clear_slot t.ring.(s mod d) s
    done;
    t.cur <- seq
  end

let current_slot t = t.ring.(max t.cur 0 mod Array.length t.ring)

(** Record one successful request completing at [now]: [latency] into
    the window and whole-run histograms, [insns] into the counters,
    [over] when the request blew its latency objective. *)
let observe t ~(now : float) ~(latency : float) ~(insns : int) ~(over : bool)
    =
  advance t ~now;
  let sl = current_slot t in
  Histogram.observe sl.hist latency;
  sl.ok <- sl.ok + 1;
  sl.insns <- sl.insns + insns;
  if over then sl.over <- sl.over + 1;
  Histogram.observe t.total latency;
  t.t_ok <- t.t_ok + 1;
  t.t_insns <- t.t_insns + insns;
  if over then t.t_over <- t.t_over + 1

(** Record one failed request at [now] (no latency observation — a
    killed call has no completion to time). *)
let fail t ~(now : float) =
  advance t ~now;
  let sl = current_slot t in
  sl.err <- sl.err + 1;
  t.t_err <- t.t_err + 1

(** Retained slot holding window [seq], if it is still on the ring. *)
let slot_for t (seq : int) : slot option =
  if seq < 0 || seq > t.cur then None
  else
    let sl = t.ring.(seq mod Array.length t.ring) in
    if sl.seq = seq then Some sl else None

(** Counter sums over the retained windows with seq in [[lo, hi]]. *)
let range t ~(lo : int) ~(hi : int) : rstats =
  let acc = ref rstats_zero in
  for s = max lo 0 to min hi t.cur do
    match slot_for t s with
    | None -> ()
    | Some sl ->
        acc :=
          {
            r_ok = !acc.r_ok + sl.ok;
            r_err = !acc.r_err + sl.err;
            r_over = !acc.r_over + sl.over;
            r_insns = !acc.r_insns + sl.insns;
          }
  done;
  !acc

(** Merge of every retained window's histogram — the rolling view the
    serve report takes percentiles over.  While nothing has been
    evicted this equals [total t] exactly. *)
let merged t : Histogram.t =
  let h = Histogram.create () in
  Array.iter (fun sl -> if sl.seq >= 0 then Histogram.merge h sl.hist) t.ring;
  h

let total t = t.total
let total_ok t = t.t_ok
let total_err t = t.t_err
let total_insns t = t.t_insns
