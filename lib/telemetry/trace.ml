(** Structured trace events in Chrome trace-event JSON.

    The output loads directly into [chrome://tracing] and Perfetto.
    Timestamps are {e simulated cycles}, not wall time: the emulator's
    cycle counter is a deterministic function of the executed
    instruction stream, so two runs of the same workload produce
    byte-identical trace files — which is what makes traces diffable
    and testable.  (The [ts] field is nominally microseconds; viewers
    only use it as a linear axis, so "1 us" reads as "1 cycle".)

    Events are appended as pre-rendered JSON text into a single buffer:
    emitting an event is a few [Buffer] writes, with no intermediate
    event objects retained.  The runtime gives every sandbox its own
    track by using the sandbox pid as the Chrome [tid]. *)

type arg =
  | Int of int
  | I64 of int64
  | Str of string
  | Float of float

type t = { buf : Buffer.t; mutable events : int }

let create () = { buf = Buffer.create 4096; events = 0 }

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_arg b = function
  | Int n -> Buffer.add_string b (string_of_int n)
  | I64 n -> Buffer.add_string b (Int64.to_string n)
  | Float f -> Buffer.add_string b (Printf.sprintf "%.3f" f)
  | Str s ->
      Buffer.add_char b '"';
      add_escaped b s;
      Buffer.add_char b '"'

let add_args b (args : (string * arg) list) =
  Buffer.add_string b ", \"args\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_char b '"';
      add_escaped b k;
      Buffer.add_string b "\": ";
      add_arg b v)
    args;
  Buffer.add_char b '}'

let start_event t ~ph ~name ~cat ~(ts : float) ~pid ~tid =
  let b = t.buf in
  if t.events > 0 then Buffer.add_string b ",\n";
  t.events <- t.events + 1;
  Buffer.add_string b (Printf.sprintf "{\"ph\": \"%c\", \"name\": \"" ph);
  add_escaped b name;
  Buffer.add_string b "\", \"cat\": \"";
  add_escaped b cat;
  Buffer.add_string b
    (Printf.sprintf "\", \"ts\": %.3f, \"pid\": %d, \"tid\": %d" ts pid tid)

let finish_event t = Buffer.add_char t.buf '}'

(** A span with a duration ([ph = "X"] complete event). *)
let complete t ~name ~cat ~ts ~(dur : float) ~pid ~tid ~args =
  start_event t ~ph:'X' ~name ~cat ~ts ~pid ~tid;
  Buffer.add_string t.buf (Printf.sprintf ", \"dur\": %.3f" dur);
  if args <> [] then add_args t.buf args;
  finish_event t

(** A zero-duration marker on one thread's track. *)
let instant t ~name ~cat ~ts ~pid ~tid ~args =
  start_event t ~ph:'i' ~name ~cat ~ts ~pid ~tid;
  Buffer.add_string t.buf ", \"s\": \"t\"";
  if args <> [] then add_args t.buf args;
  finish_event t

(** A counter sample ([ph = "C"]): Perfetto renders one stacked-area
    track per counter name, one series per arg key. *)
let counter t ~name ~cat ~ts ~pid ~args =
  start_event t ~ph:'C' ~name ~cat ~ts ~pid ~tid:0;
  add_args t.buf args;
  finish_event t

(* Metadata events name the process and thread tracks in the viewer. *)

let metadata t ~name ~pid ~tid ~value =
  start_event t ~ph:'M' ~name ~cat:"__metadata" ~ts:0.0 ~pid ~tid;
  add_args t.buf [ ("name", Str value) ];
  finish_event t

let process_name t ~pid ~name = metadata t ~name:"process_name" ~pid ~tid:0 ~value:name
let thread_name t ~pid ~tid ~name = metadata t ~name:"thread_name" ~pid ~tid ~value:name

let num_events t = t.events

let to_string t : string =
  Printf.sprintf "{\"traceEvents\": [\n%s\n], \"displayTimeUnit\": \"ms\"}\n"
    (Buffer.contents t.buf)

let write_file t path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
