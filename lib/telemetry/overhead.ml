(** Per-rewrite-site overhead attribution (the "SFI tax" profiler).

    The rewriter records a *site table*: every instruction it inserts
    or modifies, with a category (guard, retag, clamp, ...) and the
    address of the original pre-rewrite instruction it serves.  The
    table travels with the binary in a [.lfi_sites] ELF sidecar
    section, and the emulator — when attribution is armed — charges
    each fetched instruction's issue cost to its site through the
    allocation-free accumulator below.  [report] then folds the
    per-site cycles through the symbol table into a byte-stable
    [lfi-overhead/v1] JSON document.

    This module is pure data + formatting — the telemetry library has
    no dependencies, so disassembly, symbolization and the
    guard-pattern predicate are handed over by the caller as plain
    closures (same convention as {!Postmortem}). *)

(** What kind of tax a rewrite site pays.  The fixed order below is
    also the serialization code and the report order. *)
type category =
  | Guard  (** address-guard [add xD, x21, wN, uxtw] and the guarded access *)
  | Retag  (** re-tag of a reserved register after a load (x30 guard) *)
  | Clamp  (** offset materialization / combine through w22 *)
  | Sp_anchor  (** the two-instruction sp anchor [w22 := wsp; sp := x21+x22] *)
  | Rtcall_gate  (** svc lowering: call-table load + indirect call *)
  | Trampoline  (** branch-relaxation veneer (inverted branch over b) *)
  | Padding  (** alignment padding (reserved for the O3 rewriter) *)

let all_categories =
  [ Guard; Retag; Clamp; Sp_anchor; Rtcall_gate; Trampoline; Padding ]

let category_name = function
  | Guard -> "guard"
  | Retag -> "retag"
  | Clamp -> "clamp"
  | Sp_anchor -> "sp-anchor"
  | Rtcall_gate -> "rtcall-gate"
  | Trampoline -> "trampoline"
  | Padding -> "padding"

(** Short tag for inline disassembly annotation (lfi_objdump). *)
let category_tag = function
  | Guard -> "guard"
  | Retag -> "retag"
  | Clamp -> "clamp"
  | Sp_anchor -> "sp"
  | Rtcall_gate -> "gate"
  | Trampoline -> "tramp"
  | Padding -> "pad"

let category_code = function
  | Guard -> 0
  | Retag -> 1
  | Clamp -> 2
  | Sp_anchor -> 3
  | Rtcall_gate -> 4
  | Trampoline -> 5
  | Padding -> 6

let category_of_code = function
  | 0 -> Some Guard
  | 1 -> Some Retag
  | 2 -> Some Clamp
  | 3 -> Some Sp_anchor
  | 4 -> Some Rtcall_gate
  | 5 -> Some Trampoline
  | 6 -> Some Padding
  | _ -> None

type site = {
  pc : int;  (** sandbox-relative address of the rewritten instruction *)
  category : category;
  inserted : bool;
      (** [true] when the instruction did not exist before the rewrite
          (pure tax); [false] when an original instruction was modified
          in place (its cost is partly the program's own work) *)
  orig_pc : int;
      (** sandbox-relative address, in the *rewritten* image, of the
          original instruction this site serves — the anchor that lets
          reports and objdump point back at the program's own code *)
}

(* ------------------------------------------------------------------ *)
(* Accumulator                                                         *)
(* ------------------------------------------------------------------ *)

(** Allocation-free per-site cycle accumulator.  One slot per text
    word; charging is two array reads and two writes on the armed
    path, nothing on the off path (the accumulator simply isn't
    installed — same [option] discipline as [Metrics.emu]). *)
type acc = {
  sites : site array;  (** site table, pcs sandbox-relative *)
  lo : int;  (** absolute address mapped to slot 0 *)
  slot : int array;  (** text word index -> site index, or -1 *)
  execs : int array;  (** per-site executed-instruction count *)
  cycles : float array;  (** per-site charged cycles *)
  attributed : float array;
      (** single cell: running total of cycles charged to any site —
          O(1) to read, which is what the trace counter track wants *)
}

(** Build an accumulator for [sites], whose pcs are relative to
    sandbox base [base] (pass [~base:0] for images run at their link
    address). *)
let create ~(base : int) (sites : site list) : acc =
  let sites = Array.of_list sites in
  Array.sort (fun a b -> compare (a.pc, a.orig_pc) (b.pc, b.orig_pc)) sites;
  let n = Array.length sites in
  if n = 0 then
    {
      sites;
      lo = 0;
      slot = [||];
      execs = [||];
      cycles = [||];
      attributed = [| 0.0 |];
    }
  else begin
    let lo = ref max_int and hi = ref min_int in
    Array.iter
      (fun s ->
        if s.pc < !lo then lo := s.pc;
        if s.pc > !hi then hi := s.pc)
      sites;
    let words = ((!hi - !lo) lsr 2) + 1 in
    let slot = Array.make words (-1) in
    Array.iteri (fun i s -> slot.((s.pc - !lo) lsr 2) <- i) sites;
    {
      sites;
      lo = base + !lo;
      slot;
      execs = Array.make n 0;
      cycles = Array.make n 0.0;
      attributed = [| 0.0 |];
    }
  end

(** Charge [cost] cycles for the instruction fetched at absolute
    address [pc].  Instructions outside any site are ignored. *)
let[@inline] charge (a : acc) (pc : int) (cost : float) =
  let idx = (pc - a.lo) lsr 2 in
  (* negative differences become huge after [lsr], so one unsigned
     bound check covers both ends *)
  if idx < Array.length a.slot then begin
    let s = Array.unsafe_get a.slot idx in
    if s >= 0 then begin
      Array.unsafe_set a.execs s (Array.unsafe_get a.execs s + 1);
      Array.unsafe_set a.cycles s (Array.unsafe_get a.cycles s +. cost);
      Array.unsafe_set a.attributed 0
        (Array.unsafe_get a.attributed 0 +. cost)
    end
  end

(** Running total of cycles charged to rewrite sites. *)
let attributed_cycles (a : acc) = a.attributed.(0)

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let esc (s : string) : string =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** One paired-run data point: optimization level name and the cycle
    count of the same workload rewritten at that level. *)
type level = { lv_name : string; lv_cycles : float }

let pct ~base v = (v -. base) /. base *. 100.0

(** Render the byte-stable [lfi-overhead/v1] report.

    [symbol_of] maps a (sandbox-relative) site pc to the pretty form
    ["sym+0x12"]; per-symbol folding groups on the part before ['+'].
    [disasm_of] renders the instruction at a site pc.  [guard_insn]
    says whether the instruction at a pc matches the fundamental
    guard pattern that [Metrics] counts — the report carries the sum
    of executions over such sites so it can be reconciled against the
    aggregate guard counter. *)
let report ~(workload : string) ~(uarch : string) ~(total_cycles : float)
    ~(total_insns : int) ~(native_cycles : float option)
    ~(levels : level list) ~(symbol_of : int -> string option)
    ~(disasm_of : int -> string) ~(guard_insn : int -> bool) ?(top = 10)
    (a : acc) : string =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n = Array.length a.sites in
  add "{\n";
  add "  \"schema\": \"lfi-overhead/v1\",\n";
  add "  \"workload\": %S,\n" (esc workload);
  add "  \"uarch\": %S,\n" (esc uarch);
  add "  \"insns\": %d,\n" total_insns;
  add "  \"total_cycles\": %.2f,\n" total_cycles;
  (* pure tax: cycles charged to *inserted* sites; modified sites do
     work the original program needed anyway *)
  let tax = ref 0.0 and attributed = ref 0.0 in
  Array.iteri
    (fun i s ->
      attributed := !attributed +. a.cycles.(i);
      if s.inserted then tax := !tax +. a.cycles.(i))
    a.sites;
  add "  \"attributed_cycles\": %.2f,\n" !attributed;
  add "  \"overhead_cycles\": %.2f,\n" !tax;
  add "  \"overhead_fraction\": %.4f,\n"
    (if total_cycles > 0.0 then !tax /. total_cycles else 0.0);
  (match native_cycles with
  | None -> add "  \"native_cycles\": null,\n"
  | Some c -> add "  \"native_cycles\": %.2f,\n" c);
  add "  \"levels\": [";
  List.iteri
    (fun i lv ->
      if i > 0 then add ", ";
      add "{\"opt\": %S, \"cycles\": %.2f" (esc lv.lv_name) lv.lv_cycles;
      (match native_cycles with
      | Some base when base > 0.0 ->
          add ", \"overhead_pct\": %.2f" (pct ~base lv.lv_cycles)
      | _ -> ());
      add "}")
    levels;
  add "],\n";
  (* per-category rollup, all categories always present in fixed order *)
  add "  \"categories\": [\n";
  List.iteri
    (fun k cat ->
      let sites = ref 0 and ins = ref 0 and ex = ref 0 and cy = ref 0.0 in
      let tax_cy = ref 0.0 in
      Array.iteri
        (fun i s ->
          if s.category = cat then begin
            incr sites;
            if s.inserted then begin
              incr ins;
              tax_cy := !tax_cy +. a.cycles.(i)
            end;
            ex := !ex + a.execs.(i);
            cy := !cy +. a.cycles.(i)
          end)
        a.sites;
      add
        "    {\"category\": %S, \"sites\": %d, \"inserted_sites\": %d, \
         \"execs\": %d, \"cycles\": %.2f, \"tax_cycles\": %.2f, \
         \"share_pct\": %.2f}%s\n"
        (category_name cat) !sites !ins !ex !cy !tax_cy
        (if total_cycles > 0.0 then !cy /. total_cycles *. 100.0 else 0.0)
        (if k < List.length all_categories - 1 then "," else ""))
    all_categories;
  add "  ],\n";
  (* per-symbol rollup of attributed cycles *)
  let by_sym : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i s ->
      if a.execs.(i) > 0 then begin
        let name =
          match symbol_of s.pc with
          | None -> "?"
          | Some pretty -> (
              match String.index_opt pretty '+' with
              | Some j -> String.sub pretty 0 j
              | None -> pretty)
        in
        let ex, cy =
          match Hashtbl.find_opt by_sym name with
          | Some cell -> cell
          | None ->
              let cell = (ref 0, ref 0.0) in
              Hashtbl.add by_sym name cell;
              cell
        in
        ex := !ex + a.execs.(i);
        cy := !cy +. a.cycles.(i)
      end)
    a.sites;
  let syms =
    Hashtbl.fold (fun name (ex, cy) l -> (name, !ex, !cy) :: l) by_sym []
    |> List.sort (fun (n1, _, c1) (n2, _, c2) ->
           match compare c2 c1 with 0 -> compare n1 n2 | c -> c)
  in
  add "  \"symbols\": [\n";
  List.iteri
    (fun i (name, ex, cy) ->
      add "    {\"symbol\": %S, \"execs\": %d, \"cycles\": %.2f}%s\n"
        (esc name) ex cy
        (if i < List.length syms - 1 then "," else ""))
    syms;
  add "  ],\n";
  (* hot sites, ranked by charged cycles *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      match compare a.cycles.(j) a.cycles.(i) with
      | 0 -> compare a.sites.(i).pc a.sites.(j).pc
      | c -> c)
    order;
  let hot =
    Array.to_list order
    |> List.filter (fun i -> a.execs.(i) > 0)
    |> List.filteri (fun k _ -> k < top)
  in
  add "  \"hot_sites\": [\n";
  List.iteri
    (fun k i ->
      let s = a.sites.(i) in
      add
        "    {\"pc\": \"0x%x\", \"category\": %S, \"inserted\": %b, \
         \"orig_pc\": \"0x%x\", \"symbol\": %s, \"execs\": %d, \
         \"cycles\": %.2f, \"insn\": %S}%s\n"
        s.pc
        (category_name s.category)
        s.inserted s.orig_pc
        (match symbol_of s.pc with
        | None -> "null"
        | Some sym -> Printf.sprintf "%S" (esc sym))
        a.execs.(i) a.cycles.(i)
        (esc (disasm_of s.pc))
        (if k < List.length hot - 1 then "," else ""))
    hot;
  add "  ],\n";
  (* reconciliation hook: executions of sites whose instruction is the
     fundamental guard pattern must equal the aggregate [Metrics]
     guard counter for the same run *)
  let guard_execs = ref 0 in
  Array.iteri
    (fun i s -> if guard_insn s.pc then guard_execs := !guard_execs + a.execs.(i))
    a.sites;
  add "  \"guard_insn_execs\": %d\n" !guard_execs;
  add "}\n";
  Buffer.contents buf
