(** Power-of-two-bucketed histograms with allocation-free observation.

    Bucket [i] counts observations [v] with [2^(i-1) <= v < 2^i]
    (bucket 0 counts [v < 1]).  32 buckets cover every simulated-cycle
    latency the runtime can produce; [observe] is a couple of integer
    shifts and stores, so it is safe to call on the runtime-call path
    without disturbing the measurement. *)

let nbuckets = 32

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable max : float;
}

let create () = { buckets = Array.make nbuckets 0; count = 0; sum = 0.0; max = 0.0 }

let reset t =
  Array.fill t.buckets 0 nbuckets 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.max <- 0.0

(* index of the highest set bit, plus one; 0 for n <= 0 *)
let bucket_of (n : int) =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
  if n <= 0 then 0 else min (nbuckets - 1) (go n 0)

let observe t (v : float) =
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v > t.max then t.max <- v;
  let i = bucket_of (int_of_float v) in
  t.buckets.(i) <- t.buckets.(i) + 1

let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

(** Fold [src]'s observations into [dst] (bucket-wise; exact for
    count/sum/max, and percentiles over the merge are as precise as
    over either side). *)
let merge (dst : t) (src : t) =
  for i = 0 to nbuckets - 1 do
    dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
  done;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum +. src.sum;
  if src.max > dst.max then dst.max <- src.max

(** Percentile estimate from the log2 buckets: the exclusive upper
    bound [2^i] of the bucket containing the [q]-quantile observation
    (so p50/p99 are conservative and, being pure bucket arithmetic,
    deterministic across runs).  [q] in [0, 1]; [nan] on an empty
    histogram — there is no 0th observation to report, and serializers
    render the NaN as JSON [null] (the same convention the cost model
    uses for unmeasured pipe baselines). *)
let percentile t (q : float) : float =
  if t.count = 0 then Float.nan
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.count)) in
    let rank = max 1 (min t.count rank) in
    let acc = ref 0 and found = ref (nbuckets - 1) in
    (try
       for i = 0 to nbuckets - 1 do
         acc := !acc + t.buckets.(i);
         if !acc >= rank then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    float_of_int (1 lsl !found)
  end

(** JSON object: count/mean/max plus the non-empty buckets as
    [[upper_bound, count], ...] pairs (upper bound exclusive). *)
let to_json t : string =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"count\": %d, \"mean\": %.1f, \"max\": %.1f, \"buckets\": ["
       t.count (mean t) t.max);
  let first = ref true in
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        if not !first then Buffer.add_string b ", ";
        first := false;
        Buffer.add_string b (Printf.sprintf "[%d, %d]" (1 lsl i) n)
      end)
    t.buckets;
  Buffer.add_string b "]}";
  Buffer.contents b
