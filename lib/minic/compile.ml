(** MiniC → ARM64 assembly backend (the "Clang" of the pipeline).

    Produces GNU assembly text in the subset of {!Lfi_arm64}.  The
    backend deliberately mirrors what an optimizing C compiler does
    where it matters to the SFI experiments:

    - locals live in callee-saved registers where possible;
    - address arithmetic is fused into the Table 1 addressing modes
      ([\[xN, #i\]], [\[xN, xM, lsl #s\]]), which is exactly the code
      shape whose guarding cost Figure 3 measures;
    - the reserved registers x18/x21-x24 are never used, like a
      compiler invoked with the paper's [-ffixed-reg] flags;
    - system calls are emitted as [svc #n]; the LFI rewriter lowers
      them to runtime-call-table sequences (§4.4). *)

open Lfi_arm64
open Ast

exception Error of string

let errorf fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* Register conventions (AAPCS64 minus the LFI reserved registers). *)
let int_arg_regs = [| 0; 1; 2; 3; 4; 5; 6; 7 |]
let int_scratch = [ 9; 10; 11; 12; 13; 14; 15 ]
let int_homes = [ 19; 20; 25; 26; 27; 28 ]
let fp_scratch = [ 16; 17; 18; 19; 20; 21; 22; 23 ]
let fp_homes = [ 8; 9; 10; 11; 12; 13; 14; 15 ]

type loc =
  | LReg of int  (** integer home register xN *)
  | LFreg of int  (** float home register dN *)
  | LStack of int  (** frame offset (from sp) *)
  | LStackF of int

type value = VInt of int  (** scratch xN *) | VFlt of int  (** scratch dN *)

type fctx = {
  prog : program;
  fenv : (string * ty) list;
  fname : string;
  env : (string * ty) list ref;  (** variable types *)
  locs : (string, loc) Hashtbl.t;
  mutable scratch : int list;
  mutable fscratch : int list;
  temp_base : int;  (** frame offset of the spill-temp area *)
  mutable temp_used : int;
  mutable label_counter : int;
  mutable out : Source.item list;  (** reversed *)
  mutable loop_stack : (string * string) list;  (** break, continue *)
  float_pool : (string, string) Hashtbl.t;  (** bits-string -> label *)
  mutable float_pool_order : (string * float) list;
  epilogue : string;
}

let emit ctx i = ctx.out <- Source.Insn i :: ctx.out
let emit_label ctx l = ctx.out <- Source.Label l :: ctx.out

let fresh_label ctx prefix =
  ctx.label_counter <- ctx.label_counter + 1;
  Printf.sprintf ".L%s_%s%d" ctx.fname prefix ctx.label_counter

(* scratch management *)
let alloc_int ctx =
  match ctx.scratch with
  | r :: tl ->
      ctx.scratch <- tl;
      r
  | [] -> errorf "%s: integer expression too deep" ctx.fname

let alloc_fp ctx =
  match ctx.fscratch with
  | r :: tl ->
      ctx.fscratch <- tl;
      r
  | [] -> errorf "%s: float expression too deep" ctx.fname

let free ctx = function
  | VInt r -> if List.mem r int_scratch then ctx.scratch <- r :: ctx.scratch
  | VFlt r -> if List.mem r fp_scratch then ctx.fscratch <- r :: ctx.fscratch

let x r = Reg.x r
let w r = Reg.w r
let d r = Reg.Fp.v Reg.Fp.D r

let mov_reg dst src =
  Insn.Alu
    { op = Insn.ORR; flags = false; dst = x dst; src = Reg.xzr;
      op2 = Insn.Sh (x src, Insn.Lsl, 0) }

let fmov_reg dst src = Insn.Fop1 { op = Insn.FMOV; dst = d dst; src = d src }

(** Materialize an arbitrary integer constant with movz/movn/movk.
    Chunks are computed through Int64 so negative values keep their
    full two's-complement bit pattern. *)
let emit_const ctx (dst : int) (v : int) =
  if v >= 0 && v < 65536 then
    emit ctx (Insn.Mov { op = Insn.MOVZ; dst = x dst; imm = v; hw = 0 })
  else if v < 0 && lnot v < 65536 then
    emit ctx (Insn.Mov { op = Insn.MOVN; dst = x dst; imm = lnot v; hw = 0 })
  else begin
    let v64 = Int64.of_int v in
    let chunk k =
      Int64.to_int
        (Int64.logand (Int64.shift_right_logical v64 (16 * k)) 0xFFFFL)
    in
    let first = ref true in
    for k = 0 to 3 do
      let c = chunk k in
      if c <> 0 || (k = 3 && !first) then begin
        emit ctx
          (Insn.Mov { op = (if !first then Insn.MOVZ else Insn.MOVK);
                      dst = x dst; imm = c; hw = k });
        first := false
      end
    done;
    if !first then
      emit ctx (Insn.Mov { op = Insn.MOVZ; dst = x dst; imm = 0; hw = 0 })
  end

let float_label ctx (v : float) : string =
  let key = Int64.to_string (Int64.bits_of_float v) in
  match Hashtbl.find_opt ctx.float_pool key with
  | Some l -> l
  | None ->
      let l = Printf.sprintf ".Lfp_%s_%d" ctx.fname (Hashtbl.length ctx.float_pool) in
      Hashtbl.replace ctx.float_pool key l;
      ctx.float_pool_order <- (l, v) :: ctx.float_pool_order;
      l

(* frame offsets are always within add/sub immediate range by
   construction (frames are small) *)
let str_frame ctx reg off =
  emit ctx
    (Insn.Str { sz = Insn.X; src = x reg; addr = Insn.Imm_off (Reg.sp, off) })

let ldr_frame ctx reg off =
  emit ctx
    (Insn.Ldr { sz = Insn.X; signed = false; dst = x reg;
                addr = Insn.Imm_off (Reg.sp, off) })

let fstr_frame ctx reg off =
  emit ctx (Insn.Fstr { src = d reg; addr = Insn.Imm_off (Reg.sp, off) })

let fldr_frame ctx reg off =
  emit ctx (Insn.Fldr { dst = d reg; addr = Insn.Imm_off (Reg.sp, off) })

let alloc_temp ctx =
  let slot = ctx.temp_base + (8 * ctx.temp_used) in
  ctx.temp_used <- ctx.temp_used + 1;
  if ctx.temp_used > 32 then errorf "%s: out of spill temps" ctx.fname;
  slot

let free_temp ctx = ctx.temp_used <- ctx.temp_used - 1

let rec contains_call = function
  | Call _ | Call_indirect _ | Syscall _ -> true
  | Bin (_, a, b) -> contains_call a || contains_call b
  | Un (_, a) | Cvt (_, a) | Load (_, a) -> contains_call a
  | Int _ | Flt _ | Var _ | Addr _ -> false

let typeof ctx e = Ast.typeof ~fenv:ctx.fenv ~env:!(ctx.env) e

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

let cond_of_binop = function
  | Eq -> Some Insn.EQ
  | Ne -> Some Insn.NE
  | Lt -> Some Insn.LT
  | Le -> Some Insn.LE
  | Gt -> Some Insn.GT
  | Ge -> Some Insn.GE
  | Ult -> Some Insn.CC
  | _ -> None

let fcond_of_binop = function
  | FEq -> Some Insn.EQ
  | FLt -> Some Insn.MI
  | FLe -> Some Insn.LS
  | _ -> None

let log2_opt n =
  let rec go i = if 1 lsl i = n then Some i else if i > 62 then None else go (i + 1) in
  if n <= 0 then None else go 0

(** Compile [e] into a freshly allocated integer scratch register. *)
let rec compile_int ctx (e : expr) : int =
  match e with
  | Int v ->
      let r = alloc_int ctx in
      emit_const ctx r v;
      r
  | Var name -> (
      match Hashtbl.find_opt ctx.locs name with
      | Some (LReg home) ->
          let r = alloc_int ctx in
          emit ctx (mov_reg r home);
          r
      | Some (LStack off) ->
          let r = alloc_int ctx in
          ldr_frame ctx r off;
          r
      | Some (LFreg _ | LStackF _) -> errorf "%s is a float" name
      | None -> errorf "unbound variable %s" name)
  | Addr sym ->
      let r = alloc_int ctx in
      emit ctx (Insn.Adr { page = false; dst = x r; target = Insn.Sym sym });
      r
  | Load (elt, a) -> compile_load ctx elt a
  | Bin (op, a, b) -> compile_int_bin ctx op a b
  | Un (Neg, a) ->
      let ra = compile_int ctx a in
      let r = alloc_int ctx in
      emit ctx
        (Insn.Alu { op = Insn.SUB; flags = false; dst = x r; src = Reg.xzr;
                    op2 = Insn.Sh (x ra, Insn.Lsl, 0) });
      free ctx (VInt ra);
      r
  | Un (Not, a) ->
      let ra = compile_int ctx a in
      let r = alloc_int ctx in
      emit ctx
        (Insn.Alu { op = Insn.ORN; flags = false; dst = x r; src = Reg.xzr;
                    op2 = Insn.Sh (x ra, Insn.Lsl, 0) });
      free ctx (VInt ra);
      r
  | Un ((FNeg | FSqrt | FAbs), _) -> errorf "float expression in int context"
  | Cvt (FtoI, a) ->
      let fa = compile_float ctx a in
      let r = alloc_int ctx in
      emit ctx (Insn.Fcvtzs { signed = true; dst = x r; src = d fa });
      free ctx (VFlt fa);
      r
  | Cvt (ItoF, _) -> errorf "float expression in int context"
  | Flt _ -> errorf "float literal in int context"
  | Call (name, args) ->
      compile_call ctx (`Direct name) args;
      let r = alloc_int ctx in
      emit ctx (mov_reg r 0);
      r
  | Call_indirect (fp, args, _) ->
      compile_call ctx (`Indirect fp) args;
      let r = alloc_int ctx in
      emit ctx (mov_reg r 0);
      r
  | Syscall (k, args) ->
      compile_call ctx (`Sys k) args;
      let r = alloc_int ctx in
      emit ctx (mov_reg r 0);
      r

and compile_int_bin ctx op a b : int =
  match op with
  | FAdd | FSub | FMul | FDiv -> errorf "float expression in int context"
  | Eq | Ne | Lt | Le | Gt | Ge | Ult ->
      (* comparison as a value: cmp ; cset *)
      let cond = Option.get (cond_of_binop op) in
      compile_compare ctx a b;
      let r = alloc_int ctx in
      emit ctx
        (Insn.Csel
           { op = Insn.CSINC; dst = x r; src1 = Reg.xzr; src2 = Reg.xzr;
             cond = Insn.invert_cond cond });
      r
  | FEq | FLt | FLe ->
      let cond = Option.get (fcond_of_binop op) in
      compile_fcompare ctx a b;
      let r = alloc_int ctx in
      emit ctx
        (Insn.Csel
           { op = Insn.CSINC; dst = x r; src1 = Reg.xzr; src2 = Reg.xzr;
             cond = Insn.invert_cond cond });
      r
  | Add | Sub | And | Or | Xor -> (
      let alu_op =
        match op with
        | Add -> Insn.ADD
        | Sub -> Insn.SUB
        | And -> Insn.AND
        | Or -> Insn.ORR
        | Xor -> Insn.EOR
        | _ -> assert false
      in
      (* immediate forms *)
      match (op, b) with
      | (Add | Sub), Int v when v >= 0 && v < 4096 ->
          let ra = compile_int ctx a in
          let r = alloc_int ctx in
          emit ctx
            (Insn.Alu { op = alu_op; flags = false; dst = x r; src = x ra;
                        op2 = Insn.Imm (v, 0) });
          free ctx (VInt ra);
          r
      | _ ->
          let ra, rb = compile_pair ctx a b in
          free ctx (VInt ra);
          free ctx (VInt rb);
          let r = alloc_int ctx in
          emit ctx
            (Insn.Alu { op = alu_op; flags = false; dst = x r; src = x ra;
                        op2 = Insn.Sh (x rb, Insn.Lsl, 0) });
          r)
  | Shl | Shr | Lshr -> (
      let k =
        match op with Shl -> Insn.Lsl | Shr -> Insn.Asr | _ -> Insn.Lsr
      in
      match b with
      | Int v when v >= 0 && v < 64 ->
          let ra = compile_int ctx a in
          let r = alloc_int ctx in
          (match k with
          | Insn.Lsl ->
              emit ctx
                (Insn.Bitfield { op = Insn.UBFM; dst = x r; src = x ra;
                                 immr = (64 - v) mod 64; imms = 63 - v })
          | Insn.Lsr ->
              emit ctx
                (Insn.Bitfield { op = Insn.UBFM; dst = x r; src = x ra;
                                 immr = v; imms = 63 })
          | _ ->
              emit ctx
                (Insn.Bitfield { op = Insn.SBFM; dst = x r; src = x ra;
                                 immr = v; imms = 63 }));
          free ctx (VInt ra);
          r
      | _ ->
          let ra, rb = compile_pair ctx a b in
          free ctx (VInt ra);
          free ctx (VInt rb);
          let r = alloc_int ctx in
          emit ctx (Insn.Shiftv { op = k; dst = x r; src = x ra; amount = x rb });
          r)
  | Mul -> (
      match b with
      | Int v when log2_opt v <> None ->
          let s = Option.get (log2_opt v) in
          compile_int_bin ctx Shl a (Int s)
      | _ ->
          let ra, rb = compile_pair ctx a b in
          free ctx (VInt ra);
          free ctx (VInt rb);
          let r = alloc_int ctx in
          emit ctx
            (Insn.Madd { sub = false; dst = x r; src1 = x ra; src2 = x rb;
                         acc = Reg.xzr });
          r)
  | Div ->
      let ra, rb = compile_pair ctx a b in
      free ctx (VInt ra);
      free ctx (VInt rb);
      let r = alloc_int ctx in
      emit ctx (Insn.Div { signed = true; dst = x r; src1 = x ra; src2 = x rb });
      r
  | Rem ->
      (* q = a / b ; result = a - q*b, computed in place over q *)
      let ra, rb = compile_pair ctx a b in
      let q = alloc_int ctx in
      emit ctx (Insn.Div { signed = true; dst = x q; src1 = x ra; src2 = x rb });
      emit ctx
        (Insn.Madd { sub = true; dst = x q; src1 = x q; src2 = x rb;
                     acc = x ra });
      free ctx (VInt ra);
      free ctx (VInt rb);
      q

(** Compile two operands.  The first is spilled to a frame slot while
    the second is evaluated when (a) the second contains a call (calls
    clobber the scratch registers) or (b) scratch pressure is high
    (deep right-leaning expressions would otherwise exhaust the pool —
    this is the register allocator's spilling, done eagerly). *)
and compile_pair ctx a b : int * int =
  if contains_call b || List.length ctx.scratch <= 2 then begin
    let ra = compile_int ctx a in
    let slot = alloc_temp ctx in
    str_frame ctx ra slot;
    free ctx (VInt ra);
    let rb = compile_int ctx b in
    let ra' = alloc_int ctx in
    ldr_frame ctx ra' slot;
    free_temp ctx;
    (ra', rb)
  end
  else begin
    let ra = compile_int ctx a in
    let rb = compile_int ctx b in
    (ra, rb)
  end

and compile_fpair ctx a b : int * int =
  if contains_call b || List.length ctx.fscratch <= 2 then begin
    let ra = compile_float ctx a in
    let slot = alloc_temp ctx in
    fstr_frame ctx ra slot;
    free ctx (VFlt ra);
    let rb = compile_float ctx b in
    let ra' = alloc_fp ctx in
    fldr_frame ctx ra' slot;
    free_temp ctx;
    (ra', rb)
  end
  else begin
    let ra = compile_float ctx a in
    let rb = compile_float ctx b in
    (ra, rb)
  end

(** Produce a register holding [e] for use as an address operand.
    A variable living in a callee-saved home register is used directly
    (no copy) — this is what lets consecutive [\[xN, #i\]] accesses
    share a base register, the pattern §4.3's redundant guard
    elimination hoists. *)
and address_operand ctx (e : expr) : int * value list =
  match e with
  | Var name -> (
      match Hashtbl.find_opt ctx.locs name with
      | Some (LReg home) -> (home, [])
      | _ ->
          let r = compile_int ctx e in
          (r, [ VInt r ]))
  | _ ->
      let r = compile_int ctx e in
      (r, [ VInt r ])

(** Address-mode selection for loads/stores: fuse [base + idx*size]
    and [base + const] into Table 1 addressing modes. *)
and compile_addr ctx (elt : elt) (a : expr) : Insn.addr * value list =
  let size = elt_size elt in
  let reg_pair base idxe shift =
    (* home registers survive calls, so the spill dance is only
       needed when both operands live in scratch *)
    if contains_call idxe && not (is_home_var ctx base) then begin
      let rb, ri = compile_pair ctx base idxe in
      (Insn.Reg_off (x rb, x ri, Insn.Uxtx, shift), [ VInt rb; VInt ri ])
    end
    else begin
      let ri, u2 = address_operand ctx idxe in
      let rb, u1 = address_operand ctx base in
      (Insn.Reg_off (x rb, x ri, Insn.Uxtx, shift), u1 @ u2)
    end
  in
  match a with
  | Bin (Add, base, Int k) when k >= 0 && k mod size = 0 && k / size < 4096 ->
      let rb, used = address_operand ctx base in
      (Insn.Imm_off (x rb, k), used)
  | Bin (Add, base, Bin (Mul, idxe, Int s))
    when s = size && log2_opt s <> None ->
      reg_pair base idxe (Option.get (log2_opt s))
  | Bin (Add, base, idxe) when typeof ctx idxe = Int && elt = U8 ->
      reg_pair base idxe 0
  | _ ->
      let rb, used = address_operand ctx a in
      (Insn.Imm_off (x rb, 0), used)

and is_home_var ctx = function
  | Var name -> (
      match Hashtbl.find_opt ctx.locs name with
      | Some (LReg _) -> true
      | _ -> false)
  | _ -> false

and compile_load ctx (elt : elt) (a : expr) : int =
  let addr, used = compile_addr ctx elt a in
  List.iter (free ctx) used;
  let r = alloc_int ctx in
  (match elt with
  | U8 ->
      emit ctx (Insn.Ldr { sz = Insn.B; signed = false; dst = w r; addr })
  | U16 ->
      emit ctx (Insn.Ldr { sz = Insn.H; signed = false; dst = w r; addr })
  | I32 ->
      emit ctx (Insn.Ldr { sz = Insn.W; signed = true; dst = x r; addr })
  | I64 -> emit ctx (Insn.Ldr { sz = Insn.X; signed = false; dst = x r; addr })
  | F32 | F64 -> errorf "float load in int context");
  r

and compile_fload ctx (elt : elt) (a : expr) : int =
  let addr, used = compile_addr ctx elt a in
  List.iter (free ctx) used;
  let r = alloc_fp ctx in
  (match elt with
  | F64 -> emit ctx (Insn.Fldr { dst = d r; addr })
  | F32 ->
      let s = Reg.Fp.v Reg.Fp.S r in
      emit ctx (Insn.Fldr { dst = s; addr });
      emit ctx (Insn.Fcvt { dst = d r; src = s })
  | _ -> errorf "int load in float context");
  r

(** Compile a float expression into a fresh float scratch register. *)
and compile_float ctx (e : expr) : int =
  match e with
  | Flt v ->
      let r = alloc_fp ctx in
      let lbl = float_label ctx v in
      let ra = alloc_int ctx in
      emit ctx (Insn.Adr { page = false; dst = x ra; target = Insn.Sym lbl });
      emit ctx (Insn.Fldr { dst = d r; addr = Insn.Imm_off (x ra, 0) });
      free ctx (VInt ra);
      r
  | Var name -> (
      match Hashtbl.find_opt ctx.locs name with
      | Some (LFreg home) ->
          let r = alloc_fp ctx in
          emit ctx (fmov_reg r home);
          r
      | Some (LStackF off) ->
          let r = alloc_fp ctx in
          fldr_frame ctx r off;
          r
      | Some (LReg _ | LStack _) -> errorf "%s is an int" name
      | None -> errorf "unbound variable %s" name)
  | Load (elt, a) -> compile_fload ctx elt a
  | Bin ((FAdd | FSub | FMul | FDiv) as op, a, b) ->
      let fop =
        match op with
        | FAdd -> Insn.FADD
        | FSub -> Insn.FSUB
        | FMul -> Insn.FMUL
        | _ -> Insn.FDIV
      in
      let ra, rb = compile_fpair ctx a b in
      free ctx (VFlt ra);
      free ctx (VFlt rb);
      let r = alloc_fp ctx in
      emit ctx (Insn.Fop2 { op = fop; dst = d r; src1 = d ra; src2 = d rb });
      r
  | Un (FNeg, a) ->
      let ra = compile_float ctx a in
      let r = alloc_fp ctx in
      emit ctx (Insn.Fop1 { op = Insn.FNEG; dst = d r; src = d ra });
      free ctx (VFlt ra);
      r
  | Un (FSqrt, a) ->
      let ra = compile_float ctx a in
      let r = alloc_fp ctx in
      emit ctx (Insn.Fop1 { op = Insn.FSQRT; dst = d r; src = d ra });
      free ctx (VFlt ra);
      r
  | Un (FAbs, a) ->
      let ra = compile_float ctx a in
      let r = alloc_fp ctx in
      emit ctx (Insn.Fop1 { op = Insn.FABS; dst = d r; src = d ra });
      free ctx (VFlt ra);
      r
  | Cvt (ItoF, a) ->
      let ra = compile_int ctx a in
      let r = alloc_fp ctx in
      emit ctx (Insn.Scvtf { signed = true; dst = d r; src = x ra });
      free ctx (VInt ra);
      r
  | Call (name, args) ->
      compile_call ctx (`Direct name) args;
      let r = alloc_fp ctx in
      emit ctx (fmov_reg r 0);
      r
  | Call_indirect (fp, args, _) ->
      compile_call ctx (`Indirect fp) args;
      let r = alloc_fp ctx in
      emit ctx (fmov_reg r 0);
      r
  | _ -> errorf "int expression in float context"

(** Evaluate arguments and perform a call; the result is left in x0/d0. *)
and compile_call ctx (target : [ `Direct of string | `Indirect of expr | `Sys of int ])
    (args : expr list) =
  if List.length args > 8 then errorf "too many arguments";
  let any_calls = List.exists contains_call args in
  let fp_slot =
    match target with
    | `Indirect fp when any_calls || contains_call fp ->
        let r = compile_int ctx fp in
        let slot = alloc_temp ctx in
        str_frame ctx r slot;
        free ctx (VInt r);
        `Slot slot
    | `Indirect fp -> `Expr fp
    | _ -> `None
  in
  let arg_tys = List.map (fun a -> typeof ctx a) args in
  if any_calls then begin
    (* evaluate into spill temps first *)
    let slots =
      List.map
        (fun a ->
          match typeof ctx a with
          | Int ->
              let r = compile_int ctx a in
              let s = alloc_temp ctx in
              str_frame ctx r s;
              free ctx (VInt r);
              (s, (Int : ty))
          | Float ->
              let r = compile_float ctx a in
              let s = alloc_temp ctx in
              fstr_frame ctx r s;
              free ctx (VFlt r);
              (s, (Float : ty)))
        args
    in
    let ii = ref 0 and fi = ref 0 in
    List.iter
      (fun ((s : int), (t : ty)) ->
        match t with
        | Int ->
            ldr_frame ctx int_arg_regs.(!ii) s;
            incr ii
        | Float ->
            fldr_frame ctx !fi s;
            incr fi)
      slots;
    List.iter (fun _ -> free_temp ctx) slots
  end
  else begin
    (* direct: arguments cannot clobber x0..x7/d0..d7 because scratch
       evaluation only touches x9-x15 / d16-d23 and homes *)
    let ii = ref 0 and fi = ref 0 in
    List.iter
      (fun a ->
        match typeof ctx a with
        | Int ->
            let r = compile_int ctx a in
            emit ctx (mov_reg int_arg_regs.(!ii) r);
            free ctx (VInt r);
            incr ii
        | Float ->
            let r = compile_float ctx a in
            emit ctx (fmov_reg !fi r);
            free ctx (VFlt r);
            incr fi)
      args
  end;
  ignore arg_tys;
  match target with
  | `Direct name -> emit ctx (Insn.Bl (Insn.Sym name))
  | `Sys k -> emit ctx (Insn.Svc k)
  | `Indirect _ -> (
      match fp_slot with
      | `Slot s ->
          let r = alloc_int ctx in
          ldr_frame ctx r s;
          free_temp ctx;
          emit ctx (Insn.Blr (x r));
          free ctx (VInt r)
      | `Expr fp ->
          let r = compile_int ctx fp in
          emit ctx (Insn.Blr (x r));
          free ctx (VInt r)
      | `None -> assert false)

(** cmp a, b (integer). *)
and compile_compare ctx a b =
  match b with
  | Int v when v >= 0 && v < 4096 ->
      let ra = compile_int ctx a in
      emit ctx
        (Insn.Alu { op = Insn.SUB; flags = true; dst = Reg.xzr; src = x ra;
                    op2 = Insn.Imm (v, 0) });
      free ctx (VInt ra)
  | _ ->
      let ra, rb = compile_pair ctx a b in
      emit ctx
        (Insn.Alu { op = Insn.SUB; flags = true; dst = Reg.xzr; src = x ra;
                    op2 = Insn.Sh (x rb, Insn.Lsl, 0) });
      free ctx (VInt ra);
      free ctx (VInt rb)

and compile_fcompare ctx a b =
  let ra, rb = compile_fpair ctx a b in
  emit ctx (Insn.Fcmp { src1 = d ra; src2 = Some (d rb) });
  free ctx (VFlt ra);
  free ctx (VFlt rb)

(** Compile [e] as a branch condition: jump to [target] when [e] is
    false (if [jump_if_false]) or true. *)
let compile_cond ctx (e : expr) ~(target : string) ~(jump_if_false : bool) =
  let bcond c =
    let c = if jump_if_false then Insn.invert_cond c else c in
    emit ctx (Insn.Bcond (c, Insn.Sym target))
  in
  match e with
  | Bin (op, a, b) when cond_of_binop op <> None ->
      compile_compare ctx a b;
      bcond (Option.get (cond_of_binop op))
  | Bin (op, a, b) when fcond_of_binop op <> None ->
      compile_fcompare ctx a b;
      bcond (Option.get (fcond_of_binop op))
  | _ ->
      let r = compile_int ctx e in
      emit ctx
        (Insn.Cbz { nz = not jump_if_false; reg = x r;
                    target = Insn.Sym target });
      free ctx (VInt r)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let assign_to ctx name (value : value) =
  match (Hashtbl.find_opt ctx.locs name, value) with
  | Some (LReg home), VInt r -> emit ctx (mov_reg home r)
  | Some (LStack off), VInt r -> str_frame ctx r off
  | Some (LFreg home), VFlt r -> emit ctx (fmov_reg home r)
  | Some (LStackF off), VFlt r -> fstr_frame ctx r off
  | Some _, _ -> errorf "type mismatch assigning %s" name
  | None, _ -> errorf "unbound variable %s" name

let rec compile_store_var ctx name e =
  let t : ty =
    match Hashtbl.find_opt ctx.locs name with
    | Some (LReg _ | LStack _) -> Int
    | Some (LFreg _ | LStackF _) -> Float
    | None -> errorf "unbound variable %s" name
  in
  match t with
  | Int ->
      let r = compile_int ctx e in
      assign_to ctx name (VInt r);
      free ctx (VInt r)
  | Float ->
      let r = compile_float ctx e in
      assign_to ctx name (VFlt r);
      free ctx (VFlt r)

and compile_stmt ctx (s : stmt) =
  match s with
  | Decl (name, ty, e) ->
      ctx.env := (name, ty) :: !(ctx.env);
      compile_store_var ctx name e
  | Assign (name, e) -> compile_store_var ctx name e
  | Store (elt, a, value) ->
      (* The reference interpreter evaluates the address before the
         value, and registers holding one side must survive any calls
         in the other (calls clobber every scratch register).  A pure
         value commutes with the address computation, so only the
         call-carrying shapes need the frame-slot dance of
         compile_pair. *)
      let is_float = match elt with F64 | F32 -> true | _ -> false in
      let emit_store rv addr =
        match elt with
        | F64 -> emit ctx (Insn.Fstr { src = d rv; addr })
        | F32 ->
            let sreg = Reg.Fp.v Reg.Fp.S rv in
            emit ctx (Insn.Fcvt { dst = sreg; src = d rv });
            emit ctx (Insn.Fstr { src = sreg; addr })
        | U8 -> emit ctx (Insn.Str { sz = Insn.B; src = w rv; addr })
        | U16 -> emit ctx (Insn.Str { sz = Insn.H; src = w rv; addr })
        | I32 -> emit ctx (Insn.Str { sz = Insn.W; src = w rv; addr })
        | I64 -> emit ctx (Insn.Str { sz = Insn.X; src = x rv; addr })
      in
      let compile_value () =
        if is_float then
          let r = compile_float ctx value in
          (r, VFlt r)
        else
          let r = compile_int ctx value in
          (r, VInt r)
      in
      if contains_call value then begin
        (* interp order: the address's own calls run first, then the
           value's.  Materialize the address flat and park it in a
           frame slot across the value computation. *)
        let ra = compile_int ctx a in
        let slot = alloc_temp ctx in
        str_frame ctx ra slot;
        free ctx (VInt ra);
        let rv, v = compile_value () in
        let ra' = alloc_int ctx in
        ldr_frame ctx ra' slot;
        free_temp ctx;
        emit_store rv (Insn.Imm_off (x ra', 0));
        free ctx (VInt ra');
        free ctx v
      end
      else if contains_call a then begin
        (* pure value: evaluating it first is unobservable, but it must
           sit in a frame slot across the address's calls *)
        let rv, v = compile_value () in
        let slot = alloc_temp ctx in
        if is_float then fstr_frame ctx rv slot else str_frame ctx rv slot;
        free ctx v;
        let addr, used = compile_addr ctx elt a in
        let rv' = if is_float then alloc_fp ctx else alloc_int ctx in
        if is_float then fldr_frame ctx rv' slot else ldr_frame ctx rv' slot;
        free_temp ctx;
        List.iter (free ctx) used;
        emit_store rv' addr;
        free ctx (if is_float then VFlt rv' else VInt rv')
      end
      else begin
        let rv, v = compile_value () in
        let addr, used = compile_addr ctx elt a in
        List.iter (free ctx) used;
        emit_store rv addr;
        free ctx v
      end
  | If (c, then_s, else_s) ->
      let lelse = fresh_label ctx "else" and lend = fresh_label ctx "endif" in
      compile_cond ctx c ~target:lelse ~jump_if_false:true;
      List.iter (compile_stmt ctx) then_s;
      if else_s <> [] then begin
        emit ctx (Insn.B (Insn.Sym lend));
        emit_label ctx lelse;
        List.iter (compile_stmt ctx) else_s;
        emit_label ctx lend
      end
      else emit_label ctx lelse
  | While (c, body) ->
      let lcond = fresh_label ctx "while" and lend = fresh_label ctx "wend" in
      emit_label ctx lcond;
      compile_cond ctx c ~target:lend ~jump_if_false:true;
      ctx.loop_stack <- (lend, lcond) :: ctx.loop_stack;
      List.iter (compile_stmt ctx) body;
      ctx.loop_stack <- List.tl ctx.loop_stack;
      emit ctx (Insn.B (Insn.Sym lcond));
      emit_label ctx lend
  | Return e ->
      (match typeof ctx e with
      | Int ->
          let r = compile_int ctx e in
          emit ctx (mov_reg 0 r);
          free ctx (VInt r)
      | Float ->
          let r = compile_float ctx e in
          emit ctx (fmov_reg 0 r);
          free ctx (VFlt r));
      emit ctx (Insn.B (Insn.Sym ctx.epilogue))
  | Expr e ->
      (match typeof ctx e with
      | Int ->
          let r = compile_int ctx e in
          free ctx (VInt r)
      | Float ->
          let r = compile_float ctx e in
          free ctx (VFlt r))
  | Break -> (
      match ctx.loop_stack with
      | (lend, _) :: _ -> emit ctx (Insn.B (Insn.Sym lend))
      | [] -> errorf "break outside loop")
  | Continue -> (
      match ctx.loop_stack with
      | (_, lcond) :: _ -> emit ctx (Insn.B (Insn.Sym lcond))
      | [] -> errorf "continue outside loop")


(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)
(* ------------------------------------------------------------------ *)

let rec collect_decls (acc : (string * ty) list) (stmts : stmt list) =
  List.fold_left
    (fun acc s ->
      match s with
      | Decl (n, t, _) -> if List.mem_assoc n acc then acc else (n, t) :: acc
      | If (_, a, b) -> collect_decls (collect_decls acc a) b
      | While (_, b) -> collect_decls acc b
      | _ -> acc)
    acc stmts

(** Estimated dynamic use count per variable: static occurrences
    weighted by loop depth.  Registers are assigned to the
    highest-scoring variables, the way a graph-coloring allocator ends
    up prioritizing loop-carried values. *)
let variable_scores (f : func) : (string, float) Hashtbl.t =
  let scores = Hashtbl.create 16 in
  let bump name w =
    Hashtbl.replace scores name
      (w +. Option.value (Hashtbl.find_opt scores name) ~default:0.0)
  in
  let rec expr_uses w (e : expr) =
    match e with
    | Var n -> bump n w
    | Bin (_, a, b) -> expr_uses w a; expr_uses w b
    | Un (_, a) | Cvt (_, a) | Load (_, a) -> expr_uses w a
    | Call (_, args) | Syscall (_, args) -> List.iter (expr_uses w) args
    | Call_indirect (fp, args, _) ->
        expr_uses w fp;
        List.iter (expr_uses w) args
    | Int _ | Flt _ | Addr _ -> ()
  in
  let rec stmt_uses w (s : stmt) =
    match s with
    | Decl (n, _, e) | Assign (n, e) ->
        bump n w;
        expr_uses w e
    | Store (_, a, value) -> expr_uses w a; expr_uses w value
    | If (c, t, e) ->
        expr_uses w c;
        List.iter (stmt_uses w) t;
        List.iter (stmt_uses w) e
    | While (c, b) ->
        expr_uses (w *. 8.0) c;
        List.iter (stmt_uses (w *. 8.0)) b
    | Return e | Expr e -> expr_uses w e
    | Break | Continue -> ()
  in
  List.iter (stmt_uses 1.0) f.body;
  (* parameters get a small bonus: keeping them in registers avoids
     the incoming spill *)
  List.iter (fun (n, _) -> bump n 0.5) f.params;
  scores

let compile_func (prog : program) (fenv : (string * ty) list) (f : func) :
    Source.item list =
  (* variable homes, hottest variables first *)
  let scores = variable_scores f in
  let score n = Option.value (Hashtbl.find_opt scores n) ~default:0.0 in
  let all_vars =
    collect_decls (List.rev f.params) f.body
    |> List.rev
    |> List.stable_sort (fun (a, _) (b, _) -> compare (score b) (score a))
  in
  let locs = Hashtbl.create 16 in
  let int_homes_left = ref int_homes and fp_homes_left = ref fp_homes in
  let stack_off = ref 0 in
  let used_int_homes = ref [] and used_fp_homes = ref [] in
  (* stack slot area starts after the saved-register area; computed
     below, so record relative slots first *)
  let stack_slots = ref [] in
  List.iter
    (fun (name, (t : ty)) ->
      match t with
      | Int -> (
          match !int_homes_left with
          | h :: tl ->
              int_homes_left := tl;
              used_int_homes := h :: !used_int_homes;
              Hashtbl.replace locs name (LReg h)
          | [] ->
              stack_slots := (name, t, !stack_off) :: !stack_slots;
              stack_off := !stack_off + 8)
      | Float -> (
          match !fp_homes_left with
          | h :: tl ->
              fp_homes_left := tl;
              used_fp_homes := h :: !used_fp_homes;
              Hashtbl.replace locs name (LFreg h)
          | [] ->
              stack_slots := (name, t, !stack_off) :: !stack_slots;
              stack_off := !stack_off + 8))
    all_vars;
  let n_int_saves = List.length !used_int_homes in
  let n_fp_saves = List.length !used_fp_homes in
  let save_area = 16 + (8 * (n_int_saves + n_fp_saves)) in
  let save_area = (save_area + 15) / 16 * 16 in
  let locals_base = save_area in
  let temp_base = locals_base + !stack_off in
  let frame = (temp_base + (32 * 8) + 15) / 16 * 16 in
  List.iter
    (fun (name, (t : ty), rel) ->
      Hashtbl.replace locs name
        (match t with
        | Int -> LStack (locals_base + rel)
        | Float -> LStackF (locals_base + rel)))
    !stack_slots;
  let ctx =
    {
      prog;
      fenv;
      fname = f.name;
      env = ref (List.map (fun (n, t) -> (n, t)) all_vars);
      locs;
      scratch = int_scratch;
      fscratch = fp_scratch;
      temp_base;
      temp_used = 0;
      label_counter = 0;
      out = [];
      loop_stack = [];
      float_pool = Hashtbl.create 8;
      float_pool_order = [];
      epilogue = Printf.sprintf ".L%s_ret" f.name;
    }
  in
  emit_label ctx f.name;
  (* prologue *)
  emit ctx
    (Insn.Alu { op = Insn.SUB; flags = false; dst = Reg.sp; src = Reg.sp;
                op2 = Insn.Imm (frame, 0) });
  emit ctx
    (Insn.Stp { w = Reg.W64; r1 = Reg.x 29; r2 = Reg.x 30;
                addr = Insn.Imm_off (Reg.sp, 0) });
  emit ctx
    (Insn.Alu { op = Insn.ADD; flags = false; dst = Reg.x 29; src = Reg.sp;
                op2 = Insn.Imm (0, 0) });
  List.iteri
    (fun k r -> str_frame ctx r (16 + (8 * k)))
    (List.rev !used_int_homes);
  List.iteri
    (fun k r -> fstr_frame ctx r (16 + (8 * (n_int_saves + k))))
    (List.rev !used_fp_homes);
  (* move incoming arguments to their homes *)
  let ii = ref 0 and fi = ref 0 in
  List.iter
    (fun (name, (t : ty)) ->
      (match t with
      | Int ->
          assign_to ctx name (VInt int_arg_regs.(!ii));
          incr ii
      | Float ->
          assign_to ctx name (VFlt !fi);
          incr fi))
    f.params;
  (* body *)
  List.iter (compile_stmt ctx) f.body;
  (* implicit return 0 *)
  emit_const ctx 0 0;
  (* epilogue *)
  emit_label ctx ctx.epilogue;
  List.iteri
    (fun k r -> ldr_frame ctx r (16 + (8 * k)))
    (List.rev !used_int_homes);
  List.iteri
    (fun k r -> fldr_frame ctx r (16 + (8 * (n_int_saves + k))))
    (List.rev !used_fp_homes);
  emit ctx
    (Insn.Ldp { w = Reg.W64; r1 = Reg.x 29; r2 = Reg.x 30;
                addr = Insn.Imm_off (Reg.sp, 0) });
  emit ctx
    (Insn.Alu { op = Insn.ADD; flags = false; dst = Reg.sp; src = Reg.sp;
                op2 = Insn.Imm (frame, 0) });
  emit ctx (Insn.Ret (Reg.x 30));
  (* local float constant pool lives in .data *)
  let pool =
    if ctx.float_pool_order = [] then []
    else
      Source.Directive (".data", "")
      :: List.concat_map
           (fun (lbl, v) ->
             [ Source.Label lbl;
               Source.Directive (".double", Printf.sprintf "%h" v) ])
           (List.rev ctx.float_pool_order)
      @ [ Source.Directive (".text", "") ]
  in
  List.rev ctx.out @ pool

(** Compile a whole program to assembly source.  The entry point calls
    [main] and exits with its return value. *)
let compile (prog : program) : Source.t =
  let fenv = List.map (fun f -> (f.name, f.ret)) prog.funcs in
  if not (List.mem_assoc "main" fenv) then raise (Error "no main function");
  let start =
    [ Source.Directive (".text", "");
      Source.Label "_start";
      Source.Insn (Insn.Bl (Insn.Sym "main"));
      Source.Insn (Insn.Svc Lfi_runtime.Sysno.exit);
      Source.Insn (Insn.B (Insn.Sym "_start")) ]
  in
  let funcs = List.concat_map (compile_func prog fenv) prog.funcs in
  let globals =
    if prog.globals = [] then []
    else
      Source.Directive (".data", "")
      :: List.concat_map
           (fun g ->
             match g with
             | Zeroed (name, size) ->
                 [ Source.Directive (".balign", "16");
                   Source.Label name;
                   Source.Directive (".zero", string_of_int size) ]
             | Init64 (name, words) ->
                 Source.Directive (".balign", "16")
                 :: Source.Label name
                 :: List.map
                      (fun wv -> Source.Directive (".quad", string_of_int wv))
                      words
             | InitF64 (name, vals) ->
                 Source.Directive (".balign", "16")
                 :: Source.Label name
                 :: List.map
                      (fun fv ->
                        Source.Directive (".double", Printf.sprintf "%h" fv))
                      vals
             | Str (name, s) ->
                 [ Source.Label name;
                   Source.Directive
                     (".asciz", Printf.sprintf "%S" s) ])
           prog.globals
  in
  start @ funcs @ globals

(** Compile to assembly text. *)
let compile_string prog = Source.to_string (compile prog)
