(** Enumeration strata: deterministic candidate-word generators, one
    per instruction family the verifier reasons about
    (DESIGN.md §5i).

    Unlike the fuzzer, which samples mutations at random, each stratum
    sweeps the encoding fields that the verifier's rules actually
    branch on — register numbers (reserved vs. scratch), addressing
    modes, extend options, immediate buckets including every boundary
    value — so the accepted set of each instruction class is covered
    by construction.  The memory families are generated as raw words
    (covering mis-encodings and reserved patterns that no [Insn.t]
    value round-trips through); everything else is built with
    {!Encode} from instruction templates.

    [Smoke] keeps each grid small enough for a per-push CI gate;
    [Full] widens every register and immediate axis for the nightly
    run.  Both are fully deterministic: same tier, same word list. *)

open Lfi_arm64

type tier = Smoke | Full

let tier_name = function Smoke -> "smoke" | Full -> "full"

type stratum = { name : string; desc : string; words : tier -> int list }

(* ---- helpers ---- *)

let enc (i : Insn.t) : int list =
  match Encode.encode i with Ok w -> [ w ] | Error _ -> []

let cross (xs : 'a list) (f : 'a -> int list) : int list = List.concat_map f xs

let range_regs = function
  | Smoke -> [ 0; 2; 18; 21; 22; 24; 30; 31 ]
  | Full -> List.init 32 Fun.id

(* ---- raw load/store families ---- *)

(* register-offset: size(31:30) 111(29:27) V(26) 00(25:24) opc(23:22)
   1(21) Rm(20:16) option(15:13) S(12) 10(11:10) Rn(9:5) Rt(4:0) *)
let mem_guarded_words tier =
  let sizes, opcs, options, rms, rns, rts =
    match tier with
    | Smoke ->
        ( [ 2; 3 ], [ 0; 1 ], [ 0; 2; 3; 6; 7 ],
          [ 0; 18; 22; 30; 31 ], [ 0; 21; 28; 31 ], [ 0; 22; 31 ] )
    | Full ->
        ( [ 0; 1; 2; 3 ], [ 0; 1; 2; 3 ], [ 0; 1; 2; 3; 4; 5; 6; 7 ],
          List.init 32 Fun.id, List.init 32 Fun.id,
          [ 0; 1; 18; 21; 22; 23; 24; 29; 30; 31 ] )
  in
  cross sizes (fun size ->
      cross [ 0; 1 ] (fun v ->
          cross opcs (fun opc ->
              cross rms (fun rm ->
                  cross options (fun opt ->
                      cross [ 0; 1 ] (fun s ->
                          cross rns (fun rn ->
                              cross rts (fun rt ->
                                  [ (size lsl 30) lor (0b111 lsl 27)
                                    lor (v lsl 26) lor (opc lsl 22)
                                    lor (1 lsl 21) lor (rm lsl 16)
                                    lor (opt lsl 13) lor (s lsl 12)
                                    lor (0b10 lsl 10) lor (rn lsl 5)
                                    lor rt ]))))))))

(* scaled unsigned immediate: size 111 V 01 opc imm12(21:10) Rn Rt.
   imm12 = 4095 on a q register reaches 65520 bytes — past the guard
   margin, the overrun the verifier's imm_off_in_guard bound exists
   for. *)
let mem_imm_words tier =
  let sizes, opcs, imms, rns, rts =
    match tier with
    | Smoke ->
        ( [ 0; 2; 3 ], [ 0; 1; 2; 3 ], [ 0; 1; 8; 255; 2047; 4032; 4095 ],
          [ 0; 18; 21; 28; 31 ], [ 0; 30; 31 ] )
    | Full ->
        ( [ 0; 1; 2; 3 ], [ 0; 1; 2; 3 ],
          [ 0; 1; 2; 3; 7; 8; 63; 255; 511; 1023; 2047; 4032; 4094; 4095 ],
          [ 0; 1; 18; 21; 22; 23; 24; 28; 29; 30; 31 ],
          [ 0; 1; 22; 29; 30; 31 ] )
  in
  cross sizes (fun size ->
      cross [ 0; 1 ] (fun v ->
          cross opcs (fun opc ->
              cross imms (fun imm ->
                  cross rns (fun rn ->
                      cross rts (fun rt ->
                          [ (size lsl 30) lor (0b111 lsl 27) lor (v lsl 26)
                            lor (0b01 lsl 24) lor (opc lsl 22)
                            lor (imm lsl 10) lor (rn lsl 5) lor rt ]))))))


(* unscaled / pre / post: size 111 V 00 opc 0(21) imm9(20:12)
   mode(11:10) Rn Rt; mode 00=ldur/stur 01=post 11=pre *)
let mem_unscaled_words tier =
  let sizes, opcs, imms, rns, rts =
    match tier with
    | Smoke ->
        ( [ 0; 3 ], [ 0; 1; 2 ], [ 0; 8; 255; 256; 511 ],
          [ 0; 21; 28; 31 ], [ 0; 30; 31 ] )
    | Full ->
        ( [ 0; 1; 2; 3 ], [ 0; 1; 2; 3 ],
          [ 0; 1; 8; 16; 127; 255; 256; 384; 511 ],
          [ 0; 18; 21; 22; 23; 24; 28; 31 ], [ 0; 22; 29; 30; 31 ] )
  in
  cross sizes (fun size ->
      cross [ 0; 1 ] (fun v ->
          cross opcs (fun opc ->
              cross imms (fun imm ->
                  cross [ 0; 1; 2; 3 ] (fun mode ->
                      cross rns (fun rn ->
                          cross rts (fun rt ->
                              [ (size lsl 30) lor (0b111 lsl 27)
                                lor (v lsl 26) lor (opc lsl 22)
                                lor (imm lsl 12) lor (mode lsl 10)
                                lor (rn lsl 5) lor rt ])))))))

(* ---- Encode-built families ---- *)

let pair_words tier =
  let bases =
    match tier with
    | Smoke -> [ Reg.sp; Reg.x 21; Reg.x 18; Reg.x 0 ]
    | Full -> [ Reg.sp; Reg.x 21; Reg.x 18; Reg.x 23; Reg.x 24; Reg.x 0;
                Reg.x 28 ]
  in
  let imm7s = [ -64; -2; 0; 2; 63 ] in
  let gp =
    cross [ Reg.W64; Reg.W32 ] (fun w ->
        let scale = if w = Reg.W64 then 8 else 4 in
        let r1, r2 =
          if w = Reg.W64 then (Reg.x 0, Reg.x 1) else (Reg.w 0, Reg.w 1)
        in
        let pairs =
          [ (r1, r2); (Reg.with_width w (Reg.x 29), Reg.with_width w (Reg.x 30));
            (Reg.with_width w (Reg.x 22), r2) ]
        in
        cross bases (fun b ->
            cross imm7s (fun k ->
                cross pairs (fun (r1, r2) ->
                    cross
                      [ Insn.Imm_off (b, k * scale); Insn.Pre (b, k * scale);
                        Insn.Post (b, k * scale) ]
                      (fun addr ->
                        enc (Insn.Ldp { w; r1; r2; addr })
                        @ enc (Insn.Stp { w; r1; r2; addr }))))))
  in
  let fp =
    cross bases (fun b ->
        cross [ -64; 0; 63 ] (fun k ->
            cross [ Reg.Fp.v Reg.Fp.Q 0, Reg.Fp.v Reg.Fp.Q 1 ]
              (fun (r1, r2) ->
                cross
                  [ Insn.Imm_off (b, k * 16); Insn.Pre (b, k * 16);
                    Insn.Post (b, k * 16) ]
                  (fun addr ->
                    enc (Insn.Fldp { r1; r2; addr })
                    @ enc (Insn.Fstp { r1; r2; addr })))))
  in
  gp @ fp

let excl_words tier =
  let bases =
    match tier with
    | Smoke -> [ Reg.sp; Reg.x 21; Reg.x 18; Reg.x 0; Reg.x 28 ]
    | Full -> [ Reg.sp; Reg.x 21; Reg.x 18; Reg.x 23; Reg.x 24; Reg.x 0;
                Reg.x 22; Reg.x 28; Reg.x 30 ]
  in
  cross [ Insn.W, Reg.w 0; Insn.X, Reg.x 0; Insn.W, Reg.w 22;
          Insn.X, Reg.x 22 ]
    (fun (sz, r) ->
      cross bases (fun base ->
          enc (Insn.Ldxr { sz; dst = r; base })
          @ enc (Insn.Stxr { sz; status = Reg.w 5; src = r; base })
          @ enc (Insn.Ldar { sz; dst = r; base })
          @ enc (Insn.Stlr { sz; src = r; base })))

let alu_retag_words tier =
  let dsts =
    [ Reg.x 18; Reg.x 21; Reg.x 22; Reg.w 22; Reg.x 23; Reg.x 24;
      Reg.x 30; Reg.sp; Reg.x 0 ]
  in
  let srcs =
    match tier with
    | Smoke -> [ Reg.x 21; Reg.x 0; Reg.sp; Reg.x 18 ]
    | Full -> [ Reg.x 21; Reg.x 0; Reg.sp; Reg.x 18; Reg.x 22; Reg.x 30 ]
  in
  let op2s =
    [ Insn.Ext (Reg.w 0, Insn.Uxtw, 0); Insn.Ext (Reg.w 0, Insn.Uxtw, 2);
      Insn.Ext (Reg.w 30, Insn.Uxtw, 0); Insn.Ext (Reg.w 22, Insn.Uxtw, 0);
      Insn.Ext (Reg.x 22, Insn.Uxtx, 0); Insn.Ext (Reg.x 0, Insn.Uxtx, 0);
      Insn.Ext (Reg.w 0, Insn.Sxtw, 0); Insn.Imm (0, 0); Insn.Imm (8, 0);
      Insn.Imm (1023, 0); Insn.Imm (1024, 0); Insn.Imm (4095, 0);
      Insn.Imm (5, 12); Insn.Sh (Reg.x 1, Insn.Lsl, 0);
      Insn.Sh (Reg.x 1, Insn.Lsl, 3) ]
  in
  cross [ Insn.ADD; Insn.SUB ] (fun op ->
      cross [ false; true ] (fun flags ->
          cross dsts (fun dst ->
              cross srcs (fun src ->
                  cross op2s (fun op2 ->
                      enc (Insn.Alu { op; flags; dst; src; op2 }))))))

let branch_words tier =
  let offs = [ -4; 0; 4; 8; 12 ] in
  let direct =
    cross offs (fun d ->
        enc (Insn.B (Insn.Off d)) @ enc (Insn.Bl (Insn.Off d)))
    @ cross [ Insn.EQ; Insn.NE; Insn.LT; Insn.HI; Insn.AL ] (fun c ->
          cross [ 0; 8 ] (fun d -> enc (Insn.Bcond (c, Insn.Off d))))
    @ cross [ false; true ] (fun nz ->
          cross [ Reg.x 0; Reg.w 5; Reg.x 30 ] (fun reg ->
              cross [ 0; 8 ] (fun d ->
                  enc (Insn.Cbz { nz; reg; target = Insn.Off d })
                  @ enc
                      (Insn.Tbz
                         { nz; reg; bit = 3; target = Insn.Off d }))))
  in
  (* br/blr/ret over every Rn, as raw words so Rn=31 (xzr) is covered *)
  let indirect =
    cross (range_regs tier) (fun n ->
        [ 0xD61F0000 lor (n lsl 5); 0xD63F0000 lor (n lsl 5);
          0xD65F0000 lor (n lsl 5) ])
  in
  direct @ indirect

let x30_words _tier =
  cross [ 0; 1; 3 ] (fun hw ->
      cross [ 0; 0xdead; 0xffff ] (fun imm ->
          enc (Insn.Mov { op = Insn.MOVZ; dst = Reg.x 30; imm; hw })
          @ enc (Insn.Mov { op = Insn.MOVK; dst = Reg.x 30; imm; hw })))
  @ cross [ 0; 8; 12; 16376; 16384; 32760 ] (fun k ->
        enc
          (Insn.Ldr
             { sz = Insn.X; signed = false; dst = Reg.x 30;
               addr = Insn.Imm_off (Reg.x 21, k) }))
  @ enc
      (Insn.Ldr
         { sz = Insn.X; signed = false; dst = Reg.x 30;
           addr = Insn.Imm_off (Reg.sp, 8) })
  @ enc
      (Insn.Alu
         { op = Insn.ADD; flags = false; dst = Reg.x 30; src = Reg.x 0;
           op2 = Insn.Imm (8, 0) })
  @ enc (Insn.Extr { dst = Reg.x 30; src1 = Reg.x 0; src2 = Reg.x 1; lsb = 4 })
  @ enc (Insn.Adr { page = false; dst = Reg.x 30; target = Insn.Off 0 })

let sp_words _tier =
  cross [ Insn.ADD; Insn.SUB ] (fun op ->
      cross [ (0, 0); (8, 0); (512, 0); (1023, 0); (1024, 0); (4095, 0);
              (1, 12); (5, 12); (4095, 12) ]
        (fun (v, sh) ->
          enc
            (Insn.Alu
               { op; flags = false; dst = Reg.sp; src = Reg.sp;
                 op2 = Insn.Imm (v, sh) })))
  @ enc
      (Insn.Alu
         { op = Insn.ADD; flags = false; dst = Reg.sp; src = Reg.x 21;
           op2 = Insn.Ext (Reg.x 22, Insn.Uxtx, 0) })
  @ enc
      (Insn.Alu
         { op = Insn.ADD; flags = false; dst = Reg.sp; src = Reg.x 21;
           op2 = Insn.Ext (Reg.x 0, Insn.Uxtx, 0) })
  @ enc
      (Insn.Alu
         { op = Insn.ADD; flags = false; dst = Reg.sp; src = Reg.sp;
           op2 = Insn.Ext (Reg.w 0, Insn.Uxtw, 0) })

let dp_misc_words tier =
  let dsts =
    match tier with
    | Smoke -> [ Reg.x 0; Reg.w 0; Reg.w 22; Reg.x 22; Reg.x 24 ]
    | Full ->
        [ Reg.x 0; Reg.w 0; Reg.w 22; Reg.x 22; Reg.x 18; Reg.x 21;
          Reg.x 23; Reg.x 24; Reg.x 30; Reg.w 30 ]
  in
  cross dsts (fun dst ->
      let w = Reg.width dst in
      let src = Reg.with_width w (Reg.x 1) in
      let src2 = Reg.with_width w (Reg.x 2) in
      cross [ Insn.MOVZ; Insn.MOVN; Insn.MOVK ] (fun op ->
          cross [ 0; 1 ] (fun hw ->
              enc (Insn.Mov { op; dst; imm = 0xbeef; hw })))
      @ enc (Insn.Bitfield { op = Insn.UBFM; dst; src; immr = 3; imms = 7 })
      @ enc
          (Insn.Csel
             { op = Insn.CSEL; dst; src1 = src; src2; cond = Insn.NE })
      @ enc (Insn.Shiftv { op = Insn.Lsl; dst; src; amount = src2 })
      @ enc (Insn.Madd { sub = false; dst; src1 = src; src2; acc = src })
      @ enc (Insn.Div { signed = true; dst; src1 = src; src2 })
      @ enc (Insn.Cls { count_zero = true; dst; src })
      @ enc (Insn.Rbit { dst; src })
      @ enc (Insn.Rev { bytes = 8; dst; src })
      @ enc (Insn.Fmov_from_fp { dst; src = Reg.Fp.v Reg.Fp.D 0 })
      @ enc (Insn.Fcvtzs { signed = true; dst; src = Reg.Fp.v Reg.Fp.D 0 })
      @ enc (Insn.Adr { page = false; dst; target = Insn.Off 16 }))
  @ enc
      (Insn.Fop2
         { op = Insn.FADD; dst = Reg.Fp.v Reg.Fp.D 0;
           src1 = Reg.Fp.v Reg.Fp.D 1; src2 = Reg.Fp.v Reg.Fp.D 2 })
  @ enc
      (Insn.Scvtf
         { signed = true; dst = Reg.Fp.v Reg.Fp.D 0; src = Reg.x 1 })
  @ enc (Insn.Ccmp
           { cmn = false; src = Reg.x 1; op2 = Insn.CImm 3; nzcv = 0;
             cond = Insn.NE })

let system_words _tier =
  enc (Insn.Svc 0) @ enc (Insn.Svc 1) @ enc Insn.Nop @ enc Insn.Dmb
  @ [ 0xD53B4200 (* mrs x0, nzcv *); 0xD51B4200 (* msr nzcv, x0 *);
      0x00000000; 0x0000DEAD; 0xFFFFFFFF; 0x1234ABCD ]

let all : stratum list =
  [ { name = "mem-guarded"; desc = "register-offset loads/stores";
      words = mem_guarded_words };
    { name = "mem-imm"; desc = "scaled unsigned-immediate loads/stores";
      words = mem_imm_words };
    { name = "mem-unscaled"; desc = "unscaled / pre / post indexed";
      words = mem_unscaled_words };
    { name = "mem-pair"; desc = "register pairs"; words = pair_words };
    { name = "mem-excl"; desc = "exclusives and acquire/release";
      words = excl_words };
    { name = "alu-retag"; desc = "guard forms and near-misses";
      words = alu_retag_words };
    { name = "branch"; desc = "direct and indirect branches";
      words = branch_words };
    { name = "x30-window"; desc = "x30 writes and their guard window";
      words = x30_words };
    { name = "sp-window"; desc = "sp drift, guard and anchors";
      words = sp_words };
    { name = "dp-misc"; desc = "data processing and FP moves";
      words = dp_misc_words };
    { name = "system"; desc = "system instructions and junk words";
      words = system_words } ]

let find name = List.find_opt (fun s -> s.name = name) all
