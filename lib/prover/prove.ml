(** The proof driver (DESIGN.md §5i).

    Two consumers share the same per-instruction proof:

    - {!run_stratum} / {!run}: enumerate candidate encodings from
      {!Strata}, complete each with the bounded forward window the
      verifier's local rules assume (a [blr x30] after a table load,
      the x30 guard after an x30 write, an sp anchor after a drift,
      nop padding for direct branches), verify the completed sequence,
      and symbolically prove every *accepted* variant.  An accepted
      variant with a failed obligation is a soundness hole.

    - {!check_program}: prove every instruction of a real verified
      program with its actual forward window — used to pin
      prover-accepts ⇒ oracle-clean agreement on the fuzzing corpus.

    The induction per window: start from {!Invariant.start} (the
    anchored sp range when the head is the bare drift instruction —
    justified because the verifier rejects two un-anchored sp writes
    in a row, so the boundary before an accepted drift is always
    anchored), step the transfer function, and require the invariant
    at the window's end plus every obligation in between. *)

open Lfi_arm64
module Verifier = Lfi_verifier.Verifier

let code_origin = Lfi_core.Layout.code_origin

let writes_x30 i =
  List.exists (function `R (_, 30) -> true | _ -> false) (Insn.writes i)

(** Writes x30 in a way the verifier only accepts with the guard as
    the next instruction. *)
let needs_x30_guard i =
  writes_x30 i
  && (match i with Insn.Bl _ | Insn.Blr _ -> false | _ -> true)
  && (not (Verifier.is_x30_guard i))
  && not (Verifier.is_table_load i)

(** Last instruction index of the proof window headed at [idx]: the
    forward context the verifier's local rule for [insns.(idx)]
    depends on. *)
let window_end (insns : Insn.t array) (idx : int) : int =
  let n = Array.length insns in
  let i = insns.(idx) in
  if Transfer.is_sp_drift i then begin
    (* mirror the verifier's sp_anchor scan *)
    let rec go j =
      if j >= n then idx
      else if
        Verifier.is_sp_guard insns.(j)
        || Verifier.is_sp_based_access insns.(j)
      then j
      else if Insn.writes_sp insns.(j) || Insn.is_branch insns.(j) then idx
      else go (j + 1)
    in
    go (idx + 1)
  end
  else if Verifier.is_table_load i || needs_x30_guard i then
    min (n - 1) (idx + 1)
  else idx

(** Prove the window headed at [idx]; returns the failed obligations
    (empty = proved). *)
let prove_window ~(origin : int) (insns : Insn.t array) (idx : int) :
    Transfer.fail list =
  let stop = window_end insns idx in
  let st =
    Invariant.start ~pre_anchored:(Transfer.is_sp_drift insns.(idx))
  in
  let fails = ref [] in
  for j = idx to stop do
    fails := !fails @ Transfer.step st ~pc_off:(origin + (j * 4)) insns.(j)
  done;
  !fails
  @ List.map
      (fun (c, d) -> { Transfer.clause = c; detail = d })
      (Invariant.check st)

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)
(* ------------------------------------------------------------------ *)

type program_hole = {
  p_index : int;
  p_disasm : string;
  p_clause : string;
  p_detail : string;
}

(** Verify, then prove every instruction of [code] in place.
    [Error _] means the verifier itself rejected the program; [Ok []]
    is a full soundness proof of this binary's instruction windows. *)
let check_program ?(config = Verifier.default_config)
    ?(origin = code_origin) ~(code : bytes) () :
    (program_hole list, Verifier.violation list) result =
  match Verifier.verify ~config ~origin ~code () with
  | Error vs -> Error vs
  | Ok _ ->
      let insns = Decode.decode_all code in
      let holes = ref [] in
      Array.iteri
        (fun idx i ->
          List.iter
            (fun (f : Transfer.fail) ->
              holes :=
                { p_index = idx; p_disasm = Printer.to_string i;
                  p_clause = Invariant.clause_name f.Transfer.clause;
                  p_detail = f.Transfer.detail }
                :: !holes)
            (prove_window ~origin insns idx))
        insns;
      Ok (List.rev !holes)

(* ------------------------------------------------------------------ *)
(* Enumerated candidates                                               *)
(* ------------------------------------------------------------------ *)

let blr_x30 = Insn.Blr (Reg.x 30)

let sp_guard_insn =
  Insn.Alu
    { op = Insn.ADD; flags = false; dst = Reg.sp; src = Reg.x 21;
      op2 = Insn.Ext (Reg.x 22, Insn.Uxtx, 0) }

let anchor_store off =
  Insn.Str { sz = Insn.X; src = Reg.xzr; addr = Insn.Imm_off (Reg.sp, off) }

(** Completion variants for a candidate head: every bounded forward
    window under which the verifier may accept it.  A candidate is a
    hole if *any* accepted variant is unprovable.  The sp drift gets
    three anchors — zero-offset store, maximal-offset store, and the
    full guard — because a drift that is safe before a near access can
    still overrun the guard before a far one. *)
let completions (i : Insn.t) : Insn.t list list =
  if Verifier.is_table_load i then [ [ blr_x30 ] ]
  else if Transfer.is_sp_drift i then
    [ [ anchor_store 0 ];
      [ anchor_store (Lfi_core.Layout.max_mem_immediate - 8) ];
      [ sp_guard_insn ] ]
  else if needs_x30_guard i then [ [ Verifier.x30_guard ] ]
  else if
    match i with
    | Insn.B _ | Insn.Bl _ | Insn.Bcond _ | Insn.Cbz _ | Insn.Tbz _ -> true
    | _ -> false
  then [ [ Insn.Nop; Insn.Nop; Insn.Nop ] ]
  else [ [] ]

let word_bytes (words : int list) : bytes =
  let b = Bytes.create (4 * List.length words) in
  List.iteri
    (fun k w ->
      Bytes.set b (4 * k) (Char.chr (w land 0xFF));
      Bytes.set b ((4 * k) + 1) (Char.chr ((w lsr 8) land 0xFF));
      Bytes.set b ((4 * k) + 2) (Char.chr ((w lsr 16) land 0xFF));
      Bytes.set b ((4 * k) + 3) (Char.chr ((w lsr 24) land 0xFF)))
    words;
  b

let encode_all (insns : Insn.t list) : int list option =
  List.fold_left
    (fun acc i ->
      match (acc, Encode.encode i) with
      | Some ws, Ok w -> Some (w :: ws)
      | _ -> None)
    (Some []) insns
  |> Option.map List.rev

let hole_cap = 5

let run_stratum ~(config : Verifier.config) ~(tier : Strata.tier)
    (s : Strata.stratum) : Report.stratum_result =
  let candidates = ref 0 and rejected = ref 0 and accepted = ref 0 in
  let proved = ref 0 and holes = ref 0 and samples = ref [] in
  List.iter
    (fun word ->
      incr candidates;
      let head = Decode.decode word in
      let fails = ref [] and ok = ref false in
      List.iter
        (fun suffix ->
          match encode_all suffix with
          | None -> ()
          | Some tail -> (
              let code = word_bytes (word :: tail) in
              match Verifier.verify ~config ~origin:code_origin ~code () with
              | Error _ -> ()
              | Ok _ ->
                  ok := true;
                  let insns = Decode.decode_all code in
                  fails := !fails @ prove_window ~origin:code_origin insns 0))
        (completions head);
      if not !ok then incr rejected
      else begin
        incr accepted;
        match !fails with
        | [] -> incr proved
        | f :: _ ->
            incr holes;
            if List.length !samples < hole_cap then
              samples :=
                { Report.word; disasm = Printer.to_string head;
                  clause = Invariant.clause_name f.Transfer.clause;
                  detail = f.Transfer.detail }
                :: !samples
      end)
    (s.Strata.words tier);
  { Report.s_name = s.Strata.name; candidates = !candidates;
    rejected = !rejected; accepted = !accepted; proved = !proved;
    holes = !holes; samples = List.rev !samples }

(** Run the enumeration.  [weakenings] are applied on top of [config];
    [only] restricts to a single stratum by name. *)
let run ?(config = Verifier.default_config)
    ?(weakenings : Verifier.weakening list = []) ?(tier = Strata.Smoke)
    ?(only : string option) () : Report.t =
  let config = List.fold_left Verifier.weaken config weakenings in
  let strata =
    match only with
    | None -> Strata.all
    | Some n -> ( match Strata.find n with Some s -> [ s ] | None -> [])
  in
  { Report.tier = Strata.tier_name tier;
    weakenings = List.map Verifier.weakening_name weakenings;
    strata = List.map (run_stratum ~config ~tier) strata;
    elapsed_ms = None }
