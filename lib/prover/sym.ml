(** Symbolic value domain of the soundness prover (DESIGN.md §5i).

    The prover never needs full bit-level reasoning: every sandbox
    invariant is an interval statement about addresses relative to the
    sandbox base (which the verifier keeps abstract in x21), plus two
    special facts — "this value was loaded from the runtime-call
    table" and "this value is a valid branch target".  Five abstract
    values cover all of it.

    Intervals are closed ([lo], [hi] both included) and fit OCaml's
    native [int]: the largest magnitude ever tracked is a few guard
    regions past 2^32. *)

type value =
  | Rel of int * int
      (** sandbox base + an offset in [\[lo, hi\]] — the shape of every
          guarded address *)
  | Abs of int * int
      (** a known absolute (base-independent) range, e.g. the 32-bit
          scratch register x22 *)
  | Table
      (** loaded from the runtime-call table: a host entry address or
          the in-sandbox guard-trap word — a valid [blr] target by the
          loader's construction *)
  | Branchable
      (** any valid branch target: base + [\[0, 4GiB)] or [Table] —
          the x30 invariant *)
  | Top  (** no information *)

let u32 = Abs (0, 0xFFFF_FFFF)

(** Order of the domain: [leq a b] when every concrete value described
    by [a] is also described by [b].  [Abs] is never below [Rel] (the
    base is abstract) and never below [Branchable] (an absolute
    address proves nothing about the sandbox). *)
let leq (a : value) (b : value) : bool =
  match (a, b) with
  | _, Top -> true
  | Rel (alo, ahi), Rel (blo, bhi) | Abs (alo, ahi), Abs (blo, bhi) ->
      blo <= alo && ahi <= bhi
  | Table, (Table | Branchable) -> true
  | Rel (lo, hi), Branchable -> lo >= 0 && hi < 1 lsl 32
  | Branchable, Branchable -> true
  | _ -> false

(** Shift a value by a constant interval.  Anything without interval
    structure degrades to [Top]: adding to a table word or an unknown
    produces an unknown. *)
let add_interval (v : value) ((lo, hi) : int * int) : value =
  match v with
  | Rel (a, b) -> Rel (a + lo, b + hi)
  | Abs (a, b) -> Abs (a + lo, b + hi)
  | Table | Branchable | Top -> Top

(** Intersect a base-relative value with a known base-relative window
    (used to re-anchor sp after a non-trapping access).  From [Top]
    the window itself is the whole story; an empty intersection means
    the path cannot execute, so any sound representative will do. *)
let meet_rel (v : value) ((lo, hi) : int * int) : value =
  match v with
  | Rel (a, b) -> Rel (max a lo, min b hi)
  | Top | Abs _ | Table | Branchable -> Rel (lo, hi)

let to_string = function
  | Rel (lo, hi) ->
      if lo = hi then Printf.sprintf "base+%d" lo
      else Printf.sprintf "base+[%d, %d]" lo hi
  | Abs (lo, hi) ->
      if lo = hi then Printf.sprintf "%d" lo
      else Printf.sprintf "[%d, %d]" lo hi
  | Table -> "table-entry"
  | Branchable -> "branch-target"
  | Top -> "top"

(** Machine state at an instruction boundary: one abstract value per
    general register x0-x30, plus sp.  (Flags and FP registers never
    appear in an invariant or an obligation.) *)
type state = { regs : value array; mutable sp : value }

let create ~(sp : value) (init : int -> value) : state =
  { regs = Array.init 31 init; sp }
