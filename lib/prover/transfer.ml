(** Symbolic transfer function: one accepted instruction against the
    sandbox invariant (DESIGN.md §5i).

    [step] mutates a {!Sym.state} in place and returns the *failed*
    obligations: memory accesses whose effective address is not
    provably inside base ± guard, and branch targets not provably in
    sandbox ∪ runtime-table.  Soundness direction: every evaluation
    that loses precision degrades toward {!Sym.Top}, so a [step] that
    returns [[]] is a proof, and a non-empty result is at worst a
    false alarm (which the enumeration reports as a hole — the prover
    must then be made more precise, never the verifier trusted less).

    Two environmental facts from the fuzzing sandbox (the oracle that
    grounds these proofs) are baked in:
    - mapped sandbox memory lives entirely in [base, base+4GiB), so a
      *non-trapping* access proves its address was in-sandbox — this
      is what re-anchors sp after a drift;
    - if an access traps, execution stops, so refinements derived from
      "the access completed" are only used by later instructions. *)

open Lfi_arm64
module V = Sym

type fail = { clause : Invariant.clause; detail : string }

(** The bare sp drift [add/sub sp, sp, #imm] — the one sp write that
    leaves sp un-anchored until the next sp access. *)
let is_sp_drift = function
  | Insn.Alu
      { op = Insn.ADD | Insn.SUB; flags = false; dst = Reg.SP Reg.W64;
        src = Reg.SP Reg.W64; op2 = Insn.Imm _ } ->
      true
  | _ -> false

(* ---- evaluation ---- *)

let eval_gp (st : V.state) (r : Reg.t) : V.value =
  match r with
  | Reg.ZR _ -> V.Abs (0, 0)
  | Reg.SP _ -> st.V.sp
  | Reg.R (Reg.W64, n) -> st.V.regs.(n)
  | Reg.R (Reg.W32, n) -> (
      (* the 32-bit view of any value is in [0, 2^32) *)
      match st.V.regs.(n) with
      | V.Abs (a, b) when a >= 0 && b <= 0xFFFF_FFFF -> V.Abs (a, b)
      | _ -> V.u32)

(** Absolute interval contributed by an extended register operand,
    [None] when unbounded.  Non-identity extends are value-independent
    (that is the whole point of the uxtw guard); identity extends need
    a known absolute source. *)
let ext_interval (st : V.state) (r : Reg.t) (e : Insn.extend)
    (amount : int) : (int * int) option =
  match eval_gp st r with
  | V.Abs (0, 0) -> Some (0, 0)  (* any extend of zero is zero *)
  | rv -> (
      match Insn.extend_bounds e ~amount with
      | Some b -> Some b
      | None -> (
          match rv with
          | V.Abs (a, b) when a >= 0 && b <= 1 lsl 40 && amount <= 4 ->
              Some (a lsl amount, b lsl amount)
          | _ -> None))

let op2_interval (st : V.state) (op2 : Insn.operand2) : (int * int) option =
  match op2 with
  | Insn.Imm (v, sh) -> Some (v lsl sh, v lsl sh)
  | Insn.Ext (r, e, a) -> ext_interval st r e a
  | Insn.Sh (r, Insn.Lsl, a) -> (
      match eval_gp st r with
      | V.Abs (x, y) when x >= 0 && y <= 1 lsl 40 && a <= 20 ->
          Some (x lsl a, y lsl a)
      | _ -> None)
  | Insn.Sh _ -> None

(** Clamp a 32-bit destination: writing a w register zeroes the top
    bits, so the result is in [0, 2^32) whatever the inputs were. *)
let clamp32 = function
  | V.Abs (a, b) when a >= 0 && b <= 0xFFFF_FFFF -> V.Abs (a, b)
  | _ -> V.u32

let alu_value (st : V.state) ~(op : Insn.alu_op) ~(dst : Reg.t)
    ~(src : Reg.t) ~(op2 : Insn.operand2) : V.value =
  let value =
    match op with
    | Insn.ADD | Insn.SUB -> (
        match op2_interval st op2 with
        | Some (lo, hi) ->
            let iv = if op = Insn.ADD then (lo, hi) else (-hi, -lo) in
            V.add_interval (eval_gp st src) iv
        | None -> V.Top)
    | _ -> V.Top
  in
  if Reg.width dst = Reg.W32 then clamp32 value else value

let addr_value (st : V.state) (addr : Insn.addr) : V.value =
  match addr with
  | Insn.Imm_off (b, i) | Insn.Pre (b, i) ->
      V.add_interval (eval_gp st b) (i, i)
  | Insn.Post (b, _) -> eval_gp st b
  | Insn.Reg_off (b, m, e, a) -> (
      match ext_interval st m e a with
      | Some iv -> V.add_interval (eval_gp st b) iv
      | None -> V.Top)

let mem_ok (v : V.value) (bytes : int) : bool =
  match v with
  | V.Rel (lo, hi) ->
      lo >= -Invariant.guard
      && hi + bytes <= Invariant.four_g + Invariant.guard
  | _ -> false

(* ---- one instruction ---- *)

type wkey = KR of int | KSp

let key_of_reg = function
  | Reg.SP _ -> Some KSp
  | Reg.R (_, n) -> Some (KR n)
  | Reg.ZR _ -> None

let step (st : V.state) ~(pc_off : int) (i : Insn.t) : fail list =
  let fails = ref [] in
  let fail clause detail = fails := { clause; detail } :: !fails in
  (* values for registers this instruction writes; anything not listed
     here is blanketed by width below *)
  let specials : (wkey * V.value) list ref = ref [] in
  let special r v =
    match key_of_reg r with
    | Some k -> specials := (k, v) :: !specials
    | None -> ()
  in
  (* memory: window obligation, then non-trapping refinements and
     writeback values (visible only to later instructions / the final
     invariant check) *)
  (match Insn.addr_of i with
   | Some addr when Insn.is_memory i ->
       let bytes = Insn.access_bytes i in
       let av = addr_value st addr in
       if not (mem_ok av bytes) then
         fail Invariant.Mem_window
           (Printf.sprintf "address %s, %d-byte access" (V.to_string av)
              bytes);
       let refine b win =
         match b with
         | Reg.SP _ -> st.V.sp <- V.meet_rel st.V.sp win
         | Reg.R (Reg.W64, n) ->
             st.V.regs.(n) <- V.meet_rel st.V.regs.(n) win
         | _ -> ()
       in
       (match addr with
        | Insn.Imm_off (b, off) ->
            refine b (-off, Invariant.four_g - bytes - off)
        | Insn.Pre (b, off) ->
            special b
              (V.meet_rel
                 (V.add_interval (eval_gp st b) (off, off))
                 (0, Invariant.four_g - bytes))
        | Insn.Post (b, off) ->
            special b
              (V.add_interval
                 (V.meet_rel (eval_gp st b) (0, Invariant.four_g - bytes))
                 (off, off))
        | Insn.Reg_off _ -> ())
   | _ -> ());
  (* branches *)
  let direct t =
    match t with
    | Insn.Off d ->
        let tgt = pc_off + d in
        if tgt < 0 || tgt >= Invariant.four_g then
          fail Invariant.Branch_window (Printf.sprintf "target base+%d" tgt)
    | Insn.Sym s ->
        fail Invariant.Branch_window ("unresolved symbol " ^ s)
  in
  let indirect r =
    let v = eval_gp st r in
    if not (V.leq v V.Branchable) then
      fail Invariant.Branch_window
        (Printf.sprintf "target of %s = %s" (Reg.to_string r)
           (V.to_string v))
  in
  let link () = V.Rel (pc_off + 4, pc_off + 4) in
  (match i with
   | Insn.B t | Insn.Bcond (_, t) | Insn.Cbz { target = t; _ }
   | Insn.Tbz { target = t; _ } ->
       direct t
   | Insn.Bl t ->
       direct t;
       special (Reg.x 30) (link ())
   | Insn.Br r | Insn.Ret r -> indirect r
   | Insn.Blr r ->
       indirect r;
       special (Reg.x 30) (link ())
   | _ -> ());
  (* value-producing instructions *)
  if Lfi_verifier.Verifier.is_table_load i then special (Reg.x 30) V.Table;
  (match i with
   | Insn.Alu { op; flags = _; dst; src; op2 } ->
       special dst (alu_value st ~op ~dst ~src ~op2)
   | Insn.Mov { op = Insn.MOVZ; dst; imm; hw } ->
       let sh = 16 * hw in
       if sh + 16 <= 62 then
         special dst (V.Abs (imm lsl sh, imm lsl sh))
   | _ -> ());
  (* apply the write set: special value if computed, else blanket by
     width.  A register written twice in one instruction (e.g. a load
     whose destination is its own writeback base) degrades to Top. *)
  let written = Hashtbl.create 4 in
  List.iter
    (fun w ->
      let key, blanket =
        match w with
        | `R (Reg.W32, n) -> (KR n, V.u32)
        | `R (Reg.W64, n) -> (KR n, V.Top)
        | `Sp -> (KSp, V.Top)
      in
      let v =
        if Hashtbl.mem written key then V.Top
        else
          match List.assoc_opt key !specials with
          | Some v -> v
          | None -> blanket
      in
      Hashtbl.replace written key ();
      match key with
      | KR n -> st.V.regs.(n) <- v
      | KSp -> st.V.sp <- v)
    (Insn.writes i);
  List.rev !fails
