(** Prover ↔ escape-oracle agreement (DESIGN.md §5i).

    The symbolic proof and PR 4's fuzzing oracle must tell the same
    story: an instruction the prover flags as a hole under a weakened
    verifier config should, when driven with a worst-case concrete
    index, actually escape the sandbox at runtime — and a proved
    instruction must never escape.  This module concretizes a hole
    into a minimal runnable program (index register set to the value
    the symbolic interval says is reachable, an exit through the
    runtime table appended) and runs it under
    {!Lfi_fuzz.Sandbox.install_oracle}.

    Not every hole is concretizable this way (e.g. sp descents that
    need a multi-step staircase to drift below the sandbox); the tests
    only require that each weakening yields at least one *confirmed*
    hole, pinning the symbolic and dynamic engines together. *)

open Lfi_arm64
module Verifier = Lfi_verifier.Verifier

type confirmation = Escapes of int | Clean | Not_concretizable

let exit_tail =
  [ Insn.Ldr
      { sz = Insn.X; signed = false; dst = Reg.x 30;
        addr =
          Insn.Imm_off
            ( Reg.x 21,
              Lfi_core.Layout.rtcall_entry_offset Lfi_runtime.Sysno.exit ) };
    Insn.Blr (Reg.x 30) ]

let source_of (insns : Insn.t list) : Source.t =
  Source.Directive (".text", "")
  :: Source.Label "_start"
  :: List.map (fun i -> Source.Insn i) insns

(** Worst-case driver for a hole instruction, or [None] when this
    shape has no single-block concretization. *)
let witness_insns (i : Insn.t) : Insn.t list option =
  match Insn.addr_of i with
  | Some (Insn.Reg_off (Reg.R (Reg.W64, 21), Reg.R (_, m), e, _))
    when Insn.is_memory i
         && (not (List.mem m [ 18; 21; 22; 23; 24; 30 ]))
         && not (Prove.writes_x30 i) -> (
      (* maximal index for the (unchecked) extension *)
      match e with
      | Insn.Uxtw ->
          (* only scaled uxtw can escape: 0xffff0000 << amount *)
          Some
            [ Insn.Mov { op = Insn.MOVZ; dst = Reg.w m; imm = 0xffff; hw = 1 };
              i ]
      | Insn.Sxtw ->
          Some
            [ Insn.Mov { op = Insn.MOVZ; dst = Reg.w m; imm = 0x8000; hw = 1 };
              i ]
      | Insn.Uxtx | Insn.Sxtx ->
          Some
            [ Insn.Mov { op = Insn.MOVZ; dst = Reg.x m; imm = 0xdead; hw = 3 };
              i ]
      | _ -> None)
  | _ ->
      if
        Transfer.is_sp_drift i
        && match i with Insn.Alu { op = Insn.ADD; _ } -> true | _ -> false
      then
        (* sp at the sandbox top, the oversized drift, then a maximal
           sp-relative store: past the guard iff the drift really was
           too large *)
        Some
          [ Insn.Mov { op = Insn.MOVN; dst = Reg.w 22; imm = 0; hw = 0 };
            Prove.sp_guard_insn; i;
            Insn.Str
              { sz = Insn.X; src = Reg.x 0;
                addr =
                  Insn.Imm_off
                    (Reg.sp, Lfi_core.Layout.max_mem_immediate - 8) } ]
      else None

(** Concretize the hole [word] and run it under the escape oracle with
    the (weakened) [config] that accepted it. *)
let confirm ~(config : Verifier.config) (word : int) : confirmation =
  match witness_insns (Decode.decode word) with
  | None -> Not_concretizable
  | Some body -> (
      let elf = Lfi_fuzz.Soundness.build_seed (source_of (body @ exit_tail)) in
      match Lfi_elf.Elf.text_segment elf with
      | None -> Not_concretizable
      | Some seg ->
          if
            not
              (Lfi_fuzz.Soundness.verifies ~config elf seg.Lfi_elf.Elf.data)
          then Not_concretizable
          else
            let _, n =
              Lfi_fuzz.Soundness.escapes_of elf seg.Lfi_elf.Elf.data
            in
            if n > 0 then Escapes n else Clean)
