(** The sandbox invariant, stated per instruction boundary
    (DESIGN.md §5i).

    The verifier's rules are local — one instruction plus a bounded
    forward window — so the soundness statement is inductive: assume
    the invariant at a boundary, run the symbolic transfer function
    over one accepted instruction (with its completion window), and
    re-establish the invariant while discharging every memory and
    branch obligation along the way.

    Clauses, mirroring Section 3 of the paper:
    - x21 is exactly the sandbox base;
    - x18/x23/x24 hold base + a 32-bit offset (valid guarded
      addresses);
    - x22 holds a 32-bit value (so the sp guard
      [add sp, x21, x22, uxtx] lands in the sandbox);
    - x30 is a valid branch target (in-sandbox, or a runtime-table
      word);
    - sp is anchored near the sandbox, with at most one small pending
      drift.

    The sp clause is the only stateful one.  The verifier accepts a
    bare [add sp, sp, #imm] only when an sp access or the sp guard
    re-anchors it before the next sp write or branch, and rejects two
    bare drifts in a row; so boundaries come in two flavours:
    [sp_anchored] (right after a guard, a pre/post writeback, or an
    access that proved sp in-sandbox) and [sp_boundary] — the anchored
    range widened by one maximal pending drift — which every boundary
    satisfies.  A proof window whose head is the drift instruction may
    start from the anchored range; everything else starts from the
    widened join. *)

open Lfi_core

let four_g = Layout.sandbox_size
let guard = Layout.guard_size

(** Largest accepted positive immediate reach of an access, cf. the
    verifier's [imm_off_in_guard]. *)
let mem_slack = Layout.max_mem_immediate

(** Largest pre/post-index writeback magnitude the encodings allow
    (pair q registers: 64 x 16). *)
let wb_slack = 1024

(** Largest single pending sp drift ([Layout.max_sp_drift] is an
    exclusive bound). *)
let drift = Layout.max_sp_drift - 1

let sp_anchored = Sym.Rel (-mem_slack, four_g - 1 + wb_slack)
let sp_boundary = Sym.Rel (-mem_slack - drift, four_g - 1 + wb_slack + drift)

type clause =
  | X21_base
  | Reserved_addr of int
  | X22_scratch
  | X30_target
  | Sp_anchor
  | Mem_window
  | Branch_window

let clause_name = function
  | X21_base -> "x21-base"
  | Reserved_addr n -> Printf.sprintf "x%d-guarded" n
  | X22_scratch -> "x22-scratch"
  | X30_target -> "x30-target"
  | Sp_anchor -> "sp-anchor"
  | Mem_window -> "mem-window"
  | Branch_window -> "branch-window"

(** Invariant bound for register [n], [None] when unconstrained. *)
let reg_bound (n : int) : Sym.value option =
  match n with
  | 21 -> Some (Sym.Rel (0, 0))
  | 18 | 23 | 24 -> Some (Sym.Rel (0, four_g - 1))
  | 22 -> Some Sym.u32
  | 30 -> Some Sym.Branchable
  | _ -> None

let clause_of_reg (n : int) : clause =
  match n with
  | 21 -> X21_base
  | 22 -> X22_scratch
  | 30 -> X30_target
  | n -> Reserved_addr n

(** The weakest state satisfying the invariant: the induction
    hypothesis at the head of a proof window.  [pre_anchored] selects
    the anchored sp range (valid exactly when the head instruction is
    a bare sp drift, cf. the module comment). *)
let start ~(pre_anchored : bool) : Sym.state =
  Sym.create
    ~sp:(if pre_anchored then sp_anchored else sp_boundary)
    (fun n ->
      match reg_bound n with Some v -> v | None -> Sym.Top)

(** Check the invariant at a boundary; returns the violated clauses
    with the offending abstract value. *)
let check (st : Sym.state) : (clause * string) list =
  let fails = ref [] in
  for n = 30 downto 0 do
    match reg_bound n with
    | Some bound ->
        if not (Sym.leq st.Sym.regs.(n) bound) then
          fails :=
            ( clause_of_reg n,
              Printf.sprintf "x%d = %s" n (Sym.to_string st.Sym.regs.(n)) )
            :: !fails
    | None -> ()
  done;
  if not (Sym.leq st.Sym.sp sp_boundary) then
    fails :=
      (Sp_anchor, Printf.sprintf "sp = %s" (Sym.to_string st.Sym.sp))
      :: !fails;
  !fails
