(** The [lfi-prove/v1] report (DESIGN.md §5i).

    Byte-stable by construction, like the fuzz and bench reports: the
    JSON is hand-rolled with a fixed field order, counts are fully
    determined by (strata tier, verifier config), and wall-clock
    timing is only included when explicitly requested ([~elapsed_ms]),
    so the default report can be pinned by a golden test and compared
    byte-for-byte in CI. *)

type hole = {
  word : int;  (** encoding of the offending instruction *)
  disasm : string;
  clause : string;  (** violated invariant clause, cf. {!Invariant.clause_name} *)
  detail : string;
}

type stratum_result = {
  s_name : string;
  candidates : int;  (** encodings enumerated *)
  rejected : int;  (** verifier refused every completion *)
  accepted : int;  (** verifier accepted at least one completion *)
  proved : int;  (** accepted and symbolically proved *)
  holes : int;  (** accepted but unprovable: soundness holes *)
  samples : hole list;  (** first few holes, for the report *)
}

type t = {
  tier : string;  (** "smoke" or "full" *)
  weakenings : string list;  (** deliberate config weakenings applied *)
  strata : stratum_result list;
  elapsed_ms : int option;
}

let total f r = List.fold_left (fun a s -> a + f s) 0 r.strata
let total_holes r = total (fun s -> s.holes) r

(* ---- JSON ---- *)

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let to_json (r : t) : string =
  let b = Buffer.create 4096 in
  let str s =
    Buffer.add_char b '"';
    buf_escape b s;
    Buffer.add_char b '"'
  in
  Buffer.add_string b "{\"schema\":\"lfi-prove/v1\",\"tier\":";
  str r.tier;
  Buffer.add_string b ",\"weakenings\":[";
  List.iteri
    (fun k w ->
      if k > 0 then Buffer.add_char b ',';
      str w)
    r.weakenings;
  Buffer.add_string b "],\"strata\":[";
  List.iteri
    (fun k s ->
      if k > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":";
      str s.s_name;
      Buffer.add_string b
        (Printf.sprintf
           ",\"candidates\":%d,\"rejected\":%d,\"accepted\":%d,\"proved\":%d,\"holes\":%d,\"samples\":["
           s.candidates s.rejected s.accepted s.proved s.holes);
      List.iteri
        (fun j h ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"word\":\"0x%08x\",\"disasm\":" h.word);
          str h.disasm;
          Buffer.add_string b ",\"clause\":";
          str h.clause;
          Buffer.add_string b ",\"detail\":";
          str h.detail;
          Buffer.add_char b '}')
        s.samples;
      Buffer.add_string b "]}")
    r.strata;
  Buffer.add_string b
    (Printf.sprintf
       "],\"totals\":{\"candidates\":%d,\"rejected\":%d,\"accepted\":%d,\"proved\":%d,\"holes\":%d},\"elapsed_ms\":%s}"
       (total (fun s -> s.candidates) r)
       (total (fun s -> s.rejected) r)
       (total (fun s -> s.accepted) r)
       (total (fun s -> s.proved) r)
       (total_holes r)
       (match r.elapsed_ms with
       | None -> "null"
       | Some ms -> string_of_int ms));
  Buffer.contents b

(* ---- human summary ---- *)

let pp fmt (r : t) =
  Format.fprintf fmt "lfi-prove/v1 · tier %s%s@." r.tier
    (match r.weakenings with
    | [] -> ""
    | ws -> " · weakened: " ^ String.concat ", " ws);
  Format.fprintf fmt "  %-14s %10s %9s %9s %9s %7s@." "stratum"
    "candidates" "rejected" "accepted" "proved" "holes";
  List.iter
    (fun s ->
      Format.fprintf fmt "  %-14s %10d %9d %9d %9d %7d@." s.s_name
        s.candidates s.rejected s.accepted s.proved s.holes)
    r.strata;
  Format.fprintf fmt "  %-14s %10d %9d %9d %9d %7d@." "total"
    (total (fun s -> s.candidates) r)
    (total (fun s -> s.rejected) r)
    (total (fun s -> s.accepted) r)
    (total (fun s -> s.proved) r)
    (total_holes r);
  List.iter
    (fun s ->
      List.iter
        (fun h ->
          Format.fprintf fmt "  HOLE %s: 0x%08x  %-28s %s: %s@." s.s_name
            h.word h.disasm h.clause h.detail)
        s.samples)
    r.strata;
  match r.elapsed_ms with
  | Some ms -> Format.fprintf fmt "  elapsed: %d ms@." ms
  | None -> ()
