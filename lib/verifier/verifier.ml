(** The LFI static verifier (Section 5.2).

    A single linear pass over the *machine code* of a text segment.  The
    verifier decodes the bytes itself — the compiler and rewriter that
    produced them are untrusted — and checks that executing any path
    through the code can never leave the sandbox:

    1. loads, stores and indirect branches only go through reserved
       registers (x18/x23/x24, sp, x21, x30) or the guarded addressing
       mode [\[x21, wN, uxtw\]];
    2. reserved registers are only written by invariant-preserving
       guards: x21 never, x18/x23/x24 only via [add xR, x21, wN, uxtw],
       x22 only with a 32-bit destination, x30 only by bl/blr, its
       guard, the runtime-table load immediately followed by [blr x30],
       or any write immediately followed by the x30 guard; sp only via
       its two-instruction guard, sp-based pre/post-indexing, or a
       small immediate adjustment followed by an sp access;
    3. no unsafe instructions ([svc], [mrs]/[msr], undefined encodings,
       and — when configured, cf. §7.1 — LL/SC exclusives);
    4. direct branches stay within the text segment.

    The pass is strictly local: each rule looks at one instruction and
    at most a bounded forward window, which is what keeps the verifier
    small and fast. *)

open Lfi_arm64

type config = {
  sandbox_loads : bool;
      (** verify loads too (full isolation); [false] checks a
          stores-and-jumps-only binary *)
  allow_exclusives : bool;
  unsafe_no_uxtw_check : bool;
      (** DELIBERATELY UNSOUND, for the fuzzing oracle only
          (DESIGN.md §5d): accept any register-offset addressing mode
          based on x21, not just the [\[x21, wN, uxtw\]] guard.  The
          soundness engine uses this to prove the escape oracle can
          catch a weakened verifier; it must never be set in a
          loader. *)
  unsafe_no_sp_drift_check : bool;
      (** DELIBERATELY UNSOUND, same purpose: accept any immediate in
          the drift-then-access sp pattern, including shifted
          immediates far beyond the guard region. *)
}

let default_config =
  { sandbox_loads = true; allow_exclusives = true;
    unsafe_no_uxtw_check = false; unsafe_no_sp_drift_check = false }

(** The deliberate weakenings as an enumerable set, so the soundness
    fuzzer, the symbolic prover and the tests all iterate the same
    list instead of hard-coding one knob (DESIGN.md §5d, §5i). *)
type weakening = No_uxtw_check | No_sp_drift_check

let all_weakenings = [ No_uxtw_check; No_sp_drift_check ]

let weakening_name = function
  | No_uxtw_check -> "no-uxtw-check"
  | No_sp_drift_check -> "no-sp-drift-check"

let weakening_of_name s =
  List.find_opt (fun w -> weakening_name w = s) all_weakenings

let weaken config = function
  | No_uxtw_check -> { config with unsafe_no_uxtw_check = true }
  | No_sp_drift_check -> { config with unsafe_no_sp_drift_check = true }

type violation = {
  index : int;  (** instruction index within the text segment *)
  offset : int;  (** byte offset of the instruction *)
  pc : int;  (** faulting address ([origin] + [offset]) *)
  insn : Insn.t;
  rule : string;
  context : (int * Insn.t) list;
      (** the faulting instruction and up to two neighbours on each
          side, as [(pc, insn)] pairs, for the error report *)
}

(** Multi-line report: the faulting pc, the disassembled instruction
    and the rule, then the surrounding instructions with the culprit
    marked — enough to find the site in a listing without re-running
    the disassembler by hand. *)
let pp_violation fmt v =
  Format.fprintf fmt "0x%x (+0x%x): %s: %s" v.pc v.offset
    (Printer.to_string v.insn) v.rule;
  List.iter
    (fun (pc, i) ->
      Format.fprintf fmt "@.  %s 0x%x:  %s"
        (if pc = v.pc then ">" else " ")
        pc (Printer.to_string i))
    v.context

type result_ok = { checked : int; bytes : int }

(* Register classification *)

let reserved_addr_number = function 18 | 23 | 24 -> true | _ -> false

let is_guarded_addressing = function
  (* the zero-cost guard: [x21, wN, uxtw] with no shift *)
  | Insn.Reg_off (Reg.R (Reg.W64, 21), Reg.R (Reg.W32, _), Insn.Uxtw, 0) ->
      true
  | _ -> false

let x30_guard = Insn.Alu
    { op = Insn.ADD; flags = false; dst = Reg.R (Reg.W64, 30);
      src = Reg.R (Reg.W64, 21);
      op2 = Insn.Ext (Reg.R (Reg.W32, 30), Insn.Uxtw, 0) }

let is_x30_guard i = Insn.equal i x30_guard

let is_guard_write_to n = function
  | Insn.Alu
      { op = Insn.ADD; flags = false; dst = Reg.R (Reg.W64, d);
        src = Reg.R (Reg.W64, 21);
        op2 = Insn.Ext (Reg.R (Reg.W32, _), Insn.Uxtw, 0) } ->
      d = n
  | _ -> false

let is_sp_guard = function
  | Insn.Alu
      { op = Insn.ADD; flags = false; dst = Reg.SP Reg.W64;
        src = Reg.R (Reg.W64, 21);
        op2 = Insn.Ext (Reg.R (Reg.W64, 22), Insn.Uxtx, 0) } ->
      true
  | _ -> false

let is_table_load = function
  | Insn.Ldr
      { sz = Insn.X; signed = false; dst = Reg.R (Reg.W64, 30);
        addr = Insn.Imm_off (Reg.R (Reg.W64, 21), n) } ->
      n >= 0 && n < Lfi_core.Layout.rtcall_table_size && n mod 8 = 0
  | _ -> false

let is_blr_x30 = function
  | Insn.Blr (Reg.R (Reg.W64, 30)) -> true
  | _ -> false

(* Immediate offsets on sp and the reserved registers must stay inside
   the 48KiB guard regions.  Negative encodable offsets bottom out at
   -1024 (pair pre/post on q registers); positive *scaled* offsets
   reach 4095 x 16 = 65520 bytes on q registers, which overruns the
   guard, so the whole access is capped at [Layout.max_mem_immediate]
   (the bound the rewriter materializes larger offsets down to). *)
let imm_off_in_guard i off =
  off < 0 || off + Insn.access_bytes i <= Lfi_core.Layout.max_mem_immediate

let is_sp_based_access (i : Insn.t) =
  Insn.is_memory i
  &&
  match Insn.addr_of i with
  | Some (Insn.Imm_off (b, _) | Insn.Pre (b, _) | Insn.Post (b, _)) ->
      Reg.is_sp b
  | _ -> false

(* ------------------------------------------------------------------ *)

let verify ?(config = default_config) ?(origin = 0) ~(code : bytes) () :
    (result_ok, violation list) result =
  let insns = Decode.decode_all code in
  let n = Array.length insns in
  let violations = ref [] in
  let fail index rule =
    let lo = max 0 (index - 2) and hi = min (n - 1) (index + 2) in
    let context =
      List.init (hi - lo + 1) (fun k ->
          let j = lo + k in
          (origin + (j * 4), insns.(j)))
    in
    violations :=
      { index; offset = index * 4; pc = origin + (index * 4);
        insn = insns.(index); rule; context }
      :: !violations
  in
  let next_is index p = index + 1 < n && p insns.(index + 1) in

  (* Forward scan for the §4.2 sp rules.  After an sp-modifying
     instruction, what re-anchors sp first?
     [`Guard]  — the full sp guard overwrites sp with a valid address,
                 which heals *any* prior modification;
     [`Access] — an sp-based access traps in a guard page, which only
                 covers small-immediate drift;
     [`Nothing] — a branch, another sp write, or the end of code is
                 reached first: unsafe. *)
  let sp_anchor index =
    let rec go j =
      if j >= n then `Nothing
      else
        let i = insns.(j) in
        if is_sp_guard i then `Guard
        else if is_sp_based_access i then `Access
        else if Insn.writes_sp i then `Nothing
        else if Insn.is_branch i then `Nothing
        else if (match i with Insn.Udf _ -> true | _ -> false) then `Nothing
        else go (j + 1)
    in
    go (index + 1)
  in

  for idx = 0 to n - 1 do
    let i = insns.(idx) in
    (* ---- rule 3: instruction allow-list ---- *)
    (match i with
    | Insn.Udf _ -> fail idx "undefined or unsupported encoding"
    | Insn.Svc _ -> fail idx "direct system calls are forbidden"
    | Insn.Mrs _ | Insn.Msr _ -> fail idx "system register access forbidden"
    | Insn.Ldxr _ | Insn.Stxr _ | Insn.Ldar _ | Insn.Stlr _
      when not config.allow_exclusives ->
        fail idx "LL/SC and acquire/release disabled (S2C hardening)"
    | _ -> ());
    (* ---- rule 1: memory accesses ---- *)
    (if Insn.is_memory i
        && (Insn.is_store i || (Insn.is_load i && config.sandbox_loads))
     then
       match Insn.addr_of i with
       | None -> ()
       | Some addr -> (
           let base = Insn.addr_base addr in
           match addr with
           | _ when is_guarded_addressing addr -> ()
           | Insn.Reg_off (Reg.R (Reg.W64, 21), _, _, _)
             when config.unsafe_no_uxtw_check ->
               (* fuzzing-only hole: trusts the index extension, so an
                  [uxtw -> uxtx/lsl] bit flip slips through *)
               ()
           | Insn.Imm_off (b, off) when Reg.is_sp b ->
               if not (imm_off_in_guard i off) then
                 fail idx "scaled offset overruns the guard margin"
           | (Insn.Pre (b, _) | Insn.Post (b, _)) when Reg.is_sp b -> ()
           | Insn.Imm_off (Reg.R (Reg.W64, 21), _) ->
               (* x21 is the sandbox base itself: any encodable
                  immediate lands inside the 4GiB sandbox *)
               ()
           | Insn.Imm_off (Reg.R (Reg.W64, bn), off)
             when reserved_addr_number bn ->
               if not (imm_off_in_guard i off) then
                 fail idx "scaled offset overruns the guard margin"
           | (Insn.Pre (Reg.R (Reg.W64, bn), _)
             | Insn.Post (Reg.R (Reg.W64, bn), _))
             when reserved_addr_number bn ->
               (* writes back to a reserved register: caught below
                  unless it is also guarded, which it never is *)
               fail idx "writeback to reserved register"
           | _ ->
               fail idx
                 (Printf.sprintf "unguarded memory access via %s"
                    (Reg.to_string base))))
    ;
    (* ---- rule 2: reserved register writes ---- *)
    List.iter
      (function
        | `Sp ->
            if is_sp_guard i then ()
            else if is_sp_based_access i then
              (* sp-based pre/post indexing: immediate capped at 256
                 bytes by the encoding, within guard-region drift *)
              ()
            else (
              match (i, sp_anchor idx) with
              | _, `Guard ->
                  (* the full guard re-anchors sp before any use *)
                  ()
              | Insn.Alu
                  { op = Insn.ADD | Insn.SUB; flags = false;
                    dst = Reg.SP Reg.W64; src = Reg.SP Reg.W64;
                    op2 = Insn.Imm (v, 0) },
                `Access
                when v < Lfi_core.Layout.max_sp_drift ->
                  (* small drift, trapped by the next sp access *)
                  ()
              | Insn.Alu
                  { op = Insn.ADD | Insn.SUB; flags = false;
                    dst = Reg.SP Reg.W64; src = Reg.SP Reg.W64;
                    op2 = Insn.Imm _ },
                `Access
                when config.unsafe_no_sp_drift_check ->
                  (* fuzzing-only hole: trusts any immediate drift, so
                     a [lsl #12] bit flip walks sp past the guard *)
                  ()
              | _, `Access ->
                  fail idx "sp drift too large for the guard region"
              | _, `Nothing -> fail idx "unguarded write to sp")
        | `R (w, rn) -> (
            match rn with
            | 21 -> fail idx "write to x21 (sandbox base) forbidden"
            | 18 | 23 | 24 ->
                if not (is_guard_write_to rn i) then
                  fail idx
                    (Printf.sprintf "x%d may only be written by its guard"
                       rn)
            | 22 ->
                if w <> Reg.W32 then
                  fail idx "x22 must be written as w22 (32-bit)"
            | 30 -> (
                match i with
                | Insn.Bl _ | Insn.Blr _ -> ()
                | _ when is_x30_guard i -> ()
                | _ when is_table_load i ->
                    if not (next_is idx is_blr_x30) then
                      fail idx
                        "runtime-table load must be followed by blr x30"
                | _ ->
                    if not (next_is idx is_x30_guard) then
                      fail idx
                        "write to x30 must be followed by its guard")
            | _ -> ()))
      (Insn.writes i);
    (* ---- rule 1 (branches) + rule 4 ---- *)
    (match i with
    | Insn.Br r | Insn.Blr r | Insn.Ret r -> (
        match r with
        | Reg.R (Reg.W64, rn) when reserved_addr_number rn || rn = 30 -> ()
        | _ ->
            fail idx
              (Printf.sprintf "indirect branch through %s"
                 (Reg.to_string r)))
    | Insn.B t | Insn.Bl t | Insn.Bcond (_, t)
    | Insn.Cbz { target = t; _ } | Insn.Tbz { target = t; _ } -> (
        match t with
        | Insn.Off d ->
            let target = (idx * 4) + d in
            if target < 0 || target >= n * 4 then
              fail idx "direct branch leaves the text segment"
        | Insn.Sym _ -> fail idx "unresolved symbol in machine code")
    | _ -> ())
  done;
  if !violations = [] then Ok { checked = n; bytes = Bytes.length code }
  else Error (List.rev !violations)

(** Verify and raise on failure (for loaders). *)
let verify_exn ?config ?origin ~code () =
  match verify ?config ?origin ~code () with
  | Ok r -> r
  | Error vs ->
      let b = Buffer.create 256 in
      List.iteri
        (fun k v ->
          if k < 10 then
            Buffer.add_string b (Format.asprintf "%a@." pp_violation v))
        vs;
      failwith
        (Printf.sprintf "verification failed (%d violations):\n%s"
           (List.length vs) (Buffer.contents b))
