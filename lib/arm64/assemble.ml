(** Two-pass assembler: resolves labels, lays out text and data, and
    encodes instructions to machine code.

    All addresses are *sandbox-relative*: the image is linked at
    [origin] (by default 64KiB, the start of code in the LFI sandbox
    layout of Figure 1) and pointer-valued data (".quad symbol") stores
    sandbox-relative addresses.  This is exactly the paper's fork
    argument (Section 5.3): because every access is guarded, pointers
    are 32-bit offsets into the sandbox and the image can be placed at
    any 4GiB-aligned base without relocation.  Native (unsandboxed)
    processes are simply loaded at base 0, where relative and absolute
    addresses coincide. *)

type error = { index : int; msg : string }

exception Error of error

let errorf index fmt =
  Printf.ksprintf (fun msg -> raise (Error { index; msg })) fmt

(** Default link origin: code starts 64KiB into the sandbox (after the
    runtime-call-table page and the low guard region). *)
let default_origin = 0x10000

type section = Text | Data

type image = {
  origin : int;  (** sandbox-relative address of the first text byte *)
  text : bytes;
  data_origin : int;
  data : bytes;
  symbols : (string, int) Hashtbl.t;
      (** symbol -> sandbox-relative address *)
  entry : int;  (** address of [_start] (or the first instruction) *)
}

let align_up v a = (v + a - 1) / a * a

(* ------------------------------------------------------------------ *)
(* Directive argument parsing                                          *)
(* ------------------------------------------------------------------ *)

let split_args s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

(** Unescape a quoted string literal (supports the n, t, 0, backslash
    and quote escapes). *)
let parse_string_lit index (s : string) =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '"' || s.[n - 1] <> '"' then
    errorf index "expected string literal, got %S" s
  else begin
    let buf = Buffer.create (n - 2) in
    let i = ref 1 in
    while !i < n - 1 do
      (if s.[!i] = '\\' && !i + 1 < n - 1 then begin
         (match s.[!i + 1] with
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | '0' -> Buffer.add_char buf '\000'
         | '\\' -> Buffer.add_char buf '\\'
         | '"' -> Buffer.add_char buf '"'
         | c -> Buffer.add_char buf c);
         incr i
       end
       else Buffer.add_char buf s.[!i]);
      incr i
    done;
    Buffer.contents buf
  end

(** Size in bytes contributed by a directive, for the layout pass.
    [at] is the current offset within the section (needed by .align). *)
let directive_size index ~at (name : string) (args : string) : int =
  match name with
  | ".quad" | ".xword" | ".dword" -> 8 * List.length (split_args args)
  | ".word" | ".long" | ".4byte" -> 4 * List.length (split_args args)
  | ".short" | ".hword" | ".2byte" -> 2 * List.length (split_args args)
  | ".byte" -> List.length (split_args args)
  | ".double" -> 8 * List.length (split_args args)
  | ".float" -> 4 * List.length (split_args args)
  | ".asciz" | ".string" -> String.length (parse_string_lit index args) + 1
  | ".ascii" -> String.length (parse_string_lit index args)
  | ".zero" | ".skip" | ".space" -> (
      match int_of_string_opt (String.trim args) with
      | Some n when n >= 0 -> n
      | _ -> errorf index "bad %s size %S" name args)
  | ".align" | ".p2align" -> (
      match int_of_string_opt (String.trim args) with
      | Some n when n >= 0 && n < 16 -> align_up at (1 lsl n) - at
      | _ -> errorf index "bad alignment %S" args)
  | ".balign" -> (
      match int_of_string_opt (String.trim args) with
      | Some n when n > 0 -> align_up at n - at
      | _ -> errorf index "bad alignment %S" args)
  | _ -> 0 (* .globl, .type, .size, .file, ... are ignored *)

let section_of_directive name args =
  match name with
  | ".text" -> Some Text
  | ".data" | ".bss" | ".rodata" -> Some Data
  | ".section" ->
      let arg = List.nth_opt (split_args args) 0 in
      (match arg with
      | Some ".text" -> Some Text
      | Some _ -> Some Data
      | None -> Some Data)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

(** Assemble a parsed source file into an image. *)
let assemble ?(origin = default_origin) (src : Source.t) : image =
  let symbols : (string, int) Hashtbl.t = Hashtbl.create 64 in
  (* Pass 1: layout. *)
  let text_size = ref 0 and data_size = ref 0 in
  let sizes = Hashtbl.create 64 in
  (* item index -> (section, offset) *)
  let places = Hashtbl.create 64 in
  let section = ref Text in
  List.iteri
    (fun idx item ->
      let cursor = match !section with Text -> text_size | Data -> data_size in
      match item with
      | Source.Label l ->
          if Hashtbl.mem symbols l then errorf idx "duplicate label %S" l;
          Hashtbl.replace symbols l 0 (* real address assigned below *)
      | Source.Insn _ ->
          if !section <> Text then
            errorf idx "instruction outside .text section";
          Hashtbl.replace places idx (Text, !cursor);
          cursor := !cursor + 4
      | Source.Directive (name, args) -> (
          match section_of_directive name args with
          | Some s -> section := s
          | None ->
              let sz = directive_size idx ~at:!cursor name args in
              Hashtbl.replace sizes idx sz;
              Hashtbl.replace places idx (!section, !cursor);
              cursor := !cursor + sz))
    src;
  ignore places;
  (* Recompute symbol addresses properly with a second labelling pass
     (avoiding the Obj.magic placeholder hack above). *)
  Hashtbl.reset symbols;
  (* The data section starts on its own 16KiB page so that the loader
     can give text and data different page protections (W^X). *)
  let data_origin = align_up (origin + !text_size) 16384 in
  let tpos = ref 0 and dpos = ref 0 in
  let section = ref Text in
  List.iteri
    (fun idx item ->
      let cursor = match !section with Text -> tpos | Data -> dpos in
      let addr () =
        match !section with
        | Text -> origin + !cursor
        | Data -> data_origin + !cursor
      in
      match item with
      | Source.Label l -> Hashtbl.replace symbols l (addr ())
      | Source.Insn _ -> cursor := !cursor + 4
      | Source.Directive (name, args) -> (
          match section_of_directive name args with
          | Some s -> section := s
          | None ->
              cursor := !cursor + directive_size idx ~at:!cursor name args))
    src;
  (* Pass 2: emission. *)
  let text = Bytes.make !text_size '\000'
  and data = Bytes.make !data_size '\000' in
  let resolve idx name =
    match Hashtbl.find_opt symbols name with
    | Some a -> a
    | None -> errorf idx "undefined symbol %S" name
  in
  let tpos = ref 0 and dpos = ref 0 in
  let section = ref Text in
  List.iteri
    (fun idx item ->
      match item with
      | Source.Label _ -> ()
      | Source.Insn i -> (
          let pc = origin + !tpos in
          let resolved =
            Insn.map_target
              (function
                | Insn.Off o -> Insn.Off o
                | Insn.Sym s ->
                    let a = resolve idx s in
                    (* adrp targets are page-relative *)
                    Insn.Off (a - pc))
              i
          in
          match Encode.encode resolved with
          | Ok w ->
              Bytes.set_int32_le text !tpos (Int32.of_int w);
              tpos := !tpos + 4
          | Error e ->
              errorf idx "cannot encode %S: %s" (Printer.to_string i) e)
      | Source.Directive (name, args) -> (
          match section_of_directive name args with
          | Some s -> section := s
          | None ->
              let buf, cursor =
                match !section with
                | Text -> (text, tpos)
                | Data -> (data, dpos)
              in
              let emit_int size v =
                for k = 0 to size - 1 do
                  Bytes.set_uint8 buf (!cursor + k) ((v lsr (8 * k)) land 0xff)
                done;
                cursor := !cursor + size
              in
              let emit_value size arg =
                match int_of_string_opt arg with
                | Some v -> emit_int size v
                | None ->
                    (* a symbol reference: store its sandbox-relative
                       address (optionally with +offset) *)
                    let sym, off =
                      match String.index_opt arg '+' with
                      | Some i ->
                          ( String.trim (String.sub arg 0 i),
                            int_of_string
                              (String.trim
                                 (String.sub arg (i + 1)
                                    (String.length arg - i - 1))) )
                      | None -> (arg, 0)
                    in
                    emit_int size (resolve idx sym + off)
              in
              (match name with
              | ".quad" | ".xword" | ".dword" ->
                  List.iter (emit_value 8) (split_args args)
              | ".word" | ".long" | ".4byte" ->
                  List.iter (emit_value 4) (split_args args)
              | ".short" | ".hword" | ".2byte" ->
                  List.iter (emit_value 2) (split_args args)
              | ".byte" -> List.iter (emit_value 1) (split_args args)
              | ".double" ->
                  List.iter
                    (fun a ->
                      let v = Int64.bits_of_float (float_of_string a) in
                      Bytes.set_int64_le buf !cursor v;
                      cursor := !cursor + 8)
                    (split_args args)
              | ".float" ->
                  List.iter
                    (fun a ->
                      let f = float_of_string a in
                      emit_int 4 (Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF))
                    (split_args args)
              | ".asciz" | ".string" ->
                  let s = parse_string_lit idx args in
                  Bytes.blit_string s 0 buf !cursor (String.length s);
                  cursor := !cursor + String.length s + 1
              | ".ascii" ->
                  let s = parse_string_lit idx args in
                  Bytes.blit_string s 0 buf !cursor (String.length s);
                  cursor := !cursor + String.length s
              | ".zero" | ".skip" | ".space" ->
                  cursor := !cursor + int_of_string (String.trim args)
              | ".align" | ".p2align" | ".balign" ->
                  cursor :=
                    !cursor + directive_size idx ~at:!cursor name args
              | _ -> ())))
    src;
  let entry =
    match Hashtbl.find_opt symbols "_start" with
    | Some a -> a
    | None -> origin
  in
  { origin; text; data_origin; data; symbols; entry }

(** Assemble straight from assembly text. *)
let assemble_string ?origin text =
  assemble ?origin (Parser.parse_string_exn text)

(** Sandbox-relative address of every instruction in [src], in item
    order, without encoding anything: replays the layout pass only.
    Used by the rewriter to resolve its site table (instruction index
    -> pc) against the exact addresses {!assemble} will assign. *)
let insn_addresses ?(origin = default_origin) (src : Source.t) : int array =
  let out = ref [] in
  let tpos = ref 0 and dpos = ref 0 in
  let section = ref Text in
  List.iteri
    (fun idx item ->
      let cursor = match !section with Text -> tpos | Data -> dpos in
      match item with
      | Source.Label _ -> ()
      | Source.Insn _ ->
          out := (origin + !tpos) :: !out;
          tpos := !tpos + 4
      | Source.Directive (name, args) -> (
          match section_of_directive name args with
          | Some s -> section := s
          | None -> cursor := !cursor + directive_size idx ~at:!cursor name args))
    src;
  Array.of_list (List.rev !out)

let symbol_address img name = Hashtbl.find_opt img.symbols name

(** Total image size in bytes (text + alignment padding + data). *)
let image_size img =
  img.data_origin - img.origin + Bytes.length img.data
